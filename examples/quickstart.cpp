// Quickstart: build a 3GOL household, download an HLS video over the ADSL
// line alone and then with two phones onloading, and print the speedup.
//
//   $ ./build/examples/quickstart
//
// This is the 60-second tour of the public API: HomeEnvironment wires up
// the simulator, access links, radio environment and phones; VodSession
// runs the paper's VoD application through the multipath scheduler.
#include <cstdio>

#include "core/vod_session.hpp"

int main() {
  using namespace gol;

  // A home at the paper's evaluation location 4: 6.2 Mbps down / 0.65 up
  // ADSL, two phones on the home Wi-Fi.
  core::HomeConfig config;
  config.location = cell::evaluationLocations()[3];
  config.phones = 2;
  config.seed = 2013;  // CoNEXT vintage; any seed works

  core::HomeEnvironment home(config);
  core::VodSession vod(home);

  // A 200 s HLS video at 738 kbps (the paper's Q4), pre-buffering 40 % of
  // the video before playback starts.
  core::VodOptions options;
  options.video.duration_s = 200;
  options.video.bitrate_bps = 738e3;
  options.prebuffer_fraction = 0.4;

  options.phones = 0;  // baseline: ADSL only
  const auto adsl = vod.run(options);

  options.phones = 2;  // 3GOL: onload onto both phones
  options.scheduler = "greedy";
  const auto gol3 = vod.run(options);

  std::printf("ADSL alone : pre-buffer %5.1f s, full download %5.1f s\n",
              adsl.prebuffer_time_s, adsl.total_download_s);
  std::printf("3GOL (2ph) : pre-buffer %5.1f s, full download %5.1f s\n",
              gol3.prebuffer_time_s, gol3.total_download_s);
  std::printf("powerboost : x%.2f pre-buffer, x%.2f download\n",
              adsl.prebuffer_time_s / gol3.prebuffer_time_s,
              adsl.total_download_s / gol3.total_download_s);
  std::printf("phone bytes metered: %.1f MB (phone0) + %.1f MB (phone1)\n",
              home.phone(0).meteredBytes() / 1e6,
              home.phone(1).meteredBytes() / 1e6);
  return 0;
}
