// VoD powerboosting in depth: sweep video quality, pre-buffer amount,
// scheduler policy and RRC start state for one household — the scenario
// the paper's Sec. 5.2 evaluates in the wild.
//
//   $ ./build/examples/vod_powerboost [location-index 0..4]
#include <cstdio>
#include <cstdlib>

#include "core/vod_session.hpp"
#include "hls/segmenter.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace gol;

  std::size_t loc_index = 3;
  if (argc > 1) loc_index = static_cast<std::size_t>(std::atoi(argv[1])) % 5;
  const auto locations = cell::evaluationLocations();

  core::HomeConfig config;
  config.location = locations[loc_index];
  config.phones = 2;
  config.seed = 42;
  core::HomeEnvironment home(config);
  core::VodSession vod(home);

  std::printf("Household at %s: ADSL %.2f/%.2f Mbps, signal %.0f dBm\n\n",
              config.location.name.c_str(),
              config.location.adsl_down_bps / 1e6,
              config.location.adsl_up_bps / 1e6, config.location.signal_dbm);

  // 1. Quality sweep at a fixed 40 % pre-buffer.
  {
    stats::Table t({"quality", "ADSL s", "3GOL 1ph s", "3GOL 2ph s",
                    "stalls (2ph)"});
    for (double q : hls::paperVideoQualitiesBps()) {
      core::VodOptions opts;
      opts.video.bitrate_bps = q;
      opts.prebuffer_fraction = 0.4;
      opts.phones = 0;
      const auto r0 = vod.run(opts);
      opts.phones = 1;
      const auto r1 = vod.run(opts);
      opts.phones = 2;
      const auto r2 = vod.run(opts);
      t.addRow({stats::Table::num(q / 1e3, 0) + " kbps",
                stats::Table::num(r0.prebuffer_time_s, 1),
                stats::Table::num(r1.prebuffer_time_s, 1),
                stats::Table::num(r2.prebuffer_time_s, 1),
                std::to_string(r2.playout.stall_events)});
    }
    std::printf("Pre-buffer time by video quality (40%% pre-buffer):\n");
    t.print();
  }

  // 2. Scheduler policies on the hardest setting.
  {
    stats::Table t({"scheduler", "full download s", "wasted MB",
                    "duplicated items"});
    for (const char* policy : {"greedy", "rr", "min", "greedy-noresched"}) {
      core::VodOptions opts;
      opts.video.bitrate_bps = 738e3;
      opts.prebuffer_fraction = 1.0;
      opts.phones = 2;
      opts.scheduler = policy;
      const auto r = vod.run(opts);
      t.addRow({policy, stats::Table::num(r.total_download_s, 1),
                stats::Table::num(r.txn.wasted_bytes / 1e6, 2),
                std::to_string(r.txn.duplicated_items)});
    }
    std::printf("\nScheduler comparison (Q4, full download, 2 phones):\n");
    t.print();
  }

  // 3. Idle vs pre-warmed radios (the paper's "3G" vs "H" runs).
  {
    core::VodOptions opts;
    opts.video.bitrate_bps = 200e3;
    opts.prebuffer_fraction = 0.2;  // short transaction: RRC matters most
    opts.phones = 1;
    const auto idle = vod.run(opts);
    opts.warm_start = true;
    const auto warm = vod.run(opts);
    std::printf("\nRRC start state (Q1, 20%% pre-buffer, 1 phone): idle %.1f s"
                " vs connected %.1f s (channel-acquisition delay %.1f s)\n",
                idle.prebuffer_time_s, warm.prebuffer_time_s,
                home.phone(0).config().rrc.idle_to_dch_s);
  }
  return 0;
}
