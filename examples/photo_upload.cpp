// Multimedia upload scenario (Sec. 4.1, Fig 9): posting a photo set to a
// sharing service through the constrained ADSL uplink, with phones
// onloading via multipart HTTP POST.
//
//   $ ./build/examples/photo_upload [photos]
#include <cstdio>
#include <cstdlib>

#include "core/upload_session.hpp"
#include "http/multipart.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace gol;

  int photos = 30;
  if (argc > 1) photos = std::atoi(argv[1]);

  // The paper's slowest uplink home: loc5, 0.58 Mbps up.
  core::HomeConfig config;
  config.location = cell::evaluationLocations()[4];
  config.phones = 2;
  config.seed = 7;
  core::HomeEnvironment home(config);
  core::UploadSession uploads(home);

  std::printf("Uploading %d photos (mean 2.5 MB) over a %.2f Mbps ADSL "
              "uplink at %s\n\n",
              photos, config.location.adsl_up_bps / 1e6,
              config.location.name.c_str());

  // Show what actually goes on the wire for one photo.
  http::MultipartEncoder encoder;
  http::MultipartPart part;
  part.field_name = "photo";
  part.filename = "IMG_0001.jpg";
  part.content_type = "image/jpeg";
  part.data = "<jpeg bytes>";
  encoder.addPart(part);
  std::printf("multipart framing per photo: %zu bytes, Content-Type: %s\n\n",
              http::MultipartEncoder::framingOverhead(part),
              encoder.contentType().c_str());

  stats::Table t({"configuration", "upload time s", "speedup",
                  "phone bytes MB"});
  double baseline = 0;
  for (int phones : {0, 1, 2}) {
    const double metered_before =
        home.phone(0).meteredBytes() + home.phone(1).meteredBytes();
    core::UploadOptions opts;
    opts.photos = photos;
    opts.phones = phones;
    const auto out = uploads.run(opts);
    if (phones == 0) baseline = out.txn.duration_s;
    const double metered =
        home.phone(0).meteredBytes() + home.phone(1).meteredBytes() -
        metered_before;
    t.addRow({phones == 0 ? "ADSL alone"
                          : std::to_string(phones) + " phone(s)",
              stats::Table::num(out.txn.duration_s, 1),
              "x" + stats::Table::num(baseline / out.txn.duration_s, 2),
              stats::Table::num(metered / 1e6, 1)});
  }
  t.print();
  std::printf("\n(paper: 1 device cuts upload time 31-75%%, two devices "
              "54-84%%)\n");
  return 0;
}
