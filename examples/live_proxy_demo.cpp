// The 3GOL prototype on real sockets (Linux): an origin server, two
// phone-side proxies with token-bucket-shaped "3G" links, a shaped "ADSL"
// leg, and the greedy multipath client — all on loopback in one epoll
// loop. This is the paper's Fig 2 architecture live, with the rate
// limiters standing in for netem-emulated access links.
//
//   $ ./build/examples/live_proxy_demo
#include <cstdio>

#include "proto/multipath_client.hpp"
#include "proto/origin_server.hpp"
#include "proto/proxy.hpp"

int main() {
  using namespace gol::proto;

  EpollLoop loop;
  OriginServer origin(loop);

  // "ADSL": 2 Mbps down. Phones: 3 and 2.2 Mbps HSPA-ish.
  ProxyConfig adsl_cfg;
  adsl_cfg.upstream_port = origin.port();
  adsl_cfg.down_bps = 2e6;
  OnloadProxy adsl(loop, adsl_cfg);

  ProxyConfig p0_cfg;
  p0_cfg.upstream_port = origin.port();
  p0_cfg.down_bps = 3e6;
  OnloadProxy phone0(loop, p0_cfg);

  ProxyConfig p1_cfg;
  p1_cfg.upstream_port = origin.port();
  p1_cfg.down_bps = 2.2e6;
  OnloadProxy phone1(loop, p1_cfg);

  std::printf("origin :%u  adsl :%u (2.0 Mbps)  phone0 :%u (3.0 Mbps)  "
              "phone1 :%u (2.2 Mbps)\n\n",
              origin.port(), adsl.port(), phone0.port(), phone1.port());

  // An HLS-like transaction: 12 segments of 125 KB (1.5 MB total).
  std::vector<FetchItem> items;
  for (int i = 0; i < 12; ++i) items.push_back({"/obj/125000", 125000});

  MultipathHttpClient solo(loop, {{"adsl", adsl.port()}});
  const auto r_solo = solo.run(items, std::chrono::milliseconds(60000));
  std::printf("ADSL alone      : %.2f s\n", r_solo.duration_s);

  MultipathHttpClient gol3(loop, {{"adsl", adsl.port()},
                                  {"phone0", phone0.port()},
                                  {"phone1", phone1.port()}});
  const auto r_gol = gol3.run(items, std::chrono::milliseconds(60000));
  std::printf("3GOL (2 phones) : %.2f s  -> x%.2f speedup\n", r_gol.duration_s,
              r_solo.duration_s / r_gol.duration_s);
  for (const auto& [name, bytes] : r_gol.per_endpoint_bytes) {
    std::printf("  %-7s carried %6.0f KB\n", name.c_str(), bytes / 1e3);
  }
  std::printf("  duplicated %zu item(s), wasted %.0f KB (bound: 2 x 125 KB)\n",
              r_gol.duplicated_items, r_gol.wasted_bytes / 1e3);
  return 0;
}
