// Multi-provider deployment (Sec. 6): the wired and cellular operators are
// different, so 3GOL must respect cellular volume caps. Phones advertise
// only while their estimated safe allowance A(t) is positive; the client's
// admissible set shrinks as quota burns, with no input from the network.
//
//   $ ./build/examples/capped_multi_provider
#include <cstdio>

#include "core/allowance.hpp"
#include "core/onload_controller.hpp"
#include "core/vod_session.hpp"
#include "stats/table.hpp"

int main() {
  using namespace gol;

  core::HomeConfig home_cfg;
  home_cfg.location = cell::evaluationLocations()[0];
  home_cfg.phones = 2;
  home_cfg.seed = 99;
  core::HomeEnvironment home(home_cfg);

  // 1. Derive this month's allowance from the past free-capacity history
  //    (the Sec. 6 estimator with tau = 5, alpha = 4).
  const std::vector<double> free_history_mb = {640, 580, 700, 615, 655};
  core::AllowanceConfig est_cfg;  // tau=5, alpha=4
  std::vector<double> history_bytes;
  for (double mb : free_history_mb) history_bytes.push_back(mb * 1e6);
  const double allowance = core::estimateMonthlyAllowance(history_bytes,
                                                          est_cfg);
  std::printf("free-capacity history (MB): 640 580 700 615 655\n");
  std::printf("3GOLa(t) = Fbar - %.0f*sigma = %.0f MB/month "
              "(%.1f MB/day)\n\n",
              est_cfg.alpha, allowance / 1e6, allowance / 30e6);

  // 2. Run a day of video boosts under that allowance.
  core::ControllerConfig ctl_cfg;
  ctl_cfg.mode = core::DeploymentMode::kOttCapped;
  ctl_cfg.monthly_allowance_bytes = allowance;
  core::OnloadController controller(home, ctl_cfg);
  controller.start();
  home.simulator().runUntil(1.0);

  stats::Table t({"video#", "admissible phones", "download s",
                  "phone quota left MB (p0/p1)"});
  for (int video = 1; video <= 6; ++video) {
    auto paths = controller.buildPaths(core::TransferDirection::kDownload);
    std::vector<core::TransferPath*> raw;
    for (auto& p : paths) raw.push_back(p.get());
    auto scheduler = core::makeScheduler("greedy");
    core::TransactionEngine engine(home.simulator(), raw, *scheduler);
    // A 10 MB playout-buffer boost per video.
    const auto res = core::runTransaction(
        home.simulator(), engine,
        core::makeTransaction(core::TransferDirection::kDownload,
                              std::vector<double>(10, 1e6)));
    controller.chargeUsage();
    t.addRow({std::to_string(video),
              std::to_string(paths.size() - 1),
              stats::Table::num(res.duration_s, 1),
              stats::Table::num(
                  controller.tracker(0).availableTodayBytes() / 1e6, 1) +
                  "/" +
                  stats::Table::num(
                      controller.tracker(1).availableTodayBytes() / 1e6, 1)});
    // Let discovery age out exhausted phones before the next video.
    home.simulator().runUntil(home.simulator().now() +
                              ctl_cfg.discovery_ttl_s +
                              ctl_cfg.discovery_interval_s);
  }
  t.print();
  std::printf("\nAs quotas empty the admissible set Phi shrinks and videos "
              "fall back to ADSL speed; tomorrow the budget refills:\n");
  controller.advanceDay();
  home.simulator().runUntil(home.simulator().now() + 6.0);
  std::printf("after advanceDay(): admissible phones = %zu\n",
              controller.admissibleCount());
  return 0;
}
