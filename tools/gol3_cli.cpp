// gol3 — command-line front-end for the 3GOL reproduction.
//
//   gol3 vod       [--location N] [--phones N] [--quality bps] ...
//   gol3 upload    [--location N] [--phones N] [--photos N]
//   gol3 estimate  --history 640,580,700,615,655 [--tau N] [--alpha X]
//   gol3 oracle    --items 1,1,8 --rates 8,2 [--kill 0@1.5] [--flap 1@2+3]
//   gol3 trace-dslam --out FILE [--subscribers N] [--seed N]
//   gol3 trace-mno   --out FILE [--users N] [--months N] [--seed N]
//   gol3 month     [--location N] [--days N]
//   gol3 metro     [--neighborhoods N] [--households N] [--shards N] ...
//
// Everything the examples demonstrate, scriptable.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "core/allowance.hpp"
#include "core/metro.hpp"
#include "core/result_json.hpp"
#include "core/upload_session.hpp"
#include "core/vod_session.hpp"
#include "exec/thread_pool.hpp"
#include "flow/oracle.hpp"
#include "sim/fault_plan.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/export.hpp"

namespace {

using namespace gol;

/// Shared failure-model knobs: every transaction-running command takes the
/// same retry/watchdog/fault-plan flags.
void addEngineArgs(cli::ArgParser& args) {
  args.addString("scheduler", core::SchedulerRegistry::instance().namesJoined(),
                 "greedy");
  args.addInt("max-attempts", "failed attempts before an item is given up", 5);
  args.addDouble("backoff", "first retry delay, seconds", 0.5);
  args.addDouble("watchdog-k",
                 "per-attempt deadline = k x estimated transfer time", 6.0);
  args.addString("fault-plan",
                 "inject faults: kind:target@time[+dur],... with kinds "
                 "kill|flap|stall|revoke|cap|corrupt, or rand:seed=N[,n=N]",
                 "");
  args.addInt("hedge-tail", "duplicate the oldest in-flight item onto idle "
              "paths when at most N items remain (0 = off)", 0);
  args.addFlag("no-resume", "retries re-fetch items from byte 0 instead of "
               "resuming from the salvaged checkpoint");
  args.addFlag("no-verify", "skip end-to-end payload checksum verification");
  args.addFlag("json", "print the transaction result as JSON");
}

/// Validates --scheduler against the registry and fills the engine knobs;
/// returns false (after printing the available policies) on a bad name.
bool engineFromArgs(const cli::ArgParser& args, std::string& scheduler,
                    core::EngineConfig& engine,
                    std::optional<sim::FaultPlan>& faults) {
  scheduler = args.getString("scheduler");
  if (!core::SchedulerRegistry::instance().known(scheduler)) {
    std::fprintf(stderr, "gol3: unknown scheduler '%s' (available: %s)\n",
                 scheduler.c_str(),
                 core::SchedulerRegistry::instance().namesJoined().c_str());
    return false;
  }
  engine.retry.max_attempts = static_cast<int>(args.getInt("max-attempts"));
  engine.retry.base_backoff_s = args.getDouble("backoff");
  engine.watchdog.k = args.getDouble("watchdog-k");
  engine.hedge_tail_items = static_cast<int>(args.getInt("hedge-tail"));
  engine.resume = !args.getFlag("no-resume");
  engine.verify_checksums = !args.getFlag("no-verify");
  const std::string plan = args.getString("fault-plan");
  if (!plan.empty()) faults = sim::parseFaultPlan(plan);
  return true;
}

core::HomeConfig homeFromArgs(const cli::ArgParser& args) {
  core::HomeConfig cfg;
  const auto locations = cell::evaluationLocations();
  cfg.location = locations[static_cast<std::size_t>(args.getInt("location")) %
                           locations.size()];
  cfg.phones = 2;
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  if (args.getFlag("lte")) {
    cfg.location = cell::lteUpgrade(cfg.location);
    cfg.device = cell::lteDeviceConfig(cfg.device);
  }
  return cfg;
}

int cmdVod(int argc, const char* const* argv) {
  cli::ArgParser args("gol3 vod", "Run one VoD powerboost and report times");
  args.addInt("location", "evaluation home index 0-4", 3);
  args.addInt("phones", "phones to onload onto", 2);
  args.addDouble("quality", "video bitrate in bps", 738e3);
  args.addDouble("prebuffer", "pre-buffer fraction 0..1", 0.4);
  addEngineArgs(args);
  args.addFlag("warm", "start phones from connected mode (H)");
  args.addFlag("playout-aware", "use the deadline scheduler");
  args.addFlag("lte", "upgrade the location to LTE");
  args.addInt("seed", "random seed", 42);
  args.addString("trace-out",
                 "write a Chrome trace_event JSON of the boosted run "
                 "(open in chrome://tracing or ui.perfetto.dev)", "");
  if (!args.parse(argc, argv, 2)) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" : (args.error() + "\n").c_str(),
                 args.usage().c_str());
    return args.helpRequested() ? 0 : 2;
  }

  core::HomeEnvironment home(homeFromArgs(args));
  home.simulator().instrument(&telemetry::Registry::global());
  core::VodSession session(home);
  core::VodOptions opts;
  opts.video.bitrate_bps = args.getDouble("quality");
  opts.prebuffer_fraction = args.getDouble("prebuffer");
  opts.warm_start = args.getFlag("warm");
  opts.playout_aware = args.getFlag("playout-aware");
  std::optional<sim::FaultPlan> faults;
  try {
    if (!engineFromArgs(args, opts.scheduler, opts.engine, faults)) return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gol3: %s\n", e.what());
    return 2;
  }

  opts.phones = 0;
  const auto baseline = session.run(opts);

  // The boosted run is the one worth a waterfall: spans land in sim time.
  const std::string trace_out = args.getString("trace-out");
  auto& sim = home.simulator();
  telemetry::TraceRecorder recorder(
      telemetry::Clock{[&sim] { return sim.now(); }});
  if (!trace_out.empty()) opts.trace = &recorder;

  // Faults hit only the boosted run: the baseline is the clean yardstick.
  opts.phones = static_cast<int>(args.getInt("phones"));
  if (faults) opts.faults = &*faults;
  const auto boosted = session.run(opts);
  opts.faults = nullptr;
  if (!trace_out.empty()) {
    try {
      recorder.writeChromeJson(trace_out);
      // Confirmation goes to stderr so `--json` keeps stdout machine-clean.
      std::fprintf(stderr, "trace: %s (%zu spans)\n", trace_out.c_str(),
                   recorder.completedSpans());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gol3: %s\n", e.what());
      return 1;
    }
  }
  if (args.getFlag("json")) {
    std::printf("%s\n", core::transactionResultJson(boosted.txn).c_str());
    return boosted.txn.complete() ? 0 : 1;
  }
  std::printf("ADSL alone : prebuffer %.1f s, download %.1f s\n",
              baseline.prebuffer_time_s, baseline.total_download_s);
  std::printf("3GOL %ld ph  : prebuffer %.1f s (x%.2f), download %.1f s "
              "(x%.2f), stalls %.1f s, waste %.2f MB, outcome %s\n",
              args.getInt("phones"), boosted.prebuffer_time_s,
              baseline.prebuffer_time_s / boosted.prebuffer_time_s,
              boosted.total_download_s,
              baseline.total_download_s / boosted.total_download_s,
              boosted.playout.total_stall_s,
              boosted.txn.wasted_bytes / 1e6,
              core::toString(boosted.txn.outcome));
  return 0;
}

int cmdUpload(int argc, const char* const* argv) {
  cli::ArgParser args("gol3 upload", "Upload a photo set over 3GOL");
  args.addInt("location", "evaluation home index 0-4", 4);
  args.addInt("phones", "phones to onload onto", 2);
  args.addInt("photos", "photos in the set", 30);
  addEngineArgs(args);
  args.addFlag("lte", "upgrade the location to LTE");
  args.addInt("seed", "random seed", 42);
  if (!args.parse(argc, argv, 2)) {
    std::fprintf(stderr, "%s", args.usage().c_str());
    return args.helpRequested() ? 0 : 2;
  }
  core::HomeEnvironment home(homeFromArgs(args));
  core::UploadSession session(home);
  core::UploadOptions opts;
  opts.photos = static_cast<int>(args.getInt("photos"));
  std::optional<sim::FaultPlan> faults;
  try {
    if (!engineFromArgs(args, opts.scheduler, opts.engine, faults)) return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gol3: %s\n", e.what());
    return 2;
  }
  opts.phones = 0;
  const double adsl = session.run(opts).txn.duration_s;
  opts.phones = static_cast<int>(args.getInt("phones"));
  if (faults) opts.faults = &*faults;
  const auto out = session.run(opts);
  if (args.getFlag("json")) {
    std::printf("%s\n", core::transactionResultJson(out.txn).c_str());
    return out.txn.complete() ? 0 : 1;
  }
  std::printf("ADSL alone: %.0f s; 3GOL %d phone(s): %.0f s (x%.2f), "
              "outcome %s\n",
              adsl, opts.phones, out.txn.duration_s,
              adsl / out.txn.duration_s, core::toString(out.txn.outcome));
  return 0;
}

int cmdEstimate(int argc, const char* const* argv) {
  cli::ArgParser args("gol3 estimate",
                      "Sec. 6 allowance from monthly free-capacity history");
  args.addString("history", "comma-separated free MB per month (oldest first)");
  args.addInt("tau", "averaging window, months", 5);
  args.addDouble("alpha", "guard multiplier", 4.0);
  if (!args.parse(argc, argv, 2)) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" : (args.error() + "\n").c_str(),
                 args.usage().c_str());
    return args.helpRequested() ? 0 : 2;
  }
  std::vector<double> history;
  std::stringstream ss(args.getString("history"));
  std::string item;
  while (std::getline(ss, item, ',')) {
    history.push_back(std::strtod(item.c_str(), nullptr) * 1e6);
  }
  core::AllowanceConfig cfg;
  cfg.tau_months = static_cast<int>(args.getInt("tau"));
  cfg.alpha = args.getDouble("alpha");
  const double allowance = core::estimateMonthlyAllowance(history, cfg);
  std::printf("3GOLa = %.0f MB/month (%.1f MB/day) with tau=%d alpha=%.1f\n",
              allowance / 1e6, allowance / 30e6, cfg.tau_months, cfg.alpha);
  return 0;
}

std::vector<double> parseCsvDoubles(const std::string& csv, double scale) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::strtod(item.c_str(), nullptr) * scale);
  }
  return out;
}

int cmdOracle(int argc, const char* const* argv) {
  cli::ArgParser args(
      "gol3 oracle",
      "Offline optimality oracle: the LP/flow lower bound on makespan for a "
      "set of items over capacity profiles. No scheduler can beat it; a "
      "recorded run that does indicates an engine accounting bug.");
  args.addString("items", "comma-separated item sizes in MB");
  args.addString("rates", "comma-separated path rates in Mbps");
  args.addString("kill", "path deaths as idx@t[,idx@t...] (path down for "
                 "good at t seconds)", "");
  args.addString("flap", "path flaps as idx@t+dur[,...] (down at t, back "
                 "after dur seconds)", "");
  args.addFlag("json", "print the bound as JSON");
  if (!args.parse(argc, argv, 2)) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" : (args.error() + "\n").c_str(),
                 args.usage().c_str());
    return args.helpRequested() ? 0 : 2;
  }
  const auto items = parseCsvDoubles(args.getString("items"), 1e6);
  const auto rates = parseCsvDoubles(args.getString("rates"), 1e6);
  std::vector<flow::PathProfile> profiles;
  for (const double r : rates) profiles.push_back(flow::PathProfile::constant(r));
  // Faults rewrite the affected path's profile; idx@t parses with the same
  // strtod discipline as the rate lists (idx, then t after the '@').
  const auto applyEvents = [&](const std::string& spec, bool flap) {
    std::stringstream ss(spec);
    std::string ev;
    while (std::getline(ss, ev, ',')) {
      const auto at = ev.find('@');
      if (at == std::string::npos) {
        throw std::invalid_argument("expected idx@t, got '" + ev + "'");
      }
      const auto idx = static_cast<std::size_t>(
          std::strtoul(ev.substr(0, at).c_str(), nullptr, 10));
      if (idx >= profiles.size()) {
        throw std::invalid_argument("path index " + std::to_string(idx) +
                                    " out of range");
      }
      const std::string when = ev.substr(at + 1);
      char* rest = nullptr;
      const double t = std::strtod(when.c_str(), &rest);
      if (flap) {
        const double dur = (rest != nullptr && *rest == '+')
                               ? std::strtod(rest + 1, nullptr)
                               : 1.0;
        profiles[idx] = flow::PathProfile::flap(rates[idx], t, dur);
      } else {
        profiles[idx] = flow::PathProfile::killedAt(rates[idx], t);
      }
    }
  };
  double bound = 0.0;
  try {
    applyEvents(args.getString("kill"), /*flap=*/false);
    applyEvents(args.getString("flap"), /*flap=*/true);
    bound = flow::makespanLowerBound(items, profiles);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gol3: %s\n", e.what());
    return 2;
  }
  if (args.getFlag("json")) {
    std::printf("{\"makespan_lower_bound_s\": %.9g}\n", bound);
  } else {
    std::printf("makespan lower bound: %.3f s (%zu items, %zu paths)\n",
                bound, items.size(), profiles.size());
  }
  return 0;
}

int cmdTraceDslam(int argc, const char* const* argv) {
  cli::ArgParser args("gol3 trace-dslam", "Generate a DSLAM day as CSV");
  args.addString("out", "output CSV path");
  args.addInt("subscribers", "DSL lines behind the DSLAM", 18000);
  args.addInt("seed", "random seed", 42);
  if (!args.parse(argc, argv, 2)) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" : (args.error() + "\n").c_str(),
                 args.usage().c_str());
    return args.helpRequested() ? 0 : 2;
  }
  trace::DslamTraceConfig cfg;
  cfg.subscribers = static_cast<std::size_t>(args.getInt("subscribers"));
  sim::Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));
  const auto trace = trace::generateDslamTrace(cfg, rng);
  trace::saveDslamTrace(args.getString("out"), trace);
  std::printf("wrote %zu requests from %zu video users to %s\n",
              trace.requests.size(), trace.video_users,
              args.getString("out").c_str());
  return 0;
}

int cmdTraceMno(int argc, const char* const* argv) {
  cli::ArgParser args("gol3 trace-mno", "Generate an MNO usage dataset CSV");
  args.addString("out", "output CSV path");
  args.addInt("users", "subscriber count", 20000);
  args.addInt("months", "months of history", 12);
  args.addInt("seed", "random seed", 42);
  if (!args.parse(argc, argv, 2)) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" : (args.error() + "\n").c_str(),
                 args.usage().c_str());
    return args.helpRequested() ? 0 : 2;
  }
  trace::MnoConfig cfg;
  cfg.users = static_cast<std::size_t>(args.getInt("users"));
  cfg.months = static_cast<int>(args.getInt("months"));
  sim::Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));
  const auto ds = trace::generateMnoDataset(cfg, rng);
  trace::saveMnoDataset(args.getString("out"), ds);
  std::printf("wrote %zu users x %d months to %s\n", ds.users.size(),
              cfg.months, args.getString("out").c_str());
  return 0;
}

int cmdMetro(int argc, const char* const* argv) {
  cli::ArgParser args("gol3 metro",
                      "City-scale sharded simulation: neighborhoods of DSL "
                      "households grouped into cell-tower areas, run across "
                      "component-sharded event loops with conservative "
                      "window sync");
  args.addInt("neighborhoods", "neighborhoods (one DSLAM each)", 64);
  args.addInt("households", "households per neighborhood", 25);
  args.addInt("area", "neighborhoods per cell-tower area", 4);
  args.addInt("phones", "phones per household", 1);
  args.addInt("shards", "shard count (0 = one per neighborhood)", 4);
  args.addDouble("window", "conservative sync window, sim seconds", 5.0);
  args.addDouble("horizon", "simulated seconds", 600.0);
  args.addString("scheduler", core::SchedulerRegistry::instance().namesJoined(),
                 "greedy");
  args.addInt("seed", "random seed", 1);
  args.addFlag("json", "print the aggregate result as JSON");
  if (!args.parse(argc, argv, 2)) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" : (args.error() + "\n").c_str(),
                 args.usage().c_str());
    return args.helpRequested() ? 0 : 2;
  }

  core::MetroConfig cfg;
  cfg.neighborhoods = static_cast<int>(args.getInt("neighborhoods"));
  cfg.households_per_neighborhood = static_cast<int>(args.getInt("households"));
  cfg.neighborhoods_per_area = static_cast<int>(args.getInt("area"));
  cfg.phones_per_household = static_cast<int>(args.getInt("phones"));
  cfg.shards = static_cast<std::size_t>(args.getInt("shards"));
  if (cfg.shards == 0) cfg.shards = static_cast<std::size_t>(cfg.neighborhoods);
  cfg.window_s = args.getDouble("window");
  cfg.horizon_s = args.getDouble("horizon");
  cfg.scheduler = args.getString("scheduler");
  if (!core::SchedulerRegistry::instance().known(cfg.scheduler)) {
    std::fprintf(stderr, "gol3: unknown scheduler '%s' (available: %s)\n",
                 cfg.scheduler.c_str(),
                 core::SchedulerRegistry::instance().namesJoined().c_str());
    return 2;
  }
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed"));

  core::MetroSimulation metro(cfg);
  exec::ThreadPool pool;
  const core::MetroResult res = metro.run(pool);
  if (args.getFlag("json")) {
    std::printf("{\"households\": %" PRIu64 ", \"transactions\": %" PRIu64
                ", \"items_ok\": %" PRIu64 ", \"items_failed\": %" PRIu64
                ", \"bytes\": %.9g, \"cell_bytes\": %.9g, \"events\": %" PRIu64
                ", \"windows\": %zu, \"shards\": %zu, \"sim_s\": %.9g"
                ", \"digest\": \"%016" PRIx64 "\"}\n",
                res.households, res.transactions, res.items_ok,
                res.items_failed, res.bytes, res.cell_bytes, res.events,
                res.windows, res.shard_count, res.sim_s, res.digest);
    return 0;
  }
  std::printf("%" PRIu64 " households, %" PRIu64 " transactions, %" PRIu64
              " items (%.3f GB, %.1f%% onloaded) over %.0f sim-s\n",
              res.households, res.transactions, res.items_ok, res.bytes / 1e9,
              res.bytes > 0 ? 100.0 * res.cell_bytes / res.bytes : 0.0,
              res.sim_s);
  std::printf("%" PRIu64 " events, %zu shards x %zu windows, digest %016"
              PRIx64 "\n",
              res.events, res.shard_count, res.windows, res.digest);
  std::fprintf(stderr, "[metro] %.2f s wall, %.0f events/s\n", res.wall_s,
               res.eventsPerSec());
  return 0;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: gol3 <command> [options] [--metrics-out FILE]\n"
               "commands:\n"
               "  vod          run one VoD powerboost\n"
               "  upload       upload a photo set\n"
               "  estimate     Sec. 6 allowance estimator\n"
               "  oracle       offline LP/flow lower bound on makespan\n"
               "  trace-dslam  generate a DSLAM trace CSV\n"
               "  trace-mno    generate an MNO dataset CSV\n"
               "  metro        city-scale sharded simulation\n"
               "schedulers (--scheduler): %s\n"
               "run 'gol3 <command> --help' for command options\n"
               "--metrics-out FILE works with every command: dumps the "
               "telemetry registry as JSON after the run\n"
               "--jobs N works with every command: caps worker threads for "
               "parallel sections (default: all hardware threads)\n",
               core::SchedulerRegistry::instance().namesJoined().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-out and --jobs are handled here, before command dispatch, so
  // every command gets observability and thread control without growing its
  // own parser.
  std::string metrics_out;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      exec::ThreadPool::setDefaultThreads(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
      continue;
    }
    filtered.push_back(argv[i]);
  }
  const int fargc = static_cast<int>(filtered.size());
  char** fargv = filtered.data();

  if (fargc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = fargv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  int rc = 2;
  if (cmd == "vod") rc = cmdVod(fargc, fargv);
  else if (cmd == "upload") rc = cmdUpload(fargc, fargv);
  else if (cmd == "estimate") rc = cmdEstimate(fargc, fargv);
  else if (cmd == "oracle") rc = cmdOracle(fargc, fargv);
  else if (cmd == "trace-dslam") rc = cmdTraceDslam(fargc, fargv);
  else if (cmd == "trace-mno") rc = cmdTraceMno(fargc, fargv);
  else if (cmd == "metro") rc = cmdMetro(fargc, fargv);
  else usage(stderr);

  if (!metrics_out.empty()) {
    try {
      telemetry::writeJsonSnapshot(telemetry::Registry::global(), metrics_out);
      // stderr, not stdout: `--json` pipelines parse stdout.
      std::fprintf(stderr, "metrics: %s\n", metrics_out.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gol3: %s\n", e.what());
      return 1;
    }
  }
  return rc;
}
