// Wall-clock timing for the engine-churn scenario (8 fake paths,
// round-robin, one flaky path) — the same shape as the million-item churn
// test, without the hashing. Build this tool on two revisions (a git
// worktree works well) to A/B engine bookkeeping changes end to end:
//   ./build/tools/churn_time 1000000
// Wall numbers are machine-dependent; the items/s ratio between two
// builds on the same machine is the signal.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/round_robin_scheduler.hpp"
#include "../tests/fake_path.hpp"
#include "sim/simulator.hpp"

using namespace gol;
using namespace gol::core;
using namespace gol::core::testing;

int main(int argc, char** argv) {
  const std::size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 100000;
  sim::Simulator sim;
  std::vector<std::unique_ptr<FakePath>> paths;
  std::vector<TransferPath*> raw;
  const double rates[] = {20e6, 16e6, 12e6, 11e6, 9e6, 8e6, 6e6, 5e6};
  for (int p = 0; p < 8; ++p) {
    paths.push_back(std::make_unique<FakePath>(
        sim, "p" + std::to_string(p), rates[p]));
    raw.push_back(paths.back().get());
  }
  paths[3]->failNextStarts(400, 0.02);

  RoundRobinScheduler scheduler;
  EngineConfig cfg;
  cfg.retry.max_attempts = 5;
  cfg.retry.base_backoff_s = 0.2;
  TransactionEngine engine(sim, raw, scheduler, cfg);
  engine.instrument(nullptr);

  std::vector<double> sizes;
  sizes.reserve(items);
  for (std::size_t i = 0; i < items; ++i)
    sizes.push_back(30e3 + static_cast<double>(i % 11) * 8e3);
  Transaction txn = makeTransaction(TransferDirection::kDownload, sizes);

  bool done = false;
  TransactionResult result;
  const auto t0 = std::chrono::steady_clock::now();
  engine.run(std::move(txn), [&](TransactionResult r) {
    result = std::move(r);
    done = true;
  });
  sim.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!done) return 1;
  std::printf("%zu items: %.3f s (%.0f items/s), outcome %d, retries %llu, "
              "sim slots %zu\n",
              items, secs, static_cast<double>(items) / secs,
              static_cast<int>(result.outcome),
              static_cast<unsigned long long>(result.retries),
              sim.slotCapacity());
  return 0;
}
