// One-shot generator for the columnar-core regression goldens: runs the
// frozen churn scenarios (tests/churn_scenario.hpp) and prints the JSON
// digests (and the small scenario's full JSON) that item_table_test.cpp
// pins. Run it against a known-good engine to regenerate the constants.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "../tests/churn_scenario.hpp"

int main(int argc, char** argv) {
  using namespace gol::core::testing;
  const std::size_t big = argc > 1
      ? static_cast<std::size_t>(std::atoll(argv[1]))
      : 1000000;

  ChurnRun small = runFaultyChurnScenario(2000);
  std::printf("== faulty churn (2000 items) ==\n");
  std::printf("json_hash = 0x%016llxULL\n",
              static_cast<unsigned long long>(small.json_hash));
  std::printf("sim_slot_capacity = %zu\n", small.sim_slot_capacity);
  std::printf("json:\n%s\n", small.json.c_str());

  ChurnRun million = runMillionChurnScenario(big);
  std::printf("== million churn (%zu items) ==\n", big);
  std::printf("json_hash = 0x%016llxULL\n",
              static_cast<unsigned long long>(million.json_hash));
  std::printf("sim_slot_capacity = %zu\n", million.sim_slot_capacity);
  std::printf("outcome=%s duration=%.6f delivered=%.0f wasted=%.0f "
              "salvaged=%.0f retries=%zu timeouts=%zu\n",
              gol::core::toString(million.result.outcome),
              million.result.duration_s, million.result.delivered_bytes,
              million.result.wasted_bytes, million.result.salvaged_bytes,
              million.result.retries, million.result.timeouts);
  return 0;
}
