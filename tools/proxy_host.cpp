// Standalone host for one governed onload proxy — the unit of deployment
// the crash-recovery story is about. A production fleet restarts its
// proxies constantly (deploys, OOM kills, host failures); this binary
// gives the proxy a full service lifecycle:
//
//   * cold start: replay the quota journal, truncate any torn tail,
//     restore the tenant ledgers, and only then start admitting — spent
//     quota is never re-granted across a crash;
//   * steady state: every charge/allowance/day-roll is journaled with
//     batched group-commit (sync interval / bytes-at-risk bound), the log
//     auto-compacts via snapshot + rename;
//   * shutdown: SIGTERM/SIGINT walk the graceful-drain ladder (goodbye
//     datagram, stop admitting, drain relays under a deadline, flush +
//     checkpoint the journal) and exit 0 — or nonzero when the deadline
//     had to force-close relays.
//
// stdout protocol (consumed by tools/proxy_load's crash harness):
//   RECOVERED tenants=N records=N charged=BYTES torn=0|1 ms=T
//   READY port=P pid=PID
//   DRAINED forced=N
//
//   ./build/tools/proxy_host --port 8431 --upstream-port 8080
//       --journal phone0.wal --quota 1e6
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <string>

#include "proto/epoll_loop.hpp"
#include "proto/proxy.hpp"
#include "proto/quota_journal.hpp"
#include "proto/tenant_governor.hpp"
#include "proto/udp_discovery.hpp"

namespace {

using namespace gol::proto;
using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_drain_requested = 0;

void onSignal(int) { g_drain_requested = 1; }

struct Args {
  std::uint16_t port = 0;           ///< 0 = ephemeral (printed in READY).
  std::uint16_t upstream_port = 0;  ///< Required.
  std::string journal;              ///< Empty = volatile (no durability).
  std::string truth;                ///< Ground-truth charge log (harness).
  double quota = 50e6;
  int days = 1;
  double sync_interval_ms = 50;
  double bytes_at_risk = 256e3;
  double compact_bytes = 1 << 20;
  std::size_t max_conns = 64;
  std::size_t buffer_watermark = 128 * 1024;
  double idle_timeout_ms = 2000;
  double down_bps = 8e6;
  double up_bps = 2e6;
  double drain_deadline_ms = 5000;
  std::uint16_t announce_port = 0;  ///< UDP discovery listener (0 = off).
  std::string name = "phone";
  bool fsync = true;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --upstream-port P [--port P] [--journal PATH]\n"
      "          [--truth PATH] [--quota BYTES] [--days N]\n"
      "          [--sync-interval-ms MS] [--bytes-at-risk BYTES]\n"
      "          [--compact-bytes BYTES] [--max-conns N]\n"
      "          [--buffer-watermark BYTES] [--idle-timeout-ms MS]\n"
      "          [--down-bps R] [--up-bps R] [--drain-deadline-ms MS]\n"
      "          [--announce-port P] [--name NAME] [--no-fsync]\n",
      argv0);
  std::exit(2);
}

Args parseArgs(int argc, char** argv) {
  Args a;
  auto num = [&](int& i) -> double {
    if (i + 1 >= argc) usage(argv[0]);
    return std::atof(argv[++i]);
  };
  auto str = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--port") a.port = static_cast<std::uint16_t>(num(i));
    else if (flag == "--upstream-port")
      a.upstream_port = static_cast<std::uint16_t>(num(i));
    else if (flag == "--journal") a.journal = str(i);
    else if (flag == "--truth") a.truth = str(i);
    else if (flag == "--quota") a.quota = num(i);
    else if (flag == "--days") a.days = static_cast<int>(num(i));
    else if (flag == "--sync-interval-ms") a.sync_interval_ms = num(i);
    else if (flag == "--bytes-at-risk") a.bytes_at_risk = num(i);
    else if (flag == "--compact-bytes") a.compact_bytes = num(i);
    else if (flag == "--max-conns") a.max_conns = static_cast<std::size_t>(num(i));
    else if (flag == "--buffer-watermark")
      a.buffer_watermark = static_cast<std::size_t>(num(i));
    else if (flag == "--idle-timeout-ms") a.idle_timeout_ms = num(i);
    else if (flag == "--down-bps") a.down_bps = num(i);
    else if (flag == "--up-bps") a.up_bps = num(i);
    else if (flag == "--drain-deadline-ms") a.drain_deadline_ms = num(i);
    else if (flag == "--announce-port")
      a.announce_port = static_cast<std::uint16_t>(num(i));
    else if (flag == "--name") a.name = str(i);
    else if (flag == "--no-fsync") a.fsync = false;
    else usage(argv[0]);
  }
  if (a.upstream_port == 0) usage(argv[0]);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);

  // SIGTERM (deploy/orchestrator) and SIGINT (operator ^C) both request
  // the graceful drain; SIGKILL is the crash the journal exists for.
  struct sigaction sa{};
  sa.sa_handler = onSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  EpollLoop loop;

  // --- Cold start: recover the durable ledger before admitting anyone.
  std::optional<QuotaJournal> journal;
  TenantGovernorConfig gcfg;
  gcfg.days_per_month = args.days;
  gcfg.default_monthly_allowance_bytes = args.quota;
  TenantGovernor governor(gcfg);
  if (!args.journal.empty()) {
    QuotaJournalConfig jcfg;
    jcfg.path = args.journal;
    jcfg.days_per_month = args.days;
    jcfg.sync_interval = std::chrono::milliseconds(
        static_cast<long>(args.sync_interval_ms));
    jcfg.bytes_at_risk_limit = args.bytes_at_risk;
    jcfg.compact_min_bytes = static_cast<std::size_t>(args.compact_bytes);
    jcfg.fsync = args.fsync;
    journal.emplace(jcfg);
    const auto t0 = Clock::now();
    const ReplayResult recovered = journal->open();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    governor.restore(recovered.state);
    governor.attachJournal(&*journal);
    std::printf("RECOVERED tenants=%zu records=%zu charged=%.0f torn=%d "
                "ms=%.2f\n",
                recovered.state.size(), recovered.records,
                recovered.charged_bytes, recovered.torn ? 1 : 0, ms);
  }

  // Ground-truth charge log for the crash harness: plain write() per
  // charge, no userspace buffering — survives kill -9 exactly, which is
  // what makes "recovered <= truth, gap <= one sync window" checkable.
  int truth_fd = -1;
  if (!args.truth.empty()) {
    truth_fd = ::open(args.truth.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (truth_fd < 0) {
      std::perror("proxy_host: open --truth");
      return 2;
    }
    governor.on_charge = [truth_fd](const std::string& tenant, double bytes) {
      char line[128];
      const int n = std::snprintf(line, sizeof line, "%s %.0f\n",
                                  tenant.c_str(), bytes);
      if (n > 0) {
        [[maybe_unused]] const auto ignored =
            ::write(truth_fd, line, static_cast<std::size_t>(n));
      }
    };
  }

  ProxyConfig pcfg;
  pcfg.listen_port = args.port;
  pcfg.upstream_port = args.upstream_port;
  pcfg.down_bps = args.down_bps;
  pcfg.up_bps = args.up_bps;
  pcfg.max_connections = args.max_conns;
  pcfg.accept_queue_limit = std::max<std::size_t>(4, args.max_conns / 4);
  pcfg.buffer_watermark = args.buffer_watermark;
  pcfg.idle_timeout =
      std::chrono::milliseconds(static_cast<long>(args.idle_timeout_ms));
  pcfg.drain_deadline =
      std::chrono::milliseconds(static_cast<long>(args.drain_deadline_ms));
  pcfg.governor = &governor;

  int exit_code = 0;
  {
    OnloadProxy proxy(loop, pcfg);

    // Discovery: a restarted proxy re-announces immediately (start() sends
    // the first beacon synchronously) instead of waiting an interval out.
    std::optional<UdpDiscoveryBeacon> beacon;
    if (args.announce_port != 0) {
      beacon.emplace(loop, args.announce_port,
                     [&]() -> std::optional<Advertisement> {
                       if (proxy.draining()) return std::nullopt;
                       Advertisement ad;
                       ad.name = args.name;
                       ad.proxy_port = proxy.port();
                       ad.quota_bytes =
                           static_cast<std::uint64_t>(std::max(0.0, args.quota));
                       return ad;
                     });
      beacon->start();
    }

    // Group-commit heartbeat: appends batch between ticks; the tick pushes
    // out a tail that would otherwise sit in userspace past the window.
    std::function<void()> flusher = [&] {
      if (journal) journal->flush();
      loop.runAfter(std::chrono::milliseconds(
                        static_cast<long>(args.sync_interval_ms)),
                    [&] { flusher(); });
    };
    if (journal) {
      loop.runAfter(std::chrono::milliseconds(
                        static_cast<long>(args.sync_interval_ms)),
                    [&] { flusher(); });
    }

    std::printf("READY port=%u pid=%d\n", proxy.port(),
                static_cast<int>(::getpid()));
    std::fflush(stdout);

    // Serve until a drain is requested. runUntil polls every 20 ms, so the
    // sig_atomic_t flag is observed promptly without a self-pipe.
    for (;;) {
      loop.runUntil([&] { return g_drain_requested != 0; },
                    std::chrono::hours(24));
      if (g_drain_requested) break;
    }

    // --- Drain ladder ---
    if (beacon) {
      beacon->stop();
      beacon->sendGoodbye(args.name);  // clients stop routing here NOW
    }
    proxy.beginDrain();
    loop.runUntil([&] { return proxy.drainComplete(); },
                  std::chrono::milliseconds(
                      static_cast<long>(args.drain_deadline_ms) + 2000));
    if (journal) governor.checkpoint();  // flush + compact to a snapshot
    std::printf("DRAINED forced=%zu\n", proxy.drainForcedCloses());
    std::fflush(stdout);
    exit_code = proxy.drainForcedCloses() > 0 ? 3 : 0;
  }
  if (truth_fd >= 0) ::close(truth_fd);
  return exit_code;
}
