// Soak harness for the hardened onload proxy service: a closed-loop fleet
// of multipath clients (each a distinct tenant source address) hammering a
// bank of governed phone proxies plus an always-available ADSL leg, with
// optional socket-level fault injection — relay kills, proxy blackouts, and
// tenant quota exhaustion/refresh cycles.
//
// Reports transaction latency percentiles (p50/p99/p999), request rate, and
// the overload/degradation books (sheds, denials, quota kills, degraded
// transactions), checks for fd and RSS leaks across the run, and writes the
// machine-readable counterpart to BENCH_proxy_load.json (the committed seed
// lives in bench/seeds/).
//
// --crash-soak swaps the in-process phone bank for out-of-process
// tools/proxy_host children (each with its own WAL journal and a ground-
// truth charge log), then rotates SIGKILL across them at a jittered period
// with immediate restart on the same port/journal. The harness verifies
// the durability contract end to end: recovered per-tenant usage never
// exceeds the ground truth (zero double-charges), the truth-vs-recovered
// gap stays within one sync window per crash, the client fleet rides the
// restarts transparently (reconnect + Range-resume, zero corrupt
// payloads), and the final SIGTERM drains every child to exit 0. Restart/
// recovery-time percentiles land in BENCH_proxy_load.json.
//
//   ./build/tools/proxy_load --clients 1000 --duration-s 30 --faults
//   ./build/tools/proxy_load --clients 200 --duration-s 20 --crash-soak
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "proto/multipath_client.hpp"
#include "proto/origin_server.hpp"
#include "proto/proxy.hpp"
#include "proto/quota_journal.hpp"
#include "proto/socket.hpp"
#include "proto/tenant_governor.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace gol;
using namespace gol::proto;
using Clock = std::chrono::steady_clock;

struct Args {
  int clients = 200;
  double duration_s = 10.0;
  int tenants = 32;
  int phones = 3;
  int items = 3;
  std::size_t bytes = 30000;
  bool faults = false;
  std::size_t max_conns = 64;
  double tenant_quota = 1e6;  ///< bytes per tenant per refresh period
  std::size_t buffer_watermark = 128 * 1024;
  // --- Crash-soak mode (out-of-process proxy_host children) ---
  bool crash_soak = false;
  double crash_period_ms = 1500;   ///< mean period between SIGKILLs
  double sync_interval_ms = 25;    ///< child journal group-commit window
  double bytes_at_risk = 64e3;     ///< child journal flush-by-bytes edge
  double drain_deadline_ms = 4000; ///< child graceful-drain budget
  std::string proxy_host_bin;      ///< default: <dir of argv[0]>/proxy_host
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--duration-s S] [--tenants N]\n"
               "          [--phones N] [--items N] [--bytes N] [--faults]\n"
               "          [--max-conns N] [--tenant-quota BYTES]\n"
               "          [--buffer-watermark BYTES]\n"
               "          [--crash-soak] [--crash-period-ms MS]\n"
               "          [--sync-interval-ms MS] [--bytes-at-risk BYTES]\n"
               "          [--drain-deadline-ms MS] [--proxy-host-bin PATH]\n",
               argv0);
  std::exit(2);
}

Args parseArgs(int argc, char** argv) {
  Args a;
  auto num = [&](int& i) -> double {
    if (i + 1 >= argc) usage(argv[0]);
    return std::atof(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--clients") a.clients = static_cast<int>(num(i));
    else if (flag == "--duration-s") a.duration_s = num(i);
    else if (flag == "--tenants") a.tenants = static_cast<int>(num(i));
    else if (flag == "--phones") a.phones = static_cast<int>(num(i));
    else if (flag == "--items") a.items = static_cast<int>(num(i));
    else if (flag == "--bytes") a.bytes = static_cast<std::size_t>(num(i));
    else if (flag == "--faults") a.faults = true;
    else if (flag == "--max-conns") a.max_conns = static_cast<std::size_t>(num(i));
    else if (flag == "--tenant-quota") a.tenant_quota = num(i);
    else if (flag == "--buffer-watermark")
      a.buffer_watermark = static_cast<std::size_t>(num(i));
    else if (flag == "--crash-soak") a.crash_soak = true;
    else if (flag == "--crash-period-ms") a.crash_period_ms = num(i);
    else if (flag == "--sync-interval-ms") a.sync_interval_ms = num(i);
    else if (flag == "--bytes-at-risk") a.bytes_at_risk = num(i);
    else if (flag == "--drain-deadline-ms") a.drain_deadline_ms = num(i);
    else if (flag == "--proxy-host-bin") {
      if (i + 1 >= argc) usage(argv[0]);
      a.proxy_host_bin = argv[++i];
    }
    else usage(argv[0]);
  }
  if (a.clients < 1 || a.tenants < 1 || a.phones < 1 || a.items < 1)
    usage(argv[0]);
  return a;
}

std::size_t openFdCount() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++n;
  return n;
}

std::size_t rssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream is(line.substr(6));
      std::size_t kb = 0;
      is >> kb;
      return kb;
    }
  }
  return 0;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::vector<FetchItem> makeItems(int count, std::size_t bytes) {
  std::vector<FetchItem> items;
  for (int i = 0; i < count; ++i)
    items.push_back({"/obj/" + std::to_string(bytes), bytes});
  return items;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Ground-truth charge log written by proxy_host's on_charge hook: one
/// "tenant bytes" line per charge, unbuffered write() so it survives
/// SIGKILL exactly. Returns per-tenant totals.
std::map<std::string, double> parseTruth(const std::string& path) {
  std::map<std::string, double> totals;
  std::ifstream f(path);
  std::string tenant;
  double bytes = 0;
  while (f >> tenant >> bytes) totals[tenant] += bytes;
  return totals;
}

/// One out-of-process governed proxy (a tools/proxy_host child) under
/// crash rotation: fixed pre-picked port, persistent journal + truth
/// files that survive every SIGKILL/restart cycle.
struct PhoneProc {
  std::uint16_t port = 0;
  std::string journal, truth, log;
  pid_t pid = -1;
  bool ready = false;  ///< READY seen in log since the last (re)spawn
  int spawns = 0;
  int crashes = 0;  ///< SIGKILLs the harness inflicted
  Clock::time_point spawned_at{};
};

/// Reserves an ephemeral loopback port by binding and immediately
/// releasing it; the child rebinds it with SO_REUSEADDR. Keeping the port
/// fixed across restarts is what lets clients reconnect transparently.
std::uint16_t pickPort() {
  const auto l = listenTcp(0);
  return l ? l->port : 0;
}

std::string defaultHostBin(const char* argv0) {
  const std::filesystem::path p(argv0);
  if (p.has_parent_path()) return (p.parent_path() / "proxy_host").string();
  return "./proxy_host";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  const std::size_t fds_before = openFdCount();
  const std::size_t rss_before_kb = rssKb();

  // Aggregate books harvested across every finished transaction.
  std::vector<double> latencies_s;
  std::size_t transactions = 0, degraded = 0, partial = 0, items_done = 0;
  std::size_t retries = 0, timeouts = 0, quota_denials = 0, busy_sheds = 0;
  std::size_t corrupt = 0;
  // Service-side books, copied out before teardown.
  std::size_t shed_busy = 0, shed_fd = 0, denied_quota = 0, quota_kills = 0;
  std::size_t idle_closed = 0, bp_pauses = 0, peak_buffered = 0;
  std::size_t governor_denied = 0, governor_shed = 0, tenant_count = 0;
  bool all_terminated = false;
  double elapsed_s = 0;
  // Crash-soak books (populated only with --crash-soak).
  std::size_t crash_restarts = 0, unexpected_deaths = 0, drain_forced = 0;
  std::size_t journal_torn_final = 0;
  bool final_drain_clean = true;
  std::vector<double> recovery_ms;
  double truth_bytes_total = 0, recovered_bytes_total = 0;
  double quota_lost = 0, quota_lost_bound = 0, double_charge_bytes = 0;
  std::string crash_dir;

  {
    EpollLoop loop;
    OriginServer origin(loop);

    TenantGovernorConfig gcfg;
    gcfg.days_per_month = 1;  // whole budget live; nextDay() = fresh period
    gcfg.default_monthly_allowance_bytes = args.tenant_quota;
    TenantGovernor governor(gcfg);

    // The governed, capped phone bank — the metered 3G legs. In crash-soak
    // mode the bank is out-of-process proxy_host children instead, so a
    // SIGKILL takes out a whole proxy (sockets, buffers, in-memory ledger)
    // the way a real deploy kill or OOM does.
    std::vector<std::unique_ptr<OnloadProxy>> phones;
    if (!args.crash_soak) {
      for (int p = 0; p < args.phones; ++p) {
        ProxyConfig cfg;
        cfg.upstream_port = origin.port();
        cfg.down_bps = 8e6;
        cfg.up_bps = 2e6;
        cfg.max_connections = args.max_conns;
        cfg.accept_queue_limit = std::max<std::size_t>(4, args.max_conns / 4);
        cfg.buffer_watermark = args.buffer_watermark;
        cfg.idle_timeout = std::chrono::milliseconds(2000);
        cfg.governor = &governor;
        phones.push_back(std::make_unique<OnloadProxy>(loop, cfg));
        phones.back()->instrument(&telemetry::Registry::global());
      }
    }

    std::vector<PhoneProc> procs;
    const std::string host_bin = !args.proxy_host_bin.empty()
                                     ? args.proxy_host_bin
                                     : defaultHostBin(argv[0]);
    // (Re)spawns a child on its fixed port against its persistent journal;
    // stdout goes to a per-incarnation log the parent polls for READY.
    const auto spawnChild = [&](PhoneProc& ph) {
      ph.spawned_at = Clock::now();
      ph.ready = false;
      ++ph.spawns;
      std::vector<std::string> cargs = {
          host_bin,
          "--port", std::to_string(ph.port),
          "--upstream-port", std::to_string(origin.port()),
          "--journal", ph.journal,
          "--truth", ph.truth,
          "--quota", std::to_string(args.tenant_quota),
          "--days", "1",
          "--sync-interval-ms", std::to_string(args.sync_interval_ms),
          "--bytes-at-risk", std::to_string(args.bytes_at_risk),
          "--max-conns", std::to_string(args.max_conns),
          "--buffer-watermark", std::to_string(args.buffer_watermark),
          "--idle-timeout-ms", "2000",
          "--drain-deadline-ms", std::to_string(args.drain_deadline_ms),
      };
      const pid_t pid = ::fork();
      if (pid == 0) {
        const int logfd =
            ::open(ph.log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (logfd >= 0) {
          ::dup2(logfd, STDOUT_FILENO);
          ::close(logfd);
        }
        std::vector<char*> argvv;
        argvv.reserve(cargs.size() + 1);
        for (auto& s : cargs) argvv.push_back(s.data());
        argvv.push_back(nullptr);
        ::execv(host_bin.c_str(), argvv.data());
        _exit(127);
      }
      ph.pid = pid;
    };
    if (args.crash_soak) {
      std::string tmpl =
          (std::filesystem::temp_directory_path() / "gol3_crash.XXXXXX")
              .string();
      if (::mkdtemp(tmpl.data()) == nullptr) {
        std::perror("proxy_load: mkdtemp");
        return 2;
      }
      crash_dir = tmpl;
      for (int p = 0; p < args.phones; ++p) {
        PhoneProc ph;
        ph.port = pickPort();
        const std::string base = crash_dir + "/phone" + std::to_string(p);
        ph.journal = base + ".wal";
        ph.truth = base + ".truth";
        ph.log = base + ".log";
        procs.push_back(std::move(ph));
        spawnChild(procs.back());
      }
    }
    // Reaps unexpected child deaths (respawning to keep the soak alive,
    // but recorded as a hard failure) and promotes freshly spawned
    // children to ready once READY shows up in their log — the delta
    // from spawn to READY is the restart/recovery time.
    const auto pollChildren = [&] {
      for (auto& ph : procs) {
        if (ph.pid <= 0) continue;
        int st = 0;
        if (::waitpid(ph.pid, &st, WNOHANG) == ph.pid) {
          ++unexpected_deaths;
          ph.pid = -1;
          spawnChild(ph);
          continue;
        }
        if (!ph.ready && slurp(ph.log).find("READY port=") !=
                             std::string::npos) {
          ph.ready = true;
          if (ph.spawns > 1)  // cold boot isn't a recovery
            recovery_ms.push_back(std::chrono::duration<double, std::milli>(
                                      Clock::now() - ph.spawned_at)
                                      .count());
        }
      }
    };
    if (args.crash_soak) {
      // Wait out the cold boots so the soak clock measures steady state.
      loop.runUntil(
          [&] {
            pollChildren();
            return std::all_of(procs.begin(), procs.end(),
                               [](const PhoneProc& p) { return p.ready; });
          },
          std::chrono::milliseconds(10000));
    }
    // The ADSL leg: slower, uncapped, ungoverned — completion is always
    // possible, so degradation never becomes failure.
    ProxyConfig adsl_cfg;
    adsl_cfg.upstream_port = origin.port();
    adsl_cfg.down_bps = 2e6;
    adsl_cfg.buffer_watermark = args.buffer_watermark;
    OnloadProxy adsl(loop, adsl_cfg);

    std::vector<Endpoint> endpoints{{"adsl", adsl.port()}};
    for (int p = 0; p < args.phones; ++p)
      endpoints.push_back(
          {"phone" + std::to_string(p),
           args.crash_soak ? procs[static_cast<std::size_t>(p)].port
                           : phones[static_cast<std::size_t>(p)]->port()});

    // The closed-loop fleet: each client finishes a transaction and starts
    // the next until the deadline. Clients persist across transactions so
    // endpoint health and rate estimates carry over, as they would in a
    // long-lived household gateway.
    struct Fleet {
      std::unique_ptr<MultipathHttpClient> client;
      bool harvested = false;
    };
    std::vector<Fleet> fleet;
    for (int i = 0; i < args.clients; ++i) {
      ClientConfig ccfg;
      // Under deliberate oversubscription most attempts die to busy sheds;
      // a deeper attempt budget lets items ride the backoff out to the
      // uncapped ADSL leg instead of exhausting and failing.
      ccfg.max_attempts = 8;
      ccfg.base_backoff = std::chrono::milliseconds(50);
      ccfg.quarantine = std::chrono::milliseconds(300);
      // Tenant identity: a distinct loopback source address per tenant,
      // shared by clients of the same household (127.1.x.y).
      const auto tenant = static_cast<std::uint32_t>(i % args.tenants);
      ccfg.bind_addr = 0x7f010000u + tenant;
      fleet.push_back(
          {std::make_unique<MultipathHttpClient>(loop, endpoints, ccfg),
           false});
      fleet.back().client->start(makeItems(args.items, args.bytes));
    }

    const auto t0 = Clock::now();
    const auto deadline =
        t0 + std::chrono::microseconds(
                 static_cast<long>(args.duration_s * 1e6));
    bool past_deadline = false;

    // Crash plan: rotate SIGKILL across the child bank at a jittered
    // period ("at a random offset" — never aligned with sync flushes),
    // respawning immediately on the same port and journal. waitpid right
    // after SIGKILL is effectively instant.
    std::function<void()> crasher;
    std::size_t crash_idx = 0;
    std::minstd_rand crash_rng(0x3601u);
    if (args.crash_soak) {
      crasher = [&] {
        if (past_deadline) return;
        auto& ph = procs[crash_idx++ % procs.size()];
        if (ph.pid > 0 && ph.ready) {
          ::kill(ph.pid, SIGKILL);
          ::waitpid(ph.pid, nullptr, 0);
          ph.pid = -1;
          ++ph.crashes;
          ++crash_restarts;
          spawnChild(ph);
        }
        const double jitter =
            args.crash_period_ms *
            (0.5 + static_cast<double>(crash_rng() % 1000) / 1000.0);
        loop.runAfter(std::chrono::milliseconds(static_cast<long>(jitter)),
                      [&] { crasher(); });
      };
      loop.runAfter(std::chrono::milliseconds(
                        static_cast<long>(args.crash_period_ms)),
                    [&] { crasher(); });
    }

    // Fault plan: rotate relay kills across the phone bank, black out one
    // proxy periodically, and roll tenant quotas so exhaustion/denial/
    // refresh cycles all happen mid-soak. (In crash-soak mode the SIGKILL
    // rotation IS the fault plan; the in-process injectors have no bank.)
    std::function<void()> killer, blackout, refresher;
    std::size_t kill_idx = 0, blackout_idx = 0;
    if (args.faults && !args.crash_soak) {
      killer = [&] {
        if (past_deadline) return;
        phones[kill_idx++ % phones.size()]->killActiveConnections();
        loop.runAfter(std::chrono::milliseconds(1100), [&] { killer(); });
      };
      blackout = [&] {
        if (past_deadline) return;
        auto& victim = *phones[blackout_idx++ % phones.size()];
        victim.pauseAccepting();
        loop.runAfter(std::chrono::milliseconds(400),
                      [&victim] { victim.resumeAccepting(); });
        loop.runAfter(std::chrono::milliseconds(1700), [&] { blackout(); });
      };
      refresher = [&] {
        if (past_deadline) return;
        governor.nextDay();
        loop.runAfter(std::chrono::milliseconds(2300), [&] { refresher(); });
      };
      loop.runAfter(std::chrono::milliseconds(500), [&] { killer(); });
      loop.runAfter(std::chrono::milliseconds(900), [&] { blackout(); });
      loop.runAfter(std::chrono::milliseconds(2300), [&] { refresher(); });
    }

    const auto harvest = [&](Fleet& f) {
      const auto& r = f.client->result();
      ++transactions;
      latencies_s.push_back(r.duration_s);
      degraded += r.outcome == FetchOutcome::kCompletedDegraded;
      partial += r.outcome == FetchOutcome::kPartialFailure;
      items_done +=
          static_cast<std::size_t>(args.items) - r.failed_items;
      retries += r.retries;
      timeouts += r.timeouts;
      quota_denials += r.quota_denials;
      busy_sheds += r.busy_sheds;
      corrupt += r.corrupt_payloads;
    };

    all_terminated = loop.runUntil(
        [&] {
          past_deadline = Clock::now() >= deadline;
          if (args.crash_soak) pollChildren();
          bool all_done = true;
          for (auto& f : fleet) {
            if (!f.client->done()) {
              all_done = false;
              continue;
            }
            if (!f.harvested) {
              harvest(f);
              f.harvested = true;
            }
            if (!past_deadline) {
              f.client->start(makeItems(args.items, args.bytes));
              f.harvested = false;
              all_done = false;
            }
          }
          return past_deadline && all_done;
        },
        std::chrono::milliseconds(
            static_cast<long>(args.duration_s * 1000) + 60000));
    elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();

    // Let the service drain relays whose clients walked away mid-fault.
    const auto quiet = [&] {
      if (adsl.activeConnections() + adsl.pendingConnections() != 0)
        return false;
      for (const auto& p : phones)
        if (p->activeConnections() + p->pendingConnections() != 0)
          return false;
      return true;
    };
    loop.runUntil(quiet, std::chrono::milliseconds(10000));

    if (args.crash_soak) {
      // Final lifecycle check: SIGTERM must walk every surviving child
      // down the graceful-drain ladder to exit 0.
      for (auto& ph : procs)
        if (ph.pid > 0) ::kill(ph.pid, SIGTERM);
      const auto drain_by =
          Clock::now() + std::chrono::milliseconds(
                             static_cast<long>(args.drain_deadline_ms) + 6000);
      for (auto& ph : procs) {
        if (ph.pid <= 0) continue;
        int st = 0;
        for (;;) {
          if (::waitpid(ph.pid, &st, WNOHANG) == ph.pid) break;
          if (Clock::now() >= drain_by) {
            ::kill(ph.pid, SIGKILL);
            ::waitpid(ph.pid, &st, 0);
            break;
          }
          ::usleep(20000);
        }
        if (!WIFEXITED(st) || WEXITSTATUS(st) != 0)
          final_drain_clean = false;
        const std::string log = slurp(ph.log);
        if (const auto pos = log.rfind("DRAINED forced=");
            pos != std::string::npos)
          drain_forced += static_cast<std::size_t>(
              std::atol(log.c_str() + pos + 15));
        else
          final_drain_clean = false;  // never printed its drain line
        ph.pid = -1;
      }

      // Conservation audit, the heart of the durability contract. Per
      // (child, tenant): recovered usage must never exceed the ground
      // truth (a double-charge would mean replay invented bytes), and the
      // total shortfall must fit inside one sync window per crash — the
      // userspace pending buffer (bytes_at_risk plus one in-flight charge,
      // bounded by the relay buffer watermark) times the crashes suffered,
      // doubled for a torn tail flush. Children never roll the day, so a
      // tenant's used_month IS its lifetime charged bytes.
      for (const auto& ph : procs) {
        const ReplayResult rr = QuotaJournal::replay(slurp(ph.journal), 1);
        journal_torn_final += rr.torn ? 1 : 0;
        const auto truth = parseTruth(ph.truth);
        for (const auto& [tenant, truth_bytes] : truth) {
          const auto it = rr.state.find(tenant);
          const double rec = it != rr.state.end() ? it->second.used_month : 0;
          truth_bytes_total += truth_bytes;
          recovered_bytes_total += rec;
          if (rec > truth_bytes + 1.0)
            double_charge_bytes += rec - truth_bytes;
          else
            quota_lost += std::max(0.0, truth_bytes - rec);
        }
        for (const auto& [tenant, ledger] : rr.state)
          if (truth.find(tenant) == truth.end() && ledger.used_month > 1.0)
            double_charge_bytes += ledger.used_month;  // invented tenant
        quota_lost_bound +=
            static_cast<double>(ph.crashes) *
            (2 * args.bytes_at_risk +
             2.0 * (static_cast<double>(args.buffer_watermark) + 16384.0));
      }
    }

    for (const auto& p : phones) {
      shed_busy += p->shedBusy();
      shed_fd += p->shedFdExhausted();
      denied_quota += p->deniedQuota();
      quota_kills += p->quotaKills();
      idle_closed += p->idleClosed();
      bp_pauses += p->backpressurePauses();
      peak_buffered = std::max(peak_buffered, p->peakBufferedBytes());
    }
    shed_busy += adsl.shedBusy();
    bp_pauses += adsl.backpressurePauses();
    peak_buffered = std::max(peak_buffered, adsl.peakBufferedBytes());
    governor_denied = governor.deniedQuota();
    governor_shed = governor.shedTenantCap();
    tenant_count = governor.tenantCount();
  }  // full teardown before the leak checks

  const std::size_t fds_after = openFdCount();
  const std::size_t rss_after_kb = rssKb();
  const long fd_leak = static_cast<long>(fds_after) -
                       static_cast<long>(fds_before);

  std::sort(latencies_s.begin(), latencies_s.end());
  const double p50 = percentile(latencies_s, 0.50) * 1e3;
  const double p99 = percentile(latencies_s, 0.99) * 1e3;
  const double p999 = percentile(latencies_s, 0.999) * 1e3;
  const double rps =
      elapsed_s > 0 ? static_cast<double>(items_done) / elapsed_s : 0;

  std::printf("proxy_load: %d clients (%d tenants), %d phone legs, "
              "%.1fs soak%s\n",
              args.clients, args.tenants, args.phones, elapsed_s,
              args.faults ? " [faults]" : "");
  std::printf("  transactions  %zu done (%zu degraded, %zu partial), "
              "%.0f req/s\n",
              transactions, degraded, partial, rps);
  std::printf("  latency (ms)  p50 %.1f   p99 %.1f   p999 %.1f\n",
              p50, p99, p999);
  std::printf("  service books shed_busy=%zu shed_fd=%zu denied=%zu "
              "quota_kills=%zu idle=%zu\n",
              shed_busy, shed_fd, denied_quota, quota_kills, idle_closed);
  std::printf("  client books  retries=%zu timeouts=%zu quota_denials=%zu "
              "busy_sheds=%zu corrupt=%zu\n",
              retries, timeouts, quota_denials, busy_sheds, corrupt);
  std::printf("  backpressure  pauses=%zu peak_buffered=%zu B\n",
              bp_pauses, peak_buffered);
  std::printf("  hygiene       fd_leak=%ld rss %zu -> %zu kB, "
              "terminated=%s\n",
              fd_leak, rss_before_kb, rss_after_kb,
              all_terminated ? "yes" : "NO (stuck)");

  std::sort(recovery_ms.begin(), recovery_ms.end());
  const double rec_p50 = percentile(recovery_ms, 0.50);
  const double rec_p95 = percentile(recovery_ms, 0.95);
  const double rec_max = recovery_ms.empty() ? 0 : recovery_ms.back();
  const bool conserved = double_charge_bytes <= 0.0 &&
                         quota_lost <= quota_lost_bound + 1.0;
  if (args.crash_soak) {
    std::printf("  crash soak    kills=%zu unexpected_deaths=%zu "
                "recovery_ms p50 %.1f p95 %.1f max %.1f\n",
                crash_restarts, unexpected_deaths, rec_p50, rec_p95,
                rec_max);
    std::printf("  conservation  truth=%.0f recovered=%.0f lost=%.0f "
                "(bound %.0f) double_charged=%.0f -> %s\n",
                truth_bytes_total, recovered_bytes_total, quota_lost,
                quota_lost_bound, double_charge_bytes,
                conserved ? "OK" : "VIOLATED");
    std::printf("  final drain   clean=%s forced_closes=%zu "
                "torn_journals=%zu\n",
                final_drain_clean ? "yes" : "NO", drain_forced,
                journal_torn_final);
  }

  auto& reg = telemetry::Registry::global();
  const auto g = [&](const char* name, double v) {
    reg.gauge(std::string("gol.bench.proxy_load.") + name).set(v);
  };
  g("clients", args.clients);
  g("tenants", tenant_count ? static_cast<double>(tenant_count)
                            : args.tenants);
  g("duration_s", elapsed_s);
  g("transactions", static_cast<double>(transactions));
  g("degraded", static_cast<double>(degraded));
  g("partial_failures", static_cast<double>(partial));
  g("rps", rps);
  g("latency_p50_ms", p50);
  g("latency_p99_ms", p99);
  g("latency_p999_ms", p999);
  g("shed_busy", static_cast<double>(shed_busy));
  g("shed_fd_exhausted", static_cast<double>(shed_fd));
  g("denied_quota", static_cast<double>(denied_quota));
  g("quota_kills", static_cast<double>(quota_kills));
  g("idle_closed", static_cast<double>(idle_closed));
  g("client_retries", static_cast<double>(retries));
  g("client_timeouts", static_cast<double>(timeouts));
  g("client_quota_denials", static_cast<double>(quota_denials));
  g("client_busy_sheds", static_cast<double>(busy_sheds));
  g("corrupt_payloads", static_cast<double>(corrupt));
  g("backpressure_pauses", static_cast<double>(bp_pauses));
  g("peak_buffered_bytes", static_cast<double>(peak_buffered));
  g("governor_denied", static_cast<double>(governor_denied));
  g("governor_shed_tenant_cap", static_cast<double>(governor_shed));
  g("fd_leak", static_cast<double>(fd_leak));
  g("rss_delta_kb", static_cast<double>(rss_after_kb) -
                        static_cast<double>(rss_before_kb));
  g("terminated", all_terminated ? 1 : 0);
  g("crash_mode", args.crash_soak ? 1 : 0);
  if (args.crash_soak) {
    g("crash_kills", static_cast<double>(crash_restarts));
    g("crash_unexpected_deaths", static_cast<double>(unexpected_deaths));
    g("crash_recovery_ms_p50", rec_p50);
    g("crash_recovery_ms_p95", rec_p95);
    g("crash_recovery_ms_max", rec_max);
    g("quota_truth_bytes", truth_bytes_total);
    g("quota_recovered_bytes", recovered_bytes_total);
    g("quota_lost_bytes", quota_lost);
    g("quota_lost_bound_bytes", quota_lost_bound);
    g("quota_double_charged_bytes", double_charge_bytes);
    g("final_drain_clean", final_drain_clean ? 1 : 0);
    g("drain_forced_closes", static_cast<double>(drain_forced));
  }
  telemetry::writeJsonSnapshot(reg, "BENCH_proxy_load.json");
  std::printf("metrics snapshot: BENCH_proxy_load.json\n");

  // Hard failures a CI soak must catch: stuck transactions, corrupted
  // payloads, leaked descriptors — and, under --crash-soak, any breach of
  // the durability contract: a conservation violation, a child dying on
  // its own, or a final drain that didn't exit clean.
  bool failed = !all_terminated || corrupt > 0 || fd_leak > 0;
  if (args.crash_soak)
    failed = failed || !conserved || unexpected_deaths > 0 ||
             !final_drain_clean;
  if (!crash_dir.empty()) {
    if (failed) {
      std::printf("crash-soak artifacts kept for debugging: %s\n",
                  crash_dir.c_str());
    } else {
      std::error_code ec;
      std::filesystem::remove_all(crash_dir, ec);
    }
  }
  return failed ? 1 : 0;
}
