// Soak harness for the hardened onload proxy service: a closed-loop fleet
// of multipath clients (each a distinct tenant source address) hammering a
// bank of governed phone proxies plus an always-available ADSL leg, with
// optional socket-level fault injection — relay kills, proxy blackouts, and
// tenant quota exhaustion/refresh cycles.
//
// Reports transaction latency percentiles (p50/p99/p999), request rate, and
// the overload/degradation books (sheds, denials, quota kills, degraded
// transactions), checks for fd and RSS leaks across the run, and writes the
// machine-readable counterpart to BENCH_proxy_load.json (the committed seed
// lives in bench/seeds/).
//
//   ./build/tools/proxy_load --clients 1000 --duration-s 30 --faults
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "proto/multipath_client.hpp"
#include "proto/origin_server.hpp"
#include "proto/proxy.hpp"
#include "proto/tenant_governor.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace gol;
using namespace gol::proto;
using Clock = std::chrono::steady_clock;

struct Args {
  int clients = 200;
  double duration_s = 10.0;
  int tenants = 32;
  int phones = 3;
  int items = 3;
  std::size_t bytes = 30000;
  bool faults = false;
  std::size_t max_conns = 64;
  double tenant_quota = 1e6;  ///< bytes per tenant per refresh period
  std::size_t buffer_watermark = 128 * 1024;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--duration-s S] [--tenants N]\n"
               "          [--phones N] [--items N] [--bytes N] [--faults]\n"
               "          [--max-conns N] [--tenant-quota BYTES]\n"
               "          [--buffer-watermark BYTES]\n",
               argv0);
  std::exit(2);
}

Args parseArgs(int argc, char** argv) {
  Args a;
  auto num = [&](int& i) -> double {
    if (i + 1 >= argc) usage(argv[0]);
    return std::atof(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--clients") a.clients = static_cast<int>(num(i));
    else if (flag == "--duration-s") a.duration_s = num(i);
    else if (flag == "--tenants") a.tenants = static_cast<int>(num(i));
    else if (flag == "--phones") a.phones = static_cast<int>(num(i));
    else if (flag == "--items") a.items = static_cast<int>(num(i));
    else if (flag == "--bytes") a.bytes = static_cast<std::size_t>(num(i));
    else if (flag == "--faults") a.faults = true;
    else if (flag == "--max-conns") a.max_conns = static_cast<std::size_t>(num(i));
    else if (flag == "--tenant-quota") a.tenant_quota = num(i);
    else if (flag == "--buffer-watermark")
      a.buffer_watermark = static_cast<std::size_t>(num(i));
    else usage(argv[0]);
  }
  if (a.clients < 1 || a.tenants < 1 || a.phones < 1 || a.items < 1)
    usage(argv[0]);
  return a;
}

std::size_t openFdCount() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++n;
  return n;
}

std::size_t rssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream is(line.substr(6));
      std::size_t kb = 0;
      is >> kb;
      return kb;
    }
  }
  return 0;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::vector<FetchItem> makeItems(int count, std::size_t bytes) {
  std::vector<FetchItem> items;
  for (int i = 0; i < count; ++i)
    items.push_back({"/obj/" + std::to_string(bytes), bytes});
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  const std::size_t fds_before = openFdCount();
  const std::size_t rss_before_kb = rssKb();

  // Aggregate books harvested across every finished transaction.
  std::vector<double> latencies_s;
  std::size_t transactions = 0, degraded = 0, partial = 0, items_done = 0;
  std::size_t retries = 0, timeouts = 0, quota_denials = 0, busy_sheds = 0;
  std::size_t corrupt = 0;
  // Service-side books, copied out before teardown.
  std::size_t shed_busy = 0, shed_fd = 0, denied_quota = 0, quota_kills = 0;
  std::size_t idle_closed = 0, bp_pauses = 0, peak_buffered = 0;
  std::size_t governor_denied = 0, governor_shed = 0, tenant_count = 0;
  bool all_terminated = false;
  double elapsed_s = 0;

  {
    EpollLoop loop;
    OriginServer origin(loop);

    TenantGovernorConfig gcfg;
    gcfg.days_per_month = 1;  // whole budget live; nextDay() = fresh period
    gcfg.default_monthly_allowance_bytes = args.tenant_quota;
    TenantGovernor governor(gcfg);

    // The governed, capped phone bank — the metered 3G legs.
    std::vector<std::unique_ptr<OnloadProxy>> phones;
    for (int p = 0; p < args.phones; ++p) {
      ProxyConfig cfg;
      cfg.upstream_port = origin.port();
      cfg.down_bps = 8e6;
      cfg.up_bps = 2e6;
      cfg.max_connections = args.max_conns;
      cfg.accept_queue_limit = std::max<std::size_t>(4, args.max_conns / 4);
      cfg.buffer_watermark = args.buffer_watermark;
      cfg.idle_timeout = std::chrono::milliseconds(2000);
      cfg.governor = &governor;
      phones.push_back(std::make_unique<OnloadProxy>(loop, cfg));
      phones.back()->instrument(&telemetry::Registry::global());
    }
    // The ADSL leg: slower, uncapped, ungoverned — completion is always
    // possible, so degradation never becomes failure.
    ProxyConfig adsl_cfg;
    adsl_cfg.upstream_port = origin.port();
    adsl_cfg.down_bps = 2e6;
    adsl_cfg.buffer_watermark = args.buffer_watermark;
    OnloadProxy adsl(loop, adsl_cfg);

    std::vector<Endpoint> endpoints{{"adsl", adsl.port()}};
    for (int p = 0; p < args.phones; ++p)
      endpoints.push_back(
          {"phone" + std::to_string(p), phones[static_cast<std::size_t>(p)]->port()});

    // The closed-loop fleet: each client finishes a transaction and starts
    // the next until the deadline. Clients persist across transactions so
    // endpoint health and rate estimates carry over, as they would in a
    // long-lived household gateway.
    struct Fleet {
      std::unique_ptr<MultipathHttpClient> client;
      bool harvested = false;
    };
    std::vector<Fleet> fleet;
    for (int i = 0; i < args.clients; ++i) {
      ClientConfig ccfg;
      // Under deliberate oversubscription most attempts die to busy sheds;
      // a deeper attempt budget lets items ride the backoff out to the
      // uncapped ADSL leg instead of exhausting and failing.
      ccfg.max_attempts = 8;
      ccfg.base_backoff = std::chrono::milliseconds(50);
      ccfg.quarantine = std::chrono::milliseconds(300);
      // Tenant identity: a distinct loopback source address per tenant,
      // shared by clients of the same household (127.1.x.y).
      const auto tenant = static_cast<std::uint32_t>(i % args.tenants);
      ccfg.bind_addr = 0x7f010000u + tenant;
      fleet.push_back(
          {std::make_unique<MultipathHttpClient>(loop, endpoints, ccfg),
           false});
      fleet.back().client->start(makeItems(args.items, args.bytes));
    }

    const auto t0 = Clock::now();
    const auto deadline =
        t0 + std::chrono::microseconds(
                 static_cast<long>(args.duration_s * 1e6));
    bool past_deadline = false;

    // Fault plan: rotate relay kills across the phone bank, black out one
    // proxy periodically, and roll tenant quotas so exhaustion/denial/
    // refresh cycles all happen mid-soak.
    std::function<void()> killer, blackout, refresher;
    std::size_t kill_idx = 0, blackout_idx = 0;
    if (args.faults) {
      killer = [&] {
        if (past_deadline) return;
        phones[kill_idx++ % phones.size()]->killActiveConnections();
        loop.runAfter(std::chrono::milliseconds(1100), [&] { killer(); });
      };
      blackout = [&] {
        if (past_deadline) return;
        auto& victim = *phones[blackout_idx++ % phones.size()];
        victim.pauseAccepting();
        loop.runAfter(std::chrono::milliseconds(400),
                      [&victim] { victim.resumeAccepting(); });
        loop.runAfter(std::chrono::milliseconds(1700), [&] { blackout(); });
      };
      refresher = [&] {
        if (past_deadline) return;
        governor.nextDay();
        loop.runAfter(std::chrono::milliseconds(2300), [&] { refresher(); });
      };
      loop.runAfter(std::chrono::milliseconds(500), [&] { killer(); });
      loop.runAfter(std::chrono::milliseconds(900), [&] { blackout(); });
      loop.runAfter(std::chrono::milliseconds(2300), [&] { refresher(); });
    }

    const auto harvest = [&](Fleet& f) {
      const auto& r = f.client->result();
      ++transactions;
      latencies_s.push_back(r.duration_s);
      degraded += r.outcome == FetchOutcome::kCompletedDegraded;
      partial += r.outcome == FetchOutcome::kPartialFailure;
      items_done +=
          static_cast<std::size_t>(args.items) - r.failed_items;
      retries += r.retries;
      timeouts += r.timeouts;
      quota_denials += r.quota_denials;
      busy_sheds += r.busy_sheds;
      corrupt += r.corrupt_payloads;
    };

    all_terminated = loop.runUntil(
        [&] {
          past_deadline = Clock::now() >= deadline;
          bool all_done = true;
          for (auto& f : fleet) {
            if (!f.client->done()) {
              all_done = false;
              continue;
            }
            if (!f.harvested) {
              harvest(f);
              f.harvested = true;
            }
            if (!past_deadline) {
              f.client->start(makeItems(args.items, args.bytes));
              f.harvested = false;
              all_done = false;
            }
          }
          return past_deadline && all_done;
        },
        std::chrono::milliseconds(
            static_cast<long>(args.duration_s * 1000) + 60000));
    elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();

    // Let the service drain relays whose clients walked away mid-fault.
    const auto quiet = [&] {
      if (adsl.activeConnections() + adsl.pendingConnections() != 0)
        return false;
      for (const auto& p : phones)
        if (p->activeConnections() + p->pendingConnections() != 0)
          return false;
      return true;
    };
    loop.runUntil(quiet, std::chrono::milliseconds(10000));

    for (const auto& p : phones) {
      shed_busy += p->shedBusy();
      shed_fd += p->shedFdExhausted();
      denied_quota += p->deniedQuota();
      quota_kills += p->quotaKills();
      idle_closed += p->idleClosed();
      bp_pauses += p->backpressurePauses();
      peak_buffered = std::max(peak_buffered, p->peakBufferedBytes());
    }
    shed_busy += adsl.shedBusy();
    bp_pauses += adsl.backpressurePauses();
    peak_buffered = std::max(peak_buffered, adsl.peakBufferedBytes());
    governor_denied = governor.deniedQuota();
    governor_shed = governor.shedTenantCap();
    tenant_count = governor.tenantCount();
  }  // full teardown before the leak checks

  const std::size_t fds_after = openFdCount();
  const std::size_t rss_after_kb = rssKb();
  const long fd_leak = static_cast<long>(fds_after) -
                       static_cast<long>(fds_before);

  std::sort(latencies_s.begin(), latencies_s.end());
  const double p50 = percentile(latencies_s, 0.50) * 1e3;
  const double p99 = percentile(latencies_s, 0.99) * 1e3;
  const double p999 = percentile(latencies_s, 0.999) * 1e3;
  const double rps =
      elapsed_s > 0 ? static_cast<double>(items_done) / elapsed_s : 0;

  std::printf("proxy_load: %d clients (%d tenants), %d phone legs, "
              "%.1fs soak%s\n",
              args.clients, args.tenants, args.phones, elapsed_s,
              args.faults ? " [faults]" : "");
  std::printf("  transactions  %zu done (%zu degraded, %zu partial), "
              "%.0f req/s\n",
              transactions, degraded, partial, rps);
  std::printf("  latency (ms)  p50 %.1f   p99 %.1f   p999 %.1f\n",
              p50, p99, p999);
  std::printf("  service books shed_busy=%zu shed_fd=%zu denied=%zu "
              "quota_kills=%zu idle=%zu\n",
              shed_busy, shed_fd, denied_quota, quota_kills, idle_closed);
  std::printf("  client books  retries=%zu timeouts=%zu quota_denials=%zu "
              "busy_sheds=%zu corrupt=%zu\n",
              retries, timeouts, quota_denials, busy_sheds, corrupt);
  std::printf("  backpressure  pauses=%zu peak_buffered=%zu B\n",
              bp_pauses, peak_buffered);
  std::printf("  hygiene       fd_leak=%ld rss %zu -> %zu kB, "
              "terminated=%s\n",
              fd_leak, rss_before_kb, rss_after_kb,
              all_terminated ? "yes" : "NO (stuck)");

  auto& reg = telemetry::Registry::global();
  const auto g = [&](const char* name, double v) {
    reg.gauge(std::string("gol.bench.proxy_load.") + name).set(v);
  };
  g("clients", args.clients);
  g("tenants", tenant_count ? static_cast<double>(tenant_count)
                            : args.tenants);
  g("duration_s", elapsed_s);
  g("transactions", static_cast<double>(transactions));
  g("degraded", static_cast<double>(degraded));
  g("partial_failures", static_cast<double>(partial));
  g("rps", rps);
  g("latency_p50_ms", p50);
  g("latency_p99_ms", p99);
  g("latency_p999_ms", p999);
  g("shed_busy", static_cast<double>(shed_busy));
  g("shed_fd_exhausted", static_cast<double>(shed_fd));
  g("denied_quota", static_cast<double>(denied_quota));
  g("quota_kills", static_cast<double>(quota_kills));
  g("idle_closed", static_cast<double>(idle_closed));
  g("client_retries", static_cast<double>(retries));
  g("client_timeouts", static_cast<double>(timeouts));
  g("client_quota_denials", static_cast<double>(quota_denials));
  g("client_busy_sheds", static_cast<double>(busy_sheds));
  g("corrupt_payloads", static_cast<double>(corrupt));
  g("backpressure_pauses", static_cast<double>(bp_pauses));
  g("peak_buffered_bytes", static_cast<double>(peak_buffered));
  g("governor_denied", static_cast<double>(governor_denied));
  g("governor_shed_tenant_cap", static_cast<double>(governor_shed));
  g("fd_leak", static_cast<double>(fd_leak));
  g("rss_delta_kb", static_cast<double>(rss_after_kb) -
                        static_cast<double>(rss_before_kb));
  g("terminated", all_terminated ? 1 : 0);
  telemetry::writeJsonSnapshot(reg, "BENCH_proxy_load.json");
  std::printf("metrics snapshot: BENCH_proxy_load.json\n");

  // Hard failures a CI soak must catch: stuck transactions, corrupted
  // payloads, or leaked descriptors.
  if (!all_terminated || corrupt > 0 || fd_leak > 0) return 1;
  return 0;
}
