// The client-side 3GOL component over real sockets: fetches a transaction
// of objects from the origin across several endpoints (the direct/ADSL leg
// and one per phone proxy), using the paper's greedy policy — pending items
// in order, then tail duplication with loser abort.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/epoll_loop.hpp"
#include "proto/socket.hpp"

namespace gol::proto {

struct Endpoint {
  std::string name;
  std::uint16_t port = 0;  ///< Direct origin port or a proxy port.
};

struct FetchItem {
  std::string uri;     ///< e.g. "/obj/100000".
  std::size_t bytes;   ///< Expected payload size (for verification).
};

struct MultipathResult {
  bool complete = false;
  double duration_s = 0;
  std::size_t wasted_bytes = 0;   ///< Bytes received on aborted duplicates.
  std::size_t duplicated_items = 0;
  std::map<std::string, std::size_t> per_endpoint_bytes;
  std::vector<double> item_completion_s;
};

class MultipathHttpClient {
 public:
  MultipathHttpClient(EpollLoop& loop, std::vector<Endpoint> endpoints,
                      bool enable_duplication = true);

  /// Starts the transaction; completion is observable via done()/result().
  void start(std::vector<FetchItem> items);
  bool done() const { return done_; }
  const MultipathResult& result() const { return result_; }

  /// Convenience: runs the loop until done or timeout.
  MultipathResult run(std::vector<FetchItem> items,
                      std::chrono::milliseconds timeout);

 private:
  enum class ItemState { kPending, kInFlight, kDone };

  struct Slot {               // one per endpoint
    Endpoint endpoint;
    Fd conn;                  // invalid while idle
    std::optional<std::size_t> item;
    std::string out;          // request bytes still to send
    std::string in;           // response bytes so far
    std::size_t received_body = 0;
    std::chrono::steady_clock::time_point started_at{};
  };

  void dispatch(std::size_t slot_index);
  void onSlotEvent(std::size_t slot_index, bool readable, bool writable);
  void completeItem(std::size_t slot_index);
  void abortSlot(std::size_t slot_index);
  std::optional<std::size_t> pickItem(std::size_t slot_index);
  void finish();

  EpollLoop& loop_;
  std::vector<Slot> slots_;
  bool duplication_;

  std::vector<FetchItem> items_;
  std::vector<ItemState> states_;
  std::vector<std::vector<std::size_t>> carriers_;  // slot indices per item
  std::vector<std::chrono::steady_clock::time_point> first_assigned_;
  std::size_t done_count_ = 0;
  bool done_ = true;
  MultipathResult result_;
  std::chrono::steady_clock::time_point started_at_{};
};

}  // namespace gol::proto
