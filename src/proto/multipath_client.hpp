// The client-side 3GOL component over real sockets: fetches a transaction
// of objects from the origin across several endpoints (the direct/ADSL leg
// and one per phone proxy), using the paper's greedy policy — pending items
// in order, then tail duplication with loser abort.
//
// Failure handling mirrors the simulator engine's contract: a hard socket
// error (reset, refused) or a watchdog expiry fails the attempt, the item
// retries elsewhere after an exponential backoff, endpoints that fail
// repeatedly are quarantined, and an item that exhausts its attempt budget
// is declared failed so the transaction still terminates.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "proto/epoll_loop.hpp"
#include "proto/socket.hpp"

namespace gol::proto {

struct Endpoint {
  std::string name;
  std::uint16_t port = 0;  ///< Direct origin port or a proxy port.
};

struct FetchItem {
  std::string uri;     ///< e.g. "/obj/100000".
  std::size_t bytes;   ///< Expected payload size (for verification).
  /// Expected FNV-1a digest of the payload; 0 = unknown, in which case the
  /// origin's X-Checksum-FNV1a response header (when present) is used.
  std::uint64_t checksum = 0;
};

enum class FetchOutcome {
  kCompleted,          ///< All items, no failures observed.
  kCompletedDegraded,  ///< All items, but retries/timeouts were needed.
  kPartialFailure,     ///< Some item exhausted its retry budget.
};

const char* toString(FetchOutcome outcome);

struct ClientConfig {
  bool enable_duplication = true;
  int max_attempts = 4;  ///< Failed attempts before an item is given up.
  std::chrono::milliseconds base_backoff{200};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{5000};
  /// Per-attempt watchdog deadline = max(floor, k * bytes / rate estimate).
  double watchdog_k = 6.0;
  std::chrono::milliseconds watchdog_floor{3000};
  double initial_rate_bps = 4e6;  ///< Seeds per-endpoint rate estimates.
  int quarantine_threshold = 2;   ///< Consecutive failures before benching.
  std::chrono::milliseconds quarantine{1000};
  /// Keep the contiguous body prefix of interrupted attempts and resume
  /// with `Range: bytes=N-` (falling back to a full fetch when the origin
  /// answers 200). Off = every retry re-fetches from byte 0.
  bool resume = true;
  /// Verify each assembled payload's length and FNV-1a digest before
  /// declaring the item done; a mismatch discards the checkpoint and
  /// re-enters retry.
  bool verify_checksums = true;
  /// Source address (host order, e.g. 0x7f00000a for 127.0.0.10) bound
  /// before connecting — the client's tenant identity to a multi-tenant
  /// proxy. 0 = kernel default.
  std::uint32_t bind_addr = 0;
};

struct MultipathResult {
  bool complete = false;
  FetchOutcome outcome = FetchOutcome::kCompleted;
  double duration_s = 0;
  std::size_t wasted_bytes = 0;   ///< Bytes received on aborted duplicates
                                  ///< and failed/timed-out attempts that
                                  ///< no later attempt could reuse.
  /// Body bytes of interrupted attempts that a later attempt resumed past
  /// instead of re-fetching.
  std::size_t salvaged_bytes = 0;
  std::size_t duplicated_items = 0;
  std::size_t retries = 0;        ///< Attempts re-queued after failures.
  std::size_t timeouts = 0;       ///< Attempts killed by the watchdog.
  std::size_t failed_items = 0;   ///< Items that ran out of attempts.
  std::size_t resumed_attempts = 0;  ///< Attempts sent with a Range header.
  std::size_t corrupt_payloads = 0;  ///< Length/digest verification fails.
  /// Explicit "onload denied" (503 + X-3GOL-Denied: quota) replies. Each
  /// permanently disables that endpoint for this transaction; the item is
  /// re-queued without charging an attempt and completes on the remaining
  /// legs (the ADSL fallback of Sec. 6).
  std::size_t quota_denials = 0;
  /// Transient busy sheds (503 + X-3GOL-Denied: busy): the normal failed-
  /// attempt/backoff path.
  std::size_t busy_sheds = 0;
  /// Endpoints disabled by a quota denial during this transaction.
  std::vector<std::string> denied_endpoints;
  std::vector<int> per_item_attempts;
  /// Endpoints that produced at least one hard failure.
  std::vector<std::string> failed_endpoints;
  std::map<std::string, std::size_t> per_endpoint_bytes;
  std::vector<double> item_completion_s;
};

class MultipathHttpClient {
 public:
  MultipathHttpClient(EpollLoop& loop, std::vector<Endpoint> endpoints,
                      ClientConfig cfg);
  MultipathHttpClient(EpollLoop& loop, std::vector<Endpoint> endpoints,
                      bool enable_duplication = true);

  /// Starts the transaction; completion is observable via done()/result().
  void start(std::vector<FetchItem> items);
  bool done() const { return done_; }
  const MultipathResult& result() const { return result_; }

  /// Convenience: runs the loop until done or timeout.
  MultipathResult run(std::vector<FetchItem> items,
                      std::chrono::milliseconds timeout);

 private:
  enum class ItemState { kPending, kInFlight, kDone, kBackoff, kFailed };

  struct Slot {               // one per endpoint
    Endpoint endpoint;
    Fd conn;                  // invalid while idle
    std::optional<std::size_t> item;
    std::string out;          // request bytes still to send
    std::string in;           // response bytes so far
    std::size_t received_body = 0;
    std::size_t offset = 0;   // byte offset this attempt resumes from
    std::chrono::steady_clock::time_point started_at{};
    /// Bumped per attempt; stale watchdog timers compare and drop.
    std::uint64_t attempt_gen = 0;
    EpollLoop::TimerId watchdog = 0;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point quarantined_until{};
    double rate_est_bps = 0;
    /// Quota-denied by the proxy: endpoint disabled for the rest of the
    /// transaction (the client continues single-path — degraded, not dead).
    bool denied = false;
  };

  void dispatch(std::size_t slot_index);
  void dispatchAll();
  void onSlotEvent(std::size_t slot_index, bool readable, bool writable);
  void completeItem(std::size_t slot_index);
  /// Handles an explicit quota denial: disables the endpoint for the
  /// transaction and re-queues the item WITHOUT charging an attempt (the
  /// denial is the service degrading gracefully, not the item failing).
  /// When every endpoint is denied, fails whatever cannot complete so the
  /// transaction still terminates.
  void denyEndpoint(std::size_t slot_index);
  void abortSlot(std::size_t slot_index);
  /// Books the failed attempt on `slot_index`: waste, endpoint health,
  /// quarantine, and the item's retry/terminal-failure disposition.
  /// `salvage` = false discards the attempt's body outright (used when the
  /// payload failed verification and cannot seed a checkpoint).
  void failAttempt(std::size_t slot_index, bool salvage = true);
  /// Moves the contiguous, offset-anchored body prefix of a dead attempt
  /// into the item's checkpoint buffer. Returns the bytes kept.
  std::size_t salvageFromAttempt(const Slot& slot, std::size_t item_index);
  /// Discards an item's checkpoint; its salvaged bytes become waste.
  void reclaimPrefix(std::size_t item_index);
  void onWatchdog(std::size_t slot_index, std::uint64_t gen);
  void onBackoffExpired(std::size_t item_index);
  void releaseSlot(Slot& slot);
  std::optional<std::size_t> pickItem(std::size_t slot_index);
  std::chrono::milliseconds backoffDelay(int failed_attempts) const;
  std::chrono::milliseconds watchdogDeadline(const Slot& slot,
                                             std::size_t item_index) const;
  void finish();

  EpollLoop& loop_;
  std::vector<Slot> slots_;
  ClientConfig cfg_;

  std::vector<FetchItem> items_;
  std::vector<ItemState> states_;
  /// Per-item checkpoint: the verified-contiguous body prefix [0, N)
  /// salvaged from interrupted attempts, re-used via Range requests.
  std::vector<std::string> prefix_;
  std::vector<std::vector<std::size_t>> carriers_;  // slot indices per item
  std::vector<std::chrono::steady_clock::time_point> first_assigned_;
  std::vector<int> failed_attempts_;
  std::set<std::string> failed_endpoint_names_;
  std::size_t done_count_ = 0;
  std::size_t failed_count_ = 0;
  bool done_ = true;
  MultipathResult result_;
  std::chrono::steady_clock::time_point started_at_{};
};

}  // namespace gol::proto
