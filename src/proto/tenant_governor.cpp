#include "proto/tenant_governor.hpp"

namespace gol::proto {

const char* toString(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmit: return "admit";
    case AdmitDecision::kDenyQuota: return "deny_quota";
    case AdmitDecision::kShedTenant: return "shed_tenant";
  }
  return "unknown";
}

TenantGovernor::TenantGovernor(TenantGovernorConfig cfg)
    : cfg_(std::move(cfg)) {}

TenantGovernor::Tenant& TenantGovernor::tenantFor(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(name, Tenant(cfg_.default_monthly_allowance_bytes,
                                   cfg_.days_per_month))
             .first;
    // Journal the bootstrap allowance so replay sees every tenant's budget
    // before its first charge.
    if (journal_)
      journal_->appendAllowance(name, cfg_.default_monthly_allowance_bytes);
  }
  return it->second;
}

void TenantGovernor::setFreeHistory(const std::string& tenant,
                                    const std::vector<double>& free_history) {
  // Route through setMonthlyAllowance so the re-estimate is journaled.
  setMonthlyAllowance(
      tenant, core::estimateMonthlyAllowance(free_history, cfg_.allowance));
}

void TenantGovernor::setMonthlyAllowance(const std::string& tenant,
                                         double bytes) {
  tenantFor(tenant).tracker.setMonthlyAllowance(bytes);
  if (journal_) journal_->appendAllowance(tenant, bytes);
}

AdmitDecision TenantGovernor::admit(const std::string& tenant) {
  Tenant& t = tenantFor(tenant);
  if (!t.tracker.eligible()) {
    ++denied_quota_;
    if (denied_ctr_) denied_ctr_->inc();
    return AdmitDecision::kDenyQuota;
  }
  if (cfg_.max_connections_per_tenant > 0 &&
      t.active >= cfg_.max_connections_per_tenant) {
    ++shed_tenant_;
    if (shed_ctr_) shed_ctr_->inc();
    return AdmitDecision::kShedTenant;
  }
  ++t.active;
  ++active_total_;
  ++admitted_;
  if (admitted_ctr_) admitted_ctr_->inc();
  if (active_gauge_) active_gauge_->set(static_cast<double>(active_total_));
  return AdmitDecision::kAdmit;
}

void TenantGovernor::onConnectionClosed(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.active == 0) return;
  --it->second.active;
  --active_total_;
  if (active_gauge_) active_gauge_->set(static_cast<double>(active_total_));
}

void TenantGovernor::chargeBytes(const std::string& tenant, double bytes) {
  if (bytes <= 0) return;
  // Ground-truth hook fires before the journal append: a crash between
  // the two loses a journaled charge (bounded by the sync window), never
  // fabricates one — recovered <= truth always holds.
  if (on_charge) on_charge(tenant, bytes);
  tenantFor(tenant).tracker.recordUsage(bytes);
  if (journal_) {
    journal_->appendCharge(tenant, bytes);
    if (journal_->wantsCompaction()) checkpoint();
  }
}

void TenantGovernor::nextDay() {
  for (auto& [name, t] : tenants_) t.tracker.nextDay();
  if (journal_) journal_->appendNextDay();
}

void TenantGovernor::attachJournal(QuotaJournal* journal) {
  journal_ = journal;
}

void TenantGovernor::restore(const LedgerState& state) {
  tenants_.clear();
  active_total_ = 0;
  for (const auto& [name, ledger] : state) {
    auto it =
        tenants_
            .emplace(name, Tenant(ledger.monthly_allowance, cfg_.days_per_month))
            .first;
    it->second.tracker.restoreUsage(ledger.used_today, ledger.used_month,
                                    ledger.day);
  }
}

LedgerState TenantGovernor::snapshot() const {
  LedgerState out;
  for (const auto& [name, t] : tenants_) {
    TenantLedger l;
    l.monthly_allowance = t.tracker.monthlyAllowanceBytes();
    l.used_today = t.tracker.usedTodayBytes();
    l.used_month = t.tracker.usedThisMonthBytes();
    l.day = t.tracker.dayOfMonth();
    out[name] = l;
  }
  return out;
}

void TenantGovernor::checkpoint() {
  if (!journal_) return;
  journal_->checkpoint(snapshot());
}

bool TenantGovernor::eligible(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  // Unknown tenants bootstrap with the default allowance, so they are
  // eligible iff that default is positive.
  if (it == tenants_.end()) return cfg_.default_monthly_allowance_bytes > 0;
  return it->second.tracker.eligible();
}

double TenantGovernor::availableTodayBytes(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end())
    return cfg_.default_monthly_allowance_bytes /
           std::max(1, cfg_.days_per_month);
  return it->second.tracker.availableTodayBytes();
}

double TenantGovernor::usedTodayBytes(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.tracker.usedTodayBytes();
}

std::size_t TenantGovernor::activeConnections(
    const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.active;
}

void TenantGovernor::instrument(telemetry::Registry* registry) {
  if (registry == nullptr) {
    admitted_ctr_ = denied_ctr_ = shed_ctr_ = nullptr;
    active_gauge_ = nullptr;
    return;
  }
  admitted_ctr_ = &registry->counter("gol.proto.tenant_admits");
  denied_ctr_ = &registry->counter("gol.proto.tenant_quota_denials");
  shed_ctr_ = &registry->counter("gol.proto.tenant_cap_sheds");
  active_gauge_ = &registry->gauge("gol.proto.tenant_active_connections");
}

}  // namespace gol::proto
