#include "proto/tenant_governor.hpp"

namespace gol::proto {

const char* toString(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmit: return "admit";
    case AdmitDecision::kDenyQuota: return "deny_quota";
    case AdmitDecision::kShedTenant: return "shed_tenant";
  }
  return "unknown";
}

TenantGovernor::TenantGovernor(TenantGovernorConfig cfg)
    : cfg_(std::move(cfg)) {}

TenantGovernor::Tenant& TenantGovernor::tenantFor(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(name, Tenant(cfg_.default_monthly_allowance_bytes,
                                   cfg_.days_per_month))
             .first;
  }
  return it->second;
}

void TenantGovernor::setFreeHistory(const std::string& tenant,
                                    const std::vector<double>& free_history) {
  tenantFor(tenant).tracker.setMonthlyAllowance(
      core::estimateMonthlyAllowance(free_history, cfg_.allowance));
}

void TenantGovernor::setMonthlyAllowance(const std::string& tenant,
                                         double bytes) {
  tenantFor(tenant).tracker.setMonthlyAllowance(bytes);
}

AdmitDecision TenantGovernor::admit(const std::string& tenant) {
  Tenant& t = tenantFor(tenant);
  if (!t.tracker.eligible()) {
    ++denied_quota_;
    if (denied_ctr_) denied_ctr_->inc();
    return AdmitDecision::kDenyQuota;
  }
  if (cfg_.max_connections_per_tenant > 0 &&
      t.active >= cfg_.max_connections_per_tenant) {
    ++shed_tenant_;
    if (shed_ctr_) shed_ctr_->inc();
    return AdmitDecision::kShedTenant;
  }
  ++t.active;
  ++active_total_;
  ++admitted_;
  if (admitted_ctr_) admitted_ctr_->inc();
  if (active_gauge_) active_gauge_->set(static_cast<double>(active_total_));
  return AdmitDecision::kAdmit;
}

void TenantGovernor::onConnectionClosed(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.active == 0) return;
  --it->second.active;
  --active_total_;
  if (active_gauge_) active_gauge_->set(static_cast<double>(active_total_));
}

void TenantGovernor::chargeBytes(const std::string& tenant, double bytes) {
  tenantFor(tenant).tracker.recordUsage(bytes);
}

void TenantGovernor::nextDay() {
  for (auto& [name, t] : tenants_) t.tracker.nextDay();
}

bool TenantGovernor::eligible(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  // Unknown tenants bootstrap with the default allowance, so they are
  // eligible iff that default is positive.
  if (it == tenants_.end()) return cfg_.default_monthly_allowance_bytes > 0;
  return it->second.tracker.eligible();
}

double TenantGovernor::availableTodayBytes(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end())
    return cfg_.default_monthly_allowance_bytes /
           std::max(1, cfg_.days_per_month);
  return it->second.tracker.availableTodayBytes();
}

double TenantGovernor::usedTodayBytes(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.tracker.usedTodayBytes();
}

std::size_t TenantGovernor::activeConnections(
    const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.active;
}

void TenantGovernor::instrument(telemetry::Registry* registry) {
  if (registry == nullptr) {
    admitted_ctr_ = denied_ctr_ = shed_ctr_ = nullptr;
    active_gauge_ = nullptr;
    return;
  }
  admitted_ctr_ = &registry->counter("gol.proto.tenant_admits");
  denied_ctr_ = &registry->counter("gol.proto.tenant_quota_denials");
  shed_ctr_ = &registry->counter("gol.proto.tenant_cap_sheds");
  active_gauge_ = &registry->gauge("gol.proto.tenant_active_connections");
}

}  // namespace gol::proto
