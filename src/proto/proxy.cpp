#include "proto/proxy.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <system_error>

#include "http/message.hpp"

namespace gol::proto {

namespace {
constexpr std::size_t kChunk = 16384;
constexpr int kMaxIov = 16;

std::string denialReply(const char* reason) {
  http::Response resp;
  resp.status = 503;
  resp.reason = "Service Unavailable";
  resp.headers["X-3GOL-Denied"] = reason;
  resp.headers["Connection"] = "close";
  return resp.serialize();
}

Fd openReserveFd() { return Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC)); }
}  // namespace

OnloadProxy::OnloadProxy(EpollLoop& loop, const ProxyConfig& cfg)
    : loop_(loop),
      cfg_(cfg),
      reserve_fd_(openReserveFd()),
      busy_reply_(denialReply("busy")),
      quota_reply_(denialReply("quota")),
      drain_reply_(denialReply("draining")) {
  auto l = listenTcp(cfg.listen_port);
  if (!l) throw std::runtime_error("OnloadProxy: cannot listen");
  listener_ = std::move(*l);
  port_ = listener_.port;
  loop_.add(listener_.fd.get(), Interest::kRead,
            [this](bool, bool) { onAccept(); });
}

OnloadProxy::~OnloadProxy() {
  pending_.clear();  // parked fds close; nothing gets promoted mid-teardown
  while (!pipes_.empty()) closePipe(pipes_.begin()->first);
  if (listener_.fd.valid()) loop_.remove(listener_.fd.get());
}

void OnloadProxy::instrument(telemetry::Registry* registry) {
  if (registry == nullptr) {
    accepts_ = closes_ = bytes_down_ = bytes_up_ = nullptr;
    shed_busy_ctr_ = shed_emfile_ctr_ = denied_ctr_ = nullptr;
    quota_kill_ctr_ = idle_close_ctr_ = bp_pause_ctr_ = nullptr;
    active_gauge_ = pending_gauge_ = nullptr;
    return;
  }
  accepts_ = &registry->counter("gol.proto.proxy_accepts");
  closes_ = &registry->counter("gol.proto.proxy_closes");
  bytes_down_ =
      &registry->counter("gol.proto.bytes_proxied", {{"dir", "down"}});
  bytes_up_ = &registry->counter("gol.proto.bytes_proxied", {{"dir", "up"}});
  shed_busy_ctr_ =
      &registry->counter("gol.proto.proxy_sheds", {{"reason", "busy"}});
  shed_emfile_ctr_ =
      &registry->counter("gol.proto.proxy_sheds", {{"reason", "emfile"}});
  denied_ctr_ = &registry->counter("gol.proto.proxy_quota_denials");
  quota_kill_ctr_ = &registry->counter("gol.proto.proxy_quota_kills");
  idle_close_ctr_ = &registry->counter("gol.proto.proxy_idle_closes");
  bp_pause_ctr_ = &registry->counter("gol.proto.proxy_backpressure_pauses");
  active_gauge_ = &registry->gauge("gol.proto.proxy_active_connections");
  pending_gauge_ = &registry->gauge("gol.proto.proxy_pending_connections");
}

void OnloadProxy::replyAndClose(Fd fd, const std::string& wire) {
  // Best-effort: the reply is ~120 bytes, far under a fresh socket's send
  // buffer; if even that fails the close alone carries the signal.
  try {
    writeSome(fd.get(), wire.data(), wire.size());
  } catch (const std::system_error&) {
  }
  // fd closes on scope exit (FIN after the reply, so the peer reads it).
}

void OnloadProxy::onAccept() {
  for (;;) {
    int err = 0;
    std::string peer;
    auto client = acceptOne(listener_.fd.get(), &peer, &err);
    if (!client) {
      if (err == EMFILE || err == ENFILE) {
        if (!shedOverFdLimit()) break;
        continue;
      }
      break;  // EAGAIN: queue drained
    }
    admitOrPark(std::move(*client), std::move(peer));
  }
}

bool OnloadProxy::shedOverFdLimit() {
  // The fd table is full but the accept queue is not: without a spare fd
  // the level-triggered listener would wake every poll and spin. Burn the
  // reserve to accept one waiter, shed it politely, re-arm.
  if (!reserve_fd_.valid()) return false;
  reserve_fd_.reset();
  auto victim = acceptOne(listener_.fd.get());
  bool progress = false;
  if (victim) {
    ++shed_emfile_;
    if (shed_emfile_ctr_) shed_emfile_ctr_->inc();
    replyAndClose(std::move(*victim), busy_reply_);
    progress = true;
  }
  reserve_fd_ = openReserveFd();
  return progress && reserve_fd_.valid();
}

void OnloadProxy::admitOrPark(Fd client, std::string tenant) {
  if (draining_) {
    // Drain ladder, rung one: no new relays. The explicit reply (rather
    // than a silent refusal) lets the multipath client book a transient
    // shed and immediately route the item to another leg.
    ++shed_draining_;
    if (shed_busy_ctr_) shed_busy_ctr_->inc();
    replyAndClose(std::move(client), drain_reply_);
    return;
  }
  if (cfg_.max_connections > 0 && pipes_.size() >= cfg_.max_connections) {
    // Park newest-on-top. Past the bound the OLDEST waiter is shed: under
    // sustained overload LIFO keeps serving arrivals that are still
    // likely listening instead of queue-aged ones that have given up.
    pending_.push_back(PendingConn{std::move(client), std::move(tenant)});
    if (pending_.size() > cfg_.accept_queue_limit) {
      ++shed_busy_;
      if (shed_busy_ctr_) shed_busy_ctr_->inc();
      replyAndClose(std::move(pending_.front().fd), busy_reply_);
      pending_.erase(pending_.begin());
    }
    if (pending_gauge_)
      pending_gauge_->set(static_cast<double>(pending_.size()));
    return;
  }
  startPipe(std::move(client), std::move(tenant));
}

void OnloadProxy::startPipe(Fd client, std::string tenant) {
  if (cfg_.governor) {
    switch (cfg_.governor->admit(tenant)) {
      case AdmitDecision::kDenyQuota:
        ++denied_quota_;
        if (denied_ctr_) denied_ctr_->inc();
        replyAndClose(std::move(client), quota_reply_);
        return;
      case AdmitDecision::kShedTenant:
        ++shed_busy_;
        if (shed_busy_ctr_) shed_busy_ctr_->inc();
        replyAndClose(std::move(client), busy_reply_);
        return;
      case AdmitDecision::kAdmit:
        break;
    }
  }
  auto upstream = connectTcp(cfg_.upstream_port);
  if (!upstream) {
    // Origin unreachable or fd budget spent on the upstream leg: shed
    // explicitly rather than dropping the client on the floor.
    if (cfg_.governor) cfg_.governor->onConnectionClosed(tenant);
    ++shed_busy_;
    if (shed_busy_ctr_) shed_busy_ctr_->inc();
    replyAndClose(std::move(client), busy_reply_);
    return;
  }
  if (accepts_) accepts_->inc();
  if (cfg_.sndbuf_bytes > 0) {
    setSendBuf(client.get(), cfg_.sndbuf_bytes);
    setSendBuf(upstream->get(), cfg_.sndbuf_bytes);
  }
  auto pipe = std::make_unique<Pipe>(cfg_.up_bps, cfg_.down_bps);
  const int ckey = client.get();
  const int ukey = upstream->get();
  pipe->client = std::move(client);
  pipe->upstream = std::move(*upstream);
  pipe->tenant = std::move(tenant);
  pipe->gen = ++pipe_gen_;
  pipe->last_activity = std::chrono::steady_clock::now();
  const std::uint64_t gen = pipe->gen;
  pipes_[ckey] = std::move(pipe);
  upstream_to_pipe_[ukey] = ckey;

  loop_.add(ckey, Interest::kRead,
            [this, ckey](bool, bool) { onEvent(ckey, true); });
  loop_.add(ukey, Interest::kReadWrite,
            [this, ckey](bool, bool) { onEvent(ckey, false); });
  if (active_gauge_) active_gauge_->set(static_cast<double>(pipes_.size()));
  if (cfg_.idle_timeout.count() > 0) {
    armIdleTimer(ckey, gen,
                 std::chrono::duration_cast<std::chrono::microseconds>(
                     cfg_.idle_timeout));
  }
}

void OnloadProxy::beginDrain() { beginDrain(cfg_.drain_deadline); }

void OnloadProxy::beginDrain(std::chrono::milliseconds deadline) {
  if (draining_) return;
  draining_ = true;
  const std::uint64_t gen = ++drain_gen_;
  // Rung two: parked waiters will never get a relay slot now — turn them
  // away explicitly instead of letting them age out against a dead queue.
  for (auto& pc : pending_) {
    ++shed_draining_;
    if (shed_busy_ctr_) shed_busy_ctr_->inc();
    replyAndClose(std::move(pc.fd), drain_reply_);
  }
  pending_.clear();
  if (pending_gauge_) pending_gauge_->set(0);
  // Rung three: let active relays finish, but bound the wait — a wedged
  // peer must not be able to hold shutdown hostage.
  if (pipes_.empty()) {
    maybeFinishDrain();
    return;
  }
  loop_.runAfter(
      std::chrono::duration_cast<std::chrono::microseconds>(deadline),
      [this, gen] {
        if (gen != drain_gen_ || !draining_) return;
        while (!pipes_.empty()) {
          ++drain_forced_;
          closePipe(pipes_.begin()->first);
        }
      });
}

void OnloadProxy::maybeFinishDrain() {
  if (!draining_ || !pipes_.empty()) return;
  if (on_drain_complete) {
    auto cb = std::move(on_drain_complete);
    on_drain_complete = nullptr;
    cb();
  }
}

void OnloadProxy::drainPending() {
  if (draining_) return;
  while (!pending_.empty() &&
         (cfg_.max_connections == 0 ||
          pipes_.size() < cfg_.max_connections)) {
    PendingConn pc = std::move(pending_.back());  // LIFO: newest first
    pending_.pop_back();
    startPipe(std::move(pc.fd), std::move(pc.tenant));
  }
  if (pending_gauge_)
    pending_gauge_->set(static_cast<double>(pending_.size()));
}

int OnloadProxy::ChunkQueue::fillIov(struct iovec* iov, int max_iov,
                                     std::size_t limit) const {
  int n = 0;
  std::size_t off = head;
  for (const auto& c : chunks) {
    if (n == max_iov || limit == 0) break;
    const std::size_t take = std::min(c.size() - off, limit);
    iov[n].iov_base = const_cast<char*>(c.data() + off);
    iov[n].iov_len = take;
    limit -= take;
    ++n;
    off = 0;
  }
  return n;
}

void OnloadProxy::ChunkQueue::consume(std::size_t n) {
  bytes -= std::min(bytes, n);
  while (n > 0 && !chunks.empty()) {
    const std::size_t avail = chunks.front().size() - head;
    if (n >= avail) {
      n -= avail;
      head = 0;
      chunks.pop_front();
    } else {
      head += n;
      n = 0;
    }
  }
}

std::chrono::microseconds OnloadProxy::DelayLine::drainInto(ChunkQueue& out) {
  const auto now = std::chrono::steady_clock::now();
  while (!chunks.empty() && chunks.front().eligible_at <= now) {
    bytes -= std::min(bytes, chunks.front().data.size());
    out.push(std::move(chunks.front().data));
    chunks.pop_front();
  }
  if (chunks.empty()) return std::chrono::microseconds(0);
  return std::chrono::duration_cast<std::chrono::microseconds>(
             chunks.front().eligible_at - now) +
         std::chrono::microseconds(1);
}

void OnloadProxy::onEvent(int pipe_key, bool from_client) {
  auto it = pipes_.find(pipe_key);
  if (it == pipes_.end()) return;
  Pipe& pipe = *it->second;

  // Ingest whatever arrived on the signalled side into the delay line,
  // stopping at the backpressure watermark. When the side's read interest
  // is paused (interest kNone) the only events epoll still delivers are
  // ERR/HUP — the peer is gone — so drain what the kernel holds (bounded
  // by the socket buffer, not the watermark) to reach the EOF.
  char buf[kChunk];
  const auto now = std::chrono::steady_clock::now();
  const auto eligible = now + cfg_.latency;
  try {
    if (from_client) {
      const bool hup_drain = pipe.client_read_paused;
      while (!pipe.client_eof &&
             (hup_drain ||
              pipe.bufferedTowardUpstream() < cfg_.buffer_watermark)) {
        const long n = readSome(pipe.client.get(), buf, sizeof buf);
        if (n == 0) {
          pipe.client_eof = true;
          break;
        }
        if (n < 0) break;
        pipe.delay_to_upstream.push(
            std::string(buf, static_cast<std::size_t>(n)), eligible);
        pipe.last_activity = now;
      }
    } else {
      const bool hup_drain = pipe.upstream_read_paused;
      while (!pipe.upstream_eof &&
             (hup_drain ||
              pipe.bufferedTowardClient() < cfg_.buffer_watermark)) {
        const long n = readSome(pipe.upstream.get(), buf, sizeof buf);
        if (n == 0) {
          pipe.upstream_eof = true;
          break;
        }
        if (n < 0) break;
        pipe.delay_to_client.push(
            std::string(buf, static_cast<std::size_t>(n)), eligible);
        pipe.last_activity = now;
      }
    }
  } catch (const std::system_error&) {
    // Hard socket error beyond reset: the relay is dead either way.
    closePipe(pipe_key);
    return;
  }
  pump(pipe_key);
}

void OnloadProxy::pump(int pipe_key) {
  auto it = pipes_.find(pipe_key);
  if (it == pipes_.end()) return;
  Pipe& pipe = *it->second;

  // Mature delayed bytes first, then shaped relay in both directions.
  std::chrono::microseconds wait{0};
  wait = std::max(wait, pipe.delay_to_client.drainInto(pipe.to_client));
  wait = std::max(wait, pipe.delay_to_upstream.drainInto(pipe.to_upstream));

  std::size_t charged = 0;
  struct iovec iov[kMaxIov];
  try {
    if (!pipe.to_client.empty()) {
      const std::size_t allowed =
          std::min(pipe.down_limiter.available(), pipe.to_client.bytes);
      if (allowed > 0) {
        const int n_iov = pipe.to_client.fillIov(iov, kMaxIov, allowed);
        const long n = writevSome(pipe.client.get(), iov, n_iov);
        if (n == 0) {  // peer gone (EPIPE/reset): nothing left to relay to
          closePipe(pipe_key);
          return;
        }
        if (n > 0) {
          pipe.down_limiter.consume(static_cast<std::size_t>(n));
          relayed_down_ += static_cast<std::size_t>(n);
          charged += static_cast<std::size_t>(n);
          if (bytes_down_) bytes_down_->inc(static_cast<double>(n));
          pipe.to_client.consume(static_cast<std::size_t>(n));
          pipe.last_activity = std::chrono::steady_clock::now();
        }
      }
      if (!pipe.to_client.empty()) {
        wait = std::max(wait, pipe.down_limiter.delayFor(std::min(
                                  pipe.to_client.bytes, kChunk)));
      }
    }

    if (!pipe.to_upstream.empty()) {
      const std::size_t allowed =
          std::min(pipe.up_limiter.available(), pipe.to_upstream.bytes);
      if (allowed > 0) {
        const int n_iov = pipe.to_upstream.fillIov(iov, kMaxIov, allowed);
        const long n = writevSome(pipe.upstream.get(), iov, n_iov);
        if (n == 0) {
          closePipe(pipe_key);
          return;
        }
        if (n > 0) {
          pipe.up_limiter.consume(static_cast<std::size_t>(n));
          relayed_up_ += static_cast<std::size_t>(n);
          charged += static_cast<std::size_t>(n);
          if (bytes_up_) bytes_up_->inc(static_cast<double>(n));
          pipe.to_upstream.consume(static_cast<std::size_t>(n));
          pipe.last_activity = std::chrono::steady_clock::now();
        }
      }
      if (!pipe.to_upstream.empty()) {
        wait = std::max(wait, pipe.up_limiter.delayFor(std::min(
                                  pipe.to_upstream.bytes, kChunk)));
      }
    }
  } catch (const std::system_error&) {
    closePipe(pipe_key);
    return;
  }

  peak_buffered_ = std::max(
      {peak_buffered_, pipe.bufferedTowardClient(),
       pipe.bufferedTowardUpstream()});

  // Meter the tenant's live allowance; exhaustion mid-relay closes the
  // pipe — the client books a failed attempt and, when it reconnects, gets
  // the explicit quota denial that triggers its ADSL-only fallback.
  if (cfg_.governor && charged > 0) {
    cfg_.governor->chargeBytes(pipe.tenant, static_cast<double>(charged));
    if (!cfg_.governor->eligible(pipe.tenant)) {
      ++quota_kills_;
      if (quota_kill_ctr_) quota_kill_ctr_->inc();
      closePipe(pipe_key);
      return;
    }
  }

  // Close once a side hit EOF and its buffered + delayed bytes drained.
  const bool down_drained =
      pipe.to_client.empty() && pipe.delay_to_client.empty();
  const bool up_drained =
      pipe.to_upstream.empty() && pipe.delay_to_upstream.empty();
  if (pipe.upstream_eof && down_drained) {
    closePipe(pipe_key);
    return;
  }
  if (pipe.client_eof && up_drained && !pipe.upstream_eof) {
    // Half-close toward the origin so it sees the request end.
    ::shutdown(pipe.upstream.get(), SHUT_WR);
  }

  updateInterest(pipe);

  if (wait.count() > 0 && !pipe.timer_armed) {
    pipe.timer_armed = true;
    armTimer(pipe_key, wait);
  }
}

void OnloadProxy::updateInterest(Pipe& pipe) {
  // Watermark hysteresis: pause reading a side when the bytes it feeds
  // cross the high watermark, resume below half. Level-triggered epoll
  // makes "skip the read but keep the interest" a busy loop, so pausing
  // must actually drop read interest.
  const std::size_t high = cfg_.buffer_watermark;
  const std::size_t low = high / 2;
  if (!pipe.client_read_paused && pipe.bufferedTowardUpstream() >= high) {
    pipe.client_read_paused = true;
    ++bp_pauses_;
    if (bp_pause_ctr_) bp_pause_ctr_->inc();
  } else if (pipe.client_read_paused &&
             pipe.bufferedTowardUpstream() <= low) {
    pipe.client_read_paused = false;
  }
  if (!pipe.upstream_read_paused && pipe.bufferedTowardClient() >= high) {
    pipe.upstream_read_paused = true;
    ++bp_pauses_;
    if (bp_pause_ctr_) bp_pause_ctr_->inc();
  } else if (pipe.upstream_read_paused &&
             pipe.bufferedTowardClient() <= low) {
    pipe.upstream_read_paused = false;
  }

  // Keep write-interest only while bytes are queued for that side (the
  // shaped waits are timer-driven, not EPOLLOUT-driven); keep read
  // interest only while neither EOF nor backpressure stops ingestion.
  const auto want = [](bool read, bool write) {
    return static_cast<Interest>((read ? 1u : 0u) | (write ? 2u : 0u));
  };
  const Interest ci = want(!pipe.client_eof && !pipe.client_read_paused,
                           !pipe.to_client.empty());
  if (ci != pipe.client_interest) {
    loop_.modify(pipe.client.get(), ci);
    pipe.client_interest = ci;
  }
  const Interest ui = want(!pipe.upstream_eof && !pipe.upstream_read_paused,
                           !pipe.to_upstream.empty());
  if (ui != pipe.upstream_interest) {
    loop_.modify(pipe.upstream.get(), ui);
    pipe.upstream_interest = ui;
  }
}

void OnloadProxy::armTimer(int pipe_key, std::chrono::microseconds delay) {
  loop_.runAfter(delay, [this, pipe_key] {
    auto it = pipes_.find(pipe_key);
    if (it == pipes_.end()) return;
    it->second->timer_armed = false;
    pump(pipe_key);
  });
}

void OnloadProxy::armIdleTimer(int pipe_key, std::uint64_t gen,
                               std::chrono::microseconds delay) {
  loop_.runAfter(delay, [this, pipe_key, gen] {
    auto it = pipes_.find(pipe_key);
    // The gen check defeats client-fd reuse: a stale timer must not judge
    // a newer pipe that happens to share the fd number.
    if (it == pipes_.end() || it->second->gen != gen) return;
    const auto idle =
        std::chrono::steady_clock::now() - it->second->last_activity;
    const auto limit = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(cfg_.idle_timeout);
    if (idle >= limit) {
      ++idle_closed_;
      if (idle_close_ctr_) idle_close_ctr_->inc();
      closePipe(pipe_key);
      return;
    }
    armIdleTimer(pipe_key, gen,
                 std::chrono::duration_cast<std::chrono::microseconds>(
                     limit - idle) +
                     std::chrono::microseconds(1000));
  });
}

void OnloadProxy::killActiveConnections() {
  while (!pipes_.empty()) {
    const auto& [key, pipe] = *pipes_.begin();
    // Linger-0 close aborts the connection: the client gets an RST, not a
    // tidy FIN, exactly like a mid-transfer device disappearance.
    const struct linger lg{1, 0};
    ::setsockopt(pipe->client.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    closePipe(key);
  }
}

void OnloadProxy::pauseAccepting() {
  if (!listener_.fd.valid()) return;
  loop_.remove(listener_.fd.get());
  listener_.fd.reset();
}

void OnloadProxy::resumeAccepting() {
  if (listener_.fd.valid()) return;
  auto l = listenTcp(port_);
  if (!l) throw std::runtime_error("OnloadProxy: cannot re-listen");
  listener_ = std::move(*l);
  loop_.add(listener_.fd.get(), Interest::kRead,
            [this](bool, bool) { onAccept(); });
}

void OnloadProxy::closePipe(int pipe_key) {
  auto it = pipes_.find(pipe_key);
  if (it == pipes_.end()) return;
  Pipe& pipe = *it->second;
  loop_.remove(pipe.client.get());
  loop_.remove(pipe.upstream.get());
  upstream_to_pipe_.erase(pipe.upstream.get());
  if (cfg_.governor) cfg_.governor->onConnectionClosed(pipe.tenant);
  pipes_.erase(it);
  if (closes_) closes_->inc();
  if (active_gauge_) active_gauge_->set(static_cast<double>(pipes_.size()));
  // A slot freed up: promote the newest parked waiter.
  drainPending();
  maybeFinishDrain();
}

}  // namespace gol::proto
