#include "proto/proxy.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <stdexcept>

namespace gol::proto {

namespace {
constexpr std::size_t kChunk = 16384;
constexpr std::size_t kHighWater = 512 * 1024;
}  // namespace

OnloadProxy::OnloadProxy(EpollLoop& loop, const ProxyConfig& cfg)
    : loop_(loop), cfg_(cfg) {
  auto l = listenTcp(0);
  if (!l) throw std::runtime_error("OnloadProxy: cannot listen");
  listener_ = std::move(*l);
  port_ = listener_.port;
  loop_.add(listener_.fd.get(), Interest::kRead,
            [this](bool, bool) { onAccept(); });
}

OnloadProxy::~OnloadProxy() {
  while (!pipes_.empty()) closePipe(pipes_.begin()->first);
  if (listener_.fd.valid()) loop_.remove(listener_.fd.get());
}

void OnloadProxy::instrument(telemetry::Registry* registry) {
  if (registry == nullptr) {
    accepts_ = closes_ = bytes_down_ = bytes_up_ = nullptr;
    active_gauge_ = nullptr;
    return;
  }
  accepts_ = &registry->counter("gol.proto.proxy_accepts");
  closes_ = &registry->counter("gol.proto.proxy_closes");
  bytes_down_ =
      &registry->counter("gol.proto.bytes_proxied", {{"dir", "down"}});
  bytes_up_ = &registry->counter("gol.proto.bytes_proxied", {{"dir", "up"}});
  active_gauge_ = &registry->gauge("gol.proto.proxy_active_connections");
}

void OnloadProxy::onAccept() {
  while (auto client = acceptOne(listener_.fd.get())) {
    auto upstream = connectTcp(cfg_.upstream_port);
    if (!upstream) continue;  // origin unavailable: drop the client
    if (accepts_) accepts_->inc();
    auto pipe = std::make_unique<Pipe>(cfg_.up_bps, cfg_.down_bps);
    const int ckey = client->get();
    const int ukey = upstream->get();
    pipe->client = std::move(*client);
    pipe->upstream = std::move(*upstream);
    pipes_[ckey] = std::move(pipe);
    upstream_to_pipe_[ukey] = ckey;

    loop_.add(ckey, Interest::kRead,
              [this, ckey](bool, bool) { onEvent(ckey, true); });
    loop_.add(ukey, Interest::kReadWrite,
              [this, ckey](bool, bool) { onEvent(ckey, false); });
    if (active_gauge_) active_gauge_->set(static_cast<double>(pipes_.size()));
  }
}

std::chrono::microseconds OnloadProxy::DelayLine::drainInto(
    std::string& out) {
  const auto now = std::chrono::steady_clock::now();
  while (!chunks.empty() && chunks.front().eligible_at <= now) {
    out += chunks.front().data;
    chunks.pop_front();
  }
  if (chunks.empty()) return std::chrono::microseconds(0);
  return std::chrono::duration_cast<std::chrono::microseconds>(
             chunks.front().eligible_at - now) +
         std::chrono::microseconds(1);
}

void OnloadProxy::onEvent(int pipe_key, bool from_client) {
  auto it = pipes_.find(pipe_key);
  if (it == pipes_.end()) return;
  Pipe& pipe = *it->second;

  // Ingest whatever arrived on the signalled side into the delay line
  // (subject to buffer caps).
  char buf[kChunk];
  const auto eligible =
      std::chrono::steady_clock::now() + cfg_.latency;
  if (from_client && pipe.to_upstream.size() < kHighWater) {
    for (;;) {
      const long n = readSome(pipe.client.get(), buf, sizeof buf);
      if (n == 0) {
        pipe.client_eof = true;
        break;
      }
      if (n < 0) break;
      pipe.delay_to_upstream.push(
          std::string(buf, static_cast<std::size_t>(n)), eligible);
      if (pipe.to_upstream.size() >= kHighWater) break;
    }
  } else if (!from_client && pipe.to_client.size() < kHighWater) {
    for (;;) {
      const long n = readSome(pipe.upstream.get(), buf, sizeof buf);
      if (n == 0) {
        pipe.upstream_eof = true;
        break;
      }
      if (n < 0) break;
      pipe.delay_to_client.push(
          std::string(buf, static_cast<std::size_t>(n)), eligible);
      if (pipe.to_client.size() >= kHighWater) break;
    }
  }
  pump(pipe_key);
}

void OnloadProxy::pump(int pipe_key) {
  auto it = pipes_.find(pipe_key);
  if (it == pipes_.end()) return;
  Pipe& pipe = *it->second;

  // Mature delayed bytes first, then shaped relay in both directions.
  std::chrono::microseconds wait{0};
  wait = std::max(wait, pipe.delay_to_client.drainInto(pipe.to_client));
  wait = std::max(wait, pipe.delay_to_upstream.drainInto(pipe.to_upstream));

  if (!pipe.to_client.empty()) {
    const std::size_t allowed =
        std::min(pipe.down_limiter.available(), pipe.to_client.size());
    if (allowed > 0) {
      const long n =
          writeSome(pipe.client.get(), pipe.to_client.data(), allowed);
      if (n > 0) {
        pipe.down_limiter.consume(static_cast<std::size_t>(n));
        relayed_down_ += static_cast<std::size_t>(n);
        if (bytes_down_) bytes_down_->inc(static_cast<double>(n));
        pipe.to_client.erase(0, static_cast<std::size_t>(n));
      }
    }
    if (!pipe.to_client.empty()) {
      wait = std::max(wait, pipe.down_limiter.delayFor(
                                std::min(pipe.to_client.size(), kChunk)));
    }
  }

  if (!pipe.to_upstream.empty()) {
    const std::size_t allowed =
        std::min(pipe.up_limiter.available(), pipe.to_upstream.size());
    if (allowed > 0) {
      const long n =
          writeSome(pipe.upstream.get(), pipe.to_upstream.data(), allowed);
      if (n > 0) {
        pipe.up_limiter.consume(static_cast<std::size_t>(n));
        relayed_up_ += static_cast<std::size_t>(n);
        if (bytes_up_) bytes_up_->inc(static_cast<double>(n));
        pipe.to_upstream.erase(0, static_cast<std::size_t>(n));
      }
    }
    if (!pipe.to_upstream.empty()) {
      wait = std::max(wait, pipe.up_limiter.delayFor(
                                std::min(pipe.to_upstream.size(), kChunk)));
    }
  }

  // Close once a side hit EOF and its buffered + delayed bytes drained.
  const bool down_drained =
      pipe.to_client.empty() && pipe.delay_to_client.empty();
  const bool up_drained =
      pipe.to_upstream.empty() && pipe.delay_to_upstream.empty();
  if (pipe.upstream_eof && down_drained) {
    closePipe(pipe_key);
    return;
  }
  if (pipe.client_eof && up_drained && !pipe.upstream_eof) {
    // Half-close toward the origin so it sees the request end.
    ::shutdown(pipe.upstream.get(), SHUT_WR);
  }

  // Keep write-interest only while bytes are queued for that side; the
  // shaped waits are timer-driven, not EPOLLOUT-driven.
  loop_.modify(pipe.client.get(),
               pipe.to_client.empty() ? Interest::kRead
                                      : Interest::kReadWrite);
  loop_.modify(pipe.upstream.get(),
               pipe.to_upstream.empty() ? Interest::kRead
                                        : Interest::kReadWrite);

  if (wait.count() > 0 && !pipe.timer_armed) {
    pipe.timer_armed = true;
    armTimer(pipe_key, wait);
  }
}

void OnloadProxy::armTimer(int pipe_key, std::chrono::microseconds delay) {
  loop_.runAfter(delay, [this, pipe_key] {
    auto it = pipes_.find(pipe_key);
    if (it == pipes_.end()) return;
    it->second->timer_armed = false;
    pump(pipe_key);
  });
}

void OnloadProxy::killActiveConnections() {
  while (!pipes_.empty()) {
    const auto& [key, pipe] = *pipes_.begin();
    // Linger-0 close aborts the connection: the client gets an RST, not a
    // tidy FIN, exactly like a mid-transfer device disappearance.
    const struct linger lg{1, 0};
    ::setsockopt(pipe->client.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    closePipe(key);
  }
}

void OnloadProxy::pauseAccepting() {
  if (!listener_.fd.valid()) return;
  loop_.remove(listener_.fd.get());
  listener_.fd.reset();
}

void OnloadProxy::resumeAccepting() {
  if (listener_.fd.valid()) return;
  auto l = listenTcp(port_);
  if (!l) throw std::runtime_error("OnloadProxy: cannot re-listen");
  listener_ = std::move(*l);
  loop_.add(listener_.fd.get(), Interest::kRead,
            [this](bool, bool) { onAccept(); });
}

void OnloadProxy::closePipe(int pipe_key) {
  auto it = pipes_.find(pipe_key);
  if (it == pipes_.end()) return;
  Pipe& pipe = *it->second;
  loop_.remove(pipe.client.get());
  loop_.remove(pipe.upstream.get());
  upstream_to_pipe_.erase(pipe.upstream.get());
  pipes_.erase(it);
  if (closes_) closes_->inc();
  if (active_gauge_) active_gauge_->set(static_cast<double>(pipes_.size()));
}

}  // namespace gol::proto
