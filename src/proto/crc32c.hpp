// CRC32C (Castagnoli) for the quota journal's record framing. Software
// table-driven implementation — the journal's append path is dominated by
// the write/fdatasync pair, so a few ns/byte of checksum is noise, and a
// dependency-free header keeps replay() usable from tests and tools that
// only want to inspect a journal file.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gol::proto {

namespace detail {

constexpr std::uint32_t kCrc32cPoly = 0x82f63b78u;  // reflected Castagnoli

inline constexpr std::array<std::uint32_t, 256> makeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
    table[i] = crc;
  }
  return table;
}

inline constexpr auto kCrc32cTable = makeCrc32cTable();

}  // namespace detail

/// One streaming step: folds `data` into a running CRC. Start from 0 and
/// chain calls; the result is the standard CRC-32C of the concatenation.
inline std::uint32_t crc32cStep(std::string_view data,
                                std::uint32_t crc = 0) {
  crc = ~crc;
  for (const char c : data) {
    crc = (crc >> 8) ^
          detail::kCrc32cTable[(crc ^ static_cast<unsigned char>(c)) & 0xffu];
  }
  return ~crc;
}

inline std::uint32_t crc32c(std::string_view data) { return crc32cStep(data); }

}  // namespace gol::proto
