#include "proto/quota_journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <vector>

#include "proto/crc32c.hpp"

namespace gol::proto {

namespace {

constexpr char kMagic[] = "3GOLQJ1\n";
constexpr std::size_t kMagicLen = 8;
constexpr std::size_t kHeaderLen = 9;  // crc(4) + len(4) + type(1)
/// Frame-length sanity bound. A legitimate record is a tenant name plus a
/// few doubles (snapshots are bounded by the tenant count, which the limit
/// comfortably covers at ~100k tenants per record); anything larger is a
/// corrupt length field.
constexpr std::uint32_t kMaxRecordLen = 8u << 20;

enum RecordType : std::uint8_t {
  kCharge = 1,
  kAllowance = 2,
  kNextDay = 3,
  kSnapshot = 4,
};

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void putF64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

/// Bounds-checked little-endian reader over a record payload; any read
/// past the end marks the cursor bad, which replay treats as corruption.
struct Cursor {
  const char* p;
  std::size_t left;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }
  std::uint16_t u16() {
    unsigned char b[2] = {};
    take(b, 2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    unsigned char b[4] = {};
    take(b, 4);
    return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }
  double f64() {
    unsigned char b[8] = {};
    take(b, 8);
    std::uint64_t bits = 0;
    for (int i = 7; i >= 0; --i) bits = (bits << 8) | b[i];
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str(std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string s(p, n);
    p += n;
    left -= n;
    return s;
  }
};

std::uint32_t readU32(const char* p) {
  unsigned char b[4];
  std::memcpy(b, p, 4);
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

/// Applies one verified record to the ledger. Returns false on a
/// structurally invalid payload (treated as corruption by the caller).
bool applyRecord(std::uint8_t type, std::string_view payload,
                 int days_per_month, ReplayResult& out) {
  Cursor c{payload.data(), payload.size()};
  switch (type) {
    case kCharge: {
      const std::uint16_t n = c.u16();
      const std::string name = c.str(n);
      const double bytes = c.f64();
      if (!c.ok || c.left != 0 || !(bytes >= 0)) return false;
      auto& t = out.state[name];
      t.used_today += bytes;
      t.used_month += bytes;
      ++out.charge_records;
      out.charged_bytes += bytes;
      return true;
    }
    case kAllowance: {
      const std::uint16_t n = c.u16();
      const std::string name = c.str(n);
      const double bytes = c.f64();
      if (!c.ok || c.left != 0) return false;
      out.state[name].monthly_allowance = std::max(0.0, bytes);
      return true;
    }
    case kNextDay: {
      if (!payload.empty()) return false;
      for (auto& [name, t] : out.state) {
        t.used_today = 0;
        if (++t.day >= days_per_month) {
          t.day = 0;
          t.used_month = 0;
        }
      }
      return true;
    }
    case kSnapshot: {
      const std::uint32_t count = c.u32();
      if (!c.ok) return false;
      LedgerState snap;
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint16_t n = c.u16();
        const std::string name = c.str(n);
        TenantLedger t;
        t.monthly_allowance = c.f64();
        t.used_today = c.f64();
        t.used_month = c.f64();
        t.day = static_cast<int>(c.u32());
        if (!c.ok) return false;
        snap[name] = t;
      }
      if (c.left != 0) return false;
      // A snapshot is authoritative: it replaces whatever was replayed so
      // far (compacted files start with one).
      out.state = std::move(snap);
      return true;
    }
    default:
      return false;  // unknown type = corruption, not forward-compat
  }
}

}  // namespace

ReplayResult QuotaJournal::replay(std::string_view bytes,
                                  int days_per_month) {
  ReplayResult out;
  days_per_month = std::max(1, days_per_month);
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    // No (or corrupt) header: nothing trustworthy in the file at all.
    out.torn = !bytes.empty();
    return out;
  }
  std::size_t pos = kMagicLen;
  out.valid_bytes = pos;
  while (pos + kHeaderLen <= bytes.size()) {
    const std::uint32_t crc = readU32(bytes.data() + pos);
    const std::uint32_t len = readU32(bytes.data() + pos + 4);
    if (len > kMaxRecordLen || pos + kHeaderLen + len > bytes.size()) break;
    // CRC covers len|type|payload so a flipped length field can't re-frame
    // the stream into plausible garbage.
    const std::string_view covered =
        bytes.substr(pos + 4, 5 + static_cast<std::size_t>(len));
    if (crc32c(covered) != crc) break;
    const std::uint8_t type =
        static_cast<std::uint8_t>(bytes[pos + kHeaderLen - 1]);
    const std::string_view payload = bytes.substr(pos + kHeaderLen, len);
    if (!applyRecord(type, payload, days_per_month, out)) break;
    ++out.records;
    pos += kHeaderLen + len;
    out.valid_bytes = pos;
  }
  out.torn = out.valid_bytes != bytes.size();
  return out;
}

QuotaJournal::QuotaJournal(QuotaJournalConfig cfg)
    : cfg_(std::move(cfg)), last_sync_(std::chrono::steady_clock::now()) {
  cfg_.days_per_month = std::max(1, cfg_.days_per_month);
}

QuotaJournal::~QuotaJournal() {
  if (fd_ < 0) return;
  try {
    flush();
  } catch (const std::system_error&) {
    // Destructor flush is best-effort; open() truncates any torn tail.
  }
  ::close(fd_);
}

void QuotaJournal::writeAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "QuotaJournal: write");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

ReplayResult QuotaJournal::open() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_ = ::open(cfg_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(),
                            "QuotaJournal: open " + cfg_.path);
  std::string contents;
  {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::system_error(errno, std::generic_category(),
                                "QuotaJournal: read");
      }
      if (n == 0) break;
      contents.append(buf, static_cast<std::size_t>(n));
    }
  }
  ReplayResult recovered = replay(contents, cfg_.days_per_month);
  if (contents.empty()) {
    // Fresh journal: stamp the header.
    writeAll(fd_, kMagic, kMagicLen);
    recovered.valid_bytes = kMagicLen;
  } else if (recovered.valid_bytes < kMagicLen) {
    // Header itself is damaged — nothing can be salvaged; start the ledger
    // empty but PRESERVE the damaged file for forensics and begin fresh.
    const std::string quarantine = cfg_.path + ".corrupt";
    ::rename(cfg_.path.c_str(), quarantine.c_str());
    ::close(fd_);
    fd_ = ::open(cfg_.path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
      throw std::system_error(errno, std::generic_category(),
                              "QuotaJournal: reopen " + cfg_.path);
    writeAll(fd_, kMagic, kMagicLen);
    recovered.valid_bytes = kMagicLen;
  } else if (recovered.torn) {
    // Drop the torn tail so new appends extend a consistent prefix.
    if (::ftruncate(fd_, static_cast<off_t>(recovered.valid_bytes)) < 0)
      throw std::system_error(errno, std::generic_category(),
                              "QuotaJournal: ftruncate");
    if (::lseek(fd_, 0, SEEK_END) < 0)
      throw std::system_error(errno, std::generic_category(),
                              "QuotaJournal: lseek");
  }
  file_bytes_ = std::max(recovered.valid_bytes, kMagicLen);
  pending_.clear();
  at_risk_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  return recovered;
}

void QuotaJournal::appendRecord(std::uint8_t type, std::string payload) {
  std::string body;
  body.reserve(5 + payload.size());
  putU32(body, static_cast<std::uint32_t>(payload.size()));
  body.push_back(static_cast<char>(type));
  body += payload;
  std::string framed;
  framed.reserve(4 + body.size());
  putU32(framed, crc32c(body));
  framed += body;
  pending_ += framed;
  ++appended_;
}

void QuotaJournal::appendCharge(const std::string& tenant, double bytes) {
  if (!(bytes > 0)) return;
  std::string payload;
  putU16(payload, static_cast<std::uint16_t>(
                      std::min<std::size_t>(tenant.size(), 0xffff)));
  payload += tenant.substr(0, 0xffff);
  putF64(payload, bytes);
  appendRecord(kCharge, std::move(payload));
  at_risk_ += bytes;
  maybeFlush();
}

void QuotaJournal::appendAllowance(const std::string& tenant, double bytes) {
  std::string payload;
  putU16(payload, static_cast<std::uint16_t>(
                      std::min<std::size_t>(tenant.size(), 0xffff)));
  payload += tenant.substr(0, 0xffff);
  putF64(payload, bytes);
  appendRecord(kAllowance, std::move(payload));
  maybeFlush();
}

void QuotaJournal::appendNextDay() {
  appendRecord(kNextDay, {});
  // A day roll re-opens admission — losing it under-grants rather than
  // over-grants, but flush eagerly anyway: it is rare and cheap.
  flush();
}

void QuotaJournal::maybeFlush() {
  if (pending_.empty()) return;
  if (at_risk_ < cfg_.bytes_at_risk_limit &&
      std::chrono::steady_clock::now() - last_sync_ < cfg_.sync_interval)
    return;
  flush();
}

void QuotaJournal::flush() {
  if (fd_ < 0 || pending_.empty()) {
    last_sync_ = std::chrono::steady_clock::now();
    return;
  }
  writeAll(fd_, pending_.data(), pending_.size());
  if (cfg_.fsync) ::fdatasync(fd_);
  file_bytes_ += pending_.size();
  pending_.clear();
  at_risk_ = 0;
  ++flushes_;
  last_sync_ = std::chrono::steady_clock::now();
}

void QuotaJournal::checkpoint(const LedgerState& state) {
  // Serialize the snapshot record.
  std::string payload;
  putU32(payload, static_cast<std::uint32_t>(state.size()));
  for (const auto& [name, t] : state) {
    putU16(payload, static_cast<std::uint16_t>(
                        std::min<std::size_t>(name.size(), 0xffff)));
    payload += name.substr(0, 0xffff);
    putF64(payload, t.monthly_allowance);
    putF64(payload, t.used_today);
    putF64(payload, t.used_month);
    putU32(payload, static_cast<std::uint32_t>(std::max(0, t.day)));
  }
  std::string body;
  putU32(body, static_cast<std::uint32_t>(payload.size()));
  body.push_back(static_cast<char>(kSnapshot));
  body += payload;
  std::string image(kMagic, kMagicLen);
  putU32(image, crc32c(body));
  image += body;

  // tmp + fsync + rename: the journal is replaced atomically, so a crash
  // at any point leaves either the old log or the new snapshot — never a
  // half-written hybrid.
  const std::string tmp = cfg_.path + ".tmp";
  int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  if (tfd < 0)
    throw std::system_error(errno, std::generic_category(),
                            "QuotaJournal: open " + tmp);
  try {
    writeAll(tfd, image.data(), image.size());
    if (cfg_.fsync) ::fdatasync(tfd);
  } catch (...) {
    ::close(tfd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(tfd);
  if (::rename(tmp.c_str(), cfg_.path.c_str()) < 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::system_error(err, std::generic_category(),
                            "QuotaJournal: rename");
  }
  // Swap the live fd to the new file; pending records were not part of the
  // snapshot's source state only if the caller snapshotted stale state —
  // the governor always flushes its view, so drop them.
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(cfg_.path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(),
                            "QuotaJournal: reopen " + cfg_.path);
  file_bytes_ = image.size();
  pending_.clear();
  at_risk_ = 0;
  ++compactions_;
  last_sync_ = std::chrono::steady_clock::now();
}

}  // namespace gol::proto
