#include "proto/udp_discovery.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace gol::proto {

namespace {

constexpr char kMagic[] = "3GOL-ADVERT v1 ";
constexpr char kGoodbyeMagic[] = "3GOL-GOODBYE v1 ";

std::optional<std::string_view> fieldValue(std::string_view datagram,
                                           std::string_view key) {
  const std::string needle = std::string(key) + "=";
  const std::size_t pos = datagram.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::size_t start = pos + needle.size();
  const std::size_t end = datagram.find(' ', start);
  return datagram.substr(start, end == std::string_view::npos
                                    ? std::string_view::npos
                                    : end - start);
}

Fd makeUdpSocket() {
  Fd fd(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid())
    throw std::system_error(errno, std::generic_category(), "socket(UDP)");
  return fd;
}

sockaddr_in loopbackAddr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

std::string encodeGoodbye(const std::string& name) {
  return std::string(kGoodbyeMagic) + "name=" + name;
}

std::optional<std::string> parseGoodbye(std::string_view datagram) {
  if (datagram.rfind(kGoodbyeMagic, 0) != 0) return std::nullopt;
  const auto name = fieldValue(datagram, "name");
  if (!name || name->empty()) return std::nullopt;
  return std::string(*name);
}

std::string encodeAdvertisement(const Advertisement& ad) {
  return std::string(kMagic) + "name=" + ad.name +
         " proxy_port=" + std::to_string(ad.proxy_port) +
         " quota_bytes=" + std::to_string(ad.quota_bytes);
}

std::optional<Advertisement> parseAdvertisement(std::string_view datagram) {
  if (datagram.rfind(kMagic, 0) != 0) return std::nullopt;
  const auto name = fieldValue(datagram, "name");
  const auto port = fieldValue(datagram, "proxy_port");
  const auto quota = fieldValue(datagram, "quota_bytes");
  if (!name || name->empty() || !port || !quota) return std::nullopt;

  Advertisement ad;
  ad.name = std::string(*name);
  unsigned long port_value = 0;
  auto res = std::from_chars(port->data(), port->data() + port->size(),
                             port_value);
  if (res.ec != std::errc() || res.ptr != port->data() + port->size() ||
      port_value > 65535)
    return std::nullopt;
  ad.proxy_port = static_cast<std::uint16_t>(port_value);
  res = std::from_chars(quota->data(), quota->data() + quota->size(),
                        ad.quota_bytes);
  if (res.ec != std::errc() || res.ptr != quota->data() + quota->size())
    return std::nullopt;
  return ad;
}

UdpDiscoveryListener::UdpDiscoveryListener(EpollLoop& loop,
                                           std::chrono::milliseconds ttl)
    : loop_(loop),
      ttl_(ttl),
      sock_(makeUdpSocket()),
      liveness_(std::make_shared<bool>(true)) {
  sockaddr_in addr = loopbackAddr(0);
  if (::bind(sock_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0)
    throw std::system_error(errno, std::generic_category(), "bind(UDP)");
  socklen_t len = sizeof addr;
  ::getsockname(sock_.get(), reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  loop_.add(sock_.get(), Interest::kRead,
            [this](bool, bool) { onReadable(); });
  schedulePurge();
}

UdpDiscoveryListener::~UdpDiscoveryListener() {
  *liveness_ = false;
  if (sock_.valid()) loop_.remove(sock_.get());
}

void UdpDiscoveryListener::schedulePurge() {
  loop_.runAfter(
      std::chrono::duration_cast<std::chrono::microseconds>(ttl_),
      [this, alive = std::weak_ptr<bool>(liveness_)] {
        if (auto p = alive.lock(); p && *p) {
          purgeStale();
          schedulePurge();
        }
      });
}

void UdpDiscoveryListener::purgeStale() {
  const auto now = std::chrono::steady_clock::now();
  const auto horizon = ttl_ * kExpiryTtls;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.seen > horizon) {
      ++expired_;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void UdpDiscoveryListener::onReadable() {
  char buf[1500];
  for (;;) {
    const auto n = ::recv(sock_.get(), buf, sizeof buf, 0);
    if (n < 0) break;
    ++received_;
    const std::string_view datagram(buf, static_cast<std::size_t>(n));
    // Explicit retraction: the device is draining — forget it NOW instead
    // of serving a dead endpoint for up to kExpiryTtls TTLs.
    if (const auto bye = parseGoodbye(datagram)) {
      ++goodbyes_;
      entries_.erase(*bye);
      continue;
    }
    const auto ad = parseAdvertisement(datagram);
    if (!ad) {
      ++malformed_;
      continue;
    }
    entries_[ad->name] = Entry{*ad, std::chrono::steady_clock::now()};
  }
}

std::vector<Advertisement> UdpDiscoveryListener::admissible() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<Advertisement> out;
  for (const auto& [name, entry] : entries_) {
    if (now - entry.seen <= ttl_) out.push_back(entry.ad);
  }
  return out;
}

bool UdpDiscoveryListener::isAdmissible(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() &&
         std::chrono::steady_clock::now() - it->second.seen <= ttl_;
}

UdpDiscoveryBeacon::UdpDiscoveryBeacon(
    EpollLoop& loop, std::uint16_t listener_port,
    std::function<std::optional<Advertisement>()> eligible,
    std::chrono::milliseconds interval)
    : loop_(loop),
      listener_port_(listener_port),
      eligible_(std::move(eligible)),
      interval_(interval),
      sock_(makeUdpSocket()),
      liveness_(std::make_shared<bool>(true)) {}

UdpDiscoveryBeacon::~UdpDiscoveryBeacon() { *liveness_ = false; }

void UdpDiscoveryBeacon::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void UdpDiscoveryBeacon::announceNow() {
  if (eligible_) {
    if (const auto ad = eligible_()) {
      const std::string wire = encodeAdvertisement(*ad);
      const sockaddr_in addr = loopbackAddr(listener_port_);
      ::sendto(sock_.get(), wire.data(), wire.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
      ++sent_;
    }
  }
}

void UdpDiscoveryBeacon::sendGoodbye(const std::string& name) {
  const std::string wire = encodeGoodbye(name);
  const sockaddr_in addr = loopbackAddr(listener_port_);
  ::sendto(sock_.get(), wire.data(), wire.size(), 0,
           reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  ++goodbyes_sent_;
}

void UdpDiscoveryBeacon::tick() {
  if (!running_) return;
  announceNow();
  loop_.runAfter(std::chrono::duration_cast<std::chrono::microseconds>(
                     interval_),
                 [this, alive = std::weak_ptr<bool>(liveness_)] {
                   if (auto p = alive.lock(); p && *p) tick();
                 });
}

}  // namespace gol::proto
