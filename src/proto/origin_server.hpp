// A tiny HTTP/1.1 origin for the prototype: GET /obj/<bytes> returns a
// body of that size; POST consumes the body and answers 201. Mirrors the
// dedicated well-provisioned web server of the paper's evaluation.
//
// Resume + integrity: GET honors `Range: bytes=N-` with a 206 and a
// Content-Range header, and every object response carries an
// `X-Checksum-FNV1a` header digesting the FULL object so clients can
// verify assembled payloads end-to-end. Fault hooks model a misbehaving
// in-path box: advertise the full Content-Length but close early
// (truncation), or flip a payload byte while keeping the checksum header
// honest (corruption).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "proto/epoll_loop.hpp"
#include "proto/socket.hpp"

namespace gol::proto {

class OriginServer {
 public:
  /// Binds 127.0.0.1:0 and registers with the loop. Throws on failure.
  explicit OriginServer(EpollLoop& loop);
  ~OriginServer();
  OriginServer(const OriginServer&) = delete;
  OriginServer& operator=(const OriginServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t requestsServed() const { return served_; }
  std::size_t bytesIngested() const { return ingested_; }
  std::size_t rangesServed() const { return ranges_served_; }

  /// Fault hook: the next `count` object responses advertise the full
  /// Content-Length but the connection closes after withholding the last
  /// `cut_bytes` body bytes — a truncating middlebox / dying upstream.
  void truncateNextResponses(int count, std::size_t cut_bytes) {
    truncate_next_ = count;
    truncate_cut_ = cut_bytes;
  }
  /// Fault hook: the next `count` object responses have one body byte
  /// flipped while Content-Length and X-Checksum-FNV1a stay honest — only
  /// checksum verification can catch it.
  void corruptNextResponses(int count) { corrupt_next_ = count; }
  /// Compatibility hook: when false, Range requests are answered with a
  /// plain 200 + full body (the origin-without-Range-support case clients
  /// must fall back from).
  void setRangeSupported(bool supported) { range_supported_ = supported; }

 private:
  struct Conn {
    Fd fd;
    std::string in;
    std::string out;
    std::size_t out_sent = 0;
    bool close_after_flush = false;
  };

  void onAccept();
  void onConnEvent(int fd, bool readable, bool writable);
  void processBuffer(Conn& conn);
  void flush(Conn& conn);
  void closeConn(int fd);

  EpollLoop& loop_;
  Listener listener_;
  std::uint16_t port_;
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::size_t served_ = 0;
  std::size_t ingested_ = 0;
  std::size_t ranges_served_ = 0;
  int truncate_next_ = 0;
  std::size_t truncate_cut_ = 0;
  int corrupt_next_ = 0;
  bool range_supported_ = true;
  /// FNV digests of full objects by size, cached (bodies are all-'x').
  std::map<std::size_t, std::uint64_t> digest_cache_;
};

}  // namespace gol::proto
