// A tiny HTTP/1.1 origin for the prototype: GET /obj/<bytes> returns a
// body of that size; POST consumes the body and answers 201. Mirrors the
// dedicated well-provisioned web server of the paper's evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "proto/epoll_loop.hpp"
#include "proto/socket.hpp"

namespace gol::proto {

class OriginServer {
 public:
  /// Binds 127.0.0.1:0 and registers with the loop. Throws on failure.
  explicit OriginServer(EpollLoop& loop);
  ~OriginServer();
  OriginServer(const OriginServer&) = delete;
  OriginServer& operator=(const OriginServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t requestsServed() const { return served_; }
  std::size_t bytesIngested() const { return ingested_; }

 private:
  struct Conn {
    Fd fd;
    std::string in;
    std::string out;
    std::size_t out_sent = 0;
  };

  void onAccept();
  void onConnEvent(int fd, bool readable, bool writable);
  void processBuffer(Conn& conn);
  void flush(Conn& conn);
  void closeConn(int fd);

  EpollLoop& loop_;
  Listener listener_;
  std::uint16_t port_;
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::size_t served_ = 0;
  std::size_t ingested_ = 0;
};

}  // namespace gol::proto
