// Token-bucket rate limiter — the prototype's stand-in for netem-emulated
// access links: each proxy upstream leg ("the 3G interface") and the
// emulated ADSL leg drain through one of these.
#pragma once

#include <chrono>
#include <cstddef>

namespace gol::proto {

class RateLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  /// `rate_bps` in bits per second; `burst_bytes` caps the bucket.
  RateLimiter(double rate_bps, std::size_t burst_bytes = 32 * 1024);

  /// Bytes that may be sent right now.
  std::size_t available(Clock::time_point now = Clock::now());
  /// Consumes `bytes` from the bucket (after a successful send).
  void consume(std::size_t bytes);
  /// Time until at least `bytes` are available (zero when ready).
  std::chrono::microseconds delayFor(std::size_t bytes,
                                     Clock::time_point now = Clock::now());

  double rateBps() const { return rate_bps_; }
  void setRateBps(double rate_bps);

 private:
  void refill(Clock::time_point now);

  double rate_bps_;
  double burst_bytes_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace gol::proto
