// Per-tenant admission and quota for the multi-tenant onload proxy
// (Sec. 6 made live): each client identity — in the loopback prototype,
// the 127.x source address a household connects from — is metered by a
// core::UsageTracker whose monthly budget comes from the 3GOLa(t)
// guard-band estimator over that tenant's trailing free-capacity history.
//
// The governor answers three questions the relay path asks under load:
//   * admit(tenant)   — may this connection start? (quota + per-tenant cap)
//   * chargeBytes     — meter relayed bytes against the tenant's A(t)
//   * eligible        — has the tenant's rolling allowance survived?
//
// Denials are advisory: the proxy turns kDenyQuota into an explicit
// "onload denied, fall back to ADSL" reply the multipath client honors by
// continuing single-path — degradation, never failure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/allowance.hpp"
#include "proto/quota_journal.hpp"
#include "telemetry/metrics.hpp"

namespace gol::proto {

struct TenantGovernorConfig {
  /// Concurrent relay connections allowed per tenant (0 = unlimited).
  std::size_t max_connections_per_tenant = 0;
  /// Monthly budget for tenants with no free-capacity history yet. The
  /// paper's estimator is conservative (no history -> zero onloading);
  /// a service has to bootstrap, so unknown tenants get this instead.
  double default_monthly_allowance_bytes = 50e6;
  /// Days the monthly allowance is sliced into (1 = the whole budget is
  /// available immediately — the load-test configuration).
  int days_per_month = 30;
  core::AllowanceConfig allowance;  ///< tau/alpha for 3GOLa(t).
};

enum class AdmitDecision {
  kAdmit,       ///< Connection accepted and counted.
  kDenyQuota,   ///< A(t) exhausted: onload denied, client falls back.
  kShedTenant,  ///< Per-tenant connection cap hit: transient busy.
};

const char* toString(AdmitDecision decision);

class TenantGovernor {
 public:
  explicit TenantGovernor(TenantGovernorConfig cfg = {});

  /// Feeds a tenant's trailing monthly free-capacity series (bytes, most
  /// recent last) through estimateMonthlyAllowance and installs the
  /// result as its live budget — the offline estimator running online.
  void setFreeHistory(const std::string& tenant,
                      const std::vector<double>& free_history);
  /// Installs an explicit monthly budget (bypasses the estimator).
  void setMonthlyAllowance(const std::string& tenant, double bytes);

  /// Admission check at accept time. kAdmit increments the tenant's
  /// active-connection count; the caller must pair it with
  /// onConnectionClosed.
  AdmitDecision admit(const std::string& tenant);
  void onConnectionClosed(const std::string& tenant);

  /// Meters relayed bytes against the tenant's daily allowance A(t).
  void chargeBytes(const std::string& tenant, double bytes);
  /// Rolls every tracker to the next day (A(t) refreshes).
  void nextDay();

  bool eligible(const std::string& tenant) const;
  double availableTodayBytes(const std::string& tenant) const;
  double usedTodayBytes(const std::string& tenant) const;
  std::size_t activeConnections() const { return active_total_; }
  std::size_t activeConnections(const std::string& tenant) const;
  std::size_t tenantCount() const { return tenants_.size(); }

  std::size_t admitted() const { return admitted_; }
  std::size_t deniedQuota() const { return denied_quota_; }
  std::size_t shedTenantCap() const { return shed_tenant_; }

  /// Publishes admit/deny/shed counters and an active-connections gauge
  /// into `registry` (nullptr detaches).
  void instrument(telemetry::Registry* registry);

  // --- Durability (crash-safe quota ledger) ---
  /// Attaches a write-ahead journal (not owned; nullptr detaches). Every
  /// subsequent chargeBytes / setMonthlyAllowance / nextDay — and the
  /// default-allowance bootstrap of a first-seen tenant — appends a record
  /// before returning, so a restarted proxy can replay spent quota instead
  /// of silently re-granting it. Auto-compacts via checkpoint() once the
  /// journal outgrows its configured size.
  void attachJournal(QuotaJournal* journal);
  /// Rebuilds every tracker from a replayed ledger (replaces any existing
  /// tenant state). Call before attachJournal to avoid re-journaling the
  /// recovered records.
  void restore(const LedgerState& state);
  /// Durable view of every tenant's tracker.
  LedgerState snapshot() const;
  /// Flushes pending records and compacts the journal to one snapshot of
  /// the current state. No-op without an attached journal.
  void checkpoint();

  /// Test/harness hook: observes every charge BEFORE it reaches the
  /// journal (the crash harness's ground-truth channel — written first so
  /// a crash between the two can only lose a journaled charge, never
  /// invent one).
  std::function<void(const std::string& tenant, double bytes)> on_charge;

 private:
  struct Tenant {
    core::UsageTracker tracker;
    std::size_t active = 0;
    explicit Tenant(double monthly, int days) : tracker(monthly, days) {}
  };

  Tenant& tenantFor(const std::string& name);

  TenantGovernorConfig cfg_;
  QuotaJournal* journal_ = nullptr;
  std::map<std::string, Tenant> tenants_;
  std::size_t active_total_ = 0;
  std::size_t admitted_ = 0;
  std::size_t denied_quota_ = 0;
  std::size_t shed_tenant_ = 0;
  telemetry::Counter* admitted_ctr_ = nullptr;
  telemetry::Counter* denied_ctr_ = nullptr;
  telemetry::Counter* shed_ctr_ = nullptr;
  telemetry::Gauge* active_gauge_ = nullptr;
};

}  // namespace gol::proto
