// Crash-safe durability for the tenant quota ledger (Sec. 6 made
// restartable): the whole 3GOLa(t) guarantee rests on charged bytes never
// being forgotten, yet the governor's UsageTracker state is in-memory — a
// proxy crash or deploy would silently re-grant spent quota. QuotaJournal
// is an append-only, CRC32C-framed write-ahead log of per-tenant byte
// charges, allowance re-estimates, and day rolls:
//
//   file  := magic("3GOLQJ1\n") record*
//   record:= crc32c(4 LE) len(4 LE) type(1) payload(len)
//            (crc covers len|type|payload, so a corrupted length field
//            cannot mis-frame the stream — it just fails the checksum)
//
// Appends batch in a userspace buffer and group-commit on either edge of
// the sync policy: `sync_interval` elapsed or `bytes_at_risk_limit`
// charged-but-unsynced bytes accumulated. A kill -9 therefore loses at
// most one sync window of charges — never records already flushed, and
// never in a way that double-charges (replay is prefix-consistent: it
// stops at the first torn or corrupt record and truncates the tail).
//
// Compaction: checkpoint() rewrites the journal as one snapshot record via
// the tmp + fsync + rename dance, so the log never grows without bound and
// recovery stays O(live tenants + one sync window of deltas).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace gol::proto {

/// Mirror of core::UsageTracker's durable state for one tenant.
struct TenantLedger {
  double monthly_allowance = 0;
  double used_today = 0;
  double used_month = 0;
  int day = 0;
};

using LedgerState = std::map<std::string, TenantLedger>;

struct ReplayResult {
  LedgerState state;
  /// Length of the clean prefix; bytes past it are torn/corrupt tail.
  std::size_t valid_bytes = 0;
  std::size_t records = 0;
  std::size_t charge_records = 0;
  double charged_bytes = 0;  ///< Total bytes across replayed charges.
  bool torn = false;         ///< A corrupt/torn tail was dropped.
};

struct QuotaJournalConfig {
  std::string path;
  /// Days the monthly allowance is sliced into — must match the governor's
  /// days_per_month, since day-roll records replay tracker semantics.
  int days_per_month = 30;
  /// Group-commit edges: flush when this much wall time has passed since
  /// the last sync with records pending...
  std::chrono::milliseconds sync_interval{50};
  /// ...or when this many charged-but-unsynced bytes are at risk.
  double bytes_at_risk_limit = 256e3;
  /// Compact (snapshot + truncate history) once the file grows past this.
  std::size_t compact_min_bytes = 1 << 20;
  /// fdatasync on every flush. Off trades the power-loss guarantee for
  /// speed; kill -9 durability (the crash harness) only needs write().
  bool fsync = true;
};

class QuotaJournal {
 public:
  /// Pure replay of a journal image — the recovery core, shared by open()
  /// and the torn-write fuzz tests. Applies records in order with
  /// UsageTracker semantics (allowance clamps at >= 0, day rolls reset
  /// used_today and wrap the month) and stops at the first record whose
  /// frame is incomplete or whose CRC fails.
  static ReplayResult replay(std::string_view bytes, int days_per_month);

  explicit QuotaJournal(QuotaJournalConfig cfg);
  ~QuotaJournal();  ///< Best-effort flush of pending records.
  QuotaJournal(const QuotaJournal&) = delete;
  QuotaJournal& operator=(const QuotaJournal&) = delete;

  /// Opens (creating if absent) the journal, replays it, and truncates the
  /// file to the clean prefix so appends continue from consistent state.
  /// Throws std::system_error on I/O failure.
  ReplayResult open();

  void appendCharge(const std::string& tenant, double bytes);
  void appendAllowance(const std::string& tenant, double bytes);
  void appendNextDay();

  /// Writes pending records and (cfg.fsync) fdatasyncs.
  void flush();
  /// Rewrites the journal as a single snapshot of `state` (written to
  /// path.tmp, fsynced, renamed over path), dropping replayed history.
  void checkpoint(const LedgerState& state);
  /// True once the on-disk file has outgrown compact_min_bytes — the
  /// owner should call checkpoint() with its current state.
  bool wantsCompaction() const { return file_bytes_ >= cfg_.compact_min_bytes; }

  double bytesAtRisk() const { return at_risk_; }
  std::size_t pendingBytes() const { return pending_.size(); }
  std::size_t fileBytes() const { return file_bytes_; }
  std::size_t flushes() const { return flushes_; }
  std::size_t compactions() const { return compactions_; }
  std::size_t appendedRecords() const { return appended_; }
  const std::string& path() const { return cfg_.path; }

 private:
  void appendRecord(std::uint8_t type, std::string payload);
  void maybeFlush();
  void writeAll(int fd, const char* data, std::size_t len);

  QuotaJournalConfig cfg_;
  int fd_ = -1;
  std::string pending_;  ///< Framed records not yet written to the file.
  double at_risk_ = 0;   ///< Charged bytes represented in pending_.
  std::chrono::steady_clock::time_point last_sync_;
  std::size_t file_bytes_ = 0;
  std::size_t flushes_ = 0;
  std::size_t compactions_ = 0;
  std::size_t appended_ = 0;
};

}  // namespace gol::proto
