// The OTT architecture's discovery protocol over real sockets (Sec. 2.4:
// the phone "advertises the device availability through a discovery
// protocol like Bonjour only if the device has an active permission").
// Implemented as periodic UDP datagrams on loopback:
//
//   3GOL-ADVERT v1 name=<device> proxy_port=<port> quota_bytes=<n>
//
// The client listens on a well-known (here: ephemeral, shared by config)
// UDP port and ages advertisements out after a TTL — exactly mirroring the
// simulator-side core::DiscoveryAgent/ClientDiscovery pair.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/epoll_loop.hpp"
#include "proto/socket.hpp"

namespace gol::proto {

struct Advertisement {
  std::string name;
  std::uint16_t proxy_port = 0;
  /// Remaining daily quota the device is willing to spend (A(t), Sec. 6).
  std::uint64_t quota_bytes = 0;
};

/// Wire codec (pure, unit-testable). parse returns nullopt on anything
/// that is not a well-formed v1 advertisement.
std::string encodeAdvertisement(const Advertisement& ad);
std::optional<Advertisement> parseAdvertisement(std::string_view datagram);

/// Explicit retraction: a draining proxy broadcasts
///   3GOL-GOODBYE v1 name=<device>
/// so clients drop the endpoint immediately instead of waiting out
/// kExpiryTtls TTL periods against a dead address. parse returns the
/// retracted device name, or nullopt for anything else.
std::string encodeGoodbye(const std::string& name);
std::optional<std::string> parseGoodbye(std::string_view datagram);

/// Client side: binds an ephemeral loopback UDP port and collects fresh
/// advertisements.
class UdpDiscoveryListener {
 public:
  UdpDiscoveryListener(EpollLoop& loop,
                       std::chrono::milliseconds ttl =
                           std::chrono::milliseconds(3000));
  ~UdpDiscoveryListener();
  UdpDiscoveryListener(const UdpDiscoveryListener&) = delete;
  UdpDiscoveryListener& operator=(const UdpDiscoveryListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// Fresh advertisements (expired pruned), newest data per device name.
  std::vector<Advertisement> admissible() const;
  bool isAdmissible(const std::string& name) const;
  std::size_t datagramsReceived() const { return received_; }
  std::size_t malformedDatagrams() const { return malformed_; }
  /// Device names currently held (fresh or aging toward expiry). Stale
  /// entries are erased once silent past kExpiryTtls TTL periods, so a
  /// churning fleet cannot grow this without bound.
  std::size_t trackedEntries() const { return entries_.size(); }
  std::size_t expiredEntries() const { return expired_; }
  /// Explicit goodbye retractions honored (entry dropped immediately).
  std::size_t goodbyesReceived() const { return goodbyes_; }

  /// A silent device is dropped from the table after this many TTLs. One
  /// TTL already makes it inadmissible; the extra grace lets a device that
  /// merely missed a couple of beacons revive without being forgotten.
  static constexpr int kExpiryTtls = 3;

 private:
  void onReadable();
  void purgeStale();
  void schedulePurge();

  EpollLoop& loop_;
  std::chrono::milliseconds ttl_;
  Fd sock_;
  std::uint16_t port_ = 0;
  struct Entry {
    Advertisement ad;
    std::chrono::steady_clock::time_point seen;
  };
  std::map<std::string, Entry> entries_;
  std::size_t received_ = 0;
  std::size_t malformed_ = 0;
  std::size_t expired_ = 0;
  std::size_t goodbyes_ = 0;
  /// Guards the purge timer against use-after-destruction.
  std::shared_ptr<bool> liveness_;
};

/// Phone side: beacons while `eligible` returns an advertisement to send
/// (nullopt = stay silent this round, e.g. quota exhausted).
class UdpDiscoveryBeacon {
 public:
  UdpDiscoveryBeacon(EpollLoop& loop, std::uint16_t listener_port,
                     std::function<std::optional<Advertisement>()> eligible,
                     std::chrono::milliseconds interval =
                         std::chrono::milliseconds(1000));
  ~UdpDiscoveryBeacon();
  UdpDiscoveryBeacon(const UdpDiscoveryBeacon&) = delete;
  UdpDiscoveryBeacon& operator=(const UdpDiscoveryBeacon&) = delete;

  void start();
  void stop() { running_ = false; }
  /// Sends one advertisement immediately (if `eligible` allows), without
  /// waiting for the next interval tick — a restarted proxy re-announces
  /// the instant it is serving again.
  void announceNow();
  /// Broadcasts an explicit retraction for `name` (a draining proxy's
  /// parting datagram). Independent of start()/stop().
  void sendGoodbye(const std::string& name);
  std::size_t beaconsSent() const { return sent_; }
  std::size_t goodbyesSent() const { return goodbyes_sent_; }

 private:
  void tick();

  EpollLoop& loop_;
  std::uint16_t listener_port_;
  std::function<std::optional<Advertisement>()> eligible_;
  std::chrono::milliseconds interval_;
  Fd sock_;
  bool running_ = false;
  std::size_t sent_ = 0;
  std::size_t goodbyes_sent_ = 0;
  /// Guards the timer callback against use-after-destruction.
  std::shared_ptr<bool> liveness_;
};

}  // namespace gol::proto
