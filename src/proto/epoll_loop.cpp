#include "proto/epoll_loop.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <cerrno>
#include <system_error>

namespace gol::proto {

namespace {

std::uint32_t toEpoll(Interest interest) {
  std::uint32_t ev = 0;
  const auto bits = static_cast<std::uint32_t>(interest);
  if (bits & 1) ev |= EPOLLIN;
  if (bits & 2) ev |= EPOLLOUT;
  return ev;
}

}  // namespace

EpollLoop::EpollLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_fd_.valid())
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
}

EpollLoop::~EpollLoop() = default;

void EpollLoop::add(int fd, Interest interest, Callback cb) {
  epoll_event ev{};
  ev.events = toEpoll(interest);
  ev.data.fd = fd;
  const bool existing = callbacks_.count(fd) != 0;
  if (::epoll_ctl(epoll_fd_.get(), existing ? EPOLL_CTL_MOD : EPOLL_CTL_ADD,
                  fd, &ev) < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl add");
  }
  callbacks_[fd] = std::move(cb);
}

void EpollLoop::modify(int fd, Interest interest) {
  epoll_event ev{};
  ev.events = toEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl mod");
  }
}

void EpollLoop::remove(int fd) {
  callbacks_.erase(fd);
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

EpollLoop::TimerId EpollLoop::runAfter(std::chrono::microseconds delay,
                                       std::function<void()> fn) {
  Timer t;
  t.due = Clock::now() + delay;
  t.id = next_timer_++;
  const TimerId id = t.id;
  t.fn = std::move(fn);
  timers_.push_back(std::move(t));
  std::push_heap(timers_.begin(), timers_.end());
  return id;
}

void EpollLoop::cancelTimer(TimerId id) { cancelled_.push_back(id); }

void EpollLoop::fireDueTimers() {
  const auto now = Clock::now();
  while (!timers_.empty()) {
    std::pop_heap(timers_.begin(), timers_.end());
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    const bool is_cancelled =
        std::find(cancelled_.begin(), cancelled_.end(), t.id) !=
        cancelled_.end();
    if (is_cancelled) {
      cancelled_.erase(
          std::remove(cancelled_.begin(), cancelled_.end(), t.id),
          cancelled_.end());
      continue;
    }
    if (t.due > now) {
      timers_.push_back(std::move(t));
      std::push_heap(timers_.begin(), timers_.end());
      break;
    }
    if (timers_fired_) timers_fired_->inc();
    t.fn();
  }
}

std::chrono::milliseconds EpollLoop::nextTimerWait(
    std::chrono::milliseconds max_wait) const {
  if (timers_.empty()) return max_wait;
  const auto due = timers_.front().due;
  const auto now = Clock::now();
  if (due <= now) return std::chrono::milliseconds(0);
  const auto wait =
      std::chrono::duration_cast<std::chrono::milliseconds>(due - now) +
      std::chrono::milliseconds(1);
  return std::min(max_wait, wait);
}

void EpollLoop::poll(std::chrono::milliseconds max_wait) {
  if (poll_iterations_) poll_iterations_->inc();
  fireDueTimers();
  epoll_event events[64];
  const int n =
      ::epoll_wait(epoll_fd_.get(), events, 64,
                   static_cast<int>(nextTimerWait(max_wait).count()));
  if (n < 0) {
    if (errno == EINTR) return;
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;  // removed by an earlier callback
    if (events_dispatched_) events_dispatched_->inc();
    const bool readable =
        (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
    const bool writable = (events[i].events & (EPOLLOUT | EPOLLERR)) != 0;
    // Copy: the callback may remove/replace itself.
    Callback cb = it->second;
    cb(readable, writable);
  }
  fireDueTimers();
}

void EpollLoop::instrument(telemetry::Registry* registry) {
  if (registry == nullptr) {
    poll_iterations_ = nullptr;
    events_dispatched_ = nullptr;
    timers_fired_ = nullptr;
    return;
  }
  poll_iterations_ = &registry->counter("gol.proto.poll_iterations");
  events_dispatched_ = &registry->counter("gol.proto.events_dispatched");
  timers_fired_ = &registry->counter("gol.proto.timers_fired");
}

bool EpollLoop::runUntil(const std::function<bool()>& predicate,
                         std::chrono::milliseconds deadline) {
  const auto until = Clock::now() + deadline;
  while (!predicate()) {
    if (Clock::now() >= until) return false;
    poll(std::chrono::milliseconds(20));
  }
  return true;
}

}  // namespace gol::proto
