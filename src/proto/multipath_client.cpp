#include "proto/multipath_client.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <system_error>

#include "http/checksum.hpp"
#include "http/message.hpp"

namespace gol::proto {

using Clock = std::chrono::steady_clock;

namespace {

/// The head of a response whose body may still be incomplete — enough to
/// decide whether a dead attempt's partial body is salvageable.
struct PartialHead {
  int status = 0;
  std::optional<std::string> content_range;
  std::size_t body_start = 0;
};

std::optional<PartialHead> parsePartialHead(const std::string& in) {
  const std::size_t head_end = in.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  PartialHead head;
  head.body_start = head_end + 4;
  const std::size_t sp = in.find(' ');
  if (sp == std::string::npos || sp > head_end) return std::nullopt;
  const char* p = in.data() + sp + 1;
  const auto [ptr, ec] = std::from_chars(p, in.data() + head_end, head.status);
  if (ec != std::errc() || head.status < 100 || head.status > 599)
    return std::nullopt;
  std::size_t pos = in.find("\r\n") + 2;
  while (pos < head_end) {
    std::size_t eol = in.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    const std::string_view line(in.data() + pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string name(line.substr(0, colon));
      for (char& c : name)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      while (!name.empty() && (name.back() == ' ' || name.back() == '\t'))
        name.pop_back();
      if (name == "content-range") {
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
          value.remove_prefix(1);
        head.content_range = std::string(value);
      }
    }
    pos = eol + 2;
  }
  return head;
}

}  // namespace

const char* toString(FetchOutcome outcome) {
  switch (outcome) {
    case FetchOutcome::kCompleted: return "completed";
    case FetchOutcome::kCompletedDegraded: return "completed_degraded";
    case FetchOutcome::kPartialFailure: return "partial_failure";
  }
  return "unknown";
}

MultipathHttpClient::MultipathHttpClient(EpollLoop& loop,
                                         std::vector<Endpoint> endpoints,
                                         ClientConfig cfg)
    : loop_(loop), cfg_(cfg) {
  if (endpoints.empty())
    throw std::invalid_argument("MultipathHttpClient: no endpoints");
  for (auto& e : endpoints) {
    Slot s;
    s.endpoint = std::move(e);
    s.rate_est_bps = cfg_.initial_rate_bps;
    slots_.push_back(std::move(s));
  }
}

MultipathHttpClient::MultipathHttpClient(EpollLoop& loop,
                                         std::vector<Endpoint> endpoints,
                                         bool enable_duplication)
    : MultipathHttpClient(loop, std::move(endpoints), [&] {
        ClientConfig cfg;
        cfg.enable_duplication = enable_duplication;
        return cfg;
      }()) {}

void MultipathHttpClient::start(std::vector<FetchItem> items) {
  if (!done_) throw std::logic_error("transaction already running");
  items_ = std::move(items);
  states_.assign(items_.size(), ItemState::kPending);
  prefix_.assign(items_.size(), std::string{});
  carriers_.assign(items_.size(), {});
  first_assigned_.assign(items_.size(), Clock::time_point{});
  failed_attempts_.assign(items_.size(), 0);
  failed_endpoint_names_.clear();
  done_count_ = 0;
  failed_count_ = 0;
  result_ = MultipathResult{};
  result_.item_completion_s.assign(items_.size(), 0.0);
  result_.per_item_attempts.assign(items_.size(), 0);
  // A quota denial only disables an endpoint for the transaction it hit:
  // the next transaction probes again (the allowance may have refreshed).
  for (auto& slot : slots_) slot.denied = false;
  done_ = items_.empty();
  result_.complete = done_;
  started_at_ = Clock::now();
  if (done_) return;
  dispatchAll();
}

std::optional<std::size_t> MultipathHttpClient::pickItem(
    std::size_t slot_index) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (states_[i] == ItemState::kPending) return i;
  }
  if (!cfg_.enable_duplication) return std::nullopt;
  std::optional<std::size_t> oldest;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (states_[i] != ItemState::kInFlight) continue;
    if (std::find(carriers_[i].begin(), carriers_[i].end(), slot_index) !=
        carriers_[i].end())
      continue;
    if (!oldest || first_assigned_[i] < first_assigned_[*oldest]) oldest = i;
  }
  return oldest;
}

std::chrono::milliseconds MultipathHttpClient::backoffDelay(
    int failed_attempts) const {
  const double factor =
      std::pow(cfg_.backoff_multiplier, std::max(0, failed_attempts - 1));
  const auto delay = std::chrono::milliseconds(static_cast<long>(
      static_cast<double>(cfg_.base_backoff.count()) * factor));
  return std::min(delay, cfg_.max_backoff);
}

std::chrono::milliseconds MultipathHttpClient::watchdogDeadline(
    const Slot& slot, std::size_t item_index) const {
  const double rate = std::max(slot.rate_est_bps, 1e3);
  const double est_s =
      static_cast<double>(items_[item_index].bytes) * 8.0 / rate;
  const auto scaled = std::chrono::milliseconds(
      static_cast<long>(cfg_.watchdog_k * est_s * 1e3));
  return std::max(cfg_.watchdog_floor, scaled);
}

void MultipathHttpClient::dispatchAll() {
  for (std::size_t s = 0; s < slots_.size() && !done_; ++s) dispatch(s);
}

void MultipathHttpClient::dispatch(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (slot.item.has_value() || done_ || slot.denied) return;
  if (Clock::now() < slot.quarantined_until) return;
  const auto pick = pickItem(slot_index);
  if (!pick) return;
  const std::size_t idx = *pick;

  if (states_[idx] == ItemState::kPending) {
    states_[idx] = ItemState::kInFlight;
    first_assigned_[idx] = Clock::now();
  } else {
    ++result_.duplicated_items;
  }
  carriers_[idx].push_back(slot_index);
  ++result_.per_item_attempts[idx];

  slot.item = idx;
  slot.in.clear();
  slot.received_body = 0;
  slot.offset = 0;
  if (cfg_.resume && !prefix_[idx].empty() &&
      prefix_[idx].size() < items_[idx].bytes) {
    slot.offset = prefix_[idx].size();
  }
  slot.started_at = Clock::now();
  const std::uint64_t gen = ++slot.attempt_gen;

  auto conn = connectTcp(slot.endpoint.port, cfg_.bind_addr);
  if (!conn) {
    // Synchronous connect failure (rare on loopback; usually the refusal
    // arrives as a socket error on the first poll) — a failed attempt like
    // any other.
    failAttempt(slot_index);
    return;
  }
  slot.conn = std::move(*conn);

  http::Request req;
  req.target = items_[idx].uri;
  req.headers["Host"] = "origin";
  req.headers["Connection"] = "close";
  if (slot.offset > 0) {
    req.headers["Range"] = "bytes=" + std::to_string(slot.offset) + "-";
    ++result_.resumed_attempts;
  }
  slot.out = req.serialize();

  slot.watchdog = loop_.runAfter(
      std::chrono::duration_cast<std::chrono::microseconds>(
          watchdogDeadline(slot, idx)),
      [this, slot_index, gen] { onWatchdog(slot_index, gen); });

  const int fd = slot.conn.get();
  loop_.add(fd, Interest::kReadWrite, [this, slot_index](bool r, bool w) {
    onSlotEvent(slot_index, r, w);
  });
}

void MultipathHttpClient::onSlotEvent(std::size_t slot_index, bool readable,
                                      bool writable) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value() || !slot.conn.valid()) return;
  const int fd = slot.conn.get();

  try {
    if (writable && !slot.out.empty()) {
      const long n = writeSome(fd, slot.out.data(), slot.out.size());
      if (n > 0) slot.out.erase(0, static_cast<std::size_t>(n));
      if (slot.out.empty()) loop_.modify(fd, Interest::kRead);
    }

    if (readable) {
      char buf[16384];
      bool eof = false;
      for (;;) {
        const long n = readSome(fd, buf, sizeof buf);
        if (n == 0) {
          eof = true;
          break;
        }
        if (n < 0) break;
        slot.in.append(buf, static_cast<std::size_t>(n));
      }
      const auto parsed = http::parseResponse(slot.in);
      if (parsed.status == http::ParseStatus::kComplete) {
        completeItem(slot_index);
        return;
      }
      if (eof) {
        // Origin/proxy closed before a full response: a failed attempt.
        failAttempt(slot_index);
        return;
      }
    }
  } catch (const std::system_error&) {
    // Hard socket error — connection reset, refused, aborted. The attempt
    // is dead; the retry machinery decides what happens to the item.
    failAttempt(slot_index);
  }
}

void MultipathHttpClient::releaseSlot(Slot& slot) {
  if (slot.watchdog != 0) {
    loop_.cancelTimer(slot.watchdog);
    slot.watchdog = 0;
  }
  ++slot.attempt_gen;
  if (slot.conn.valid()) {
    loop_.remove(slot.conn.get());
    slot.conn.reset();
  }
  slot.item.reset();
  slot.out.clear();
}

std::size_t MultipathHttpClient::salvageFromAttempt(const Slot& slot,
                                                    std::size_t item_index) {
  if (!cfg_.resume || slot.in.empty()) return 0;
  const auto head = parsePartialHead(slot.in);
  if (!head || (head->status != 200 && head->status != 206)) return 0;
  std::size_t effective = 0;
  if (head->status == 206) {
    if (!head->content_range) return 0;
    const auto cr = http::parseContentRange(*head->content_range);
    // Only trust ranges that start exactly where this attempt asked.
    if (!cr || cr->first != slot.offset ||
        cr->total != items_[item_index].bytes)
      return 0;
    effective = cr->first;
  }
  std::string& prefix = prefix_[item_index];
  if (effective > prefix.size()) return 0;  // would leave a hole
  const std::size_t body_len = slot.in.size() - head->body_start;
  const std::size_t new_end = effective + body_len;
  if (new_end <= prefix.size()) return 0;  // nothing past the checkpoint
  std::size_t take = new_end - prefix.size();
  take = std::min(take, items_[item_index].bytes - prefix.size());
  if (take == 0) return 0;
  prefix.append(slot.in, head->body_start + (prefix.size() - effective),
                take);
  return take;
}

void MultipathHttpClient::reclaimPrefix(std::size_t item_index) {
  std::string& prefix = prefix_[item_index];
  if (prefix.empty()) return;
  result_.wasted_bytes += prefix.size();
  result_.salvaged_bytes -= std::min(result_.salvaged_bytes, prefix.size());
  prefix.clear();
  prefix.shrink_to_fit();
}

void MultipathHttpClient::failAttempt(std::size_t slot_index, bool salvage) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value()) return;
  const std::size_t idx = *slot.item;
  std::size_t salvaged = 0;
  if (salvage && states_[idx] != ItemState::kDone &&
      states_[idx] != ItemState::kFailed) {
    salvaged = salvageFromAttempt(slot, idx);
  }
  result_.wasted_bytes += slot.in.size() - salvaged;
  result_.salvaged_bytes += salvaged;
  slot.in.clear();
  releaseSlot(slot);

  auto& c = carriers_[idx];
  c.erase(std::remove(c.begin(), c.end(), slot_index), c.end());

  failed_endpoint_names_.insert(slot.endpoint.name);
  if (++slot.consecutive_failures >= cfg_.quarantine_threshold) {
    slot.quarantined_until = Clock::now() + cfg_.quarantine;
    // Probe once the bench expires; quarantined slots are skipped by
    // dispatch until then.
    loop_.runAfter(std::chrono::duration_cast<std::chrono::microseconds>(
                       cfg_.quarantine),
                   [this, slot_index] { dispatch(slot_index); });
  }

  if (states_[idx] == ItemState::kDone) {
    dispatch(slot_index);
    return;
  }
  if (!c.empty()) {
    // A duplicate is still in flight elsewhere; ride on it.
    dispatch(slot_index);
    return;
  }

  if (++failed_attempts_[idx] >= cfg_.max_attempts) {
    states_[idx] = ItemState::kFailed;
    // A dead item delivers nothing; whatever it salvaged is waste now.
    reclaimPrefix(idx);
    ++failed_count_;
    ++result_.failed_items;
    if (done_count_ + failed_count_ == items_.size()) {
      finish();
      return;
    }
  } else {
    states_[idx] = ItemState::kBackoff;
    ++result_.retries;
    loop_.runAfter(std::chrono::duration_cast<std::chrono::microseconds>(
                       backoffDelay(failed_attempts_[idx])),
                   [this, idx] { onBackoffExpired(idx); });
  }
  dispatch(slot_index);
}

void MultipathHttpClient::onWatchdog(std::size_t slot_index,
                                     std::uint64_t gen) {
  Slot& slot = slots_[slot_index];
  if (done_ || !slot.item.has_value() || gen != slot.attempt_gen) return;
  slot.watchdog = 0;
  ++result_.timeouts;
  failAttempt(slot_index);
}

void MultipathHttpClient::onBackoffExpired(std::size_t item_index) {
  if (done_ || states_[item_index] != ItemState::kBackoff) return;
  states_[item_index] = ItemState::kPending;
  dispatchAll();
}

void MultipathHttpClient::completeItem(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  const std::size_t idx = *slot.item;
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - slot.started_at).count();
  const auto parsed = http::parseResponse(slot.in);
  const http::Response& resp = parsed.response;  // caller ensured kComplete

  if (elapsed > 1e-6 && !resp.body.empty()) {
    const double sample =
        static_cast<double>(resp.body.size()) * 8.0 / elapsed;
    slot.rate_est_bps = 0.5 * slot.rate_est_bps + 0.5 * sample;
  }

  if (states_[idx] == ItemState::kDone) {
    // Lost the duplicate race after delivery; count the whole copy wasted.
    result_.wasted_bytes += slot.in.size();
    slot.in.clear();
    releaseSlot(slot);
    dispatch(slot_index);
    return;
  }

  if (resp.status != 200 && resp.status != 206) {
    // The proxy's explicit degradation signals ride on 503. "quota" means
    // the tenant's 3GOLa(t) allowance is gone: not a failure of the item —
    // the endpoint is disabled and the item falls back to the other legs.
    // "busy" (cap/queue shed) is transient and takes the normal
    // failed-attempt/backoff path.
    if (resp.status == 503) {
      if (const auto denied = resp.header("X-3GOL-Denied"); denied) {
        if (*denied == "quota") {
          denyEndpoint(slot_index);
          return;
        }
        ++result_.busy_sheds;
      }
    }
    failAttempt(slot_index);
    return;
  }
  // Where does this body actually start? A 206 must cover exactly the range
  // this attempt asked for; a 200 means the origin ignored (or never saw)
  // the Range header and restarted from byte 0, making the checkpoint we
  // kept redundant.
  std::size_t effective_offset = 0;
  if (resp.status == 206) {
    std::optional<http::ContentRange> cr;
    if (const auto hdr = resp.header("Content-Range"); hdr)
      cr = http::parseContentRange(*hdr);
    if (!cr || cr->first != slot.offset ||
        cr->total != items_[idx].bytes ||
        cr->last + 1 != items_[idx].bytes) {
      failAttempt(slot_index);
      return;
    }
    effective_offset = cr->first;
  }

  std::string& prefix = prefix_[idx];
  if (effective_offset > prefix.size()) {
    // Hole between the checkpoint and this body; nothing is anchorable.
    failAttempt(slot_index);
    return;
  }
  std::string payload = prefix.substr(0, effective_offset);
  payload += resp.body;

  bool corrupt = payload.size() != items_[idx].bytes;
  if (!corrupt && cfg_.verify_checksums) {
    std::uint64_t expected = items_[idx].checksum;
    if (expected == 0) {
      if (const auto hdr = resp.header("X-Checksum-FNV1a"); hdr)
        std::from_chars(hdr->data(), hdr->data() + hdr->size(), expected);
    }
    corrupt = expected != 0 && http::fnv1a(payload) != expected;
  }
  if (corrupt) {
    // The assembled object is wrong end to end: nothing — including the
    // checkpoint it was built on — can be trusted. Start the item over.
    ++result_.corrupt_payloads;
    reclaimPrefix(idx);
    failAttempt(slot_index, /*salvage=*/false);
    return;
  }

  // Delivered. The checkpoint prefix this attempt resumed past stays
  // salvaged; any salvage beyond the resume point was re-fetched by this
  // attempt and becomes waste.
  if (prefix.size() > effective_offset) {
    const std::size_t excess = prefix.size() - effective_offset;
    result_.wasted_bytes += excess;
    result_.salvaged_bytes -= std::min(result_.salvaged_bytes, excess);
  }
  prefix.clear();
  prefix.shrink_to_fit();

  slot.consecutive_failures = 0;
  slot.in.clear();
  releaseSlot(slot);
  states_[idx] = ItemState::kDone;
  ++done_count_;
  result_.per_endpoint_bytes[slot.endpoint.name] += resp.body.size();
  result_.item_completion_s[idx] =
      std::chrono::duration<double>(Clock::now() - started_at_).count();

  // Abort losing duplicates.
  auto carriers = carriers_[idx];
  carriers_[idx].clear();
  for (std::size_t other : carriers) {
    if (other != slot_index) abortSlot(other);
  }
  if (done_count_ + failed_count_ == items_.size()) {
    finish();
    return;
  }
  for (std::size_t other : carriers) {
    if (other != slot_index) dispatch(other);
  }
  dispatch(slot_index);
}

void MultipathHttpClient::denyEndpoint(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value()) return;
  const std::size_t idx = *slot.item;
  result_.wasted_bytes += slot.in.size();
  slot.in.clear();
  releaseSlot(slot);
  slot.denied = true;
  ++result_.quota_denials;
  result_.denied_endpoints.push_back(slot.endpoint.name);

  auto& c = carriers_[idx];
  c.erase(std::remove(c.begin(), c.end(), slot_index), c.end());
  if (states_[idx] == ItemState::kInFlight && c.empty()) {
    // Back to the queue WITHOUT charging an attempt: the denial is the
    // service degrading gracefully, not the item failing. Any checkpoint
    // the dead relay left stays salvaged for the next carrier to resume.
    states_[idx] = ItemState::kPending;
  }

  // Termination guard: with every endpoint denied nothing can carry the
  // remaining items — fail them now instead of hanging the transaction.
  if (std::all_of(slots_.begin(), slots_.end(),
                  [](const Slot& s) { return s.denied; })) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (states_[i] == ItemState::kDone || states_[i] == ItemState::kFailed)
        continue;
      states_[i] = ItemState::kFailed;
      reclaimPrefix(i);
      ++failed_count_;
      ++result_.failed_items;
    }
    finish();
    return;
  }
  dispatchAll();
}

void MultipathHttpClient::abortSlot(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value()) return;
  result_.wasted_bytes += slot.in.size();
  slot.in.clear();
  releaseSlot(slot);
}

void MultipathHttpClient::finish() {
  done_ = true;
  result_.complete = failed_count_ == 0;
  result_.failed_endpoints.assign(failed_endpoint_names_.begin(),
                                  failed_endpoint_names_.end());
  if (result_.failed_items > 0) {
    result_.outcome = FetchOutcome::kPartialFailure;
  } else if (result_.retries > 0 || result_.timeouts > 0 ||
             result_.quota_denials > 0 || result_.busy_sheds > 0) {
    result_.outcome = FetchOutcome::kCompletedDegraded;
  } else {
    result_.outcome = FetchOutcome::kCompleted;
  }
  result_.duration_s =
      std::chrono::duration<double>(Clock::now() - started_at_).count();
}

MultipathResult MultipathHttpClient::run(std::vector<FetchItem> items,
                                         std::chrono::milliseconds timeout) {
  start(std::move(items));
  loop_.runUntil([this] { return done_; }, timeout);
  return result_;
}

}  // namespace gol::proto
