#include "proto/multipath_client.hpp"

#include <algorithm>
#include <stdexcept>

#include "http/message.hpp"

namespace gol::proto {

using Clock = std::chrono::steady_clock;

MultipathHttpClient::MultipathHttpClient(EpollLoop& loop,
                                         std::vector<Endpoint> endpoints,
                                         bool enable_duplication)
    : loop_(loop), duplication_(enable_duplication) {
  if (endpoints.empty())
    throw std::invalid_argument("MultipathHttpClient: no endpoints");
  for (auto& e : endpoints) {
    Slot s;
    s.endpoint = std::move(e);
    slots_.push_back(std::move(s));
  }
}

void MultipathHttpClient::start(std::vector<FetchItem> items) {
  if (!done_) throw std::logic_error("transaction already running");
  items_ = std::move(items);
  states_.assign(items_.size(), ItemState::kPending);
  carriers_.assign(items_.size(), {});
  first_assigned_.assign(items_.size(), Clock::time_point{});
  done_count_ = 0;
  result_ = MultipathResult{};
  result_.item_completion_s.assign(items_.size(), 0.0);
  done_ = items_.empty();
  result_.complete = done_;
  started_at_ = Clock::now();
  if (done_) return;
  for (std::size_t s = 0; s < slots_.size(); ++s) dispatch(s);
}

std::optional<std::size_t> MultipathHttpClient::pickItem(
    std::size_t slot_index) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (states_[i] == ItemState::kPending) return i;
  }
  if (!duplication_) return std::nullopt;
  std::optional<std::size_t> oldest;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (states_[i] != ItemState::kInFlight) continue;
    if (std::find(carriers_[i].begin(), carriers_[i].end(), slot_index) !=
        carriers_[i].end())
      continue;
    if (!oldest || first_assigned_[i] < first_assigned_[*oldest]) oldest = i;
  }
  return oldest;
}

void MultipathHttpClient::dispatch(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (slot.item.has_value() || done_) return;
  const auto pick = pickItem(slot_index);
  if (!pick) return;
  const std::size_t idx = *pick;

  auto conn = connectTcp(slot.endpoint.port);
  if (!conn) return;  // endpoint unreachable; leave the slot idle

  if (states_[idx] == ItemState::kPending) {
    states_[idx] = ItemState::kInFlight;
    first_assigned_[idx] = Clock::now();
  } else {
    ++result_.duplicated_items;
  }
  carriers_[idx].push_back(slot_index);

  slot.item = idx;
  slot.conn = std::move(*conn);
  slot.in.clear();
  slot.received_body = 0;
  slot.started_at = Clock::now();

  http::Request req;
  req.target = items_[idx].uri;
  req.headers["Host"] = "origin";
  req.headers["Connection"] = "close";
  slot.out = req.serialize();

  const int fd = slot.conn.get();
  loop_.add(fd, Interest::kReadWrite, [this, slot_index](bool r, bool w) {
    onSlotEvent(slot_index, r, w);
  });
}

void MultipathHttpClient::onSlotEvent(std::size_t slot_index, bool readable,
                                      bool writable) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value() || !slot.conn.valid()) return;
  const int fd = slot.conn.get();

  if (writable && !slot.out.empty()) {
    const long n = writeSome(fd, slot.out.data(), slot.out.size());
    if (n > 0) slot.out.erase(0, static_cast<std::size_t>(n));
    if (slot.out.empty()) loop_.modify(fd, Interest::kRead);
  }

  if (readable) {
    char buf[16384];
    bool eof = false;
    for (;;) {
      const long n = readSome(fd, buf, sizeof buf);
      if (n == 0) {
        eof = true;
        break;
      }
      if (n < 0) break;
      slot.in.append(buf, static_cast<std::size_t>(n));
    }
    const auto parsed = http::parseResponse(slot.in);
    if (parsed.status == http::ParseStatus::kComplete) {
      completeItem(slot_index);
      return;
    }
    if (eof) {
      // Origin closed before a full response: treat as failure, retry the
      // item by releasing the slot.
      const std::size_t idx = *slot.item;
      auto& c = carriers_[idx];
      c.erase(std::remove(c.begin(), c.end(), slot_index), c.end());
      if (states_[idx] == ItemState::kInFlight && c.empty())
        states_[idx] = ItemState::kPending;
      loop_.remove(fd);
      slot.conn.reset();
      slot.item.reset();
      dispatch(slot_index);
    }
  }
}

void MultipathHttpClient::completeItem(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  const std::size_t idx = *slot.item;
  loop_.remove(slot.conn.get());
  slot.conn.reset();
  slot.item.reset();
  const std::size_t payload = items_[idx].bytes;

  if (states_[idx] == ItemState::kDone) {
    // Lost the duplicate race after delivery; count the whole copy wasted.
    result_.wasted_bytes += payload;
    dispatch(slot_index);
    return;
  }
  states_[idx] = ItemState::kDone;
  ++done_count_;
  result_.per_endpoint_bytes[slot.endpoint.name] += payload;
  result_.item_completion_s[idx] =
      std::chrono::duration<double>(Clock::now() - started_at_).count();

  // Abort losing duplicates.
  auto carriers = carriers_[idx];
  carriers_[idx].clear();
  for (std::size_t other : carriers) {
    if (other != slot_index) abortSlot(other);
  }
  if (done_count_ == items_.size()) {
    finish();
    return;
  }
  for (std::size_t other : carriers) {
    if (other != slot_index) dispatch(other);
  }
  dispatch(slot_index);
}

void MultipathHttpClient::abortSlot(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value()) return;
  result_.wasted_bytes += slot.in.size();
  loop_.remove(slot.conn.get());
  slot.conn.reset();
  slot.item.reset();
  slot.in.clear();
}

void MultipathHttpClient::finish() {
  done_ = true;
  result_.complete = true;
  result_.duration_s =
      std::chrono::duration<double>(Clock::now() - started_at_).count();
}

MultipathResult MultipathHttpClient::run(std::vector<FetchItem> items,
                                         std::chrono::milliseconds timeout) {
  start(std::move(items));
  loop_.runUntil([this] { return done_; }, timeout);
  return result_;
}

}  // namespace gol::proto
