#include "proto/multipath_client.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <system_error>

#include "http/message.hpp"

namespace gol::proto {

using Clock = std::chrono::steady_clock;

const char* toString(FetchOutcome outcome) {
  switch (outcome) {
    case FetchOutcome::kCompleted: return "completed";
    case FetchOutcome::kCompletedDegraded: return "completed_degraded";
    case FetchOutcome::kPartialFailure: return "partial_failure";
  }
  return "unknown";
}

MultipathHttpClient::MultipathHttpClient(EpollLoop& loop,
                                         std::vector<Endpoint> endpoints,
                                         ClientConfig cfg)
    : loop_(loop), cfg_(cfg) {
  if (endpoints.empty())
    throw std::invalid_argument("MultipathHttpClient: no endpoints");
  for (auto& e : endpoints) {
    Slot s;
    s.endpoint = std::move(e);
    s.rate_est_bps = cfg_.initial_rate_bps;
    slots_.push_back(std::move(s));
  }
}

MultipathHttpClient::MultipathHttpClient(EpollLoop& loop,
                                         std::vector<Endpoint> endpoints,
                                         bool enable_duplication)
    : MultipathHttpClient(loop, std::move(endpoints), [&] {
        ClientConfig cfg;
        cfg.enable_duplication = enable_duplication;
        return cfg;
      }()) {}

void MultipathHttpClient::start(std::vector<FetchItem> items) {
  if (!done_) throw std::logic_error("transaction already running");
  items_ = std::move(items);
  states_.assign(items_.size(), ItemState::kPending);
  carriers_.assign(items_.size(), {});
  first_assigned_.assign(items_.size(), Clock::time_point{});
  failed_attempts_.assign(items_.size(), 0);
  failed_endpoint_names_.clear();
  done_count_ = 0;
  failed_count_ = 0;
  result_ = MultipathResult{};
  result_.item_completion_s.assign(items_.size(), 0.0);
  result_.per_item_attempts.assign(items_.size(), 0);
  done_ = items_.empty();
  result_.complete = done_;
  started_at_ = Clock::now();
  if (done_) return;
  dispatchAll();
}

std::optional<std::size_t> MultipathHttpClient::pickItem(
    std::size_t slot_index) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (states_[i] == ItemState::kPending) return i;
  }
  if (!cfg_.enable_duplication) return std::nullopt;
  std::optional<std::size_t> oldest;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (states_[i] != ItemState::kInFlight) continue;
    if (std::find(carriers_[i].begin(), carriers_[i].end(), slot_index) !=
        carriers_[i].end())
      continue;
    if (!oldest || first_assigned_[i] < first_assigned_[*oldest]) oldest = i;
  }
  return oldest;
}

std::chrono::milliseconds MultipathHttpClient::backoffDelay(
    int failed_attempts) const {
  const double factor =
      std::pow(cfg_.backoff_multiplier, std::max(0, failed_attempts - 1));
  const auto delay = std::chrono::milliseconds(static_cast<long>(
      static_cast<double>(cfg_.base_backoff.count()) * factor));
  return std::min(delay, cfg_.max_backoff);
}

std::chrono::milliseconds MultipathHttpClient::watchdogDeadline(
    const Slot& slot, std::size_t item_index) const {
  const double rate = std::max(slot.rate_est_bps, 1e3);
  const double est_s =
      static_cast<double>(items_[item_index].bytes) * 8.0 / rate;
  const auto scaled = std::chrono::milliseconds(
      static_cast<long>(cfg_.watchdog_k * est_s * 1e3));
  return std::max(cfg_.watchdog_floor, scaled);
}

void MultipathHttpClient::dispatchAll() {
  for (std::size_t s = 0; s < slots_.size() && !done_; ++s) dispatch(s);
}

void MultipathHttpClient::dispatch(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (slot.item.has_value() || done_) return;
  if (Clock::now() < slot.quarantined_until) return;
  const auto pick = pickItem(slot_index);
  if (!pick) return;
  const std::size_t idx = *pick;

  if (states_[idx] == ItemState::kPending) {
    states_[idx] = ItemState::kInFlight;
    first_assigned_[idx] = Clock::now();
  } else {
    ++result_.duplicated_items;
  }
  carriers_[idx].push_back(slot_index);
  ++result_.per_item_attempts[idx];

  slot.item = idx;
  slot.in.clear();
  slot.received_body = 0;
  slot.started_at = Clock::now();
  const std::uint64_t gen = ++slot.attempt_gen;

  auto conn = connectTcp(slot.endpoint.port);
  if (!conn) {
    // Synchronous connect failure (rare on loopback; usually the refusal
    // arrives as a socket error on the first poll) — a failed attempt like
    // any other.
    failAttempt(slot_index);
    return;
  }
  slot.conn = std::move(*conn);

  http::Request req;
  req.target = items_[idx].uri;
  req.headers["Host"] = "origin";
  req.headers["Connection"] = "close";
  slot.out = req.serialize();

  slot.watchdog = loop_.runAfter(
      std::chrono::duration_cast<std::chrono::microseconds>(
          watchdogDeadline(slot, idx)),
      [this, slot_index, gen] { onWatchdog(slot_index, gen); });

  const int fd = slot.conn.get();
  loop_.add(fd, Interest::kReadWrite, [this, slot_index](bool r, bool w) {
    onSlotEvent(slot_index, r, w);
  });
}

void MultipathHttpClient::onSlotEvent(std::size_t slot_index, bool readable,
                                      bool writable) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value() || !slot.conn.valid()) return;
  const int fd = slot.conn.get();

  try {
    if (writable && !slot.out.empty()) {
      const long n = writeSome(fd, slot.out.data(), slot.out.size());
      if (n > 0) slot.out.erase(0, static_cast<std::size_t>(n));
      if (slot.out.empty()) loop_.modify(fd, Interest::kRead);
    }

    if (readable) {
      char buf[16384];
      bool eof = false;
      for (;;) {
        const long n = readSome(fd, buf, sizeof buf);
        if (n == 0) {
          eof = true;
          break;
        }
        if (n < 0) break;
        slot.in.append(buf, static_cast<std::size_t>(n));
      }
      const auto parsed = http::parseResponse(slot.in);
      if (parsed.status == http::ParseStatus::kComplete) {
        completeItem(slot_index);
        return;
      }
      if (eof) {
        // Origin/proxy closed before a full response: a failed attempt.
        failAttempt(slot_index);
        return;
      }
    }
  } catch (const std::system_error&) {
    // Hard socket error — connection reset, refused, aborted. The attempt
    // is dead; the retry machinery decides what happens to the item.
    failAttempt(slot_index);
  }
}

void MultipathHttpClient::releaseSlot(Slot& slot) {
  if (slot.watchdog != 0) {
    loop_.cancelTimer(slot.watchdog);
    slot.watchdog = 0;
  }
  ++slot.attempt_gen;
  if (slot.conn.valid()) {
    loop_.remove(slot.conn.get());
    slot.conn.reset();
  }
  slot.item.reset();
  slot.out.clear();
}

void MultipathHttpClient::failAttempt(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value()) return;
  const std::size_t idx = *slot.item;
  result_.wasted_bytes += slot.in.size();
  slot.in.clear();
  releaseSlot(slot);

  auto& c = carriers_[idx];
  c.erase(std::remove(c.begin(), c.end(), slot_index), c.end());

  failed_endpoint_names_.insert(slot.endpoint.name);
  if (++slot.consecutive_failures >= cfg_.quarantine_threshold) {
    slot.quarantined_until = Clock::now() + cfg_.quarantine;
    // Probe once the bench expires; quarantined slots are skipped by
    // dispatch until then.
    loop_.runAfter(std::chrono::duration_cast<std::chrono::microseconds>(
                       cfg_.quarantine),
                   [this, slot_index] { dispatch(slot_index); });
  }

  if (states_[idx] == ItemState::kDone) {
    dispatch(slot_index);
    return;
  }
  if (!c.empty()) {
    // A duplicate is still in flight elsewhere; ride on it.
    dispatch(slot_index);
    return;
  }

  if (++failed_attempts_[idx] >= cfg_.max_attempts) {
    states_[idx] = ItemState::kFailed;
    ++failed_count_;
    ++result_.failed_items;
    if (done_count_ + failed_count_ == items_.size()) {
      finish();
      return;
    }
  } else {
    states_[idx] = ItemState::kBackoff;
    ++result_.retries;
    loop_.runAfter(std::chrono::duration_cast<std::chrono::microseconds>(
                       backoffDelay(failed_attempts_[idx])),
                   [this, idx] { onBackoffExpired(idx); });
  }
  dispatch(slot_index);
}

void MultipathHttpClient::onWatchdog(std::size_t slot_index,
                                     std::uint64_t gen) {
  Slot& slot = slots_[slot_index];
  if (done_ || !slot.item.has_value() || gen != slot.attempt_gen) return;
  slot.watchdog = 0;
  ++result_.timeouts;
  failAttempt(slot_index);
}

void MultipathHttpClient::onBackoffExpired(std::size_t item_index) {
  if (done_ || states_[item_index] != ItemState::kBackoff) return;
  states_[item_index] = ItemState::kPending;
  dispatchAll();
}

void MultipathHttpClient::completeItem(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  const std::size_t idx = *slot.item;
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - slot.started_at).count();
  releaseSlot(slot);
  const std::size_t payload = items_[idx].bytes;

  slot.consecutive_failures = 0;
  if (elapsed > 1e-6) {
    const double sample = static_cast<double>(payload) * 8.0 / elapsed;
    slot.rate_est_bps = 0.5 * slot.rate_est_bps + 0.5 * sample;
  }

  if (states_[idx] == ItemState::kDone) {
    // Lost the duplicate race after delivery; count the whole copy wasted.
    result_.wasted_bytes += payload;
    slot.in.clear();
    dispatch(slot_index);
    return;
  }
  slot.in.clear();
  states_[idx] = ItemState::kDone;
  ++done_count_;
  result_.per_endpoint_bytes[slot.endpoint.name] += payload;
  result_.item_completion_s[idx] =
      std::chrono::duration<double>(Clock::now() - started_at_).count();

  // Abort losing duplicates.
  auto carriers = carriers_[idx];
  carriers_[idx].clear();
  for (std::size_t other : carriers) {
    if (other != slot_index) abortSlot(other);
  }
  if (done_count_ + failed_count_ == items_.size()) {
    finish();
    return;
  }
  for (std::size_t other : carriers) {
    if (other != slot_index) dispatch(other);
  }
  dispatch(slot_index);
}

void MultipathHttpClient::abortSlot(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (!slot.item.has_value()) return;
  result_.wasted_bytes += slot.in.size();
  slot.in.clear();
  releaseSlot(slot);
}

void MultipathHttpClient::finish() {
  done_ = true;
  result_.complete = failed_count_ == 0;
  result_.failed_endpoints.assign(failed_endpoint_names_.begin(),
                                  failed_endpoint_names_.end());
  if (result_.failed_items > 0) {
    result_.outcome = FetchOutcome::kPartialFailure;
  } else if (result_.retries > 0 || result_.timeouts > 0) {
    result_.outcome = FetchOutcome::kCompletedDegraded;
  } else {
    result_.outcome = FetchOutcome::kCompleted;
  }
  result_.duration_s =
      std::chrono::duration<double>(Clock::now() - started_at_).count();
}

MultipathResult MultipathHttpClient::run(std::vector<FetchItem> items,
                                         std::chrono::milliseconds timeout) {
  start(std::move(items));
  loop_.runUntil([this] { return done_; }, timeout);
  return result_;
}

}  // namespace gol::proto
