// The phone-side 3GOL component (Sec. 4.1): a proxy that pipes incoming
// LAN connections through the cellular interface. Here it is a TCP relay
// to the origin whose two directions are token-bucket shaped, standing in
// for a netem-emulated 3G link (down: HSDPA-like, up: HSUPA-like).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "proto/epoll_loop.hpp"
#include "proto/rate_limiter.hpp"
#include "proto/socket.hpp"
#include "telemetry/metrics.hpp"

namespace gol::proto {

struct ProxyConfig {
  std::uint16_t upstream_port = 0;  ///< The origin to pipe to.
  double down_bps = 2e6;            ///< Upstream -> client shaping.
  double up_bps = 1.2e6;            ///< Client -> upstream shaping.
  /// Emulated one-way latency added before bytes are released.
  std::chrono::microseconds latency{50000};
};

class OnloadProxy {
 public:
  OnloadProxy(EpollLoop& loop, const ProxyConfig& cfg);
  ~OnloadProxy();
  OnloadProxy(const OnloadProxy&) = delete;
  OnloadProxy& operator=(const OnloadProxy&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t bytesRelayedDown() const { return relayed_down_; }
  std::size_t bytesRelayedUp() const { return relayed_up_; }
  std::size_t activeConnections() const { return pipes_.size(); }

  /// Fault injection: hard-kills every active relay. Client sockets are
  /// closed with SO_LINGER 0 so the peer sees ECONNRESET mid-transfer, the
  /// way a phone dropping off Wi-Fi looks to the client.
  void killActiveConnections();
  /// Fault injection: the proxy vanishes from the LAN — the listening
  /// socket is closed, so new connects are refused until
  /// resumeAccepting() re-binds the same port.
  void pauseAccepting();
  void resumeAccepting();
  bool accepting() const { return listener_.fd.valid(); }

  /// Publishes accept/close counters, per-direction relayed-byte counters
  /// (`gol.proto.bytes_proxied{dir=down|up}`), and an active-connections
  /// gauge into `registry` (nullptr detaches).
  void instrument(telemetry::Registry* registry);

 private:
  /// Bytes waiting out the emulated one-way latency before they become
  /// eligible for (rate-shaped) forwarding — a userspace netem delay line.
  struct DelayLine {
    struct Chunk {
      std::chrono::steady_clock::time_point eligible_at;
      std::string data;
    };
    std::deque<Chunk> chunks;

    void push(std::string data, std::chrono::steady_clock::time_point at) {
      chunks.push_back(Chunk{at, std::move(data)});
    }
    bool empty() const { return chunks.empty(); }
    /// Moves every chunk whose latency elapsed into `out`; returns the
    /// wait until the next chunk matures (zero when empty/ready).
    std::chrono::microseconds drainInto(std::string& out);
  };

  /// One relay direction: reads from `from`, delays, shapes, writes to `to`.
  struct Pipe {
    Fd client;
    Fd upstream;
    DelayLine delay_to_upstream;
    DelayLine delay_to_client;
    std::string to_upstream;   ///< Matured client -> upstream bytes.
    std::string to_client;     ///< Matured upstream -> client bytes.
    RateLimiter up_limiter;
    RateLimiter down_limiter;
    bool client_eof = false;
    bool upstream_eof = false;
    bool timer_armed = false;

    Pipe(double up_bps, double down_bps)
        : up_limiter(up_bps), down_limiter(down_bps) {}
  };

  void onAccept();
  void onEvent(int pipe_key, bool from_client);
  void pump(int pipe_key);
  void armTimer(int pipe_key, std::chrono::microseconds delay);
  void closePipe(int pipe_key);

  EpollLoop& loop_;
  ProxyConfig cfg_;
  Listener listener_;
  std::uint16_t port_;
  std::map<int, std::unique_ptr<Pipe>> pipes_;  // keyed by client fd
  std::map<int, int> upstream_to_pipe_;
  std::size_t relayed_down_ = 0;
  std::size_t relayed_up_ = 0;
  telemetry::Counter* accepts_ = nullptr;
  telemetry::Counter* closes_ = nullptr;
  telemetry::Counter* bytes_down_ = nullptr;
  telemetry::Counter* bytes_up_ = nullptr;
  telemetry::Gauge* active_gauge_ = nullptr;
};

}  // namespace gol::proto
