// The phone-side 3GOL component (Sec. 4.1): a proxy that pipes incoming
// LAN connections through the cellular interface. Here it is a TCP relay
// to the origin whose two directions are token-bucket shaped, standing in
// for a netem-emulated 3G link (down: HSDPA-like, up: HSUPA-like).
//
// Hardened as a multi-tenant service: per-tenant admission/quota through a
// TenantGovernor (live 3GOLa(t)), a global connection cap with a LIFO
// accept queue (newest waiters served first, oldest shed with an explicit
// busy reply), bounded per-pipe buffering with read-side backpressure
// (watermark + hysteresis instead of unbounded DelayLines), slow-client
// idle timeouts, and EMFILE-safe accept via a reserve fd so running out of
// descriptors degrades into polite shedding instead of a hot accept loop.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "proto/epoll_loop.hpp"
#include "proto/rate_limiter.hpp"
#include "proto/socket.hpp"
#include "proto/tenant_governor.hpp"
#include "telemetry/metrics.hpp"

namespace gol::proto {

struct ProxyConfig {
  std::uint16_t upstream_port = 0;  ///< The origin to pipe to.
  /// Port to listen on (0 = ephemeral). A restarted proxy binds the same
  /// port so clients reconnect without re-discovery — the crash-recovery
  /// path needs a stable address.
  std::uint16_t listen_port = 0;
  double down_bps = 2e6;            ///< Upstream -> client shaping.
  double up_bps = 1.2e6;            ///< Client -> upstream shaping.
  /// Emulated one-way latency added before bytes are released.
  std::chrono::microseconds latency{50000};

  // --- Overload protection (service hardening) ---
  /// Concurrent relays allowed; beyond it, accepts park in the LIFO
  /// pending queue. 0 = unlimited.
  std::size_t max_connections = 0;
  /// Parked-accept bound: when exceeded, the OLDEST waiter is shed with
  /// an explicit busy reply (LIFO service order — the newest arrival is
  /// the one most likely to still be listening).
  std::size_t accept_queue_limit = 64;
  /// Per-direction buffered-byte high watermark (delay line + matured
  /// queue). At the watermark the proxy stops reading the fast side;
  /// reading resumes below half of it.
  std::size_t buffer_watermark = 512 * 1024;
  /// Close relays with no byte movement for this long. 0 = disabled.
  std::chrono::milliseconds idle_timeout{0};
  /// Test hook: SO_SNDBUF applied to both relay sockets (0 = default) —
  /// forces the short-write/EAGAIN paths a tiny kernel buffer exposes.
  int sndbuf_bytes = 0;
  /// Default deadline for beginDrain(): relays still alive past it are
  /// force-closed so shutdown always terminates.
  std::chrono::milliseconds drain_deadline{5000};
  /// Optional admission/quota layer; not owned. When set, every accept is
  /// admitted per tenant (peer source address) and every relayed byte is
  /// charged against the tenant's live 3GOLa(t) allowance; exhaustion
  /// closes the tenant's relays and denies reconnects with the explicit
  /// "onload denied" signal clients honor by falling back to ADSL.
  TenantGovernor* governor = nullptr;
};

class OnloadProxy {
 public:
  OnloadProxy(EpollLoop& loop, const ProxyConfig& cfg);
  ~OnloadProxy();
  OnloadProxy(const OnloadProxy&) = delete;
  OnloadProxy& operator=(const OnloadProxy&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t bytesRelayedDown() const { return relayed_down_; }
  std::size_t bytesRelayedUp() const { return relayed_up_; }
  std::size_t activeConnections() const { return pipes_.size(); }
  std::size_t pendingConnections() const { return pending_.size(); }

  /// Overload/degradation books.
  std::size_t shedBusy() const { return shed_busy_; }        ///< cap/queue
  std::size_t shedFdExhausted() const { return shed_emfile_; }
  std::size_t deniedQuota() const { return denied_quota_; }
  std::size_t quotaKills() const { return quota_kills_; }    ///< mid-relay
  std::size_t idleClosed() const { return idle_closed_; }
  std::size_t backpressurePauses() const { return bp_pauses_; }
  /// High-water mark of per-pipe userspace buffering observed (bytes, one
  /// direction) — bounded by buffer_watermark plus one read chunk.
  std::size_t peakBufferedBytes() const { return peak_buffered_; }

  // --- Lifecycle (graceful drain) ---
  /// Begins the drain ladder: parked waiters are shed immediately and new
  /// arrivals get an explicit "draining" reply (clients treat it like a
  /// transient busy shed and route elsewhere), while active relays run to
  /// completion. Relays still alive at the deadline are force-closed.
  /// Idempotent; `on_drain_complete` (if set) fires exactly once, when the
  /// last relay closes.
  void beginDrain();
  void beginDrain(std::chrono::milliseconds deadline);
  bool draining() const { return draining_; }
  /// True once draining and every relay has closed.
  bool drainComplete() const {
    return draining_ && pipes_.empty() && pending_.empty();
  }
  /// Relays the deadline had to force-close (0 = fully graceful drain).
  std::size_t drainForcedCloses() const { return drain_forced_; }
  /// Arrivals turned away with the draining reply.
  std::size_t shedDraining() const { return shed_draining_; }
  /// Invoked once when the drain finishes (graceful or forced).
  std::function<void()> on_drain_complete;

  /// Fault injection: hard-kills every active relay. Client sockets are
  /// closed with SO_LINGER 0 so the peer sees ECONNRESET mid-transfer, the
  /// way a phone dropping off Wi-Fi looks to the client.
  void killActiveConnections();
  /// Fault injection: the proxy vanishes from the LAN — the listening
  /// socket is closed, so new connects are refused until
  /// resumeAccepting() re-binds the same port.
  void pauseAccepting();
  void resumeAccepting();
  bool accepting() const { return listener_.fd.valid(); }

  /// Publishes accept/close counters, per-direction relayed-byte counters
  /// (`gol.proto.bytes_proxied{dir=down|up}`), shed/denial/idle-close
  /// counters by reason, and active/pending gauges into `registry`
  /// (nullptr detaches).
  void instrument(telemetry::Registry* registry);

 private:
  /// Matured relay bytes as a chunk list with a consumed-head offset, so
  /// the shaped fast path gathers them with writev instead of repeatedly
  /// concatenating and erasing one flat string.
  struct ChunkQueue {
    std::deque<std::string> chunks;
    std::size_t head = 0;   ///< Consumed prefix of chunks.front().
    std::size_t bytes = 0;  ///< Total unconsumed bytes.

    void push(std::string data) {
      if (data.empty()) return;
      bytes += data.size();
      chunks.push_back(std::move(data));
    }
    bool empty() const { return bytes == 0; }
    /// Builds up to `max_iov` iovecs covering at most `limit` bytes.
    int fillIov(struct iovec* iov, int max_iov, std::size_t limit) const;
    /// Drops `n` written bytes from the front (possibly mid-chunk).
    void consume(std::size_t n);
  };

  /// Bytes waiting out the emulated one-way latency before they become
  /// eligible for (rate-shaped) forwarding — a userspace netem delay line.
  struct DelayLine {
    struct Chunk {
      std::chrono::steady_clock::time_point eligible_at;
      std::string data;
    };
    std::deque<Chunk> chunks;
    std::size_t bytes = 0;

    void push(std::string data, std::chrono::steady_clock::time_point at) {
      bytes += data.size();
      chunks.push_back(Chunk{at, std::move(data)});
    }
    bool empty() const { return chunks.empty(); }
    /// Moves every chunk whose latency elapsed into `out`; returns the
    /// wait until the next chunk matures (zero when empty/ready).
    std::chrono::microseconds drainInto(ChunkQueue& out);
  };

  /// One relay: reads from each side, delays, shapes, writes to the other.
  struct Pipe {
    Fd client;
    Fd upstream;
    std::string tenant;
    DelayLine delay_to_upstream;
    DelayLine delay_to_client;
    ChunkQueue to_upstream;   ///< Matured client -> upstream bytes.
    ChunkQueue to_client;     ///< Matured upstream -> client bytes.
    RateLimiter up_limiter;
    RateLimiter down_limiter;
    bool client_eof = false;
    bool upstream_eof = false;
    bool timer_armed = false;
    /// Backpressure: read interest dropped on this side because the
    /// opposite direction's buffered bytes crossed the watermark.
    bool client_read_paused = false;
    bool upstream_read_paused = false;
    /// Cached epoll interest per side, so pump() only issues epoll_ctl
    /// when the wanted interest actually changes.
    Interest client_interest = Interest::kRead;
    Interest upstream_interest = Interest::kReadWrite;
    /// Guards timers against client-fd reuse after closePipe.
    std::uint64_t gen = 0;
    std::chrono::steady_clock::time_point last_activity;

    Pipe(double up_bps, double down_bps)
        : up_limiter(up_bps), down_limiter(down_bps) {}
    std::size_t bufferedTowardClient() const {
      return delay_to_client.bytes + to_client.bytes;
    }
    std::size_t bufferedTowardUpstream() const {
      return delay_to_upstream.bytes + to_upstream.bytes;
    }
  };

  struct PendingConn {
    Fd fd;
    std::string tenant;
  };

  void onAccept();
  /// EMFILE degradation: burn the reserve fd to accept one waiter, shed it
  /// with a busy reply, re-arm. Returns whether progress was made (false
  /// stops the accept loop for this round).
  bool shedOverFdLimit();
  void admitOrPark(Fd client, std::string tenant);
  void startPipe(Fd client, std::string tenant);
  /// Pops LIFO waiters into free relay slots (after a pipe closes).
  void drainPending();
  void replyAndClose(Fd fd, const std::string& wire);
  void onEvent(int pipe_key, bool from_client);
  void pump(int pipe_key);
  /// Recomputes pause flags (watermark hysteresis) and per-side epoll
  /// interest; issues epoll_ctl only on change.
  void updateInterest(Pipe& pipe);
  /// Fires on_drain_complete once the last relay closes while draining.
  void maybeFinishDrain();
  void armTimer(int pipe_key, std::chrono::microseconds delay);
  void armIdleTimer(int pipe_key, std::uint64_t gen,
                    std::chrono::microseconds delay);
  void closePipe(int pipe_key);

  EpollLoop& loop_;
  ProxyConfig cfg_;
  Listener listener_;
  std::uint16_t port_;
  std::map<int, std::unique_ptr<Pipe>> pipes_;  // keyed by client fd
  std::map<int, int> upstream_to_pipe_;
  std::vector<PendingConn> pending_;  // LIFO stack; shed from the front
  Fd reserve_fd_;                     // EMFILE parachute (/dev/null)
  std::uint64_t pipe_gen_ = 0;
  std::size_t relayed_down_ = 0;
  std::size_t relayed_up_ = 0;
  bool draining_ = false;
  std::uint64_t drain_gen_ = 0;  ///< Guards the deadline timer.
  std::size_t drain_forced_ = 0;
  std::size_t shed_draining_ = 0;
  std::size_t shed_busy_ = 0;
  std::size_t shed_emfile_ = 0;
  std::size_t denied_quota_ = 0;
  std::size_t quota_kills_ = 0;
  std::size_t idle_closed_ = 0;
  std::size_t bp_pauses_ = 0;
  std::size_t peak_buffered_ = 0;
  std::string busy_reply_;
  std::string quota_reply_;
  std::string drain_reply_;
  telemetry::Counter* accepts_ = nullptr;
  telemetry::Counter* closes_ = nullptr;
  telemetry::Counter* bytes_down_ = nullptr;
  telemetry::Counter* bytes_up_ = nullptr;
  telemetry::Counter* shed_busy_ctr_ = nullptr;
  telemetry::Counter* shed_emfile_ctr_ = nullptr;
  telemetry::Counter* denied_ctr_ = nullptr;
  telemetry::Counter* quota_kill_ctr_ = nullptr;
  telemetry::Counter* idle_close_ctr_ = nullptr;
  telemetry::Counter* bp_pause_ctr_ = nullptr;
  telemetry::Gauge* active_gauge_ = nullptr;
  telemetry::Gauge* pending_gauge_ = nullptr;
};

}  // namespace gol::proto
