#include "proto/origin_server.hpp"

#include <charconv>
#include <stdexcept>

#include "http/checksum.hpp"
#include "http/message.hpp"

namespace gol::proto {

OriginServer::OriginServer(EpollLoop& loop) : loop_(loop) {
  auto l = listenTcp(0);
  if (!l) throw std::runtime_error("OriginServer: cannot listen");
  listener_ = std::move(*l);
  port_ = listener_.port;
  loop_.add(listener_.fd.get(), Interest::kRead,
            [this](bool, bool) { onAccept(); });
}

OriginServer::~OriginServer() {
  for (auto& [fd, conn] : conns_) loop_.remove(fd);
  if (listener_.fd.valid()) loop_.remove(listener_.fd.get());
}

void OriginServer::onAccept() {
  while (auto fd = acceptOne(listener_.fd.get())) {
    const int raw = fd->get();
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(*fd);
    conns_[raw] = std::move(conn);
    loop_.add(raw, Interest::kRead, [this, raw](bool r, bool w) {
      onConnEvent(raw, r, w);
    });
  }
}

void OriginServer::onConnEvent(int fd, bool readable, bool writable) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;

  if (readable) {
    char buf[16384];
    for (;;) {
      const long n = readSome(fd, buf, sizeof buf);
      if (n == 0) {
        closeConn(fd);
        return;
      }
      if (n < 0) break;
      conn.in.append(buf, static_cast<std::size_t>(n));
    }
    processBuffer(conn);
    // A truncated response closes the connection inside flush(); re-check
    // before touching the (possibly destroyed) Conn.
    it = conns_.find(fd);
    if (it == conns_.end()) return;
  }
  Conn& c = *it->second;
  if (writable || !c.out.empty()) flush(c);
}

void OriginServer::processBuffer(Conn& conn) {
  for (;;) {
    const auto parsed = http::parseRequest(conn.in);
    if (parsed.status == http::ParseStatus::kNeedMore) return;
    if (parsed.status == http::ParseStatus::kError) {
      http::Response resp;
      resp.status = 400;
      resp.reason = "Bad Request";
      conn.out += resp.serialize();
      conn.in.clear();
      flush(conn);
      return;
    }
    const http::Request& req = parsed.request;
    conn.in.erase(0, parsed.consumed);
    ++served_;

    http::Response resp;
    if (req.method == "GET" && req.target.rfind("/obj/", 0) == 0) {
      std::size_t bytes = 0;
      const std::string size_str = req.target.substr(5);
      std::from_chars(size_str.data(), size_str.data() + size_str.size(),
                      bytes);
      resp.headers["Content-Type"] = "application/octet-stream";
      // Integrity: digest of the FULL object, whatever range is served, so
      // the client verifies its assembled payload. Cached per size.
      auto [cit, inserted] = digest_cache_.try_emplace(bytes, 0);
      if (inserted) cit->second = http::fnv1aFiller(bytes);
      resp.headers["X-Checksum-FNV1a"] = std::to_string(cit->second);

      std::size_t from = 0;
      const auto range = http::rangeStart(req.headers);
      if (range_supported_ && range && *range > 0 && *range < bytes) {
        from = *range;
        resp.status = 206;
        resp.reason = "Partial Content";
        resp.headers["Content-Range"] =
            "bytes " + std::to_string(from) + "-" +
            std::to_string(bytes > 0 ? bytes - 1 : 0) + "/" +
            std::to_string(bytes);
        ++ranges_served_;
      }
      resp.body.assign(bytes - from, 'x');
      if (corrupt_next_ > 0 && !resp.body.empty()) {
        --corrupt_next_;
        // One flipped byte: length and headers stay honest, the digest
        // check is the only thing that can notice.
        resp.body[resp.body.size() / 2] = 'y';
      }
      if (truncate_next_ > 0) {
        --truncate_next_;
        // Advertise the whole object, deliver all but the cut, then slam
        // the connection shut: the client sees a short body + EOF.
        std::string wire = resp.serialize();
        const std::size_t cut =
            std::min(truncate_cut_, resp.body.size());
        wire.resize(wire.size() - cut);
        conn.out += wire;
        conn.in.clear();
        conn.close_after_flush = true;
        flush(conn);
        return;
      }
    } else if (req.method == "POST") {
      ingested_ += req.body.size();
      resp.status = 201;
      resp.reason = "Created";
      resp.body = "stored";
    } else {
      resp.status = 404;
      resp.reason = "Not Found";
    }
    conn.out += resp.serialize();
  }
}

void OriginServer::flush(Conn& conn) {
  const int fd = conn.fd.get();
  while (conn.out_sent < conn.out.size()) {
    const long n = writeSome(fd, conn.out.data() + conn.out_sent,
                             conn.out.size() - conn.out_sent);
    if (n <= 0) break;
    conn.out_sent += static_cast<std::size_t>(n);
  }
  if (conn.out_sent >= conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
    if (conn.close_after_flush) {
      closeConn(fd);
      return;
    }
    loop_.modify(fd, Interest::kRead);
  } else {
    loop_.modify(fd, Interest::kReadWrite);
  }
}

void OriginServer::closeConn(int fd) {
  loop_.remove(fd);
  conns_.erase(fd);
}

}  // namespace gol::proto
