// RAII wrappers for non-blocking TCP sockets (Linux). The prototype runs
// entirely on loopback: an origin server, per-"phone" proxies whose
// upstream legs are token-bucket shaped (standing in for netem-emulated 3G
// links), and a multipath client driven by the same greedy scheduler as
// the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

struct iovec;  // <sys/uio.h>

namespace gol::proto {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept;
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a non-blocking TCP listener on 127.0.0.1:`port` (0 = ephemeral).
/// Returns the fd and the bound port.
struct Listener {
  Fd fd;
  std::uint16_t port = 0;
};
std::optional<Listener> listenTcp(std::uint16_t port, int backlog = 64);

/// Starts a non-blocking connect to 127.0.0.1:`port`. The connection
/// completes asynchronously (poll for writability). `source_host` (host
/// order, e.g. 0x7f000002 for 127.0.0.2) binds the source address before
/// connecting — loopback owns all of 127/8, so distinct source addresses
/// give the peer distinct client identities (the prototype's tenant key).
/// 0 = kernel default.
std::optional<Fd> connectTcp(std::uint16_t port,
                             std::uint32_t source_host = 0);

/// Accepts one pending connection; nullopt when none is ready. When given,
/// `peer` receives the client's dotted address (its tenant identity) and
/// `err` the accept errno on failure (0 when a connection was returned) —
/// callers distinguish "queue drained" (EAGAIN) from fd exhaustion
/// (EMFILE/ENFILE), which needs the reserve-fd degradation path.
std::optional<Fd> acceptOne(int listener_fd, std::string* peer = nullptr,
                            int* err = nullptr);

/// Non-blocking read/write helpers. Return bytes moved, 0 on EOF (read),
/// -1 on would-block, throw on hard errors.
long readSome(int fd, char* buf, std::size_t len);
long writeSome(int fd, const char* buf, std::size_t len);
/// Gathering write over `iovcnt` buffers (sendmsg + MSG_NOSIGNAL); same
/// return contract as writeSome. Short writes may land mid-iovec.
long writevSome(int fd, const struct iovec* iov, int iovcnt);

void setNonBlocking(int fd);
/// Shrinks the kernel send buffer (SO_SNDBUF) — test hook for forcing
/// short writes on the relay fast path.
void setSendBuf(int fd, int bytes);

}  // namespace gol::proto
