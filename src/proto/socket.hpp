// RAII wrappers for non-blocking TCP sockets (Linux). The prototype runs
// entirely on loopback: an origin server, per-"phone" proxies whose
// upstream legs are token-bucket shaped (standing in for netem-emulated 3G
// links), and a multipath client driven by the same greedy scheduler as
// the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gol::proto {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept;
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a non-blocking TCP listener on 127.0.0.1:`port` (0 = ephemeral).
/// Returns the fd and the bound port.
struct Listener {
  Fd fd;
  std::uint16_t port = 0;
};
std::optional<Listener> listenTcp(std::uint16_t port, int backlog = 64);

/// Starts a non-blocking connect to 127.0.0.1:`port`. The connection
/// completes asynchronously (poll for writability).
std::optional<Fd> connectTcp(std::uint16_t port);

/// Accepts one pending connection; nullopt when none is ready.
std::optional<Fd> acceptOne(int listener_fd);

/// Non-blocking read/write helpers. Return bytes moved, 0 on EOF (read),
/// -1 on would-block, throw on hard errors.
long readSome(int fd, char* buf, std::size_t len);
long writeSome(int fd, const char* buf, std::size_t len);

void setNonBlocking(int fd);

}  // namespace gol::proto
