// A minimal single-threaded epoll reactor with timer support — the event
// core the prototype's origin server, proxies, and multipath client all
// share.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "proto/socket.hpp"
#include "telemetry/metrics.hpp"

namespace gol::proto {

enum class Interest : std::uint32_t {
  /// Registered but wants neither readability nor writability. The fd
  /// stays armed for EPOLLERR/EPOLLHUP (always reported), so a paused
  /// relay side still hears about peer aborts — the backpressure state.
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

class EpollLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using Callback = std::function<void(bool readable, bool writable)>;
  using TimerId = std::uint64_t;

  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Registers `fd` (not owned) with the given interest. Re-adding an
  /// existing fd updates interest and callback.
  void add(int fd, Interest interest, Callback cb);
  void modify(int fd, Interest interest);
  void remove(int fd);

  /// One-shot timer; returns an id usable with cancelTimer.
  TimerId runAfter(std::chrono::microseconds delay, std::function<void()> fn);
  void cancelTimer(TimerId id);

  /// Processes ready events and due timers; waits at most `max_wait`.
  void poll(std::chrono::milliseconds max_wait);
  /// Runs until `predicate` is true or `deadline` passes; returns whether
  /// the predicate held.
  bool runUntil(const std::function<bool()>& predicate,
                std::chrono::milliseconds deadline);

  /// Publishes `gol.proto.poll_iterations`, `gol.proto.events_dispatched`,
  /// and `gol.proto.timers_fired` into `registry` (nullptr detaches).
  void instrument(telemetry::Registry* registry);

 private:
  struct Timer {
    Clock::time_point due;
    TimerId id;
    std::function<void()> fn;
    bool operator<(const Timer& o) const {
      if (due != o.due) return due > o.due;  // min-heap via priority_queue
      return id > o.id;
    }
  };

  void fireDueTimers();
  std::chrono::milliseconds nextTimerWait(
      std::chrono::milliseconds max_wait) const;

  Fd epoll_fd_;
  telemetry::Counter* poll_iterations_ = nullptr;
  telemetry::Counter* events_dispatched_ = nullptr;
  telemetry::Counter* timers_fired_ = nullptr;
  std::map<int, Callback> callbacks_;
  std::vector<Timer> timers_;  // heap
  TimerId next_timer_ = 1;
  std::vector<TimerId> cancelled_;
};

}  // namespace gol::proto
