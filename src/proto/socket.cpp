#include "proto/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace gol::proto {

Fd::~Fd() {
  if (fd_ >= 0) ::close(fd_);
}

Fd::Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(std::exchange(other.fd_, -1));
  }
  return *this;
}

int Fd::release() { return std::exchange(fd_, -1); }

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "fcntl(O_NONBLOCK)");
  }
}

std::optional<Listener> listenTcp(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    return std::nullopt;
  if (::listen(fd.get(), backlog) < 0) return std::nullopt;
  setNonBlocking(fd.get());

  socklen_t len = sizeof addr;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    return std::nullopt;
  Listener out;
  out.fd = std::move(fd);
  out.port = ntohs(addr.sin_port);
  return out;
}

std::optional<Fd> connectTcp(std::uint16_t port, std::uint32_t source_host) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  setNonBlocking(fd.get());
  if (source_host != 0) {
    sockaddr_in src{};
    src.sin_family = AF_INET;
    src.sin_port = 0;  // ephemeral
    src.sin_addr.s_addr = htonl(source_host);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&src), sizeof src) < 0)
      return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 &&
      errno != EINPROGRESS) {
    return std::nullopt;
  }
  return fd;
}

std::optional<Fd> acceptOne(int listener_fd, std::string* peer, int* err) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  const int fd =
      ::accept4(listener_fd, reinterpret_cast<sockaddr*>(&addr), &len,
                SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (err) *err = errno;
    return std::nullopt;
  }
  if (err) *err = 0;
  if (peer) {
    char buf[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof buf);
    *peer = buf;
  }
  return Fd(fd);
}

long readSome(int fd, char* buf, std::size_t len) {
  const auto n = ::read(fd, buf, len);
  if (n >= 0) return n;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
  if (errno == ECONNRESET) return 0;  // treat reset as EOF
  throw std::system_error(errno, std::generic_category(), "read");
}

long writeSome(int fd, const char* buf, std::size_t len) {
  const auto n = ::send(fd, buf, len, MSG_NOSIGNAL);
  if (n >= 0) return n;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
  if (errno == EPIPE || errno == ECONNRESET) return 0;
  throw std::system_error(errno, std::generic_category(), "write");
}

long writevSome(int fd, const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  const auto n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
  if (n >= 0) return n;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
  if (errno == EPIPE || errno == ECONNRESET) return 0;
  throw std::system_error(errno, std::generic_category(), "writev");
}

void setSendBuf(int fd, int bytes) {
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
}

}  // namespace gol::proto
