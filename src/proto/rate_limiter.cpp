#include "proto/rate_limiter.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::proto {

RateLimiter::RateLimiter(double rate_bps, std::size_t burst_bytes)
    : rate_bps_(rate_bps),
      burst_bytes_(static_cast<double>(burst_bytes)),
      tokens_(static_cast<double>(burst_bytes)),
      last_(Clock::now()) {
  if (rate_bps <= 0) throw std::invalid_argument("RateLimiter: rate <= 0");
  if (burst_bytes == 0) throw std::invalid_argument("RateLimiter: burst 0");
}

void RateLimiter::refill(Clock::time_point now) {
  const double dt =
      std::chrono::duration<double>(now - last_).count();
  if (dt <= 0) return;
  tokens_ = std::min(burst_bytes_, tokens_ + dt * rate_bps_ / 8.0);
  last_ = now;
}

std::size_t RateLimiter::available(Clock::time_point now) {
  refill(now);
  return static_cast<std::size_t>(tokens_);
}

void RateLimiter::consume(std::size_t bytes) {
  tokens_ -= static_cast<double>(bytes);
  if (tokens_ < 0) tokens_ = 0;  // defensive; callers check available()
}

std::chrono::microseconds RateLimiter::delayFor(std::size_t bytes,
                                                Clock::time_point now) {
  refill(now);
  const double need = std::min(static_cast<double>(bytes), burst_bytes_);
  if (tokens_ >= need) return std::chrono::microseconds(0);
  const double deficit = need - tokens_;
  const double seconds = deficit * 8.0 / rate_bps_;
  return std::chrono::microseconds(
      static_cast<long>(seconds * 1e6) + 1);
}

void RateLimiter::setRateBps(double rate_bps) {
  if (rate_bps <= 0) throw std::invalid_argument("RateLimiter: rate <= 0");
  refill(Clock::now());
  rate_bps_ = rate_bps;
}

}  // namespace gol::proto
