// UMTS RRC connection state machine.
//
// A 3G radio moves between IDLE, CELL_FACH and CELL_DCH. Promotion to DCH
// costs seconds of signalling — the "channel acquisition delay" the paper
// probes by starting experiments from idle ("3G") versus pre-warmed
// connected mode ("H", via an ICMP train) in Sec. 5.2 / Fig 7. Demotions
// are driven by inactivity timers.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.hpp"

namespace gol::cell {

enum class RrcState { kIdle, kFach, kDch };

const char* toString(RrcState s);

struct RrcConfig {
  double idle_to_dch_s = 2.0;   ///< Promotion delay from IDLE.
  double fach_to_dch_s = 1.5;   ///< Promotion delay from FACH.
  double dch_inactivity_s = 5.0;   ///< DCH -> FACH demotion timer.
  double fach_inactivity_s = 12.0; ///< FACH -> IDLE demotion timer.
};

class RrcMachine {
 public:
  RrcMachine(sim::Simulator& sim, const RrcConfig& cfg);
  RrcMachine(const RrcMachine&) = delete;
  RrcMachine& operator=(const RrcMachine&) = delete;

  RrcState state() const { return state_; }

  /// Requests the DCH state; `on_ready` fires once DCH is reached (possibly
  /// immediately, synchronously, when already connected). Concurrent
  /// requests during an ongoing promotion share it.
  void requestDch(std::function<void()> on_ready);

  /// Marks radio activity, restarting the inactivity timers. Call while a
  /// transfer is in flight so the radio does not demote under it.
  void notifyActivity();

  /// Forces the connected state with no delay — models the paper's "H" runs
  /// where an ICMP train pre-warms the radio before the transaction.
  void forceDch();

  /// Promotion delay a requestDch() would incur right now, seconds.
  double pendingPromotionDelayS() const;

  /// Observer for state transitions (energy metering, logging). Invoked
  /// as (from, to) at the simulated instant of each transition.
  using StateListener = std::function<void(RrcState, RrcState)>;
  void setStateListener(StateListener listener);

 private:
  void transitionTo(RrcState next);

  void enterDch();
  void armDemotionTimer();
  void demotionCheck();

  sim::Simulator& sim_;
  RrcConfig cfg_;
  RrcState state_ = RrcState::kIdle;
  bool promoting_ = false;
  std::vector<std::function<void()>> waiters_;
  sim::Time last_activity_ = 0;
  sim::EventId demotion_event_ = 0;
  StateListener listener_;
};

}  // namespace gol::cell
