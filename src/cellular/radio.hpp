// Radio-condition model: signal strength and its effect on achievable rate.
#pragma once

namespace gol::cell {

/// Received signal strength and the derived link-quality multiplier.
/// The paper reports per-location signal as "dBm/ASU" (Table 4); ASU is the
/// GSM/UMTS arbitrary strength unit: ASU = (dBm + 113) / 2, clamped [0, 31].
struct RadioConditions {
  double signal_dbm = -85.0;

  int asu() const;

  /// Quality multiplier in (0, 1]: ~1.0 at -75 dBm and better, falling to
  /// ~0.35 at -105 dBm. Scales the per-device achievable HSPA rate; HSPA
  /// link adaptation picks lower-order modulation as SNR drops.
  double quality() const;
};

/// Dedicated-channel (non-HSPA) fallback rates shown as the solid reference
/// lines in the paper's Fig 5: 384 kbps down / 64 kbps up under good radio.
constexpr double kUmtsDedicatedDownBps = 384e3;
constexpr double kUmtsDedicatedUpBps = 64e3;

}  // namespace gol::cell
