#include "cellular/base_station.hpp"

#include <stdexcept>

namespace gol::cell {

BaseStation::BaseStation(net::FlowNetwork& net, std::string name,
                         const BaseStationConfig& cfg)
    : name_(std::move(name)),
      cfg_(cfg),
      backhaul_down_(net.createLink(name_ + "/bh-down", cfg.backhaul_bps)),
      backhaul_up_(net.createLink(name_ + "/bh-up", cfg.backhaul_bps)) {
  if (cfg.sectors < 1) throw std::invalid_argument("BaseStation: sectors >= 1");
  for (int s = 0; s < cfg.sectors; ++s) {
    sectors_.push_back(std::make_unique<Sector>(
        net, name_ + "/sec" + std::to_string(s), cfg.sector));
  }
}

void BaseStation::setAvailableFraction(double f) {
  for (auto& s : sectors_) s->setAvailableFraction(f);
}

}  // namespace gol::cell
