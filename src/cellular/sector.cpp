#include "cellular/sector.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::cell {

const char* toString(Direction d) {
  return d == Direction::kDownlink ? "down" : "up";
}

namespace {

struct Anchor {
  int n;
  double eta;
};

double interpolate(const Anchor* anchors, std::size_t count, int n,
                   double floor_eta) {
  if (n <= anchors[0].n) return anchors[0].eta;
  for (std::size_t i = 1; i < count; ++i) {
    if (n <= anchors[i].n) {
      const auto& a = anchors[i - 1];
      const auto& b = anchors[i];
      const double frac = static_cast<double>(n - a.n) /
                          static_cast<double>(b.n - a.n);
      return a.eta + frac * (b.eta - a.eta);
    }
  }
  // Extrapolate with the last segment's slope.
  const auto& a = anchors[count - 2];
  const auto& b = anchors[count - 1];
  const double slope = (b.eta - a.eta) / static_cast<double>(b.n - a.n);
  return std::max(floor_eta, b.eta + slope * static_cast<double>(n - b.n));
}

}  // namespace

double clusterEfficiency(Direction d, int n) {
  if (n < 1) throw std::invalid_argument("clusterEfficiency: n >= 1");
  // Anchors derived from Table 3 per-device means normalized to n=1:
  //   downlink 1.61 / 1.33 / 1.16 Mbps  ->  1.0 / 0.826 / 0.720
  //   uplink   1.09 / 0.90 / 0.65 Mbps  ->  1.0 / 0.826 / 0.596
  static constexpr Anchor kDl[] = {{1, 1.0}, {3, 0.826}, {5, 0.720}};
  static constexpr Anchor kUl[] = {{1, 1.0}, {3, 0.826}, {5, 0.596}};
  if (d == Direction::kDownlink) return interpolate(kDl, 3, n, 0.35);
  return interpolate(kUl, 3, n, 0.25);
}

Sector::Sector(net::FlowNetwork& net, std::string name,
               const SectorConfig& cfg)
    : net_(net),
      name_(std::move(name)),
      cfg_(cfg),
      dl_(net.createLink(name_ + "/hsdpa", cfg.hsdpa_aggregate_bps)),
      ul_(net.createLink(name_ + "/hsupa", cfg.hsupa_aggregate_bps)) {}

net::Link* Sector::sharedLink(Direction d) {
  return d == Direction::kDownlink ? dl_ : ul_;
}

std::vector<Sector::Entry>& Sector::entries(Direction d) {
  return d == Direction::kDownlink ? dl_entries_ : ul_entries_;
}

const std::vector<Sector::Entry>& Sector::entries(Direction d) const {
  return d == Direction::kDownlink ? dl_entries_ : ul_entries_;
}

int Sector::activeCount(Direction d) const {
  return static_cast<int>(entries(d).size());
}

double Sector::capBps(Direction d, double quality, int n) const {
  const double base = d == Direction::kDownlink
                          ? cfg_.per_device_dl_base_bps * cfg_.dl_scale
                          : cfg_.per_device_ul_base_bps * cfg_.ul_scale;
  return base * quality * clusterEfficiency(d, std::max(1, n)) *
         available_fraction_;
}

double Sector::prospectiveCapBps(Direction d, double quality) const {
  return capBps(d, quality, activeCount(d) + 1);
}

Sector::TransferHandle Sector::registerTransfer(Direction d, double quality,
                                                CapSetter apply) {
  const TransferHandle h = next_handle_++;
  entries(d).push_back(Entry{h, quality, std::move(apply)});
  reapply(d);
  return h;
}

void Sector::unregisterTransfer(Direction d, TransferHandle h) {
  auto& es = entries(d);
  es.erase(std::remove_if(es.begin(), es.end(),
                          [h](const Entry& e) { return e.handle == h; }),
           es.end());
  reapply(d);
}

void Sector::reapply(Direction d) {
  auto& es = entries(d);
  const int n = static_cast<int>(es.size());
  for (const Entry& e : es) {
    if (e.apply) e.apply(capBps(d, e.quality, n));
  }
}

void Sector::setAvailableFraction(double f) {
  available_fraction_ = std::clamp(f, 0.0, 1.0);
  net_.setLinkCapacity(dl_, cfg_.hsdpa_aggregate_bps * available_fraction_);
  net_.setLinkCapacity(ul_, cfg_.hsupa_aggregate_bps * available_fraction_);
  reapply(Direction::kDownlink);
  reapply(Direction::kUplink);
}

double Sector::utilization(Direction d) const {
  const net::Link* l = d == Direction::kDownlink ? dl_ : ul_;
  // Background users consume (1 - available_fraction) of the nominal
  // channel; 3GOL flows consume measured load on top.
  const double nominal = d == Direction::kDownlink
                             ? cfg_.hsdpa_aggregate_bps
                             : cfg_.hsupa_aggregate_bps;
  const double onload = net_.linkLoadBps(l);
  return std::clamp((1.0 - available_fraction_) + onload / nominal, 0.0, 1.0);
}

}  // namespace gol::cell
