// Location profiles: the radio environment at one geographic spot, plus the
// constants for the paper's measurement locations (Table 2, Sec. 3) and
// in-the-wild evaluation locations (Table 4, Sec. 5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cellular/base_station.hpp"
#include "cellular/device.hpp"
#include "net/capacity_profile.hpp"
#include "net/flow_network.hpp"
#include "sim/rng.hpp"

namespace gol::cell {

struct LocationSpec {
  std::string name;
  int base_stations = 2;       ///< Paper: devices saw >= 2 BSs everywhere.
  int sectors_per_bs = 3;
  double backhaul_bps = 40e6;  ///< Per BS, per direction (Sec. 2.1).
  double signal_dbm = -85.0;
  double signal_sd_db = 4.0;   ///< Per-device spread around the location mean.
  /// Provisioning-density tuning so 3-device aggregates match Table 2.
  double dl_scale = 1.0;
  double ul_scale = 1.0;
  /// Shared-channel fraction consumed by background subscribers at the
  /// mobile network's busiest hour. Diurnal shaping scales this.
  double background_peak_util = 0.35;
  /// Attachment behaviour: high diversity + low primary bonus spreads
  /// devices across sectors (dense deployments, the paper's Location 3);
  /// low diversity clusters them on one shared channel.
  double sector_diversity_db = 2.0;
  double primary_bonus_db = 6.0;
  double load_penalty_db = 0.5;
  /// The measured ADSL line at this location (paper Tables 2 and 4).
  double adsl_down_bps = 6.7e6;
  double adsl_up_bps = 0.67e6;
  /// Sustained-download utilization of the line (see AdslConfig); the
  /// Sec. 5 evaluation homes deliver well below their speedtest rate.
  double adsl_down_utilization = 1.0;
  /// Shared-channel aggregates (HSPA defaults; lteUpgrade raises them).
  double shared_dl_aggregate_bps = 14.4e6;
  double shared_ul_aggregate_bps = 5.76e6;
};

/// Instantiated radio environment: base stations, background-load diurnal
/// driver, and a factory for devices observing this location's conditions.
class Location {
 public:
  Location(net::FlowNetwork& net, const LocationSpec& spec, sim::Rng rng);
  Location(const Location&) = delete;
  Location& operator=(const Location&) = delete;

  const LocationSpec& spec() const { return spec_; }
  std::vector<BaseStation*> baseStations();
  BaseStation& baseStation(std::size_t i) { return *stations_.at(i); }
  std::size_t baseStationCount() const { return stations_.size(); }

  /// Creates a device at this location; signal is sampled around the
  /// location mean, attachment parameters come from the spec.
  std::unique_ptr<CellularDevice> makeDevice(const std::string& name,
                                             DeviceConfig base = {});

  /// Immediately applies a background-load level (0 = fully loaded cell,
  /// 1 = empty). For experiments pinned at one time of day.
  void setAvailableFraction(double f);
  /// Drives background load from a diurnal shape; `day_offset_s` maps sim
  /// t=0 to a time of day. `shape` must outlive the location.
  void startDiurnalLoad(const net::DiurnalShape& shape, double day_offset_s,
                        double interval_s = 60.0);

  /// Background availability the diurnal driver would set at time-of-day t.
  double availableFractionAt(const net::DiurnalShape& shape,
                             double tod_s) const;

 private:
  void diurnalTick();

  net::FlowNetwork& net_;
  LocationSpec spec_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<BaseStation>> stations_;
  const net::DiurnalShape* diurnal_ = nullptr;
  double day_offset_s_ = 0;
  double diurnal_interval_s_ = 60;
};

/// Sec. 2.3's 4G scenario: "If 4G is available, the concept of 3GOL is
/// even more compelling. With the reduced latency, and the large increase
/// of bandwidth, the period of powerboosting time might be extremely
/// short." Upgrades a location to an LTE deployment: wider shared
/// channels, much higher per-device rates.
LocationSpec lteUpgrade(LocationSpec spec);
/// Companion handset config: LTE RRC (sub-second idle->connected), lower
/// RTT, category-4-class rate caps.
DeviceConfig lteDeviceConfig(DeviceConfig base = {});

/// The six Sec. 3 measurement spots of Table 2, in paper order.
std::vector<LocationSpec> measurementLocations();
/// The five Sec. 5 in-the-wild evaluation homes of Table 4 (loc1..loc5).
std::vector<LocationSpec> evaluationLocations();

/// The mobile-network diurnal load shape used across experiments: evening
/// peak (~21h), deep night trough — the cellular curve of Fig 1.
const net::DiurnalShape& mobileDiurnalShape();
/// The wired/DSLAM diurnal demand shape: later, sharper evening peak —
/// the wired curve of Fig 1.
const net::DiurnalShape& wiredDiurnalShape();

}  // namespace gol::cell
