// One sector of a UMTS/HSPA base station: shared best-effort HSDPA (down)
// and HSUPA (up) channels whose capacity is divided among active devices by
// the NodeB scheduler.
//
// Two effects shape per-device throughput (Sec. 3 of the paper):
//   - aggregate channel caps (HSUPA tops out at 5.76 Mbps -> the uplink
//     plateau at ~5 devices in Fig 3),
//   - per-device scheduling efficiency that decays with the number of
//     devices sharing the sector; our decay curve is anchored directly on
//     the paper's Table 3 cluster statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/flow_network.hpp"

namespace gol::cell {

enum class Direction { kDownlink, kUplink };

const char* toString(Direction d);

struct SectorConfig {
  double hsdpa_aggregate_bps = 14.4e6;  ///< HSDPA shared-channel ceiling.
  double hsupa_aggregate_bps = 5.76e6;  ///< HSUPA ceiling (paper Sec. 3).
  /// Per-device achievable rate under perfect radio, alone in the sector.
  /// Calibrated so cluster-size-1 statistics match Table 3.
  double per_device_dl_base_bps = 1.8e6;
  double per_device_ul_base_bps = 1.25e6;
  /// Location-specific tuning multipliers (provisioning density, spectrum).
  double dl_scale = 1.0;
  double ul_scale = 1.0;
};

/// Scheduling efficiency for a device when `n` devices share the sector in
/// one direction. Piecewise-linear through the anchors implied by Table 3:
/// downlink 1.0 / 0.826 / 0.720 and uplink 1.0 / 0.826 / 0.596 at n=1/3/5,
/// extrapolated with the 3->5 slope and floored.
double clusterEfficiency(Direction d, int n);

class Sector {
 public:
  using TransferHandle = std::uint64_t;
  /// Callback through which the sector pushes updated rate caps to the
  /// device's active flow whenever sharing conditions change.
  using CapSetter = std::function<void(double cap_bps)>;

  Sector(net::FlowNetwork& net, std::string name, const SectorConfig& cfg);
  Sector(const Sector&) = delete;
  Sector& operator=(const Sector&) = delete;

  net::Link* sharedLink(Direction d);
  const SectorConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  /// Registers an active device transfer. The sector immediately pushes the
  /// current cap through `apply` and re-pushes to everyone on membership or
  /// load changes.
  TransferHandle registerTransfer(Direction d, double quality, CapSetter apply);
  void unregisterTransfer(Direction d, TransferHandle h);

  int activeCount(Direction d) const;
  /// Cap a device with radio `quality` would get right now if it joined.
  double prospectiveCapBps(Direction d, double quality) const;

  /// Sets the fraction of the sector not consumed by background subscribers
  /// (1 = empty cell). Rescales shared channels and per-device caps —
  /// the diurnal effect of Fig 4.
  void setAvailableFraction(double f);
  double availableFraction() const { return available_fraction_; }

  /// Current utilization of the shared channel (for the permit server).
  double utilization(Direction d) const;

 private:
  struct Entry {
    TransferHandle handle;
    double quality;
    CapSetter apply;
  };

  double capBps(Direction d, double quality, int n) const;
  void reapply(Direction d);
  std::vector<Entry>& entries(Direction d);
  const std::vector<Entry>& entries(Direction d) const;

  net::FlowNetwork& net_;
  std::string name_;
  SectorConfig cfg_;
  net::Link* dl_;
  net::Link* ul_;
  double available_fraction_ = 1.0;
  std::vector<Entry> dl_entries_;
  std::vector<Entry> ul_entries_;
  TransferHandle next_handle_ = 1;
};

}  // namespace gol::cell
