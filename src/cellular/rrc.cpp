#include "cellular/rrc.hpp"

#include <utility>

namespace gol::cell {

const char* toString(RrcState s) {
  switch (s) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
  }
  return "?";
}

RrcMachine::RrcMachine(sim::Simulator& sim, const RrcConfig& cfg)
    : sim_(sim), cfg_(cfg) {}

double RrcMachine::pendingPromotionDelayS() const {
  switch (state_) {
    case RrcState::kIdle: return cfg_.idle_to_dch_s;
    case RrcState::kFach: return cfg_.fach_to_dch_s;
    case RrcState::kDch: return 0.0;
  }
  return 0.0;
}

void RrcMachine::requestDch(std::function<void()> on_ready) {
  notifyActivity();
  if (state_ == RrcState::kDch) {
    if (on_ready) on_ready();
    return;
  }
  waiters_.push_back(std::move(on_ready));
  if (promoting_) return;
  promoting_ = true;
  sim_.scheduleIn(pendingPromotionDelayS(), [this] { enterDch(); });
}

void RrcMachine::transitionTo(RrcState next) {
  if (next == state_) return;
  const RrcState prev = state_;
  state_ = next;
  if (listener_) listener_(prev, next);
}

void RrcMachine::setStateListener(StateListener listener) {
  listener_ = std::move(listener);
}

void RrcMachine::enterDch() {
  promoting_ = false;
  transitionTo(RrcState::kDch);
  notifyActivity();
  auto waiters = std::exchange(waiters_, {});
  for (auto& w : waiters) {
    if (w) w();
  }
}

void RrcMachine::notifyActivity() {
  last_activity_ = sim_.now();
  if (state_ != RrcState::kIdle) armDemotionTimer();
}

void RrcMachine::forceDch() {
  promoting_ = false;
  transitionTo(RrcState::kDch);
  notifyActivity();
  auto waiters = std::exchange(waiters_, {});
  for (auto& w : waiters) {
    if (w) w();
  }
}

void RrcMachine::armDemotionTimer() {
  if (demotion_event_ != 0) sim_.cancel(demotion_event_);
  const double timer = state_ == RrcState::kDch ? cfg_.dch_inactivity_s
                                                : cfg_.fach_inactivity_s;
  demotion_event_ =
      sim_.scheduleAt(last_activity_ + timer, [this] { demotionCheck(); });
}

void RrcMachine::demotionCheck() {
  demotion_event_ = 0;
  const double timer = state_ == RrcState::kDch ? cfg_.dch_inactivity_s
                                                : cfg_.fach_inactivity_s;
  if (sim_.now() < last_activity_ + timer) {
    armDemotionTimer();
    return;
  }
  if (state_ == RrcState::kDch) {
    transitionTo(RrcState::kFach);
    last_activity_ = sim_.now();
    armDemotionTimer();
  } else if (state_ == RrcState::kFach) {
    transitionTo(RrcState::kIdle);
  }
}

}  // namespace gol::cell
