#include "cellular/energy.hpp"

namespace gol::cell {

EnergyMeter::EnergyMeter(sim::Simulator& sim, RrcMachine& rrc,
                         PowerModel model)
    : sim_(sim), model_(model), state_(rrc.state()), span_start_(sim.now()) {
  rrc.setStateListener(
      [this](RrcState from, RrcState to) { onTransition(from, to); });
}

void EnergyMeter::onTransition(RrcState /*from*/, RrcState to) {
  const double span = currentSpanS();
  joules_ += span * model_.draw(state_);
  residency_[static_cast<int>(state_)] += span;
  state_ = to;
  span_start_ = sim_.now();
}

double EnergyMeter::joules() const {
  return joules_ + currentSpanS() * model_.draw(state_);
}

double EnergyMeter::residencyS(RrcState state) const {
  double r = residency_[static_cast<int>(state)];
  if (state == state_) r += currentSpanS();
  return r;
}

void EnergyMeter::reset() {
  joules_ = 0;
  residency_[0] = residency_[1] = residency_[2] = 0;
  span_start_ = sim_.now();
}

}  // namespace gol::cell
