// A base station: several sectors plus a backhaul pipe to the Internet.
// The paper's Sec. 2.1 sizes the backhaul at 40-50 Mbps; Fig 11b compares
// onloaded traffic against 2 x 40 Mbps for a two-tower area.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cellular/sector.hpp"
#include "net/flow_network.hpp"

namespace gol::cell {

struct BaseStationConfig {
  int sectors = 3;
  double backhaul_bps = 40e6;  ///< Per direction.
  SectorConfig sector;
};

class BaseStation {
 public:
  BaseStation(net::FlowNetwork& net, std::string name,
              const BaseStationConfig& cfg);
  BaseStation(const BaseStation&) = delete;
  BaseStation& operator=(const BaseStation&) = delete;

  const std::string& name() const { return name_; }
  std::size_t sectorCount() const { return sectors_.size(); }
  Sector& sector(std::size_t i) { return *sectors_.at(i); }
  const Sector& sector(std::size_t i) const { return *sectors_.at(i); }
  net::Link* backhaul(Direction d) {
    return d == Direction::kDownlink ? backhaul_down_ : backhaul_up_;
  }
  const BaseStationConfig& config() const { return cfg_; }

  /// Applies the background-load fraction to every sector.
  void setAvailableFraction(double f);

 private:
  std::string name_;
  BaseStationConfig cfg_;
  net::Link* backhaul_down_;
  net::Link* backhaul_up_;
  std::vector<std::unique_ptr<Sector>> sectors_;
};

}  // namespace gol::cell
