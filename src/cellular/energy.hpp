// Handset radio energy model.
//
// The paper explicitly scopes energy out ("3GOL devices are often connected
// for recharging while at home, hence energy consumption is not a primary
// concern") — this module quantifies the claim instead of assuming it:
// per-RRC-state power draw integrated over simulated time, including the
// classic tail energy (DCH/FACH residency after the transfer finishes).
// Power numbers follow the common UMTS handset measurements (Huang et al.):
// ~0.8 W in DCH, ~0.45 W in FACH, near-zero radio draw in IDLE.
#pragma once

#include "cellular/rrc.hpp"
#include "sim/simulator.hpp"

namespace gol::cell {

struct PowerModel {
  double idle_w = 0.02;
  double fach_w = 0.45;
  double dch_w = 0.80;

  double draw(RrcState s) const {
    switch (s) {
      case RrcState::kIdle: return idle_w;
      case RrcState::kFach: return fach_w;
      case RrcState::kDch: return dch_w;
    }
    return 0;
  }
};

/// Attaches to an RrcMachine and integrates radio energy over simulated
/// time. One meter per machine (it takes the machine's state listener).
class EnergyMeter {
 public:
  EnergyMeter(sim::Simulator& sim, RrcMachine& rrc, PowerModel model = {});

  /// Total joules from attach time to now.
  double joules() const;
  /// Seconds spent in `state` so far.
  double residencyS(RrcState state) const;
  /// Resets the accumulators (e.g. at transaction start).
  void reset();

 private:
  void onTransition(RrcState from, RrcState to);
  double currentSpanS() const { return sim_.now() - span_start_; }

  sim::Simulator& sim_;
  PowerModel model_;
  RrcState state_;
  double span_start_;
  double joules_ = 0;
  double residency_[3] = {0, 0, 0};
};

}  // namespace gol::cell
