#include "cellular/device.hpp"

#include <algorithm>
#include <cmath>

#include "sim/units.hpp"

namespace gol::cell {

CellularDevice::CellularDevice(net::FlowNetwork& net, std::string name,
                               std::vector<BaseStation*> visible,
                               const DeviceConfig& cfg, sim::Rng rng)
    : net_(net),
      name_(std::move(name)),
      visible_(std::move(visible)),
      cfg_(cfg),
      rng_(rng),
      rrc_(net.simulator(), cfg.rrc) {}

double CellularDevice::sectorBias(const Sector* s) {
  for (const auto& [sec, bias] : sector_bias_db_) {
    if (sec == s) return bias;
  }
  const double bias = rng_.normal(0.0, cfg_.sector_diversity_db);
  sector_bias_db_.emplace_back(s, bias);
  return bias;
}

Sector* CellularDevice::chooseSector(Direction d) {
  Sector* best = nullptr;
  double best_score = -1e18;
  for (std::size_t b = 0; b < visible_.size(); ++b) {
    BaseStation* bs = visible_[b];
    for (std::size_t s = 0; s < bs->sectorCount(); ++s) {
      Sector& sec = bs->sector(s);
      double score = sectorBias(&sec);
      if (b == 0 && s == 0) score += cfg_.primary_bonus_db;
      score -= cfg_.load_penalty_db * sec.activeCount(d);
      if (score > best_score) {
        best_score = score;
        best = &sec;
      }
    }
  }
  return best;
}

double CellularDevice::nominalRateBps(Direction d) const {
  if (visible_.empty()) return 0;
  const SectorConfig& sc = visible_.front()->config().sector;
  const double base = d == Direction::kDownlink
                          ? sc.per_device_dl_base_bps * sc.dl_scale
                          : sc.per_device_ul_base_bps * sc.ul_scale;
  return base * cfg_.radio.quality();
}

CellularDevice::TransferId CellularDevice::startTransfer(TransferOptions opts) {
  const TransferId id = next_id_++;
  Transfer t;
  t.dir = opts.dir;
  t.bytes = opts.bytes;
  t.extra_links = std::move(opts.extra_links);
  t.on_complete = std::move(opts.on_complete);
  transfers_.emplace(id, std::move(t));
  rrc_.requestDch([this, id] { beginFlow(id); });
  if (!ticking_) {
    ticking_ = true;
    net_.simulator().scheduleIn(cfg_.jitter_interval_s, [this] { jitterTick(); });
  }
  return id;
}

void CellularDevice::beginFlow(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;  // aborted during RRC promotion
  Transfer& t = it->second;

  Sector* sec = chooseSector(t.dir);
  if (sec == nullptr) {
    // No coverage: fail the transfer by completing with zero progress.
    auto cb = std::move(t.on_complete);
    transfers_.erase(it);
    if (cb) cb();
    return;
  }
  BaseStation* bs = nullptr;
  for (BaseStation* cand : visible_) {
    for (std::size_t s = 0; s < cand->sectorCount(); ++s) {
      if (&cand->sector(s) == sec) bs = cand;
    }
  }
  t.bs = bs;
  t.sector = sec;
  t.quality = cfg_.radio.quality() *
              std::clamp(rng_.lognormal(0.0, cfg_.quality_sigma), 0.3, 2.0);
  t.handle = sec->registerTransfer(
      t.dir, t.quality, [this, id](double cap) { onSectorCap(id, cap); });

  std::vector<net::Link*> path = {sec->sharedLink(t.dir),
                                  bs->backhaul(t.dir)};
  path.insert(path.end(), t.extra_links.begin(), t.extra_links.end());

  net::FlowSpec spec;
  spec.path = std::move(path);
  spec.bytes = t.bytes;
  spec.rate_cap_bps = 1.0;  // placeholder; applyCap sets the real value
  spec.on_complete = [this, id](net::FlowId) { completeTransfer(id); };
  t.flow = net_.startFlow(std::move(spec));
  applyCap(t);
}

void CellularDevice::onSectorCap(TransferId id, double cap_bps) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  it->second.sector_cap_bps = cap_bps;
  if (it->second.flow != 0) applyCap(it->second);
}

void CellularDevice::applyCap(Transfer& t) {
  const double dev_max =
      t.dir == Direction::kDownlink ? cfg_.max_dl_bps : cfg_.max_ul_bps;
  const double cap = std::min(dev_max, t.sector_cap_bps *
                                           std::exp(t.log_jitter));
  net_.setFlowRateCap(t.flow, std::max(cap, 1e3));
}

void CellularDevice::completeTransfer(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer t = std::move(it->second);
  transfers_.erase(it);
  if (t.sector != nullptr) t.sector->unregisterTransfer(t.dir, t.handle);
  metered_bytes_ += t.bytes;
  rrc_.notifyActivity();
  if (t.on_complete) t.on_complete();
}

double CellularDevice::abortTransfer(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return 0.0;
  Transfer t = std::move(it->second);
  transfers_.erase(it);
  double moved = 0.0;
  if (t.flow != 0) moved = net_.abortFlow(t.flow);
  if (t.sector != nullptr) t.sector->unregisterTransfer(t.dir, t.handle);
  metered_bytes_ += moved;
  rrc_.notifyActivity();
  return moved;
}

void CellularDevice::jitterTick() {
  if (transfers_.empty()) {
    ticking_ = false;
    return;
  }
  // Ticking doubles as the RRC keepalive: the interval (2 s) is shorter
  // than the DCH inactivity timer, so the radio never demotes mid-transfer.
  rrc_.notifyActivity();
  const double phi = 0.8;
  const double innov = cfg_.jitter_sigma * std::sqrt(1.0 - phi * phi);
  for (auto& [id, t] : transfers_) {
    t.log_jitter = phi * t.log_jitter + rng_.normal(0.0, innov);
    if (t.flow != 0) applyCap(t);
  }
  net_.simulator().scheduleIn(cfg_.jitter_interval_s, [this] { jitterTick(); });
}

}  // namespace gol::cell
