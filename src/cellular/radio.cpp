#include "cellular/radio.hpp"

#include <algorithm>
#include <cmath>

namespace gol::cell {

int RadioConditions::asu() const {
  const int v = static_cast<int>(std::lround((signal_dbm + 113.0) / 2.0));
  return std::clamp(v, 0, 31);
}

double RadioConditions::quality() const {
  // Piecewise-linear in dBm: full quality at/above -75, floor 0.2 at -110.
  constexpr double kHi = -75.0;
  constexpr double kLo = -110.0;
  constexpr double kFloor = 0.20;
  if (signal_dbm >= kHi) return 1.0;
  if (signal_dbm <= kLo) return kFloor;
  return kFloor + (1.0 - kFloor) * (signal_dbm - kLo) / (kHi - kLo);
}

}  // namespace gol::cell
