// A 3G-capable handset: RRC state machine, sector attachment with
// signal-biased load balancing, and fluid transfers whose rate cap follows
// the sector's sharing state plus short-term radio jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cellular/base_station.hpp"
#include "cellular/radio.hpp"
#include "cellular/rrc.hpp"
#include "net/flow_network.hpp"
#include "sim/rng.hpp"

namespace gol::cell {

struct DeviceConfig {
  RadioConditions radio{-85.0};
  /// Lognormal sigma of per-transfer radio-quality noise (fast fading,
  /// body loss...). Produces the per-measurement spread of Table 3.
  double quality_sigma = 0.30;
  /// Short-term in-transfer jitter: AR(1) in log space, stationary sigma.
  double jitter_sigma = 0.15;
  double jitter_interval_s = 2.0;
  double rtt_s = 0.10;      ///< DCH-state RTT.
  double loss_rate = 0.0;
  double max_dl_bps = 21.1e6;  ///< HSDPA Cat-20 class device (Galaxy S II).
  double max_ul_bps = 5.76e6;  ///< HSUPA Cat-6.
  RrcConfig rrc;
  /// Sector-attachment scoring (dB domain): per-(device, sector) random
  /// bias, a bonus for the location's dominant sector, and a penalty per
  /// active device already in the sector (NodeB load balancing).
  double sector_diversity_db = 2.0;
  double primary_bonus_db = 6.0;
  double load_penalty_db = 0.5;
};

class CellularDevice {
 public:
  using TransferId = std::uint64_t;

  struct TransferOptions {
    Direction dir = Direction::kDownlink;
    double bytes = 0;
    /// Extra links the transfer also crosses (home Wi-Fi, server uplink...).
    std::vector<net::Link*> extra_links;
    std::function<void()> on_complete;
  };

  CellularDevice(net::FlowNetwork& net, std::string name,
                 std::vector<BaseStation*> visible, const DeviceConfig& cfg,
                 sim::Rng rng);
  CellularDevice(const CellularDevice&) = delete;
  CellularDevice& operator=(const CellularDevice&) = delete;

  /// Starts a transfer: waits for RRC promotion if needed, attaches to a
  /// sector, then moves bytes at the shared-channel fair rate.
  TransferId startTransfer(TransferOptions opts);
  /// Aborts; returns the bytes moved so far (counts toward quota/waste).
  double abortTransfer(TransferId id);
  bool transferActive(TransferId id) const { return transfers_.count(id) != 0; }

  const std::string& name() const { return name_; }
  net::FlowNetwork& net() { return net_; }
  RrcMachine& rrc() { return rrc_; }
  const DeviceConfig& config() const { return cfg_; }
  double rttS() const { return cfg_.rtt_s; }
  double lossRate() const { return cfg_.loss_rate; }
  /// Total bytes moved over the cellular interface (both directions),
  /// including partial transfers — what a data plan would meter.
  double meteredBytes() const { return metered_bytes_; }
  std::size_t activeTransferCount() const { return transfers_.size(); }

  /// A coarse a-priori rate guess (used to seed bandwidth estimators).
  double nominalRateBps(Direction d) const;

  /// The sector the device would attach to right now for direction `d`.
  Sector* chooseSector(Direction d);

 private:
  struct Transfer {
    Direction dir;
    double bytes;
    std::vector<net::Link*> extra_links;
    std::function<void()> on_complete;
    net::FlowId flow = 0;
    BaseStation* bs = nullptr;
    Sector* sector = nullptr;
    Sector::TransferHandle handle = 0;
    double quality = 1.0;
    double log_jitter = 0.0;
    double sector_cap_bps = 0.0;
  };

  void beginFlow(TransferId id);
  void onSectorCap(TransferId id, double cap_bps);
  void applyCap(Transfer& t);
  void completeTransfer(TransferId id);
  void jitterTick();
  double sectorBias(const Sector* s);

  net::FlowNetwork& net_;
  std::string name_;
  std::vector<BaseStation*> visible_;
  DeviceConfig cfg_;
  sim::Rng rng_;
  RrcMachine rrc_;
  std::map<TransferId, Transfer> transfers_;
  /// Per-sector attachment bias, drawn lazily on first encounter. Flat
  /// vector: a device sees ~6 sectors and chooseSector probes all of them
  /// on every transfer, so a linear scan beats tree lookups.
  std::vector<std::pair<const Sector*, double>> sector_bias_db_;
  TransferId next_id_ = 1;
  double metered_bytes_ = 0;
  bool ticking_ = false;
};

}  // namespace gol::cell
