#include "cellular/location.hpp"

#include <algorithm>

#include "sim/units.hpp"

namespace gol::cell {

Location::Location(net::FlowNetwork& net, const LocationSpec& spec,
                   sim::Rng rng)
    : net_(net), spec_(spec), rng_(rng) {
  BaseStationConfig bs_cfg;
  bs_cfg.sectors = spec_.sectors_per_bs;
  bs_cfg.backhaul_bps = spec_.backhaul_bps;
  bs_cfg.sector.dl_scale = spec_.dl_scale;
  bs_cfg.sector.ul_scale = spec_.ul_scale;
  bs_cfg.sector.hsdpa_aggregate_bps = spec_.shared_dl_aggregate_bps;
  bs_cfg.sector.hsupa_aggregate_bps = spec_.shared_ul_aggregate_bps;
  for (int b = 0; b < spec_.base_stations; ++b) {
    stations_.push_back(std::make_unique<BaseStation>(
        net_, spec_.name + "/bs" + std::to_string(b), bs_cfg));
  }
}

std::vector<BaseStation*> Location::baseStations() {
  std::vector<BaseStation*> out;
  out.reserve(stations_.size());
  for (auto& s : stations_) out.push_back(s.get());
  return out;
}

std::unique_ptr<CellularDevice> Location::makeDevice(const std::string& name,
                                                     DeviceConfig base) {
  base.radio.signal_dbm =
      rng_.normal(spec_.signal_dbm, spec_.signal_sd_db);
  base.sector_diversity_db = spec_.sector_diversity_db;
  base.primary_bonus_db = spec_.primary_bonus_db;
  base.load_penalty_db = spec_.load_penalty_db;
  return std::make_unique<CellularDevice>(net_, name, baseStations(), base,
                                          rng_.fork());
}

void Location::setAvailableFraction(double f) {
  for (auto& s : stations_) s->setAvailableFraction(f);
}

double Location::availableFractionAt(const net::DiurnalShape& shape,
                                     double tod_s) const {
  const double norm = shape.at(tod_s) / shape.maxValue();
  return std::clamp(1.0 - spec_.background_peak_util * norm, 0.0, 1.0);
}

void Location::startDiurnalLoad(const net::DiurnalShape& shape,
                                double day_offset_s, double interval_s) {
  diurnal_ = &shape;
  day_offset_s_ = day_offset_s;
  diurnal_interval_s_ = interval_s;
  diurnalTick();
}

void Location::diurnalTick() {
  if (diurnal_ == nullptr) return;
  const double tod = day_offset_s_ + net_.simulator().now();
  setAvailableFraction(availableFractionAt(*diurnal_, tod));
  net_.simulator().scheduleIn(diurnal_interval_s_, [this] { diurnalTick(); });
}

namespace {

LocationSpec makeSpec(std::string name, int bs, double signal_dbm,
                      double dl_scale, double ul_scale, double peak_util,
                      double diversity_db, double bonus_db, double penalty_db,
                      double adsl_down_mbps, double adsl_up_mbps) {
  LocationSpec s;
  s.name = std::move(name);
  s.base_stations = bs;
  s.signal_dbm = signal_dbm;
  s.dl_scale = dl_scale;
  s.ul_scale = ul_scale;
  s.background_peak_util = peak_util;
  s.sector_diversity_db = diversity_db;
  s.primary_bonus_db = bonus_db;
  s.load_penalty_db = penalty_db;
  s.adsl_down_bps = sim::mbps(adsl_down_mbps);
  s.adsl_up_bps = sim::mbps(adsl_up_mbps);
  return s;
}

}  // namespace

std::vector<LocationSpec> measurementLocations() {
  // Table 2 of the paper. dl/ul scales are calibrated so the 3-device
  // aggregate 3G throughput at the stated time of day lands on the
  // "3G Mbps (d/u)" column; attachment parameters encode the observed
  // sector behaviour (Location 3 exceeds the single-sector HSUPA cap
  // thanks to a dense deployment -> strong spreading).
  std::vector<LocationSpec> v;
  v.push_back(makeSpec("1-dense-residential-center", 2, -78, 1.60, 1.49,
                       0.35, 1.5, 8.0, 0.3, 3.44, 0.30));
  v.push_back(makeSpec("2-office-rush-hour", 2, -85, 0.94, 0.75, 0.35, 3.0,
                       3.0, 1.0, 4.51, 0.47));
  v.push_back(makeSpec("3-residential-tourist-hotspot", 2, -88, 0.66, 0.57,
                       0.45, 4.0, 2.0, 1.2, 6.72, 0.84));
  v.push_back(makeSpec("4-sparse-residential-suburbs", 1, -84, 1.41, 0.78,
                       0.25, 1.5, 6.0, 0.4, 2.84, 0.45));
  v.push_back(makeSpec("5-dense-residential-center", 2, -82, 1.26, 1.50,
                       0.35, 2.5, 5.0, 0.8, 8.57, 0.63));
  v.push_back(makeSpec("6-dense-residential-center", 2, -90, 1.15, 0.84,
                       0.35, 2.5, 5.0, 0.8, 55.48, 11.35));
  return v;
}

std::vector<LocationSpec> evaluationLocations() {
  // Table 4 of the paper: the five homes of the Sec. 5 in-the-wild study.
  // Signal strengths are the paper's; scales are calibrated against the
  // Fig 8 (download reduction) and Fig 9 (upload time) outcomes — measured
  // signal was a poor predictor of throughput in the paper's own data, so
  // the scale knob absorbs the observed per-home rate.
  std::vector<LocationSpec> v;
  v.push_back(makeSpec("loc1", 2, -81, 3.05, 1.00, 0.30, 2.0, 5.0, 0.6,
                       6.48, 0.83));
  v.push_back(makeSpec("loc2", 2, -95, 6.00, 2.50, 0.30, 2.0, 5.0, 0.6,
                       21.64, 2.77));
  v.push_back(makeSpec("loc3", 2, -97, 5.05, 3.90, 0.30, 2.0, 5.0, 0.6,
                       8.67, 0.62));
  v.push_back(makeSpec("loc4", 2, -89, 3.45, 2.75, 0.30, 2.0, 5.0, 0.6,
                       6.20, 0.65));
  v.push_back(makeSpec("loc5", 2, -89, 3.65, 2.10, 0.30, 2.0, 5.0, 0.6,
                       6.82, 0.58));
  // Sustained HLS downloads at these homes ran well below the speedtest
  // rate (the paper's Fig 7/8 gains are unreachable otherwise; see
  // DESIGN.md calibration notes).
  for (auto& spec : v) spec.adsl_down_utilization = 0.55;
  return v;
}

LocationSpec lteUpgrade(LocationSpec spec) {
  spec.name += "-lte";
  // 20 MHz LTE sector: ~75 Mbps down / 25 Mbps up shared; per-device
  // achievable rates roughly 6x/5x the HSPA deployment at equal radio
  // conditions (the spec scales already encode local conditions).
  spec.shared_dl_aggregate_bps = 75e6;
  spec.shared_ul_aggregate_bps = 25e6;
  spec.dl_scale *= 6.0;
  spec.ul_scale *= 5.0;
  // LTE backhaul is provisioned to match the fatter air interface.
  spec.backhaul_bps = 200e6;
  return spec;
}

DeviceConfig lteDeviceConfig(DeviceConfig base) {
  // LTE RRC: idle -> connected in ~0.3 s, connected DRX instead of FACH.
  base.rrc.idle_to_dch_s = 0.3;
  base.rrc.fach_to_dch_s = 0.05;
  base.rrc.dch_inactivity_s = 10.0;
  base.rrc.fach_inactivity_s = 10.0;
  base.rtt_s = 0.035;
  base.max_dl_bps = 150e6;  // category 4 class
  base.max_ul_bps = 50e6;
  return base;
}

const net::DiurnalShape& mobileDiurnalShape() {
  // Fig 1, cellular curve: clear diurnal swing with a working/afternoon
  // peak (people at home in the evening prefer their wired connection) and
  // a deep pre-dawn trough. The peak deliberately misses the wired evening
  // peak — the non-alignment Fig 1 and Fig 11c rely on.
  static const net::DiurnalShape shape(std::array<double, 24>{{
      0.35, 0.28, 0.22, 0.18, 0.16, 0.18, 0.25, 0.40,  // 0-7h
      0.60, 0.75, 0.85, 0.92, 0.95, 0.97, 1.00, 0.99,  // 8-15h
      0.97, 0.95, 0.90, 0.82, 0.72, 0.62, 0.52, 0.42,  // 16-23h
  }});
  return shape;
}

const net::DiurnalShape& wiredDiurnalShape() {
  // Fig 1, wired/DSLAM curve: flatter daytime, sharper peak shifted to 22h
  // (people stream at home after the mobile busy hour).
  static const net::DiurnalShape shape(std::array<double, 24>{{
      0.60, 0.45, 0.32, 0.25, 0.22, 0.22, 0.25, 0.32,  // 0-7h
      0.40, 0.45, 0.50, 0.53, 0.55, 0.56, 0.55, 0.56,  // 8-15h
      0.60, 0.66, 0.74, 0.82, 0.90, 0.97, 1.00, 0.82,  // 16-23h
  }});
  return shape;
}

}  // namespace gol::cell
