// ADSL access-line model.
//
// ADSL is the bottleneck 3GOL powerboosts: sync rate falls with the copper
// loop length to the exchange, the uplink is ~1/10 of the downlink, and ATM
// framing plus TCP/IP headers shave the IP goodput below sync rate (the
// paper's Sec. 1-2 framing). A line owns two simulator links (down, up).
#pragma once

#include <string>

#include "net/flow_network.hpp"
#include "net/path.hpp"

namespace gol::access {

struct AdslConfig {
  double sync_down_bps = 6.7e6;  ///< Paper's quoted average ADSL downlink.
  double sync_up_bps = 0.67e6;
  /// Fraction of sync rate available as IP goodput (ATM cell tax ~= 0.9,
  /// then TCP/IP headers; 0.85 reproduces measured ADSL goodput well).
  double atm_efficiency = 0.85;
  /// Sustained-download utilization of the downlink relative to the burst
  /// (speedtest) rate. Real lines deliver well below sync rate on long
  /// sequential HLS fetches — DSLAM contention, cross traffic, remote
  /// pacing. The paper's Sec. 5 numbers imply ~0.5-0.65 at its eval homes
  /// (e.g. Fig 6's 2 Mbps line moving a 5 MB video in 41 s).
  double down_utilization = 1.0;
  double rtt_s = 0.060;  ///< Typical interleaved-path ADSL RTT.
  double loss_rate = 0.0;
};

/// Computes ADSL2+ sync rates from loop length (metres): ~24 Mbps below
/// 1 km decaying to ~1.5 Mbps at 5 km; uplink capped at 1.2 Mbps with the
/// same roll-off. A coarse but standard attenuation curve.
AdslConfig adslFromLoopLength(double metres);

class AdslLine {
 public:
  AdslLine(net::FlowNetwork& net, std::string name, const AdslConfig& cfg);

  const AdslConfig& config() const { return cfg_; }
  double goodputDownBps() const {
    return cfg_.sync_down_bps * cfg_.atm_efficiency * cfg_.down_utilization;
  }
  double goodputUpBps() const { return cfg_.sync_up_bps * cfg_.atm_efficiency; }

  net::Link* downLink() { return down_; }
  net::Link* upLink() { return up_; }

  /// Paths for building end-to-end transfers across this line.
  net::NetPath downPath() const;
  net::NetPath upPath() const;

 private:
  AdslConfig cfg_;
  net::Link* down_;
  net::Link* up_;
};

}  // namespace gol::access
