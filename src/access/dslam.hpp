// DSLAM aggregation: many ADSL lines share an oversubscribed uplink to the
// metro network. Used for the Sec. 2.1 capacity comparison and as the
// aggregation point of the Fig 11 trace-driven experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "access/adsl.hpp"
#include "net/flow_network.hpp"

namespace gol::access {

struct DslamConfig {
  std::size_t subscribers = 875;    ///< Paper: ADSL lines per cell-tower area.
  double avg_sync_down_bps = 6.7e6; ///< Paper: Netalyzr average.
  double oversubscription = 20.0;   ///< Typical access aggregation ratio.
};

class Dslam {
 public:
  Dslam(net::FlowNetwork& net, std::string name, const DslamConfig& cfg);

  /// Adds a subscriber line whose traffic also crosses the shared backhaul.
  AdslLine& addLine(const AdslConfig& line_cfg);

  /// Aggregate (non-oversubscribed) downlink sync capacity across all
  /// possible subscribers — the Sec. 2.1 back-of-envelope number.
  double nominalAggregateDownBps() const;
  /// The actually provisioned shared backhaul capacity.
  double backhaulBps() const;

  net::Link* backhaulDown() { return backhaul_down_; }
  net::Link* backhaulUp() { return backhaul_up_; }
  const DslamConfig& config() const { return cfg_; }
  std::size_t lineCount() const { return lines_.size(); }
  AdslLine& line(std::size_t i) { return *lines_.at(i); }

 private:
  net::FlowNetwork& net_;
  std::string name_;
  DslamConfig cfg_;
  net::Link* backhaul_down_;
  net::Link* backhaul_up_;
  std::vector<std::unique_ptr<AdslLine>> lines_;
};

}  // namespace gol::access
