#include "access/wifi.hpp"

#include <algorithm>

#include "sim/units.hpp"

namespace gol::access {

double wifiGoodputBps(WifiStandard standard) {
  switch (standard) {
    case WifiStandard::k80211g:
      return sim::mbps(24.0);
    case WifiStandard::k80211n:
      return sim::mbps(110.0);
  }
  return sim::mbps(24.0);
}

WifiLan::WifiLan(net::FlowNetwork& net, std::string name,
                 const WifiConfig& cfg)
    : cfg_(cfg),
      medium_(net.createLink(std::move(name), wifiGoodputBps(cfg.standard) *
                                                  (1.0 - std::clamp(cfg.interference_loss, 0.0, 1.0)))) {}

double WifiLan::goodputBps() const { return medium_->capacityBps(); }

net::NetPath WifiLan::hop() const {
  net::NetPath p;
  p.name = medium_->name();
  p.links = {medium_};
  p.rtt_s = cfg_.rtt_s;
  p.loss_rate = cfg_.loss_rate;
  return p;
}

}  // namespace gol::access
