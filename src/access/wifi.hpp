// Home Wi-Fi LAN model.
//
// In the paper's OTT architecture every 3GOL hop crosses the home Wi-Fi
// (client <-> gateway <-> phone), which upper-bounds how much cellular
// bandwidth can be aggregated: ~24 Mbps TCP goodput for 802.11g and
// ~110 Mbps for 802.11n (Sec. 4.1). The LAN is one shared medium: all
// stations' flows cross a single link.
#pragma once

#include <string>

#include "net/flow_network.hpp"
#include "net/path.hpp"

namespace gol::access {

enum class WifiStandard { k80211g, k80211n };

struct WifiConfig {
  WifiStandard standard = WifiStandard::k80211n;
  /// Extra degradation from co-channel interference / distance, in [0, 1].
  double interference_loss = 0.0;
  double rtt_s = 0.003;
  double loss_rate = 0.0;  ///< Residual loss visible to TCP after ARQ.
};

/// Maximum TCP goodput of the BSS for the given standard (Sec. 4.1 numbers).
double wifiGoodputBps(WifiStandard standard);

class WifiLan {
 public:
  WifiLan(net::FlowNetwork& net, std::string name, const WifiConfig& cfg);

  double goodputBps() const;
  net::Link* medium() { return medium_; }
  const WifiConfig& config() const { return cfg_; }

  /// A one-hop path across the BSS (used when composing multi-hop paths).
  net::NetPath hop() const;

 private:
  WifiConfig cfg_;
  net::Link* medium_;
};

}  // namespace gol::access
