#include "access/adsl.hpp"

#include <algorithm>
#include <cmath>

#include "sim/units.hpp"

namespace gol::access {

AdslConfig adslFromLoopLength(double metres) {
  AdslConfig cfg;
  // Piecewise-linear ADSL2+ reach curve: 24 Mbps up to 1 km, then roughly
  // -5.6 Mbps per km down to 1.5 Mbps at 5 km and beyond.
  const double km = std::max(0.0, metres / 1000.0);
  double down_mbps;
  if (km <= 1.0) {
    down_mbps = 24.0;
  } else if (km >= 5.0) {
    down_mbps = 1.5;
  } else {
    down_mbps = 24.0 - (24.0 - 1.5) * (km - 1.0) / 4.0;
  }
  cfg.sync_down_bps = sim::mbps(down_mbps);
  // Uplink: annex-A cap 1.2 Mbps, with the same relative roll-off.
  cfg.sync_up_bps = sim::mbps(std::min(1.2, 1.2 * down_mbps / 24.0 + 0.25));
  // Longer loops mean higher serialization/interleave latency.
  cfg.rtt_s = 0.040 + 0.006 * km;
  return cfg;
}

AdslLine::AdslLine(net::FlowNetwork& net, std::string name,
                   const AdslConfig& cfg)
    : cfg_(cfg),
      down_(net.createLink(name + "/down", cfg.sync_down_bps *
                                               cfg.atm_efficiency *
                                               cfg.down_utilization)),
      up_(net.createLink(name + "/up", cfg.sync_up_bps * cfg.atm_efficiency)) {}

net::NetPath AdslLine::downPath() const {
  net::NetPath p;
  p.name = down_->name();
  p.links = {down_};
  p.rtt_s = cfg_.rtt_s;
  p.loss_rate = cfg_.loss_rate;
  return p;
}

net::NetPath AdslLine::upPath() const {
  net::NetPath p;
  p.name = up_->name();
  p.links = {up_};
  p.rtt_s = cfg_.rtt_s;
  p.loss_rate = cfg_.loss_rate;
  return p;
}

}  // namespace gol::access
