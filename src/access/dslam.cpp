#include "access/dslam.hpp"

namespace gol::access {

Dslam::Dslam(net::FlowNetwork& net, std::string name, const DslamConfig& cfg)
    : net_(net), name_(std::move(name)), cfg_(cfg),
      backhaul_down_(net.createLink(name_ + "/backhaul-down", backhaulBps())),
      backhaul_up_(net.createLink(name_ + "/backhaul-up", backhaulBps())) {}

AdslLine& Dslam::addLine(const AdslConfig& line_cfg) {
  auto line = std::make_unique<AdslLine>(
      net_, name_ + "/line" + std::to_string(lines_.size()), line_cfg);
  lines_.push_back(std::move(line));
  return *lines_.back();
}

double Dslam::nominalAggregateDownBps() const {
  return static_cast<double>(cfg_.subscribers) * cfg_.avg_sync_down_bps;
}

double Dslam::backhaulBps() const {
  return nominalAggregateDownBps() / cfg_.oversubscription;
}

}  // namespace gol::access
