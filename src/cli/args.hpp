// Minimal declarative command-line parser for the gol3 tool: long flags
// with typed values, defaults, required markers, and generated usage text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gol::cli {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Declares --name <value> options. Call before parse().
  void addString(const std::string& name, const std::string& help,
                 std::optional<std::string> default_value = std::nullopt);
  void addInt(const std::string& name, const std::string& help,
              std::optional<long> default_value = std::nullopt);
  void addDouble(const std::string& name, const std::string& help,
                 std::optional<double> default_value = std::nullopt);
  /// Declares a boolean --name switch (no value; default false).
  void addFlag(const std::string& name, const std::string& help);

  /// Parses argv after the subcommand. Returns false (and fills error())
  /// on unknown options, missing values, type errors, or missing required
  /// options. `--help` sets helpRequested() and returns false.
  bool parse(int argc, const char* const* argv, int start_index = 1);

  std::string usage() const;
  const std::string& error() const { return error_; }
  bool helpRequested() const { return help_requested_; }

  std::string getString(const std::string& name) const;
  long getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getFlag(const std::string& name) const;
  bool provided(const std::string& name) const;
  /// Non-option positional arguments, in order.
  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  enum class Kind { kString, kInt, kDouble, kFlag };
  struct Option {
    Kind kind;
    std::string help;
    std::optional<std::string> default_value;
    std::optional<std::string> value;
  };

  bool fail(const std::string& message);
  const Option& lookup(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positionals_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace gol::cli
