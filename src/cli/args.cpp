#include "cli/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gol::cli {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::addString(const std::string& name, const std::string& help,
                          std::optional<std::string> default_value) {
  options_[name] = Option{Kind::kString, help, std::move(default_value), {}};
  order_.push_back(name);
}

void ArgParser::addInt(const std::string& name, const std::string& help,
                       std::optional<long> default_value) {
  options_[name] = Option{
      Kind::kInt, help,
      default_value ? std::optional(std::to_string(*default_value))
                    : std::nullopt,
      {}};
  order_.push_back(name);
}

void ArgParser::addDouble(const std::string& name, const std::string& help,
                          std::optional<double> default_value) {
  options_[name] = Option{
      Kind::kDouble, help,
      default_value ? std::optional(std::to_string(*default_value))
                    : std::nullopt,
      {}};
  order_.push_back(name);
}

void ArgParser::addFlag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::kFlag, help, std::string("0"), {}};
  order_.push_back(name);
}

bool ArgParser::fail(const std::string& message) {
  error_ = message;
  return false;
}

bool ArgParser::parse(int argc, const char* const* argv, int start_index) {
  for (int i = start_index; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    auto it = options_.find(name);
    if (it == options_.end()) return fail("unknown option --" + name);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      opt.value = "1";
      continue;
    }
    if (i + 1 >= argc) return fail("--" + name + " needs a value");
    const std::string value = argv[++i];
    if (opt.kind == Kind::kInt || opt.kind == Kind::kDouble) {
      char* end = nullptr;
      if (opt.kind == Kind::kInt) {
        std::strtol(value.c_str(), &end, 10);
      } else {
        std::strtod(value.c_str(), &end);
      }
      if (end == value.c_str() || *end != '\0')
        return fail("--" + name + " expects a number, got '" + value + "'");
    }
    opt.value = value;
  }
  for (const auto& [name, opt] : options_) {
    if (!opt.value && !opt.default_value)
      return fail("missing required option --" + name);
  }
  return true;
}

std::string ArgParser::usage() const {
  std::string out = "usage: " + program_ + " [options]\n";
  if (!description_.empty()) out += description_ + "\n";
  out += "options:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out += "  --" + name;
    if (opt.kind != Kind::kFlag) out += " <value>";
    out += "  " + opt.help;
    if (opt.default_value && opt.kind != Kind::kFlag)
      out += " (default: " + *opt.default_value + ")";
    out += "\n";
  }
  return out;
}

const ArgParser::Option& ArgParser::lookup(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end())
    throw std::logic_error("undeclared option --" + name);
  return it->second;
}

std::string ArgParser::getString(const std::string& name) const {
  const Option& opt = lookup(name);
  if (opt.value) return *opt.value;
  if (opt.default_value) return *opt.default_value;
  throw std::logic_error("option --" + name + " has no value");
}

long ArgParser::getInt(const std::string& name) const {
  return std::strtol(getString(name).c_str(), nullptr, 10);
}

double ArgParser::getDouble(const std::string& name) const {
  return std::strtod(getString(name).c_str(), nullptr);
}

bool ArgParser::getFlag(const std::string& name) const {
  return getString(name) == "1";
}

bool ArgParser::provided(const std::string& name) const {
  return lookup(name).value.has_value();
}

}  // namespace gol::cli
