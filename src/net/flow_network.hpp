// Fluid-flow network with progressive-filling max-min fair bandwidth sharing.
//
// Flows are fluid: each holds a remaining-bytes counter and a current rate.
// Whenever the flow set or any link capacity changes, rates are recomputed
// with the classic water-filling algorithm (respecting per-flow rate caps,
// which model device limits and TCP loss ceilings), and the next
// flow-completion event is (re)scheduled on the simulator.
//
// The recomputation is *incremental*: a change only re-water-fills the
// connected component of flows and links transitively reachable from the
// touched elements (flows connected by shared links). Rates in untouched
// components are provably unchanged by max-min fairness, so they are
// reused as-is. Debug builds cross-check every incremental result against
// a full recompute (see setRateCrossCheck).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace gol::net {

using FlowId = std::uint64_t;

struct FlowSpec {
  std::vector<Link*> path;  ///< Links traversed; flow is bound by each.
  double bytes = 0;         ///< Payload to move.
  double rate_cap_bps = std::numeric_limits<double>::infinity();
  std::function<void(FlowId)> on_complete;  ///< Fired when bytes hit zero.
};

class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulator& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  Link* createLink(std::string name, double capacity_bps);
  void setLinkCapacity(Link* link, double capacity_bps);

  FlowId startFlow(FlowSpec spec);
  /// Aborts a flow; returns bytes it had transferred (0 if unknown/finished).
  double abortFlow(FlowId id);
  /// Changes the per-flow rate cap (device throughput variation).
  void setFlowRateCap(FlowId id, double cap_bps);

  bool active(FlowId id) const { return flows_.count(id) != 0; }
  double flowRateBps(FlowId id) const;
  double remainingBytes(FlowId id) const;
  double transferredBytes(FlowId id) const;
  std::size_t activeFlowCount() const { return flows_.size(); }

  /// Instantaneous utilization of a link: sum of crossing flow rates over
  /// capacity. Returns 0 for an idle or infinite-capacity link.
  double linkUtilization(const Link* link) const;
  /// Sum of current flow rates crossing the link, in bps.
  double linkLoadBps(const Link* link) const;

  /// Connected components of the *active* flow set: flows sharing a link
  /// (transitively) are grouped together. Each group is sorted by FlowId
  /// and groups are ordered by their smallest member, so the result is
  /// deterministic. This is the sharding seam the metro-scale driver
  /// partitions along: two flows in different components provably cannot
  /// influence each other's max-min rates, so they may live on different
  /// shards without any synchronization.
  std::vector<std::vector<FlowId>> components();
  /// Number of connected components of the active flow set.
  std::size_t componentCount();

  /// Verifies every incremental rate update against a full water-fill over
  /// all flows and throws std::logic_error on divergence. Defaults to on in
  /// Debug (!NDEBUG) builds, off in Release; the fuzz suite forces it on.
  void setRateCrossCheck(bool on) { cross_check_ = on; }
  bool rateCrossCheck() const { return cross_check_; }

  sim::Simulator& simulator() { return sim_; }

 private:
  struct FlowState {
    std::vector<Link*> path;
    double remaining_bytes;
    double total_bytes;
    double rate_bps = 0;
    double cap_bps;
    std::function<void(FlowId)> on_complete;
    std::uint32_t visit_epoch = 0;  // scratch for component traversal
  };

  /// Moves every flow forward to the current simulator time.
  void advance();
  /// Incremental reschedule: re-water-fills only the connected component(s)
  /// reachable from `dirty_links` / `dirty_flow` (0 = none), then re-arms
  /// the completion event.
  void reschedule(const std::vector<const Link*>& dirty_links,
                  FlowId dirty_flow);
  /// Flows connected (via shared links, transitively) to the seeds, sorted.
  std::vector<FlowId> affectedFlows(const std::vector<const Link*>& seed_links,
                                    FlowId seed_flow);
  /// Progressive-filling max-min over exactly `ids` (sorted). `ids` must be
  /// closed under link sharing: every flow crossing a link of an `ids` flow
  /// is itself in `ids`.
  void waterFill(const std::vector<FlowId>& ids);
  void crossCheckRates();
  void scheduleCompletion();
  void completionEvent();

  void indexFlow(FlowId id, const FlowState& st);
  void unindexFlow(FlowId id, const FlowState& st);

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<FlowId, FlowState> flows_;  // ordered: determinism of iteration
  FlowId next_flow_id_ = 1;
  sim::Time last_advance_ = 0;
  sim::EventId pending_event_ = 0;
  bool cross_check_ =
#ifndef NDEBUG
      true;
#else
      false;
#endif

  // Per-link scratch, indexed by LinkId and validated by epoch stamps so a
  // reschedule touches only the links of the affected component (no O(L)
  // clears on the hot path).
  std::vector<std::vector<FlowId>> link_flows_;  // one entry per path hop
  std::vector<std::uint32_t> link_epoch_;
  std::vector<double> link_residual_;
  std::vector<int> link_count_;
  std::uint32_t epoch_ = 0;
};

}  // namespace gol::net
