// Fluid-flow network with progressive-filling max-min fair bandwidth sharing.
//
// Flows are fluid: each holds a remaining-bytes counter and a current rate.
// Whenever the flow set or any link capacity changes, all rates are
// recomputed with the classic water-filling algorithm (respecting per-flow
// rate caps, which model device limits and TCP loss ceilings), and the next
// flow-completion event is (re)scheduled on the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace gol::net {

using FlowId = std::uint64_t;

struct FlowSpec {
  std::vector<Link*> path;  ///< Links traversed; flow is bound by each.
  double bytes = 0;         ///< Payload to move.
  double rate_cap_bps = std::numeric_limits<double>::infinity();
  std::function<void(FlowId)> on_complete;  ///< Fired when bytes hit zero.
};

class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulator& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  Link* createLink(std::string name, double capacity_bps);
  void setLinkCapacity(Link* link, double capacity_bps);

  FlowId startFlow(FlowSpec spec);
  /// Aborts a flow; returns bytes it had transferred (0 if unknown/finished).
  double abortFlow(FlowId id);
  /// Changes the per-flow rate cap (device throughput variation).
  void setFlowRateCap(FlowId id, double cap_bps);

  bool active(FlowId id) const { return flows_.count(id) != 0; }
  double flowRateBps(FlowId id) const;
  double remainingBytes(FlowId id) const;
  double transferredBytes(FlowId id) const;
  std::size_t activeFlowCount() const { return flows_.size(); }

  /// Instantaneous utilization of a link: sum of crossing flow rates over
  /// capacity. Returns 0 for an idle or infinite-capacity link.
  double linkUtilization(const Link* link) const;
  /// Sum of current flow rates crossing the link, in bps.
  double linkLoadBps(const Link* link) const;

  sim::Simulator& simulator() { return sim_; }

 private:
  struct FlowState {
    std::vector<Link*> path;
    double remaining_bytes;
    double total_bytes;
    double rate_bps = 0;
    double cap_bps;
    std::function<void(FlowId)> on_complete;
  };

  /// Moves every flow forward to the current simulator time.
  void advance();
  /// Recomputes all flow rates (max-min) and reschedules completion.
  void reschedule();
  void computeRates();
  void completionEvent();

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<FlowId, FlowState> flows_;  // ordered: determinism of iteration
  FlowId next_flow_id_ = 1;
  sim::Time last_advance_ = 0;
  sim::EventId pending_event_ = 0;
};

}  // namespace gol::net
