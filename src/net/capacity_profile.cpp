#include "net/capacity_profile.hpp"

#include <algorithm>
#include <cmath>

#include "sim/units.hpp"

namespace gol::net {

DiurnalShape::DiurnalShape(std::array<double, 24> hourly) : hourly_(hourly) {}

double DiurnalShape::at(double tod_s) const {
  double h = std::fmod(tod_s / 3600.0, 24.0);
  if (h < 0) h += 24.0;
  const int lo = static_cast<int>(h) % 24;
  const int hi = (lo + 1) % 24;
  const double frac = h - std::floor(h);
  return hourly_[lo] * (1.0 - frac) + hourly_[hi] * frac;
}

double DiurnalShape::maxValue() const {
  return *std::max_element(hourly_.begin(), hourly_.end());
}

CapacityDriver::CapacityDriver(FlowNetwork& net, Link* link, Options opts,
                               sim::Rng rng)
    : net_(net), link_(link), opts_(opts), rng_(rng) {}

void CapacityDriver::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void CapacityDriver::tick() {
  if (!running_) return;
  // AR(1) around zero with stationary sd = noise_sd.
  const double innovation_sd =
      opts_.noise_sd * std::sqrt(1.0 - opts_.noise_phi * opts_.noise_phi);
  noise_state_ = opts_.noise_phi * noise_state_ +
                 rng_.normal(0.0, innovation_sd);
  double mult = 1.0 + noise_state_;
  if (opts_.diurnal != nullptr) {
    mult *= opts_.diurnal->at(opts_.day_offset_s + net_.simulator().now());
  }
  mult = std::max(mult, opts_.floor_fraction);
  last_multiplier_ = mult;
  net_.setLinkCapacity(link_, opts_.base_bps * mult);
  net_.simulator().scheduleIn(opts_.update_interval_s, [this] { tick(); });
}

}  // namespace gol::net
