// A transmission resource with finite, possibly time-varying capacity.
#pragma once

#include <cstdint>
#include <string>

namespace gol::net {

using LinkId = std::uint32_t;

/// A unidirectional capacity-constrained resource (ADSL downlink, an HSDPA
/// shared channel, a Wi-Fi BSS, a backhaul pipe...). Links are created and
/// owned by a FlowNetwork; capacity changes must go through
/// FlowNetwork::setLinkCapacity so flow rates are recomputed.
class Link {
 public:
  Link(LinkId id, std::string name, double capacity_bps)
      : id_(id), name_(std::move(name)), capacity_bps_(capacity_bps) {}

  LinkId id() const { return id_; }
  const std::string& name() const { return name_; }
  double capacityBps() const { return capacity_bps_; }

 private:
  friend class FlowNetwork;
  LinkId id_;
  std::string name_;
  double capacity_bps_;
};

}  // namespace gol::net
