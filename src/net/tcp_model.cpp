#include "net/tcp_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/units.hpp"

namespace gol::net {

double mathisCapBps(double rtt_s, double loss_rate, const TcpParams& params) {
  if (loss_rate <= 0.0) return std::numeric_limits<double>::infinity();
  if (rtt_s <= 0.0) return std::numeric_limits<double>::infinity();
  constexpr double kMathisC = 1.22;
  const double segs_per_rtt = kMathisC / std::sqrt(loss_rate);
  return segs_per_rtt * params.mss_bytes * sim::kBitsPerByte / rtt_s;
}

namespace {

// Number of RTTs spent in slow start before the congestion window covers the
// smaller of (a) the object and (b) the bandwidth-delay product, counting the
// time "lost" relative to transferring at the full fair rate from t=0.
double slowStartPenaltyS(double object_bytes, double rtt_s,
                         double fair_rate_bps, const TcpParams& params) {
  if (rtt_s <= 0 || object_bytes <= 0) return 0.0;
  const double init_window_bytes =
      static_cast<double>(params.initial_cwnd_segments) * params.mss_bytes;
  const double bdp_bytes = std::isinf(fair_rate_bps)
                               ? object_bytes
                               : fair_rate_bps / sim::kBitsPerByte * rtt_s;
  const double target = std::min(object_bytes, std::max(bdp_bytes,
                                                        init_window_bytes));
  if (target <= init_window_bytes) return rtt_s;  // one window round-trip
  const double doublings = std::log2(target / init_window_bytes);
  // During slow start each RTT delivers half of what full rate would; the
  // deficit is ~1 RTT per doubling minus the bytes actually moved.
  return rtt_s * (1.0 + 0.5 * doublings);
}

}  // namespace

double transferOverheadS(double object_bytes, double rtt_s,
                         double fair_rate_bps, const TcpParams& params) {
  return params.setup_rtts * rtt_s +
         slowStartPenaltyS(object_bytes, rtt_s, fair_rate_bps, params);
}

double warmTransferOverheadS(double object_bytes, double rtt_s,
                             double fair_rate_bps, const TcpParams& params) {
  return rtt_s +
         0.5 * slowStartPenaltyS(object_bytes, rtt_s, fair_rate_bps, params);
}

}  // namespace gol::net
