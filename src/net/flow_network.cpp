#include "net/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "sim/units.hpp"

namespace gol::net {

namespace {
constexpr double kDoneEpsilonBytes = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Link* FlowNetwork::createLink(std::string name, double capacity_bps) {
  if (capacity_bps < 0) throw std::invalid_argument("negative link capacity");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(std::make_unique<Link>(id, std::move(name), capacity_bps));
  return links_.back().get();
}

void FlowNetwork::setLinkCapacity(Link* link, double capacity_bps) {
  if (link == nullptr) throw std::invalid_argument("null link");
  if (capacity_bps < 0) throw std::invalid_argument("negative link capacity");
  if (link->capacity_bps_ == capacity_bps) return;
  advance();
  link->capacity_bps_ = capacity_bps;
  reschedule();
}

FlowId FlowNetwork::startFlow(FlowSpec spec) {
  if (spec.bytes < 0) throw std::invalid_argument("negative flow size");
  advance();
  const FlowId id = next_flow_id_++;
  FlowState st;
  st.path = std::move(spec.path);
  st.remaining_bytes = spec.bytes;
  st.total_bytes = spec.bytes;
  st.cap_bps = spec.rate_cap_bps;
  st.on_complete = std::move(spec.on_complete);
  flows_.emplace(id, std::move(st));
  reschedule();
  return id;
}

double FlowNetwork::abortFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  advance();
  const double transferred =
      it->second.total_bytes - it->second.remaining_bytes;
  flows_.erase(it);
  reschedule();
  return transferred;
}

void FlowNetwork::setFlowRateCap(FlowId id, double cap_bps) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  if (cap_bps < 0) throw std::invalid_argument("negative rate cap");
  advance();
  it->second.cap_bps = cap_bps;
  reschedule();
}

double FlowNetwork::flowRateBps(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate_bps;
}

double FlowNetwork::remainingBytes(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  // Account for time elapsed since the last advance without mutating state.
  const double dt = sim_.now() - last_advance_;
  return std::max(0.0, it->second.remaining_bytes -
                           it->second.rate_bps / sim::kBitsPerByte * dt);
}

double FlowNetwork::transferredBytes(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  return it->second.total_bytes - remainingBytes(id);
}

double FlowNetwork::linkUtilization(const Link* link) const {
  const double cap = link->capacityBps();
  if (cap <= 0 || std::isinf(cap)) return 0.0;
  return linkLoadBps(link) / cap;
}

double FlowNetwork::linkLoadBps(const Link* link) const {
  double load = 0;
  for (const auto& [id, st] : flows_) {
    for (const Link* l : st.path) {
      if (l == link) {
        load += st.rate_bps;
        break;
      }
    }
  }
  return load;
}

void FlowNetwork::advance() {
  const sim::Time now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0) {
    for (auto& [id, st] : flows_) {
      st.remaining_bytes -= st.rate_bps / sim::kBitsPerByte * dt;
      if (st.remaining_bytes < 0) st.remaining_bytes = 0;
    }
  }
  last_advance_ = now;
}

void FlowNetwork::computeRates() {
  // Progressive filling (water-filling) max-min fairness with per-flow caps.
  std::unordered_map<const Link*, double> residual;
  std::unordered_map<const Link*, int> unfrozen_count;
  std::unordered_set<FlowId> unfrozen;

  for (auto& [id, st] : flows_) {
    st.rate_bps = 0;
    unfrozen.insert(id);
    for (const Link* l : st.path) {
      residual.emplace(l, l->capacityBps());
      ++unfrozen_count[l];
    }
  }

  while (!unfrozen.empty()) {
    // Candidate level: the smallest of (a) any unfrozen flow's cap and
    // (b) any link's equal share among its unfrozen flows.
    double level = kInf;
    for (FlowId id : unfrozen) level = std::min(level, flows_[id].cap_bps);
    for (const auto& [l, res] : residual) {
      const int n = unfrozen_count[l];
      if (n > 0) level = std::min(level, std::max(0.0, res) / n);
    }
    if (std::isinf(level)) {
      // Every remaining flow is uncapped and crosses no finite link.
      for (FlowId id : unfrozen) flows_[id].rate_bps = kInf;
      break;
    }

    // Freeze flows bound at this level: capped flows first, then flows on
    // bottleneck links. At least one flow freezes per iteration.
    std::vector<FlowId> to_freeze;
    for (FlowId id : unfrozen) {
      const FlowState& st = flows_[id];
      bool bound = st.cap_bps <= level + 1e-12;
      if (!bound) {
        for (const Link* l : st.path) {
          const int n = unfrozen_count[l];
          if (n > 0 && std::max(0.0, residual[l]) / n <= level + 1e-12) {
            bound = true;
            break;
          }
        }
      }
      if (bound) to_freeze.push_back(id);
    }
    if (to_freeze.empty()) {
      // Numerical safety net: freeze everything at the level.
      to_freeze.assign(unfrozen.begin(), unfrozen.end());
    }
    for (FlowId id : to_freeze) {
      FlowState& st = flows_[id];
      st.rate_bps = std::min(level, st.cap_bps);
      for (const Link* l : st.path) {
        residual[l] -= st.rate_bps;
        --unfrozen_count[l];
      }
      unfrozen.erase(id);
    }
  }
}

void FlowNetwork::reschedule() {
  computeRates();
  if (pending_event_ != 0) {
    sim_.cancel(pending_event_);
    pending_event_ = 0;
  }
  double dt_min = kInf;
  for (const auto& [id, st] : flows_) {
    if (st.rate_bps <= 0) continue;
    if (st.remaining_bytes <= kDoneEpsilonBytes) {
      dt_min = 0;
      break;
    }
    const double dt =
        st.remaining_bytes * sim::kBitsPerByte /
        (std::isinf(st.rate_bps) ? kInf : st.rate_bps);
    dt_min = std::min(dt_min, std::isinf(st.rate_bps) ? 0.0 : dt);
  }
  if (!std::isinf(dt_min)) {
    if (dt_min > 0) {
      // Clamp to the simulator's floating-point time resolution: at large
      // timestamps, a dt below one ULP of `now` would re-fire the event at
      // the *same* instant without advancing any flow, spinning forever.
      // A few hundred ULPs costs sub-microsecond accuracy and guarantees
      // progress.
      const double min_dt = std::max(1e-12, sim_.now() * 1e-12);
      dt_min = std::max(dt_min, min_dt);
    }
    pending_event_ = sim_.scheduleIn(dt_min, [this] { completionEvent(); });
  }
}

void FlowNetwork::completionEvent() {
  pending_event_ = 0;
  advance();
  // Collect finished flows, remove them, recompute, then fire callbacks.
  // Callbacks may start new flows or abort others; by firing after the
  // network state is consistent we allow that re-entrancy.
  std::vector<std::pair<FlowId, std::function<void(FlowId)>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= kDoneEpsilonBytes ||
        std::isinf(it->second.rate_bps)) {
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  for (auto& [id, cb] : done) {
    if (cb) cb(id);
  }
}

}  // namespace gol::net
