#include "net/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/units.hpp"

namespace gol::net {

namespace {
constexpr double kDoneEpsilonBytes = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();

bool ratesClose(double a, double b) {
  if (std::isinf(a) || std::isinf(b)) return std::isinf(a) == std::isinf(b);
  return std::abs(a - b) <= 1e-6 * std::max({1.0, std::abs(a), std::abs(b)});
}
}  // namespace

Link* FlowNetwork::createLink(std::string name, double capacity_bps) {
  if (capacity_bps < 0) throw std::invalid_argument("negative link capacity");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(std::make_unique<Link>(id, std::move(name), capacity_bps));
  link_flows_.emplace_back();
  link_epoch_.push_back(0);
  link_residual_.push_back(0);
  link_count_.push_back(0);
  return links_.back().get();
}

void FlowNetwork::setLinkCapacity(Link* link, double capacity_bps) {
  if (link == nullptr) throw std::invalid_argument("null link");
  if (capacity_bps < 0) throw std::invalid_argument("negative link capacity");
  if (link->capacity_bps_ == capacity_bps) return;
  advance();
  link->capacity_bps_ = capacity_bps;
  reschedule({link}, 0);
}

FlowId FlowNetwork::startFlow(FlowSpec spec) {
  if (spec.bytes < 0) throw std::invalid_argument("negative flow size");
  advance();
  const FlowId id = next_flow_id_++;
  FlowState st;
  st.path = std::move(spec.path);
  st.remaining_bytes = spec.bytes;
  st.total_bytes = spec.bytes;
  st.cap_bps = spec.rate_cap_bps;
  st.on_complete = std::move(spec.on_complete);
  const auto [it, inserted] = flows_.emplace(id, std::move(st));
  indexFlow(id, it->second);
  reschedule({}, id);
  return id;
}

double FlowNetwork::abortFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  advance();
  const double transferred =
      it->second.total_bytes - it->second.remaining_bytes;
  std::vector<const Link*> dirty(it->second.path.begin(),
                                 it->second.path.end());
  unindexFlow(id, it->second);
  flows_.erase(it);
  reschedule(dirty, 0);
  return transferred;
}

void FlowNetwork::setFlowRateCap(FlowId id, double cap_bps) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  if (cap_bps < 0) throw std::invalid_argument("negative rate cap");
  advance();
  it->second.cap_bps = cap_bps;
  reschedule({}, id);
}

double FlowNetwork::flowRateBps(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate_bps;
}

double FlowNetwork::remainingBytes(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  // Account for time elapsed since the last advance without mutating state.
  const double dt = sim_.now() - last_advance_;
  return std::max(0.0, it->second.remaining_bytes -
                           it->second.rate_bps / sim::kBitsPerByte * dt);
}

double FlowNetwork::transferredBytes(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  return it->second.total_bytes - remainingBytes(id);
}

double FlowNetwork::linkUtilization(const Link* link) const {
  const double cap = link->capacityBps();
  if (cap <= 0 || std::isinf(cap)) return 0.0;
  return linkLoadBps(link) / cap;
}

double FlowNetwork::linkLoadBps(const Link* link) const {
  double load = 0;
  for (const FlowId id : link_flows_[link->id()]) {
    // One entry per path hop; a flow crossing the link twice contributes
    // its rate twice, matching the double capacity it consumes.
    const auto it = flows_.find(id);
    if (it != flows_.end()) load += it->second.rate_bps;
  }
  return load;
}

void FlowNetwork::indexFlow(FlowId id, const FlowState& st) {
  for (const Link* l : st.path) link_flows_[l->id()].push_back(id);
}

void FlowNetwork::unindexFlow(FlowId id, const FlowState& st) {
  for (const Link* l : st.path) {
    auto& v = link_flows_[l->id()];
    // Remove one occurrence per hop (paths may cross a link repeatedly).
    const auto pos = std::find(v.begin(), v.end(), id);
    if (pos != v.end()) {
      *pos = v.back();
      v.pop_back();
    }
  }
}

void FlowNetwork::advance() {
  const sim::Time now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0) {
    for (auto& [id, st] : flows_) {
      st.remaining_bytes -= st.rate_bps / sim::kBitsPerByte * dt;
      if (st.remaining_bytes < 0) st.remaining_bytes = 0;
    }
  }
  last_advance_ = now;
}

std::vector<std::vector<FlowId>> FlowNetwork::components() {
  // One affectedFlows()-style traversal per unvisited flow. The flows_ map
  // is id-ordered, so each component is discovered from (and led by) its
  // smallest flow id and the group order is deterministic.
  std::vector<std::vector<FlowId>> out;
  ++epoch_;
  const std::uint32_t pass = epoch_;
  std::vector<const Link*> frontier;
  for (auto& [seed_id, seed_st] : flows_) {
    if (seed_st.visit_epoch == pass) continue;
    std::vector<FlowId> comp;
    const auto visitFlow = [&](FlowId id, FlowState& st) {
      if (st.visit_epoch == pass) return;
      st.visit_epoch = pass;
      comp.push_back(id);
      for (const Link* l : st.path) {
        auto& stamp = link_epoch_[l->id()];
        if (stamp != pass) {
          stamp = pass;
          frontier.push_back(l);
        }
      }
    };
    visitFlow(seed_id, seed_st);
    while (!frontier.empty()) {
      const Link* l = frontier.back();
      frontier.pop_back();
      for (const FlowId id : link_flows_[l->id()]) {
        visitFlow(id, flows_.find(id)->second);
      }
    }
    std::sort(comp.begin(), comp.end());
    out.push_back(std::move(comp));
  }
  return out;
}

std::size_t FlowNetwork::componentCount() { return components().size(); }

std::vector<FlowId> FlowNetwork::affectedFlows(
    const std::vector<const Link*>& seed_links, FlowId seed_flow) {
  ++epoch_;
  std::vector<FlowId> out;
  std::vector<const Link*> frontier;

  const auto visitLink = [&](const Link* l) {
    auto& stamp = link_epoch_[l->id()];
    if (stamp != epoch_) {
      stamp = epoch_;
      frontier.push_back(l);
    }
  };
  const auto visitFlow = [&](FlowId id, FlowState& st) {
    if (st.visit_epoch == epoch_) return;
    st.visit_epoch = epoch_;
    out.push_back(id);
    for (const Link* l : st.path) visitLink(l);
  };

  for (const Link* l : seed_links) visitLink(l);
  if (seed_flow != 0) {
    const auto it = flows_.find(seed_flow);
    if (it != flows_.end()) visitFlow(seed_flow, it->second);
  }
  while (!frontier.empty()) {
    const Link* l = frontier.back();
    frontier.pop_back();
    for (const FlowId id : link_flows_[l->id()]) {
      visitFlow(id, flows_.find(id)->second);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlowNetwork::waterFill(const std::vector<FlowId>& ids) {
  if (ids.empty()) return;
  ++epoch_;

  // Gather the component's flows and (unique) links; reset rates and
  // initialize residual capacity / unfrozen counts in the epoch scratch.
  std::vector<FlowState*> fl;
  fl.reserve(ids.size());
  std::vector<const Link*> comp_links;
  for (const FlowId id : ids) {
    FlowState& st = flows_.find(id)->second;
    st.rate_bps = 0;
    fl.push_back(&st);
    for (const Link* l : st.path) {
      const LinkId li = l->id();
      if (link_epoch_[li] != epoch_) {
        link_epoch_[li] = epoch_;
        link_residual_[li] = l->capacityBps();
        link_count_[li] = 0;
        comp_links.push_back(l);
      }
      ++link_count_[li];
    }
  }

  std::vector<char> frozen(ids.size(), 0);
  std::vector<std::size_t> to_freeze;
  std::size_t remaining = ids.size();
  while (remaining > 0) {
    // Candidate level: the smallest of (a) any unfrozen flow's cap and
    // (b) any link's equal share among its unfrozen flows.
    double level = kInf;
    for (std::size_t i = 0; i < fl.size(); ++i) {
      if (!frozen[i]) level = std::min(level, fl[i]->cap_bps);
    }
    for (const Link* l : comp_links) {
      const int n = link_count_[l->id()];
      if (n > 0) {
        level = std::min(level,
                         std::max(0.0, link_residual_[l->id()]) / n);
      }
    }
    if (std::isinf(level)) {
      // Every remaining flow is uncapped and crosses no finite link.
      for (std::size_t i = 0; i < fl.size(); ++i) {
        if (!frozen[i]) fl[i]->rate_bps = kInf;
      }
      break;
    }

    // Freeze flows bound at this level: capped flows, and flows on
    // bottleneck links. Decisions use the pre-pass residuals (collected
    // first, applied after) so the outcome is order-independent. At least
    // one flow freezes per iteration.
    to_freeze.clear();
    for (std::size_t i = 0; i < fl.size(); ++i) {
      if (frozen[i]) continue;
      const FlowState& st = *fl[i];
      bool bound = st.cap_bps <= level + 1e-12;
      if (!bound) {
        for (const Link* l : st.path) {
          const int n = link_count_[l->id()];
          if (n > 0 &&
              std::max(0.0, link_residual_[l->id()]) / n <= level + 1e-12) {
            bound = true;
            break;
          }
        }
      }
      if (bound) to_freeze.push_back(i);
    }
    if (to_freeze.empty()) {
      // Numerical safety net: freeze everything at the level.
      for (std::size_t i = 0; i < fl.size(); ++i) {
        if (!frozen[i]) to_freeze.push_back(i);
      }
    }
    for (const std::size_t i : to_freeze) {
      FlowState& st = *fl[i];
      st.rate_bps = std::min(level, st.cap_bps);
      for (const Link* l : st.path) {
        link_residual_[l->id()] -= st.rate_bps;
        --link_count_[l->id()];
      }
      frozen[i] = 1;
      --remaining;
    }
  }
}

void FlowNetwork::crossCheckRates() {
  std::vector<std::pair<FlowId, double>> incremental;
  std::vector<FlowId> all;
  incremental.reserve(flows_.size());
  all.reserve(flows_.size());
  for (const auto& [id, st] : flows_) {
    incremental.emplace_back(id, st.rate_bps);
    all.push_back(id);
  }
  waterFill(all);
  for (const auto& [id, rate] : incremental) {
    const double full = flows_.find(id)->second.rate_bps;
    if (!ratesClose(rate, full)) {
      std::ostringstream msg;
      msg << "FlowNetwork incremental/full divergence: flow " << id
          << " incremental=" << rate << " full=" << full;
      throw std::logic_error(msg.str());
    }
  }
  // Keep the incremental values so behaviour is identical with the check
  // on or off (the two can differ by harmless last-ulp rounding).
  for (const auto& [id, rate] : incremental) {
    flows_.find(id)->second.rate_bps = rate;
  }
}

void FlowNetwork::reschedule(const std::vector<const Link*>& dirty_links,
                             FlowId dirty_flow) {
  waterFill(affectedFlows(dirty_links, dirty_flow));
  if (cross_check_) crossCheckRates();
  scheduleCompletion();
}

void FlowNetwork::scheduleCompletion() {
  if (pending_event_ != 0) {
    sim_.cancel(pending_event_);
    pending_event_ = 0;
  }
  double dt_min = kInf;
  for (const auto& [id, st] : flows_) {
    if (st.rate_bps <= 0) continue;
    if (st.remaining_bytes <= kDoneEpsilonBytes) {
      dt_min = 0;
      break;
    }
    const double dt =
        st.remaining_bytes * sim::kBitsPerByte /
        (std::isinf(st.rate_bps) ? kInf : st.rate_bps);
    dt_min = std::min(dt_min, std::isinf(st.rate_bps) ? 0.0 : dt);
  }
  if (!std::isinf(dt_min)) {
    if (dt_min > 0) {
      // Clamp to the simulator's floating-point time resolution: at large
      // timestamps, a dt below one ULP of `now` would re-fire the event at
      // the *same* instant without advancing any flow, spinning forever.
      // A few hundred ULPs costs sub-microsecond accuracy and guarantees
      // progress.
      const double min_dt = std::max(1e-12, sim_.now() * 1e-12);
      dt_min = std::max(dt_min, min_dt);
    }
    pending_event_ = sim_.scheduleIn(dt_min, [this] { completionEvent(); });
  }
}

void FlowNetwork::completionEvent() {
  pending_event_ = 0;
  advance();
  // Collect finished flows, remove them, recompute, then fire callbacks.
  // Callbacks may start new flows or abort others; by firing after the
  // network state is consistent we allow that re-entrancy.
  std::vector<std::pair<FlowId, std::function<void(FlowId)>>> done;
  std::vector<const Link*> dirty;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= kDoneEpsilonBytes ||
        std::isinf(it->second.rate_bps)) {
      done.emplace_back(it->first, std::move(it->second.on_complete));
      dirty.insert(dirty.end(), it->second.path.begin(),
                   it->second.path.end());
      unindexFlow(it->first, it->second);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule(dirty, 0);
  for (auto& [id, cb] : done) {
    if (cb) cb(id);
  }
}

}  // namespace gol::net
