// An end-to-end path description: the links crossed plus path-level
// properties (RTT, loss) that the TCP model consumes.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "net/link.hpp"

namespace gol::net {

struct NetPath {
  std::string name;
  std::vector<Link*> links;
  double rtt_s = 0.05;       ///< Round-trip time, seconds.
  double loss_rate = 0.0;    ///< Packet loss probability seen by TCP.
  /// Extra rate ceiling from the endpoint itself (e.g. a device's radio
  /// category), applied on top of link sharing. Infinity when absent.
  double endpoint_cap_bps = std::numeric_limits<double>::infinity();
};

}  // namespace gol::net
