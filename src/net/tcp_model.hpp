// Analytic TCP behaviour model.
//
// The fluid simulator moves bytes at max-min fair rates; TCP dynamics enter
// in two places:
//   1. a steady-state rate ceiling under loss (Mathis et al. formula), and
//   2. a per-object latency overhead for connection setup and slow-start,
//      which is what makes short sequential HLS segment fetches markedly
//      slower than line rate — the effect behind the paper's Fig 6 ADSL
//      baselines (a 2 Mbps line delivering a 200 kbps-encoded 200 s video
//      in 41 s rather than the ideal 20 s).
#pragma once

#include <cstddef>

namespace gol::net {

struct TcpParams {
  double mss_bytes = 1460;
  int initial_cwnd_segments = 10;  ///< RFC 6928 initial window.
  /// Handshake (SYN, SYN-ACK) plus HTTP request serialization, in RTTs.
  double setup_rtts = 2.0;
  /// Fraction of nominal link rate usable as goodput (header/ACK overhead).
  double efficiency = 0.95;
};

/// Steady-state throughput ceiling under random loss `p` (Mathis formula):
///   rate <= MSS / RTT * C / sqrt(p),  C ~= 1.22.
/// Returns +infinity when p == 0.
double mathisCapBps(double rtt_s, double loss_rate,
                    const TcpParams& params = {});

/// Latency overhead (seconds) paid before/while a fresh object transfer
/// reaches the fair-share rate: connection/request setup plus the slow-start
/// ramp. `fair_rate_bps` bounds how many doublings are needed.
double transferOverheadS(double object_bytes, double rtt_s,
                         double fair_rate_bps, const TcpParams& params = {});

/// Overhead for a request reusing a warm connection (no handshake, window
/// partially retained): roughly one RTT for the request plus a shallow ramp.
double warmTransferOverheadS(double object_bytes, double rtt_s,
                             double fair_rate_bps,
                             const TcpParams& params = {});

}  // namespace gol::net
