// Time-varying link capacity: diurnal shaping plus AR(1) short-term noise.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "net/flow_network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace gol::net {

/// A 24-hour multiplier curve, linearly interpolated between hourly anchors.
/// Values are unitless multipliers applied to a base capacity.
class DiurnalShape {
 public:
  explicit DiurnalShape(std::array<double, 24> hourly);
  /// Multiplier at time-of-day `tod_s` seconds (wraps modulo 24 h).
  double at(double tod_s) const;
  double maxValue() const;

 private:
  std::array<double, 24> hourly_;
};

/// Drives a link's capacity over simulated time:
///   capacity(t) = base * diurnal(t) * noise(t)
/// where noise is a mean-one AR(1) process updated every `update_interval_s`.
/// Models the paper's observation that per-device cellular throughput varies
/// with hour of day and shows short-term variability (Sec. 3, Fig 4).
class CapacityDriver {
 public:
  struct Options {
    double base_bps = 0;
    double update_interval_s = 5.0;
    double noise_sd = 0.0;     ///< Stationary sd of the mean-one AR(1) noise.
    double noise_phi = 0.8;    ///< AR(1) persistence in [0, 1).
    double floor_fraction = 0.05;  ///< Capacity never drops below this.
    const DiurnalShape* diurnal = nullptr;  ///< Optional; not owned.
    double day_offset_s = 0.0;  ///< Simulation t=0 maps to this time-of-day.
  };

  CapacityDriver(FlowNetwork& net, Link* link, Options opts, sim::Rng rng);

  /// Begins scheduling periodic capacity updates.
  void start();
  /// Stops future updates (already-queued update still fires harmlessly).
  void stop() { running_ = false; }
  double currentMultiplier() const { return last_multiplier_; }

 private:
  void tick();

  FlowNetwork& net_;
  Link* link_;
  Options opts_;
  sim::Rng rng_;
  double noise_state_ = 0.0;  ///< Deviation from 1.0.
  double last_multiplier_ = 1.0;
  bool running_ = false;
};

}  // namespace gol::net
