// HLS playout model: given when each segment finished downloading, derive
// the user-visible metrics the paper reports — startup (pre-buffering)
// delay and playback stalls. The pre-buffer amount is application dependent
// (Sec. 4.1), so it is a parameter swept by the Fig 7 experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gol::hls {

struct PlayoutResult {
  /// When playback starts: the moment the pre-buffer is filled.
  double startup_delay_s = 0;
  /// Total time the playhead was starved after starting.
  double total_stall_s = 0;
  std::size_t stall_events = 0;
  /// When the final segment's playback completes.
  double playback_end_s = 0;
};

/// `arrival_s[i]` is the download-completion time of segment i (relative to
/// the initial request, monotonically usable in any order); `duration_s[i]`
/// its media duration. Playback begins once the first `prebuffer_segments`
/// have all arrived and then consumes segments in order at real-time speed,
/// stalling whenever the next segment has not arrived.
///
/// Telemetry goes to `registry` (nullptr means Registry::global()):
/// `gol.hls.playbacks` / `gol.hls.stall_events` / `gol.hls.stall_seconds`
/// counters, the `gol.hls.buffer_level_segments` gauge (downloaded-not-yet-
/// played segments when the last one starts playing), and a
/// `gol.hls.buffer_level` histogram sampled at every segment boundary.
PlayoutResult analyzePlayout(const std::vector<double>& arrival_s,
                             const std::vector<double>& duration_s,
                             std::size_t prebuffer_segments,
                             telemetry::Registry* registry = nullptr);

/// Pre-buffer expressed as a fraction of the video (the paper sweeps 20 %
/// to 100 % of the video length): number of whole segments covering
/// `fraction` of the total duration, at least 1.
std::size_t prebufferSegmentsForFraction(const std::vector<double>& duration_s,
                                         double fraction);

}  // namespace gol::hls
