#include "hls/segmenter.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/units.hpp"

namespace gol::hls {

double SegmentedVideo::totalBytes() const {
  double total = 0;
  for (double b : segment_bytes) total += b;
  return total;
}

SegmentedVideo segmentVideo(const VideoSpec& spec) {
  if (spec.duration_s <= 0 || spec.segment_s <= 0 || spec.bitrate_bps <= 0)
    throw std::invalid_argument("segmentVideo: positive spec required");
  SegmentedVideo out;
  out.playlist.target_duration_s = spec.segment_s;
  double remaining = spec.duration_s;
  int index = 0;
  while (remaining > 1e-9) {
    const double dur = std::min(spec.segment_s, remaining);
    Segment seg;
    seg.uri = spec.base_uri + std::to_string(index) + ".ts";
    seg.duration_s = dur;
    out.playlist.segments.push_back(seg);
    out.segment_bytes.push_back(dur * spec.bitrate_bps / sim::kBitsPerByte);
    remaining -= dur;
    ++index;
  }
  out.playlist.ended = true;
  return out;
}

std::vector<double> paperVideoQualitiesBps() {
  return {200e3, 311e3, 484e3, 738e3};
}

MasterPlaylist masterForQualities(const std::vector<double>& qualities_bps,
                                  const std::string& base_uri) {
  MasterPlaylist master;
  for (std::size_t i = 0; i < qualities_bps.size(); ++i) {
    Variant v;
    v.uri = base_uri + std::to_string(i + 1) + ".m3u8";
    v.bandwidth_bps = static_cast<long>(qualities_bps[i]);
    master.variants.push_back(std::move(v));
  }
  return master;
}

}  // namespace gol::hls
