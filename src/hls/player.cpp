#include "hls/player.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::hls {

PlayoutResult analyzePlayout(const std::vector<double>& arrival_s,
                             const std::vector<double>& duration_s,
                             std::size_t prebuffer_segments,
                             telemetry::Registry* registry) {
  if (arrival_s.size() != duration_s.size())
    throw std::invalid_argument("analyzePlayout: size mismatch");
  PlayoutResult res;
  if (arrival_s.empty()) return res;
  prebuffer_segments = std::clamp<std::size_t>(prebuffer_segments, 1,
                                               arrival_s.size());

  telemetry::Registry& reg =
      registry ? *registry : telemetry::Registry::global();
  telemetry::Counter& stalls = reg.counter("gol.hls.stall_events");
  telemetry::Counter& stall_s = reg.counter("gol.hls.stall_seconds");
  telemetry::Gauge& buffer_gauge = reg.gauge("gol.hls.buffer_level_segments");
  telemetry::Histogram& buffer_hist = reg.histogram(
      "gol.hls.buffer_level", {0, 1, 2, 4, 8, 16, 32, 64, 128});
  reg.counter("gol.hls.playbacks").inc();

  // Startup: all pre-buffered segments present.
  res.startup_delay_s =
      *std::max_element(arrival_s.begin(),
                        arrival_s.begin() + static_cast<long>(prebuffer_segments));

  // Sorted arrivals let the loop track buffer occupancy (downloaded but not
  // yet played) with one advancing cursor instead of a rescan per segment.
  std::vector<double> sorted_arrivals = arrival_s;
  std::sort(sorted_arrivals.begin(), sorted_arrivals.end());
  std::size_t arrived = 0;

  // Playout: segment i is needed at play_clock; stall if not yet arrived.
  double clock = res.startup_delay_s;
  for (std::size_t i = 0; i < arrival_s.size(); ++i) {
    if (arrival_s[i] > clock) {
      res.total_stall_s += arrival_s[i] - clock;
      ++res.stall_events;
      stalls.inc();
      stall_s.inc(arrival_s[i] - clock);
      clock = arrival_s[i];
    }
    while (arrived < sorted_arrivals.size() &&
           sorted_arrivals[arrived] <= clock) {
      ++arrived;
    }
    const double buffered = static_cast<double>(arrived - (i + 1) + 1);
    buffer_gauge.set(buffered);
    buffer_hist.observe(buffered);
    clock += duration_s[i];
  }
  res.playback_end_s = clock;
  return res;
}

std::size_t prebufferSegmentsForFraction(const std::vector<double>& duration_s,
                                         double fraction) {
  if (duration_s.empty()) return 1;
  double total = 0;
  for (double d : duration_s) total += d;
  const double target = total * std::clamp(fraction, 0.0, 1.0);
  double acc = 0;
  for (std::size_t i = 0; i < duration_s.size(); ++i) {
    acc += duration_s[i];
    if (acc >= target - 1e-9) return i + 1;
  }
  return duration_s.size();
}

}  // namespace gol::hls
