#include "hls/player.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::hls {

PlayoutResult analyzePlayout(const std::vector<double>& arrival_s,
                             const std::vector<double>& duration_s,
                             std::size_t prebuffer_segments) {
  if (arrival_s.size() != duration_s.size())
    throw std::invalid_argument("analyzePlayout: size mismatch");
  PlayoutResult res;
  if (arrival_s.empty()) return res;
  prebuffer_segments = std::clamp<std::size_t>(prebuffer_segments, 1,
                                               arrival_s.size());

  // Startup: all pre-buffered segments present.
  res.startup_delay_s =
      *std::max_element(arrival_s.begin(),
                        arrival_s.begin() + static_cast<long>(prebuffer_segments));

  // Playout: segment i is needed at play_clock; stall if not yet arrived.
  double clock = res.startup_delay_s;
  for (std::size_t i = 0; i < arrival_s.size(); ++i) {
    if (arrival_s[i] > clock) {
      res.total_stall_s += arrival_s[i] - clock;
      ++res.stall_events;
      clock = arrival_s[i];
    }
    clock += duration_s[i];
  }
  res.playback_end_s = clock;
  return res;
}

std::size_t prebufferSegmentsForFraction(const std::vector<double>& duration_s,
                                         double fraction) {
  if (duration_s.empty()) return 1;
  double total = 0;
  for (double d : duration_s) total += d;
  const double target = total * std::clamp(fraction, 0.0, 1.0);
  double acc = 0;
  for (std::size_t i = 0; i < duration_s.size(); ++i) {
    acc += duration_s[i];
    if (acc >= target - 1e-9) return i + 1;
  }
  return duration_s.size();
}

}  // namespace gol::hls
