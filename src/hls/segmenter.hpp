// Builds the HLS representation of a video: segment sizes and playlists.
// Mirrors the paper's Fig 6 setup: Apple's "bipbop" sample layout, 10 s
// segments, 200 s duration, qualities Q1..Q4 = 200/311/484/738 kbps.
#pragma once

#include <string>
#include <vector>

#include "hls/playlist.hpp"

namespace gol::hls {

struct VideoSpec {
  double duration_s = 200;     ///< Paper: YouTube median video length.
  double segment_s = 10;       ///< Paper: Apple default segmentation.
  double bitrate_bps = 200e3;  ///< Encoded bitrate of the variant.
  std::string base_uri = "seg";
};

struct SegmentedVideo {
  MediaPlaylist playlist;
  std::vector<double> segment_bytes;  ///< Parallel to playlist.segments.

  double totalBytes() const;
};

/// Splits the video into ceil(duration/segment) segments; the final segment
/// carries the remainder. Sizes are duration * bitrate / 8.
SegmentedVideo segmentVideo(const VideoSpec& spec);

/// The paper's four tested qualities (Sec. 5.1), in bps.
std::vector<double> paperVideoQualitiesBps();

/// Builds a master playlist exposing one variant per quality.
MasterPlaylist masterForQualities(const std::vector<double>& qualities_bps,
                                  const std::string& base_uri = "quality");

}  // namespace gol::hls
