// Extended-M3U (m3u8) playlists, per Apple's HTTP Live Streaming draft the
// paper builds on (draft-pantos-http-live-streaming). Supports the subset
// HLS players need: master playlists with #EXT-X-STREAM-INF variants and
// media playlists with #EXTINF segments.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace gol::hls {

struct Variant {
  std::string uri;
  long bandwidth_bps = 0;      ///< From #EXT-X-STREAM-INF BANDWIDTH=.
  std::string resolution;      ///< Optional RESOLUTION= attribute, verbatim.
  int program_id = 1;
};

struct MasterPlaylist {
  std::vector<Variant> variants;

  std::string serialize() const;
  /// Variant with the highest bandwidth not exceeding `max_bps` (falls back
  /// to the lowest when all exceed it). Returns nullopt when empty.
  std::optional<Variant> pickVariant(double max_bps) const;
};

struct Segment {
  std::string uri;
  double duration_s = 0;  ///< From #EXTINF.
};

struct MediaPlaylist {
  int version = 3;
  double target_duration_s = 10;  ///< #EXT-X-TARGETDURATION.
  long media_sequence = 0;
  bool ended = true;              ///< #EXT-X-ENDLIST present (VoD).
  std::vector<Segment> segments;

  std::string serialize() const;
  double totalDurationS() const;
};

enum class PlaylistKind { kMaster, kMedia, kInvalid };

/// Cheap classification: master playlists contain #EXT-X-STREAM-INF.
PlaylistKind classify(const std::string& text);

/// Parsers return nullopt on malformed input (missing #EXTM3U, bad tags).
std::optional<MasterPlaylist> parseMaster(const std::string& text);
std::optional<MediaPlaylist> parseMedia(const std::string& text);

}  // namespace gol::hls
