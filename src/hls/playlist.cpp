#include "hls/playlist.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>

namespace gol::hls {

namespace {

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Parses "KEY=VALUE,KEY=VALUE" attribute lists (values may be quoted).
std::optional<std::string> attribute(const std::string& attrs,
                                     const std::string& key) {
  std::size_t pos = 0;
  while (pos < attrs.size()) {
    const std::size_t eq = attrs.find('=', pos);
    if (eq == std::string::npos) return std::nullopt;
    const std::string name = attrs.substr(pos, eq - pos);
    std::size_t value_end;
    std::string value;
    if (eq + 1 < attrs.size() && attrs[eq + 1] == '"') {
      value_end = attrs.find('"', eq + 2);
      if (value_end == std::string::npos) return std::nullopt;
      value = attrs.substr(eq + 2, value_end - eq - 2);
      value_end = attrs.find(',', value_end);
    } else {
      value_end = attrs.find(',', eq + 1);
      value = attrs.substr(eq + 1, value_end == std::string::npos
                                       ? std::string::npos
                                       : value_end - eq - 1);
    }
    if (name == key) return value;
    if (value_end == std::string::npos) break;
    pos = value_end + 1;
  }
  return std::nullopt;
}

}  // namespace

PlaylistKind classify(const std::string& text) {
  if (text.rfind("#EXTM3U", 0) != 0) return PlaylistKind::kInvalid;
  if (text.find("#EXT-X-STREAM-INF") != std::string::npos)
    return PlaylistKind::kMaster;
  return PlaylistKind::kMedia;
}

std::string MasterPlaylist::serialize() const {
  std::string out = "#EXTM3U\n";
  for (const auto& v : variants) {
    out += "#EXT-X-STREAM-INF:PROGRAM-ID=" + std::to_string(v.program_id) +
           ",BANDWIDTH=" + std::to_string(v.bandwidth_bps);
    if (!v.resolution.empty()) out += ",RESOLUTION=" + v.resolution;
    out += "\n" + v.uri + "\n";
  }
  return out;
}

std::optional<Variant> MasterPlaylist::pickVariant(double max_bps) const {
  if (variants.empty()) return std::nullopt;
  const Variant* best = nullptr;
  const Variant* lowest = &variants.front();
  for (const auto& v : variants) {
    if (v.bandwidth_bps < lowest->bandwidth_bps) lowest = &v;
    if (static_cast<double>(v.bandwidth_bps) <= max_bps &&
        (best == nullptr || v.bandwidth_bps > best->bandwidth_bps)) {
      best = &v;
    }
  }
  return best != nullptr ? *best : *lowest;
}

std::string MediaPlaylist::serialize() const {
  std::string out = "#EXTM3U\n";
  out += "#EXT-X-VERSION:" + std::to_string(version) + "\n";
  out += "#EXT-X-TARGETDURATION:" +
         std::to_string(static_cast<long>(target_duration_s + 0.999)) + "\n";
  out += "#EXT-X-MEDIA-SEQUENCE:" + std::to_string(media_sequence) + "\n";
  char buf[64];
  for (const auto& s : segments) {
    std::snprintf(buf, sizeof buf, "#EXTINF:%.3f,\n", s.duration_s);
    out += buf;
    out += s.uri + "\n";
  }
  if (ended) out += "#EXT-X-ENDLIST\n";
  return out;
}

double MediaPlaylist::totalDurationS() const {
  double total = 0;
  for (const auto& s : segments) total += s.duration_s;
  return total;
}

std::optional<MasterPlaylist> parseMaster(const std::string& text) {
  if (classify(text) != PlaylistKind::kMaster) return std::nullopt;
  MasterPlaylist out;
  const auto lines = splitLines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!startsWith(lines[i], "#EXT-X-STREAM-INF:")) continue;
    const std::string attrs = lines[i].substr(18);
    Variant v;
    if (const auto bw = attribute(attrs, "BANDWIDTH")) {
      long value = 0;
      std::from_chars(bw->data(), bw->data() + bw->size(), value);
      v.bandwidth_bps = value;
    } else {
      return std::nullopt;  // BANDWIDTH is mandatory per the draft
    }
    if (const auto res = attribute(attrs, "RESOLUTION")) v.resolution = *res;
    if (const auto pid = attribute(attrs, "PROGRAM-ID")) {
      int value = 1;
      std::from_chars(pid->data(), pid->data() + pid->size(), value);
      v.program_id = value;
    }
    // The URI is the next non-comment line.
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      if (lines[j].empty() || lines[j][0] == '#') continue;
      v.uri = lines[j];
      break;
    }
    if (v.uri.empty()) return std::nullopt;
    out.variants.push_back(std::move(v));
  }
  return out;
}

std::optional<MediaPlaylist> parseMedia(const std::string& text) {
  if (classify(text) != PlaylistKind::kMedia) return std::nullopt;
  MediaPlaylist out;
  out.ended = false;
  const auto lines = splitLines(text);
  bool has_pending = false;
  double pending_duration = 0;
  for (const auto& line : lines) {
    if (startsWith(line, "#EXT-X-TARGETDURATION:")) {
      out.target_duration_s = std::atof(line.c_str() + 22);
    } else if (startsWith(line, "#EXT-X-MEDIA-SEQUENCE:")) {
      out.media_sequence = std::atol(line.c_str() + 22);
    } else if (startsWith(line, "#EXT-X-VERSION:")) {
      out.version = std::atoi(line.c_str() + 15);
    } else if (startsWith(line, "#EXTINF:")) {
      pending_duration = std::atof(line.c_str() + 8);
      has_pending = true;
    } else if (startsWith(line, "#EXT-X-ENDLIST")) {
      out.ended = true;
    } else if (!line.empty() && line[0] != '#') {
      if (!has_pending) return std::nullopt;  // URI without #EXTINF
      has_pending = false;
      Segment seg;
      seg.uri = line;
      seg.duration_s = pending_duration;
      out.segments.push_back(std::move(seg));
    }
  }
  return out;
}

}  // namespace gol::hls
