// Umbrella header for the 3GOL reproduction's public API.
//
// Pull in everything a downstream application needs to powerboost a wired
// connection in simulation:
//
//   #include "gol3.hpp"
//
//   gol::core::HomeEnvironment home(config);
//   gol::core::VodSession vod(home);
//   auto outcome = vod.run(options);
//
// Individual subsystem headers remain includable on their own; this header
// is a convenience, not a requirement. The live-socket prototype
// (gol::proto, Linux-only) and the packet-level validator (gol::pkt) are
// intentionally not included here — include proto/*.hpp or
// pkt/tcp_packet_sim.hpp explicitly where needed.
#pragma once

// Simulation substrate.
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

// Networks.
#include "access/adsl.hpp"
#include "access/dslam.hpp"
#include "access/wifi.hpp"
#include "cellular/device.hpp"
#include "cellular/energy.hpp"
#include "cellular/location.hpp"
#include "net/capacity_profile.hpp"
#include "net/flow_network.hpp"
#include "net/tcp_model.hpp"

// Application substrates.
#include "hls/player.hpp"
#include "hls/playlist.hpp"
#include "hls/segmenter.hpp"
#include "http/message.hpp"
#include "http/multipart.hpp"

// The 3GOL system.
#include "core/allowance.hpp"
#include "core/deadline_scheduler.hpp"
#include "core/discovery.hpp"
#include "core/engine.hpp"
#include "core/home.hpp"
#include "core/mptcp.hpp"
#include "core/onload_controller.hpp"
#include "core/permit.hpp"
#include "core/scheduler.hpp"
#include "core/upload_session.hpp"
#include "core/vod_session.hpp"

// Synthetic datasets.
#include "trace/dslam_trace.hpp"
#include "trace/export.hpp"
#include "trace/mno.hpp"
#include "trace/onload_replay.hpp"
