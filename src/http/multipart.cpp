#include "http/multipart.hpp"

namespace gol::http {

MultipartEncoder::MultipartEncoder(std::string boundary)
    : boundary_(std::move(boundary)) {}

void MultipartEncoder::addPart(MultipartPart part) {
  parts_.push_back(std::move(part));
}

std::string MultipartEncoder::contentType() const {
  return "multipart/form-data; boundary=" + boundary_;
}

std::string MultipartEncoder::partHead(const MultipartPart& part) const {
  std::string head = "--" + boundary_ + "\r\n";
  head += "Content-Disposition: form-data; name=\"" + part.field_name + "\"";
  if (!part.filename.empty()) head += "; filename=\"" + part.filename + "\"";
  head += "\r\n";
  head += "Content-Type: " + part.content_type + "\r\n\r\n";
  return head;
}

std::string MultipartEncoder::encode() const {
  std::string body;
  body.reserve(encodedSize());
  for (const auto& part : parts_) {
    body += partHead(part);
    body += part.data;
    body += "\r\n";
  }
  body += "--" + boundary_ + "--\r\n";
  return body;
}

std::size_t MultipartEncoder::encodedSize() const {
  std::size_t size = boundary_.size() + 6;  // closing delimiter + CRLF
  for (const auto& part : parts_) {
    size += partHead(part).size() + part.data.size() + 2;
  }
  return size;
}

std::size_t MultipartEncoder::framingOverhead(const MultipartPart& part) {
  MultipartEncoder tmp;
  return tmp.partHead(part).size() + 2;
}

}  // namespace gol::http
