#include "http/sim_origin.hpp"

namespace gol::http {

SimOrigin::SimOrigin(net::FlowNetwork& net, std::string name,
                     const SimOriginConfig& cfg)
    : cfg_(cfg),
      serve_(net.createLink(name + "/serve", cfg.serve_bps)),
      ingest_(net.createLink(name + "/ingest", cfg.ingest_bps)) {}

void SimOrigin::putObject(const std::string& uri, double bytes) {
  objects_[uri] = bytes;
}

std::optional<double> SimOrigin::objectBytes(const std::string& uri) const {
  auto it = objects_.find(uri);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

}  // namespace gol::http
