// FNV-1a payload digests for end-to-end integrity (the middlebox problem:
// in-path cellular proxies silently truncate and rewrite HTTP bodies, so
// delivered bytes must be verified, not just counted). Header-only and
// dependency-free; used by trace generators, the origin server and the
// multipath client, and — via Item::checksum — the simulator stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gol::http {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// One streaming step: folds `data` into digest `h`. Chain calls to digest
/// a payload arriving in chunks; start from kFnv1aOffset.
inline std::uint64_t fnv1aStep(std::string_view data,
                               std::uint64_t h = kFnv1aOffset) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Digest of a whole buffer.
inline std::uint64_t fnv1a(std::string_view data) { return fnv1aStep(data); }

/// Digest of the canonical synthetic payload used by the origin server and
/// trace generators: `n` repetitions of the filler byte 'x'. O(n) but only
/// evaluated once per object; callers cache the result.
inline std::uint64_t fnv1aFiller(std::size_t n, char filler = 'x') {
  std::uint64_t h = kFnv1aOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(filler);
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace gol::http
