#include "http/sim_client.hpp"

#include <algorithm>
#include <memory>

namespace gol::http {

double pathNominalRateBps(const net::NetPath& path) {
  double rate = path.endpoint_cap_bps;
  for (const net::Link* l : path.links)
    rate = std::min(rate, l->capacityBps());
  return rate;
}

SimHttpClient::TransferId SimHttpClient::transfer(TransferRequest req) {
  const TransferId id = next_id_++;
  const double requested_at = net_.simulator().now();
  const double nominal = pathNominalRateBps(req.path);
  const double overhead =
      req.warm
          ? net::warmTransferOverheadS(req.bytes, req.path.rtt_s, nominal, tcp_)
          : net::transferOverheadS(req.bytes, req.path.rtt_s, nominal, tcp_);

  Inflight inf;
  inf.bytes = req.bytes;
  auto shared = std::make_shared<TransferRequest>(std::move(req));
  inf.start_event = net_.simulator().scheduleIn(
      shared->extra_delay_s + overhead, [this, id, shared, requested_at] {
        startFlow(id, std::move(*shared), requested_at);
      });
  inflight_.emplace(id, inf);
  return id;
}

void SimHttpClient::startFlow(TransferId id, TransferRequest req,
                              double requested_at) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return;  // aborted while waiting
  it->second.start_event = 0;

  // Mathis ceiling under loss; endpoint cap from the path.
  const double cap = std::min(
      req.path.endpoint_cap_bps,
      net::mathisCapBps(req.path.rtt_s, req.path.loss_rate, tcp_));

  net::FlowSpec spec;
  spec.path = req.path.links;
  spec.bytes = req.bytes / tcp_.efficiency;  // wire bytes incl. header tax
  spec.rate_cap_bps = cap;
  spec.on_complete = [this, id, requested_at,
                      cb = std::move(req.on_done)](net::FlowId) {
    auto iter = inflight_.find(id);
    if (iter == inflight_.end()) return;
    inflight_.erase(iter);
    if (cb) cb(net_.simulator().now() - requested_at);
  };
  it->second.flow = net_.startFlow(std::move(spec));
}

double SimHttpClient::abort(TransferId id) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return 0.0;
  double moved = 0.0;
  if (it->second.start_event != 0)
    net_.simulator().cancel(it->second.start_event);
  if (it->second.flow != 0)
    moved = net_.abortFlow(it->second.flow) * tcp_.efficiency;
  inflight_.erase(it);
  return moved;
}

}  // namespace gol::http
