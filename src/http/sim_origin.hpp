// The well-provisioned origin web server of the paper's evaluation
// ("dedicated web server, 100 Mbps download / 40 Mbps upload, caching
// disabled"). In the fluid model it contributes one link per direction that
// every fetch/upload crosses, plus a catalog of named objects.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "net/flow_network.hpp"

namespace gol::http {

struct SimOriginConfig {
  double serve_bps = 100e6;   ///< Server -> Internet (downloads).
  double ingest_bps = 40e6;   ///< Internet -> server (uploads).
  double rtt_s = 0.020;       ///< Server-side latency contribution.
};

class SimOrigin {
 public:
  SimOrigin(net::FlowNetwork& net, std::string name,
            const SimOriginConfig& cfg = {});

  net::Link* serveLink() { return serve_; }
  net::Link* ingestLink() { return ingest_; }
  const SimOriginConfig& config() const { return cfg_; }

  /// Registers an object (e.g. an HLS segment URI) with its size in bytes.
  void putObject(const std::string& uri, double bytes);
  /// Size of a registered object; returns nullopt for unknown URIs.
  std::optional<double> objectBytes(const std::string& uri) const;
  std::size_t objectCount() const { return objects_.size(); }

 private:
  SimOriginConfig cfg_;
  net::Link* serve_;
  net::Link* ingest_;
  std::map<std::string, double> objects_;
};

}  // namespace gol::http
