// Minimal HTTP/1.1 message model: parse and serialize request/response heads
// plus Content-Length bodies. Shared by the simulated HTTP layer (for
// playlist/manifest handling) and the real-socket prototype proxy.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace gol::http {

/// Case-insensitive header map (HTTP field names are case-insensitive).
struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using HeaderMap = std::map<std::string, std::string, CaseInsensitiveLess>;

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  std::string serialize() const;
  std::optional<std::string> header(const std::string& name) const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  std::string serialize() const;
  std::optional<std::string> header(const std::string& name) const;
};

/// Incremental parse outcomes.
enum class ParseStatus {
  kNeedMore,   ///< Message incomplete; feed more bytes.
  kComplete,   ///< Parsed a full message; `consumed` bytes were used.
  kError,      ///< Malformed input.
};

struct RequestParseResult {
  ParseStatus status = ParseStatus::kNeedMore;
  Request request;
  std::size_t consumed = 0;
};

struct ResponseParseResult {
  ParseStatus status = ParseStatus::kNeedMore;
  Response response;
  std::size_t consumed = 0;
};

/// Parses one request from the front of `data`. Bodies require a
/// Content-Length header (chunked encoding is not supported; the proxy
/// forwards unknown-length bodies by streaming until close).
RequestParseResult parseRequest(std::string_view data);
ResponseParseResult parseResponse(std::string_view data);

/// Reads Content-Length, returning 0 when absent, nullopt when invalid.
std::optional<std::size_t> contentLength(const HeaderMap& headers);

/// Reads a `Range: bytes=N-` header (the open-ended single-range form used
/// for resume). Returns N; nullopt when absent, malformed, or any other
/// range form (which callers treat as "serve the full object").
std::optional<std::size_t> rangeStart(const HeaderMap& headers);

/// A parsed `Content-Range: bytes <first>-<last>/<total>` header.
struct ContentRange {
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t total = 0;
};

/// Parses a Content-Range value ("bytes 5-99/100"). Nullopt on anything
/// malformed, including the unsatisfied form "bytes */N".
std::optional<ContentRange> parseContentRange(const std::string& value);

}  // namespace gol::http
