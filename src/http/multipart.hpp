// multipart/form-data encoding — how the paper's uplink application
// (Facebook/Flickr/Picasa photo upload) frames its HTTP POST bodies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gol::http {

struct MultipartPart {
  std::string field_name;
  std::string filename;
  std::string content_type = "application/octet-stream";
  std::string data;
};

class MultipartEncoder {
 public:
  explicit MultipartEncoder(std::string boundary = "----gol3-boundary");

  void addPart(MultipartPart part);
  const std::string& boundary() const { return boundary_; }
  std::size_t partCount() const { return parts_.size(); }

  /// Value for the Content-Type request header.
  std::string contentType() const;
  /// Encodes the full body.
  std::string encode() const;
  /// Size the encoded body will have, without materializing it — used by
  /// the simulator to account for framing overhead on large uploads.
  std::size_t encodedSize() const;

  /// Framing bytes added per part (boundary + part headers) for a part
  /// with the given metadata sizes; exposed for overhead modelling.
  static std::size_t framingOverhead(const MultipartPart& part);

 private:
  std::string partHead(const MultipartPart& part) const;

  std::string boundary_;
  std::vector<MultipartPart> parts_;
};

}  // namespace gol::http
