#include "http/message.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace gol::http {

namespace {

char lowered(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// Parses header lines between the start line and the blank line.
/// Returns false on malformed fields.
bool parseHeaderBlock(std::string_view block, HeaderMap& out) {
  std::size_t pos = 0;
  while (pos < block.size()) {
    const std::size_t eol = block.find("\r\n", pos);
    const std::string_view line =
        block.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                        : eol - pos);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    out[std::string(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
    if (eol == std::string_view::npos) break;
    pos = eol + 2;
  }
  return true;
}

std::string serializeHeaders(const HeaderMap& headers) {
  std::string out;
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  return out;
}

}  // namespace

bool CaseInsensitiveLess::operator()(const std::string& a,
                                     const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](char x, char y) { return lowered(x) < lowered(y); });
}

std::optional<std::string> Request::header(const std::string& name) const {
  auto it = headers.find(name);
  if (it == headers.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Response::header(const std::string& name) const {
  auto it = headers.find(name);
  if (it == headers.end()) return std::nullopt;
  return it->second;
}

std::string Request::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  HeaderMap h = headers;
  if (!body.empty() && h.find("Content-Length") == h.end())
    h["Content-Length"] = std::to_string(body.size());
  out += serializeHeaders(h);
  out += "\r\n";
  out += body;
  return out;
}

std::string Response::serialize() const {
  std::string out = version + " " + std::to_string(status) + " " + reason +
                    "\r\n";
  HeaderMap h = headers;
  if (h.find("Content-Length") == h.end())
    h["Content-Length"] = std::to_string(body.size());
  out += serializeHeaders(h);
  out += "\r\n";
  out += body;
  return out;
}

std::optional<std::size_t> contentLength(const HeaderMap& headers) {
  auto it = headers.find("Content-Length");
  if (it == headers.end()) return 0;
  std::size_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      it->second.data(), it->second.data() + it->second.size(), value);
  if (ec != std::errc() || ptr != it->second.data() + it->second.size())
    return std::nullopt;
  return value;
}

std::optional<std::size_t> rangeStart(const HeaderMap& headers) {
  auto it = headers.find("Range");
  if (it == headers.end()) return std::nullopt;
  std::string_view v = trim(it->second);
  if (v.rfind("bytes=", 0) != 0) return std::nullopt;
  v.remove_prefix(6);
  // Only the resume form "N-": a closed range or suffix range is not ours.
  if (v.empty() || v.back() != '-') return std::nullopt;
  v.remove_suffix(1);
  std::size_t start = 0;
  const auto [ptr, ec] =
      std::from_chars(v.data(), v.data() + v.size(), start);
  if (ec != std::errc() || ptr != v.data() + v.size()) return std::nullopt;
  return start;
}

std::optional<ContentRange> parseContentRange(const std::string& value) {
  std::string_view v = trim(value);
  if (v.rfind("bytes ", 0) != 0) return std::nullopt;
  v.remove_prefix(6);
  ContentRange cr;
  const char* p = v.data();
  const char* end = v.data() + v.size();
  auto r1 = std::from_chars(p, end, cr.first);
  if (r1.ec != std::errc() || r1.ptr == end || *r1.ptr != '-')
    return std::nullopt;
  auto r2 = std::from_chars(r1.ptr + 1, end, cr.last);
  if (r2.ec != std::errc() || r2.ptr == end || *r2.ptr != '/')
    return std::nullopt;
  auto r3 = std::from_chars(r2.ptr + 1, end, cr.total);
  if (r3.ec != std::errc() || r3.ptr != end) return std::nullopt;
  if (cr.last < cr.first || cr.total <= cr.last) return std::nullopt;
  return cr;
}

RequestParseResult parseRequest(std::string_view data) {
  RequestParseResult res;
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return res;  // kNeedMore

  const std::size_t line_end = data.find("\r\n");
  const std::string_view start = data.substr(0, line_end);
  const std::size_t sp1 = start.find(' ');
  const std::size_t sp2 = start.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    res.status = ParseStatus::kError;
    return res;
  }
  res.request.method = std::string(start.substr(0, sp1));
  res.request.target = std::string(start.substr(sp1 + 1, sp2 - sp1 - 1));
  res.request.version = std::string(start.substr(sp2 + 1));
  if (!parseHeaderBlock(data.substr(line_end + 2, head_end - line_end - 2),
                        res.request.headers)) {
    res.status = ParseStatus::kError;
    return res;
  }
  const auto len = contentLength(res.request.headers);
  if (!len) {
    res.status = ParseStatus::kError;
    return res;
  }
  const std::size_t body_start = head_end + 4;
  if (data.size() - body_start < *len) return res;  // kNeedMore
  res.request.body = std::string(data.substr(body_start, *len));
  res.consumed = body_start + *len;
  res.status = ParseStatus::kComplete;
  return res;
}

ResponseParseResult parseResponse(std::string_view data) {
  ResponseParseResult res;
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return res;

  const std::size_t line_end = data.find("\r\n");
  const std::string_view start = data.substr(0, line_end);
  const std::size_t sp1 = start.find(' ');
  if (sp1 == std::string_view::npos) {
    res.status = ParseStatus::kError;
    return res;
  }
  res.response.version = std::string(start.substr(0, sp1));
  const std::size_t sp2 = start.find(' ', sp1 + 1);
  const std::string_view code =
      start.substr(sp1 + 1, sp2 == std::string_view::npos
                                ? std::string_view::npos
                                : sp2 - sp1 - 1);
  int status_code = 0;
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), status_code);
  if (ec != std::errc() || status_code < 100 || status_code > 599) {
    res.status = ParseStatus::kError;
    return res;
  }
  res.response.status = status_code;
  if (sp2 != std::string_view::npos)
    res.response.reason = std::string(start.substr(sp2 + 1));
  if (!parseHeaderBlock(data.substr(line_end + 2, head_end - line_end - 2),
                        res.response.headers)) {
    res.status = ParseStatus::kError;
    return res;
  }
  const auto len = contentLength(res.response.headers);
  if (!len) {
    res.status = ParseStatus::kError;
    return res;
  }
  const std::size_t body_start = head_end + 4;
  if (data.size() - body_start < *len) return res;
  res.response.body = std::string(data.substr(body_start, *len));
  res.consumed = body_start + *len;
  res.status = ParseStatus::kComplete;
  return res;
}

}  // namespace gol::http
