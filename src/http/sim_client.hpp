// Message-level HTTP transfers over the fluid network: a fetch/upload is a
// flow across a path plus the TCP setup/slow-start latency from
// net::tcp_model. This is the building block the 3GOL transfer paths use
// for the wired (ADSL) legs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/flow_network.hpp"
#include "net/path.hpp"
#include "net/tcp_model.hpp"
#include "sim/simulator.hpp"

namespace gol::http {

struct TransferRequest {
  double bytes = 0;
  net::NetPath path;
  /// Warm connections skip the handshake and keep a partially open window
  /// (HTTP keep-alive; the second and later HLS segments on a path).
  bool warm = false;
  /// Extra latency before the transfer starts (e.g. an RRC promotion that
  /// the caller already accounted for passes 0 here).
  double extra_delay_s = 0;
  /// Called with the wall-clock duration once the last byte lands.
  std::function<void(double seconds)> on_done;
};

class SimHttpClient {
 public:
  explicit SimHttpClient(net::FlowNetwork& net) : net_(net) {}
  SimHttpClient(const SimHttpClient&) = delete;
  SimHttpClient& operator=(const SimHttpClient&) = delete;

  using TransferId = std::uint64_t;

  TransferId transfer(TransferRequest req);
  /// Aborts a pending/in-flight transfer; returns bytes already moved.
  double abort(TransferId id);
  bool active(TransferId id) const { return inflight_.count(id) != 0; }

  const net::TcpParams& tcpParams() const { return tcp_; }
  void setTcpParams(const net::TcpParams& p) { tcp_ = p; }

 private:
  struct Inflight {
    net::FlowId flow = 0;          ///< 0 while waiting out the setup delay.
    sim::EventId start_event = 0;  ///< Pending delayed start, if any.
    double bytes = 0;
  };

  void startFlow(TransferId id, TransferRequest req, double start_time);

  net::FlowNetwork& net_;
  net::TcpParams tcp_;
  std::map<TransferId, Inflight> inflight_;
  TransferId next_id_ = 1;
};

/// Estimate of the bottleneck rate along a path (min link capacity and the
/// endpoint cap) — used to size the slow-start penalty.
double pathNominalRateBps(const net::NetPath& path);

}  // namespace gol::http
