// Min-cost max-flow solver core for the OPT scheduler and the offline
// optimality oracle: successive shortest paths found with SPFA over reduced
// costs (node potentials are maintained across augmentations), on an
// adjacency-list residual graph with paired forward/reverse arcs.
//
// Beyond the textbook scratch solve, the solver supports *incremental
// re-solve*: callers patch arc capacities/costs in place (a path died, an
// item's remaining demand shrank past a checkpoint, a rate estimate moved)
// and resolve() repairs the existing flow instead of starting over —
//   1. arcs whose capacity dropped below their flow are drained by
//      cancelling exactly the stranded units along the flow decomposition
//      (source-side and sink-side walks through flow-carrying arcs),
//   2. negative cycles the patches opened in the residual graph are
//      cancelled so optimality is restored, then
//   3. ordinary shortest-path augmentation tops the flow back up.
// Work done scales with the affected flow, not the network size; the
// SolveStats counters (SPFA runs, arc relaxations, augmentations) make the
// incremental-vs-scratch saving measurable and deterministic.
//
// Capacities and flows are doubles (byte quantities), compared against
// kFlowEps. Integral capacities stay integral: SPFA augments by the path
// bottleneck, so integer-capacitated networks yield integer (unsplit) flows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gol::flow {

/// Deterministic work counters, cumulative across solves until resetStats().
struct SolveStats {
  std::size_t scratch_solves = 0;
  std::size_t resolves = 0;
  std::size_t spfa_runs = 0;         ///< Shortest-path computations.
  std::size_t arc_relaxations = 0;   ///< Residual arcs scanned across SPFA.
  std::size_t augmentations = 0;     ///< Augmenting paths pushed.
  std::size_t repair_walks = 0;      ///< Flow-decomposition cancellations.
  std::size_t cycles_cancelled = 0;  ///< Negative residual cycles removed.
};

class MinCostFlow {
 public:
  using NodeId = std::int32_t;
  using ArcId = std::int32_t;

  static constexpr double kFlowEps = 1e-6;
  static constexpr double kInfCap = 1e18;

  NodeId addNode();
  std::size_t nodeCount() const { return first_arc_.size(); }
  std::size_t arcCount() const { return arcs_.size() / 2; }

  /// Adds a forward arc (and its implicit reverse). `cap` >= 0; `cost` >= 0
  /// for forward arcs keeps the scratch solve free of negative arcs.
  ArcId addArc(NodeId from, NodeId to, double cap, double cost);

  double arcFlow(ArcId a) const { return arcs_[toIndex(a)].flow; }
  double arcCapacity(ArcId a) const { return arcs_[toIndex(a)].cap; }
  double arcCost(ArcId a) const { return arcs_[toIndex(a)].cost; }

  /// Patches for incremental re-solve. Lowering a capacity below its
  /// current flow strands the excess; resolve() drains it. Cost edits may
  /// open negative residual cycles; resolve() cancels them.
  void setArcCapacity(ArcId a, double cap);
  void setArcCost(ArcId a, double cost);

  struct Result {
    double flow = 0;  ///< Units routed source -> sink.
    double cost = 0;  ///< Sum over arcs of flow * cost.
  };

  /// Max flow at min cost from scratch: zeroes all flow, then successive
  /// shortest-path augmentation until the sink is unreachable.
  Result solve(NodeId source, NodeId sink);

  /// Incremental re-solve: keeps the current flow, repairs feasibility,
  /// restores optimality, re-augments. Equivalent in flow value and cost to
  /// solve() on the patched network (up to ties between equal-cost optima).
  Result resolve(NodeId source, NodeId sink);

  double totalCost() const;
  double flowValue(NodeId source) const;

  const SolveStats& stats() const { return stats_; }
  void resetStats() { stats_ = SolveStats{}; }

 private:
  struct Arc {
    NodeId to = 0;
    ArcId next = -1;   ///< Next arc out of the same tail (intrusive list).
    double cap = 0;    ///< Capacity (0 for reverse arcs).
    double flow = 0;   ///< Signed: reverse arc carries -flow of its mate.
    double cost = 0;   ///< Negated on the reverse arc.
  };

  static std::size_t toIndex(ArcId a) { return static_cast<std::size_t>(a); }
  double residual(std::size_t idx) const {
    return arcs_[idx].cap - arcs_[idx].flow;
  }
  NodeId tail(std::size_t idx) const { return arcs_[idx ^ 1].to; }

  /// SPFA over reduced costs from `source`; fills dist_/parent_arc_.
  /// Returns true when `sink` is reachable through residual capacity.
  bool shortestPath(NodeId source, NodeId sink);
  /// Pushes the bottleneck along parent_arc_ from sink back to source.
  double augment(NodeId source, NodeId sink);
  /// Augments until the sink is unreachable, folding dist_ into potentials.
  void augmentToMax(NodeId source, NodeId sink);
  /// Drains `excess` units of flow passing through node `via`: cancels a
  /// source->via flow path and a via->sink flow path, repeatedly.
  void drainThrough(NodeId via, NodeId source, NodeId sink, double excess);
  /// Walks flow-carrying arcs from `from` toward `goal` (forward when
  /// `forward`, else against arc direction), reducing flow by `amount`.
  /// Returns the amount actually drained.
  double cancelFlowWalk(NodeId from, NodeId goal, double amount, bool forward);
  /// Cancels negative-cost cycles in the residual graph until none remain.
  void cancelNegativeCycles();

  std::vector<Arc> arcs_;
  std::vector<ArcId> first_arc_;
  std::vector<double> potential_;
  std::vector<double> dist_;
  std::vector<ArcId> parent_arc_;
  std::vector<std::uint8_t> in_queue_;
  /// Arcs whose capacity dropped below their flow, awaiting repair.
  std::vector<ArcId> stranded_;
  bool costs_dirty_ = false;
  SolveStats stats_;
};

}  // namespace gol::flow
