#include "flow/ten.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <tuple>

namespace gol::flow {

namespace {
constexpr double kBitsPerByte = 8.0;
constexpr double kEps = 1e-9;
}  // namespace

TimeExpandedNetwork::TimeExpandedNetwork(std::vector<double> item_bytes,
                                         std::vector<double> path_rates_bps,
                                         TenConfig config)
    : config_(config), item_remaining_(std::move(item_bytes)) {
  if (config_.slots_per_path == 0) {
    throw std::invalid_argument("TEN: slots_per_path must be > 0");
  }
  double total_bytes = 0;
  double min_bytes = std::numeric_limits<double>::infinity();
  for (const double b : item_remaining_) {
    total_bytes += b;
    if (b > kEps) min_bytes = std::min(min_bytes, b);
  }
  unit_bytes_ = std::isfinite(min_bytes) ? min_bytes : 1.0;

  double total_rate = 0;
  for (const double r : path_rates_bps) total_rate += std::max(r, 0.0);
  const double ideal_s =
      total_rate > kEps ? total_bytes * kBitsPerByte / total_rate : 1.0;
  horizon_s_ = std::max(config_.horizon_slack * ideal_s, 1e-3);
  slot_dur_s_ = horizon_s_ / static_cast<double>(config_.slots_per_path);

  source_ = net_.addNode();
  sink_ = net_.addNode();
  overflow_ = net_.addNode();
  net_.addArc(overflow_, sink_, MinCostFlow::kInfCap, 0.0);

  const double penalty = config_.overflow_penalty_factor * horizon_s_;
  item_node_.reserve(item_remaining_.size());
  for (std::size_t i = 0; i < item_remaining_.size(); ++i) {
    const MinCostFlow::NodeId node = net_.addNode();
    item_node_.push_back(node);
    source_arc_.push_back(
        net_.addArc(source_, node, unitsFor(item_remaining_[i]), 0.0));
    overflow_arc_.push_back(
        net_.addArc(node, overflow_, MinCostFlow::kInfCap, penalty));
  }
  assign_arc_.assign(item_remaining_.size(), {});
  // Paths go in through addPath so construction and dynamic growth share
  // one code path (and one arc-creation order).
  for (const double r : path_rates_bps) addPath(r);
}

double TimeExpandedNetwork::unitsFor(double bytes) const {
  if (bytes <= kEps) return 0.0;
  return std::max(1.0, std::ceil(bytes / unit_bytes_ - 1e-6));
}

void TimeExpandedNetwork::refreshSlotCaps(std::size_t path) {
  // Integral slot capacities via cumulative-floor differencing: slot t gets
  // floor(cum(t+1)) - floor(cum(t)) units, so a slow path's fractional
  // per-slot capacity accumulates into whole units (a plain per-slot floor
  // would zero such paths out of the network entirely) and the per-path
  // total stays within one unit of the true horizon capacity.
  const double rate =
      path_up_[path] ? std::max(path_rate_bps_[path], 0.0) : 0.0;
  const double units_per_slot = rate / kBitsPerByte * slot_dur_s_ / unit_bytes_;
  double assigned = 0;
  for (std::size_t t = 0; t < slot_arc_[path].size(); ++t) {
    const double cum =
        std::floor(units_per_slot * static_cast<double>(t + 1) + 1e-6);
    net_.setArcCapacity(slot_arc_[path][t], cum - assigned);
    assigned = cum;
  }
}

void TimeExpandedNetwork::addPath(double rate_bps) {
  const std::size_t p = path_rate_bps_.size();
  path_rate_bps_.push_back(rate_bps);
  path_up_.push_back(1);
  slot_arc_.emplace_back();
  slot_arc_[p].reserve(config_.slots_per_path);
  for (std::size_t t = 0; t < config_.slots_per_path; ++t) {
    const MinCostFlow::NodeId slot = net_.addNode();
    const double mid_s = (static_cast<double>(t) + 0.5) * slot_dur_s_;
    for (std::size_t i = 0; i < item_node_.size(); ++i) {
      assign_arc_[i].push_back(
          net_.addArc(item_node_[i], slot, MinCostFlow::kInfCap, mid_s));
    }
    slot_arc_[p].push_back(net_.addArc(slot, sink_, 0.0, 0.0));
  }
  refreshSlotCaps(p);
}

void TimeExpandedNetwork::setItemRemaining(std::size_t item, double bytes) {
  item_remaining_.at(item) = std::max(bytes, 0.0);
  net_.setArcCapacity(source_arc_[item], unitsFor(item_remaining_[item]));
}

void TimeExpandedNetwork::setPathUp(std::size_t path, bool up) {
  if ((path_up_.at(path) != 0) == up) return;
  path_up_[path] = up ? 1 : 0;
  refreshSlotCaps(path);
}

void TimeExpandedNetwork::setPathRate(std::size_t path, double rate_bps) {
  if (path_rate_bps_.at(path) == rate_bps) return;
  path_rate_bps_[path] = rate_bps;
  refreshSlotCaps(path);
}

MinCostFlow::Result TimeExpandedNetwork::solveScratch() {
  return net_.solve(source_, sink_);
}

MinCostFlow::Result TimeExpandedNetwork::resolveIncremental() {
  return net_.resolve(source_, sink_);
}

std::vector<ItemPlan> TimeExpandedNetwork::extractPlan() const {
  const std::size_t items = item_remaining_.size();
  const std::size_t paths = path_rate_bps_.size();
  const std::size_t slots = config_.slots_per_path;
  std::vector<ItemPlan> plan(items);

  for (std::size_t i = 0; i < items; ++i) {
    if (item_remaining_[i] <= kEps) continue;  // done: stays kUnassigned
    std::size_t best_path = ItemPlan::kUnassigned;
    double best_flow = 0;
    double best_key = horizon_s_;
    for (std::size_t p = 0; p < paths; ++p) {
      double f = 0;
      double weighted = 0;
      for (std::size_t t = 0; t < slots; ++t) {
        const MinCostFlow::ArcId a = assign_arc_[i][p * slots + t];
        const double af = net_.arcFlow(a);
        f += af;
        weighted += af * net_.arcCost(a);
      }
      // Argmax flow; ties go to the lower path index (fixed scan order).
      if (f > best_flow + MinCostFlow::kFlowEps) {
        best_flow = f;
        best_path = p;
        best_key = f > kEps ? weighted / f : horizon_s_;
      }
    }
    if (best_path == ItemPlan::kUnassigned) {
      // All of this item's flow sits on overflow (or the network is
      // saturated): fall back to the minimum-estimated-time up path so the
      // plan stays total and work-conserving.
      double best_t = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < paths; ++p) {
        if (!path_up_[p] || path_rate_bps_[p] <= kEps) continue;
        const double t =
            item_remaining_[i] * kBitsPerByte / path_rate_bps_[p];
        if (std::tie(t, p) < std::tie(best_t, best_path)) {
          best_t = t;
          best_path = p;
        }
      }
      best_key = horizon_s_;
    }
    plan[i].path = best_path;
    plan[i].order_key = best_key;
  }

  // Load-balancing repair: unit costs admit many equal-cost optima whose
  // extractions differ wildly in makespan; migrate items off the
  // makespan-defining path while the projected makespan strictly drops.
  std::vector<double> load(paths, 0.0);
  for (std::size_t i = 0; i < items; ++i) {
    if (plan[i].path != ItemPlan::kUnassigned) {
      load[plan[i].path] += item_remaining_[i];
    }
  }
  const auto finish = [&](std::size_t p, double l) {
    if (l <= kEps) return 0.0;
    if (!path_up_[p] || path_rate_bps_[p] <= kEps) {
      return std::numeric_limits<double>::infinity();
    }
    return l * kBitsPerByte / path_rate_bps_[p];
  };
  for (std::size_t round = 0; round < items; ++round) {
    std::size_t pmax = 0;
    double cur = -1;
    for (std::size_t p = 0; p < paths; ++p) {
      const double f = finish(p, load[p]);
      if (f > cur) {
        cur = f;
        pmax = p;
      }
    }
    if (cur <= kEps) break;
    std::size_t move_item = items;
    std::size_t move_to = paths;
    double best_new = cur * (1.0 - 1e-9);
    for (std::size_t i = 0; i < items; ++i) {
      if (plan[i].path != pmax) continue;
      const double b = item_remaining_[i];
      const double np = finish(pmax, load[pmax] - b);
      for (std::size_t q = 0; q < paths; ++q) {
        if (q == pmax || !path_up_[q] || path_rate_bps_[q] <= kEps) continue;
        double third = 0;  // max over paths other than pmax and q
        for (std::size_t p = 0; p < paths; ++p) {
          if (p == pmax || p == q) continue;
          third = std::max(third, finish(p, load[p]));
        }
        const double nm =
            std::max({np, finish(q, load[q] + b), third});
        if (nm < best_new) {
          best_new = nm;
          move_item = i;
          move_to = q;
        }
      }
    }
    if (move_item == items) break;
    load[pmax] -= item_remaining_[move_item];
    load[move_to] += item_remaining_[move_item];
    plan[move_item].path = move_to;
  }
  return plan;
}

}  // namespace gol::flow
