#include "flow/min_cost_flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace gol::flow {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MinCostFlow::NodeId MinCostFlow::addNode() {
  first_arc_.push_back(-1);
  potential_.push_back(0.0);
  return static_cast<NodeId>(first_arc_.size() - 1);
}

MinCostFlow::ArcId MinCostFlow::addArc(NodeId from, NodeId to, double cap,
                                       double cost) {
  if (from < 0 || to < 0 ||
      static_cast<std::size_t>(from) >= first_arc_.size() ||
      static_cast<std::size_t>(to) >= first_arc_.size()) {
    throw std::invalid_argument("MinCostFlow::addArc: unknown node");
  }
  if (cap < 0) throw std::invalid_argument("MinCostFlow::addArc: cap < 0");
  const ArcId id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(Arc{to, first_arc_[static_cast<std::size_t>(from)], cap,
                      0.0, cost});
  first_arc_[static_cast<std::size_t>(from)] = id;
  arcs_.push_back(Arc{from, first_arc_[static_cast<std::size_t>(to)], 0.0,
                      0.0, -cost});
  first_arc_[static_cast<std::size_t>(to)] = id + 1;
  return id;
}

void MinCostFlow::setArcCapacity(ArcId a, double cap) {
  Arc& arc = arcs_[toIndex(a)];
  const double old_residual = arc.cap - arc.flow;
  arc.cap = cap;
  if (arc.flow > cap + kFlowEps) {
    stranded_.push_back(a);
  } else if (cap - arc.flow > kFlowEps && old_residual <= kFlowEps) {
    // Raising capacity on a saturated arc re-opens a residual arc whose
    // reduced cost may be negative: it can close a negative residual cycle
    // with the reverse arcs of flow the old optimum was forced to route
    // elsewhere. SPFA does not terminate on one, so resolve() must cancel
    // cycles before re-augmenting.
    costs_dirty_ = true;
  }
}

void MinCostFlow::setArcCost(ArcId a, double cost) {
  Arc& arc = arcs_[toIndex(a)];
  if (arc.cost == cost) return;
  arc.cost = cost;
  arcs_[toIndex(a) ^ 1].cost = -cost;
  // A cost change under an arc carrying flow can invalidate optimality
  // (its reverse residual arc may now close a negative cycle).
  if (arc.flow > kFlowEps) costs_dirty_ = true;
}

bool MinCostFlow::shortestPath(NodeId source, NodeId sink) {
  ++stats_.spfa_runs;
  const std::size_t n = first_arc_.size();
  dist_.assign(n, kInf);
  parent_arc_.assign(n, -1);
  in_queue_.assign(n, 0);
  dist_[static_cast<std::size_t>(source)] = 0.0;
  std::deque<NodeId> queue{source};
  in_queue_[static_cast<std::size_t>(source)] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const auto ui = static_cast<std::size_t>(u);
    in_queue_[ui] = 0;
    for (ArcId a = first_arc_[ui]; a != -1; a = arcs_[toIndex(a)].next) {
      ++stats_.arc_relaxations;
      const Arc& arc = arcs_[toIndex(a)];
      if (residual(toIndex(a)) <= kFlowEps) continue;
      // Reduced cost keeps magnitudes small once potentials settle; SPFA
      // itself tolerates the negative values patches can re-open.
      const double rc = arc.cost + potential_[ui] -
                        potential_[static_cast<std::size_t>(arc.to)];
      const double nd = dist_[ui] + rc;
      const auto vi = static_cast<std::size_t>(arc.to);
      if (nd + kFlowEps < dist_[vi]) {
        dist_[vi] = nd;
        parent_arc_[vi] = a;
        if (!in_queue_[vi]) {
          in_queue_[vi] = 1;
          // SLF heuristic: promising nodes jump the queue.
          if (!queue.empty() &&
              dist_[static_cast<std::size_t>(queue.front())] > nd) {
            queue.push_front(arc.to);
          } else {
            queue.push_back(arc.to);
          }
        }
      }
    }
  }
  return dist_[static_cast<std::size_t>(sink)] < kInf;
}

double MinCostFlow::augment(NodeId source, NodeId sink) {
  double bottleneck = kInfCap;
  for (NodeId v = sink; v != source;) {
    const ArcId a = parent_arc_[static_cast<std::size_t>(v)];
    bottleneck = std::min(bottleneck, residual(toIndex(a)));
    v = tail(toIndex(a));
  }
  for (NodeId v = sink; v != source;) {
    const ArcId a = parent_arc_[static_cast<std::size_t>(v)];
    arcs_[toIndex(a)].flow += bottleneck;
    arcs_[toIndex(a) ^ 1].flow -= bottleneck;
    v = tail(toIndex(a));
  }
  ++stats_.augmentations;
  return bottleneck;
}

void MinCostFlow::augmentToMax(NodeId source, NodeId sink) {
  while (shortestPath(source, sink)) {
    // Fold distances into the potentials so the next run sees reduced
    // costs near zero again (unreached nodes keep their old potential).
    for (std::size_t v = 0; v < potential_.size(); ++v) {
      if (dist_[v] < kInf) potential_[v] += dist_[v];
    }
    augment(source, sink);
  }
}

MinCostFlow::Result MinCostFlow::solve(NodeId source, NodeId sink) {
  ++stats_.scratch_solves;
  for (Arc& a : arcs_) a.flow = 0.0;
  stranded_.clear();
  costs_dirty_ = false;
  potential_.assign(first_arc_.size(), 0.0);
  augmentToMax(source, sink);
  return {flowValue(source), totalCost()};
}

double MinCostFlow::cancelFlowWalk(NodeId from, NodeId goal, double amount,
                                   bool forward) {
  // Trace a path of flow-carrying arcs from `from` to `goal` (forward =
  // along arc direction, toward the sink; backward = against it, toward
  // the source) and reduce flow along it. Flow built by shortest-path
  // augmentation decomposes into source->sink paths (it never contains
  // cycles), so conservation guarantees the walk reaches `goal` while the
  // drained amount is positive; the visited guard turns any numerical
  // corner into a clean stop rather than a spin.
  double drained = 0.0;
  while (amount - drained > kFlowEps) {
    std::vector<ArcId> path;
    std::vector<std::uint8_t> visited(first_arc_.size(), 0);
    NodeId u = from;
    visited[static_cast<std::size_t>(u)] = 1;
    while (u != goal) {
      ArcId pick = -1;
      for (ArcId a = first_arc_[static_cast<std::size_t>(u)]; a != -1;
           a = arcs_[toIndex(a)].next) {
        const std::size_t idx = toIndex(a);
        // Outgoing flow leaves via forward arcs (flow > 0); incoming flow
        // is found from the head side through reverse arcs (mate's flow).
        const std::size_t fwd = forward ? idx : (idx ^ 1);
        if ((idx & 1u) == (forward ? 1u : 0u)) continue;
        if (arcs_[fwd].flow <= kFlowEps) continue;
        if (visited[static_cast<std::size_t>(arcs_[idx].to)]) continue;
        pick = a;
        break;
      }
      if (pick == -1) return drained;  // numerically dry; caller re-augments
      path.push_back(pick);
      u = arcs_[toIndex(pick)].to;
      visited[static_cast<std::size_t>(u)] = 1;
    }
    double step = amount - drained;
    for (ArcId a : path) {
      const std::size_t fwd = forward ? toIndex(a) : (toIndex(a) ^ 1);
      step = std::min(step, arcs_[fwd].flow);
    }
    if (step <= kFlowEps) return drained;
    for (ArcId a : path) {
      const std::size_t fwd = forward ? toIndex(a) : (toIndex(a) ^ 1);
      arcs_[fwd].flow -= step;
      arcs_[fwd ^ 1].flow += step;
    }
    drained += step;
    ++stats_.repair_walks;
  }
  return drained;
}

void MinCostFlow::drainThrough(NodeId via, NodeId source, NodeId sink,
                               double excess) {
  // Removing flow on an arc u->v leaves u with surplus inflow and v with
  // missing inflow; cancel the surplus back to the source and the orphaned
  // onward flow down to the sink, shrinking the total flow by `excess`
  // (re-augmentation routes it again along surviving arcs).
  (void)sink;
  cancelFlowWalk(via, source, excess, /*forward=*/false);
}

void MinCostFlow::cancelNegativeCycles() {
  // Bellman-Ford from a virtual super-source (dist 0 everywhere); a node
  // still relaxable after n rounds sits on a negative residual cycle.
  // Cancelling along the cycle strictly lowers cost, so iteration
  // terminates at the optimum.
  const std::size_t n = first_arc_.size();
  for (;;) {
    dist_.assign(n, 0.0);
    parent_arc_.assign(n, -1);
    ++stats_.spfa_runs;
    NodeId relaxed = -1;
    for (std::size_t round = 0; round < n; ++round) {
      relaxed = -1;
      for (std::size_t idx = 0; idx < arcs_.size(); ++idx) {
        ++stats_.arc_relaxations;
        if (residual(idx) <= kFlowEps) continue;
        const NodeId u = tail(idx);
        const NodeId v = arcs_[idx].to;
        const double nd = dist_[static_cast<std::size_t>(u)] + arcs_[idx].cost;
        if (nd + 1e-9 < dist_[static_cast<std::size_t>(v)]) {
          dist_[static_cast<std::size_t>(v)] = nd;
          parent_arc_[static_cast<std::size_t>(v)] =
              static_cast<ArcId>(idx);
          relaxed = v;
        }
      }
      if (relaxed == -1) break;
    }
    if (relaxed == -1) return;  // no negative cycle remains

    // Walk parents n steps to land inside the cycle, then collect it.
    NodeId x = relaxed;
    for (std::size_t i = 0; i < n; ++i) {
      x = tail(toIndex(parent_arc_[static_cast<std::size_t>(x)]));
    }
    std::vector<ArcId> cycle;
    for (NodeId v = x;;) {
      const ArcId a = parent_arc_[static_cast<std::size_t>(v)];
      cycle.push_back(a);
      v = tail(toIndex(a));
      if (v == x) break;
    }
    double step = kInfCap;
    for (ArcId a : cycle) step = std::min(step, residual(toIndex(a)));
    if (step <= kFlowEps) return;  // degenerate; nothing to move
    for (ArcId a : cycle) {
      arcs_[toIndex(a)].flow += step;
      arcs_[toIndex(a) ^ 1].flow -= step;
    }
    ++stats_.cycles_cancelled;
  }
}

MinCostFlow::Result MinCostFlow::resolve(NodeId source, NodeId sink) {
  ++stats_.resolves;
  // 1. Feasibility: drain flow stranded by capacity cuts.
  for (const ArcId a : stranded_) {
    Arc& arc = arcs_[toIndex(a)];
    const double excess = arc.flow - arc.cap;
    if (excess <= kFlowEps) continue;  // later patch already resolved it
    arc.flow -= excess;
    arcs_[toIndex(a) ^ 1].flow += excess;
    // The tail now has surplus inflow; cancel it back to the source. The
    // head's missing inflow is cancelled down to the sink.
    cancelFlowWalk(tail(toIndex(a)), source, excess, /*forward=*/false);
    cancelFlowWalk(arc.to, sink, excess, /*forward=*/true);
    costs_dirty_ = true;  // freed capacity may re-open cheaper routes
  }
  stranded_.clear();
  // 2. Optimality: patched costs or freed arcs can leave negative cycles.
  if (costs_dirty_) {
    cancelNegativeCycles();
    costs_dirty_ = false;
  }
  // 3. Max flow again, from the repaired solution.
  augmentToMax(source, sink);
  return {flowValue(source), totalCost()};
}

double MinCostFlow::totalCost() const {
  double cost = 0.0;
  for (std::size_t idx = 0; idx < arcs_.size(); idx += 2) {
    cost += arcs_[idx].flow * arcs_[idx].cost;
  }
  return cost;
}

double MinCostFlow::flowValue(NodeId source) const {
  double out = 0.0;
  for (ArcId a = first_arc_[static_cast<std::size_t>(source)]; a != -1;
       a = arcs_[toIndex(a)].next) {
    if ((toIndex(a) & 1u) == 0) {
      out += arcs_[toIndex(a)].flow;
    } else {
      out -= arcs_[toIndex(a) ^ 1].flow;
    }
  }
  return out;
}

}  // namespace gol::flow
