// Time-expanded network (TEN) for transaction scheduling: items on one
// side, (path, time-slot) nodes on the other, solved as a min-cost max-flow
// (flow/min_cost_flow.hpp). The horizon is split into uniform slots per
// path; a slot's capacity is the units the path can move during it at the
// current rate estimate, and the cost of assigning a unit to a slot is the
// slot's midpoint time — so the optimum front-loads work onto fast paths
// and the total cost approximates the sum of completion times.
//
// Demand is quantized into integral units (unit = smallest item size, so a
// transaction of uniform HLS segments is one unit per item) and the solver
// augments by integral bottlenecks, which keeps flows integral and the
// item -> path extraction unsplit. An overflow node with a beyond-horizon
// penalty cost guarantees feasibility whatever dies: max flow always equals
// total demand, so callers never distinguish "infeasible" from "solved".
//
// The network is patchable in place for incremental re-solve: a checkpoint
// shrinks an item's source capacity, churn flips a path's slot capacities
// to zero and back, rate drift rescales them — then resolveIncremental()
// repairs only the affected flow (see MinCostFlow::resolve).
//
// Plan extraction maps flow back to an assignment. Unit costs are shared by
// many equal-cost optima (items of equal size are interchangeable to the
// LP), so raw argmax extraction can return a badly unbalanced partition;
// extractPlan() follows it with a bounded, deterministic load-balancing
// repair pass that moves items off the makespan-defining path while the
// projected makespan strictly improves.
#pragma once

#include <cstddef>
#include <vector>

#include "flow/min_cost_flow.hpp"

namespace gol::flow {

struct TenConfig {
  std::size_t slots_per_path = 8;
  /// Horizon = slack * ideal finish time (total bytes over aggregate rate);
  /// >1 leaves headroom for imbalance before the overflow node engages.
  double horizon_slack = 1.35;
  /// Overflow cost = penalty_factor * horizon per unit: worse than any
  /// in-horizon slot, so overflow only carries genuinely unroutable demand.
  double overflow_penalty_factor = 10.0;
};

/// Where one item should go, per the last solve.
struct ItemPlan {
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::size_t path = kUnassigned;
  /// Flow-weighted mean slot time of the item's units on `path` — sort key
  /// for dispatch order within a path (earlier planned work first).
  double order_key = 0;
};

class TimeExpandedNetwork {
 public:
  TimeExpandedNetwork(std::vector<double> item_bytes,
                      std::vector<double> path_rates_bps,
                      TenConfig config = {});

  std::size_t itemCount() const { return item_remaining_.size(); }
  std::size_t pathCount() const { return path_rate_bps_.size(); }
  double unitBytes() const { return unit_bytes_; }
  double horizonSeconds() const { return horizon_s_; }
  double slotSeconds() const { return slot_dur_s_; }

  /// Patches (each marks the network dirty only when the value changed).
  void setItemRemaining(std::size_t item, double bytes);
  void setPathUp(std::size_t path, bool up);
  void setPathRate(std::size_t path, double rate_bps);
  /// Appends a path mid-flight (engine dynamic membership): new slot nodes
  /// and assignment arcs, starting flowless — resolveIncremental() routes
  /// onto them.
  void addPath(double rate_bps);

  MinCostFlow::Result solveScratch();
  MinCostFlow::Result resolveIncremental();

  /// Argmax flow -> path assignment plus the load-balancing repair pass.
  /// Items with no remaining demand come back kUnassigned; items the flow
  /// left entirely on overflow fall back to their min-estimated-time path.
  std::vector<ItemPlan> extractPlan() const;

  double itemRemaining(std::size_t item) const {
    return item_remaining_[item];
  }
  bool pathUp(std::size_t path) const { return path_up_[path] != 0; }
  double pathRate(std::size_t path) const { return path_rate_bps_[path]; }

  const SolveStats& stats() const { return net_.stats(); }
  void resetStats() { net_.resetStats(); }

 private:
  double unitsFor(double bytes) const;
  void refreshSlotCaps(std::size_t path);

  TenConfig config_;
  std::vector<double> item_remaining_;   ///< Bytes still owed per item.
  std::vector<double> path_rate_bps_;
  std::vector<std::uint8_t> path_up_;
  double unit_bytes_ = 1;
  double horizon_s_ = 1;
  double slot_dur_s_ = 1;

  MinCostFlow net_;
  MinCostFlow::NodeId source_ = -1;
  MinCostFlow::NodeId sink_ = -1;
  MinCostFlow::NodeId overflow_ = -1;
  std::vector<MinCostFlow::NodeId> item_node_;
  std::vector<MinCostFlow::ArcId> source_arc_;    ///< source -> item.
  std::vector<MinCostFlow::ArcId> overflow_arc_;  ///< item -> overflow.
  /// assign_arc_[item][path * slots + t]: item -> (path, slot).
  std::vector<std::vector<MinCostFlow::ArcId>> assign_arc_;
  /// slot_arc_[path][t]: (path, slot) -> sink.
  std::vector<std::vector<MinCostFlow::ArcId>> slot_arc_;
};

}  // namespace gol::flow
