#include "flow/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gol::flow {

namespace {
constexpr double kBitsPerByte = 8.0;
constexpr double kEps = 1e-9;

/// Rate of a profile at instant t: gaps before/between segments are 0; the
/// last segment's rate extends forever (see header).
double rateAt(const PathProfile& profile, double t) {
  double last_end = -1;
  double last_rate = 0;
  for (const CapacitySegment& s : profile.segments) {
    if (t >= s.t0 && t < s.t1) return s.rate_bps;
    if (s.t1 > last_end) {
      last_end = s.t1;
      last_rate = s.rate_bps;
    }
  }
  if (last_end >= 0 && t >= last_end) return last_rate;
  return 0;
}

/// Cap^(k)(T) for k = 1..P: integral over [0, T] of the sum of the k
/// largest instantaneous rates, in bytes. caps[k-1] holds Cap^(k).
std::vector<double> rankedCapacities(const std::vector<PathProfile>& paths,
                                     double T) {
  std::vector<double> breaks{0.0, T};
  for (const PathProfile& p : paths) {
    for (const CapacitySegment& s : p.segments) {
      if (s.t0 > 0 && s.t0 < T) breaks.push_back(s.t0);
      if (s.t1 > 0 && s.t1 < T) breaks.push_back(s.t1);
    }
  }
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());

  std::vector<double> caps(paths.size(), 0.0);
  std::vector<double> rates(paths.size());
  for (std::size_t b = 0; b + 1 < breaks.size(); ++b) {
    const double len = breaks[b + 1] - breaks[b];
    if (len <= 0) continue;
    const double mid = 0.5 * (breaks[b] + breaks[b + 1]);
    for (std::size_t p = 0; p < paths.size(); ++p) {
      rates[p] = std::max(rateAt(paths[p], mid), 0.0);
    }
    std::sort(rates.begin(), rates.end(), std::greater<double>());
    double prefix = 0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
      prefix += rates[k];
      caps[k] += prefix / kBitsPerByte * len;
    }
  }
  return caps;
}
}  // namespace

PathProfile PathProfile::constant(double rate_bps) {
  return PathProfile{{{0, std::numeric_limits<double>::infinity(), rate_bps}}};
}

PathProfile PathProfile::killedAt(double rate_bps, double t_kill) {
  // Trailing zero segment pins the post-kill rate at 0 forever.
  return PathProfile{{{0, t_kill, rate_bps},
                      {t_kill, t_kill + 1, 0}}};
}

PathProfile PathProfile::flap(double rate_bps, double t_down, double dur) {
  return PathProfile{{{0, t_down, rate_bps},
                      {t_down, t_down + dur, 0},
                      {t_down + dur,
                       std::numeric_limits<double>::infinity(), rate_bps}}};
}

double PathProfile::capacityBytes(double t) const {
  std::vector<double> breaks{0.0, t};
  for (const CapacitySegment& s : segments) {
    if (s.t0 > 0 && s.t0 < t) breaks.push_back(s.t0);
    if (s.t1 > 0 && s.t1 < t) breaks.push_back(s.t1);
  }
  std::sort(breaks.begin(), breaks.end());
  double cap = 0;
  for (std::size_t b = 0; b + 1 < breaks.size(); ++b) {
    const double len = breaks[b + 1] - breaks[b];
    if (len <= 0) continue;
    cap += std::max(rateAt(*this, 0.5 * (breaks[b] + breaks[b + 1])), 0.0) /
           kBitsPerByte * len;
  }
  return cap;
}

double makespanLowerBound(const std::vector<double>& item_bytes,
                          const std::vector<PathProfile>& paths) {
  std::vector<double> sorted(item_bytes);
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double total = 0;
  for (const double b : sorted) total += b;
  if (total <= kEps) return 0;
  if (paths.empty()) return std::numeric_limits<double>::infinity();

  // prefix[k] = sum of the k largest items, k = 1..min(P, M).
  const std::size_t kmax = std::min(paths.size(), sorted.size());
  std::vector<double> prefix(kmax + 1, 0.0);
  for (std::size_t k = 1; k <= kmax; ++k) prefix[k] = prefix[k - 1] + sorted[k - 1];

  // Feasibility of horizon T: the capacity available to any k concurrent
  // items — each occupies at most one path at a time, so collectively at
  // most the k pointwise-largest rates — must cover the k largest demands,
  // and the full fleet must cover the total. These are exactly the tight
  // cuts of the preemptive-schedule max-flow (Federgruen-Groenevelt), so
  // the binary search below computes the LP/flow lower bound.
  const double tol = 1e-9 * std::max(total, 1.0);
  const auto feasible = [&](double T) {
    const std::vector<double> caps = rankedCapacities(paths, T);
    for (std::size_t k = 1; k <= kmax; ++k) {
      if (prefix[k] > caps[k - 1] + tol) return false;
    }
    return total <= caps.back() + tol;
  };

  double hi = 1.0;
  while (!feasible(hi)) {
    hi *= 2;
    if (hi > 1e12) return std::numeric_limits<double>::infinity();
  }
  double lo = 0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace gol::flow
