// Offline optimality oracle: a lower bound on the makespan any scheduler
// could have achieved on a completed transaction, from the item sizes and
// the paths' ground-truth capacity profiles (piecewise-constant rates, with
// faults — kills, flaps, stalls — as zero-rate segments).
//
// The bound is the classic R||Cmax relaxation (Lenstra-Shmoys-Tardos
// style): binary-search the horizon T, testing feasibility with a max-flow
//   source -> item_i        (cap bytes_i)
//   item_i -> path_p        (cap Cap_p(T))
//   path_p -> sink          (cap Cap_p(T))
// where Cap_p(T) = bytes path p can move in [0, T] under its profile. All
// demand fits iff max flow == total bytes. The flow relaxation splits items
// freely, so it is strengthened with the unsplittability bound
//   max_i min_p T_p(bytes_i)
// (no item can finish before the fastest path could carry it alone); the
// oracle returns the max of the two. A naive continuous time-expanded
// formulation collapses to the aggregate water-fill bound (fully divisible
// items make only total capacity bind) — the per-item-per-path caps here
// are what keep the bound non-degenerate.
//
// Contract with the engine: every completed trace must have
// duration >= makespanLowerBound(...) - eps. A policy finishing below the
// bound means the engine's byte accounting or the capacity profiles are
// wrong — this is asserted in tests as a regression check.
#pragma once

#include <cstddef>
#include <vector>

namespace gol::flow {

/// Constant-rate stretch [t0, t1) of a path's ground-truth capacity.
/// Profiles are closed by their last segment: capacity beyond the final t1
/// continues at that segment's rate (use a trailing zero-rate segment for a
/// path that died for good).
struct CapacitySegment {
  double t0 = 0;
  double t1 = 0;
  double rate_bps = 0;
};

struct PathProfile {
  std::vector<CapacitySegment> segments;

  /// Convenience: a path that runs at `rate_bps` forever.
  static PathProfile constant(double rate_bps);
  /// A path that runs at `rate_bps` and dies for good at `t_kill`.
  static PathProfile killedAt(double rate_bps, double t_kill);
  /// A path that runs at `rate_bps` except during [t_down, t_down + dur).
  static PathProfile flap(double rate_bps, double t_down, double dur);

  /// Bytes this path can move in [0, t].
  double capacityBytes(double t) const;
};

/// Lower bound (seconds) on the makespan of delivering `item_bytes` over
/// `paths`. Returns +inf when the demand can never be met (all capacity
/// permanently exhausted below the total).
double makespanLowerBound(const std::vector<double>& item_bytes,
                          const std::vector<PathProfile>& paths);

}  // namespace gol::flow
