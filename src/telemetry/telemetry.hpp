// Umbrella header for gol::telemetry — the observability substrate:
//   metrics.hpp  thread-safe registry of counters / gauges / histograms
//   span.hpp     trace spans + Chrome trace_event export (Perfetto)
//   clock.hpp    wall vs simulated clock binding
//   export.hpp   JSON snapshot + line-protocol dumps
//
// Instrument names follow `gol.<subsystem>.<name>`; see the "Telemetry"
// section of docs/architecture.md for conventions and clock domains.
#pragma once

#include "telemetry/clock.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
