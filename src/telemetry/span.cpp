#include "telemetry/span.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "telemetry/export.hpp"

namespace gol::telemetry {

TraceRecorder::TraceRecorder(Clock clock) : clock_(std::move(clock)) {
  epoch_s_ = clock_();
}

SpanId TraceRecorder::begin(const std::string& name,
                            const std::string& category, int track) {
  const double ts = nowUs();
  std::lock_guard<std::mutex> lock(mu_);
  const SpanId id = next_id_++;
  open_[id] = OpenSpan{name, category, track, ts};
  return id;
}

void TraceRecorder::end(SpanId id,
                        const std::map<std::string, std::string>& args) {
  const double ts = nowUs();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  OpenSpan span = std::move(it->second);
  open_.erase(it);
  events_.push_back(Event{std::move(span.name), std::move(span.category),
                          span.track, span.ts_us, ts - span.ts_us, args});
}

void TraceRecorder::instant(const std::string& name,
                            const std::string& category, int track) {
  const double ts = nowUs();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, category, track, ts, 0.0, {}});
}

void TraceRecorder::setTrackName(int track, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_[track] = name;
}

std::size_t TraceRecorder::completedSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceRecorder::openSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceRecorder::toChromeJson() const {
  const double now = nowUs();
  std::lock_guard<std::mutex> lock(mu_);

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& piece) {
    if (!first) out += ',';
    first = false;
    out += piece;
  };

  for (const auto& [track, name] : track_names_) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(track) + ",\"args\":{\"name\":" + jsonQuote(name) +
         "}}");
  }

  auto emitSpan = [&](const Event& e) {
    std::string piece = "{\"name\":" + jsonQuote(e.name) +
                        ",\"cat\":" + jsonQuote(e.category) +
                        ",\"ph\":\"X\",\"pid\":1,\"tid\":" +
                        std::to_string(e.track) +
                        ",\"ts\":" + jsonNumber(e.ts_us) +
                        ",\"dur\":" + jsonNumber(e.dur_us);
    if (!e.args.empty()) {
      piece += ",\"args\":{";
      bool f = true;
      for (const auto& [k, v] : e.args) {
        if (!f) piece += ',';
        f = false;
        piece += jsonQuote(k) + ":" + jsonQuote(v);
      }
      piece += '}';
    }
    piece += '}';
    emit(piece);
  };

  for (const auto& e : events_) emitSpan(e);
  // Flush still-open spans as if they ended now, so a trace written
  // mid-flight is still valid.
  for (const auto& [id, span] : open_) {
    (void)id;
    emitSpan(Event{span.name, span.category, span.track, span.ts_us,
                   now - span.ts_us, {{"open", "true"}}});
  }

  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void TraceRecorder::writeChromeJson(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open trace output: " + path);
  f << toChromeJson();
  if (!f) throw std::runtime_error("short write on trace output: " + path);
}

}  // namespace gol::telemetry
