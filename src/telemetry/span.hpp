// Trace spans: begin/end intervals recorded against a pluggable clock and
// exported as Chrome trace_event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev). Spans live on integer *tracks* — rendered as
// threads by the viewers — so one track per transfer path gives the
// familiar per-lane waterfall.
//
// Two usage styles:
//   * RAII: `telemetry::Span s(&rec, "dispatch", "engine", track);`
//     closes itself when the scope exits.
//   * Split: `auto id = rec.begin(...)` now, `rec.end(id)` from a later
//     callback — what the event-driven engine needs, where an item's
//     dispatch and completion are different stack frames.
//
// Thread-safe: all recorder mutations take an internal mutex (the live
// prototype's tests drive the loop from multiple threads).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/clock.hpp"

namespace gol::telemetry {

using SpanId = std::uint64_t;

class TraceRecorder {
 public:
  /// Timestamps are recorded relative to the clock's value at construction,
  /// so traces start near t=0 regardless of the clock's epoch.
  explicit TraceRecorder(Clock clock = Clock::wall());
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span on `track`. Returns an id for end(); ids are never 0.
  SpanId begin(const std::string& name, const std::string& category,
               int track);
  /// Closes an open span; attaches optional `args` (shown in the viewer's
  /// detail pane). Ending an unknown/already-ended id is a no-op.
  void end(SpanId id, const std::map<std::string, std::string>& args = {});
  /// Zero-duration marker event.
  void instant(const std::string& name, const std::string& category,
               int track);
  /// Names a track in the viewer (thread_name metadata).
  void setTrackName(int track, const std::string& name);

  std::size_t completedSpans() const;
  std::size_t openSpans() const;

  /// One finished span, exposed for tests/exporters.
  struct Event {
    std::string name;
    std::string category;
    int track = 0;
    double ts_us = 0;   ///< Begin, microseconds since recorder construction.
    double dur_us = 0;  ///< 0 for instants.
    std::map<std::string, std::string> args;
  };
  /// Completed events in end order; open spans are not included.
  std::vector<Event> events() const;

  /// Serializes a Chrome trace_event JSON object:
  ///   {"traceEvents":[...],"displayTimeUnit":"ms"}
  /// Open spans are flushed as if they ended now. Timestamps within a
  /// track are monotone because begin() draws them from one monotone clock.
  std::string toChromeJson() const;
  /// Writes toChromeJson() to `path`; throws std::runtime_error on I/O
  /// failure.
  void writeChromeJson(const std::string& path) const;

 private:
  struct OpenSpan {
    std::string name;
    std::string category;
    int track = 0;
    double ts_us = 0;
  };

  double nowUs() const { return (clock_() - epoch_s_) * 1e6; }

  Clock clock_;
  double epoch_s_ = 0;
  mutable std::mutex mu_;
  SpanId next_id_ = 1;
  std::map<SpanId, OpenSpan> open_;
  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
};

/// RAII span; a null recorder makes it a no-op, so call sites can keep one
/// unconditional line and let instrumentation be optional.
class Span {
 public:
  Span(TraceRecorder* recorder, const std::string& name,
       const std::string& category, int track)
      : recorder_(recorder) {
    if (recorder_) id_ = recorder_->begin(name, category, track);
  }
  ~Span() {
    if (recorder_ && id_) recorder_->end(id_, args_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attached to the span when it closes.
  void setArg(const std::string& key, const std::string& value) {
    if (recorder_) args_[key] = value;
  }

 private:
  TraceRecorder* recorder_;
  SpanId id_ = 0;
  std::map<std::string, std::string> args_;
};

}  // namespace gol::telemetry
