// Thread-safe metrics registry: named counters, gauges, and fixed-bucket
// histograms, optionally labeled (`path="3g0"`). Instrument lookup takes a
// mutex once; the returned reference is stable for the registry's lifetime
// and every update on it is a lock-free atomic, so hot paths cache the
// reference and never contend.
//
// Naming convention: `gol.<subsystem>.<name>` (see docs/architecture.md,
// "Telemetry"). Counters only go up; gauges are last-value; histograms
// count observations into caller-chosen upper-bound buckets plus an
// implicit +Inf overflow bucket.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gol::telemetry {

/// Label set attached to an instrument; part of its identity.
using Labels = std::map<std::string, std::string>;

namespace detail {
/// Lock-free add for doubles (fetch_add on atomic<double> is C++20 but
/// spotty across standard libraries; the CAS loop is portable).
inline void atomicAdd(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing value. `inc`/`add` are lock-free.
class Counter {
 public:
  void inc(double v = 1.0) { detail::atomicAdd(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-value instrument (queue depth, buffer level). `set`/`add` are
/// lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { detail::atomicAdd(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: observation `v` lands in the first bucket whose
/// upper bound is >= v, or in the overflow bucket. Bounds are fixed at
/// creation; `observe` is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  std::uint64_t bucketCount(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one instrument, for exporters.
struct SnapshotEntry {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0;  ///< Counter/gauge value; histogram sum.
  // Histogram-only fields.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last).
  std::uint64_t count = 0;
};

struct Snapshot {
  std::vector<SnapshotEntry> entries;

  /// First entry matching name (+labels when given); nullptr when absent.
  const SnapshotEntry* find(const std::string& name,
                            const Labels& labels = {}) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument registered under (name, labels), creating it on
  /// first use. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `upper_bounds` is only consulted on first registration; later calls
  /// with the same identity return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const Labels& labels = {});

  Snapshot snapshot() const;

  /// Process-wide default registry: what components instrument against when
  /// not explicitly redirected (tests pass their own Registry instead).
  static Registry& global();

 private:
  struct Slot {
    std::string name;
    Labels labels;
    SnapshotEntry::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& findOrCreate(const std::string& name, const Labels& labels,
                     SnapshotEntry::Kind kind);

  mutable std::mutex mu_;
  std::deque<Slot> slots_;  // deque: pointer stability on growth
  std::map<std::string, Slot*> index_;
};

}  // namespace gol::telemetry
