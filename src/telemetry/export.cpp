#include "telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace gol::telemetry {

std::string jsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elems_.empty()) {
    if (has_elems_.back()) out_ += ',';
    has_elems_.back() = 1;
  }
}

JsonWriter& JsonWriter::beginObject() {
  separate();
  out_ += '{';
  has_elems_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  has_elems_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  separate();
  out_ += '[';
  has_elems_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  has_elems_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separate();
  out_ += jsonQuote(k);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ += jsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  out_ += jsonQuote(v);
  return *this;
}

namespace {

std::string labelsJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += jsonQuote(k) + ":" + jsonQuote(v);
  }
  out += '}';
  return out;
}

}  // namespace

std::string toJson(const Snapshot& snap) {
  std::string out = "{\"schema\":\"gol.metrics.v1\",\"metrics\":[";
  bool first = true;
  for (const auto& e : snap.entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + jsonQuote(e.name) +
           ",\"labels\":" + labelsJson(e.labels);
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" + jsonNumber(e.value);
        break;
      case SnapshotEntry::Kind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" + jsonNumber(e.value);
        break;
      case SnapshotEntry::Kind::kHistogram: {
        out += ",\"kind\":\"histogram\",\"count\":" +
               std::to_string(e.count) + ",\"sum\":" + jsonNumber(e.value) +
               ",\"buckets\":[";
        for (std::size_t i = 0; i < e.counts.size(); ++i) {
          if (i) out += ',';
          const std::string le = i < e.bounds.size()
                                     ? jsonNumber(e.bounds[i])
                                     : std::string("\"+Inf\"");
          out += "{\"le\":" + le +
                 ",\"count\":" + std::to_string(e.counts[i]) + "}";
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string toLineProtocol(const Snapshot& snap) {
  std::string out;
  for (const auto& e : snap.entries) {
    out += e.name;
    for (const auto& [k, v] : e.labels) {
      out += ',';
      out += k;
      out += '=';
      out += v;
    }
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
      case SnapshotEntry::Kind::kGauge:
        out += " value=" + jsonNumber(e.value);
        break;
      case SnapshotEntry::Kind::kHistogram: {
        out += " count=" + std::to_string(e.count) +
               " sum=" + jsonNumber(e.value);
        for (std::size_t i = 0; i < e.counts.size(); ++i) {
          const std::string le =
              i < e.bounds.size() ? jsonNumber(e.bounds[i]) : "Inf";
          out += " le" + le + "=" + std::to_string(e.counts[i]);
        }
        break;
      }
    }
    out += '\n';
  }
  return out;
}

void writeJsonSnapshot(const Registry& registry, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open metrics output: " + path);
  f << toJson(registry.snapshot());
  if (!f) throw std::runtime_error("short write on metrics output: " + path);
}

}  // namespace gol::telemetry
