// Pluggable time source for trace spans. Two clock domains exist in this
// codebase: wall time (the live prototype under src/proto/) and simulated
// time (sim::Simulator::now()). Telemetry sits below both layers, so the
// binding is a plain function — callers wrap whichever clock they live in:
//
//   telemetry::TraceRecorder rec(telemetry::Clock::wall());
//   telemetry::TraceRecorder rec(telemetry::Clock{[&sim] { return sim.now(); }});
//
// A recorder's timestamps are all drawn from one clock, so every track in
// an exported trace shares a single, monotone domain.
#pragma once

#include <chrono>
#include <functional>

namespace gol::telemetry {

struct Clock {
  /// Current time in seconds; only differences matter, the epoch is
  /// whatever the source defines.
  std::function<double()> now_s;

  double operator()() const { return now_s(); }

  /// Monotonic wall clock (std::chrono::steady_clock).
  static Clock wall() {
    return Clock{[] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    }};
  }

  /// Fixed clock, for tests that want exact timestamps. The pointee must
  /// outlive the recorder.
  static Clock manual(const double* now_s_ptr) {
    return Clock{[now_s_ptr] { return *now_s_ptr; }};
  }
};

}  // namespace gol::telemetry
