// Exporters for registry snapshots: a machine-readable JSON document (the
// `BENCH_<name>.json` cross-PR trajectory format) and a line-protocol text
// dump (grep/awk-friendly, one instrument per line).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gol::telemetry {

/// JSON string literal with escaping.
std::string jsonQuote(const std::string& s);
/// Finite doubles as shortest round-trip decimal; NaN/Inf as 0 (JSON has
/// no literal for them).
std::string jsonNumber(double v);

/// Minimal streaming JSON builder: keeps comma/nesting state so callers
/// serialize structures without hand-assembling punctuation. All result
/// printing in the repo (CLI, benches) goes through this one writer so the
/// output stays one dialect.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  /// Object member key; must be followed by a value or begin*().
  JsonWriter& key(const std::string& k);
  JsonWriter& value(double v);
  JsonWriter& value(int v) { return value(static_cast<double>(v)); }
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  const std::string& str() const { return out_; }

 private:
  void separate();

  std::string out_;
  std::vector<char> has_elems_;  ///< Per nesting level: wrote an element?
  bool after_key_ = false;
};

/// {"schema":"gol.metrics.v1","metrics":[{"name":...,"labels":{...},
///  "kind":"counter|gauge|histogram","value":...}, ...]}
/// Histogram entries carry "buckets":[{"le":bound|"+Inf","count":n}],
/// "count" and "sum" instead of "value".
std::string toJson(const Snapshot& snap);

/// One instrument per line:
///   gol.engine.bytes,path=3g0 value=123456
///   gol.sim.event_dt,unit=s count=42 sum=1.5 le0.001=40 leInf=2
std::string toLineProtocol(const Snapshot& snap);

/// Snapshots `registry` and writes toJson() to `path`; throws
/// std::runtime_error on I/O failure.
void writeJsonSnapshot(const Registry& registry, const std::string& path);

}  // namespace gol::telemetry
