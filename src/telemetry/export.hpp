// Exporters for registry snapshots: a machine-readable JSON document (the
// `BENCH_<name>.json` cross-PR trajectory format) and a line-protocol text
// dump (grep/awk-friendly, one instrument per line).
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace gol::telemetry {

/// JSON string literal with escaping.
std::string jsonQuote(const std::string& s);
/// Finite doubles as shortest round-trip decimal; NaN/Inf as 0 (JSON has
/// no literal for them).
std::string jsonNumber(double v);

/// {"schema":"gol.metrics.v1","metrics":[{"name":...,"labels":{...},
///  "kind":"counter|gauge|histogram","value":...}, ...]}
/// Histogram entries carry "buckets":[{"le":bound|"+Inf","count":n}],
/// "count" and "sum" instead of "value".
std::string toJson(const Snapshot& snap);

/// One instrument per line:
///   gol.engine.bytes,path=3g0 value=123456
///   gol.sim.event_dt,unit=s count=42 sum=1.5 le0.001=40 leInf=2
std::string toLineProtocol(const Snapshot& snap);

/// Snapshots `registry` and writes toJson() to `path`; throws
/// std::runtime_error on I/O failure.
void writeJsonSnapshot(const Registry& registry, const std::string& path);

}  // namespace gol::telemetry
