#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::telemetry {

namespace {

/// Instrument identity: name plus canonically-ordered labels (Labels is a
/// std::map, so iteration order is already canonical).
std::string slotKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in sane label text
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram needs >= 1 bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram bounds must be sorted ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomicAdd(sum_, v);
}

const SnapshotEntry* Snapshot::find(const std::string& name,
                                    const Labels& labels) const {
  for (const auto& e : entries) {
    if (e.name != name) continue;
    if (!labels.empty() && e.labels != labels) continue;
    return &e;
  }
  return nullptr;
}

Registry::Slot& Registry::findOrCreate(const std::string& name,
                                       const Labels& labels,
                                       SnapshotEntry::Kind kind) {
  const std::string key = slotKey(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    if (it->second->kind != kind)
      throw std::logic_error("telemetry instrument '" + name +
                             "' re-registered with a different kind");
    return *it->second;
  }
  slots_.push_back(Slot{name, labels, kind, nullptr, nullptr, nullptr});
  Slot& slot = slots_.back();
  index_[key] = &slot;
  return slot;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = findOrCreate(name, labels, SnapshotEntry::Kind::kCounter);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = findOrCreate(name, labels, SnapshotEntry::Kind::kGauge);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds,
                               const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = findOrCreate(name, labels, SnapshotEntry::Kind::kHistogram);
  if (!slot.histogram)
    slot.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot.histogram;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.entries.reserve(slots_.size());
  for (const auto& slot : slots_) {
    SnapshotEntry e;
    e.name = slot.name;
    e.labels = slot.labels;
    e.kind = slot.kind;
    switch (slot.kind) {
      case SnapshotEntry::Kind::kCounter:
        e.value = slot.counter->value();
        break;
      case SnapshotEntry::Kind::kGauge:
        e.value = slot.gauge->value();
        break;
      case SnapshotEntry::Kind::kHistogram: {
        const Histogram& h = *slot.histogram;
        e.bounds = h.bounds();
        e.counts.reserve(e.bounds.size() + 1);
        for (std::size_t i = 0; i <= e.bounds.size(); ++i)
          e.counts.push_back(h.bucketCount(i));
        e.count = h.count();
        e.value = h.sum();
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace gol::telemetry
