#include "pkt/tcp_packet_sim.hpp"

#include <algorithm>
#include <cmath>

#include "sim/units.hpp"

namespace gol::pkt {

TcpTransfer::TcpTransfer(sim::Simulator& sim, const PathSpec& path,
                         double bytes, sim::Rng rng,
                         std::function<void(const TransferStats&)> done)
    : sim_(sim),
      path_(path),
      total_segments_(static_cast<long>(
          std::ceil(bytes / path.mss_bytes))),
      bytes_(bytes),
      rng_(rng),
      done_(std::move(done)) {
  if (total_segments_ < 1) total_segments_ = 1;
  cwnd_ = path.initial_cwnd;
}

double TcpTransfer::serviceTimeS() const {
  return path_.mss_bytes * sim::kBitsPerByte / path_.rate_bps;
}

void TcpTransfer::start() {
  running_ = true;
  started_at_ = sim_.now();
  // Handshake + request serialization before the first data segment.
  sim_.scheduleIn(path_.handshake_rtts * path_.rtt_s, [this] {
    trySend();
    armRto();
  });
}

void TcpTransfer::trySend() {
  if (!running_) return;
  while (next_seq_ < total_segments_ &&
         next_seq_ - acked_ < static_cast<long>(cwnd_)) {
    injectPacket(next_seq_, false);
    ++next_seq_;
  }
}

void TcpTransfer::injectPacket(long seq, bool retransmission) {
  ++stats_.packets_sent;
  if (retransmission) ++stats_.retransmits;

  // Droptail at the bottleneck plus optional random (wireless) loss.
  if (queue_occupancy_ >= path_.queue_packets) return;  // dropped
  if (path_.random_loss > 0 && rng_.bernoulli(path_.random_loss))
    return;  // corrupted on the air

  ++queue_occupancy_;
  const double depart =
      std::max(sim_.now(), busy_until_) + serviceTimeS();
  busy_until_ = depart;
  // Delivered to the receiver half an RTT after leaving the bottleneck.
  sim_.scheduleAt(depart, [this] { --queue_occupancy_; });
  sim_.scheduleAt(depart + path_.rtt_s / 2, [this, seq] {
    onPacketDelivered(seq);
  });
}

void TcpTransfer::onPacketDelivered(long seq) {
  if (!running_) return;
  if (seq == rcv_next_) {
    ++rcv_next_;
    while (rcv_out_of_order_.erase(rcv_next_) > 0) ++rcv_next_;
  } else if (seq > rcv_next_) {
    rcv_out_of_order_.insert(seq);
  }
  // Cumulative ACK plus SACK information (the holes the receiver can see)
  // travels back half an RTT.
  const long cumulative = rcv_next_;
  std::vector<long> missing;
  if (!rcv_out_of_order_.empty()) {
    long expect = rcv_next_;
    for (long got : rcv_out_of_order_) {
      for (long hole = expect; hole < got && missing.size() < 64; ++hole) {
        missing.push_back(hole);
      }
      expect = got + 1;
      if (missing.size() >= 64) break;
    }
  }
  sim_.scheduleIn(path_.rtt_s / 2,
                  [this, cumulative, missing = std::move(missing)] {
                    onAck(cumulative, missing);
                  });
}

void TcpTransfer::onAck(long cumulative_ack,
                        const std::vector<long>& sack_missing) {
  if (!running_) return;
  // SACK-driven retransmission: while in recovery, resend each reported
  // hole once per recovery episode.
  if (recovery_until_ >= 0) {
    for (long hole : sack_missing) {
      if (hole >= recovery_until_) break;
      if (retransmitted_.insert(hole).second) {
        injectPacket(hole, true);
      }
    }
  }
  if (cumulative_ack > acked_) {
    acked_ = cumulative_ack;
    dupacks_ = 0;
    if (recovery_until_ >= 0) {
      if (acked_ >= recovery_until_) {
        recovery_until_ = -1;  // recovery complete
      } else if (retransmitted_.insert(acked_).second) {
        // NewReno partial ACK: another hole in the same window —
        // retransmit it immediately instead of stalling into an RTO.
        injectPacket(acked_, true);
      }
    }
    if (recovery_until_ < 0) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;  // slow start
      } else {
        cwnd_ += 1.0 / cwnd_;  // congestion avoidance
      }
    }
    stats_.max_cwnd_segments = std::max(stats_.max_cwnd_segments, cwnd_);
    armRto();
    if (acked_ >= total_segments_) {
      finish();
      return;
    }
    trySend();
    return;
  }

  // Duplicate ACK.
  if (recovery_until_ >= 0) return;  // already recovering
  if (++dupacks_ >= 3) {
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);
    cwnd_ = ssthresh_;
    recovery_until_ = next_seq_;
    dupacks_ = 0;
    retransmitted_.clear();
    retransmitted_.insert(acked_);
    injectPacket(acked_, true);  // resend the first missing segment
    armRto();
  }
}

void TcpTransfer::armRto() {
  if (rto_event_ != 0) sim_.cancel(rto_event_);
  const double rto =
      std::max(0.2, 3.0 * (path_.rtt_s + serviceTimeS() *
                                             path_.queue_packets));
  rto_event_ = sim_.scheduleIn(rto, [this] { onRto(); });
}

void TcpTransfer::onRto() {
  rto_event_ = 0;
  if (!running_ || acked_ >= total_segments_) return;
  ++stats_.timeouts;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  recovery_until_ = -1;
  dupacks_ = 0;
  retransmitted_.clear();
  injectPacket(acked_, true);
  armRto();
}

void TcpTransfer::finish() {
  running_ = false;
  if (rto_event_ != 0) sim_.cancel(rto_event_);
  stats_.completed = true;
  stats_.duration_s = sim_.now() - started_at_;
  stats_.goodput_bps =
      stats_.duration_s > 0 ? bytes_ * sim::kBitsPerByte / stats_.duration_s
                            : 0;
  if (done_) done_(stats_);
}

TransferStats runPacketTransfer(const PathSpec& path, double bytes,
                                std::uint64_t seed) {
  sim::Simulator sim;
  TransferStats out;
  TcpTransfer transfer(sim, path, bytes, sim::Rng(seed),
                       [&out](const TransferStats& s) { out = s; });
  transfer.start();
  sim.run();
  return out;
}

}  // namespace gol::pkt
