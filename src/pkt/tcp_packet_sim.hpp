// Packet-level TCP (Reno) over a single bottleneck path with a droptail
// queue. This module exists to *validate* the fluid abstraction the rest
// of the repository runs on: the fluid model asserts that a transfer takes
//   setup/slow-start overhead + bytes / min(fair_share, mathis_cap)
// and the validation bench (validation_fluid_vs_packet) checks that a real
// windowed sender over a queue agrees within tolerance across object
// sizes, RTTs and loss rates.
//
// Scope: one flow, one bottleneck. Slow start, congestion avoidance, fast
// retransmit (3 dupacks), retransmission timeout, optional i.i.d. random
// loss (the wireless case behind the Mathis ceiling).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace gol::pkt {

struct PathSpec {
  double rate_bps = 10e6;   ///< Bottleneck service rate.
  double rtt_s = 0.05;      ///< Propagation RTT (queueing adds on top).
  int queue_packets = 64;   ///< Droptail buffer at the bottleneck.
  int mss_bytes = 1460;
  double random_loss = 0.0; ///< i.i.d. drop probability (wireless).
  int initial_cwnd = 10;    ///< RFC 6928, matching the fluid model.
  double handshake_rtts = 2.0;  ///< SYN + request, as in net::TcpParams.
};

struct TransferStats {
  bool completed = false;
  double duration_s = 0;     ///< Handshake start to last byte ACKed.
  long packets_sent = 0;     ///< Including retransmissions.
  long retransmits = 0;
  long timeouts = 0;
  double max_cwnd_segments = 0;
  double goodput_bps = 0;
};

/// One transfer; owns its timers on the shared simulator. Keep alive until
/// the completion callback fires.
class TcpTransfer {
 public:
  TcpTransfer(sim::Simulator& sim, const PathSpec& path, double bytes,
              sim::Rng rng, std::function<void(const TransferStats&)> done);
  TcpTransfer(const TcpTransfer&) = delete;
  TcpTransfer& operator=(const TcpTransfer&) = delete;

  void start();

 private:
  double serviceTimeS() const;
  void trySend();
  void injectPacket(long seq, bool retransmission);
  void onPacketDelivered(long seq);
  void onAck(long cumulative_ack, const std::vector<long>& sack_missing);
  void armRto();
  void onRto();
  void finish();

  sim::Simulator& sim_;
  PathSpec path_;
  long total_segments_;
  double bytes_;
  sim::Rng rng_;
  std::function<void(const TransferStats&)> done_;

  // Sender state.
  long next_seq_ = 0;       ///< Next new segment to send.
  long acked_ = 0;          ///< Cumulative: all < acked_ delivered.
  double cwnd_ = 10;        ///< Segments.
  double ssthresh_ = 1e9;
  int dupacks_ = 0;
  long recovery_until_ = -1;  ///< Fast-recovery exit point.
  std::set<long> retransmitted_;  ///< Holes already resent this recovery.
  sim::EventId rto_event_ = 0;

  // Receiver state.
  long rcv_next_ = 0;                ///< Next in-order segment expected.
  std::set<long> rcv_out_of_order_;

  // Bottleneck queue state.
  int queue_occupancy_ = 0;
  double busy_until_ = 0;

  TransferStats stats_;
  double started_at_ = 0;
  bool running_ = false;
};

/// Convenience: runs one transfer to completion on a private simulator.
TransferStats runPacketTransfer(const PathSpec& path, double bytes,
                                std::uint64_t seed = 1);

}  // namespace gol::pkt
