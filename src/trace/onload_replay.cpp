#include "trace/onload_replay.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "net/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gol::trace {

ReplayResult replayOnload(const DslamTrace& trace, const ReplayConfig& cfg) {
  ReplayResult result{stats::BinnedSeries(sim::days(1), cfg.bin_s),
                      0.0, 0, 0, stats::Summary{}, 0.0};

  sim::Simulator simulator;
  net::FlowNetwork network(simulator);
  std::vector<net::Link*> towers;
  for (int t = 0; t < cfg.towers; ++t) {
    towers.push_back(network.createLink("tower" + std::to_string(t),
                                        cfg.backhaul_bps));
  }

  std::map<std::uint32_t, double> budget;
  // Shared mutable state captured by the scheduled lambdas; kept alive for
  // the whole replay.
  struct Boost {
    double bytes;
    double started_at;
    double uncontended_s;
  };
  auto boosts = std::make_shared<std::map<net::FlowId, Boost>>();

  for (const auto& req : trace.requests) {
    if (req.bytes < cfg.min_video_bytes) {
      ++result.skipped_videos;
      continue;
    }
    auto [it, inserted] =
        budget.emplace(req.user, cfg.daily_budget_bytes);
    const double onload = std::min(it->second, req.bytes * cfg.share);
    if (onload <= 0) {
      ++result.skipped_videos;
      continue;
    }
    it->second -= onload;
    ++result.boosted_videos;
    result.onloaded_bytes += onload;

    // Households map onto the tower covering them (stable by user id).
    net::Link* tower = towers[req.user % towers.size()];
    const double rate_cap = cfg.household_rate_bps;
    simulator.scheduleAt(
        req.time_s, [&network, &simulator, boosts, tower, onload, rate_cap,
                     &result] {
          net::FlowSpec spec;
          spec.path = {tower};
          spec.bytes = onload;
          spec.rate_cap_bps = rate_cap;
          spec.on_complete = [&simulator, boosts, &result](net::FlowId id) {
            auto found = boosts->find(id);
            if (found == boosts->end()) return;
            const Boost& b = found->second;
            const double contended = simulator.now() - b.started_at;
            result.stretch.add(contended / b.uncontended_s);
            boosts->erase(found);
          };
          const net::FlowId id = network.startFlow(std::move(spec));
          (*boosts)[id] = Boost{onload, simulator.now(),
                                onload * sim::kBitsPerByte / rate_cap};
        });
  }
  // Sample the towers' instantaneous load into the bin series (uniformly
  // spreading each flow's bytes would smear backlog into bins where the
  // links were actually saturated, over-counting past capacity).
  const double sample_s = std::min(cfg.bin_s / 5.0, 60.0);
  for (double t = sample_s / 2; t < sim::days(1) * 2; t += sample_s) {
    simulator.scheduleAt(t, [&network, &towers, &result, t, sample_s] {
      double load_bps = 0;
      for (net::Link* tower : towers) load_bps += network.linkLoadBps(tower);
      // Bins past the day clamp into the last bin (overnight drain).
      result.load_bytes.add(std::min(t, sim::days(1) - 1.0),
                            load_bps / 8.0 * sample_s);
    });
  }
  simulator.run();

  const double capacity_bytes_per_bin =
      static_cast<double>(cfg.towers) * cfg.backhaul_bps / 8.0 * cfg.bin_s;
  result.peak_utilization =
      capacity_bytes_per_bin > 0
          ? result.load_bytes.peak() / capacity_bytes_per_bin
          : 0;
  return result;
}

}  // namespace gol::trace
