#include "trace/mno.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::trace {

std::vector<double> MnoDataset::usedFractions(std::size_t month) const {
  std::vector<double> out;
  out.reserve(users.size());
  for (const auto& u : users) out.push_back(u.usedFraction(month));
  return out;
}

double MnoDataset::meanFreeBytes(std::size_t month) const {
  if (users.empty()) return 0;
  double total = 0;
  for (const auto& u : users)
    total += std::max(0.0, u.cap_bytes - u.monthly_usage_bytes.at(month));
  return total / static_cast<double>(users.size());
}

MnoDataset generateMnoDataset(const MnoConfig& cfg, sim::Rng& rng) {
  if (cfg.cap_choices_bytes.size() != cfg.cap_weights.size())
    throw std::invalid_argument("MnoConfig: cap choices/weights mismatch");
  MnoDataset ds;
  ds.users.reserve(cfg.users);
  for (std::size_t i = 0; i < cfg.users; ++i) {
    MnoUser u;
    u.cap_bytes = cfg.cap_choices_bytes[rng.weightedIndex(cfg.cap_weights)];
    u.base_fraction =
        std::min(1.0, rng.lognormal(cfg.fraction_mu, cfg.fraction_sigma));
    u.monthly_usage_bytes.reserve(static_cast<std::size_t>(cfg.months));
    for (int m = 0; m < cfg.months; ++m) {
      const double f = std::min(
          1.0, u.base_fraction * rng.lognormal(0.0, cfg.month_sigma));
      u.monthly_usage_bytes.push_back(f * u.cap_bytes);
    }
    ds.users.push_back(std::move(u));
  }
  return ds;
}

}  // namespace gol::trace
