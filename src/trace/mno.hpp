// Synthetic stand-in for the paper's proprietary MNO dataset (Table 1):
// per-user monthly data demand versus contracted cap for ~1M mobile
// broadband customers. The generator's usage-fraction distribution is
// fitted to the anchors of Fig 10 — 40 % of customers use < 10 % of their
// cap and 75 % use < 50 % — which a lognormal matches almost exactly
// (mu = -1.864, sigma = 1.736, clamped at the cap).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace gol::trace {

struct MnoUser {
  double cap_bytes = 0;
  /// The user's long-run mean usage as a fraction of the cap.
  double base_fraction = 0;
  /// One entry per simulated month (bytes).
  std::vector<double> monthly_usage_bytes;

  double usedFraction(std::size_t month) const {
    return cap_bytes > 0 ? monthly_usage_bytes.at(month) / cap_bytes : 0.0;
  }
};

struct MnoConfig {
  std::size_t users = 20000;
  int months = 12;
  /// Contract mix: cap sizes and their weights (2011-era mobile broadband
  /// plans; the mix is tuned so mean free capacity lands near the paper's
  /// ~600 MB/month).
  std::vector<double> cap_choices_bytes = {300e6, 500e6, 1e9, 2e9};
  std::vector<double> cap_weights = {0.15, 0.35, 0.38, 0.12};
  /// Lognormal parameters of the per-user mean usage fraction (see above).
  double fraction_mu = -1.864;
  double fraction_sigma = 1.736;
  /// Month-to-month multiplicative noise (lognormal sigma) around the
  /// user's base fraction — what the allowance estimator must guard
  /// against.
  double month_sigma = 0.45;
};

struct MnoDataset {
  std::vector<MnoUser> users;

  /// Fractions of cap used in `month`, one per user (the Fig 10 CDF).
  std::vector<double> usedFractions(std::size_t month) const;
  /// Mean free (unused) bytes per user in `month`.
  double meanFreeBytes(std::size_t month) const;
};

MnoDataset generateMnoDataset(const MnoConfig& cfg, sim::Rng& rng);

}  // namespace gol::trace
