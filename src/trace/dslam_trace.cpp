#include "trace/dslam_trace.hpp"

#include <algorithm>
#include <cmath>

#include "cellular/location.hpp"

namespace gol::trace {

double DslamTrace::totalBytes() const {
  double total = 0;
  for (const auto& r : requests) total += r.bytes;
  return total;
}

double sampleTimeOfDay(const net::DiurnalShape& shape, sim::Rng& rng) {
  // Rejection sampling against the shape's (normalized) density.
  const double peak = shape.maxValue();
  for (int tries = 0; tries < 1024; ++tries) {
    const double t = rng.uniform(0.0, 86400.0);
    if (rng.uniform(0.0, peak) <= shape.at(t)) return t;
  }
  return rng.uniform(0.0, 86400.0);
}

DslamTrace generateDslamTrace(const DslamTraceConfig& cfg, sim::Rng& rng) {
  DslamTrace trace;
  trace.config = cfg;
  const net::DiurnalShape& shape = cell::wiredDiurnalShape();

  for (std::size_t u = 0; u < cfg.subscribers; ++u) {
    if (!rng.bernoulli(cfg.video_user_fraction)) continue;
    ++trace.video_users;
    int views = static_cast<int>(
        std::lround(rng.lognormal(cfg.views_mu, cfg.views_sigma)));
    views = std::clamp(views, 1, cfg.max_views_per_day);
    for (int v = 0; v < views; ++v) {
      VideoRequest req;
      req.user = static_cast<std::uint32_t>(u);
      req.time_s = sampleTimeOfDay(shape, rng);
      req.bytes = rng.lognormalMeanSd(cfg.video_size_mean_bytes,
                                      cfg.video_size_sd_bytes);
      trace.requests.push_back(req);
    }
  }
  std::sort(trace.requests.begin(), trace.requests.end(),
            [](const VideoRequest& a, const VideoRequest& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.user < b.user;
            });
  return trace;
}

}  // namespace gol::trace
