// CSV import/export for the synthetic datasets, so experiments can be
// plotted externally and traces can be frozen/replayed across versions.
#pragma once

#include <string>

#include "trace/csv.hpp"
#include "trace/dslam_trace.hpp"
#include "trace/mno.hpp"

namespace gol::trace {

/// DSLAM trace <-> CSV with header "user,time_s,bytes".
std::vector<CsvRow> dslamToCsv(const DslamTrace& trace);
/// Parses rows produced by dslamToCsv; throws std::runtime_error on a
/// malformed header or non-numeric fields. The config is not round-tripped
/// (only the requests are data); `config` on the result is default.
DslamTrace dslamFromCsv(const std::vector<CsvRow>& rows);

/// MNO dataset <-> CSV with header "user,cap_bytes,month0,month1,...".
std::vector<CsvRow> mnoToCsv(const MnoDataset& ds);
MnoDataset mnoFromCsv(const std::vector<CsvRow>& rows);

/// File convenience wrappers.
void saveDslamTrace(const std::string& path, const DslamTrace& trace);
DslamTrace loadDslamTrace(const std::string& path);
void saveMnoDataset(const std::string& path, const MnoDataset& ds);
MnoDataset loadMnoDataset(const std::string& path);

}  // namespace gol::trace
