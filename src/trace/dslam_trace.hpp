// Synthetic stand-in for the paper's DSLAM flow-level trace (Table 1):
// 24 h of HTTP/video requests from the 18 000 DSL lines behind one DSLAM in
// a major European city (April 2011, 3 Mbps ADSL). Matched moments:
//   * 68 % of users watch at least one video;
//   * 14.12 videos/day per video-user, median 6, sd 30.13 — a single
//     lognormal (mu = ln 6, sigma = 1.309) reproduces all three;
//   * request times follow the wired diurnal profile (Fig 1);
//   * video sizes average ~50 MB (the paper's YouTube reference).
#pragma once

#include <cstdint>
#include <vector>

#include "net/capacity_profile.hpp"
#include "sim/rng.hpp"

namespace gol::trace {

struct VideoRequest {
  std::uint32_t user = 0;
  double time_s = 0;   ///< Seconds since midnight.
  double bytes = 0;    ///< Full size of the requested video file.
};

struct DslamTraceConfig {
  std::size_t subscribers = 18000;
  double video_user_fraction = 0.68;
  /// Lognormal of videos/day for video users (see header comment).
  double views_mu = 1.7918;     // ln 6
  double views_sigma = 1.309;
  /// Video file sizes: lognormal with linear mean 50 MB, sd 60 MB.
  double video_size_mean_bytes = 50e6;
  double video_size_sd_bytes = 60e6;
  double adsl_down_bps = 3e6;   ///< The trace's uniform ADSL speed.
  /// Cap on views per user per day (the generator is heavy-tailed).
  int max_views_per_day = 400;
};

struct DslamTrace {
  DslamTraceConfig config;
  std::vector<VideoRequest> requests;  ///< Sorted by time.
  std::size_t video_users = 0;

  double totalBytes() const;
};

/// One simulated day. Deterministic in (cfg, rng state).
DslamTrace generateDslamTrace(const DslamTraceConfig& cfg, sim::Rng& rng);

/// Samples a time-of-day (seconds) proportional to `shape`.
double sampleTimeOfDay(const net::DiurnalShape& shape, sim::Rng& rng);

}  // namespace gol::trace
