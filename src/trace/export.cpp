#include "trace/export.hpp"

#include <charconv>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace gol::trace {

namespace {

double parseDouble(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    throw std::runtime_error(std::string("bad numeric field for ") + what +
                             ": '" + s + "'");
  return v;
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::vector<CsvRow> dslamToCsv(const DslamTrace& trace) {
  std::vector<CsvRow> rows;
  rows.push_back({"user", "time_s", "bytes"});
  for (const auto& r : trace.requests) {
    rows.push_back({std::to_string(r.user), fmt(r.time_s), fmt(r.bytes)});
  }
  return rows;
}

DslamTrace dslamFromCsv(const std::vector<CsvRow>& rows) {
  if (rows.empty() || rows[0] != CsvRow{"user", "time_s", "bytes"})
    throw std::runtime_error("dslamFromCsv: missing/invalid header");
  DslamTrace trace;
  std::set<std::uint32_t> users;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 3)
      throw std::runtime_error("dslamFromCsv: row arity");
    VideoRequest req;
    req.user =
        static_cast<std::uint32_t>(parseDouble(rows[i][0], "user"));
    req.time_s = parseDouble(rows[i][1], "time_s");
    req.bytes = parseDouble(rows[i][2], "bytes");
    users.insert(req.user);
    trace.requests.push_back(req);
  }
  trace.video_users = users.size();
  return trace;
}

std::vector<CsvRow> mnoToCsv(const MnoDataset& ds) {
  std::vector<CsvRow> rows;
  CsvRow header = {"user", "cap_bytes"};
  const std::size_t months =
      ds.users.empty() ? 0 : ds.users[0].monthly_usage_bytes.size();
  for (std::size_t m = 0; m < months; ++m)
    header.push_back("month" + std::to_string(m));
  rows.push_back(std::move(header));
  for (std::size_t u = 0; u < ds.users.size(); ++u) {
    CsvRow row = {std::to_string(u), fmt(ds.users[u].cap_bytes)};
    for (double b : ds.users[u].monthly_usage_bytes) row.push_back(fmt(b));
    rows.push_back(std::move(row));
  }
  return rows;
}

MnoDataset mnoFromCsv(const std::vector<CsvRow>& rows) {
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != "user" ||
      rows[0][1] != "cap_bytes")
    throw std::runtime_error("mnoFromCsv: missing/invalid header");
  const std::size_t months = rows[0].size() - 2;
  MnoDataset ds;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != months + 2)
      throw std::runtime_error("mnoFromCsv: row arity");
    MnoUser u;
    u.cap_bytes = parseDouble(rows[i][1], "cap_bytes");
    for (std::size_t m = 0; m < months; ++m)
      u.monthly_usage_bytes.push_back(parseDouble(rows[i][m + 2], "month"));
    if (u.cap_bytes > 0 && !u.monthly_usage_bytes.empty())
      u.base_fraction = u.monthly_usage_bytes[0] / u.cap_bytes;
    ds.users.push_back(std::move(u));
  }
  return ds;
}

void saveDslamTrace(const std::string& path, const DslamTrace& trace) {
  saveCsv(path, dslamToCsv(trace));
}

DslamTrace loadDslamTrace(const std::string& path) {
  return dslamFromCsv(loadCsv(path));
}

void saveMnoDataset(const std::string& path, const MnoDataset& ds) {
  saveCsv(path, mnoToCsv(ds));
}

MnoDataset loadMnoDataset(const std::string& path) {
  return mnoFromCsv(loadCsv(path));
}

}  // namespace gol::trace
