// Minimal CSV reader/writer so generated traces can be persisted and the
// bench harness can export series for external plotting.
#pragma once

#include <string>
#include <vector>

namespace gol::trace {

using CsvRow = std::vector<std::string>;

/// Serializes rows, quoting fields containing separators/quotes/newlines.
std::string writeCsv(const std::vector<CsvRow>& rows, char sep = ',');

/// Parses CSV text (handles quoted fields with embedded separators and
/// doubled quotes). Empty trailing line is ignored.
std::vector<CsvRow> parseCsv(const std::string& text, char sep = ',');

/// Convenience file helpers; throw std::runtime_error on I/O failure.
void saveCsv(const std::string& path, const std::vector<CsvRow>& rows,
             char sep = ',');
std::vector<CsvRow> loadCsv(const std::string& path, char sep = ',');

}  // namespace gol::trace
