// Replays a DSLAM day through the fluid network: every budgeted onload
// becomes a real flow across the covering towers' backhaul, so the Fig 11b
// load curve comes out of simulated contention instead of arithmetic —
// including the slowdown ("stretch") users would see when the cellular
// links saturate.
#pragma once

#include <cstddef>

#include "stats/summary.hpp"
#include "stats/timeseries.hpp"
#include "trace/dslam_trace.hpp"

namespace gol::trace {

struct ReplayConfig {
  int towers = 2;                  ///< Sec. 2.1: two towers cover the area.
  double backhaul_bps = 40e6;      ///< Per tower.
  /// Aggregate cellular rate one household's phones can pull when the
  /// network is uncontended (2 devices x ~1.6 Mbps).
  double household_rate_bps = 3.2e6;
  double share = 0.516;            ///< Phone byte share of each video.
  double daily_budget_bytes = 40e6;
  double min_video_bytes = 750e3;  ///< Paper's eligibility threshold.
  double bin_s = 300;              ///< Fig 11b uses 5-minute bins.
};

struct ReplayResult {
  stats::BinnedSeries load_bytes;    ///< Cellular bytes carried per bin.
  double onloaded_bytes = 0;
  std::size_t boosted_videos = 0;
  std::size_t skipped_videos = 0;    ///< Budget exhausted or ineligible.
  /// Ratio of contended to uncontended onload duration per boost; 1.0
  /// means the towers absorbed the load without queueing.
  stats::Summary stretch;
  double peak_utilization = 0;       ///< Max per-bin load over capacity.
};

ReplayResult replayOnload(const DslamTrace& trace,
                          const ReplayConfig& cfg = {});

}  // namespace gol::trace
