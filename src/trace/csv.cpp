#include "trace/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gol::trace {

namespace {

bool needsQuoting(const std::string& field, char sep) {
  return field.find(sep) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos ||
         field.find('\r') != std::string::npos;
}

std::string quoted(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string writeCsv(const std::vector<CsvRow>& rows, char sep) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += sep;
      out += needsQuoting(row[i], sep) ? quoted(row[i]) : row[i];
    }
    out += '\n';
  }
  return out;
}

std::vector<CsvRow> parseCsv(const std::string& text, char sep) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto endField = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto endRow = [&] {
    if (!row.empty() || field_started || !field.empty()) {
      endField();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      field_started = true;
    } else if (c == sep) {
      endField();
      field_started = true;  // a separator implies another field follows
    } else if (c == '\n') {
      endRow();
    } else if (c != '\r') {
      field += c;
      field_started = true;
    }
  }
  endRow();
  return rows;
}

void saveCsv(const std::string& path, const std::vector<CsvRow>& rows,
             char sep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("saveCsv: cannot open " + path);
  const std::string text = writeCsv(rows, sep);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw std::runtime_error("saveCsv: write failed for " + path);
}

std::vector<CsvRow> loadCsv(const std::string& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("loadCsv: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseCsv(buf.str(), sep);
}

}  // namespace gol::trace
