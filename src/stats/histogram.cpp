#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gol::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::binLow(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::binHigh(std::size_t bin) const {
  return binLow(bin + 1);
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    std::snprintf(line, sizeof line, "[%8.2f, %8.2f) %7zu |", binLow(b),
                  binHigh(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace gol::stats
