// Aligned ASCII table printing for benchmark output.
#pragma once

#include <string>
#include <vector>

namespace gol::stats {

/// Collects rows of cells and renders them with per-column alignment.
/// All bench binaries print paper-vs-measured rows through this.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);

  std::string render() const;
  /// Renders straight to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gol::stats
