#include "stats/cdf.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.hpp"

namespace gol::stats {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::ensureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fractionBelow(double x) const {
  if (samples_.empty()) throw std::logic_error("Cdf::fractionBelow on empty");
  ensureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double p) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty");
  ensureSorted();
  return stats::quantile(samples_, p);
}

double Cdf::min() const {
  if (samples_.empty()) throw std::logic_error("Cdf::min on empty");
  ensureSorted();
  return samples_.front();
}

double Cdf::max() const {
  if (samples_.empty()) throw std::logic_error("Cdf::max on empty");
  ensureSorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  if (samples_.empty() || points < 2) return {};
  ensureSorted();
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = samples_.front();
  const double hi = samples_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fractionBelow(x));
  }
  return out;
}

}  // namespace gol::stats
