#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gol::stats {

BinnedSeries::BinnedSeries(double horizon_s, double bin_s)
    : horizon_s_(horizon_s), bin_s_(bin_s) {
  if (horizon_s <= 0 || bin_s <= 0 || bin_s > horizon_s)
    throw std::invalid_argument("BinnedSeries: bad horizon/bin");
  bins_.assign(static_cast<std::size_t>(std::ceil(horizon_s / bin_s)), 0.0);
}

void BinnedSeries::add(double t, double amount) {
  auto idx = static_cast<long>(t / bin_s_);
  idx = std::clamp<long>(idx, 0, static_cast<long>(bins_.size()) - 1);
  bins_[static_cast<std::size_t>(idx)] += amount;
}

void BinnedSeries::addSpread(double t0, double t1, double amount) {
  if (t1 <= t0) {
    add(t0, amount);
    return;
  }
  const double rate = amount / (t1 - t0);
  double t = t0;
  while (t < t1) {
    const auto idx = std::clamp<long>(static_cast<long>(t / bin_s_), 0,
                                      static_cast<long>(bins_.size()) - 1);
    const double bin_end = bin_s_ * static_cast<double>(idx + 1);
    const double seg_end = std::min(t1, bin_end);
    bins_[static_cast<std::size_t>(idx)] += rate * (seg_end - t);
    if (seg_end <= t) break;  // past the last bin; remainder clamps there
    t = seg_end;
  }
}

double BinnedSeries::binStart(std::size_t bin) const {
  return bin_s_ * static_cast<double>(bin);
}

double BinnedSeries::total() const {
  double s = 0;
  for (double v : bins_) s += v;
  return s;
}

double BinnedSeries::peak() const {
  return bins_.empty() ? 0.0 : *std::max_element(bins_.begin(), bins_.end());
}

std::size_t BinnedSeries::peakBin() const {
  return static_cast<std::size_t>(
      std::max_element(bins_.begin(), bins_.end()) - bins_.begin());
}

std::vector<double> BinnedSeries::normalized() const {
  std::vector<double> out = bins_;
  const double p = peak();
  if (p > 0)
    for (double& v : out) v /= p;
  return out;
}

}  // namespace gol::stats
