// Time-binned accumulation of a quantity (bytes, requests, ...) over a window.
#pragma once

#include <cstddef>
#include <vector>

namespace gol::stats {

/// Accumulates values into fixed-width time bins over [0, horizon).
/// Used for the paper's 5-minute-bin load plots (Fig 11b) and diurnal curves.
class BinnedSeries {
 public:
  BinnedSeries(double horizon_s, double bin_s);

  /// Adds `amount` at time `t` (clamped into the window).
  void add(double t, double amount);
  /// Spreads `amount` uniformly over [t0, t1).
  void addSpread(double t0, double t1, double amount);

  std::size_t bins() const { return bins_.size(); }
  double binWidth() const { return bin_s_; }
  double at(std::size_t bin) const { return bins_.at(bin); }
  double binStart(std::size_t bin) const;
  double total() const;
  double peak() const;
  std::size_t peakBin() const;

  /// Values scaled so the maximum bin equals 1 (all-zero series stays zero).
  std::vector<double> normalized() const;
  const std::vector<double>& values() const { return bins_; }

 private:
  double horizon_s_;
  double bin_s_;
  std::vector<double> bins_;
};

}  // namespace gol::stats
