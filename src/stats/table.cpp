#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace gol::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      const std::size_t pad =
          widths[c] >= row[c].size() ? widths[c] - row[c].size() + 1 : 1;
      line.append(pad, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string sep;
  for (std::size_t w : widths) {
    sep += '+';
    sep.append(w + 2, '-');
  }
  sep += "+\n";

  std::string out = sep + renderRow(header_) + sep;
  for (const auto& row : rows_) out += renderRow(row);
  out += sep;
  return out;
}

void Table::print() const { std::cout << render() << std::flush; }

}  // namespace gol::stats
