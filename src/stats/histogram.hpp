// Fixed-width histogram over a bounded range.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gol::stats {

/// Fixed-bin histogram on [lo, hi). Values outside the range are clamped into
/// the first/last bin so total counts are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t countAt(std::size_t bin) const { return counts_.at(bin); }
  double binLow(std::size_t bin) const;
  double binHigh(std::size_t bin) const;
  /// Fraction of all samples in `bin`; zero if empty.
  double density(std::size_t bin) const;

  /// ASCII rendering, one row per bin, bar scaled to `width` columns.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gol::stats
