// Exponentially weighted moving average, the estimator used by the paper's
// MIN scheduler ("exponential smoothing filtering ... filter parameter 0.75").
#pragma once

#include <stdexcept>

namespace gol::stats {

/// EWMA with smoothing factor alpha in (0, 1]:
///   est <- alpha * sample + (1 - alpha) * est
/// Higher alpha tracks more aggressively ("high level of agility").
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0)
      throw std::invalid_argument("Ewma alpha must be in (0, 1]");
  }

  void update(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
  }

  bool seeded() const { return seeded_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace gol::stats
