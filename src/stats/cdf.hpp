// Empirical cumulative distribution function over a fixed sample set.
#pragma once

#include <cstddef>
#include <vector>

namespace gol::stats {

/// Empirical CDF. Built once from samples, then queried; O(log n) per query.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);
  std::size_t size() const { return sorted_ ? samples_.size() : samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x, in [0, 1].
  double fractionBelow(double x) const;
  /// Inverse CDF with interpolation; p in [0, 1].
  double quantile(double p) const;
  double min() const;
  double max() const;

  /// Evenly spaced (x, F(x)) points suitable for plotting / printing.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  void ensureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace gol::stats
