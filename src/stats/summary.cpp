#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gol::stats {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return n_ == 0 ? 0.0 : min_; }

double Summary::max() const { return n_ == 0 ? 0.0 : max_; }

double quantile(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty sample");
  if (p <= 0.0) return sorted.front();
  if (p >= 1.0) return sorted.back();
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

std::vector<double> quantiles(std::vector<double> samples,
                              std::span<const double> ps) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(quantile(samples, p));
  return out;
}

double mean(std::span<const double> xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

}  // namespace gol::stats
