// Streaming summary statistics (Welford) and order statistics on sample sets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gol::stats {

/// Streaming mean / variance / extrema accumulator using Welford's algorithm.
/// Numerically stable for long runs; O(1) memory.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator). Zero when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample set with linear interpolation between order
/// statistics (type-7, the numpy/R default). `p` in [0, 1].
double quantile(std::span<const double> sorted_samples, double p);

/// Convenience: copies, sorts, and evaluates several quantiles at once.
std::vector<double> quantiles(std::vector<double> samples,
                              std::span<const double> ps);

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

}  // namespace gol::stats
