#include "core/sim_paths.hpp"

#include <algorithm>
#include <utility>

namespace gol::core {

AdslTransferPath::AdslTransferPath(http::SimHttpClient& http,
                                   std::string name, net::NetPath path)
    : http_(http), name_(std::move(name)), path_(std::move(path)) {}

void AdslTransferPath::start(const Item& item, double offset, DoneFn done) {
  item_ = item;
  stalled_ = false;
  stalled_bytes_ = 0;
  corrupted_ = false;
  const double remaining = std::max(item.bytes - offset, 0.0);
  http::TransferRequest req;
  req.bytes = remaining;
  req.path = path_;
  req.warm = !first_transfer_;
  first_transfer_ = false;
  req.on_done = [this, remaining, done = std::move(done)](double) {
    const Item finished = *item_;
    const std::uint64_t digest =
        corrupted_ ? ~finished.checksum : finished.checksum;
    item_.reset();
    current_ = 0;
    done(finished, ItemResult::completed(remaining, digest));
  };
  current_ = http_.transfer(std::move(req));
}

bool AdslTransferPath::corruptCurrent() {
  if (!item_) return false;
  corrupted_ = true;
  return true;
}

double AdslTransferPath::abortCurrent() {
  if (!item_) return 0.0;
  double moved = stalled_bytes_;
  if (!stalled_) moved = http_.abort(current_);
  item_.reset();
  current_ = 0;
  stalled_ = false;
  stalled_bytes_ = 0;
  return moved;
}

bool AdslTransferPath::stallCurrent() {
  if (!item_ || stalled_) return false;
  // Freeze: tear down the underlying transfer so no completion ever fires,
  // but keep the item so busy() stays true — from the engine's point of
  // view the path has simply gone silent. Only the watchdog can free it.
  stalled_bytes_ = http_.abort(current_);
  current_ = 0;
  stalled_ = true;
  return true;
}

double AdslTransferPath::nominalRateBps() const {
  return http::pathNominalRateBps(path_);
}

CellularTransferPath::CellularTransferPath(cell::CellularDevice& device,
                                           cell::Direction dir,
                                           std::string name,
                                           std::vector<net::Link*> extra_links,
                                           double extra_rtt_s,
                                           net::TcpParams tcp)
    : device_(device),
      dir_(dir),
      name_(std::move(name)),
      extra_links_(std::move(extra_links)),
      extra_rtt_s_(extra_rtt_s),
      tcp_(tcp) {}

void CellularTransferPath::start(const Item& item, double offset,
                                 DoneFn done) {
  item_ = item;
  stalled_ = false;
  stalled_bytes_ = 0;
  corrupted_ = false;
  const double remaining = std::max(item.bytes - offset, 0.0);
  const double rtt = device_.rttS() + extra_rtt_s_;
  const double nominal = device_.nominalRateBps(dir_);
  const double overhead =
      first_transfer_
          ? net::transferOverheadS(remaining, rtt, nominal, tcp_)
          : net::warmTransferOverheadS(remaining, rtt, nominal, tcp_);
  first_transfer_ = false;

  // The HTTP proxy hop pays its setup first; RRC promotion (if the radio is
  // idle) is added by the device itself once the transfer starts.
  pending_start_ = device_.net().simulator().scheduleIn(
      overhead, [this, remaining, done = std::move(done)]() mutable {
        pending_start_ = 0;
        cell::CellularDevice::TransferOptions opts;
        opts.dir = dir_;
        opts.bytes = remaining / tcp_.efficiency;
        opts.extra_links = extra_links_;
        opts.on_complete = [this, remaining, done = std::move(done)] {
          const Item finished = *item_;
          const std::uint64_t digest =
              corrupted_ ? ~finished.checksum : finished.checksum;
          item_.reset();
          transfer_ = 0;
          done(finished, ItemResult::completed(remaining, digest));
        };
        transfer_ = device_.startTransfer(std::move(opts));
      });
}

bool CellularTransferPath::corruptCurrent() {
  if (!item_) return false;
  corrupted_ = true;
  return true;
}

double CellularTransferPath::abortCurrent() {
  if (!item_) return 0.0;
  double moved = stalled_bytes_;
  if (pending_start_ != 0) {
    device_.net().simulator().cancel(pending_start_);
    pending_start_ = 0;
  }
  if (transfer_ != 0) {
    moved = device_.abortTransfer(transfer_) * tcp_.efficiency;
    transfer_ = 0;
  }
  item_.reset();
  stalled_ = false;
  stalled_bytes_ = 0;
  return moved;
}

bool CellularTransferPath::stallCurrent() {
  if (!item_ || stalled_) return false;
  if (pending_start_ != 0) {
    device_.net().simulator().cancel(pending_start_);
    pending_start_ = 0;
  }
  if (transfer_ != 0) {
    stalled_bytes_ = device_.abortTransfer(transfer_) * tcp_.efficiency;
    transfer_ = 0;
  }
  stalled_ = true;
  return true;
}

double CellularTransferPath::nominalRateBps() const {
  return device_.nominalRateBps(dir_);
}

}  // namespace gol::core
