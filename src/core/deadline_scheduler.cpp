#include "core/deadline_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/units.hpp"

namespace gol::core {

DeadlineScheduler::DeadlineScheduler(std::vector<double> deadlines_s,
                                     double urgency_horizon_s)
    : deadlines_(std::move(deadlines_s)), horizon_(urgency_horizon_s) {}

void DeadlineScheduler::onTransactionStart(
    const Transaction& txn, const std::vector<double>& nominal_rates_bps) {
  if (txn.items.size() != deadlines_.size())
    throw std::invalid_argument(
        "DeadlineScheduler: one deadline per item required");
  path_rates_bps_ = nominal_rates_bps;
}

std::optional<std::size_t> DeadlineScheduler::nextItem(
    const EngineView& view, std::size_t path_index) {
  const ItemTable& items = *view.items;

  // Earliest-deadline pending item.
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items.status(i) != ItemStatus::kPending) continue;
    if (!best || deadlines_[i] < deadlines_[*best]) best = i;
  }

  // Most imminent in-flight item this path could duplicate.
  std::optional<std::size_t> urgent;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items.status(i) != ItemStatus::kInFlight) continue;
    if (items.carriedBy(i, path_index)) continue;
    if (deadlines_[i] > view.now + horizon_) continue;
    if (!urgent || deadlines_[i] < deadlines_[*urgent]) urgent = i;
  }

  if (!best) return urgent;  // tail: urgency-gated duplication only
  if (!urgent) return best;

  // Rescue: the urgent in-flight item outranks all pending work, AND a
  // fresh copy on this path is expected to land before the best current
  // carrier finishes (estimated from nominal rates and elapsed time) —
  // otherwise duplicating from scratch only burns capacity the later
  // segments need.
  // Rescue urgency is tighter than tail urgency: mid-stream duplication
  // steals capacity from every later segment, so it must be a near-miss.
  if (deadlines_[*urgent] < deadlines_[*best] &&
      deadlines_[*urgent] <= view.now + horizon_ / 3.0 &&
      !path_rates_bps_.empty()) {
    const double bytes = items.bytes(*urgent);
    const double assigned_at = items.firstAssignedAt(*urgent);
    double carrier_eta = std::numeric_limits<double>::infinity();
    items.forEachCarrier(*urgent, [&](std::size_t c) {
      const double rate = std::max(path_rates_bps_.at(c), 1e3);
      const double moved =
          std::max(0.0, (view.now - assigned_at)) * rate / 8.0;
      const double remaining = std::max(0.0, bytes - moved);
      carrier_eta = std::min(carrier_eta, remaining * 8.0 / rate);
    });
    const double fresh_eta =
        bytes * 8.0 / std::max(path_rates_bps_.at(path_index), 1e3);
    if (fresh_eta < carrier_eta) return urgent;
  }
  return best;
}

void DeadlineScheduler::onPathAdded(std::size_t path_index,
                                    double nominal_rate_bps) {
  if (path_index >= path_rates_bps_.size())
    path_rates_bps_.resize(path_index + 1, 1e3);
  path_rates_bps_[path_index] = nominal_rate_bps;
}

std::vector<double> DeadlineScheduler::hlsDeadlines(
    const std::vector<double>& segment_durations_s,
    const std::vector<double>& segment_bytes,
    std::size_t prebuffer_segments, double aggregate_rate_bps) {
  if (segment_durations_s.size() != segment_bytes.size())
    throw std::invalid_argument("hlsDeadlines: size mismatch");
  double prebuffer_bytes = 0;
  const std::size_t k =
      std::min(prebuffer_segments, segment_bytes.size());
  for (std::size_t i = 0; i < k; ++i) prebuffer_bytes += segment_bytes[i];
  const double start_estimate =
      aggregate_rate_bps > 0
          ? prebuffer_bytes * sim::kBitsPerByte / aggregate_rate_bps
          : 0.0;

  std::vector<double> deadlines;
  deadlines.reserve(segment_durations_s.size());
  double media_clock = 0;
  for (double dur : segment_durations_s) {
    deadlines.push_back(start_estimate + media_clock);
    media_clock += dur;
  }
  return deadlines;
}

}  // namespace gol::core
