// The Sec. 6 volume-cap machinery for the multi-provider deployment:
//
//   * the guard-band allowance estimator
//       3GOLa(t) = Fbar_u(t) - alpha * sigma_u(t)
//     over the free capacity (cap - usage) of the trailing tau months, with
//     the paper's operating point tau = 5 months, alpha = 4;
//   * the on-device usage tracker: daily allowance, A(t) = 3GOLa - U(t),
//     and the eligibility signal that gates discovery advertisements.
#pragma once

#include <span>
#include <vector>

namespace gol::core {

struct AllowanceConfig {
  int tau_months = 5;   ///< Averaging window (paper's tau).
  double alpha = 4.0;   ///< Guard multiplier on the free-capacity stddev.
};

/// Monthly 3GOL allowance from trailing free-capacity history (bytes per
/// month, most recent last). Uses at most the last tau entries; clamps at
/// zero. With fewer than 2 samples the stddev is unknown, so the estimate
/// is conservative: zero (no history -> no onloading).
double estimateMonthlyAllowance(std::span<const double> free_history,
                                const AllowanceConfig& cfg = {});

/// Evaluation of the estimator against realized usage, for the Sec. 6
/// result ("tau = 5 and alpha = 4 allows around 65 % of the available free
/// capacity to be used by 3GOL with expected overrun time of under 1 day
/// per month").
struct EstimatorOutcome {
  double allowance_bytes = 0;   ///< What 3GOL was allowed to spend.
  double free_bytes = 0;        ///< What was actually free that month.
  double overrun_days = 0;      ///< Day-equivalents by which the allowance
                                ///< exceeded the realized free capacity.
  bool overran = false;
};

/// Simulates applying the estimator month-by-month over a user's usage
/// series (`monthly_usage_bytes`) under `cap_bytes`, starting once tau
/// months of history exist.
std::vector<EstimatorOutcome> backtestEstimator(
    std::span<const double> monthly_usage_bytes, double cap_bytes,
    const AllowanceConfig& cfg = {}, int days_per_month = 30);

/// On-device tracker: slices a monthly allowance into daily budgets and
/// meters 3GOL usage. The paper's client advertises availability only
/// while quota remains (A(t) > 0), needing no input from the network.
class UsageTracker {
 public:
  UsageTracker(double monthly_allowance_bytes, int days_per_month = 30);

  double dailyAllowanceBytes() const;
  /// Remaining budget for today, A(t).
  double availableTodayBytes() const;
  bool eligible() const { return availableTodayBytes() > 0; }

  /// Meters 3GOL bytes (call with metered cellular bytes, waste included).
  void recordUsage(double bytes);
  /// Rolls to the next day; unused budget does not carry over beyond the
  /// monthly allowance.
  void nextDay();

  /// Live re-estimation hook: replaces the monthly allowance mid-flight
  /// (e.g. when a fresh 3GOLa(t) estimate lands). Usage already metered
  /// this month stays charged, so a shrunken allowance can zero A(t)
  /// immediately.
  void setMonthlyAllowance(double bytes);

  /// Crash-recovery hook: reinstates metered usage replayed from a durable
  /// ledger (proto::QuotaJournal). Negative inputs clamp to zero and the
  /// day wraps into [0, days_per_month) — recovery must never manufacture
  /// negative balances or a day index nextDay() cannot reach.
  void restoreUsage(double used_today, double used_month, int day);
  double monthlyAllowanceBytes() const { return monthly_allowance_; }

  double usedThisMonthBytes() const { return used_month_; }
  double usedTodayBytes() const { return used_today_; }
  int dayOfMonth() const { return day_; }

 private:
  double monthly_allowance_;
  int days_per_month_;
  double used_today_ = 0;
  double used_month_ = 0;
  int day_ = 0;
};

}  // namespace gol::core
