// Columnar (struct-of-arrays) item state for the transaction engine.
//
// The engine used to keep a vector<ItemView>{Item*, status, carriers
// vector, ...} plus a parallel vector<ItemMeta>{attempts, checkpoint,
// salvage vector<pair<string,double>>} — two allocations per item before
// the first byte moved, and scheduler scans that dragged whole objects
// through cache to read one byte of status. ItemTable stores each field as
// its own column so the hot scans (status sweeps, first_assigned_at
// tie-breaks) touch only the bytes they read, and the per-item containers
// are gone:
//
//  - carriers: each path carries at most one item at a time, so an item's
//    carrier list threads through a per-path `next` slot — O(1) tail
//    append (insertion order preserved; abort/redispatch loops depend on
//    it), zero allocation;
//  - salvage ledger: (PathId, bytes) runs in arena-backed nodes, appended
//    at the tail and peeled from the tail, with a free list so churn reuses
//    nodes instead of growing the arena;
//  - path names: interned to dense PathIds (PathInterner) so per-path
//    accounting is a flat array op; names are re-attached only at the
//    TransactionResult boundary.
//
// Rows are addressed by index in the hot path and by generation-checked
// ItemHandle where a reference can outlive the transaction that created it
// (timer captures): reset() bumps every row's generation, so a stale
// handle fails valid() instead of aliasing the next transaction's row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/item.hpp"

namespace gol::core {

enum class ItemStatus : std::uint8_t {
  kPending,   ///< Waiting for a path.
  kInFlight,  ///< On at least one path right now.
  kDone,      ///< Delivered.
  kBackoff,   ///< Failed attempt; waiting out the retry backoff.
  kFailed,    ///< Retry budget exhausted — terminal, never delivered.
};

/// Dense id for a path name (see PathInterner). Ids are stable for the
/// interner's lifetime, across transactions and path re-attachment.
using PathId = std::uint32_t;

/// Generation-checked reference to an ItemTable row. Indices are reused
/// across transactions; the generation is not.
struct ItemHandle {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;
};

/// Interns path names to dense PathIds. The engine accounts per-path bytes
/// into flat arrays indexed by PathId and materializes the name-keyed maps
/// of TransactionResult once, at finish.
class PathInterner {
 public:
  /// Returns the existing id for `name` or assigns the next dense one.
  PathId intern(const std::string& name);
  const std::string& name(PathId id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

class ItemTable {
 public:
  static constexpr std::size_t kNoPath = static_cast<std::size_t>(-1);

  ItemTable();

  /// Rebinds the table to `items` (owned by the caller, must outlive the
  /// table's use) and resets every column. Bumps all row generations and
  /// releases the previous transaction's salvage arena wholesale.
  void reset(const std::vector<Item>& items);
  /// Sizes the per-path carrier links; call before addCarrier sees `n`.
  void ensurePaths(std::size_t n);

  std::size_t size() const { return size_; }
  const Item& item(std::size_t i) const { return items_[i]; }

  // -- Hot columns -----------------------------------------------------
  ItemStatus status(std::size_t i) const { return status_[i]; }
  void setStatus(std::size_t i, ItemStatus s) { status_[i] = s; }
  double bytes(std::size_t i) const { return bytes_[i]; }
  double checkpoint(std::size_t i) const { return checkpoint_[i]; }
  double firstAssignedAt(std::size_t i) const { return first_assigned_[i]; }
  void setFirstAssignedAt(std::size_t i, double t) { first_assigned_[i] = t; }
  int failedAttempts(std::size_t i) const { return failed_attempts_[i]; }
  /// Increments the sole-carrier failure count and returns the new value.
  int bumpFailedAttempts(std::size_t i) { return ++failed_attempts_[i]; }
  std::uint64_t backoffTimer(std::size_t i) const { return backoff_[i]; }
  void setBackoffTimer(std::size_t i, std::uint64_t t) { backoff_[i] = t; }

  // -- Handles ---------------------------------------------------------
  ItemHandle handle(std::size_t i) const {
    return {static_cast<std::uint32_t>(i), gen_[i]};
  }
  bool valid(ItemHandle h) const {
    return h.index < size_ && gen_[h.index] == h.gen;
  }

  // -- Carriers (insertion-ordered, threaded through per-path slots) ---
  void addCarrier(std::size_t i, std::size_t path);
  void removeCarrier(std::size_t i, std::size_t path);
  void clearCarriers(std::size_t i);
  std::size_t carrierCount(std::size_t i) const { return carrier_count_[i]; }
  bool carriedBy(std::size_t i, std::size_t path) const;
  template <typename F>
  void forEachCarrier(std::size_t i, F&& f) const {
    for (std::size_t p = carrier_head_[i]; p != kNoPath; p = path_next_[p])
      f(p);
  }
  /// Carrier list as a vector, for abort loops that mutate the list while
  /// iterating (mirrors the old `copy of iv.carriers` idiom).
  std::vector<std::size_t> carriersSnapshot(std::size_t i) const;

  // -- Salvage ledger --------------------------------------------------
  /// Appends a (path, bytes) run and advances the checkpoint by `bytes`.
  void appendSalvage(std::size_t i, PathId pid, double bytes);
  /// Shrinks item `i`'s ledger to the prefix [0, keep_prefix), invoking
  /// `on_reclaim(pid, bytes)` for every reclaimed (partial) run,
  /// back-to-front — exactly the old peel order. Sets the checkpoint to
  /// `keep_prefix`. No-op when the checkpoint is already <= keep_prefix.
  template <typename F>
  void peelSalvage(std::size_t i, double keep_prefix, F&& on_reclaim) {
    double excess = checkpoint_[i] - keep_prefix;
    if (excess <= 0) return;
    while (excess > 1e-12 && salvage_tail_[i] != nullptr) {
      SalvageNode* n = salvage_tail_[i];
      const double take = excess < n->bytes ? excess : n->bytes;
      n->bytes -= take;
      excess -= take;
      on_reclaim(n->pid, take);
      if (n->bytes <= 1e-12) {
        salvage_tail_[i] = n->prev;
        n->prev = salvage_free_;
        salvage_free_ = n;
      }
    }
    checkpoint_[i] = keep_prefix;
  }

  // -- Memory introspection (regression hooks) -------------------------
  /// Arena bytes held for salvage nodes — bounded by peak live runs, not
  /// cumulative churn (freed nodes are reused via the free list).
  std::size_t salvageArenaReserved() const { return arena_.bytesReserved(); }
  /// Heap bytes held by the columns themselves.
  std::size_t columnBytesReserved() const;

 private:
  struct SalvageNode {
    double bytes;
    SalvageNode* prev;
    PathId pid;
  };

  const Item* items_ = nullptr;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 0;

  std::vector<ItemStatus> status_;
  std::vector<double> bytes_;
  std::vector<double> checkpoint_;
  std::vector<double> first_assigned_;
  std::vector<int> failed_attempts_;
  std::vector<std::uint64_t> backoff_;
  std::vector<std::uint32_t> gen_;

  std::vector<std::size_t> carrier_head_;
  std::vector<std::size_t> carrier_tail_;
  std::vector<std::uint32_t> carrier_count_;
  std::vector<std::size_t> path_next_;  // indexed by path, not item

  std::vector<SalvageNode*> salvage_tail_;
  SalvageNode* salvage_free_ = nullptr;
  Arena arena_;
};

}  // namespace gol::core
