// Metro-scale scenario: the whole-city experiment the single-loop stack
// could never run. Tens of thousands of households are laid out as
// neighborhoods (one DSLAM + H households each), grouped into *areas* of A
// neighborhoods that share one cellular location (the paper's Sec. 2.1
// tower-area geometry: ~875 DSL subscribers per tower). The scenario is
// partitioned into sim::ShardedSimulator shards by contiguous neighborhood
// ranges — each shard owns its own Simulator + FlowNetwork world, so shards
// share no mutable state inside a sync window.
//
// Coupling model:
//  - intra-neighborhood: households share the DSLAM backhaul (continuous);
//  - intra-area, intra-shard: neighborhoods share one cell::Location
//    replica (continuous, real sector contention);
//  - areas cut by a shard boundary get one Location replica per side, and
//    the window-edge exchange reconciles them: each replica's available
//    fraction is derated by the *foreign* replicas' measured sector load
//    (avail = base * C / (C + foreign_bps)), iterated in fixed (area,
//    shard) order so the run stays deterministic.
//
// Consequence (documented, tested): results are bit-exact across runs and
// pool sizes at a fixed shard count, and only statistically equivalent
// across shard counts — the cut moves couplings between the continuous and
// windowed regimes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cellular/location.hpp"
#include "core/engine.hpp"
#include "exec/thread_pool.hpp"
#include "sim/sharded.hpp"

namespace gol::core {

struct MetroConfig {
  int neighborhoods = 64;
  int households_per_neighborhood = 25;
  /// Neighborhoods per cell-tower area (share one Location).
  int neighborhoods_per_area = 4;
  int phones_per_household = 1;

  std::size_t shards = 4;
  /// Conservative sync window (sim seconds) between shard barriers.
  double window_s = 5.0;
  /// Simulated horizon.
  double horizon_s = 600.0;

  /// Household workload: think-time between transactions (exponential)
  /// and per-item size (exponential around the mean, floored at 512 B),
  /// items per txn. The default models interactive browsing — many small
  /// objects per page — which is the event-rate-heavy regime; the figure
  /// benches cover the big single-transfer boosts.
  double mean_think_s = 40.0;
  double mean_item_bytes = 2e3;
  int items_per_txn = 16;

  std::string scheduler = "greedy";
  EngineConfig engine;
  /// Tear each household's engine down after every transaction (caps live
  /// TimerWheel/ItemTable memory at the number of in-flight transactions).
  /// Off by default: persistent engines skip the rebuild churn — at 20k
  /// households the resident cost is ~0.5 GB, the rebuild cost ~15% of the
  /// run — and keep warm per-path rate estimates between transactions.
  bool release_engines = false;
  cell::LocationSpec location;  ///< Area radio profile (set by ctor default).
  double base_available_fraction = 0.78;
  std::uint64_t seed = 1;

  MetroConfig();
  long long householdCount() const {
    return static_cast<long long>(neighborhoods) * households_per_neighborhood;
  }
};

struct MetroResult {
  struct ShardStat {
    std::uint64_t events = 0;
    double busy_s = 0;  ///< Wall seconds inside this shard's event loop.
  };

  // Deterministic at fixed shard count (stdout-safe).
  std::uint64_t households = 0;
  std::uint64_t transactions = 0;
  std::uint64_t items_ok = 0;
  std::uint64_t items_failed = 0;
  double bytes = 0;
  double cell_bytes = 0;  ///< Bytes that rode cellular (onloaded) paths.
  std::uint64_t events = 0;
  std::size_t windows = 0;
  std::size_t shard_count = 0;
  double sim_s = 0;
  /// FNV-1a fold of every household's (transactions, items_ok, bytes)
  /// in fixed household order: one number that moves if any household's
  /// outcome moves. The determinism tests compare it across runs.
  std::uint64_t digest = 0;

  // Timing (never printed to stdout by deterministic reporters).
  double wall_s = 0;
  std::vector<ShardStat> shards;

  double eventsPerSec() const { return wall_s > 0 ? events / wall_s : 0; }
};

/// Builds and runs one metro scenario. Construction wires every shard's
/// world; run() executes the windowed simulation on `pool` and collects
/// the aggregate result. One-shot: build a new instance per run.
class MetroSimulation {
 public:
  explicit MetroSimulation(const MetroConfig& cfg);
  ~MetroSimulation();
  MetroSimulation(const MetroSimulation&) = delete;
  MetroSimulation& operator=(const MetroSimulation&) = delete;

  MetroResult run(exec::ThreadPool& pool);
  const MetroConfig& config() const { return cfg_; }
  /// Shard index owning neighborhood `n` (contiguous ranges).
  std::size_t shardOf(int n) const;

 private:
  struct World;
  struct HouseholdState;

  void startArrival(World& world, HouseholdState& hh);
  void exchange(double window_end);

  MetroConfig cfg_;
  std::unique_ptr<sim::ShardedSimulator> sharded_;
  std::vector<std::unique_ptr<World>> worlds_;
  /// area -> (shard, Location replica) pairs, ascending shard order.
  std::vector<std::vector<std::pair<std::size_t, cell::Location*>>> areas_;
  /// Exchange scratch + last-edge snapshot of cumulative cellular bytes,
  /// indexed [area][replica slot].
  std::vector<std::vector<double>> window_cell_bytes_;
  std::vector<std::vector<double>> prev_cell_bytes_;
  /// Any area with >1 replica (i.e. cut by a shard boundary)? When false
  /// the exchange is a no-op and skips its whole-city household sweep.
  bool has_split_area_ = false;
};

}  // namespace gol::core
