#include "core/greedy_scheduler.hpp"

#include <algorithm>
#include <tuple>

namespace gol::core {

std::optional<std::size_t> GreedyScheduler::nextItem(const EngineView& view,
                                                     std::size_t path_index) {
  const ItemTable& items = *view.items;

  // Step 1: first pending item, in transaction order.
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items.status(i) == ItemStatus::kPending) return i;
  }
  if (!reschedule_) return std::nullopt;

  // Step 2: duplicate the oldest-scheduled in-flight item this path is not
  // already carrying ("reassign the oldest scheduled item among the ones
  // being transferred by the other N-1 paths").
  std::optional<std::size_t> oldest;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items.status(i) != ItemStatus::kInFlight) continue;
    if (items.carriedBy(i, path_index)) continue;
    // Explicit (first_assigned_at, index) key: equal timestamps — common
    // when a burst of items is dispatched at t=0 — resolve to the lowest
    // index instead of depending on scan order.
    if (!oldest ||
        std::make_tuple(items.firstAssignedAt(i), i) <
            std::make_tuple(items.firstAssignedAt(*oldest), *oldest)) {
      oldest = i;
    }
  }
  return oldest;
}

}  // namespace gol::core
