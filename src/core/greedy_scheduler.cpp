#include "core/greedy_scheduler.hpp"

#include <algorithm>

namespace gol::core {

std::optional<std::size_t> GreedyScheduler::nextItem(const EngineView& view,
                                                     std::size_t path_index) {
  const auto& items = *view.items;

  // Step 1: first pending item, in transaction order.
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].status == ItemStatus::kPending) return i;
  }
  if (!reschedule_) return std::nullopt;

  // Step 2: duplicate the oldest-scheduled in-flight item this path is not
  // already carrying ("reassign the oldest scheduled item among the ones
  // being transferred by the other N-1 paths").
  std::optional<std::size_t> oldest;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const ItemView& iv = items[i];
    if (iv.status != ItemStatus::kInFlight) continue;
    if (std::find(iv.carriers.begin(), iv.carriers.end(), path_index) !=
        iv.carriers.end())
      continue;
    if (!oldest || iv.first_assigned_at <
                       items[*oldest].first_assigned_at) {
      oldest = i;
    }
  }
  return oldest;
}

}  // namespace gol::core
