#include "core/result_json.hpp"

#include "telemetry/export.hpp"

namespace gol::core {

std::string transactionResultJson(const TransactionResult& result,
                                  const ResultJsonOptions& opts) {
  telemetry::JsonWriter w;
  w.beginObject();
  w.key("outcome").value(toString(result.outcome));
  w.key("duration_s").value(result.duration_s);
  w.key("total_bytes").value(result.total_bytes);
  w.key("delivered_bytes").value(result.delivered_bytes);
  w.key("wasted_bytes").value(result.wasted_bytes);
  w.key("salvaged_bytes").value(result.salvaged_bytes);
  w.key("goodput_bps").value(result.goodputBps());
  w.key("wasted_fraction").value(result.wastedFraction());
  w.key("duplicated_items").value(result.duplicated_items);
  w.key("retries").value(result.retries);
  w.key("timeouts").value(result.timeouts);
  w.key("failed_items").value(result.failed_items);
  w.key("resumed_attempts").value(result.resumed_attempts);
  w.key("corrupt_payloads").value(result.corrupt_payloads);
  w.key("hedges").value(result.hedges);
  w.key("hedge_wins").value(result.hedge_wins);
  w.key("failed_paths").beginArray();
  for (const auto& name : result.failed_paths) w.value(name);
  w.endArray();
  w.key("per_path_bytes").beginObject();
  for (const auto& [name, bytes] : result.per_path_bytes)
    w.key(name).value(bytes);
  w.endObject();
  w.key("per_path_wasted_bytes").beginObject();
  for (const auto& [name, bytes] : result.per_path_wasted_bytes)
    w.key(name).value(bytes);
  w.endObject();
  w.key("per_path_salvaged_bytes").beginObject();
  for (const auto& [name, bytes] : result.per_path_salvaged_bytes)
    w.key(name).value(bytes);
  w.endObject();
  if (opts.include_item_attempts) {
    w.key("per_item_attempts").beginArray();
    for (const int attempts : result.per_item_attempts) w.value(attempts);
    w.endArray();
  }
  if (opts.include_item_completions) {
    w.key("item_completion_s").beginArray();
    for (const double t : result.item_completion_s) w.value(t);
    w.endArray();
  }
  w.endObject();
  return w.str();
}

}  // namespace gol::core
