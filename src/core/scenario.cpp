#include "core/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "core/home.hpp"

namespace gol::core {

ScenarioBuilder& ScenarioBuilder::location(cell::LocationSpec spec) {
  location_ = std::move(spec);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::lte() {
  lte_ = true;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::availableFraction(double f) {
  available_fraction_ = f;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::origin(http::SimOriginConfig cfg) {
  origin_ = cfg;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::wifi(access::WifiConfig cfg) {
  wifi_ = cfg;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::device(cell::DeviceConfig cfg) {
  device_ = cfg;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::dslam(access::DslamConfig cfg) {
  dslam_ = cfg;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::households(int n) {
  if (n < 1) throw std::invalid_argument("households must be >= 1");
  households_ = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::phonesPerHousehold(int n) {
  if (n < 0) throw std::invalid_argument("phonesPerHousehold must be >= 0");
  phones_ = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::clientWired(bool wired) {
  client_wired_ = wired;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::adslRates(double down_bps, double up_bps) {
  adsl_rates_ = {down_bps, up_bps};
  return *this;
}
ScenarioBuilder& ScenarioBuilder::direction(TransferDirection dir) {
  direction_ = dir;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::useAdsl(bool v) {
  use_adsl_ = v;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::scheduler(std::string name) {
  scheduler_ = std::move(name);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::engine(EngineConfig cfg) {
  engine_ = cfg;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::metrics(telemetry::Registry* registry) {
  registry_ = registry;
  explicit_registry_ = true;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::lazyEngines(bool v) {
  lazy_engines_ = v;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::namePrefix(std::string p) {
  prefix_ = std::move(p);
  return *this;
}

namespace {

std::string joinName(const std::string& base, const std::string& leaf) {
  return base.empty() ? leaf : base + "/" + leaf;
}

}  // namespace

Scenario ScenarioBuilder::build() {
  Scenario s;
  s.own_sim_ = std::make_unique<sim::Simulator>();
  s.own_net_ = std::make_unique<net::FlowNetwork>(*s.own_sim_);

  // Fork order matches HomeEnvironment: location first, then households —
  // a one-household build() reproduces a HomeEnvironment bit-for-bit.
  sim::Rng rng(seed_);
  const cell::LocationSpec spec = lte_ ? cell::lteUpgrade(location_) : location_;
  s.own_location_ =
      std::make_unique<cell::Location>(*s.own_net_, spec, rng.fork());
  s.own_location_->setAvailableFraction(available_fraction_);
  s.own_origin_ = std::make_unique<http::SimOrigin>(
      *s.own_net_, joinName(prefix_, "origin"), origin_);
  s.own_http_ = std::make_unique<http::SimHttpClient>(*s.own_net_);

  wire(s, *s.own_sim_, *s.own_net_, *s.own_location_, *s.own_origin_,
       *s.own_http_, rng);
  return s;
}

Scenario ScenarioBuilder::buildOn(sim::Simulator& sim, net::FlowNetwork& net,
                                  cell::Location& location,
                                  http::SimOrigin& origin,
                                  http::SimHttpClient& http) {
  Scenario s;
  sim::Rng rng(seed_);
  rng.fork();  // burn the location fork so build()/buildOn() streams align
  wire(s, sim, net, location, origin, http, rng);
  return s;
}

void ScenarioBuilder::wire(Scenario& s, sim::Simulator& sim,
                           net::FlowNetwork& net, cell::Location& location,
                           http::SimOrigin& origin, http::SimHttpClient& http,
                           sim::Rng& rng) {
  s.sim_ = &sim;
  s.net_ = &net;
  s.location_ = &location;
  s.origin_ = &origin;
  s.http_ = &http;
  s.scheduler_name_ = scheduler_;
  s.engine_cfg_ = engine_;
  s.registry_ = registry_;
  s.explicit_registry_ = explicit_registry_;

  if (dslam_) {
    s.dslam_ = std::make_unique<access::Dslam>(net, joinName(prefix_, "dslam"),
                                               *dslam_);
  }

  const cell::LocationSpec& spec = location.spec();
  access::AdslConfig adsl_cfg;
  adsl_cfg.sync_down_bps = adsl_rates_ ? adsl_rates_->first : spec.adsl_down_bps;
  adsl_cfg.sync_up_bps = adsl_rates_ ? adsl_rates_->second : spec.adsl_up_bps;
  adsl_cfg.down_utilization = spec.adsl_down_utilization;
  const cell::DeviceConfig dev =
      lte_ ? cell::lteDeviceConfig(device_) : device_;
  const bool down = direction_ == TransferDirection::kDownload;

  s.households_.resize(static_cast<std::size_t>(households_));
  for (int i = 0; i < households_; ++i) {
    Scenario::Household& hh = s.households_[static_cast<std::size_t>(i)];
    const std::string base =
        households_ == 1 ? prefix_ : joinName(prefix_, "h" + std::to_string(i));
    hh.name = base.empty() ? "home" : base;
    hh.rng = rng.fork();

    if (s.dslam_) {
      hh.adsl = &s.dslam_->addLine(adsl_cfg);
    } else {
      hh.adsl_owned = std::make_unique<access::AdslLine>(
          net, joinName(base, "adsl"), adsl_cfg);
      hh.adsl = hh.adsl_owned.get();
    }
    hh.wifi =
        std::make_unique<access::WifiLan>(net, joinName(base, "wifi"), wifi_);
    for (int p = 0; p < phones_; ++p) {
      hh.phones.push_back(
          location.makeDevice(joinName(base, "phone" + std::to_string(p)),
                              dev));
    }

    // Path composition mirrors HomeEnvironment::makePaths (the audited
    // rtt/loss formulas), plus the DSLAM backhaul hop when aggregated.
    if (use_adsl_) {
      net::NetPath path = down ? hh.adsl->downPath() : hh.adsl->upPath();
      if (s.dslam_) {
        path.links.push_back(down ? s.dslam_->backhaulDown()
                                  : s.dslam_->backhaulUp());
      }
      path.links.push_back(down ? origin.serveLink() : origin.ingestLink());
      if (!client_wired_) path.links.push_back(hh.wifi->medium());
      path.rtt_s += origin.config().rtt_s +
                    (client_wired_ ? 0.0 : hh.wifi->config().rtt_s);
      path.loss_rate += client_wired_ ? 0.0 : hh.wifi->config().loss_rate;
      hh.paths.push_back(std::make_unique<AdslTransferPath>(
          http, joinName(base, "adsl"), std::move(path)));
    }
    for (auto& phone : hh.phones) {
      std::vector<net::Link*> extra = {
          hh.wifi->medium(), down ? origin.serveLink() : origin.ingestLink()};
      const double extra_rtt =
          hh.wifi->config().rtt_s + origin.config().rtt_s;
      hh.paths.push_back(std::make_unique<CellularTransferPath>(
          *phone, down ? cell::Direction::kDownlink : cell::Direction::kUplink,
          phone->name(), std::move(extra), extra_rtt));
    }

    if (!lazy_engines_) s.rebuildEngine(static_cast<std::size_t>(i));
  }
}

std::vector<TransferPath*> Scenario::Household::rawPaths() const {
  std::vector<TransferPath*> out;
  out.reserve(paths.size());
  for (const auto& p : paths) out.push_back(p.get());
  return out;
}

TransactionEngine& Scenario::rebuildEngine(std::size_t i) {
  Household& hh = households_.at(i);
  hh.engine.reset();  // engine references the scheduler: drop it first
  hh.scheduler = makeScheduler(scheduler_name_);
  hh.engine = std::make_unique<TransactionEngine>(*sim_, hh.rawPaths(),
                                                  *hh.scheduler, engine_cfg_);
  if (explicit_registry_) hh.engine->instrument(registry_);
  return *hh.engine;
}

void Scenario::releaseEngine(std::size_t i) {
  Household& hh = households_.at(i);
  hh.engine.reset();
  hh.scheduler.reset();
}

TransactionResult Scenario::run(std::size_t i, Transaction txn) {
  Household& hh = households_.at(i);
  if (!hh.engine) rebuildEngine(i);
  return runTransaction(*sim_, *hh.engine, std::move(txn));
}

}  // namespace gol::core
