#include "core/home.hpp"

#include <optional>
#include <stdexcept>

namespace gol::core {

HomeEnvironment::HomeEnvironment(const HomeConfig& cfg)
    : cfg_(cfg), net_(sim_), rng_(cfg.seed) {
  access::AdslConfig adsl_cfg;
  adsl_cfg.sync_down_bps = cfg_.location.adsl_down_bps;
  adsl_cfg.sync_up_bps = cfg_.location.adsl_up_bps;
  adsl_cfg.down_utilization = cfg_.location.adsl_down_utilization;
  adsl_ = std::make_unique<access::AdslLine>(net_, "adsl", adsl_cfg);
  wifi_ = std::make_unique<access::WifiLan>(net_, "wifi", cfg_.wifi);
  origin_ = std::make_unique<http::SimOrigin>(net_, "origin", cfg_.origin);
  http_ = std::make_unique<http::SimHttpClient>(net_);
  location_ = std::make_unique<cell::Location>(net_, cfg_.location,
                                               rng_.fork());
  location_->setAvailableFraction(cfg_.available_fraction);
  for (int p = 0; p < cfg_.phones; ++p) {
    phones_.push_back(
        location_->makeDevice("phone" + std::to_string(p), cfg_.device));
  }
}

void HomeEnvironment::warmPhones() {
  for (auto& p : phones_) p->rrc().forceDch();
}

std::vector<std::unique_ptr<TransferPath>> HomeEnvironment::makePaths(
    TransferDirection dir, int use_phones, bool include_adsl) {
  if (use_phones > static_cast<int>(phones_.size()))
    throw std::invalid_argument("makePaths: not enough phones");
  std::vector<std::unique_ptr<TransferPath>> out;

  const bool down = dir == TransferDirection::kDownload;
  if (include_adsl) {
    net::NetPath path = down ? adsl_->downPath() : adsl_->upPath();
    path.links.push_back(down ? origin_->serveLink() : origin_->ingestLink());
    if (!cfg_.client_wired) path.links.push_back(wifi_->medium());
    path.rtt_s += origin_->config().rtt_s +
                  (cfg_.client_wired ? 0.0 : wifi_->config().rtt_s);
    path.loss_rate += cfg_.client_wired ? 0.0 : wifi_->config().loss_rate;
    out.push_back(
        std::make_unique<AdslTransferPath>(*http_, "adsl", std::move(path)));
  }

  for (int p = 0; p < use_phones; ++p) {
    // Phone traffic always crosses the home Wi-Fi (client <-> phone proxy)
    // and the origin's access link.
    std::vector<net::Link*> extra = {
        wifi_->medium(),
        down ? origin_->serveLink() : origin_->ingestLink()};
    const double extra_rtt =
        wifi_->config().rtt_s + origin_->config().rtt_s;
    out.push_back(std::make_unique<CellularTransferPath>(
        *phones_[p], down ? cell::Direction::kDownlink : cell::Direction::kUplink,
        phones_[p]->name(), std::move(extra), extra_rtt));
  }
  return out;
}

TransactionResult runTransaction(sim::Simulator& sim,
                                 TransactionEngine& engine, Transaction txn) {
  std::optional<TransactionResult> result;
  engine.run(std::move(txn),
             [&result](TransactionResult r) { result = std::move(r); });
  while (!result && sim.step()) {
  }
  if (!result)
    throw std::logic_error("transaction did not complete (deadlocked paths?)");
  return *result;
}

}  // namespace gol::core
