#include "core/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::core {

TransactionEngine::TransactionEngine(sim::Simulator& sim,
                                     std::vector<TransferPath*> paths,
                                     Scheduler& scheduler)
    : sim_(sim), scheduler_(scheduler) {
  if (paths.empty())
    throw std::invalid_argument("TransactionEngine needs >= 1 path");
  for (TransferPath* p : paths) {
    if (p == nullptr) throw std::invalid_argument("null TransferPath");
    paths_.push_back(PathState{p, 0});
  }
}

void TransactionEngine::run(Transaction txn,
                            std::function<void(TransactionResult)> on_done) {
  if (active_) throw std::logic_error("engine already running a transaction");
  active_ = true;
  txn_ = std::move(txn);
  on_done_ = std::move(on_done);
  result_ = TransactionResult{};
  result_.total_bytes = txn_.totalBytes();
  result_.item_completion_s.assign(txn_.items.size(), 0.0);
  done_count_ = 0;
  started_at_ = sim_.now();

  items_.clear();
  items_.reserve(txn_.items.size());
  for (const auto& it : txn_.items) {
    ItemView iv;
    iv.item = &it;
    items_.push_back(std::move(iv));
  }

  std::vector<double> nominal;
  nominal.reserve(paths_.size());
  for (const auto& ps : paths_) nominal.push_back(ps.path->nominalRateBps());
  scheduler_.onTransactionStart(txn_, nominal);

  if (txn_.items.empty()) {
    finish();
    return;
  }
  for (std::size_t p = 0; p < paths_.size(); ++p) dispatch(p);
}

void TransactionEngine::dispatch(std::size_t path_index) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (ps.path->busy()) return;

  EngineView view{&items_, paths_.size(), sim_.now()};
  const auto choice = scheduler_.nextItem(view, path_index);
  if (!choice) return;
  const std::size_t idx = *choice;
  ItemView& iv = items_.at(idx);
  if (iv.status == ItemStatus::kDone)
    throw std::logic_error("scheduler assigned a completed item");
  if (std::find(iv.carriers.begin(), iv.carriers.end(), path_index) !=
      iv.carriers.end())
    throw std::logic_error("scheduler re-assigned item to its own carrier");

  if (iv.status == ItemStatus::kPending) {
    iv.status = ItemStatus::kInFlight;
    iv.first_assigned_at = sim_.now();
  } else {
    ++result_.duplicated_items;
  }
  iv.carriers.push_back(path_index);
  ps.busy_since = sim_.now();
  ps.path->start(*iv.item, [this, path_index](const Item& item) {
    onItemDone(path_index, item);
  });
}

void TransactionEngine::onItemDone(std::size_t path_index, const Item& item) {
  if (!active_) return;
  ItemView& iv = items_.at(item.index);
  PathState& ps = paths_[path_index];

  // The duplicate race: a copy may complete on another path in the same
  // instant; only the first counts.
  if (iv.status == ItemStatus::kDone) {
    iv.carriers.erase(
        std::remove(iv.carriers.begin(), iv.carriers.end(), path_index),
        iv.carriers.end());
    result_.wasted_bytes += item.bytes;
    dispatch(path_index);
    return;
  }

  iv.status = ItemStatus::kDone;
  ++done_count_;
  result_.item_completion_s[item.index] = sim_.now() - started_at_;
  result_.per_path_bytes[ps.path->name()] += item.bytes;
  scheduler_.onItemComplete(path_index, item, sim_.now() - ps.busy_since);

  // Abort the losing duplicates and free their paths.
  std::vector<std::size_t> others = iv.carriers;
  iv.carriers.clear();
  for (std::size_t other : others) {
    if (other == path_index) continue;
    result_.wasted_bytes += paths_[other].path->abortCurrent();
  }

  if (done_count_ == txn_.items.size()) {
    finish();
    return;
  }
  for (std::size_t other : others) {
    if (other != path_index) dispatch(other);
  }
  dispatch(path_index);
}

void TransactionEngine::finish() {
  active_ = false;
  result_.duration_s = sim_.now() - started_at_;
  if (on_done_) {
    auto cb = std::move(on_done_);
    cb(std::move(result_));
  }
}

}  // namespace gol::core
