#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gol::core {

const char* toString(TransactionOutcome outcome) {
  switch (outcome) {
    case TransactionOutcome::kCompleted: return "completed";
    case TransactionOutcome::kCompletedDegraded: return "completed_degraded";
    case TransactionOutcome::kPartialFailure: return "partial_failure";
  }
  return "unknown";
}

TransactionEngine::TransactionEngine(sim::Simulator& sim,
                                     std::vector<TransferPath*> paths,
                                     Scheduler& scheduler, EngineConfig config)
    : sim_(sim),
      scheduler_(scheduler),
      config_(config),
      jitter_(config.jitter_seed),
      registry_(&telemetry::Registry::global()) {
  if (paths.empty())
    throw std::invalid_argument("TransactionEngine needs >= 1 path");
  for (TransferPath* p : paths) {
    if (p == nullptr) throw std::invalid_argument("null TransferPath");
    attachPath(p);
  }
}

void TransactionEngine::instrument(telemetry::Registry* registry,
                                   telemetry::TraceRecorder* trace) {
  registry_ = registry;
  trace_ = trace;
  // Force a re-bind on the next run (instruments may point elsewhere now).
  transactions_ = nullptr;
  for (auto& ps : paths_) {
    ps.bytes = nullptr;
    ps.wasted = nullptr;
  }
  if (trace_) {
    trace_->setTrackName(0, "engine");
    for (std::size_t p = 0; p < paths_.size(); ++p)
      trace_->setTrackName(static_cast<int>(p) + 1, paths_[p].path->name());
  }
}

void TransactionEngine::bindInstruments() {
  if (registry_ == nullptr || transactions_ != nullptr) return;
  auto& r = *registry_;
  transactions_ = &r.counter("gol.engine.transactions");
  dispatched_ = &r.counter("gol.engine.items_dispatched");
  completed_ = &r.counter("gol.engine.items_completed");
  duplicated_ = &r.counter("gol.engine.items_duplicated");
  aborted_ = &r.counter("gol.engine.items_aborted");
  wasted_bytes_ = &r.counter("gol.engine.wasted_bytes");
  retries_ = &r.counter("gol.engine.retries");
  timeouts_ = &r.counter("gol.engine.watchdog_timeouts");
  items_failed_ = &r.counter("gol.engine.items_failed");
  path_down_ = &r.counter("gol.engine.path_down_events");
  quarantines_ = &r.counter("gol.engine.path_quarantines");
  const telemetry::Labels policy{{"policy", scheduler_.name()}};
  decisions_ = &r.counter("gol.scheduler.decisions", policy);
  idle_decisions_ = &r.counter("gol.scheduler.idle_decisions", policy);
  reschedules_ = &r.counter("gol.scheduler.reschedules", policy);
  for (auto& ps : paths_) bindPathInstruments(ps);
}

void TransactionEngine::bindPathInstruments(PathState& ps) {
  if (registry_ == nullptr || ps.bytes != nullptr) return;
  const telemetry::Labels path{{"path", ps.path->name()}};
  ps.bytes = &registry_->counter("gol.engine.path_bytes", path);
  ps.wasted = &registry_->counter("gol.engine.path_wasted_bytes", path);
}

std::size_t TransactionEngine::usablePathCount() const {
  std::size_t n = 0;
  for (const auto& ps : paths_) {
    if (ps.attached && ps.path->alive()) ++n;
  }
  return n;
}

void TransactionEngine::attachPath(TransferPath* path) {
  if (path == nullptr) throw std::invalid_argument("null TransferPath");
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    PathState& ps = paths_[i];
    if (ps.path != path) continue;
    if (ps.attached) return;
    // Re-admission of a path we already know (the discovery case: the
    // phone left the LAN and came back). Forgive its record.
    ps.attached = true;
    ps.consecutive_failures = 0;
    ps.quarantined_until = 0;
    ps.quarantine_len_s = 0;
    if (active_ && ps.path->alive()) {
      scheduler_.onPathUp(i);
      if (grace_timer_ != 0) {
        sim_.cancel(grace_timer_);
        grace_timer_ = 0;
      }
      dispatch(i);
    }
    return;
  }

  // A brand-new path joins the working set.
  const std::size_t index = paths_.size();
  PathState ps;
  ps.path = path;
  ps.rate_est_bps = std::max(path->nominalRateBps(), 1e3);
  paths_.push_back(std::move(ps));
  bindPathInstruments(paths_.back());
  path->onStateChange(
      [this, index](TransferPath&, bool alive, const std::string& reason) {
        onPathStateChange(index, alive, reason);
      });
  if (trace_) trace_->setTrackName(static_cast<int>(index) + 1, path->name());
  if (active_) {
    scheduler_.onPathAdded(index, path->nominalRateBps());
    if (path->alive()) {
      if (grace_timer_ != 0) {
        sim_.cancel(grace_timer_);
        grace_timer_ = 0;
      }
      dispatch(index);
    } else {
      scheduler_.onPathDown(index);
    }
  }
}

void TransactionEngine::detachPath(TransferPath* path) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    PathState& ps = paths_[i];
    if (ps.path != path || !ps.attached) continue;
    ps.attached = false;
    if (!active_) return;
    noteFailedPath(ps.path->name());
    if (ps.current_item != kNoItem) {
      const std::size_t idx = ps.current_item;
      const double moved = ps.path->abortCurrent();
      pathAttemptFailed(i, idx, moved, "detached",
                        /*count_against_item=*/false);
    }
    scheduler_.onPathDown(i);
    if (!active_) return;  // pathAttemptFailed may have finished the txn
    armGraceTimerIfStranded();
    dispatchAll();
    return;
  }
}

void TransactionEngine::run(Transaction txn,
                            std::function<void(TransactionResult)> on_done) {
  if (active_) throw std::logic_error("engine already running a transaction");
  active_ = true;
  txn_ = std::move(txn);
  on_done_ = std::move(on_done);
  result_ = TransactionResult{};
  result_.total_bytes = txn_.totalBytes();
  result_.item_completion_s.assign(txn_.items.size(), 0.0);
  result_.per_item_attempts.assign(txn_.items.size(), 0);
  item_meta_.assign(txn_.items.size(), ItemMeta{});
  failed_path_names_.clear();
  done_count_ = 0;
  failed_count_ = 0;
  pending_count_ = txn_.items.size();
  started_at_ = sim_.now();
  for (auto& ps : paths_) {
    ps.current_item = kNoItem;
    ps.span = 0;
    ps.quarantined_until = 0;
    ps.quarantine_len_s = 0;
    ps.consecutive_failures = 0;
    if (ps.rate_est_bps <= 0)
      ps.rate_est_bps = std::max(ps.path->nominalRateBps(), 1e3);
  }

  bindInstruments();
  if (transactions_) transactions_->inc();
  if (trace_) txn_span_ = trace_->begin("transaction", "engine", 0);

  items_.clear();
  items_.reserve(txn_.items.size());
  for (const auto& it : txn_.items) {
    ItemView iv;
    iv.item = &it;
    items_.push_back(std::move(iv));
  }

  std::vector<double> nominal;
  nominal.reserve(paths_.size());
  for (const auto& ps : paths_) nominal.push_back(ps.path->nominalRateBps());
  scheduler_.onTransactionStart(txn_, nominal);
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    if (!paths_[p].attached || !paths_[p].path->alive())
      scheduler_.onPathDown(p);
  }

  if (txn_.items.empty()) {
    finish();
    return;
  }
  dispatchAll();
  armGraceTimerIfStranded();
}

void TransactionEngine::dispatchAll() {
  for (std::size_t p = 0; p < paths_.size() && active_; ++p) dispatch(p);
}

double TransactionEngine::watchdogDeadline(const PathState& ps,
                                           const Item& item) const {
  const double est_s =
      item.bytes * 8.0 / std::max(ps.rate_est_bps, 1e3);
  return std::max(config_.watchdog.min_deadline_s,
                  config_.watchdog.k * est_s);
}

double TransactionEngine::backoffDelay(int failed_attempts) {
  const RetryPolicy& r = config_.retry;
  double d = r.base_backoff_s *
             std::pow(r.backoff_multiplier,
                      std::max(0, failed_attempts - 1));
  d = std::min(d, r.max_backoff_s);
  if (r.jitter > 0)
    d *= jitter_.uniform(1.0 - r.jitter, 1.0 + r.jitter);
  return std::max(d, 0.0);
}

void TransactionEngine::dispatch(std::size_t path_index) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (!ps.attached || !ps.path->alive() || ps.path->busy()) return;
  if (sim_.now() < ps.quarantined_until) return;

  EngineView view{&items_, paths_.size(), sim_.now(), pending_count_};
  const auto choice = scheduler_.nextItem(view, path_index);
  if (!choice) {
    if (idle_decisions_) idle_decisions_->inc();
    return;
  }
  if (decisions_) decisions_->inc();
  const std::size_t idx = *choice;
  ItemView& iv = items_.at(idx);
  if (iv.status == ItemStatus::kDone || iv.status == ItemStatus::kFailed)
    throw std::logic_error("scheduler assigned a terminal item");
  if (iv.status == ItemStatus::kBackoff)
    throw std::logic_error("scheduler assigned an item in retry backoff");
  if (std::find(iv.carriers.begin(), iv.carriers.end(), path_index) !=
      iv.carriers.end())
    throw std::logic_error("scheduler re-assigned item to its own carrier");

  if (iv.status == ItemStatus::kPending) {
    iv.status = ItemStatus::kInFlight;
    iv.first_assigned_at = sim_.now();
    --pending_count_;
  } else {
    ++result_.duplicated_items;
    if (duplicated_) duplicated_->inc();
    if (reschedules_) reschedules_->inc();
  }
  ++result_.per_item_attempts[idx];
  if (dispatched_) dispatched_->inc();
  if (trace_)
    ps.span = trace_->begin(iv.item->name, "engine",
                            static_cast<int>(path_index) + 1);
  iv.carriers.push_back(path_index);
  ps.busy_since = sim_.now();
  ps.current_item = idx;
  const std::uint64_t gen = ++ps.attempt_gen;
  if (config_.watchdog.enabled) {
    ps.watchdog = sim_.scheduleIn(
        watchdogDeadline(ps, *iv.item),
        [this, path_index, gen] { onWatchdog(path_index, gen); });
  }
  ps.path->start(*iv.item,
                 TransferPath::DoneFn([this, path_index, gen](
                     const Item& item, const ItemResult& result) {
                   onItemEvent(path_index, gen, item, result);
                 }));
}

void TransactionEngine::recordWaste(PathState& ps, double bytes) {
  if (bytes <= 0) return;
  result_.wasted_bytes += bytes;
  result_.per_path_wasted_bytes[ps.path->name()] += bytes;
  if (wasted_bytes_) wasted_bytes_->inc(bytes);
  if (ps.wasted) ps.wasted->inc(bytes);
}

void TransactionEngine::clearAttempt(PathState& ps) {
  if (ps.watchdog != 0) {
    sim_.cancel(ps.watchdog);
    ps.watchdog = 0;
  }
  ++ps.attempt_gen;  // any in-flight callback/timer for this attempt is void
  ps.current_item = kNoItem;
}

void TransactionEngine::noteFailedPath(const std::string& name) {
  if (failed_path_names_.insert(name).second && path_down_) path_down_->inc();
}

void TransactionEngine::onItemEvent(std::size_t path_index, std::uint64_t gen,
                                    const Item& item,
                                    const ItemResult& result) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (gen != ps.attempt_gen) return;  // attempt already aborted/expired
  if (result.outcome == ItemOutcome::kCompleted) {
    onItemCompleted(path_index, item, result);
    return;
  }
  // A hard failure surfaced by the path itself (socket reset, device gone).
  if (trace_ && ps.span) {
    trace_->end(ps.span, {{"outcome", "failed"}, {"error", result.error}});
    ps.span = 0;
  }
  pathAttemptFailed(path_index, item.index, result.bytes_moved, nullptr,
                    /*count_against_item=*/true);
}

void TransactionEngine::onItemCompleted(std::size_t path_index,
                                        const Item& item,
                                        const ItemResult& result) {
  ItemView& iv = items_.at(item.index);
  PathState& ps = paths_[path_index];
  const double elapsed = sim_.now() - ps.busy_since;
  ps.consecutive_failures = 0;
  ps.quarantine_len_s = 0;
  if (elapsed > 1e-9) {
    // Blend observed goodput into the watchdog's rate estimate.
    const double sample = item.bytes * 8.0 / elapsed;
    ps.rate_est_bps = 0.5 * ps.rate_est_bps + 0.5 * sample;
  }

  // The duplicate race: a copy may complete on another path in the same
  // instant; only the first counts.
  if (iv.status == ItemStatus::kDone) {
    iv.carriers.erase(
        std::remove(iv.carriers.begin(), iv.carriers.end(), path_index),
        iv.carriers.end());
    recordWaste(ps, result.bytes_moved);
    if (aborted_) aborted_->inc();
    if (trace_ && ps.span) {
      trace_->end(ps.span, {{"outcome", "lost-race"}});
      ps.span = 0;
    }
    clearAttempt(ps);
    dispatch(path_index);
    return;
  }

  iv.status = ItemStatus::kDone;
  ++done_count_;
  result_.item_completion_s[item.index] = sim_.now() - started_at_;
  result_.per_path_bytes[ps.path->name()] += item.bytes;
  if (completed_) completed_->inc();
  if (ps.bytes) ps.bytes->inc(item.bytes);
  if (trace_ && ps.span) {
    trace_->end(ps.span, {{"outcome", "completed"}});
    ps.span = 0;
  }
  clearAttempt(ps);
  scheduler_.onItemComplete(path_index, item, elapsed);

  // Abort the losing duplicates and free their paths.
  std::vector<std::size_t> others = iv.carriers;
  iv.carriers.clear();
  for (std::size_t other : others) {
    if (other == path_index) continue;
    PathState& os = paths_[other];
    const double moved = os.path->abortCurrent();
    clearAttempt(os);
    recordWaste(os, moved);
    if (aborted_) aborted_->inc();
    if (trace_ && os.span) {
      trace_->end(os.span, {{"outcome", "aborted"}});
      os.span = 0;
    }
  }

  if (done_count_ + failed_count_ == txn_.items.size()) {
    finish();
    return;
  }
  for (std::size_t other : others) {
    if (other != path_index) dispatch(other);
  }
  dispatch(path_index);
}

void TransactionEngine::onWatchdog(std::size_t path_index,
                                   std::uint64_t gen) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (gen != ps.attempt_gen) return;  // attempt ended; timer raced cancel
  ps.watchdog = 0;
  const std::size_t idx = ps.current_item;
  if (idx == kNoItem) return;
  const double elapsed = sim_.now() - ps.busy_since;
  const double moved = ps.path->abortCurrent();
  if (elapsed > 1e-9 && moved > 0) {
    // The attempt was slow, not dead: remember the partial rate so the
    // next deadline on this path is realistic instead of re-tripping.
    const double sample = moved * 8.0 / elapsed;
    ps.rate_est_bps = 0.5 * ps.rate_est_bps + 0.5 * sample;
  }
  ++result_.timeouts;
  if (timeouts_) timeouts_->inc();
  if (trace_ && ps.span) {
    trace_->end(ps.span, {{"outcome", "timed-out"}});
    ps.span = 0;
  }
  pathAttemptFailed(path_index, idx, moved, nullptr,
                    /*count_against_item=*/true);
}

void TransactionEngine::pathAttemptFailed(std::size_t path_index,
                                          std::size_t item_index,
                                          double moved_bytes,
                                          const char* span_outcome,
                                          bool count_against_item) {
  PathState& ps = paths_[path_index];
  recordWaste(ps, moved_bytes);
  if (trace_ && ps.span) {
    trace_->end(ps.span,
                {{"outcome", span_outcome ? span_outcome : "failed"}});
    ps.span = 0;
  }
  clearAttempt(ps);

  ItemView& iv = items_.at(item_index);
  iv.carriers.erase(
      std::remove(iv.carriers.begin(), iv.carriers.end(), path_index),
      iv.carriers.end());

  // Quarantine-and-probe: a path that keeps failing while nominally alive
  // is benched for a growing interval instead of retried in a hot loop.
  if (count_against_item && ps.attached && ps.path->alive() &&
      ++ps.consecutive_failures >= config_.quarantine.threshold) {
    const QuarantinePolicy& q = config_.quarantine;
    ps.quarantine_len_s =
        ps.quarantine_len_s <= 0
            ? q.base_s
            : std::min(ps.quarantine_len_s * q.multiplier, q.max_s);
    ps.quarantined_until = sim_.now() + ps.quarantine_len_s;
    if (quarantines_) quarantines_->inc();
    if (ps.probe != 0) sim_.cancel(ps.probe);
    ps.probe = sim_.scheduleIn(ps.quarantine_len_s, [this, path_index] {
      paths_[path_index].probe = 0;
      dispatch(path_index);
    });
  }

  if (iv.status == ItemStatus::kDone) return;  // raced a completion
  if (!iv.carriers.empty()) {
    // A duplicate is still running elsewhere; the item's fate rides on it.
    dispatch(path_index);
    return;
  }

  if (count_against_item) {
    ItemMeta& meta = item_meta_[item_index];
    if (++meta.failed_attempts >= config_.retry.max_attempts) {
      iv.status = ItemStatus::kFailed;
      ++failed_count_;
      ++result_.failed_items;
      if (items_failed_) items_failed_->inc();
    } else {
      iv.status = ItemStatus::kBackoff;
      ++result_.retries;
      if (retries_) retries_->inc();
      meta.backoff =
          sim_.scheduleIn(backoffDelay(meta.failed_attempts),
                          [this, item_index] { onBackoffExpired(item_index); });
    }
  } else {
    // The path failed, not the item: back into the pool immediately, no
    // penalty against the item's retry budget.
    iv.status = ItemStatus::kPending;
    ++pending_count_;
    scheduler_.onItemRequeued(item_index);
  }

  maybeFinish();
  if (active_) dispatch(path_index);
}

void TransactionEngine::onBackoffExpired(std::size_t item_index) {
  if (!active_) return;
  item_meta_[item_index].backoff = 0;
  ItemView& iv = items_.at(item_index);
  if (iv.status != ItemStatus::kBackoff) return;
  iv.status = ItemStatus::kPending;
  ++pending_count_;
  scheduler_.onItemRequeued(item_index);
  dispatchAll();
}

void TransactionEngine::onPathStateChange(std::size_t path_index, bool alive,
                                          const std::string& reason) {
  PathState& ps = paths_[path_index];
  if (!alive) {
    if (!active_ || !ps.attached) return;
    noteFailedPath(ps.path->name());
    if (ps.current_item != kNoItem) {
      const std::size_t idx = ps.current_item;
      const double moved = ps.path->abortCurrent();
      pathAttemptFailed(path_index, idx, moved,
                        reason.empty() ? "path-down" : reason.c_str(),
                        /*count_against_item=*/false);
    }
    scheduler_.onPathDown(path_index);
    if (!active_) return;
    armGraceTimerIfStranded();
    dispatchAll();
    return;
  }

  // Recovery: clean slate for the returning path.
  ps.consecutive_failures = 0;
  ps.quarantined_until = 0;
  ps.quarantine_len_s = 0;
  if (ps.probe != 0) {
    sim_.cancel(ps.probe);
    ps.probe = 0;
  }
  if (!active_ || !ps.attached) return;
  scheduler_.onPathUp(path_index);
  if (grace_timer_ != 0) {
    sim_.cancel(grace_timer_);
    grace_timer_ = 0;
  }
  dispatchAll();
}

void TransactionEngine::armGraceTimerIfStranded() {
  if (!active_ || grace_timer_ != 0) return;
  if (usablePathCount() > 0) return;
  if (done_count_ + failed_count_ == items_.size()) return;
  grace_timer_ = sim_.scheduleIn(config_.all_paths_down_grace_s,
                                 [this] { onGraceExpired(); });
}

void TransactionEngine::onGraceExpired() {
  if (!active_) return;
  grace_timer_ = 0;
  if (usablePathCount() > 0) return;  // a path came back; stand down
  // Every usable path is gone and none returned within the grace window:
  // fail the remaining items so the transaction still terminates.
  for (std::size_t i = 0; i < items_.size(); ++i) {
    ItemView& iv = items_[i];
    if (iv.status == ItemStatus::kDone || iv.status == ItemStatus::kFailed)
      continue;
    if (item_meta_[i].backoff != 0) {
      sim_.cancel(item_meta_[i].backoff);
      item_meta_[i].backoff = 0;
    }
    if (iv.status == ItemStatus::kPending) --pending_count_;
    iv.status = ItemStatus::kFailed;
    iv.carriers.clear();
    ++failed_count_;
    ++result_.failed_items;
    if (items_failed_) items_failed_->inc();
  }
  finish();
}

void TransactionEngine::maybeFinish() {
  if (active_ && done_count_ + failed_count_ == txn_.items.size()) finish();
}

void TransactionEngine::checkAccounting() const {
  // Documented invariant: every byte a path moved is either a delivered
  // payload byte or waste — per_path_bytes sums to delivered_bytes and
  // per_path_wasted_bytes sums to wasted_bytes. Tolerance covers the
  // different summation orders of the two sides.
  double delivered = 0;
  for (const auto& [name, b] : result_.per_path_bytes) delivered += b;
  double wasted = 0;
  for (const auto& [name, b] : result_.per_path_wasted_bytes) wasted += b;
  const double eps = 1e-6 * std::max(1.0, result_.delivered_bytes +
                                              result_.wasted_bytes);
  if (std::abs(delivered - result_.delivered_bytes) > eps ||
      std::abs(wasted - result_.wasted_bytes) > eps) {
    throw std::logic_error(
        "TransactionEngine accounting broken: per-path bytes do not sum to "
        "delivered_bytes + wasted_bytes");
  }
}

void TransactionEngine::finish() {
  active_ = false;
  // Drain every event the engine still owns; nothing may fire into the
  // next transaction.
  if (grace_timer_ != 0) {
    sim_.cancel(grace_timer_);
    grace_timer_ = 0;
  }
  for (auto& ps : paths_) {
    if (ps.watchdog != 0) {
      sim_.cancel(ps.watchdog);
      ps.watchdog = 0;
    }
    if (ps.probe != 0) {
      sim_.cancel(ps.probe);
      ps.probe = 0;
    }
    ++ps.attempt_gen;
    ps.current_item = kNoItem;
  }
  for (auto& meta : item_meta_) {
    if (meta.backoff != 0) {
      sim_.cancel(meta.backoff);
      meta.backoff = 0;
    }
  }

  result_.duration_s = sim_.now() - started_at_;
  result_.delivered_bytes = 0;
  for (const auto& iv : items_) {
    if (iv.status == ItemStatus::kDone) result_.delivered_bytes += iv.item->bytes;
  }
  result_.failed_paths.assign(failed_path_names_.begin(),
                              failed_path_names_.end());
  if (result_.failed_items > 0) {
    result_.outcome = TransactionOutcome::kPartialFailure;
  } else if (result_.retries > 0 || result_.timeouts > 0 ||
             !result_.failed_paths.empty()) {
    result_.outcome = TransactionOutcome::kCompletedDegraded;
  } else {
    result_.outcome = TransactionOutcome::kCompleted;
  }
  checkAccounting();
  if (trace_ && txn_span_) {
    trace_->end(txn_span_,
                {{"items", std::to_string(txn_.items.size())},
                 {"outcome", toString(result_.outcome)},
                 {"wasted_bytes", std::to_string(result_.wasted_bytes)}});
    txn_span_ = 0;
  }
  if (on_done_) {
    auto cb = std::move(on_done_);
    cb(std::move(result_));
  }
}

}  // namespace gol::core
