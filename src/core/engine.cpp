#include "core/engine.hpp"

#include <algorithm>
#include <tuple>
#include <cmath>
#include <stdexcept>

namespace gol::core {

const char* toString(TransactionOutcome outcome) {
  switch (outcome) {
    case TransactionOutcome::kCompleted: return "completed";
    case TransactionOutcome::kCompletedDegraded: return "completed_degraded";
    case TransactionOutcome::kPartialFailure: return "partial_failure";
  }
  return "unknown";
}

TransactionEngine::TransactionEngine(sim::Simulator& sim,
                                     std::vector<TransferPath*> paths,
                                     Scheduler& scheduler, EngineConfig config)
    : sim_(sim),
      wheel_(sim),
      scheduler_(scheduler),
      config_(config),
      jitter_(config.jitter_seed),
      registry_(&telemetry::Registry::global()) {
  if (paths.empty())
    throw std::invalid_argument("TransactionEngine needs >= 1 path");
  for (TransferPath* p : paths) {
    if (p == nullptr) throw std::invalid_argument("null TransferPath");
    attachPath(p);
  }
}

TransactionEngine::~TransactionEngine() {
  for (auto& ps : paths_) {
    if (ps.listener != 0) ps.path->removeStateListener(ps.listener);
  }
}

void TransactionEngine::instrument(telemetry::Registry* registry,
                                   telemetry::TraceRecorder* trace) {
  registry_ = registry;
  trace_ = trace;
  // Force a re-bind on the next run (instruments may point elsewhere now).
  transactions_ = nullptr;
  for (auto& ps : paths_) {
    ps.bytes = nullptr;
    ps.wasted = nullptr;
    ps.salvaged = nullptr;
  }
  if (trace_) {
    trace_->setTrackName(0, "engine");
    for (std::size_t p = 0; p < paths_.size(); ++p)
      trace_->setTrackName(static_cast<int>(p) + 1, paths_[p].path->name());
  }
}

void TransactionEngine::bindInstruments() {
  if (registry_ == nullptr || transactions_ != nullptr) return;
  auto& r = *registry_;
  transactions_ = &r.counter("gol.engine.transactions");
  dispatched_ = &r.counter("gol.engine.items_dispatched");
  completed_ = &r.counter("gol.engine.items_completed");
  duplicated_ = &r.counter("gol.engine.items_duplicated");
  aborted_ = &r.counter("gol.engine.items_aborted");
  wasted_bytes_ = &r.counter("gol.engine.wasted_bytes");
  retries_ = &r.counter("gol.engine.retries");
  timeouts_ = &r.counter("gol.engine.watchdog_timeouts");
  items_failed_ = &r.counter("gol.engine.items_failed");
  path_down_ = &r.counter("gol.engine.path_down_events");
  quarantines_ = &r.counter("gol.engine.path_quarantines");
  salvaged_bytes_ = &r.counter("gol.engine.salvaged_bytes");
  resumed_ = &r.counter("gol.engine.resumed_attempts");
  corrupt_ = &r.counter("gol.engine.corrupt_payloads");
  hedges_ = &r.counter("gol.engine.hedges");
  hedge_wins_ = &r.counter("gol.engine.hedge_wins");
  hedge_losses_ = &r.counter("gol.engine.hedge_losses");
  const telemetry::Labels policy{{"policy", scheduler_.name()}};
  decisions_ = &r.counter("gol.scheduler.decisions", policy);
  idle_decisions_ = &r.counter("gol.scheduler.idle_decisions", policy);
  reschedules_ = &r.counter("gol.scheduler.reschedules", policy);
  for (auto& ps : paths_) bindPathInstruments(ps);
}

void TransactionEngine::bindPathInstruments(PathState& ps) {
  if (registry_ == nullptr || ps.bytes != nullptr) return;
  // Bound once per attach/instrument — the labelled-counter lookup (string
  // hashing) never sits on the per-item accounting path.
  const telemetry::Labels path{{"path", ps.path->name()}};
  ps.bytes = &registry_->counter("gol.engine.path_bytes", path);
  ps.wasted = &registry_->counter("gol.engine.path_wasted_bytes", path);
  ps.salvaged = &registry_->counter("gol.engine.path_salvaged_bytes", path);
}

void TransactionEngine::ensureAccountingSlot(PathId pid) {
  if (pid < pid_delivered_.size()) return;
  const std::size_t n = pid + 1;
  pid_delivered_.resize(n, 0.0);
  pid_wasted_.resize(n, 0.0);
  pid_salvaged_.resize(n, 0.0);
  pid_delivered_touched_.resize(n, 0);
  pid_wasted_touched_.resize(n, 0);
  pid_salvaged_touched_.resize(n, 0);
}

std::size_t TransactionEngine::usablePathCount() const {
  std::size_t n = 0;
  for (const auto& ps : paths_) {
    if (ps.attached && ps.path->alive()) ++n;
  }
  return n;
}

void TransactionEngine::attachPath(TransferPath* path) {
  if (path == nullptr) throw std::invalid_argument("null TransferPath");
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    PathState& ps = paths_[i];
    if (ps.path != path) continue;
    if (ps.attached) return;
    // Re-admission of a path we already know (the discovery case: the
    // phone left the LAN and came back). Forgive its record.
    ps.attached = true;
    ps.consecutive_failures = 0;
    ps.quarantined_until = 0;
    ps.quarantine_len_s = 0;
    if (active_ && ps.path->alive()) {
      scheduler_.onPathUp(i);
      if (grace_timer_ != 0) {
        wheel_.cancel(grace_timer_);
        grace_timer_ = 0;
      }
      dispatch(i);
    }
    return;
  }

  // A brand-new path joins the working set.
  const std::size_t index = paths_.size();
  PathState ps;
  ps.path = path;
  ps.pid = interner_.intern(path->name());
  ps.rate_est_bps = std::max(path->nominalRateBps(), 1e3);
  ensureAccountingSlot(ps.pid);
  paths_.push_back(std::move(ps));
  table_.ensurePaths(paths_.size());
  // Deferred to bindInstruments() (first run) unless instruments are
  // already live — so construct-then-instrument(nullptr) never touches the
  // registry (metro builds hundreds of thousands of engines).
  if (transactions_ != nullptr) bindPathInstruments(paths_.back());
  paths_.back().listener = path->addStateListener(
      [this, index](TransferPath&, bool alive, const std::string& reason) {
        onPathStateChange(index, alive, reason);
      });
  if (trace_) trace_->setTrackName(static_cast<int>(index) + 1, path->name());
  if (active_) {
    scheduler_.onPathAdded(index, path->nominalRateBps());
    if (path->alive()) {
      if (grace_timer_ != 0) {
        wheel_.cancel(grace_timer_);
        grace_timer_ = 0;
      }
      dispatch(index);
    } else {
      scheduler_.onPathDown(index);
    }
  }
}

void TransactionEngine::detachPath(TransferPath* path) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    PathState& ps = paths_[i];
    if (ps.path != path || !ps.attached) continue;
    ps.attached = false;
    if (!active_) return;
    noteFailedPath(ps.path->name());
    if (ps.current_item != kNoItem) {
      const std::size_t idx = ps.current_item;
      const double moved = ps.path->abortCurrent();
      pathAttemptFailed(i, idx, moved, moved, "detached",
                        /*count_against_item=*/false);
    }
    scheduler_.onPathDown(i);
    if (!active_) return;  // pathAttemptFailed may have finished the txn
    armGraceTimerIfStranded();
    dispatchAll();
    return;
  }
}

void TransactionEngine::run(Transaction txn,
                            std::function<void(TransactionResult)> on_done) {
  if (active_) throw std::logic_error("engine already running a transaction");
  active_ = true;
  txn_ = std::move(txn);
  on_done_ = std::move(on_done);
  result_ = TransactionResult{};
  result_.total_bytes = txn_.totalBytes();
  result_.item_completion_s.assign(txn_.items.size(), 0.0);
  result_.per_item_attempts.assign(txn_.items.size(), 0);
  table_.reset(txn_.items);
  table_.ensurePaths(paths_.size());
  std::fill(pid_delivered_.begin(), pid_delivered_.end(), 0.0);
  std::fill(pid_wasted_.begin(), pid_wasted_.end(), 0.0);
  std::fill(pid_salvaged_.begin(), pid_salvaged_.end(), 0.0);
  std::fill(pid_delivered_touched_.begin(), pid_delivered_touched_.end(), 0);
  std::fill(pid_wasted_touched_.begin(), pid_wasted_touched_.end(), 0);
  std::fill(pid_salvaged_touched_.begin(), pid_salvaged_touched_.end(), 0);
  failed_path_names_.clear();
  done_count_ = 0;
  failed_count_ = 0;
  pending_count_ = txn_.items.size();
  started_at_ = sim_.now();
  for (auto& ps : paths_) {
    ps.current_item = kNoItem;
    ps.span = 0;
    ps.attempt_offset = 0;
    ps.hedged = false;
    ps.quarantined_until = 0;
    ps.quarantine_len_s = 0;
    ps.consecutive_failures = 0;
    if (ps.rate_est_bps <= 0)
      ps.rate_est_bps = std::max(ps.path->nominalRateBps(), 1e3);
  }

  bindInstruments();
  if (transactions_) transactions_->inc();
  if (trace_) txn_span_ = trace_->begin("transaction", "engine", 0);

  std::vector<double> nominal;
  nominal.reserve(paths_.size());
  for (const auto& ps : paths_) nominal.push_back(ps.path->nominalRateBps());
  scheduler_.onTransactionStart(txn_, nominal);
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    if (!paths_[p].attached || !paths_[p].path->alive())
      scheduler_.onPathDown(p);
  }

  if (txn_.items.empty()) {
    finish();
    return;
  }
  dispatchAll();
  armGraceTimerIfStranded();
}

void TransactionEngine::dispatchAll() {
  for (std::size_t p = 0; p < paths_.size() && active_; ++p) dispatch(p);
}

double TransactionEngine::watchdogDeadline(const PathState& ps,
                                           const Item& item,
                                           double offset) const {
  const double remaining = std::max(item.bytes - offset, 0.0);
  const double est_s = remaining * 8.0 / std::max(ps.rate_est_bps, 1e3);
  return std::max(config_.watchdog.min_deadline_s,
                  config_.watchdog.k * est_s);
}

double TransactionEngine::backoffDelay(int failed_attempts) {
  const RetryPolicy& r = config_.retry;
  double d = r.base_backoff_s *
             std::pow(r.backoff_multiplier,
                      std::max(0, failed_attempts - 1));
  d = std::min(d, r.max_backoff_s);
  if (r.jitter > 0)
    d *= jitter_.uniform(1.0 - r.jitter, 1.0 + r.jitter);
  return std::max(d, 0.0);
}

void TransactionEngine::dispatch(std::size_t path_index) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (!ps.attached || !ps.path->alive() || ps.path->busy()) return;
  if (sim_.now() < ps.quarantined_until) return;

  EngineView view{&table_, paths_.size(), sim_.now(), pending_count_};
  auto choice = scheduler_.nextItem(view, path_index);
  bool hedged = false;
  if (!choice) {
    // Tail hedging: with the pending pool dry and only a handful of items
    // still in flight, an idle path duplicates the oldest one instead of
    // sitting out the tail (first completion wins, loser becomes waste).
    choice = hedgeCandidate(path_index);
    if (!choice) {
      if (idle_decisions_) idle_decisions_->inc();
      return;
    }
    hedged = true;
    ++result_.hedges;
    if (hedges_) hedges_->inc();
  }
  if (decisions_) decisions_->inc();
  const std::size_t idx = *choice;
  if (idx >= table_.size())
    throw std::logic_error("scheduler returned an out-of-range item");
  const ItemStatus status = table_.status(idx);
  if (status == ItemStatus::kDone || status == ItemStatus::kFailed)
    throw std::logic_error("scheduler assigned a terminal item");
  if (status == ItemStatus::kBackoff)
    throw std::logic_error("scheduler assigned an item in retry backoff");
  if (table_.carriedBy(idx, path_index))
    throw std::logic_error("scheduler re-assigned item to its own carrier");

  if (status == ItemStatus::kPending) {
    table_.setStatus(idx, ItemStatus::kInFlight);
    table_.setFirstAssignedAt(idx, sim_.now());
    --pending_count_;
  } else {
    ++result_.duplicated_items;
    if (duplicated_) duplicated_->inc();
    if (reschedules_) reschedules_->inc();
  }
  ++result_.per_item_attempts[idx];
  if (dispatched_) dispatched_->inc();

  // Resume from the item's checkpoint when both sides support it; a
  // non-resuming path restarts at 0 and the overlap is settled when the
  // item completes.
  const Item& item = table_.item(idx);
  double offset = 0;
  if (config_.resume && ps.path->supportsResume() &&
      table_.checkpoint(idx) > 0) {
    offset = std::min(table_.checkpoint(idx), item.bytes);
    ++result_.resumed_attempts;
    if (resumed_) resumed_->inc();
  }
  ps.attempt_offset = offset;
  ps.hedged = hedged;
  if (trace_) {
    std::string span_name = item.name;
    if (offset > 0) span_name = "resume:" + span_name;
    if (hedged) span_name = "hedge:" + span_name;
    ps.span = trace_->begin(span_name, "engine",
                            static_cast<int>(path_index) + 1);
  }
  table_.addCarrier(idx, path_index);
  ps.busy_since = sim_.now();
  ps.current_item = idx;
  const std::uint64_t gen = ++ps.attempt_gen;
  if (config_.watchdog.enabled) {
    ps.watchdog = wheel_.armIn(
        watchdogDeadline(ps, item, offset),
        [this, path_index, gen] { onWatchdog(path_index, gen); });
  }
  ps.path->start(item, offset,
                 TransferPath::DoneFn([this, path_index, gen](
                     const Item& it, const ItemResult& result) {
                   onItemEvent(path_index, gen, it, result);
                 }));
}

std::optional<std::size_t> TransactionEngine::hedgeCandidate(
    std::size_t path_index) const {
  if (config_.hedge_tail_items <= 0 || pending_count_ > 0)
    return std::nullopt;
  const std::size_t remaining = table_.size() - done_count_ - failed_count_;
  if (remaining == 0 ||
      remaining > static_cast<std::size_t>(config_.hedge_tail_items))
    return std::nullopt;
  std::optional<std::size_t> best;
  double best_t = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_.status(i) != ItemStatus::kInFlight) continue;
    if (table_.carriedBy(i, path_index)) continue;
    // Explicit (first_assigned_at, index) key, matching the schedulers'
    // tie-break convention.
    const double t = table_.firstAssignedAt(i);
    if (!best || std::make_tuple(t, i) < std::make_tuple(best_t, *best)) {
      best = i;
      best_t = t;
    }
  }
  return best;
}

void TransactionEngine::recordWaste(PathState& ps, double bytes) {
  if (bytes <= 0) return;
  result_.wasted_bytes += bytes;
  pid_wasted_[ps.pid] += bytes;
  pid_wasted_touched_[ps.pid] = 1;
  if (wasted_bytes_) wasted_bytes_->inc(bytes);
  if (ps.wasted) ps.wasted->inc(bytes);
}

void TransactionEngine::recordSalvage(PathState& ps, std::size_t item_index,
                                      double bytes) {
  if (bytes <= 0) return;
  table_.appendSalvage(item_index, ps.pid, bytes);
  result_.salvaged_bytes += bytes;
  pid_salvaged_[ps.pid] += bytes;
  pid_salvaged_touched_[ps.pid] = 1;
  if (salvaged_bytes_) salvaged_bytes_->inc(bytes);
  if (ps.salvaged) ps.salvaged->inc(bytes);
}

void TransactionEngine::reclaimSalvage(std::size_t item_index,
                                       double keep_prefix) {
  // Peel ledger runs back-to-front: the bytes beyond keep_prefix were
  // re-fetched (or are untrusted), so they were moved for nothing.
  table_.peelSalvage(item_index, keep_prefix, [this](PathId pid,
                                                     double take) {
    result_.salvaged_bytes -= take;
    pid_salvaged_[pid] -= take;
    pid_salvaged_touched_[pid] = 1;
    result_.wasted_bytes += take;
    pid_wasted_[pid] += take;
    pid_wasted_touched_[pid] = 1;
    if (wasted_bytes_) wasted_bytes_->inc(take);
  });
}

void TransactionEngine::clearAttempt(PathState& ps) {
  if (ps.watchdog != 0) {
    wheel_.cancel(ps.watchdog);
    ps.watchdog = 0;
  }
  ++ps.attempt_gen;  // any in-flight callback/timer for this attempt is void
  ps.current_item = kNoItem;
  ps.attempt_offset = 0;
  ps.hedged = false;
}

void TransactionEngine::noteFailedPath(const std::string& name) {
  if (failed_path_names_.insert(name).second && path_down_) path_down_->inc();
}

void TransactionEngine::onItemEvent(std::size_t path_index, std::uint64_t gen,
                                    const Item& item,
                                    const ItemResult& result) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (gen != ps.attempt_gen) return;  // attempt already aborted/expired

  bool corrupt = result.outcome == ItemOutcome::kCorrupt;
  if (result.outcome == ItemOutcome::kCompleted) {
    // End-to-end integrity gate: a "complete" payload whose digest does not
    // match what the generator promised is a corruption, not a delivery.
    // Duplicate-race losers skip the gate — their bytes are waste either
    // way and the item already landed verified.
    if (table_.status(item.index) != ItemStatus::kDone &&
        config_.verify_checksums && item.checksum != 0 &&
        result.checksum != item.checksum) {
      corrupt = true;
    } else {
      onItemCompleted(path_index, item, result);
      return;
    }
  }

  if (corrupt) {
    ++result_.corrupt_payloads;
    if (corrupt_) corrupt_->inc();
    if (table_.status(item.index) != ItemStatus::kDone) {
      // The checkpoint prefix can no longer be trusted (the corrupting
      // element may have been mangling every attempt): discard it, and
      // abort sibling attempts whose byte ranges anchored to it.
      reclaimSalvage(item.index, 0.0);
      const std::vector<std::size_t> siblings =
          table_.carriersSnapshot(item.index);
      for (std::size_t other : siblings) {
        if (other == path_index) continue;
        PathState& os = paths_[other];
        const double moved = os.path->abortCurrent();
        if (trace_ && os.span) {
          trace_->end(os.span, {{"outcome", "aborted"}});
          os.span = 0;
        }
        clearAttempt(os);
        recordWaste(os, moved);
        if (aborted_) aborted_->inc();
        table_.removeCarrier(item.index, other);
      }
    }
  }

  // A hard failure surfaced by the path itself (socket reset, device gone)
  // or the integrity gate above.
  if (trace_ && ps.span) {
    trace_->end(ps.span, {{"outcome", corrupt ? "corrupt" : "failed"},
                          {"error", result.error}});
    ps.span = 0;
  }
  const bool was_active = active_;
  pathAttemptFailed(path_index, item.index, result.bytes_moved,
                    corrupt ? 0.0 : result.salvageable_bytes,
                    corrupt ? "corrupt" : nullptr,
                    /*count_against_item=*/true);
  // Paths freed by the sibling aborts go back to work.
  if (corrupt && was_active && active_) dispatchAll();
}

void TransactionEngine::onItemCompleted(std::size_t path_index,
                                        const Item& item,
                                        const ItemResult& result) {
  PathState& ps = paths_[path_index];
  const double elapsed = sim_.now() - ps.busy_since;
  const double offset = ps.attempt_offset;
  const bool hedged = ps.hedged;
  ps.consecutive_failures = 0;
  ps.quarantine_len_s = 0;
  if (elapsed > 1e-9 && result.bytes_moved > 0) {
    // Blend observed goodput into the watchdog's rate estimate (moved
    // bytes, not the full item — resumed attempts fetch only the tail).
    const double sample = result.bytes_moved * 8.0 / elapsed;
    ps.rate_est_bps = 0.5 * ps.rate_est_bps + 0.5 * sample;
  }

  // The duplicate race: a copy may complete on another path in the same
  // instant; only the first counts.
  if (table_.status(item.index) == ItemStatus::kDone) {
    table_.removeCarrier(item.index, path_index);
    recordWaste(ps, result.bytes_moved);
    if (aborted_) aborted_->inc();
    if (trace_ && ps.span) {
      trace_->end(ps.span, {{"outcome", "lost-race"}});
      ps.span = 0;
    }
    clearAttempt(ps);
    dispatch(path_index);
    return;
  }

  table_.setStatus(item.index, ItemStatus::kDone);
  ++done_count_;
  result_.item_completion_s[item.index] = sim_.now() - started_at_;
  // The completing attempt delivered [offset, bytes); the prefix [0,
  // offset) rides in from the salvage ledger. Salvage the winner never
  // consumed (a checkpoint past its start, or any checkpoint when the
  // winner restarted at 0) was re-fetched and becomes waste.
  const double tail = std::max(item.bytes - offset, 0.0);
  pid_delivered_[ps.pid] += tail;
  pid_delivered_touched_[ps.pid] = 1;
  reclaimSalvage(item.index, offset);
  if (hedged) {
    ++result_.hedge_wins;
    if (hedge_wins_) hedge_wins_->inc();
  }
  if (completed_) completed_->inc();
  if (ps.bytes) ps.bytes->inc(tail);
  if (trace_ && ps.span) {
    trace_->end(ps.span, {{"outcome", "completed"}});
    ps.span = 0;
  }
  clearAttempt(ps);
  scheduler_.onItemComplete(path_index, item, elapsed);

  // Abort the losing duplicates and free their paths.
  const std::vector<std::size_t> others =
      table_.carriersSnapshot(item.index);
  table_.clearCarriers(item.index);
  for (std::size_t other : others) {
    if (other == path_index) continue;
    PathState& os = paths_[other];
    const double moved = os.path->abortCurrent();
    if (os.hedged && hedge_losses_) hedge_losses_->inc();
    clearAttempt(os);
    recordWaste(os, moved);
    if (aborted_) aborted_->inc();
    if (trace_ && os.span) {
      trace_->end(os.span, {{"outcome", "aborted"}});
      os.span = 0;
    }
  }

  if (done_count_ + failed_count_ == txn_.items.size()) {
    finish();
    return;
  }
  for (std::size_t other : others) {
    if (other != path_index) dispatch(other);
  }
  dispatch(path_index);
}

void TransactionEngine::onWatchdog(std::size_t path_index,
                                   std::uint64_t gen) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (gen != ps.attempt_gen) return;  // attempt ended; timer raced cancel
  ps.watchdog = 0;
  const std::size_t idx = ps.current_item;
  if (idx == kNoItem) return;
  const double elapsed = sim_.now() - ps.busy_since;
  const double moved = ps.path->abortCurrent();
  if (elapsed > 1e-9 && moved > 0) {
    // The attempt was slow, not dead: remember the partial rate so the
    // next deadline on this path is realistic instead of re-tripping.
    const double sample = moved * 8.0 / elapsed;
    ps.rate_est_bps = 0.5 * ps.rate_est_bps + 0.5 * sample;
  }
  ++result_.timeouts;
  if (timeouts_) timeouts_->inc();
  if (trace_ && ps.span) {
    trace_->end(ps.span, {{"outcome", "timed-out"}});
    ps.span = 0;
  }
  // Whatever the aborted attempt received is a contiguous prefix from its
  // start offset — salvageable on resume-capable paths.
  pathAttemptFailed(path_index, idx, moved, moved, nullptr,
                    /*count_against_item=*/true);
}

void TransactionEngine::pathAttemptFailed(std::size_t path_index,
                                          std::size_t item_index,
                                          double moved_bytes,
                                          double salvageable_bytes,
                                          const char* span_outcome,
                                          bool count_against_item) {
  PathState& ps = paths_[path_index];
  const ItemStatus status_in = table_.status(item_index);

  // Salvage: the attempt's contiguous prefix extends the item's checkpoint
  // by whatever part reaches past it. Requires the attempt to have started
  // at (or before) the current checkpoint so the ranges join up, and a
  // path whose receive buffer survives the failure (supportsResume).
  double salvaged = 0;
  if (status_in != ItemStatus::kDone && config_.resume &&
      ps.path->supportsResume() && salvageable_bytes > 0 &&
      ps.attempt_offset <= table_.checkpoint(item_index) + 1e-9) {
    const double prefix = std::min(salvageable_bytes, moved_bytes);
    const double reach =
        std::min(ps.attempt_offset + prefix, table_.bytes(item_index));
    salvaged = std::max(0.0, reach - table_.checkpoint(item_index));
    if (salvaged > 0) recordSalvage(ps, item_index, salvaged);
  }
  recordWaste(ps, moved_bytes - salvaged);
  if (trace_ && ps.span) {
    trace_->end(ps.span,
                {{"outcome", span_outcome ? span_outcome : "failed"}});
    ps.span = 0;
  }
  if (ps.hedged && hedge_losses_) hedge_losses_->inc();
  clearAttempt(ps);

  table_.removeCarrier(item_index, path_index);

  // Quarantine-and-probe: a path that keeps failing while nominally alive
  // is benched for a growing interval instead of retried in a hot loop.
  if (count_against_item && ps.attached && ps.path->alive() &&
      ++ps.consecutive_failures >= config_.quarantine.threshold) {
    const QuarantinePolicy& q = config_.quarantine;
    ps.quarantine_len_s =
        ps.quarantine_len_s <= 0
            ? q.base_s
            : std::min(ps.quarantine_len_s * q.multiplier, q.max_s);
    ps.quarantined_until = sim_.now() + ps.quarantine_len_s;
    if (quarantines_) quarantines_->inc();
    if (ps.probe != 0) wheel_.cancel(ps.probe);
    ps.probe = wheel_.armIn(ps.quarantine_len_s, [this, path_index] {
      paths_[path_index].probe = 0;
      dispatch(path_index);
    });
  }

  if (status_in == ItemStatus::kDone) return;  // raced a completion
  if (table_.carrierCount(item_index) > 0) {
    // A duplicate is still running elsewhere; the item's fate rides on it.
    dispatch(path_index);
    return;
  }

  if (count_against_item) {
    if (table_.bumpFailedAttempts(item_index) >= config_.retry.max_attempts) {
      table_.setStatus(item_index, ItemStatus::kFailed);
      ++failed_count_;
      ++result_.failed_items;
      if (items_failed_) items_failed_->inc();
      // A checkpoint of an undeliverable item bought nothing: waste.
      reclaimSalvage(item_index, 0.0);
    } else {
      table_.setStatus(item_index, ItemStatus::kBackoff);
      ++result_.retries;
      if (retries_) retries_->inc();
      table_.setBackoffTimer(
          item_index,
          wheel_.armIn(backoffDelay(table_.failedAttempts(item_index)),
                       [this, handle = table_.handle(item_index)] {
                         onBackoffExpired(handle);
                       }));
    }
  } else {
    // The path failed, not the item: back into the pool immediately, no
    // penalty against the item's retry budget.
    table_.setStatus(item_index, ItemStatus::kPending);
    ++pending_count_;
    scheduler_.onItemRequeued(item_index);
  }

  maybeFinish();
  if (active_) dispatch(path_index);
}

void TransactionEngine::onBackoffExpired(ItemHandle handle) {
  if (!active_ || !table_.valid(handle)) return;
  const std::size_t item_index = handle.index;
  table_.setBackoffTimer(item_index, 0);
  if (table_.status(item_index) != ItemStatus::kBackoff) return;
  table_.setStatus(item_index, ItemStatus::kPending);
  ++pending_count_;
  scheduler_.onItemRequeued(item_index);
  dispatchAll();
}

void TransactionEngine::onPathStateChange(std::size_t path_index, bool alive,
                                          const std::string& reason) {
  PathState& ps = paths_[path_index];
  if (!alive) {
    if (!active_ || !ps.attached) return;
    noteFailedPath(ps.path->name());
    if (ps.current_item != kNoItem) {
      const std::size_t idx = ps.current_item;
      const double moved = ps.path->abortCurrent();
      pathAttemptFailed(path_index, idx, moved, moved,
                        reason.empty() ? "path-down" : reason.c_str(),
                        /*count_against_item=*/false);
    }
    scheduler_.onPathDown(path_index);
    if (!active_) return;
    armGraceTimerIfStranded();
    dispatchAll();
    return;
  }

  // Recovery: clean slate for the returning path.
  ps.consecutive_failures = 0;
  ps.quarantined_until = 0;
  ps.quarantine_len_s = 0;
  if (ps.probe != 0) {
    wheel_.cancel(ps.probe);
    ps.probe = 0;
  }
  if (!active_ || !ps.attached) return;
  scheduler_.onPathUp(path_index);
  if (grace_timer_ != 0) {
    wheel_.cancel(grace_timer_);
    grace_timer_ = 0;
  }
  dispatchAll();
}

void TransactionEngine::armGraceTimerIfStranded() {
  if (!active_ || grace_timer_ != 0) return;
  if (usablePathCount() > 0) return;
  if (done_count_ + failed_count_ == table_.size()) return;
  grace_timer_ = wheel_.armIn(config_.all_paths_down_grace_s,
                              [this] { onGraceExpired(); });
}

void TransactionEngine::onGraceExpired() {
  if (!active_) return;
  grace_timer_ = 0;
  if (usablePathCount() > 0) return;  // a path came back; stand down
  // Every usable path is gone and none returned within the grace window:
  // fail the remaining items so the transaction still terminates.
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const ItemStatus status = table_.status(i);
    if (status == ItemStatus::kDone || status == ItemStatus::kFailed)
      continue;
    if (table_.backoffTimer(i) != 0) {
      wheel_.cancel(table_.backoffTimer(i));
      table_.setBackoffTimer(i, 0);
    }
    if (status == ItemStatus::kPending) --pending_count_;
    table_.setStatus(i, ItemStatus::kFailed);
    table_.clearCarriers(i);
    ++failed_count_;
    ++result_.failed_items;
    if (items_failed_) items_failed_->inc();
    reclaimSalvage(i, 0.0);  // undelivered checkpoints end as waste
  }
  finish();
}

void TransactionEngine::maybeFinish() {
  if (active_ && done_count_ + failed_count_ == txn_.items.size()) finish();
}

void TransactionEngine::materializePerPathMaps() {
  for (PathId pid = 0; pid < interner_.size(); ++pid) {
    const std::string& name = interner_.name(pid);
    if (pid_delivered_touched_[pid])
      result_.per_path_bytes[name] = pid_delivered_[pid];
    if (pid_wasted_touched_[pid])
      result_.per_path_wasted_bytes[name] = pid_wasted_[pid];
    if (pid_salvaged_touched_[pid])
      result_.per_path_salvaged_bytes[name] = pid_salvaged_[pid];
  }
}

void TransactionEngine::checkAccounting() const {
  // Documented invariant: every byte a path moved is exactly one of
  // delivered payload, salvaged-into-delivered, or waste — per_path_bytes
  // plus per_path_salvaged_bytes sums to delivered_bytes,
  // per_path_salvaged_bytes sums to salvaged_bytes, and
  // per_path_wasted_bytes sums to wasted_bytes. Tolerance covers the
  // different summation orders of the sides.
  double delivered = 0;
  for (const auto& [name, b] : result_.per_path_bytes) delivered += b;
  double salvaged = 0;
  for (const auto& [name, b] : result_.per_path_salvaged_bytes) salvaged += b;
  delivered += salvaged;
  double wasted = 0;
  for (const auto& [name, b] : result_.per_path_wasted_bytes) wasted += b;
  const double eps = 1e-6 * std::max(1.0, result_.delivered_bytes +
                                              result_.wasted_bytes);
  if (std::abs(delivered - result_.delivered_bytes) > eps ||
      std::abs(salvaged - result_.salvaged_bytes) > eps ||
      std::abs(wasted - result_.wasted_bytes) > eps) {
    throw std::logic_error(
        "TransactionEngine accounting broken: per-path bytes do not sum to "
        "delivered_bytes (payload + salvage) + wasted_bytes");
  }
}

void TransactionEngine::finish() {
  active_ = false;
  // Drain every timer the engine still owns; nothing may fire into the
  // next transaction.
  if (grace_timer_ != 0) {
    wheel_.cancel(grace_timer_);
    grace_timer_ = 0;
  }
  for (auto& ps : paths_) {
    if (ps.watchdog != 0) {
      wheel_.cancel(ps.watchdog);
      ps.watchdog = 0;
    }
    if (ps.probe != 0) {
      wheel_.cancel(ps.probe);
      ps.probe = 0;
    }
    ++ps.attempt_gen;
    ps.current_item = kNoItem;
    ps.attempt_offset = 0;
    ps.hedged = false;
  }
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_.backoffTimer(i) != 0) {
      wheel_.cancel(table_.backoffTimer(i));
      table_.setBackoffTimer(i, 0);
    }
  }

  result_.duration_s = sim_.now() - started_at_;
  result_.delivered_bytes = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_.status(i) == ItemStatus::kDone)
      result_.delivered_bytes += table_.bytes(i);
  }
  result_.failed_paths.assign(failed_path_names_.begin(),
                              failed_path_names_.end());
  if (result_.failed_items > 0) {
    result_.outcome = TransactionOutcome::kPartialFailure;
  } else if (result_.retries > 0 || result_.timeouts > 0 ||
             !result_.failed_paths.empty()) {
    result_.outcome = TransactionOutcome::kCompletedDegraded;
  } else {
    result_.outcome = TransactionOutcome::kCompleted;
  }
  materializePerPathMaps();
  checkAccounting();
  if (trace_ && txn_span_) {
    trace_->end(txn_span_,
                {{"items", std::to_string(txn_.items.size())},
                 {"outcome", toString(result_.outcome)},
                 {"wasted_bytes", std::to_string(result_.wasted_bytes)}});
    txn_span_ = 0;
  }
  if (on_done_) {
    auto cb = std::move(on_done_);
    cb(std::move(result_));
  }
}

}  // namespace gol::core
