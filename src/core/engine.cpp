#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gol::core {

TransactionEngine::TransactionEngine(sim::Simulator& sim,
                                     std::vector<TransferPath*> paths,
                                     Scheduler& scheduler)
    : sim_(sim),
      scheduler_(scheduler),
      registry_(&telemetry::Registry::global()) {
  if (paths.empty())
    throw std::invalid_argument("TransactionEngine needs >= 1 path");
  for (TransferPath* p : paths) {
    if (p == nullptr) throw std::invalid_argument("null TransferPath");
    paths_.push_back(PathState{p, 0, 0, nullptr, nullptr});
  }
}

void TransactionEngine::instrument(telemetry::Registry* registry,
                                   telemetry::TraceRecorder* trace) {
  registry_ = registry;
  trace_ = trace;
  // Force a re-bind on the next run (instruments may point elsewhere now).
  transactions_ = nullptr;
  for (auto& ps : paths_) {
    ps.bytes = nullptr;
    ps.wasted = nullptr;
  }
  if (trace_) {
    trace_->setTrackName(0, "engine");
    for (std::size_t p = 0; p < paths_.size(); ++p)
      trace_->setTrackName(static_cast<int>(p) + 1, paths_[p].path->name());
  }
}

void TransactionEngine::bindInstruments() {
  if (registry_ == nullptr || transactions_ != nullptr) return;
  auto& r = *registry_;
  transactions_ = &r.counter("gol.engine.transactions");
  dispatched_ = &r.counter("gol.engine.items_dispatched");
  completed_ = &r.counter("gol.engine.items_completed");
  duplicated_ = &r.counter("gol.engine.items_duplicated");
  aborted_ = &r.counter("gol.engine.items_aborted");
  wasted_bytes_ = &r.counter("gol.engine.wasted_bytes");
  const telemetry::Labels policy{{"policy", scheduler_.name()}};
  decisions_ = &r.counter("gol.scheduler.decisions", policy);
  idle_decisions_ = &r.counter("gol.scheduler.idle_decisions", policy);
  reschedules_ = &r.counter("gol.scheduler.reschedules", policy);
  for (auto& ps : paths_) {
    const telemetry::Labels path{{"path", ps.path->name()}};
    ps.bytes = &r.counter("gol.engine.path_bytes", path);
    ps.wasted = &r.counter("gol.engine.path_wasted_bytes", path);
  }
}

void TransactionEngine::run(Transaction txn,
                            std::function<void(TransactionResult)> on_done) {
  if (active_) throw std::logic_error("engine already running a transaction");
  active_ = true;
  txn_ = std::move(txn);
  on_done_ = std::move(on_done);
  result_ = TransactionResult{};
  result_.total_bytes = txn_.totalBytes();
  result_.item_completion_s.assign(txn_.items.size(), 0.0);
  done_count_ = 0;
  started_at_ = sim_.now();

  bindInstruments();
  if (transactions_) transactions_->inc();
  if (trace_) txn_span_ = trace_->begin("transaction", "engine", 0);

  items_.clear();
  items_.reserve(txn_.items.size());
  for (const auto& it : txn_.items) {
    ItemView iv;
    iv.item = &it;
    items_.push_back(std::move(iv));
  }

  std::vector<double> nominal;
  nominal.reserve(paths_.size());
  for (const auto& ps : paths_) nominal.push_back(ps.path->nominalRateBps());
  scheduler_.onTransactionStart(txn_, nominal);

  if (txn_.items.empty()) {
    finish();
    return;
  }
  for (std::size_t p = 0; p < paths_.size(); ++p) dispatch(p);
}

void TransactionEngine::dispatch(std::size_t path_index) {
  if (!active_) return;
  PathState& ps = paths_[path_index];
  if (ps.path->busy()) return;

  EngineView view{&items_, paths_.size(), sim_.now()};
  const auto choice = scheduler_.nextItem(view, path_index);
  if (!choice) {
    if (idle_decisions_) idle_decisions_->inc();
    return;
  }
  if (decisions_) decisions_->inc();
  const std::size_t idx = *choice;
  ItemView& iv = items_.at(idx);
  if (iv.status == ItemStatus::kDone)
    throw std::logic_error("scheduler assigned a completed item");
  if (std::find(iv.carriers.begin(), iv.carriers.end(), path_index) !=
      iv.carriers.end())
    throw std::logic_error("scheduler re-assigned item to its own carrier");

  if (iv.status == ItemStatus::kPending) {
    iv.status = ItemStatus::kInFlight;
    iv.first_assigned_at = sim_.now();
  } else {
    ++result_.duplicated_items;
    if (duplicated_) duplicated_->inc();
    if (reschedules_) reschedules_->inc();
  }
  if (dispatched_) dispatched_->inc();
  if (trace_)
    ps.span = trace_->begin(iv.item->name, "engine",
                            static_cast<int>(path_index) + 1);
  iv.carriers.push_back(path_index);
  ps.busy_since = sim_.now();
  ps.path->start(*iv.item, [this, path_index](const Item& item) {
    onItemDone(path_index, item);
  });
}

void TransactionEngine::onItemDone(std::size_t path_index, const Item& item) {
  if (!active_) return;
  ItemView& iv = items_.at(item.index);
  PathState& ps = paths_[path_index];

  // The duplicate race: a copy may complete on another path in the same
  // instant; only the first counts.
  if (iv.status == ItemStatus::kDone) {
    iv.carriers.erase(
        std::remove(iv.carriers.begin(), iv.carriers.end(), path_index),
        iv.carriers.end());
    result_.wasted_bytes += item.bytes;
    result_.per_path_wasted_bytes[ps.path->name()] += item.bytes;
    if (aborted_) aborted_->inc();
    if (wasted_bytes_) wasted_bytes_->inc(item.bytes);
    if (ps.wasted) ps.wasted->inc(item.bytes);
    if (trace_ && ps.span) {
      trace_->end(ps.span, {{"outcome", "lost-race"}});
      ps.span = 0;
    }
    dispatch(path_index);
    return;
  }

  iv.status = ItemStatus::kDone;
  ++done_count_;
  result_.item_completion_s[item.index] = sim_.now() - started_at_;
  result_.per_path_bytes[ps.path->name()] += item.bytes;
  if (completed_) completed_->inc();
  if (ps.bytes) ps.bytes->inc(item.bytes);
  if (trace_ && ps.span) {
    trace_->end(ps.span, {{"outcome", "completed"}});
    ps.span = 0;
  }
  scheduler_.onItemComplete(path_index, item, sim_.now() - ps.busy_since);

  // Abort the losing duplicates and free their paths.
  std::vector<std::size_t> others = iv.carriers;
  iv.carriers.clear();
  for (std::size_t other : others) {
    if (other == path_index) continue;
    PathState& os = paths_[other];
    const double moved = os.path->abortCurrent();
    result_.wasted_bytes += moved;
    result_.per_path_wasted_bytes[os.path->name()] += moved;
    if (aborted_) aborted_->inc();
    if (wasted_bytes_) wasted_bytes_->inc(moved);
    if (os.wasted) os.wasted->inc(moved);
    if (trace_ && os.span) {
      trace_->end(os.span, {{"outcome", "aborted"}});
      os.span = 0;
    }
  }

  if (done_count_ == txn_.items.size()) {
    finish();
    return;
  }
  for (std::size_t other : others) {
    if (other != path_index) dispatch(other);
  }
  dispatch(path_index);
}

void TransactionEngine::checkAccounting() const {
  // Documented invariant: every byte a path moved is either a delivered
  // payload byte or waste — per_path_bytes sums to total_bytes and
  // per_path_wasted_bytes sums to wasted_bytes. Tolerance covers the
  // different summation orders of the two sides.
  double delivered = 0;
  for (const auto& [name, b] : result_.per_path_bytes) delivered += b;
  double wasted = 0;
  for (const auto& [name, b] : result_.per_path_wasted_bytes) wasted += b;
  const double eps = 1e-6 * std::max(1.0, result_.total_bytes +
                                              result_.wasted_bytes);
  if (std::abs(delivered - result_.total_bytes) > eps ||
      std::abs(wasted - result_.wasted_bytes) > eps) {
    throw std::logic_error(
        "TransactionEngine accounting broken: per-path bytes do not sum to "
        "total_bytes + wasted_bytes");
  }
}

void TransactionEngine::finish() {
  active_ = false;
  result_.duration_s = sim_.now() - started_at_;
  checkAccounting();
  if (trace_ && txn_span_) {
    trace_->end(txn_span_,
                {{"items", std::to_string(txn_.items.size())},
                 {"wasted_bytes", std::to_string(result_.wasted_bytes)}});
    txn_span_ = 0;
  }
  if (on_done_) {
    auto cb = std::move(on_done_);
    cb(std::move(result_));
  }
}

}  // namespace gol::core
