// The paper's scheduler (GRD, Sec. 4.1.1): work-conserving greedy
// assignment with tail re-scheduling.
//
//   1. While pending items exist, an idle path takes the next one in order
//      — all paths stay busy.
//   2. When none are pending but the transaction is unfinished, the idle
//      path *duplicates* the oldest-scheduled in-flight item it is not
//      already carrying; whichever copy finishes first wins and the others
//      are aborted. Waste is bounded by (N-1) * Sm.
#pragma once

#include "core/scheduler.hpp"

namespace gol::core {

class GreedyScheduler : public Scheduler {
 public:
  /// `enable_rescheduling` = false turns step 2 off (idle tails), used by
  /// the ablation bench to quantify what tail duplication buys.
  explicit GreedyScheduler(bool enable_rescheduling = true)
      : reschedule_(enable_rescheduling) {}

  std::string name() const override {
    return reschedule_ ? "greedy" : "greedy-noresched";
  }

  std::optional<std::size_t> nextItem(const EngineView& view,
                                      std::size_t path_index) override;

 private:
  bool reschedule_;
};

}  // namespace gol::core
