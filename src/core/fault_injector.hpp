// Binds a sim::FaultPlan to live objects: paths are killed, flapped and
// stalled via the TransferPath liveness/stall hooks, and admission faults
// (permit revocation, cap exhaustion) go through the OnloadController so
// they propagate the same way they would in production — the phone stops
// beaconing and ages out of the admissible set.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/onload_controller.hpp"
#include "core/transfer_path.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace gol::core {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator& sim) : sim_(sim) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a kill/flap/stall target under its name().
  void addPath(TransferPath* path);
  /// Enables revoke/cap faults (optional; without it they are no-ops).
  void setController(OnloadController* controller) { controller_ = controller; }
  /// Publishes `gol.fault.injected{kind=...}` counters into `registry`.
  void instrument(telemetry::Registry* registry) { registry_ = registry; }

  /// Schedules every event in `plan` (events already in the past fire
  /// immediately). Throws std::invalid_argument when a targeted event
  /// names a path that was never added — a typo in a fault spec should
  /// fail loudly, not silently test nothing.
  void arm(const sim::FaultPlan& plan);

  /// Cancels every not-yet-fired event (including pending flap
  /// recoveries). Call before the registered paths are destroyed when the
  /// plan's horizon outlives the transaction.
  void disarm();

  std::size_t injectedCount() const { return injected_; }

 private:
  void inject(const sim::FaultEvent& ev);

  sim::Simulator& sim_;
  OnloadController* controller_ = nullptr;
  telemetry::Registry* registry_ = nullptr;
  std::map<std::string, TransferPath*> paths_;
  std::vector<sim::EventId> pending_;
  std::size_t injected_ = 0;
};

}  // namespace gol::core
