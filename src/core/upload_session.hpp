// Multimedia upload over 3GOL (Sec. 4.1, Fig 9): a set of photos posted as
// multipart/form-data, parallelized across the ADSL uplink and the phones.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/home.hpp"
#include "core/session_options.hpp"
#include "sim/rng.hpp"

namespace gol::core {

/// Scheduler/paths/faults knobs live in the SessionOptions base, shared
/// with VodOptions.
struct UploadOptions : SessionOptions {
  int photos = 30;            ///< Paper: 30 pictures per run.
  double mean_bytes = 2.5e6;  ///< Paper: iPhone 4S/5 Flickr sample mean.
  double sd_bytes = 0.74e6;   ///< ... and standard deviation.
};

struct UploadOutcome {
  TransactionResult txn;
  double payload_bytes = 0;   ///< Photo bytes, excluding multipart framing.
  double framing_bytes = 0;   ///< multipart/form-data overhead.
};

class UploadSession {
 public:
  explicit UploadSession(HomeEnvironment& home) : home_(home) {}

  /// Draws photo sizes from the home's RNG stream and runs the upload.
  UploadOutcome run(const UploadOptions& opts);

  /// Deterministic photo-size generator, exposed for tests and benches.
  static std::vector<double> drawPhotoSizes(sim::Rng& rng, int count,
                                            double mean_bytes,
                                            double sd_bytes);

 private:
  HomeEnvironment& home_;
};

}  // namespace gol::core
