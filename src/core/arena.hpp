// Per-transaction bump allocator. The engine's churn bookkeeping — salvage
// ledger runs, retry metadata — is allocated from one of these and released
// wholesale when the transaction finishes, so a million-item run performs
// zero per-item heap frees and its allocator cost is a pointer bump.
//
// Not a general-purpose allocator: no per-object deallocate (callers that
// need reuse keep their own free lists over arena storage), trivially-
// destructible payloads only (reset() runs no destructors).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace gol::core {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two). Requests
  /// larger than the chunk size get a dedicated chunk.
  void* allocate(std::size_t size, std::size_t align) {
    std::size_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (chunk_ == nullptr || p + size > chunk_size_) {
      grow(size + align);
      p = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = p + size;
    in_use_ += size;
    return chunk_ + p;
  }

  template <typename T>
  T* allocate(std::size_t n = 1) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::reset runs no destructors");
    return static_cast<T*>(allocate(sizeof(T) * n, alignof(T)));
  }

  /// Releases everything allocated since construction (or the last reset)
  /// in O(chunks). The first chunk is kept so a steady-state transaction
  /// loop stops touching the heap entirely.
  void reset() {
    if (chunks_.size() > 1) {
      chunks_.front() = std::move(chunks_.back());  // chunks grow, keep max
      chunks_.resize(1);
    }
    chunk_ = chunks_.empty() ? nullptr : chunks_.front().data.get();
    chunk_size_ = chunks_.empty() ? 0 : chunks_.front().size;
    reserved_ = chunk_size_;
    cursor_ = 0;
    in_use_ = 0;
  }

  /// Sum of live allocation sizes since the last reset (excludes padding).
  std::size_t bytesInUse() const { return in_use_; }
  /// Total chunk bytes held (the memory-bound regression hook: bounded by
  /// peak per-transaction demand, not cumulative churn volume).
  std::size_t bytesReserved() const { return reserved_; }
  std::size_t chunkCount() const { return chunks_.size(); }

 private:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size = chunk_bytes_;
    while (size < at_least) size *= 2;
    chunks_.push_back({std::make_unique<unsigned char[]>(size), size});
    chunk_ = chunks_.back().data.get();
    chunk_size_ = size;
    reserved_ += size;
    cursor_ = 0;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  unsigned char* chunk_ = nullptr;
  std::size_t chunk_size_ = 0;
  std::size_t cursor_ = 0;
  std::size_t in_use_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace gol::core
