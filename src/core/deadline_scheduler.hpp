// Playout-aware scheduler — the extension the paper leaves as future work
// (Sec. 4.1.1: "We could modify the scheduler to cover also the playout
// phase"). Items carry playout deadlines (when the player will need them);
// the policy is earliest-deadline-first with urgency-driven duplication:
//
//   1. An idle path takes the pending item with the earliest deadline.
//   2. When none are pending, it duplicates the in-flight item with the
//      earliest deadline it is not already carrying, but only if that
//      deadline is within the urgency horizon — duplicating a segment
//      needed in three minutes wastes cellular bytes for nothing.
//   3. Rescue: even while items are pending, an in-flight item whose
//      deadline is imminent AND earlier than every pending deadline gets
//      duplicated by an idle path at least as fast as its current
//      carriers — the stalled-segment case a pure in-order policy cannot
//      fix.
//
// Against GRD this trades a little total-download time for far fewer
// stalls when playback starts before the download finishes (see
// ext_playout_scheduler bench).
#pragma once

#include <vector>

#include "core/scheduler.hpp"

namespace gol::core {

class DeadlineScheduler : public Scheduler {
 public:
  /// `deadlines_s[i]` is when item i is needed, relative to transaction
  /// start (for HLS: startup estimate + cumulative duration of earlier
  /// segments). `urgency_horizon_s` gates duplication.
  explicit DeadlineScheduler(std::vector<double> deadlines_s,
                             double urgency_horizon_s = 15.0);

  std::string name() const override { return "deadline"; }

  void onTransactionStart(const Transaction& txn,
                          const std::vector<double>& nominal_rates_bps) override;
  std::optional<std::size_t> nextItem(const EngineView& view,
                                      std::size_t path_index) override;
  void onPathAdded(std::size_t path_index, double nominal_rate_bps) override;

  /// Deadlines for an HLS playout: playback is assumed to start once the
  /// pre-buffer is filled, estimated as prebuffer bytes over the aggregate
  /// nominal rate; segment i is needed at start + sum of durations before i.
  static std::vector<double> hlsDeadlines(
      const std::vector<double>& segment_durations_s,
      const std::vector<double>& segment_bytes,
      std::size_t prebuffer_segments, double aggregate_rate_bps);

 private:
  std::vector<double> deadlines_;
  double horizon_;
  std::vector<double> path_rates_bps_;
};

}  // namespace gol::core
