#include "core/discovery.hpp"

#include <utility>

namespace gol::core {

DiscoveryAgent::DiscoveryAgent(sim::Simulator& sim, std::string device_name,
                               ClientDiscovery& registry,
                               std::function<bool()> eligible)
    : DiscoveryAgent(sim, std::move(device_name), registry,
                     std::move(eligible), Options()) {}

DiscoveryAgent::DiscoveryAgent(sim::Simulator& sim, std::string device_name,
                               ClientDiscovery& registry,
                               std::function<bool()> eligible, Options opts)
    : sim_(sim),
      name_(std::move(device_name)),
      registry_(registry),
      eligible_(std::move(eligible)),
      opts_(opts) {}

void DiscoveryAgent::start() {
  if (running_) return;
  running_ = true;
  beacon();
}

void DiscoveryAgent::beacon() {
  if (!running_) return;
  if (!eligible_ || eligible_()) registry_.onAdvertisement(name_);
  sim_.scheduleIn(opts_.interval_s, [this] { beacon(); });
}

void ClientDiscovery::onAdvertisement(const std::string& device_name) {
  last_seen_[device_name] = sim_.now();
}

std::vector<std::string> ClientDiscovery::admissibleSet() const {
  std::vector<std::string> out;
  for (const auto& [name, seen] : last_seen_) {
    if (sim_.now() - seen <= ttl_s_) out.push_back(name);
  }
  return out;
}

bool ClientDiscovery::admissible(const std::string& device_name) const {
  auto it = last_seen_.find(device_name);
  return it != last_seen_.end() && sim_.now() - it->second <= ttl_s_;
}

}  // namespace gol::core
