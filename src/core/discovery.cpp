#include "core/discovery.hpp"

#include <utility>

namespace gol::core {

DiscoveryAgent::DiscoveryAgent(sim::Simulator& sim, std::string device_name,
                               ClientDiscovery& registry,
                               std::function<bool()> eligible)
    : DiscoveryAgent(sim, std::move(device_name), registry,
                     std::move(eligible), Options()) {}

DiscoveryAgent::DiscoveryAgent(sim::Simulator& sim, std::string device_name,
                               ClientDiscovery& registry,
                               std::function<bool()> eligible, Options opts)
    : sim_(sim),
      name_(std::move(device_name)),
      registry_(registry),
      eligible_(std::move(eligible)),
      opts_(opts) {}

void DiscoveryAgent::start() {
  if (running_) return;
  running_ = true;
  beacon();
}

void DiscoveryAgent::beacon() {
  if (!running_) return;
  if (!eligible_ || eligible_()) registry_.onAdvertisement(name_);
  sim_.scheduleIn(opts_.interval_s, [this] { beacon(); });
}

void ClientDiscovery::onAdvertisement(const std::string& device_name) {
  Entry& e = entries_[device_name];
  e.seen = sim_.now();
  // Re-arm the age-out: one pending expiry event per device, replaced on
  // every fresh advertisement.
  if (e.expiry != 0) sim_.cancel(e.expiry);
  e.expiry = sim_.scheduleIn(ttl_s_, [this, device_name] {
    expire(device_name);
  });
  if (!e.live) {
    e.live = true;
    if (change_) change_(device_name, true);
  }
}

void ClientDiscovery::expire(const std::string& device_name) {
  auto it = entries_.find(device_name);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  e.expiry = 0;
  if (sim_.now() - e.seen < ttl_s_) return;  // refreshed since scheduling
  if (e.live) {
    e.live = false;
    if (change_) change_(device_name, false);
  }
}

std::vector<std::string> ClientDiscovery::admissibleSet() const {
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_) {
    if (sim_.now() - e.seen <= ttl_s_) out.push_back(name);
  }
  return out;
}

bool ClientDiscovery::admissible(const std::string& device_name) const {
  auto it = entries_.find(device_name);
  return it != entries_.end() && sim_.now() - it->second.seen <= ttl_s_;
}

}  // namespace gol::core
