// Assembles one 3GOL household (the paper's Fig 2): residential gateway
// with an ADSL line, home Wi-Fi, a client, N phones at the local radio
// conditions, and a well-provisioned origin server — all over one
// simulator/flow-network instance.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "access/adsl.hpp"
#include "access/wifi.hpp"
#include "cellular/location.hpp"
#include "core/engine.hpp"
#include "core/sim_paths.hpp"
#include "core/transfer_path.hpp"
#include "http/sim_client.hpp"
#include "http/sim_origin.hpp"
#include "net/flow_network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace gol::core {

struct HomeConfig {
  cell::LocationSpec location;   ///< Radio environment + measured ADSL line.
  int phones = 2;
  access::WifiConfig wifi;       ///< Default 802.11n (paper's Sec. 5 setup).
  http::SimOriginConfig origin;  ///< Default 100/40 Mbps dedicated server.
  /// Clients on Wi-Fi (paper's worst case) or wired to the gateway.
  bool client_wired = false;
  /// Static background cell load (1 = empty). Experiments pinned to a time
  /// of day set this from Location::availableFractionAt.
  double available_fraction = 0.78;
  std::uint64_t seed = 42;
  cell::DeviceConfig device;     ///< Base handset parameters.
};

class HomeEnvironment {
 public:
  explicit HomeEnvironment(const HomeConfig& cfg);
  HomeEnvironment(const HomeEnvironment&) = delete;
  HomeEnvironment& operator=(const HomeEnvironment&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::FlowNetwork& network() { return net_; }
  access::AdslLine& adsl() { return *adsl_; }
  access::WifiLan& wifi() { return *wifi_; }
  http::SimOrigin& origin() { return *origin_; }
  http::SimHttpClient& http() { return *http_; }
  cell::Location& location() { return *location_; }
  sim::Rng& rng() { return rng_; }

  std::size_t phoneCount() const { return phones_.size(); }
  cell::CellularDevice& phone(std::size_t i) { return *phones_.at(i); }

  /// Pre-warms every phone's radio into DCH — the paper's "H" runs.
  void warmPhones();

  /// Builds the transfer paths for a transaction: the ADSL line first,
  /// then `use_phones` phone paths. Paths are single-transaction objects
  /// (their connection warmth is per-transaction state).
  std::vector<std::unique_ptr<TransferPath>> makePaths(
      TransferDirection dir, int use_phones, bool include_adsl = true);

  const HomeConfig& config() const { return cfg_; }

 private:
  HomeConfig cfg_;
  sim::Simulator sim_;
  net::FlowNetwork net_;
  sim::Rng rng_;
  std::unique_ptr<access::AdslLine> adsl_;
  std::unique_ptr<access::WifiLan> wifi_;
  std::unique_ptr<http::SimOrigin> origin_;
  std::unique_ptr<http::SimHttpClient> http_;
  std::unique_ptr<cell::Location> location_;
  std::vector<std::unique_ptr<cell::CellularDevice>> phones_;
};

/// Convenience: run `engine.run(txn, ...)` to completion on `sim`,
/// returning the result synchronously.
TransactionResult runTransaction(sim::Simulator& sim,
                                 TransactionEngine& engine, Transaction txn);

}  // namespace gol::core
