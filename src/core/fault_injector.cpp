#include "core/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace gol::core {

void FaultInjector::addPath(TransferPath* path) {
  if (path == nullptr) throw std::invalid_argument("null TransferPath");
  paths_[path->name()] = path;
}

void FaultInjector::arm(const sim::FaultPlan& plan) {
  for (const sim::FaultEvent& ev : plan.events()) {
    const bool targeted = ev.kind == sim::FaultKind::kPathKill ||
                          ev.kind == sim::FaultKind::kPathFlap ||
                          ev.kind == sim::FaultKind::kStall ||
                          ev.kind == sim::FaultKind::kCorrupt;
    if (targeted && paths_.find(ev.target) == paths_.end()) {
      throw std::invalid_argument("fault plan targets unknown path '" +
                                  ev.target + "'");
    }
    pending_.push_back(sim_.scheduleIn(std::max(0.0, ev.at_s - sim_.now()),
                                       [this, ev] { inject(ev); }));
  }
}

void FaultInjector::disarm() {
  for (sim::EventId id : pending_) sim_.cancel(id);
  pending_.clear();
}

void FaultInjector::inject(const sim::FaultEvent& ev) {
  ++injected_;
  if (registry_) {
    registry_->counter("gol.fault.injected", {{"kind", toString(ev.kind)}})
        .inc();
  }
  switch (ev.kind) {
    case sim::FaultKind::kPathKill:
      paths_.at(ev.target)->setAlive(false, "fault:kill");
      break;
    case sim::FaultKind::kPathFlap: {
      TransferPath* p = paths_.at(ev.target);
      p->setAlive(false, "fault:flap");
      pending_.push_back(sim_.scheduleIn(
          ev.duration_s, [p] { p->setAlive(true, "fault:recover"); }));
      break;
    }
    case sim::FaultKind::kStall:
      // Freezes only an in-flight item; an idle path has nothing to stall
      // (stallCurrent() returns false and nothing happens).
      paths_.at(ev.target)->stallCurrent();
      break;
    case sim::FaultKind::kPermitRevoke:
      if (controller_) {
        controller_->permits().revokeAll();
        if (ev.duration_s > 0)
          controller_->permits().suspendGrants(ev.duration_s);
      }
      break;
    case sim::FaultKind::kCapExhaust:
      if (controller_) controller_->exhaustQuota(ev.target);
      break;
    case sim::FaultKind::kCorrupt:
      // Mangles only an in-flight payload; an idle path has nothing to
      // corrupt (corruptCurrent() returns false and nothing happens).
      paths_.at(ev.target)->corruptCurrent();
      break;
  }
}

}  // namespace gol::core
