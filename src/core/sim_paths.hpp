// TransferPath implementations over the fluid simulator: the ADSL line
// (via the simulated HTTP client) and a 3G phone proxying over the home
// Wi-Fi (via the cellular device model, which adds RRC promotion and
// shared-channel dynamics).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cellular/device.hpp"
#include "core/transfer_path.hpp"
#include "http/sim_client.hpp"
#include "net/path.hpp"
#include "net/tcp_model.hpp"
#include "sim/simulator.hpp"

namespace gol::core {

/// The wired path: sequential HTTP transfers across the ADSL line (plus any
/// upstream links composed into `path`). The first item pays a cold
/// connection setup; later items reuse the warm connection.
class AdslTransferPath : public TransferPath {
 public:
  AdslTransferPath(http::SimHttpClient& http, std::string name,
                   net::NetPath path);

  const std::string& name() const override { return name_; }
  bool busy() const override { return item_.has_value(); }
  const Item* currentItem() const override {
    return item_ ? &*item_ : nullptr;
  }
  using TransferPath::start;
  void start(const Item& item, double offset, DoneFn done) override;
  double abortCurrent() override;
  double nominalRateBps() const override;
  bool supportsResume() const override { return true; }
  bool stallCurrent() override;
  bool corruptCurrent() override;

 private:
  http::SimHttpClient& http_;
  std::string name_;
  net::NetPath path_;
  http::SimHttpClient::TransferId current_ = 0;
  std::optional<Item> item_;
  bool first_transfer_ = true;
  double stalled_bytes_ = 0;  ///< Bytes moved before a fault froze us.
  bool stalled_ = false;
  bool corrupted_ = false;  ///< Fault flag: this attempt's payload is bad.
};

/// A phone path: client -> Wi-Fi -> phone proxy -> 3G -> origin. The phone
/// side is the cellular device model (RRC, sector sharing, jitter); the
/// HTTP setup overhead uses the end-to-end RTT (device RTT + extra hops).
class CellularTransferPath : public TransferPath {
 public:
  CellularTransferPath(cell::CellularDevice& device, cell::Direction dir,
                       std::string name, std::vector<net::Link*> extra_links,
                       double extra_rtt_s = 0.005,
                       net::TcpParams tcp = {});

  const std::string& name() const override { return name_; }
  bool busy() const override { return item_.has_value(); }
  const Item* currentItem() const override {
    return item_ ? &*item_ : nullptr;
  }
  using TransferPath::start;
  void start(const Item& item, double offset, DoneFn done) override;
  double abortCurrent() override;
  double nominalRateBps() const override;
  bool supportsResume() const override { return true; }
  bool stallCurrent() override;
  bool corruptCurrent() override;

  cell::CellularDevice& device() { return device_; }

 private:
  cell::CellularDevice& device_;
  cell::Direction dir_;
  std::string name_;
  std::vector<net::Link*> extra_links_;
  double extra_rtt_s_;
  net::TcpParams tcp_;

  std::optional<Item> item_;
  sim::EventId pending_start_ = 0;
  cell::CellularDevice::TransferId transfer_ = 0;
  bool first_transfer_ = true;
  double stalled_bytes_ = 0;
  bool stalled_ = false;
  bool corrupted_ = false;
};

}  // namespace gol::core
