// Minimum-estimated-transfer-time baseline (MIN, Sec. 5.1): each item is
// assigned to the path that minimizes its estimated completion time, using
// per-path bandwidth estimates maintained with exponential smoothing
// (alpha = 0.75, "to maintain a high level of agility"). The first N items
// are dealt round robin to give every estimator a sample.
//
// Assignments are commitments: once an item is queued on a path it is never
// migrated, and a path whose queue runs dry idles rather than stealing.
// Under rapidly varying cellular bandwidth the estimates lag reality, items
// pile onto yesterday's fast path, and MIN lands last — reproducing the
// paper's observation that MIN performs worst (Fig 6) because "estimating
// available capacity under rapidly changing network conditions can result
// in inaccurate estimates".
//
// Failure handling is the one exception to never-migrate: a dead path's
// queue is returned to the unassigned pool (reassigning elsewhere is what
// the engine's re-queue contract requires), as are failed attempts.
#pragma once

#include <deque>
#include <vector>

#include "core/scheduler.hpp"
#include "stats/ewma.hpp"

namespace gol::core {

class MinTimeScheduler : public Scheduler {
 public:
  explicit MinTimeScheduler(double alpha = 0.75) : alpha_(alpha) {}

  std::string name() const override { return "min"; }

  void onTransactionStart(const Transaction& txn,
                          const std::vector<double>& nominal_rates_bps) override;
  std::optional<std::size_t> nextItem(const EngineView& view,
                                      std::size_t path_index) override;
  void onItemComplete(std::size_t path_index, const Item& item,
                      double seconds) override;
  void onItemRequeued(std::size_t item_index) override;
  void onPathDown(std::size_t path_index) override;
  void onPathUp(std::size_t path_index) override;
  void onPathAdded(std::size_t path_index, double nominal_rate_bps) override;

  double estimatedRateBps(std::size_t path_index) const;

 private:
  /// Commits `item` to the up path with the smallest estimated transfer
  /// time; returns that path's index (SIZE_MAX when no path is up).
  std::size_t assignItem(std::size_t item);
  /// Pulls the next item to commit: the re-assignment pool first, then the
  /// never-assigned tail. Returns false when both are empty.
  bool commitNext();

  double alpha_;
  std::vector<double> item_bytes_;
  std::vector<stats::Ewma> estimates_;
  std::vector<std::deque<std::size_t>> queues_;
  /// Estimated seconds of committed-but-unfinished work per path.
  std::vector<double> backlog_bytes_;
  std::vector<char> up_;
  /// Items bounced back by failures or a dead path, re-committed before the
  /// unassigned tail.
  std::deque<std::size_t> reassign_;
  std::size_t next_unassigned_ = 0;
  std::size_t bootstrap_remaining_ = 0;
};

}  // namespace gol::core
