#include "core/round_robin_scheduler.hpp"

namespace gol::core {

void RoundRobinScheduler::onTransactionStart(
    const Transaction& txn, const std::vector<double>& nominal_rates_bps) {
  queues_.assign(nominal_rates_bps.size(), {});
  if (queues_.empty()) return;
  for (std::size_t i = 0; i < txn.items.size(); ++i) {
    queues_[i % queues_.size()].push_back(i);
  }
}

std::optional<std::size_t> RoundRobinScheduler::nextItem(
    const EngineView& view, std::size_t path_index) {
  auto& q = queues_.at(path_index);
  while (!q.empty()) {
    const std::size_t idx = q.front();
    q.pop_front();
    // An item may have been completed elsewhere only in pathological
    // configurations; skip anything no longer pending.
    if ((*view.items)[idx].status == ItemStatus::kPending) return idx;
  }
  return std::nullopt;
}

}  // namespace gol::core
