#include "core/round_robin_scheduler.hpp"

namespace gol::core {

void RoundRobinScheduler::onTransactionStart(
    const Transaction& txn, const std::vector<double>& nominal_rates_bps) {
  queues_.assign(nominal_rates_bps.size(), {});
  up_.assign(nominal_rates_bps.size(), 1);
  stash_.clear();
  next_path_ = 0;
  if (queues_.empty()) return;
  for (std::size_t i = 0; i < txn.items.size(); ++i) {
    queues_[i % queues_.size()].push_back(i);
  }
}

std::optional<std::size_t> RoundRobinScheduler::nextItem(
    const EngineView& view, std::size_t path_index) {
  auto& q = queues_.at(path_index);
  while (!q.empty()) {
    const std::size_t idx = q.front();
    q.pop_front();
    // An item may have been completed elsewhere only in pathological
    // configurations; skip anything no longer pending.
    if (view.items->status(idx) == ItemStatus::kPending) return idx;
  }
  return std::nullopt;
}

void RoundRobinScheduler::enqueue(std::size_t item_index) {
  const std::size_t n = queues_.size();
  for (std::size_t tried = 0; tried < n; ++tried) {
    const std::size_t p = next_path_ % n;
    next_path_ = (next_path_ + 1) % n;
    if (up_[p]) {
      queues_[p].push_back(item_index);
      return;
    }
  }
  stash_.push_back(item_index);  // nothing is up right now
}

void RoundRobinScheduler::onItemRequeued(std::size_t item_index) {
  if (queues_.empty()) return;
  enqueue(item_index);
}

void RoundRobinScheduler::onPathDown(std::size_t path_index) {
  if (path_index >= queues_.size() || !up_[path_index]) return;
  up_[path_index] = 0;
  // Migrate the dead path's committed items to surviving paths.
  std::deque<std::size_t> orphans;
  orphans.swap(queues_[path_index]);
  for (const std::size_t idx : orphans) enqueue(idx);
}

void RoundRobinScheduler::onPathUp(std::size_t path_index) {
  if (path_index >= queues_.size() || up_[path_index]) return;
  up_[path_index] = 1;
  // The returning path inherits anything stranded while everything was down.
  while (!stash_.empty()) {
    queues_[path_index].push_back(stash_.front());
    stash_.pop_front();
  }
}

void RoundRobinScheduler::onPathAdded(std::size_t path_index, double) {
  if (path_index >= queues_.size()) {
    queues_.resize(path_index + 1);
    up_.resize(path_index + 1, 0);
  }
  onPathUp(path_index);
}

}  // namespace gol::core
