// OPT: flow-driven scheduler answering ROADMAP's "how far from optimal is
// GRD?". Each transaction becomes a time-expanded min-cost-flow network
// (flow/ten.hpp): the solve routes every item's remaining demand into
// (path, time-slot) capacity at minimum estimated completion time, and the
// extracted plan tells each idle path which item to pull next.
//
// Live operation is event-driven and incremental: completions, checkpoint
// advances, requeues, path churn and rate drift mark the plan dirty; the
// next dispatch patches the residual network in place and re-solves only
// the affected flow (MinCostFlow::resolve), not the whole network. Rate
// estimates are the same EWMA(0.75) blend MIN uses, seeded from nominal
// rates.
//
// Dispatch stays work-conserving — an idle path first takes pending work
// the plan routed to it (in planned order), then steals the
// earliest-planned pending item wherever it was routed, and once the
// pending pool is dry duplicates the oldest in-flight item exactly like
// GRD's tail re-scheduling — so OPT never idles a usable path and is never
// worse than GRD at the tail.
//
// Solver effort is published to telemetry::Registry::global() as
// gol.opt.* counters (scratch solves, incremental resolves, SPFA runs, arc
// relaxations, augmentations, repair walks, cancelled cycles, plan
// refreshes) for the micro_perf incremental-vs-scratch comparison.
#pragma once

#include <memory>
#include <vector>

#include "core/scheduler.hpp"
#include "flow/ten.hpp"
#include "stats/ewma.hpp"

namespace gol::core {

class OptScheduler : public Scheduler {
 public:
  explicit OptScheduler(flow::TenConfig config = {}, double alpha = 0.75);

  std::string name() const override { return "opt"; }

  void onTransactionStart(const Transaction& txn,
                          const std::vector<double>& nominal_rates_bps) override;
  std::optional<std::size_t> nextItem(const EngineView& view,
                                      std::size_t path_index) override;
  void onItemComplete(std::size_t path_index, const Item& item,
                      double seconds) override;
  void onItemRequeued(std::size_t item_index) override;
  void onPathDown(std::size_t path_index) override;
  void onPathUp(std::size_t path_index) override;
  void onPathAdded(std::size_t path_index, double nominal_rate_bps) override;

  double estimatedRateBps(std::size_t path_index) const;
  /// Cumulative solver work counters (this scheduler's network).
  const flow::SolveStats* solveStats() const;

 private:
  /// Patches the network from the engine's current view (remaining bytes,
  /// liveness, rate estimates), re-solves incrementally and re-extracts
  /// the plan.
  void refresh(const EngineView& view);
  void publishStats();

  flow::TenConfig config_;
  double alpha_;
  std::unique_ptr<flow::TimeExpandedNetwork> ten_;
  std::vector<flow::ItemPlan> plan_;
  std::vector<stats::Ewma> estimates_;
  std::vector<std::uint8_t> up_;
  bool dirty_ = false;
  flow::SolveStats published_;  ///< Stats already pushed to telemetry.
};

}  // namespace gol::core
