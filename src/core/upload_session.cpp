#include "core/upload_session.hpp"

#include "core/fault_injector.hpp"
#include "http/multipart.hpp"

namespace gol::core {

std::vector<double> UploadSession::drawPhotoSizes(sim::Rng& rng, int count,
                                                  double mean_bytes,
                                                  double sd_bytes) {
  std::vector<double> sizes;
  sizes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    sizes.push_back(rng.lognormalMeanSd(mean_bytes, sd_bytes));
  }
  return sizes;
}

UploadOutcome UploadSession::run(const UploadOptions& opts) {
  UploadOutcome out;
  if (opts.warm_start) home_.warmPhones();

  auto sizes = drawPhotoSizes(home_.rng(), opts.photos, opts.mean_bytes,
                              opts.sd_bytes);
  // Each photo travels as one multipart POST part; account for framing.
  std::vector<double> wire_sizes;
  wire_sizes.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    http::MultipartPart part;
    part.field_name = "photo";
    part.filename = "img" + std::to_string(i) + ".jpg";
    part.content_type = "image/jpeg";
    const double framing =
        static_cast<double>(http::MultipartEncoder::framingOverhead(part));
    out.payload_bytes += sizes[i];
    out.framing_bytes += framing;
    wire_sizes.push_back(sizes[i] + framing);
  }

  auto scheduler = makeScheduler(opts.scheduler);
  auto paths = home_.makePaths(TransferDirection::kUpload, opts.phones,
                               opts.use_adsl);
  std::vector<TransferPath*> raw;
  raw.reserve(paths.size());
  for (auto& p : paths) raw.push_back(p.get());
  TransactionEngine engine(home_.simulator(), raw, *scheduler, opts.engine);
  FaultInjector injector(home_.simulator());
  if (opts.faults != nullptr) {
    for (TransferPath* p : raw) injector.addPath(p);
    injector.instrument(&telemetry::Registry::global());
    injector.arm(opts.faults->shiftedBy(home_.simulator().now()));
  }
  out.txn = runTransaction(home_.simulator(), engine,
                           makeTransaction(TransferDirection::kUpload,
                                           wire_sizes, "photo"));
  injector.disarm();
  return out;
}

}  // namespace gol::core
