// MPTCP baseline (Sec. 5.2): the paper tried MP-TCP over ADSL + 3G and it
// "provided no benefit due to the Coupled Congestion Control (CCC)
// algorithm ... not optimized for wireless use yet". This module models
// that outcome analytically so the comparison is reproducible:
//
//   * LIA-style coupling favours low-RTT subflows quadratically, so the
//     high-RTT 3G subflow gets a small share of its own capacity;
//   * bandwidth variability on the wireless path further suppresses the
//     coupled window (spurious back-off on every capacity dip).
//
// subflow_rate = capacity * min(1, (rtt_min/rtt)^2) * exp(-k * sigma)
// blended toward full capacity as `coupling` goes from 1 (stock CCC) to 0
// (ideal uncoupled bonding — what 3GOL approximates at application level
// without touching either endpoint's kernel).
#pragma once

#include <span>
#include <vector>

#include "core/home.hpp"

namespace gol::core {

struct MptcpSubflow {
  double capacity_bps = 0;
  double rtt_s = 0.05;
  /// Short-term bandwidth variability (lognormal sigma) of the path.
  double variability_sigma = 0.0;
};

struct MptcpParams {
  /// 1 = stock coupled congestion control, 0 = perfectly uncoupled.
  double coupling = 1.0;
  /// Variability back-off aggressiveness (exp(-k * sigma)).
  double variability_penalty = 5.0;
};

/// Steady-state rate LIA-coupled MPTCP extracts from one subflow, given
/// the minimum RTT across subflows.
double mptcpSubflowRateBps(const MptcpSubflow& subflow, double rtt_min_s,
                           const MptcpParams& params = {});

/// Aggregate across subflows; never below the best single subflow (MPTCP's
/// design goal: do no worse than the best path).
double mptcpAggregateRateBps(std::span<const MptcpSubflow> subflows,
                             const MptcpParams& params = {});

struct MptcpOutcome {
  double duration_s = 0;
  double aggregate_bps = 0;
  std::vector<double> subflow_bps;
};

/// Downloads `bytes` over a home's ADSL + `phones` cellular subflows using
/// the MPTCP model (single connection, no item scheduling).
MptcpOutcome mptcpDownload(HomeEnvironment& home, double bytes, int phones,
                           const MptcpParams& params = {});

}  // namespace gol::core
