// Ties the admission machinery together (Secs. 2.4 and 6): phones
// advertise over discovery while eligible — holding a network permit in
// the network-integrated deployment, or having remaining daily quota
// A(t) > 0 in the capped multi-provider (OTT) deployment — and the client
// builds its path set from the admissible set Phi.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/allowance.hpp"
#include "core/discovery.hpp"
#include "core/home.hpp"
#include "core/permit.hpp"

namespace gol::core {

enum class DeploymentMode {
  kNetworkIntegrated,  ///< Permit server gates onloading; traffic unmetered.
  kOttCapped,          ///< Client-side caps gate onloading; no network input.
};

struct ControllerConfig {
  DeploymentMode mode = DeploymentMode::kOttCapped;
  PermitConfig permit;
  /// Monthly 3GOL allowance per device in the OTT mode (the paper derives
  /// ~600 MB/month = 20 MB/day from the MNO dataset).
  double monthly_allowance_bytes = 600e6;
  int days_per_month = 30;
  double discovery_interval_s = 5.0;
  double discovery_ttl_s = 12.0;
};

class OnloadController {
 public:
  OnloadController(HomeEnvironment& home, const ControllerConfig& cfg);
  OnloadController(const OnloadController&) = delete;
  OnloadController& operator=(const OnloadController&) = delete;

  /// Begins discovery beaconing (advance the simulator afterwards so at
  /// least one beacon lands before asking for paths).
  void start();

  /// Number of phones currently in the admissible set Phi.
  std::size_t admissibleCount() const;

  /// Builds the path set for a transaction: ADSL plus every admissible
  /// phone (up to `max_phones`, 0 = no limit).
  std::vector<std::unique_ptr<TransferPath>> buildPaths(
      TransferDirection dir, int max_phones = 0);

  /// Meters each phone's cellular bytes since the last call into its usage
  /// tracker. Call after every transaction in OTT mode.
  void chargeUsage();
  /// Rolls every tracker to the next day.
  void advanceDay();

  /// Ties discovery membership to path liveness: when a supervised path's
  /// name ages out of Phi the path is marked dead (the engine aborts and
  /// re-queues its work), and when it re-advertises it is revived. Call
  /// once per transaction with the paths the engine is using; pointers must
  /// outlive the supervision (call again, or clearSupervision(), before
  /// they are destroyed).
  void supervisePaths(const std::vector<TransferPath*>& paths);
  void clearSupervision();

  /// Spends the rest of `phone_name`'s daily allowance (fault injection:
  /// the user watched a video over 3G outside 3GOL's control). The phone
  /// stops advertising at its next beacon and ages out of Phi.
  void exhaustQuota(const std::string& phone_name);

  UsageTracker& tracker(std::size_t phone) { return *trackers_.at(phone); }
  PermitServer& permits() { return *permits_; }
  ClientDiscovery& discovery() { return discovery_; }

 private:
  bool phoneEligible(std::size_t index);

  HomeEnvironment& home_;
  ControllerConfig cfg_;
  ClientDiscovery discovery_;
  std::unique_ptr<PermitServer> permits_;
  std::vector<std::unique_ptr<UsageTracker>> trackers_;
  std::vector<std::unique_ptr<DiscoveryAgent>> agents_;
  std::vector<double> metered_baseline_;
  std::map<std::string, TransferPath*> supervised_;
};

}  // namespace gol::core
