// The transaction engine: drives a Scheduler over N TransferPaths until all
// M items have landed, handling duplicate aborts and waste accounting
// (Sec. 4.1.1). Event-driven: paths call back on completion, the engine
// re-dispatches.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/item.hpp"
#include "core/scheduler.hpp"
#include "core/transfer_path.hpp"
#include "sim/simulator.hpp"

namespace gol::core {

struct TransactionResult {
  double duration_s = 0;        ///< Start of transaction to last item done.
  double total_bytes = 0;       ///< Payload bytes (each item counted once).
  double wasted_bytes = 0;      ///< Bytes moved by aborted duplicates.
  std::size_t duplicated_items = 0;
  /// Completion time of each item, relative to transaction start, indexed
  /// like Transaction::items. Feed into hls::analyzePlayout for VoD runs.
  std::vector<double> item_completion_s;
  /// Payload bytes successfully delivered per path name.
  std::map<std::string, double> per_path_bytes;

  double goodputBps() const {
    return duration_s > 0 ? total_bytes * 8.0 / duration_s : 0.0;
  }
};

class TransactionEngine {
 public:
  TransactionEngine(sim::Simulator& sim, std::vector<TransferPath*> paths,
                    Scheduler& scheduler);
  TransactionEngine(const TransactionEngine&) = delete;
  TransactionEngine& operator=(const TransactionEngine&) = delete;

  /// Runs one transaction; `on_done` fires when the last item completes.
  /// Only one transaction may be active per engine at a time.
  void run(Transaction txn, std::function<void(TransactionResult)> on_done);

  bool active() const { return active_; }

 private:
  struct PathState {
    TransferPath* path;
    double busy_since = 0;
  };

  void dispatch(std::size_t path_index);
  void onItemDone(std::size_t path_index, const Item& item);
  void finish();

  sim::Simulator& sim_;
  std::vector<PathState> paths_;
  Scheduler& scheduler_;

  Transaction txn_;
  std::vector<ItemView> items_;
  std::function<void(TransactionResult)> on_done_;
  TransactionResult result_;
  double started_at_ = 0;
  std::size_t done_count_ = 0;
  bool active_ = false;
};

}  // namespace gol::core
