// The transaction engine: drives a Scheduler over N TransferPaths until all
// M items have landed, handling duplicate aborts and waste accounting
// (Sec. 4.1.1). Event-driven: paths call back on completion, the engine
// re-dispatches.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/item.hpp"
#include "core/scheduler.hpp"
#include "core/transfer_path.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace gol::core {

struct TransactionResult {
  double duration_s = 0;        ///< Start of transaction to last item done.
  double total_bytes = 0;       ///< Payload bytes (each item counted once).
  double wasted_bytes = 0;      ///< Bytes moved by aborted duplicates.
  std::size_t duplicated_items = 0;
  /// Completion time of each item, relative to transaction start, indexed
  /// like Transaction::items. Feed into hls::analyzePlayout for VoD runs.
  std::vector<double> item_completion_s;
  /// Payload bytes successfully delivered per path name.
  std::map<std::string, double> per_path_bytes;
  /// Bytes moved by duplicates that lost the race, per path name.
  /// Invariant (checked by the engine at finish): per_path_bytes sums to
  /// total_bytes and per_path_wasted_bytes sums to wasted_bytes, i.e. all
  /// bytes any path moved equal total_bytes + wasted_bytes.
  std::map<std::string, double> per_path_wasted_bytes;

  double goodputBps() const {
    return duration_s > 0 ? total_bytes * 8.0 / duration_s : 0.0;
  }
  /// Fraction of all bytes moved (payload + duplicates) that were waste —
  /// the paper's Sec. 4.1.1 overhead figure, bounded by (N-1)*Sm / total.
  double wastedFraction() const {
    const double moved = total_bytes + wasted_bytes;
    return moved > 0 ? wasted_bytes / moved : 0.0;
  }
};

class TransactionEngine {
 public:
  TransactionEngine(sim::Simulator& sim, std::vector<TransferPath*> paths,
                    Scheduler& scheduler);
  TransactionEngine(const TransactionEngine&) = delete;
  TransactionEngine& operator=(const TransactionEngine&) = delete;

  /// Redirects metrics to `registry` (default: Registry::global();
  /// nullptr silences them) and, when `trace` is non-null, records one
  /// span per item-on-path attempt — track 0 is the transaction, track
  /// 1+p is path p. The recorder's clock should be this engine's
  /// simulator clock so timestamps share the sim domain.
  void instrument(telemetry::Registry* registry,
                  telemetry::TraceRecorder* trace = nullptr);

  /// Runs one transaction; `on_done` fires when the last item completes.
  /// Only one transaction may be active per engine at a time.
  void run(Transaction txn, std::function<void(TransactionResult)> on_done);

  bool active() const { return active_; }

 private:
  struct PathState {
    TransferPath* path;
    double busy_since = 0;
    telemetry::SpanId span = 0;  ///< Open span for the in-flight item.
    // Cached per-path instruments (label path=<name>), set per run().
    telemetry::Counter* bytes = nullptr;
    telemetry::Counter* wasted = nullptr;
  };

  void dispatch(std::size_t path_index);
  void onItemDone(std::size_t path_index, const Item& item);
  void finish();
  void bindInstruments();
  void checkAccounting() const;

  sim::Simulator& sim_;
  std::vector<PathState> paths_;
  Scheduler& scheduler_;

  telemetry::Registry* registry_;
  telemetry::TraceRecorder* trace_ = nullptr;
  // Engine-wide instruments, bound lazily on the first run().
  telemetry::Counter* transactions_ = nullptr;
  telemetry::Counter* dispatched_ = nullptr;
  telemetry::Counter* completed_ = nullptr;
  telemetry::Counter* duplicated_ = nullptr;
  telemetry::Counter* aborted_ = nullptr;
  telemetry::Counter* wasted_bytes_ = nullptr;
  telemetry::Counter* decisions_ = nullptr;
  telemetry::Counter* idle_decisions_ = nullptr;
  telemetry::Counter* reschedules_ = nullptr;

  Transaction txn_;
  std::vector<ItemView> items_;
  std::function<void(TransactionResult)> on_done_;
  TransactionResult result_;
  double started_at_ = 0;
  std::size_t done_count_ = 0;
  bool active_ = false;
  telemetry::SpanId txn_span_ = 0;
};

}  // namespace gol::core
