// The transaction engine: drives a Scheduler over N TransferPaths until all
// M items have landed or exhausted their retry budget, handling duplicate
// aborts, waste accounting (Sec. 4.1.1) and path failure (Sec. 5's pilot
// conditions: phones leave Wi-Fi range, permits get revoked, transfers
// stall). Event-driven: paths call back with per-attempt ItemResults, the
// engine re-dispatches, retries with backoff, quarantines flapping paths
// and guarantees termination even when every path dies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/item.hpp"
#include "core/item_table.hpp"
#include "core/scheduler.hpp"
#include "core/transfer_path.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace gol::core {

/// Terminal state of a whole transaction.
enum class TransactionOutcome {
  kCompleted,          ///< Every item delivered, no failures along the way.
  kCompletedDegraded,  ///< Every item delivered, but only after retries,
                       ///< watchdog timeouts or path deaths.
  kPartialFailure,     ///< At least one item exhausted its retry budget.
};

const char* toString(TransactionOutcome outcome);

/// Bounded retry with exponential backoff and jitter, per item.
struct RetryPolicy {
  int max_attempts = 5;           ///< Failed attempts before an item is
                                  ///< declared undeliverable.
  double base_backoff_s = 0.5;    ///< First retry delay.
  double backoff_multiplier = 2.0;
  double max_backoff_s = 30.0;
  double jitter = 0.2;            ///< Delay scaled by U(1-j, 1+j).
};

/// Per-attempt watchdog: deadline = max(min_deadline_s, k * estimated
/// transfer time from the path's observed rate). Catches stalls that never
/// surface as errors (the phone that walks out of range mid-TCP-transfer).
struct WatchdogPolicy {
  bool enabled = true;
  double k = 6.0;
  /// Floor covering fixed per-attempt costs the rate estimate cannot see
  /// (RRC promotion, TCP handshakes) and plain rate volatility.
  double min_deadline_s = 5.0;
};

/// Paths that fail repeatedly are benched for growing intervals and probed
/// again at expiry rather than hammered in a hot retry loop.
struct QuarantinePolicy {
  int threshold = 2;        ///< Consecutive failures before benching.
  double base_s = 5.0;      ///< First quarantine length.
  double multiplier = 2.0;  ///< Growth per repeat offence.
  double max_s = 120.0;
};

struct EngineConfig {
  RetryPolicy retry;
  WatchdogPolicy watchdog;
  QuarantinePolicy quarantine;
  /// Once the last usable path dies, surviving work is given this long for
  /// a path to come back before the transaction is failed outright.
  double all_paths_down_grace_s = 30.0;
  /// Seed for backoff jitter; fixed so runs are reproducible.
  std::uint64_t jitter_seed = 0x601dUL;
  /// Partial-item recovery: interrupted attempts leave a per-item
  /// checkpoint and follow-up attempts on resume-capable paths re-fetch
  /// only the remaining byte range. Off = every retry restarts at 0.
  bool resume = true;
  /// Verify each completed item's payload digest against Item::checksum
  /// (when the generator provided one); a mismatch becomes kCorrupt and
  /// re-enters retry with the checkpoint discarded.
  bool verify_checksums = true;
  /// Hedged tail requests (generalizes GRD's tail re-scheduling to every
  /// policy): when <= this many items remain unfinished and a path has
  /// nothing else to do, it launches a duplicate attempt of the oldest
  /// in-flight item — first completion wins, the loser is aborted and
  /// charged as waste. 0 disables hedging.
  int hedge_tail_items = 0;
};

struct TransactionResult {
  TransactionOutcome outcome = TransactionOutcome::kCompleted;
  double duration_s = 0;        ///< Start of transaction to termination.
  double total_bytes = 0;       ///< Payload bytes requested (all items).
  double delivered_bytes = 0;   ///< Payload bytes of items actually done.
  double wasted_bytes = 0;      ///< Bytes moved by aborted, failed and
                                ///< timed-out attempts that no later
                                ///< attempt could reuse.
  /// Bytes moved by interrupted attempts that a later attempt resumed past
  /// instead of re-fetching — payload, not waste, once the item lands.
  double salvaged_bytes = 0;
  std::size_t duplicated_items = 0;
  std::size_t retries = 0;       ///< Attempts re-queued after a failure.
  std::size_t timeouts = 0;      ///< Attempts killed by the watchdog.
  std::size_t failed_items = 0;  ///< Items that exhausted max_attempts.
  std::size_t resumed_attempts = 0;  ///< Attempts started at offset > 0.
  std::size_t corrupt_payloads = 0;  ///< Integrity failures detected.
  std::size_t hedges = 0;            ///< Engine-level hedged tail attempts.
  std::size_t hedge_wins = 0;        ///< Hedges that beat the primary.
  /// Dispatch count per item (first attempt, retries and duplicates all
  /// count), indexed like Transaction::items.
  std::vector<int> per_item_attempts;
  /// Names of paths that died or were detached mid-transaction (deduped).
  std::vector<std::string> failed_paths;
  /// Completion time of each item, relative to transaction start, indexed
  /// like Transaction::items; 0 for items that never completed. Feed into
  /// hls::analyzePlayout for VoD runs.
  std::vector<double> item_completion_s;
  /// Payload bytes successfully delivered per path name (the completing
  /// attempt's range only — salvaged prefixes are credited to the path
  /// that moved them, in per_path_salvaged_bytes).
  std::map<std::string, double> per_path_bytes;
  /// Bytes moved by attempts that did not deliver (lost duplicate races,
  /// failures, watchdog aborts) and were not salvaged, per path name.
  /// Invariant (checked by the engine at finish): per_path_bytes plus
  /// per_path_salvaged_bytes sums to delivered_bytes, and
  /// per_path_wasted_bytes sums to wasted_bytes — every byte any path
  /// moved is exactly one of delivered, salvaged-into-delivered or waste.
  std::map<std::string, double> per_path_wasted_bytes;
  /// Salvaged checkpoint bytes that ended up inside a delivered item, per
  /// path name (the path that originally moved them).
  std::map<std::string, double> per_path_salvaged_bytes;

  bool complete() const { return failed_items == 0; }
  double goodputBps() const {
    return duration_s > 0 ? delivered_bytes * 8.0 / duration_s : 0.0;
  }
  /// Fraction of all bytes moved (payload + duplicates) that were waste —
  /// the paper's Sec. 4.1.1 overhead figure, bounded by (N-1)*Sm / total.
  double wastedFraction() const {
    const double moved = delivered_bytes + wasted_bytes;
    return moved > 0 ? wasted_bytes / moved : 0.0;
  }
};

class TransactionEngine {
 public:
  TransactionEngine(sim::Simulator& sim, std::vector<TransferPath*> paths,
                    Scheduler& scheduler, EngineConfig config = {});
  ~TransactionEngine();
  TransactionEngine(const TransactionEngine&) = delete;
  TransactionEngine& operator=(const TransactionEngine&) = delete;

  /// Redirects metrics to `registry` (default: Registry::global();
  /// nullptr silences them) and, when `trace` is non-null, records one
  /// span per item-on-path attempt — track 0 is the transaction, track
  /// 1+p is path p. The recorder's clock should be this engine's
  /// simulator clock so timestamps share the sim domain.
  void instrument(telemetry::Registry* registry,
                  telemetry::TraceRecorder* trace = nullptr);

  /// Runs one transaction; `on_done` fires when the engine terminates —
  /// which it always does, whatever the paths do: every item either
  /// completes or fails its retry budget, and if every path dies the
  /// all-paths-down grace timer fails the remainder.
  /// Only one transaction may be active per engine at a time.
  void run(Transaction txn, std::function<void(TransactionResult)> on_done);

  bool active() const { return active_; }
  const EngineConfig& config() const { return config_; }

  /// Dynamic membership: adds `path` to the working set (or re-admits a
  /// previously detached/known one — matched by pointer). New paths are
  /// announced to the scheduler via onPathAdded and dispatched immediately
  /// when a transaction is active.
  void attachPath(TransferPath* path);
  /// Removes `path` from the working set. An in-flight item is aborted
  /// (bytes counted as waste) and re-queued on the surviving paths. The
  /// path object is not touched otherwise and may be re-attached later.
  void detachPath(TransferPath* path);
  /// Paths currently attached and alive.
  std::size_t usablePathCount() const;

  /// Read-only views of the columnar internals, for the memory-bound
  /// regression tests and benches: the item table (column/arena reuse)
  /// and the timer wheel (one-alarm design).
  const ItemTable& itemTable() const { return table_; }
  const sim::TimerWheel& timerWheel() const { return wheel_; }

 private:
  static constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

  struct PathState {
    TransferPath* path;
    bool attached = true;
    double busy_since = 0;
    std::size_t current_item = kNoItem;
    /// Byte offset this attempt started from (the item's checkpoint at
    /// dispatch time, 0 when resume is off or unsupported).
    double attempt_offset = 0;
    /// Whether this attempt is an engine-level hedge (tail duplicate).
    bool hedged = false;
    /// Bumped per attempt; stale watchdogs/callbacks compare and drop.
    std::uint64_t attempt_gen = 0;
    sim::TimerWheel::TimerId watchdog = 0;
    sim::TimerWheel::TimerId probe = 0;  ///< Pending quarantine-expiry probe.
    /// Interned name for flat per-path accounting (PathInterner). Stable
    /// across re-attachment; two paths sharing a name share the id, same
    /// as the name-keyed result maps always merged them.
    PathId pid = 0;
    double quarantined_until = 0;
    double quarantine_len_s = 0;  ///< Last length, for the growth schedule.
    int consecutive_failures = 0;
    /// Crude observed-rate tracker seeding watchdog deadlines; starts at
    /// the nominal rate, blends in completed-attempt goodput.
    double rate_est_bps = 0;
    telemetry::SpanId span = 0;  ///< Open span for the in-flight item.
    /// Our registration on the path's state-listener list (removed in the
    /// engine destructor so a longer-lived path cannot call a dead engine).
    TransferPath::ListenerId listener = 0;
    // Cached per-path instruments (label path=<name>), set per run().
    telemetry::Counter* bytes = nullptr;
    telemetry::Counter* wasted = nullptr;
    telemetry::Counter* salvaged = nullptr;
  };

  void dispatch(std::size_t path_index);
  void dispatchAll();
  void onItemEvent(std::size_t path_index, std::uint64_t gen,
                   const Item& item, const ItemResult& result);
  void onItemCompleted(std::size_t path_index, const Item& item,
                       const ItemResult& result);
  void onWatchdog(std::size_t path_index, std::uint64_t gen);
  /// Generation-checked: a handle from a previous transaction fails
  /// ItemTable::valid and the expiry is dropped.
  void onBackoffExpired(ItemHandle handle);
  void onPathStateChange(std::size_t path_index, bool alive,
                         const std::string& reason);
  /// Common tail for failed and timed-out attempts: salvages the usable
  /// prefix into the item's checkpoint, books the rest as waste, updates
  /// quarantine state and decides the item's fate (retry, duplicate still
  /// running, or terminal failure). `salvageable_bytes` is the attempt's
  /// contiguous received prefix (<= moved_bytes).
  void pathAttemptFailed(std::size_t path_index, std::size_t item_index,
                         double moved_bytes, double salvageable_bytes,
                         const char* span_outcome, bool count_against_item);
  void recordWaste(PathState& ps, double bytes);
  void recordSalvage(PathState& ps, std::size_t item_index, double bytes);
  /// Shrinks an item's salvage ledger to the prefix [0, keep_prefix),
  /// reclassifying the excess as waste on the paths that moved it. Used at
  /// completion (keep = winning attempt's offset), on corruption and on
  /// terminal failure (keep = 0).
  void reclaimSalvage(std::size_t item_index, double keep_prefix);
  /// Oldest in-flight item this idle path could hedge, if the tail-hedging
  /// policy applies right now.
  std::optional<std::size_t> hedgeCandidate(std::size_t path_index) const;
  void clearAttempt(PathState& ps);
  void noteFailedPath(const std::string& name);
  void armGraceTimerIfStranded();
  void onGraceExpired();
  void maybeFinish();
  void finish();
  void bindInstruments();
  void bindPathInstruments(PathState& ps);
  /// Sizes the PathId-indexed accounting columns for `pid`.
  void ensureAccountingSlot(PathId pid);
  /// Converts the flat PathId-indexed accounting into the name-keyed maps
  /// of TransactionResult (key present iff the seed's map-based accounting
  /// would have inserted it).
  void materializePerPathMaps();
  void checkAccounting() const;
  double backoffDelay(int failed_attempts);
  double watchdogDeadline(const PathState& ps, const Item& item,
                          double offset) const;

  sim::Simulator& sim_;
  /// All watchdog/backoff/probe/grace deadlines; the simulator heap sees
  /// one alarm event instead of one event per in-flight item.
  sim::TimerWheel wheel_;
  std::vector<PathState> paths_;
  Scheduler& scheduler_;
  EngineConfig config_;
  sim::Rng jitter_;

  telemetry::Registry* registry_;
  telemetry::TraceRecorder* trace_ = nullptr;
  // Engine-wide instruments, bound lazily on the first run().
  telemetry::Counter* transactions_ = nullptr;
  telemetry::Counter* dispatched_ = nullptr;
  telemetry::Counter* completed_ = nullptr;
  telemetry::Counter* duplicated_ = nullptr;
  telemetry::Counter* aborted_ = nullptr;
  telemetry::Counter* wasted_bytes_ = nullptr;
  telemetry::Counter* retries_ = nullptr;
  telemetry::Counter* timeouts_ = nullptr;
  telemetry::Counter* items_failed_ = nullptr;
  telemetry::Counter* path_down_ = nullptr;
  telemetry::Counter* quarantines_ = nullptr;
  telemetry::Counter* salvaged_bytes_ = nullptr;
  telemetry::Counter* resumed_ = nullptr;
  telemetry::Counter* corrupt_ = nullptr;
  telemetry::Counter* hedges_ = nullptr;
  telemetry::Counter* hedge_wins_ = nullptr;
  telemetry::Counter* hedge_losses_ = nullptr;
  telemetry::Counter* decisions_ = nullptr;
  telemetry::Counter* idle_decisions_ = nullptr;
  telemetry::Counter* reschedules_ = nullptr;

  Transaction txn_;
  ItemTable table_;
  PathInterner interner_;
  // Flat per-path accounting, indexed by PathId; the `touched` flags
  // reproduce the exact key-presence of the old map-based accounting
  // (operator[] inserted a key even for a += 0).
  std::vector<double> pid_delivered_;
  std::vector<double> pid_wasted_;
  std::vector<double> pid_salvaged_;
  std::vector<std::uint8_t> pid_delivered_touched_;
  std::vector<std::uint8_t> pid_wasted_touched_;
  std::vector<std::uint8_t> pid_salvaged_touched_;
  std::function<void(TransactionResult)> on_done_;
  TransactionResult result_;
  std::set<std::string> failed_path_names_;
  double started_at_ = 0;
  std::size_t done_count_ = 0;
  std::size_t failed_count_ = 0;
  std::size_t pending_count_ = 0;
  sim::TimerWheel::TimerId grace_timer_ = 0;
  bool active_ = false;
  telemetry::SpanId txn_span_ = 0;
};

}  // namespace gol::core
