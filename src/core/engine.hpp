// The transaction engine: drives a Scheduler over N TransferPaths until all
// M items have landed or exhausted their retry budget, handling duplicate
// aborts, waste accounting (Sec. 4.1.1) and path failure (Sec. 5's pilot
// conditions: phones leave Wi-Fi range, permits get revoked, transfers
// stall). Event-driven: paths call back with per-attempt ItemResults, the
// engine re-dispatches, retries with backoff, quarantines flapping paths
// and guarantees termination even when every path dies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/item.hpp"
#include "core/scheduler.hpp"
#include "core/transfer_path.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace gol::core {

/// Terminal state of a whole transaction.
enum class TransactionOutcome {
  kCompleted,          ///< Every item delivered, no failures along the way.
  kCompletedDegraded,  ///< Every item delivered, but only after retries,
                       ///< watchdog timeouts or path deaths.
  kPartialFailure,     ///< At least one item exhausted its retry budget.
};

const char* toString(TransactionOutcome outcome);

/// Bounded retry with exponential backoff and jitter, per item.
struct RetryPolicy {
  int max_attempts = 5;           ///< Failed attempts before an item is
                                  ///< declared undeliverable.
  double base_backoff_s = 0.5;    ///< First retry delay.
  double backoff_multiplier = 2.0;
  double max_backoff_s = 30.0;
  double jitter = 0.2;            ///< Delay scaled by U(1-j, 1+j).
};

/// Per-attempt watchdog: deadline = max(min_deadline_s, k * estimated
/// transfer time from the path's observed rate). Catches stalls that never
/// surface as errors (the phone that walks out of range mid-TCP-transfer).
struct WatchdogPolicy {
  bool enabled = true;
  double k = 6.0;
  /// Floor covering fixed per-attempt costs the rate estimate cannot see
  /// (RRC promotion, TCP handshakes) and plain rate volatility.
  double min_deadline_s = 5.0;
};

/// Paths that fail repeatedly are benched for growing intervals and probed
/// again at expiry rather than hammered in a hot retry loop.
struct QuarantinePolicy {
  int threshold = 2;        ///< Consecutive failures before benching.
  double base_s = 5.0;      ///< First quarantine length.
  double multiplier = 2.0;  ///< Growth per repeat offence.
  double max_s = 120.0;
};

struct EngineConfig {
  RetryPolicy retry;
  WatchdogPolicy watchdog;
  QuarantinePolicy quarantine;
  /// Once the last usable path dies, surviving work is given this long for
  /// a path to come back before the transaction is failed outright.
  double all_paths_down_grace_s = 30.0;
  /// Seed for backoff jitter; fixed so runs are reproducible.
  std::uint64_t jitter_seed = 0x601dUL;
};

struct TransactionResult {
  TransactionOutcome outcome = TransactionOutcome::kCompleted;
  double duration_s = 0;        ///< Start of transaction to termination.
  double total_bytes = 0;       ///< Payload bytes requested (all items).
  double delivered_bytes = 0;   ///< Payload bytes of items actually done.
  double wasted_bytes = 0;      ///< Bytes moved by aborted, failed and
                                ///< timed-out attempts.
  std::size_t duplicated_items = 0;
  std::size_t retries = 0;       ///< Attempts re-queued after a failure.
  std::size_t timeouts = 0;      ///< Attempts killed by the watchdog.
  std::size_t failed_items = 0;  ///< Items that exhausted max_attempts.
  /// Dispatch count per item (first attempt, retries and duplicates all
  /// count), indexed like Transaction::items.
  std::vector<int> per_item_attempts;
  /// Names of paths that died or were detached mid-transaction (deduped).
  std::vector<std::string> failed_paths;
  /// Completion time of each item, relative to transaction start, indexed
  /// like Transaction::items; 0 for items that never completed. Feed into
  /// hls::analyzePlayout for VoD runs.
  std::vector<double> item_completion_s;
  /// Payload bytes successfully delivered per path name.
  std::map<std::string, double> per_path_bytes;
  /// Bytes moved by attempts that did not deliver (lost duplicate races,
  /// failures, watchdog aborts), per path name.
  /// Invariant (checked by the engine at finish): per_path_bytes sums to
  /// delivered_bytes and per_path_wasted_bytes sums to wasted_bytes, i.e.
  /// all bytes any path moved equal delivered_bytes + wasted_bytes.
  std::map<std::string, double> per_path_wasted_bytes;

  bool complete() const { return failed_items == 0; }
  double goodputBps() const {
    return duration_s > 0 ? delivered_bytes * 8.0 / duration_s : 0.0;
  }
  /// Fraction of all bytes moved (payload + duplicates) that were waste —
  /// the paper's Sec. 4.1.1 overhead figure, bounded by (N-1)*Sm / total.
  double wastedFraction() const {
    const double moved = delivered_bytes + wasted_bytes;
    return moved > 0 ? wasted_bytes / moved : 0.0;
  }
};

class TransactionEngine {
 public:
  TransactionEngine(sim::Simulator& sim, std::vector<TransferPath*> paths,
                    Scheduler& scheduler, EngineConfig config = {});
  TransactionEngine(const TransactionEngine&) = delete;
  TransactionEngine& operator=(const TransactionEngine&) = delete;

  /// Redirects metrics to `registry` (default: Registry::global();
  /// nullptr silences them) and, when `trace` is non-null, records one
  /// span per item-on-path attempt — track 0 is the transaction, track
  /// 1+p is path p. The recorder's clock should be this engine's
  /// simulator clock so timestamps share the sim domain.
  void instrument(telemetry::Registry* registry,
                  telemetry::TraceRecorder* trace = nullptr);

  /// Runs one transaction; `on_done` fires when the engine terminates —
  /// which it always does, whatever the paths do: every item either
  /// completes or fails its retry budget, and if every path dies the
  /// all-paths-down grace timer fails the remainder.
  /// Only one transaction may be active per engine at a time.
  void run(Transaction txn, std::function<void(TransactionResult)> on_done);

  bool active() const { return active_; }
  const EngineConfig& config() const { return config_; }

  /// Dynamic membership: adds `path` to the working set (or re-admits a
  /// previously detached/known one — matched by pointer). New paths are
  /// announced to the scheduler via onPathAdded and dispatched immediately
  /// when a transaction is active.
  void attachPath(TransferPath* path);
  /// Removes `path` from the working set. An in-flight item is aborted
  /// (bytes counted as waste) and re-queued on the surviving paths. The
  /// path object is not touched otherwise and may be re-attached later.
  void detachPath(TransferPath* path);
  /// Paths currently attached and alive.
  std::size_t usablePathCount() const;

 private:
  static constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

  struct PathState {
    TransferPath* path;
    bool attached = true;
    double busy_since = 0;
    std::size_t current_item = kNoItem;
    /// Bumped per attempt; stale watchdogs/callbacks compare and drop.
    std::uint64_t attempt_gen = 0;
    sim::EventId watchdog = 0;
    sim::EventId probe = 0;  ///< Pending quarantine-expiry dispatch.
    double quarantined_until = 0;
    double quarantine_len_s = 0;  ///< Last length, for the growth schedule.
    int consecutive_failures = 0;
    /// Crude observed-rate tracker seeding watchdog deadlines; starts at
    /// the nominal rate, blends in completed-attempt goodput.
    double rate_est_bps = 0;
    telemetry::SpanId span = 0;  ///< Open span for the in-flight item.
    // Cached per-path instruments (label path=<name>), set per run().
    telemetry::Counter* bytes = nullptr;
    telemetry::Counter* wasted = nullptr;
  };

  struct ItemMeta {
    int failed_attempts = 0;  ///< Sole-carrier failures (gates retry cap).
    sim::EventId backoff = 0;
  };

  void dispatch(std::size_t path_index);
  void dispatchAll();
  void onItemEvent(std::size_t path_index, std::uint64_t gen,
                   const Item& item, const ItemResult& result);
  void onItemCompleted(std::size_t path_index, const Item& item,
                       const ItemResult& result);
  void onWatchdog(std::size_t path_index, std::uint64_t gen);
  void onBackoffExpired(std::size_t item_index);
  void onPathStateChange(std::size_t path_index, bool alive,
                         const std::string& reason);
  /// Common tail for failed and timed-out attempts: books waste, updates
  /// quarantine state and decides the item's fate (retry, duplicate still
  /// running, or terminal failure).
  void pathAttemptFailed(std::size_t path_index, std::size_t item_index,
                         double moved_bytes, const char* span_outcome,
                         bool count_against_item);
  void recordWaste(PathState& ps, double bytes);
  void clearAttempt(PathState& ps);
  void noteFailedPath(const std::string& name);
  void armGraceTimerIfStranded();
  void onGraceExpired();
  void maybeFinish();
  void finish();
  void bindInstruments();
  void bindPathInstruments(PathState& ps);
  void checkAccounting() const;
  double backoffDelay(int failed_attempts);
  double watchdogDeadline(const PathState& ps, const Item& item) const;

  sim::Simulator& sim_;
  std::vector<PathState> paths_;
  Scheduler& scheduler_;
  EngineConfig config_;
  sim::Rng jitter_;

  telemetry::Registry* registry_;
  telemetry::TraceRecorder* trace_ = nullptr;
  // Engine-wide instruments, bound lazily on the first run().
  telemetry::Counter* transactions_ = nullptr;
  telemetry::Counter* dispatched_ = nullptr;
  telemetry::Counter* completed_ = nullptr;
  telemetry::Counter* duplicated_ = nullptr;
  telemetry::Counter* aborted_ = nullptr;
  telemetry::Counter* wasted_bytes_ = nullptr;
  telemetry::Counter* retries_ = nullptr;
  telemetry::Counter* timeouts_ = nullptr;
  telemetry::Counter* items_failed_ = nullptr;
  telemetry::Counter* path_down_ = nullptr;
  telemetry::Counter* quarantines_ = nullptr;
  telemetry::Counter* decisions_ = nullptr;
  telemetry::Counter* idle_decisions_ = nullptr;
  telemetry::Counter* reschedules_ = nullptr;

  Transaction txn_;
  std::vector<ItemView> items_;
  std::vector<ItemMeta> item_meta_;
  std::function<void(TransactionResult)> on_done_;
  TransactionResult result_;
  std::set<std::string> failed_path_names_;
  double started_at_ = 0;
  std::size_t done_count_ = 0;
  std::size_t failed_count_ = 0;
  std::size_t pending_count_ = 0;
  sim::EventId grace_timer_ = 0;
  bool active_ = false;
  telemetry::SpanId txn_span_ = 0;
};

}  // namespace gol::core
