#include "core/onload_controller.hpp"

#include <algorithm>

namespace gol::core {

OnloadController::OnloadController(HomeEnvironment& home,
                                   const ControllerConfig& cfg)
    : home_(home),
      cfg_(cfg),
      discovery_(home.simulator(), cfg.discovery_ttl_s) {
  // Utilization probe: worst sector utilization across the location's base
  // stations (a stand-in for the operator's monitoring system).
  permits_ = std::make_unique<PermitServer>(
      home_.simulator(), cfg_.permit, [this](const std::string&) {
        double worst = 0;
        for (cell::BaseStation* bs : home_.location().baseStations()) {
          for (std::size_t s = 0; s < bs->sectorCount(); ++s) {
            worst = std::max(
                worst, bs->sector(s).utilization(cell::Direction::kDownlink));
            worst = std::max(
                worst, bs->sector(s).utilization(cell::Direction::kUplink));
          }
        }
        return worst;
      });

  for (std::size_t p = 0; p < home_.phoneCount(); ++p) {
    trackers_.push_back(std::make_unique<UsageTracker>(
        cfg_.monthly_allowance_bytes, cfg_.days_per_month));
    metered_baseline_.push_back(home_.phone(p).meteredBytes());
    DiscoveryAgent::Options opts;
    opts.interval_s = cfg_.discovery_interval_s;
    agents_.push_back(std::make_unique<DiscoveryAgent>(
        home_.simulator(), home_.phone(p).name(), discovery_,
        [this, p] { return phoneEligible(p); }, opts));
  }
}

bool OnloadController::phoneEligible(std::size_t index) {
  switch (cfg_.mode) {
    case DeploymentMode::kNetworkIntegrated:
      return permits_->requestPermit(home_.phone(index).name());
    case DeploymentMode::kOttCapped:
      return trackers_[index]->eligible();
  }
  return false;
}

void OnloadController::start() {
  for (auto& a : agents_) a->start();
}

std::size_t OnloadController::admissibleCount() const {
  return discovery_.admissibleSet().size();
}

std::vector<std::unique_ptr<TransferPath>> OnloadController::buildPaths(
    TransferDirection dir, int max_phones) {
  auto paths = home_.makePaths(dir, 0, true);  // ADSL only
  const bool down = dir == TransferDirection::kDownload;
  int added = 0;
  for (std::size_t p = 0; p < home_.phoneCount(); ++p) {
    if (max_phones > 0 && added >= max_phones) break;
    cell::CellularDevice& dev = home_.phone(p);
    if (!discovery_.admissible(dev.name())) continue;
    std::vector<net::Link*> extra = {
        home_.wifi().medium(),
        down ? home_.origin().serveLink() : home_.origin().ingestLink()};
    paths.push_back(std::make_unique<CellularTransferPath>(
        dev, down ? cell::Direction::kDownlink : cell::Direction::kUplink,
        dev.name(), std::move(extra),
        home_.wifi().config().rtt_s + home_.origin().config().rtt_s));
    ++added;
  }
  return paths;
}

void OnloadController::chargeUsage() {
  for (std::size_t p = 0; p < home_.phoneCount(); ++p) {
    const double now = home_.phone(p).meteredBytes();
    const double delta = now - metered_baseline_[p];
    metered_baseline_[p] = now;
    if (delta > 0) trackers_[p]->recordUsage(delta);
  }
}

void OnloadController::advanceDay() {
  for (auto& t : trackers_) t->nextDay();
}

void OnloadController::supervisePaths(const std::vector<TransferPath*>& paths) {
  supervised_.clear();
  for (TransferPath* p : paths) {
    if (p != nullptr) supervised_[p->name()] = p;
  }
  discovery_.onChange([this](const std::string& name, bool admissible) {
    auto it = supervised_.find(name);
    if (it == supervised_.end()) return;
    it->second->setAlive(admissible,
                         admissible ? "rejoined-phi" : "aged-out-of-phi");
  });
}

void OnloadController::clearSupervision() {
  supervised_.clear();
  discovery_.onChange(nullptr);
}

void OnloadController::exhaustQuota(const std::string& phone_name) {
  for (std::size_t p = 0; p < home_.phoneCount(); ++p) {
    if (home_.phone(p).name() != phone_name) continue;
    const double left = trackers_[p]->availableTodayBytes();
    if (left > 0) trackers_[p]->recordUsage(left);
    return;
  }
}

}  // namespace gol::core
