// The network-integrated admission backend (Sec. 2.4): a device asks for
// permission to onload; the backend checks utilization of the affected cell
// area against an acceptance threshold. Grants are cached for a few
// minutes; congestion revokes everything.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "sim/simulator.hpp"

namespace gol::core {

struct PermitConfig {
  /// Utilization in the affected area must be below this to grant.
  double acceptance_threshold = 0.70;
  /// Permit cache duration ("a permit is cached for a certain duration —
  /// few minutes").
  double ttl_s = 180.0;
};

class PermitServer {
 public:
  /// `utilization_probe` interfaces with the 3G monitoring system: returns
  /// current utilization [0, 1] of the area a device would load.
  PermitServer(sim::Simulator& sim, PermitConfig cfg,
               std::function<double(const std::string& device)> utilization_probe);

  /// Returns true when the device may onload right now: either a cached
  /// unexpired permit, or a fresh grant if utilization is acceptable.
  bool requestPermit(const std::string& device);
  /// True while the device holds an unexpired permit (no probe, no renew).
  bool hasValidPermit(const std::string& device) const;
  /// Congestion detected: invalidates every cached permit.
  void revokeAll();
  /// Refuses new grants for `seconds` (congestion episodes revoke *and*
  /// suspend — otherwise the next beacon re-grants immediately if the
  /// utilization probe has already relaxed).
  void suspendGrants(double seconds);
  bool suspended() const { return sim_.now() < suspended_until_; }

  std::size_t grantsIssued() const { return grants_; }
  std::size_t denials() const { return denials_; }

 private:
  sim::Simulator& sim_;
  PermitConfig cfg_;
  std::function<double(const std::string&)> probe_;
  std::map<std::string, double> granted_at_;
  double suspended_until_ = 0;
  std::size_t grants_ = 0;
  std::size_t denials_ = 0;
};

}  // namespace gol::core
