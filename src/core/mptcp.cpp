#include "core/mptcp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/tcp_model.hpp"
#include "sim/units.hpp"

namespace gol::core {

double mptcpSubflowRateBps(const MptcpSubflow& subflow, double rtt_min_s,
                           const MptcpParams& params) {
  if (subflow.rtt_s <= 0) throw std::invalid_argument("mptcp: rtt <= 0");
  const double rtt_share =
      std::min(1.0, (rtt_min_s / subflow.rtt_s) * (rtt_min_s / subflow.rtt_s));
  const double stability =
      std::exp(-params.variability_penalty * subflow.variability_sigma);
  const double coupled_utilization = rtt_share * stability;
  const double utilization =
      params.coupling * coupled_utilization + (1.0 - params.coupling) * 1.0;
  return subflow.capacity_bps * std::clamp(utilization, 0.0, 1.0);
}

double mptcpAggregateRateBps(std::span<const MptcpSubflow> subflows,
                             const MptcpParams& params) {
  if (subflows.empty()) return 0;
  double rtt_min = subflows[0].rtt_s;
  double best_single = 0;
  for (const auto& s : subflows) {
    rtt_min = std::min(rtt_min, s.rtt_s);
    best_single = std::max(best_single, s.capacity_bps);
  }
  double total = 0;
  for (const auto& s : subflows) {
    total += mptcpSubflowRateBps(s, rtt_min, params);
  }
  // MPTCP's stated goal: never do worse than the best single path would.
  return std::max(total, best_single);
}

MptcpOutcome mptcpDownload(HomeEnvironment& home, double bytes, int phones,
                           const MptcpParams& params) {
  if (phones > static_cast<int>(home.phoneCount()))
    throw std::invalid_argument("mptcpDownload: not enough phones");
  std::vector<MptcpSubflow> subflows;

  MptcpSubflow adsl;
  adsl.capacity_bps = home.adsl().goodputDownBps();
  adsl.rtt_s = home.adsl().config().rtt_s + home.origin().config().rtt_s;
  adsl.variability_sigma = 0.02;  // wired paths are steady
  subflows.push_back(adsl);

  for (int p = 0; p < phones; ++p) {
    auto& dev = home.phone(static_cast<std::size_t>(p));
    MptcpSubflow sf;
    sf.capacity_bps = dev.nominalRateBps(cell::Direction::kDownlink);
    sf.rtt_s = dev.rttS() + home.wifi().config().rtt_s +
               home.origin().config().rtt_s;
    sf.variability_sigma = std::hypot(dev.config().quality_sigma,
                                      dev.config().jitter_sigma);
    subflows.push_back(sf);
  }

  MptcpOutcome out;
  double rtt_min = subflows[0].rtt_s;
  for (const auto& s : subflows) rtt_min = std::min(rtt_min, s.rtt_s);
  for (const auto& s : subflows) {
    out.subflow_bps.push_back(mptcpSubflowRateBps(s, rtt_min, params));
  }
  out.aggregate_bps = mptcpAggregateRateBps(subflows, params);
  out.duration_s =
      net::transferOverheadS(bytes, rtt_min, out.aggregate_bps) +
      bytes * sim::kBitsPerByte / out.aggregate_bps;
  return out;
}

}  // namespace gol::core
