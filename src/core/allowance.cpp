#include "core/allowance.hpp"

#include <algorithm>
#include <cmath>

#include "stats/summary.hpp"

namespace gol::core {

double estimateMonthlyAllowance(std::span<const double> free_history,
                                const AllowanceConfig& cfg) {
  if (free_history.size() < 2) return 0.0;
  const std::size_t window =
      std::min<std::size_t>(free_history.size(),
                            static_cast<std::size_t>(std::max(cfg.tau_months, 1)));
  stats::Summary s;
  for (std::size_t i = free_history.size() - window; i < free_history.size();
       ++i) {
    s.add(free_history[i]);
  }
  return std::max(0.0, s.mean() - cfg.alpha * s.stddev());
}

std::vector<EstimatorOutcome> backtestEstimator(
    std::span<const double> monthly_usage_bytes, double cap_bytes,
    const AllowanceConfig& cfg, int days_per_month) {
  std::vector<EstimatorOutcome> out;
  std::vector<double> free_history;
  free_history.reserve(monthly_usage_bytes.size());
  for (std::size_t t = 0; t < monthly_usage_bytes.size(); ++t) {
    const double free_now = std::max(0.0, cap_bytes - monthly_usage_bytes[t]);
    if (static_cast<int>(t) >= cfg.tau_months) {
      EstimatorOutcome o;
      o.allowance_bytes = estimateMonthlyAllowance(free_history, cfg);
      o.free_bytes = free_now;
      if (o.allowance_bytes > free_now) {
        o.overran = true;
        // Spending is uniform over the month, so the excess translates to
        // day-equivalents of 3GOL spend beyond the true free capacity.
        const double daily = o.allowance_bytes / days_per_month;
        o.overrun_days =
            daily > 0 ? (o.allowance_bytes - free_now) / daily : 0.0;
      }
      out.push_back(o);
    }
    free_history.push_back(free_now);
  }
  return out;
}

UsageTracker::UsageTracker(double monthly_allowance_bytes, int days_per_month)
    : monthly_allowance_(std::max(0.0, monthly_allowance_bytes)),
      days_per_month_(std::max(1, days_per_month)) {}

double UsageTracker::dailyAllowanceBytes() const {
  return monthly_allowance_ / days_per_month_;
}

double UsageTracker::availableTodayBytes() const {
  const double monthly_left = monthly_allowance_ - used_month_;
  return std::max(0.0, std::min(dailyAllowanceBytes() - used_today_,
                                monthly_left));
}

void UsageTracker::recordUsage(double bytes) {
  if (bytes < 0) return;
  used_today_ += bytes;
  used_month_ += bytes;
}

void UsageTracker::setMonthlyAllowance(double bytes) {
  monthly_allowance_ = std::max(0.0, bytes);
}

void UsageTracker::restoreUsage(double used_today, double used_month,
                                int day) {
  used_today_ = std::max(0.0, used_today);
  used_month_ = std::max(used_today_, std::max(0.0, used_month));
  day_ = ((day % days_per_month_) + days_per_month_) % days_per_month_;
}

void UsageTracker::nextDay() {
  used_today_ = 0;
  ++day_;
  if (day_ >= days_per_month_) {
    day_ = 0;
    used_month_ = 0;
  }
}

}  // namespace gol::core
