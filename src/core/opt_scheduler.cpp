#include "core/opt_scheduler.hpp"

#include <algorithm>
#include <tuple>

#include "telemetry/metrics.hpp"

namespace gol::core {

namespace {
constexpr double kMinRateBps = 1e3;
}  // namespace

OptScheduler::OptScheduler(flow::TenConfig config, double alpha)
    : config_(config), alpha_(alpha) {}

void OptScheduler::onTransactionStart(
    const Transaction& txn, const std::vector<double>& nominal_rates_bps) {
  std::vector<double> bytes;
  bytes.reserve(txn.items.size());
  for (const Item& it : txn.items) bytes.push_back(it.bytes);
  std::vector<double> rates;
  rates.reserve(nominal_rates_bps.size());
  for (const double r : nominal_rates_bps) {
    rates.push_back(std::max(r, kMinRateBps));
  }
  estimates_.assign(rates.size(), stats::Ewma(alpha_));
  for (std::size_t p = 0; p < rates.size(); ++p) {
    estimates_[p].update(rates[p]);
  }
  up_.assign(rates.size(), 1);
  published_ = flow::SolveStats{};
  ten_ = std::make_unique<flow::TimeExpandedNetwork>(std::move(bytes),
                                                     std::move(rates),
                                                     config_);
  ten_->solveScratch();
  plan_ = ten_->extractPlan();
  dirty_ = false;
  publishStats();
}

void OptScheduler::refresh(const EngineView& view) {
  const ItemTable& items = *view.items;
  for (std::size_t i = 0; i < items.size() && i < ten_->itemCount(); ++i) {
    double remaining = 0;
    if (items.status(i) != ItemStatus::kDone &&
        items.status(i) != ItemStatus::kFailed) {
      remaining = std::max(items.bytes(i) - items.checkpoint(i), 0.0);
    }
    ten_->setItemRemaining(i, remaining);
  }
  for (std::size_t p = 0; p < ten_->pathCount(); ++p) {
    ten_->setPathUp(p, p < up_.size() && up_[p] != 0);
    if (p < estimates_.size()) {
      ten_->setPathRate(p, std::max(estimates_[p].value(), kMinRateBps));
    }
  }
  ten_->resolveIncremental();
  plan_ = ten_->extractPlan();
  dirty_ = false;
  publishStats();
}

std::optional<std::size_t> OptScheduler::nextItem(const EngineView& view,
                                                  std::size_t path_index) {
  if (!ten_) return std::nullopt;
  if (dirty_) refresh(view);
  const ItemTable& items = *view.items;

  // Planned work for this path first (in planned order), then the
  // earliest-planned pending item anywhere — never idle while work exists.
  std::optional<std::size_t> best;
  std::tuple<int, double, std::size_t> best_key;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items.status(i) != ItemStatus::kPending) continue;
    const flow::ItemPlan plan =
        i < plan_.size() ? plan_[i] : flow::ItemPlan{};
    const std::tuple<int, double, std::size_t> key{
        plan.path == path_index ? 0 : 1, plan.order_key, i};
    if (!best || key < best_key) {
      best = i;
      best_key = key;
    }
  }
  if (best) return best;

  // Pending pool dry: duplicate the oldest in-flight item this path is not
  // already carrying — GRD's tail re-scheduling, with the explicit
  // (first_assigned_at, index) tie-break.
  std::optional<std::size_t> oldest;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items.status(i) != ItemStatus::kInFlight) continue;
    if (items.carriedBy(i, path_index)) continue;
    if (!oldest ||
        std::make_tuple(items.firstAssignedAt(i), i) <
            std::make_tuple(items.firstAssignedAt(*oldest), *oldest)) {
      oldest = i;
    }
  }
  return oldest;
}

void OptScheduler::onItemComplete(std::size_t path_index, const Item& item,
                                  double seconds) {
  if (path_index < estimates_.size() && seconds > 1e-9) {
    estimates_[path_index].update(item.bytes * 8.0 / seconds);
  }
  dirty_ = true;
}

void OptScheduler::onItemRequeued(std::size_t) { dirty_ = true; }

void OptScheduler::onPathDown(std::size_t path_index) {
  if (path_index >= up_.size() || !up_[path_index]) return;
  up_[path_index] = 0;
  dirty_ = true;
}

void OptScheduler::onPathUp(std::size_t path_index) {
  if (path_index >= up_.size()) return;
  if (!up_[path_index]) dirty_ = true;
  up_[path_index] = 1;
}

void OptScheduler::onPathAdded(std::size_t path_index,
                               double nominal_rate_bps) {
  if (path_index >= up_.size()) {
    up_.resize(path_index + 1, 1);
    estimates_.resize(path_index + 1, stats::Ewma(alpha_));
  }
  estimates_[path_index].update(std::max(nominal_rate_bps, kMinRateBps));
  up_[path_index] = 1;
  if (ten_) {
    while (ten_->pathCount() <= path_index) {
      ten_->addPath(std::max(nominal_rate_bps, kMinRateBps));
    }
    dirty_ = true;
  }
}

double OptScheduler::estimatedRateBps(std::size_t path_index) const {
  return estimates_.at(path_index).value();
}

const flow::SolveStats* OptScheduler::solveStats() const {
  return ten_ ? &ten_->stats() : nullptr;
}

void OptScheduler::publishStats() {
  const flow::SolveStats& s = ten_->stats();
  auto& reg = telemetry::Registry::global();
  const auto push = [&reg](const char* name, std::size_t now,
                           std::size_t& before) {
    if (now > before) {
      reg.counter(name).inc(static_cast<double>(now - before));
      before = now;
    }
  };
  push("gol.opt.scratch_solves", s.scratch_solves, published_.scratch_solves);
  push("gol.opt.resolves", s.resolves, published_.resolves);
  push("gol.opt.spfa_runs", s.spfa_runs, published_.spfa_runs);
  push("gol.opt.arc_relaxations", s.arc_relaxations,
       published_.arc_relaxations);
  push("gol.opt.augmentations", s.augmentations, published_.augmentations);
  push("gol.opt.repair_walks", s.repair_walks, published_.repair_walks);
  push("gol.opt.cycles_cancelled", s.cycles_cancelled,
       published_.cycles_cancelled);
  reg.counter("gol.opt.plan_refreshes").inc();
}

}  // namespace gol::core
