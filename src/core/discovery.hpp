// Bonjour-like service discovery on the home LAN (Sec. 2.4): each 3GOL
// phone advertises itself periodically — but only while eligible (it holds
// a network permit in the integrated deployment, or has quota A(t) > 0 in
// the capped multi-provider deployment). The client builds the admissible
// set Phi from fresh advertisements.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace gol::core {

class ClientDiscovery;

/// Device-side advertiser. `eligible` is evaluated on every beacon; when it
/// returns false the device stays silent and ages out of Phi.
class DiscoveryAgent {
 public:
  struct Options {
    double interval_s = 5.0;
  };

  DiscoveryAgent(sim::Simulator& sim, std::string device_name,
                 ClientDiscovery& registry, std::function<bool()> eligible);
  DiscoveryAgent(sim::Simulator& sim, std::string device_name,
                 ClientDiscovery& registry, std::function<bool()> eligible,
                 Options opts);
  DiscoveryAgent(const DiscoveryAgent&) = delete;
  DiscoveryAgent& operator=(const DiscoveryAgent&) = delete;

  void start();
  void stop() { running_ = false; }
  const std::string& deviceName() const { return name_; }

 private:
  void beacon();

  sim::Simulator& sim_;
  std::string name_;
  ClientDiscovery& registry_;
  std::function<bool()> eligible_;
  Options opts_;
  bool running_ = false;
};

/// Client-side view: names seen recently enough. Advertisements expire
/// after `ttl_s`, so a device that stops beaconing (quota exhausted, permit
/// revoked, left the LAN) drops out of the admissible set automatically.
/// Membership changes fire the onChange listener *actively* (an expiry
/// event is scheduled per advertisement), so dynamic path supervision does
/// not depend on anyone polling admissibleSet().
class ClientDiscovery {
 public:
  /// `admissible` = true on join/rejoin, false on age-out.
  using ChangeFn =
      std::function<void(const std::string& device_name, bool admissible)>;

  explicit ClientDiscovery(sim::Simulator& sim, double ttl_s = 12.0)
      : sim_(sim), ttl_s_(ttl_s) {}

  void onAdvertisement(const std::string& device_name);
  /// The admissible set Phi right now (expired entries pruned).
  std::vector<std::string> admissibleSet() const;
  bool admissible(const std::string& device_name) const;
  double ttlS() const { return ttl_s_; }

  /// Registers the (single) membership listener. Replaces any previous one.
  void onChange(ChangeFn cb) { change_ = std::move(cb); }

 private:
  struct Entry {
    double seen = 0;
    bool live = false;
    sim::EventId expiry = 0;
  };

  void expire(const std::string& device_name);

  sim::Simulator& sim_;
  double ttl_s_;
  std::map<std::string, Entry> entries_;
  ChangeFn change_;
};

}  // namespace gol::core
