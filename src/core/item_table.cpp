#include "core/item_table.hpp"

#include <stdexcept>

namespace gol::core {

PathId PathInterner::intern(const std::string& name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<PathId>(i);
  }
  names_.push_back(name);
  return static_cast<PathId>(names_.size() - 1);
}

ItemTable::ItemTable() = default;

void ItemTable::reset(const std::vector<Item>& items) {
  items_ = items.data();
  size_ = items.size();
  ++epoch_;

  status_.assign(size_, ItemStatus::kPending);
  bytes_.resize(size_);
  for (std::size_t i = 0; i < size_; ++i) bytes_[i] = items_[i].bytes;
  checkpoint_.assign(size_, 0.0);
  first_assigned_.assign(size_, 0.0);
  failed_attempts_.assign(size_, 0);
  backoff_.assign(size_, 0);
  gen_.assign(size_, epoch_);

  carrier_head_.assign(size_, kNoPath);
  carrier_tail_.assign(size_, kNoPath);
  carrier_count_.assign(size_, 0);
  for (auto& n : path_next_) n = kNoPath;

  salvage_tail_.assign(size_, nullptr);
  salvage_free_ = nullptr;
  arena_.reset();
}

void ItemTable::ensurePaths(std::size_t n) {
  if (path_next_.size() < n) path_next_.resize(n, kNoPath);
}

void ItemTable::addCarrier(std::size_t i, std::size_t path) {
  ensurePaths(path + 1);
  path_next_[path] = kNoPath;
  if (carrier_tail_[i] == kNoPath) {
    carrier_head_[i] = path;
  } else {
    path_next_[carrier_tail_[i]] = path;
  }
  carrier_tail_[i] = path;
  ++carrier_count_[i];
}

void ItemTable::removeCarrier(std::size_t i, std::size_t path) {
  std::size_t prev = kNoPath;
  for (std::size_t p = carrier_head_[i]; p != kNoPath; p = path_next_[p]) {
    if (p == path) {
      if (prev == kNoPath) {
        carrier_head_[i] = path_next_[p];
      } else {
        path_next_[prev] = path_next_[p];
      }
      if (carrier_tail_[i] == path) carrier_tail_[i] = prev;
      path_next_[p] = kNoPath;
      --carrier_count_[i];
      return;
    }
    prev = p;
  }
}

void ItemTable::clearCarriers(std::size_t i) {
  std::size_t p = carrier_head_[i];
  while (p != kNoPath) {
    const std::size_t next = path_next_[p];
    path_next_[p] = kNoPath;
    p = next;
  }
  carrier_head_[i] = kNoPath;
  carrier_tail_[i] = kNoPath;
  carrier_count_[i] = 0;
}

bool ItemTable::carriedBy(std::size_t i, std::size_t path) const {
  for (std::size_t p = carrier_head_[i]; p != kNoPath; p = path_next_[p]) {
    if (p == path) return true;
  }
  return false;
}

std::vector<std::size_t> ItemTable::carriersSnapshot(std::size_t i) const {
  std::vector<std::size_t> out;
  out.reserve(carrier_count_[i]);
  for (std::size_t p = carrier_head_[i]; p != kNoPath; p = path_next_[p])
    out.push_back(p);
  return out;
}

void ItemTable::appendSalvage(std::size_t i, PathId pid, double bytes) {
  SalvageNode* n;
  if (salvage_free_ != nullptr) {
    n = salvage_free_;
    salvage_free_ = n->prev;
  } else {
    n = arena_.allocate<SalvageNode>();
  }
  n->bytes = bytes;
  n->pid = pid;
  n->prev = salvage_tail_[i];
  salvage_tail_[i] = n;
  checkpoint_[i] += bytes;
}

std::size_t ItemTable::columnBytesReserved() const {
  return status_.capacity() * sizeof(ItemStatus) +
         bytes_.capacity() * sizeof(double) +
         checkpoint_.capacity() * sizeof(double) +
         first_assigned_.capacity() * sizeof(double) +
         failed_attempts_.capacity() * sizeof(int) +
         backoff_.capacity() * sizeof(std::uint64_t) +
         gen_.capacity() * sizeof(std::uint32_t) +
         carrier_head_.capacity() * sizeof(std::size_t) +
         carrier_tail_.capacity() * sizeof(std::size_t) +
         carrier_count_.capacity() * sizeof(std::uint32_t) +
         path_next_.capacity() * sizeof(std::size_t) +
         salvage_tail_.capacity() * sizeof(SalvageNode*);
}

}  // namespace gol::core
