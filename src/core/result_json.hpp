// The one JSON serialization of TransactionResult. The CLI and every bench
// used to hand-roll their own printf subsets; they all route through here
// now so the fields (including the failure-model additions: outcome,
// per-item attempts, failed paths) stay consistent everywhere.
#pragma once

#include <string>

#include "core/engine.hpp"

namespace gol::core {

struct ResultJsonOptions {
  /// Emit the per-item completion-time array (can be large for many-item
  /// transactions; benches usually skip it).
  bool include_item_completions = true;
  /// Emit per_item_attempts (same size concern).
  bool include_item_attempts = true;
};

/// {"outcome":"completed","duration_s":...,"total_bytes":...,
///  "delivered_bytes":...,"wasted_bytes":...,"goodput_bps":...,
///  "retries":...,"timeouts":...,"failed_items":...,
///  "duplicated_items":...,"failed_paths":[...],
///  "per_path_bytes":{...},"per_path_wasted_bytes":{...},
///  "per_item_attempts":[...],"item_completion_s":[...]}
std::string transactionResultJson(const TransactionResult& result,
                                  const ResultJsonOptions& opts = {});

}  // namespace gol::core
