// Video-on-demand over 3GOL (Sec. 4.1): the HLS-aware proxy intercepts the
// m3u8 playlist, then prefetches segments in parallel across the admissible
// paths with the multipath scheduler. Metrics: pre-buffering (startup)
// time and total download time — Figs 6, 7, 8.
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "core/home.hpp"
#include "core/session_options.hpp"
#include "hls/player.hpp"
#include "hls/segmenter.hpp"
#include "telemetry/span.hpp"

namespace gol::core {

/// Scheduler/paths/faults knobs live in the SessionOptions base, shared
/// with UploadOptions.
struct VodOptions : SessionOptions {
  hls::VideoSpec video;
  /// Pre-buffer amount as a fraction of video length (the paper sweeps
  /// 20 % .. 100 %; 100 % equals full download).
  double prebuffer_fraction = 0.2;
  /// Use the playout-aware DeadlineScheduler (the paper's future-work
  /// extension) instead of `scheduler`: earliest-deadline-first with
  /// urgency-gated duplication. Cuts stalls when playback starts before
  /// the download completes.
  bool playout_aware = false;
  /// When set, the run records trace spans (playlist fetch, transaction,
  /// one span per item-on-path attempt) into this recorder. Construct it
  /// with the home's simulator clock so timestamps are sim-time:
  ///   telemetry::TraceRecorder rec(
  ///       telemetry::Clock{[&sim] { return sim.now(); }});
  telemetry::TraceRecorder* trace = nullptr;
};

struct VodOutcome {
  TransactionResult txn;
  hls::PlayoutResult playout;
  std::size_t prebuffer_segments = 0;
  /// Time to fill the player pre-buffer, including the playlist fetch —
  /// the user-visible startup waiting time.
  double prebuffer_time_s = 0;
  double playlist_fetch_s = 0;
  double total_download_s = 0;  ///< Playlist + all segments.
};

/// Runs one VoD transaction in a home environment. Stateless across runs;
/// each run crosses fresh connections, matching the paper's repetitions.
class VodSession {
 public:
  explicit VodSession(HomeEnvironment& home) : home_(home) {}

  VodOutcome run(const VodOptions& opts);

 private:
  HomeEnvironment& home_;
};

}  // namespace gol::core
