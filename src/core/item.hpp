// The unit of work 3GOL schedules: a transaction is a set of M items
// (HLS segments, photos) to move over N paths as fast as possible (Sec. 2.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gol::core {

enum class TransferDirection { kDownload, kUpload };

struct Item {
  std::uint32_t index = 0;  ///< Position within the transaction.
  std::string name;
  double bytes = 0;
};

struct Transaction {
  TransferDirection direction = TransferDirection::kDownload;
  std::vector<Item> items;

  double totalBytes() const {
    double t = 0;
    for (const auto& i : items) t += i.bytes;
    return t;
  }
  /// Largest item size Sm — the unit of the waste bound (N-1)*Sm (Sec. 4.1.1).
  double maxItemBytes() const {
    double m = 0;
    for (const auto& i : items) m = i.bytes > m ? i.bytes : m;
    return m;
  }
};

/// Builds a transaction from raw sizes, naming items "<prefix><i>".
inline Transaction makeTransaction(TransferDirection dir,
                                   const std::vector<double>& sizes,
                                   const std::string& prefix = "item") {
  Transaction t;
  t.direction = dir;
  t.items.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.items.push_back(Item{static_cast<std::uint32_t>(i),
                           prefix + std::to_string(i), sizes[i]});
  }
  return t;
}

}  // namespace gol::core
