// The unit of work 3GOL schedules: a transaction is a set of M items
// (HLS segments, photos) to move over N paths as fast as possible (Sec. 2.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/checksum.hpp"

namespace gol::core {

enum class TransferDirection { kDownload, kUpload };

struct Item {
  std::uint32_t index = 0;  ///< Position within the transaction.
  std::string name;
  double bytes = 0;
  /// Expected FNV-1a digest of the payload; 0 = unknown (verification is
  /// skipped for this item). Trace generators fill it so the engine can
  /// check integrity end-to-end.
  std::uint64_t checksum = 0;
};

/// Digest the simulator's stand-in payload for an item: the fluid models
/// move no real bytes, so the "payload" is the item's identity (name +
/// size), which generator and path can both derive independently — exactly
/// the property a real checksum has.
inline std::uint64_t syntheticChecksum(const std::string& name,
                                       double bytes) {
  std::uint64_t h = http::fnv1aStep(name);
  const auto n = static_cast<std::uint64_t>(bytes);
  for (int i = 0; i < 8; ++i) {
    h ^= (n >> (8 * i)) & 0xff;
    h *= http::kFnv1aPrime;
  }
  return h;
}

struct Transaction {
  TransferDirection direction = TransferDirection::kDownload;
  std::vector<Item> items;

  double totalBytes() const {
    double t = 0;
    for (const auto& i : items) t += i.bytes;
    return t;
  }
  /// Largest item size Sm — the unit of the waste bound (N-1)*Sm (Sec. 4.1.1).
  double maxItemBytes() const {
    double m = 0;
    for (const auto& i : items) m = i.bytes > m ? i.bytes : m;
    return m;
  }
};

/// Builds a transaction from raw sizes, naming items "<prefix><i>".
inline Transaction makeTransaction(TransferDirection dir,
                                   const std::vector<double>& sizes,
                                   const std::string& prefix = "item") {
  Transaction t;
  t.direction = dir;
  t.items.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    Item it;
    it.index = static_cast<std::uint32_t>(i);
    it.name = prefix + std::to_string(i);
    it.bytes = sizes[i];
    it.checksum = syntheticChecksum(it.name, it.bytes);
    t.items.push_back(std::move(it));
  }
  return t;
}

}  // namespace gol::core
