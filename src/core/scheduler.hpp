// Multipath item schedulers (Sec. 4.1.1): the paper's greedy policy (GRD)
// and the two baselines it is evaluated against in Fig 6 — round robin (RR)
// and minimum-estimated-time (MIN).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/item.hpp"

namespace gol::core {

enum class ItemStatus { kPending, kInFlight, kDone };

/// Read-only view of the engine's bookkeeping, given to schedulers.
struct ItemView {
  const Item* item = nullptr;
  ItemStatus status = ItemStatus::kPending;
  /// Paths currently carrying this item (indices into the engine's list).
  std::vector<std::size_t> carriers;
  double first_assigned_at = 0;
};

struct EngineView {
  const std::vector<ItemView>* items = nullptr;
  std::size_t path_count = 0;
  double now = 0;

  std::size_t pendingCount() const {
    std::size_t n = 0;
    for (const auto& iv : *items)
      if (iv.status == ItemStatus::kPending) ++n;
    return n;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Transaction begins; `nominal_rates_bps[p]` seeds estimators.
  virtual void onTransactionStart(const Transaction& txn,
                                  const std::vector<double>& nominal_rates_bps);

  /// Path `path_index` is idle; return the index (into txn.items) of the
  /// item to put on it, or nullopt to leave the path idle. Returning an
  /// in-flight item duplicates it (tail re-scheduling).
  virtual std::optional<std::size_t> nextItem(const EngineView& view,
                                              std::size_t path_index) = 0;

  /// An item finished on `path_index` having moved `bytes` in `seconds`
  /// of path-busy time (observed goodput sample for estimators).
  virtual void onItemComplete(std::size_t path_index, const Item& item,
                              double seconds);
};

/// Factory used by benches/examples to sweep policies by name:
/// "greedy" | "rr" | "min".
std::unique_ptr<Scheduler> makeScheduler(const std::string& policy);

}  // namespace gol::core
