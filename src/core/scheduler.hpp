// Multipath item schedulers (Sec. 4.1.1): the paper's greedy policy (GRD)
// and the two baselines it is evaluated against in Fig 6 — round robin (RR)
// and minimum-estimated-time (MIN).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/item.hpp"
#include "core/item_table.hpp"

namespace gol::core {

/// Read-only view of the engine's bookkeeping, given to schedulers. Item
/// state is columnar (ItemTable): status sweeps and tie-break scans read
/// one column, carrier membership is carriedBy()/forEachCarrier().
struct EngineView {
  const ItemTable* items = nullptr;
  std::size_t path_count = 0;
  double now = 0;
  /// Maintained incrementally by the engine (O(1) per status transition),
  /// so dispatch-time queries don't rescan all M items.
  std::size_t pending = 0;

  std::size_t pendingCount() const { return pending; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Transaction begins; `nominal_rates_bps[p]` seeds estimators.
  virtual void onTransactionStart(const Transaction& txn,
                                  const std::vector<double>& nominal_rates_bps);

  /// Path `path_index` is idle; return the index (into txn.items) of the
  /// item to put on it, or nullopt to leave the path idle. Returning an
  /// in-flight item duplicates it (tail re-scheduling).
  virtual std::optional<std::size_t> nextItem(const EngineView& view,
                                              std::size_t path_index) = 0;

  /// An item finished on `path_index` having moved `bytes` in `seconds`
  /// of path-busy time (observed goodput sample for estimators).
  virtual void onItemComplete(std::size_t path_index, const Item& item,
                              double seconds);

  /// A failed/timed-out attempt put `item_index` back into the pending
  /// pool. Schedulers that keep per-path queues must re-enqueue it.
  virtual void onItemRequeued(std::size_t item_index);

  /// Path left service (died, detached, quarantined for good): queue-based
  /// schedulers must migrate its queued items elsewhere.
  virtual void onPathDown(std::size_t path_index);
  /// Path returned to service (recovered, re-admitted by discovery).
  virtual void onPathUp(std::size_t path_index);
  /// A path was appended mid-engine-lifetime (dynamic membership); sizes
  /// per-path state. `path_index` is the new path's index.
  virtual void onPathAdded(std::size_t path_index, double nominal_rate_bps);
};

/// Self-registering scheduler factory. Policies register a name plus a
/// factory (the built-ins at static-init time from scheduler.cpp — kept in
/// that always-linked TU so static-archive dead stripping can't drop them —
/// and out-of-tree policies via SchedulerRegistrar from their own TU).
class SchedulerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>()>;

  static SchedulerRegistry& instance();

  /// Registers `factory` under `name`. Aliases are constructible via
  /// make() but hidden from list(). Returns false on duplicates.
  bool add(const std::string& name, Factory factory, bool alias = false);
  /// Instantiates a registered policy; throws std::invalid_argument naming
  /// the available policies when `name` is unknown.
  std::unique_ptr<Scheduler> make(const std::string& name) const;
  bool known(const std::string& name) const;
  /// Sorted canonical (non-alias) policy names.
  std::vector<std::string> list() const;
  /// "a|b|c" over list(), for usage strings and error messages.
  std::string namesJoined() const;

 private:
  SchedulerRegistry() = default;
  struct Entry {
    Factory factory;
    bool alias = false;
  };
  std::map<std::string, Entry> factories_;
};

/// Registers a scheduler from a translation unit's static initializer:
///   static gol::core::SchedulerRegistrar reg("mine", [] { ... });
struct SchedulerRegistrar {
  SchedulerRegistrar(const std::string& name, SchedulerRegistry::Factory f,
                     bool alias = false);
};

/// Factory used by benches/examples to sweep policies by name; thin wrapper
/// over SchedulerRegistry::make.
std::unique_ptr<Scheduler> makeScheduler(const std::string& policy);

}  // namespace gol::core
