// Round-robin baseline (Sec. 5.1): items are dealt cyclically to paths at
// transaction start; each path drains its own queue and never steals.
// Suboptimal when path capacities differ — the ADSL line and a phone rarely
// match — which is exactly what Fig 6 demonstrates.
#pragma once

#include <deque>
#include <vector>

#include "core/scheduler.hpp"

namespace gol::core {

class RoundRobinScheduler : public Scheduler {
 public:
  std::string name() const override { return "rr"; }

  void onTransactionStart(const Transaction& txn,
                          const std::vector<double>& nominal_rates_bps) override;
  std::optional<std::size_t> nextItem(const EngineView& view,
                                      std::size_t path_index) override;
  void onItemRequeued(std::size_t item_index) override;
  void onPathDown(std::size_t path_index) override;
  void onPathUp(std::size_t path_index) override;
  void onPathAdded(std::size_t path_index, double nominal_rate_bps) override;

 private:
  /// Enqueues on the next up path in rotation (stashes when none is up;
  /// onPathUp drains the stash).
  void enqueue(std::size_t item_index);

  std::vector<std::deque<std::size_t>> queues_;
  std::vector<char> up_;
  std::deque<std::size_t> stash_;  ///< Items waiting for any path to be up.
  std::size_t next_path_ = 0;      ///< Rotation cursor for re-enqueues.
};

}  // namespace gol::core
