// Round-robin baseline (Sec. 5.1): items are dealt cyclically to paths at
// transaction start; each path drains its own queue and never steals.
// Suboptimal when path capacities differ — the ADSL line and a phone rarely
// match — which is exactly what Fig 6 demonstrates.
#pragma once

#include <deque>
#include <vector>

#include "core/scheduler.hpp"

namespace gol::core {

class RoundRobinScheduler : public Scheduler {
 public:
  std::string name() const override { return "rr"; }

  void onTransactionStart(const Transaction& txn,
                          const std::vector<double>& nominal_rates_bps) override;
  std::optional<std::size_t> nextItem(const EngineView& view,
                                      std::size_t path_index) override;

 private:
  std::vector<std::deque<std::size_t>> queues_;
};

}  // namespace gol::core
