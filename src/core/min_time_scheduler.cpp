#include "core/min_time_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "sim/units.hpp"

namespace gol::core {

void MinTimeScheduler::onTransactionStart(
    const Transaction& txn, const std::vector<double>& nominal_rates_bps) {
  item_bytes_.clear();
  for (const auto& it : txn.items) item_bytes_.push_back(it.bytes);
  estimates_.assign(nominal_rates_bps.size(), stats::Ewma(alpha_));
  for (std::size_t p = 0; p < nominal_rates_bps.size(); ++p) {
    estimates_[p].update(std::max(nominal_rates_bps[p], 1e3));
  }
  queues_.assign(nominal_rates_bps.size(), {});
  backlog_bytes_.assign(nominal_rates_bps.size(), 0.0);
  up_.assign(nominal_rates_bps.size(), 1);
  reassign_.clear();
  next_unassigned_ = 0;
  // Deal the first N items round robin so every estimator gets a sample.
  bootstrap_remaining_ = std::min(txn.items.size(), queues_.size());
}

std::size_t MinTimeScheduler::assignItem(std::size_t item) {
  std::size_t target = std::numeric_limits<std::size_t>::max();
  if (bootstrap_remaining_ > 0) {
    const std::size_t slot = queues_.size() - bootstrap_remaining_;
    --bootstrap_remaining_;
    if (up_[slot]) target = slot;
  }
  if (target == std::numeric_limits<std::size_t>::max()) {
    // Faithful to the paper's wording: the item goes to the path that
    // minimizes *its* estimated transfer time (size / est_bw) — there is
    // no queue-backlog term, so items clump onto whichever path currently
    // looks fastest. Combined with volatile cellular bandwidth this is the
    // behaviour Fig 6 punishes.
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < queues_.size(); ++p) {
      if (!up_[p]) continue;
      const double t =
          item_bytes_[item] * sim::kBitsPerByte / estimates_[p].value();
      // Explicit (estimate, path-id) key: identical estimates — e.g.
      // symmetric nominal rates before any sample lands — resolve to the
      // lowest path index instead of depending on scan order.
      if (std::tie(t, p) < std::tie(best, target)) {
        best = t;
        target = p;
      }
    }
  }
  if (target == std::numeric_limits<std::size_t>::max()) {
    reassign_.push_back(item);  // every path is down; hold for onPathUp
    return target;
  }
  queues_[target].push_back(item);
  backlog_bytes_[target] += item_bytes_[item];
  return target;
}

bool MinTimeScheduler::commitNext() {
  if (!reassign_.empty()) {
    const std::size_t item = reassign_.front();
    reassign_.pop_front();
    assignItem(item);
    return true;
  }
  if (next_unassigned_ < item_bytes_.size()) {
    assignItem(next_unassigned_++);
    return true;
  }
  return false;
}

std::optional<std::size_t> MinTimeScheduler::nextItem(
    const EngineView& view, std::size_t path_index) {
  auto& q = queues_.at(path_index);
  for (;;) {
    // Commit uncommitted items until this path has work or none remain.
    // Items routed to other (busy) paths stay there — MIN never migrates
    // healthy paths' work, which is precisely why stale estimates hurt it.
    while (q.empty() && commitNext()) {
    }
    if (q.empty()) return std::nullopt;
    const std::size_t idx = q.front();
    q.pop_front();
    if (view.items->status(idx) == ItemStatus::kPending) return idx;
    // Completed elsewhere or re-queued through a failure: drop the stale
    // entry and its backlog, keep looking.
    backlog_bytes_[path_index] =
        std::max(0.0, backlog_bytes_[path_index] - item_bytes_[idx]);
  }
}

void MinTimeScheduler::onItemComplete(std::size_t path_index,
                                      const Item& item, double seconds) {
  backlog_bytes_.at(path_index) =
      std::max(0.0, backlog_bytes_[path_index] - item.bytes);
  if (seconds > 1e-9) {
    estimates_.at(path_index).update(item.bytes * sim::kBitsPerByte /
                                     seconds);
  }
}

void MinTimeScheduler::onItemRequeued(std::size_t item_index) {
  if (item_bytes_.empty()) return;
  reassign_.push_back(item_index);
}

void MinTimeScheduler::onPathDown(std::size_t path_index) {
  if (path_index >= queues_.size() || !up_[path_index]) return;
  up_[path_index] = 0;
  std::deque<std::size_t> orphans;
  orphans.swap(queues_[path_index]);
  backlog_bytes_[path_index] = 0;
  for (const std::size_t idx : orphans) reassign_.push_back(idx);
}

void MinTimeScheduler::onPathUp(std::size_t path_index) {
  if (path_index >= queues_.size()) return;
  up_[path_index] = 1;
}

double MinTimeScheduler::estimatedRateBps(std::size_t path_index) const {
  return estimates_.at(path_index).value();
}

void MinTimeScheduler::onPathAdded(std::size_t path_index,
                                   double nominal_rate_bps) {
  if (path_index >= queues_.size()) {
    queues_.resize(path_index + 1);
    backlog_bytes_.resize(path_index + 1, 0.0);
    up_.resize(path_index + 1, 1);
    estimates_.resize(path_index + 1, stats::Ewma(alpha_));
  }
  estimates_[path_index].update(std::max(nominal_rate_bps, 1e3));
}

}  // namespace gol::core
