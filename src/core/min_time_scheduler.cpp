#include "core/min_time_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "sim/units.hpp"

namespace gol::core {

void MinTimeScheduler::onTransactionStart(
    const Transaction& txn, const std::vector<double>& nominal_rates_bps) {
  item_bytes_.clear();
  for (const auto& it : txn.items) item_bytes_.push_back(it.bytes);
  estimates_.assign(nominal_rates_bps.size(), stats::Ewma(alpha_));
  for (std::size_t p = 0; p < nominal_rates_bps.size(); ++p) {
    estimates_[p].update(std::max(nominal_rates_bps[p], 1e3));
  }
  queues_.assign(nominal_rates_bps.size(), {});
  backlog_bytes_.assign(nominal_rates_bps.size(), 0.0);
  next_unassigned_ = 0;
  // Deal the first N items round robin so every estimator gets a sample.
  bootstrap_remaining_ = std::min(txn.items.size(), queues_.size());
}

std::size_t MinTimeScheduler::assignNext(const EngineView&) {
  const std::size_t i = next_unassigned_++;
  std::size_t target = 0;
  if (bootstrap_remaining_ > 0) {
    target = queues_.size() - bootstrap_remaining_;
    --bootstrap_remaining_;
  } else {
    // Faithful to the paper's wording: the item goes to the path that
    // minimizes *its* estimated transfer time (size / est_bw) — there is
    // no queue-backlog term, so items clump onto whichever path currently
    // looks fastest. Combined with volatile cellular bandwidth this is the
    // behaviour Fig 6 punishes.
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < queues_.size(); ++p) {
      const double t =
          item_bytes_[i] * sim::kBitsPerByte / estimates_[p].value();
      if (t < best) {
        best = t;
        target = p;
      }
    }
  }
  queues_[target].push_back(i);
  backlog_bytes_[target] += item_bytes_[i];
  return target;
}

std::optional<std::size_t> MinTimeScheduler::nextItem(
    const EngineView& view, std::size_t path_index) {
  auto& q = queues_.at(path_index);
  for (;;) {
    // Commit unassigned items until this path has work or none remain.
    // Items routed to other (busy) paths stay there — MIN never migrates,
    // which is precisely why stale estimates hurt it.
    while (q.empty() && next_unassigned_ < item_bytes_.size()) {
      assignNext(view);
    }
    if (q.empty()) return std::nullopt;
    const std::size_t idx = q.front();
    q.pop_front();
    if ((*view.items)[idx].status == ItemStatus::kPending) return idx;
    // Completed elsewhere (cannot happen without duplication, but stay
    // robust): drop the stale entry and its backlog, keep looking.
    backlog_bytes_[path_index] =
        std::max(0.0, backlog_bytes_[path_index] - item_bytes_[idx]);
  }
}

void MinTimeScheduler::onItemComplete(std::size_t path_index,
                                      const Item& item, double seconds) {
  backlog_bytes_.at(path_index) =
      std::max(0.0, backlog_bytes_[path_index] - item.bytes);
  if (seconds > 1e-9) {
    estimates_.at(path_index).update(item.bytes * sim::kBitsPerByte /
                                     seconds);
  }
}

double MinTimeScheduler::estimatedRateBps(std::size_t path_index) const {
  return estimates_.at(path_index).value();
}

}  // namespace gol::core
