// ScenarioBuilder: the one audited code path for wiring 3GOL scenarios.
//
// Every experiment used to hand-roll the same ten lines — ADSL line, home
// Wi-Fi, phones at the location, transfer paths, scheduler, engine — with
// small copy/paste divergences (RTT composition, path naming, forgotten
// Wi-Fi loss). The builder centralizes that wiring behind a fluent API:
//
//   auto scenario = core::ScenarioBuilder()
//                       .location(cell::evaluationLocations()[3])
//                       .households(16)
//                       .phonesPerHousehold(2)
//                       .scheduler("greedy")
//                       .seed(42)
//                       .build();                  // owns sim + network
//   scenario.household(3).engine->run(...);
//
// Two build modes:
//  - build(): standalone — the Scenario owns its Simulator, FlowNetwork,
//    Location, origin and HTTP client. One-stop for single benches.
//  - buildOn(sim, net, location, origin, http): shared-infrastructure —
//    households are wired into existing objects. This is how the metro
//    driver populates each shard's world (many neighborhoods per
//    simulator) and how ext_neighborhood puts K homes under one cell area.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "access/adsl.hpp"
#include "access/dslam.hpp"
#include "access/wifi.hpp"
#include "cellular/location.hpp"
#include "core/engine.hpp"
#include "core/scheduler.hpp"
#include "core/sim_paths.hpp"
#include "core/transfer_path.hpp"
#include "http/sim_client.hpp"
#include "http/sim_origin.hpp"
#include "net/flow_network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace gol::core {

class Scenario;

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  // --- Environment -------------------------------------------------------
  ScenarioBuilder& location(cell::LocationSpec spec);
  /// Upgrades the location and handset to LTE (Sec. 2.3's 4G scenario).
  ScenarioBuilder& lte();
  /// Static background cell load (1 = empty cell).
  ScenarioBuilder& availableFraction(double f);
  ScenarioBuilder& origin(http::SimOriginConfig cfg);
  ScenarioBuilder& wifi(access::WifiConfig cfg);
  ScenarioBuilder& device(cell::DeviceConfig cfg);
  /// Households' ADSL lines aggregate behind one shared DSLAM backhaul
  /// (the Fig 11 metro topology) instead of standalone lines.
  ScenarioBuilder& dslam(access::DslamConfig cfg);

  // --- Households --------------------------------------------------------
  ScenarioBuilder& households(int n);
  ScenarioBuilder& phonesPerHousehold(int n);
  /// Clients wired to the gateway instead of on Wi-Fi (skips the Wi-Fi
  /// medium + RTT on every path).
  ScenarioBuilder& clientWired(bool wired = true);
  /// Per-household ADSL sync-rate override; defaults to the location's
  /// measured line.
  ScenarioBuilder& adslRates(double down_bps, double up_bps);

  // --- Transaction plumbing ----------------------------------------------
  ScenarioBuilder& direction(TransferDirection dir);
  ScenarioBuilder& useAdsl(bool v);
  ScenarioBuilder& scheduler(std::string name);
  ScenarioBuilder& engine(EngineConfig cfg);
  /// Telemetry registry for the engines (global by default; nullptr
  /// silences them — the metro bench does, 20k engines would drown the
  /// global registry in per-path label churn).
  ScenarioBuilder& metrics(telemetry::Registry* registry);
  /// Defer scheduler+engine construction: households get paths only and
  /// Scenario::rebuildEngine(i) creates (or replaces) the engine on
  /// demand. The metro driver uses this to cap live-engine memory — an
  /// engine exists only while its household has a transaction in flight.
  ScenarioBuilder& lazyEngines(bool v = true);
  ScenarioBuilder& seed(std::uint64_t s);
  /// Prefix for link/path/device names (shard- or neighborhood-qualified
  /// in metro runs, so names stay unique within a shared FlowNetwork).
  ScenarioBuilder& namePrefix(std::string p);

  /// Standalone build: the Scenario owns simulator + network + location.
  Scenario build();
  /// Shared-infrastructure build: wires the households into existing
  /// objects (which must outlive the Scenario).
  Scenario buildOn(sim::Simulator& sim, net::FlowNetwork& net,
                   cell::Location& location, http::SimOrigin& origin,
                   http::SimHttpClient& http);

 private:
  friend class Scenario;
  void wire(Scenario& s, sim::Simulator& sim, net::FlowNetwork& net,
            cell::Location& location, http::SimOrigin& origin,
            http::SimHttpClient& http, sim::Rng& rng);

  cell::LocationSpec location_ = cell::evaluationLocations()[3];
  bool lte_ = false;
  double available_fraction_ = 0.78;
  http::SimOriginConfig origin_{};
  access::WifiConfig wifi_{};
  cell::DeviceConfig device_{};
  std::optional<access::DslamConfig> dslam_;
  int households_ = 1;
  int phones_ = 2;
  bool client_wired_ = false;
  std::optional<std::pair<double, double>> adsl_rates_;
  TransferDirection direction_ = TransferDirection::kDownload;
  bool use_adsl_ = true;
  std::string scheduler_ = "greedy";
  EngineConfig engine_{};
  telemetry::Registry* registry_ = &telemetry::Registry::global();
  bool explicit_registry_ = false;
  bool lazy_engines_ = false;
  std::uint64_t seed_ = 42;
  std::string prefix_;
};

/// A built scenario: households with access lines, phones, transfer paths
/// and (unless lazyEngines) a ready TransactionEngine each.
class Scenario {
 public:
  struct Household {
    std::string name;
    /// Owned standalone line, or a DSLAM-owned line (owned == nullptr).
    std::unique_ptr<access::AdslLine> adsl_owned;
    access::AdslLine* adsl = nullptr;
    std::unique_ptr<access::WifiLan> wifi;
    std::vector<std::unique_ptr<cell::CellularDevice>> phones;
    std::vector<std::unique_ptr<TransferPath>> paths;
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<TransactionEngine> engine;
    /// Per-household stream for workload draws (sizes, arrival times);
    /// forked deterministically in household order at build time.
    sim::Rng rng{0};

    std::vector<TransferPath*> rawPaths() const;
  };

  Scenario(Scenario&&) = default;
  Scenario& operator=(Scenario&&) = default;
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  sim::Simulator& simulator() { return *sim_; }
  net::FlowNetwork& network() { return *net_; }
  cell::Location& location() { return *location_; }
  http::SimOrigin& origin() { return *origin_; }
  http::SimHttpClient& http() { return *http_; }
  access::Dslam* dslam() { return dslam_.get(); }

  std::size_t householdCount() const { return households_.size(); }
  Household& household(std::size_t i) { return households_.at(i); }

  /// (Re)creates household i's scheduler + engine through the same wiring
  /// the eager build uses. Destroys any previous engine first — the caller
  /// must not hold a transaction in flight on it.
  TransactionEngine& rebuildEngine(std::size_t i);
  /// Releases household i's engine + scheduler (memory control for
  /// metro-scale runs; rebuildEngine brings them back).
  void releaseEngine(std::size_t i);

  /// Synchronously runs one transaction on household i's engine.
  TransactionResult run(std::size_t i, Transaction txn);

 private:
  friend class ScenarioBuilder;
  Scenario() = default;

  // Owned infra in standalone mode; null when borrowed via buildOn.
  std::unique_ptr<sim::Simulator> own_sim_;
  std::unique_ptr<net::FlowNetwork> own_net_;
  std::unique_ptr<cell::Location> own_location_;
  std::unique_ptr<http::SimOrigin> own_origin_;
  std::unique_ptr<http::SimHttpClient> own_http_;

  sim::Simulator* sim_ = nullptr;
  net::FlowNetwork* net_ = nullptr;
  cell::Location* location_ = nullptr;
  http::SimOrigin* origin_ = nullptr;
  http::SimHttpClient* http_ = nullptr;
  std::unique_ptr<access::Dslam> dslam_;

  // Builder knobs the engine-rebuild path re-reads.
  std::string scheduler_name_;
  EngineConfig engine_cfg_;
  telemetry::Registry* registry_ = nullptr;
  bool explicit_registry_ = false;

  std::vector<Household> households_;
};

}  // namespace gol::core
