// Abstraction of one of the N paths a transaction can use: the ADSL line or
// a 3G device reached over the home Wi-Fi. The scheduler and engine operate
// purely on this interface, so the same policies drive the simulator and
// the real-socket prototype.
#pragma once

#include <functional>
#include <string>

#include "core/item.hpp"

namespace gol::core {

class TransferPath {
 public:
  virtual ~TransferPath() = default;

  virtual const std::string& name() const = 0;
  /// A path carries at most one item at a time (HTTP is sequential per
  /// connection in the paper's applications).
  virtual bool busy() const = 0;
  virtual const Item* currentItem() const = 0;

  /// Begins transferring `item`; `done` fires exactly once on completion
  /// (never after abortCurrent()).
  virtual void start(const Item& item,
                     std::function<void(const Item&)> done) = 0;

  /// Aborts the in-flight item, returning the bytes it had moved (these
  /// count as waste when the abort is due to a duplicate completing
  /// elsewhere). No-op returning 0 when idle.
  virtual double abortCurrent() = 0;

  /// A-priori throughput guess, used to seed bandwidth estimators before
  /// any sample exists. Never a promise.
  virtual double nominalRateBps() const = 0;
};

}  // namespace gol::core
