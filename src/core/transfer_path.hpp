// Abstraction of one of the N paths a transaction can use: the ADSL line or
// a 3G device reached over the home Wi-Fi. The scheduler and engine operate
// purely on this interface, so the same policies drive the simulator and
// the real-socket prototype.
//
// Failure model (the in-the-wild pilot, Sec. 5): every attempt completes
// with an ItemResult carrying an explicit outcome instead of a bare success
// callback, and a path exposes a liveness bit (`alive()`) plus state
// listeners so hard failures — socket reset, the phone walking out of Wi-Fi
// range, a revoked permit — propagate as events rather than silent stalls.
//
// Partial recovery: attempts are offset-aware. start(item, offset, done)
// asks for the byte range [offset, item.bytes); an interrupted attempt's
// ItemResult separates the salvageable contiguous prefix (usable as the
// next attempt's offset — HTTP Range semantics) from bytes that are pure
// waste. Completions carry a payload checksum so the engine can verify
// integrity end-to-end and discard checkpoints poisoned by in-path
// middleboxes (ItemOutcome::kCorrupt).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/item.hpp"

namespace gol::core {

/// Terminal state of one item-on-path attempt.
enum class ItemOutcome {
  kCompleted,  ///< Payload delivered in full.
  kFailed,     ///< Hard error mid-transfer (reset, device gone).
  kAborted,    ///< Cancelled by the engine (duplicate race lost, detach).
  kTimedOut,   ///< Watchdog deadline expired without completion.
  kCorrupt,    ///< Payload delivered but failed integrity verification.
};

const char* toString(ItemOutcome outcome);

/// What one start() attempt produced. `bytes_moved` is whatever crossed the
/// wire during the attempt; `salvageable_bytes` is the contiguous prefix of
/// those (counted from the attempt's start offset) that the receiver still
/// holds and a follow-up attempt can resume past — the rest is waste.
struct ItemResult {
  ItemOutcome outcome = ItemOutcome::kCompleted;
  double bytes_moved = 0;
  /// Contiguous received prefix of this attempt, <= bytes_moved. Only
  /// meaningful for non-completed outcomes on paths that supportsResume().
  double salvageable_bytes = 0;
  /// FNV-1a digest of the full item payload as received; 0 when unknown.
  /// Checked against Item::checksum on completion when verification is on.
  std::uint64_t checksum = 0;
  std::string error;  ///< Human-readable cause for non-completed outcomes.

  static ItemResult completed(double bytes, std::uint64_t digest = 0) {
    ItemResult r;
    r.outcome = ItemOutcome::kCompleted;
    r.bytes_moved = bytes;
    r.checksum = digest;
    return r;
  }
  static ItemResult failed(double bytes, std::string why,
                           double salvageable = 0) {
    ItemResult r;
    r.outcome = ItemOutcome::kFailed;
    r.bytes_moved = bytes;
    r.salvageable_bytes = salvageable;
    r.error = std::move(why);
    return r;
  }
  static ItemResult corrupt(double bytes, std::string why) {
    ItemResult r;
    r.outcome = ItemOutcome::kCorrupt;
    r.bytes_moved = bytes;
    r.error = std::move(why);
    return r;
  }
};

class TransferPath {
 public:
  /// Fires exactly once per start() (never after abortCurrent()), with the
  /// attempt's outcome. A kFailed result re-enters the engine's retry
  /// machinery; non-salvaged bytes_moved are accounted as waste.
  using DoneFn = std::function<void(const Item&, const ItemResult&)>;
  /// Liveness transition: `alive` flipped, `reason` says why ("left-lan",
  /// "permit-revoked", "fault:kill", ...).
  using StateChangeFn =
      std::function<void(TransferPath& path, bool alive, const std::string& reason)>;
  /// Handle for removing a registered state listener.
  using ListenerId = std::uint64_t;

  virtual ~TransferPath() = default;

  virtual const std::string& name() const = 0;
  /// A path carries at most one item at a time (HTTP is sequential per
  /// connection in the paper's applications).
  virtual bool busy() const = 0;
  virtual const Item* currentItem() const = 0;

  /// Begins transferring `item` from byte `offset` (a checkpoint from an
  /// earlier attempt; 0 for a fresh fetch). `done` fires exactly once on
  /// completion or hard failure (never after abortCurrent()). Paths that do
  /// not supportsResume() may ignore the offset and move the whole item;
  /// they must then report bytes_moved accordingly.
  virtual void start(const Item& item, double offset, DoneFn done) = 0;

  /// Fresh fetch from offset 0.
  void start(const Item& item, DoneFn done) {
    start(item, 0.0, std::move(done));
  }

  /// Aborts the in-flight item, returning the bytes it had moved this
  /// attempt (salvageable prefix first — the engine decides how much of it
  /// survives as a checkpoint). No-op returning 0 when idle.
  virtual double abortCurrent() = 0;

  /// A-priori throughput guess, used to seed bandwidth estimators before
  /// any sample exists. Never a promise.
  virtual double nominalRateBps() const = 0;

  /// Whether start(item, offset) actually honors non-zero offsets (HTTP
  /// Range requests, the simulator's fluid models). When false the engine
  /// restarts items from 0 on this path and salvages nothing from it.
  virtual bool supportsResume() const { return false; }

  /// Fault-injection hook: silently freeze the in-flight item — no bytes
  /// move, no callback fires, busy() stays true — the class of failure only
  /// a watchdog can catch. Returns false when idle or unsupported.
  virtual bool stallCurrent() { return false; }

  /// Fault-injection hook: flip payload bits of the in-flight attempt, as
  /// an in-path middlebox rewriting the body would. The attempt still
  /// "completes" but its digest no longer matches. Returns false when idle
  /// or unsupported.
  virtual bool corruptCurrent() { return false; }

  /// Health: false once a hard failure has been observed (socket reset,
  /// device off the LAN, permit revoked). Dead paths are never dispatched
  /// to; in-flight work is aborted and re-queued by the engine.
  bool alive() const { return alive_; }

  /// Registers a liveness listener; engine, discovery supervision and fault
  /// injectors can all hold one concurrently. Returns an id for
  /// removeStateListener.
  ListenerId addStateListener(StateChangeFn cb) {
    const ListenerId id = ++next_listener_id_;
    listeners_.push_back({id, std::move(cb)});
    return id;
  }

  void removeStateListener(ListenerId id) {
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
      if (it->id == id) {
        listeners_.erase(it);
        return;
      }
    }
  }

  /// Flips liveness and notifies every listener. Called by implementations
  /// on internal hard failures, and externally by discovery supervision and
  /// fault injectors.
  void setAlive(bool alive, const std::string& reason = "") {
    if (alive == alive_) return;
    alive_ = alive;
    // Snapshot: a listener may add/remove listeners while being notified.
    const auto snapshot = listeners_;
    for (const auto& l : snapshot) {
      if (l.fn) l.fn(*this, alive_, reason);
    }
  }

 private:
  struct Listener {
    ListenerId id;
    StateChangeFn fn;
  };
  bool alive_ = true;
  std::vector<Listener> listeners_;
  ListenerId next_listener_id_ = 0;
};

inline const char* toString(ItemOutcome outcome) {
  switch (outcome) {
    case ItemOutcome::kCompleted: return "completed";
    case ItemOutcome::kFailed: return "failed";
    case ItemOutcome::kAborted: return "aborted";
    case ItemOutcome::kTimedOut: return "timed_out";
    case ItemOutcome::kCorrupt: return "corrupt";
  }
  return "unknown";
}

}  // namespace gol::core
