// Abstraction of one of the N paths a transaction can use: the ADSL line or
// a 3G device reached over the home Wi-Fi. The scheduler and engine operate
// purely on this interface, so the same policies drive the simulator and
// the real-socket prototype.
//
// Failure model (the in-the-wild pilot, Sec. 5): every attempt completes
// with an ItemResult carrying an explicit outcome instead of a bare success
// callback, and a path exposes a liveness bit (`alive()`) plus a state
// listener so hard failures — socket reset, the phone walking out of Wi-Fi
// range, a revoked permit — propagate as events rather than silent stalls.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "core/item.hpp"

namespace gol::core {

/// Terminal state of one item-on-path attempt.
enum class ItemOutcome {
  kCompleted,  ///< Payload delivered in full.
  kFailed,     ///< Hard error mid-transfer (reset, device gone).
  kAborted,    ///< Cancelled by the engine (duplicate race lost, detach).
  kTimedOut,   ///< Watchdog deadline expired without completion.
};

const char* toString(ItemOutcome outcome);

/// What one start() attempt produced. `bytes_moved` is whatever crossed the
/// wire during the attempt — payload when completed, waste otherwise.
struct ItemResult {
  ItemOutcome outcome = ItemOutcome::kCompleted;
  double bytes_moved = 0;
  std::string error;  ///< Human-readable cause for non-completed outcomes.

  static ItemResult completed(double bytes) {
    return ItemResult{ItemOutcome::kCompleted, bytes, {}};
  }
  static ItemResult failed(double bytes, std::string why) {
    return ItemResult{ItemOutcome::kFailed, bytes, std::move(why)};
  }
};

class TransferPath {
 public:
  /// Fires exactly once per start() (never after abortCurrent()), with the
  /// attempt's outcome. A kFailed result re-enters the engine's retry
  /// machinery; bytes_moved is accounted as waste.
  using DoneFn = std::function<void(const Item&, const ItemResult&)>;
  /// Liveness transition: `alive` flipped, `reason` says why ("left-lan",
  /// "permit-revoked", "fault:kill", ...).
  using StateChangeFn =
      std::function<void(TransferPath& path, bool alive, const std::string& reason)>;

  virtual ~TransferPath() = default;

  virtual const std::string& name() const = 0;
  /// A path carries at most one item at a time (HTTP is sequential per
  /// connection in the paper's applications).
  virtual bool busy() const = 0;
  virtual const Item* currentItem() const = 0;

  /// Begins transferring `item`; `done` fires exactly once on completion
  /// or hard failure (never after abortCurrent()).
  virtual void start(const Item& item, DoneFn done) = 0;

  /// Success-only convenience for callers that predate the failure model:
  /// adapts a bare completion callback (only invoked on kCompleted).
  void start(const Item& item, std::function<void(const Item&)> done) {
    start(item, DoneFn([cb = std::move(done)](const Item& it,
                                              const ItemResult& res) {
            if (res.outcome == ItemOutcome::kCompleted && cb) cb(it);
          }));
  }

  /// Aborts the in-flight item, returning the bytes it had moved (these
  /// count as waste when the abort is due to a duplicate completing
  /// elsewhere or a watchdog firing). No-op returning 0 when idle.
  virtual double abortCurrent() = 0;

  /// A-priori throughput guess, used to seed bandwidth estimators before
  /// any sample exists. Never a promise.
  virtual double nominalRateBps() const = 0;

  /// Fault-injection hook: silently freeze the in-flight item — no bytes
  /// move, no callback fires, busy() stays true — the class of failure only
  /// a watchdog can catch. Returns false when idle or unsupported.
  virtual bool stallCurrent() { return false; }

  /// Health: false once a hard failure has been observed (socket reset,
  /// device off the LAN, permit revoked). Dead paths are never dispatched
  /// to; in-flight work is aborted and re-queued by the engine.
  bool alive() const { return alive_; }

  /// Registers the (single) liveness listener; the engine owns it while a
  /// transaction runs. Replaces any previous listener.
  void onStateChange(StateChangeFn cb) { state_listener_ = std::move(cb); }

  /// Flips liveness and notifies the listener. Called by implementations on
  /// internal hard failures, and externally by discovery supervision and
  /// fault injectors.
  void setAlive(bool alive, const std::string& reason = "") {
    if (alive == alive_) return;
    alive_ = alive;
    if (state_listener_) state_listener_(*this, alive_, reason);
  }

 private:
  bool alive_ = true;
  StateChangeFn state_listener_;
};

inline const char* toString(ItemOutcome outcome) {
  switch (outcome) {
    case ItemOutcome::kCompleted: return "completed";
    case ItemOutcome::kFailed: return "failed";
    case ItemOutcome::kAborted: return "aborted";
    case ItemOutcome::kTimedOut: return "timed_out";
  }
  return "unknown";
}

}  // namespace gol::core
