#include "core/vod_session.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/deadline_scheduler.hpp"
#include "core/fault_injector.hpp"

namespace gol::core {

VodOutcome VodSession::run(const VodOptions& opts) {
  auto& sim = home_.simulator();
  VodOutcome out;

  if (opts.warm_start) home_.warmPhones();

  // 1. Fetch the extended-M3U playlist over the ADSL path (the client
  //    component intercepts it before engaging the scheduler, Sec. 4.1).
  const hls::SegmentedVideo video = hls::segmentVideo(opts.video);
  const std::string playlist_text = video.playlist.serialize();
  {
    telemetry::Span playlist_span(opts.trace, "playlist_fetch", "vod", 0);
    std::optional<double> done;
    http::TransferRequest req;
    // Rebuild the ADSL path directly for the playlist fetch.
    net::NetPath p = home_.adsl().downPath();
    p.links.push_back(home_.origin().serveLink());
    if (!home_.config().client_wired)
      p.links.push_back(home_.wifi().medium());
    req.path = p;
    req.bytes = static_cast<double>(playlist_text.size());
    req.on_done = [&done](double seconds) { done = seconds; };
    home_.http().transfer(std::move(req));
    while (!done && sim.step()) {
    }
    if (!done) throw std::logic_error("playlist fetch stalled");
    out.playlist_fetch_s = *done;
  }

  // 2. Prefetch all segments through the multipath scheduler.
  auto paths = home_.makePaths(TransferDirection::kDownload, opts.phones,
                               opts.use_adsl);
  std::vector<TransferPath*> raw;
  raw.reserve(paths.size());
  for (auto& p : paths) raw.push_back(p.get());

  std::unique_ptr<Scheduler> scheduler;
  if (opts.playout_aware) {
    std::vector<double> durations_s;
    for (const auto& s : video.playlist.segments)
      durations_s.push_back(s.duration_s);
    double aggregate = 0;
    for (const TransferPath* p : raw) aggregate += p->nominalRateBps();
    scheduler = std::make_unique<DeadlineScheduler>(
        DeadlineScheduler::hlsDeadlines(
            durations_s, video.segment_bytes,
            hls::prebufferSegmentsForFraction(durations_s,
                                              opts.prebuffer_fraction),
            aggregate));
  } else {
    scheduler = makeScheduler(opts.scheduler);
  }
  TransactionEngine engine(sim, raw, *scheduler, opts.engine);
  if (opts.trace)
    engine.instrument(&telemetry::Registry::global(), opts.trace);

  // Fault events are scheduled relative to "now" (the transaction start,
  // post playlist fetch) and disarmed before the paths die, so a plan with
  // a long horizon cannot fire into freed paths.
  FaultInjector injector(sim);
  if (opts.faults != nullptr) {
    for (TransferPath* p : raw) injector.addPath(p);
    injector.instrument(&telemetry::Registry::global());
    injector.arm(opts.faults->shiftedBy(sim.now()));
  }

  Transaction txn = makeTransaction(TransferDirection::kDownload,
                                    video.segment_bytes, "seg");
  out.txn = runTransaction(sim, engine, std::move(txn));
  injector.disarm();

  // 3. Player metrics.
  std::vector<double> durations;
  durations.reserve(video.playlist.segments.size());
  for (const auto& s : video.playlist.segments)
    durations.push_back(s.duration_s);
  out.prebuffer_segments =
      hls::prebufferSegmentsForFraction(durations, opts.prebuffer_fraction);

  // Segment arrivals relative to the initial user request include the
  // playlist round trip.
  std::vector<double> arrivals = out.txn.item_completion_s;
  for (double& a : arrivals) a += out.playlist_fetch_s;
  out.playout = hls::analyzePlayout(arrivals, durations,
                                    out.prebuffer_segments);
  out.prebuffer_time_s = out.playout.startup_delay_s;
  out.total_download_s = out.playlist_fetch_s + out.txn.duration_s;
  return out;
}

}  // namespace gol::core
