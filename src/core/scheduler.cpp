#include "core/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/greedy_scheduler.hpp"
#include "core/min_time_scheduler.hpp"
#include "core/opt_scheduler.hpp"
#include "core/round_robin_scheduler.hpp"

namespace gol::core {

void Scheduler::onTransactionStart(const Transaction&,
                                   const std::vector<double>&) {}

void Scheduler::onItemComplete(std::size_t, const Item&, double) {}

void Scheduler::onItemRequeued(std::size_t) {}

void Scheduler::onPathDown(std::size_t) {}

void Scheduler::onPathUp(std::size_t) {}

void Scheduler::onPathAdded(std::size_t, double) {}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry;
  return registry;
}

bool SchedulerRegistry::add(const std::string& name, Factory factory,
                            bool alias) {
  return factories_.emplace(name, Entry{std::move(factory), alias}).second;
}

bool SchedulerRegistry::known(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::unique_ptr<Scheduler> SchedulerRegistry::make(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("unknown scheduler policy: " + name +
                                " (available: " + namesJoined() + ")");
  }
  return it->second.factory();
}

std::vector<std::string> SchedulerRegistry::list() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : factories_) {
    if (!entry.alias) names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::string SchedulerRegistry::namesJoined() const {
  std::string joined;
  for (const std::string& n : list()) {
    if (!joined.empty()) joined += '|';
    joined += n;
  }
  return joined;
}

SchedulerRegistrar::SchedulerRegistrar(const std::string& name,
                                       SchedulerRegistry::Factory f,
                                       bool alias) {
  SchedulerRegistry::instance().add(name, std::move(f), alias);
}

namespace {
// Built-in policies. Registered here — not in their own TUs — because this
// TU is always pulled out of the static archive (it holds the Scheduler
// vtable anchor), while a registrar in, say, round_robin_scheduler.cpp
// would be silently dropped by the linker when nothing references that
// object file.
const SchedulerRegistrar kGreedy("greedy",
                                 [] { return std::make_unique<GreedyScheduler>(); });
const SchedulerRegistrar kGrd("grd",
                              [] { return std::make_unique<GreedyScheduler>(); },
                              /*alias=*/true);
const SchedulerRegistrar kGreedyNoResched("greedy-noresched", [] {
  return std::make_unique<GreedyScheduler>(false);
});
const SchedulerRegistrar kRr("rr",
                             [] { return std::make_unique<RoundRobinScheduler>(); });
const SchedulerRegistrar kMin("min",
                              [] { return std::make_unique<MinTimeScheduler>(); });
const SchedulerRegistrar kOpt("opt",
                              [] { return std::make_unique<OptScheduler>(); });
}  // namespace

std::unique_ptr<Scheduler> makeScheduler(const std::string& policy) {
  return SchedulerRegistry::instance().make(policy);
}

}  // namespace gol::core
