#include "core/scheduler.hpp"

#include <stdexcept>

#include "core/greedy_scheduler.hpp"
#include "core/min_time_scheduler.hpp"
#include "core/round_robin_scheduler.hpp"

namespace gol::core {

void Scheduler::onTransactionStart(const Transaction&,
                                   const std::vector<double>&) {}

void Scheduler::onItemComplete(std::size_t, const Item&, double) {}

std::unique_ptr<Scheduler> makeScheduler(const std::string& policy) {
  if (policy == "greedy" || policy == "grd")
    return std::make_unique<GreedyScheduler>();
  if (policy == "greedy-noresched")
    return std::make_unique<GreedyScheduler>(false);
  if (policy == "rr") return std::make_unique<RoundRobinScheduler>();
  if (policy == "min") return std::make_unique<MinTimeScheduler>();
  throw std::invalid_argument("unknown scheduler policy: " + policy);
}

}  // namespace gol::core
