#include "core/metro.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "access/dslam.hpp"
#include "cellular/sector.hpp"
#include "core/item.hpp"
#include "core/scenario.hpp"
#include "http/sim_client.hpp"
#include "http/sim_origin.hpp"
#include "net/flow_network.hpp"

namespace gol::core {

namespace {

// splitmix64: decorrelates structured (seed, tag, index) tuples into
// independent stream seeds without any cross-index coupling.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                  std::uint64_t b = 0) {
  return mix(mix(mix(seed ^ tag) ^ a) ^ b);
}

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
}

}  // namespace

MetroConfig::MetroConfig() : location(cell::evaluationLocations()[3]) {}

struct MetroSimulation::HouseholdState {
  Scenario* scenario = nullptr;
  std::size_t index = 0;    ///< Household index within the scenario.
  std::size_t area = 0;
  std::size_t area_slot = 0;  ///< Index into areas_[area] (this replica).
  sim::Rng rng{0};          ///< Arrival/size draws (workload stream).
  std::string item_prefix;  ///< Cached "<home>/i" (hot-path alloc saver).
  std::vector<double> sizes;  ///< Reused per-transaction draw buffer.
  std::uint64_t transactions = 0;
  std::uint64_t items_ok = 0;
  std::uint64_t items_failed = 0;
  double bytes = 0;
  double cell_bytes = 0;  ///< Cumulative bytes moved over cellular paths.
  double busy_s = 0;      ///< Summed transaction durations (sim time).
};

struct MetroSimulation::World {
  explicit World(sim::Simulator& sim) : sim(&sim), net(sim) {}

  sim::Simulator* sim;
  net::FlowNetwork net;
  http::SimHttpClient http{net};
  std::vector<std::unique_ptr<http::SimOrigin>> origins;
  std::vector<std::unique_ptr<cell::Location>> replicas;
  std::vector<Scenario> neighborhoods;
  /// Per-neighborhood (area, slot-in-areas_[area]) of its Location replica.
  std::vector<std::pair<std::size_t, std::size_t>> neighborhood_area;
  std::vector<HouseholdState> households;  ///< Stable after construction.
};

std::size_t MetroSimulation::shardOf(int n) const {
  return static_cast<std::size_t>(n) * cfg_.shards /
         static_cast<std::size_t>(cfg_.neighborhoods);
}

MetroSimulation::MetroSimulation(const MetroConfig& cfg) : cfg_(cfg) {
  if (cfg_.neighborhoods < 1 || cfg_.households_per_neighborhood < 1 ||
      cfg_.neighborhoods_per_area < 1) {
    throw std::invalid_argument("metro: counts must be >= 1");
  }
  if (cfg_.shards < 1 ||
      cfg_.shards > static_cast<std::size_t>(cfg_.neighborhoods)) {
    throw std::invalid_argument("metro: shards must be in [1, neighborhoods]");
  }

  sim::ShardedSimulator::Config scfg;
  scfg.shards = cfg_.shards;
  scfg.window_s = cfg_.window_s;
  sharded_ = std::make_unique<sim::ShardedSimulator>(scfg);

  worlds_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    worlds_.push_back(std::make_unique<World>(sharded_->shard(s)));
  }

  const int area_count =
      (cfg_.neighborhoods + cfg_.neighborhoods_per_area - 1) /
      cfg_.neighborhoods_per_area;
  areas_.resize(static_cast<std::size_t>(area_count));

  // One Location replica per (area, shard-that-touches-it). Created in
  // fixed (area, shard) order; each replica gets its own derived stream so
  // the layout is deterministic however the areas land on shards.
  std::vector<std::vector<cell::Location*>> replica_of(
      static_cast<std::size_t>(area_count),
      std::vector<cell::Location*>(cfg_.shards, nullptr));
  for (int n = 0; n < cfg_.neighborhoods; ++n) {
    const std::size_t s = shardOf(n);
    const std::size_t a =
        static_cast<std::size_t>(n / cfg_.neighborhoods_per_area);
    if (replica_of[a][s]) continue;
    World& w = *worlds_[s];
    // Streams are seeded by (area, replica ordinal), not shard id: a shard
    // count whose cuts align with area boundaries then reproduces the
    // single-replica layout bit-for-bit, so only genuinely split couplings
    // can move results across shard counts.
    w.replicas.push_back(std::make_unique<cell::Location>(
        w.net, cfg_.location,
        sim::Rng(mix(cfg_.seed, 0xA5EAu, a, areas_[a].size()))));
    w.replicas.back()->setAvailableFraction(cfg_.base_available_fraction);
    replica_of[a][s] = w.replicas.back().get();
    areas_[a].emplace_back(s, replica_of[a][s]);
  }

  // Per-neighborhood worlds: one origin + one DSLAM'd Scenario each.
  access::DslamConfig dslam_cfg;
  dslam_cfg.subscribers =
      static_cast<std::size_t>(cfg_.households_per_neighborhood);
  dslam_cfg.avg_sync_down_bps = cfg_.location.adsl_down_bps;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    worlds_[s]->neighborhoods.reserve(
        static_cast<std::size_t>(cfg_.neighborhoods));
  }
  for (int n = 0; n < cfg_.neighborhoods; ++n) {
    const std::size_t s = shardOf(n);
    const std::size_t a =
        static_cast<std::size_t>(n / cfg_.neighborhoods_per_area);
    World& w = *worlds_[s];
    const std::string prefix = "n" + std::to_string(n);
    w.origins.push_back(std::make_unique<http::SimOrigin>(
        w.net, prefix + "/origin", http::SimOriginConfig{}));
    w.neighborhoods.push_back(
        ScenarioBuilder()
            .dslam(dslam_cfg)
            .households(cfg_.households_per_neighborhood)
            .phonesPerHousehold(cfg_.phones_per_household)
            .scheduler(cfg_.scheduler)
            .engine(cfg_.engine)
            .metrics(nullptr)  // 20k engines would drown the global registry
            .lazyEngines(true)
            .seed(mix(cfg_.seed, 0x6E16u, static_cast<std::uint64_t>(n)))
            .namePrefix(prefix)
            .buildOn(*w.sim, w.net, *replica_of[a][s], *w.origins.back(),
                     w.http));
    std::size_t slot = 0;
    while (areas_[a][slot].first != s) ++slot;
    w.neighborhood_area.emplace_back(a, slot);
  }

  // Household driver state. Shards hold contiguous neighborhood ranges, so
  // walking shards in order and neighborhoods within them visits households
  // in global order — the workload stream of household g is seeded by g
  // alone and survives re-sharding unchanged.
  std::uint64_t gid = 0;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    World& w = *worlds_[s];
    w.households.reserve(
        w.neighborhoods.size() *
        static_cast<std::size_t>(cfg_.households_per_neighborhood));
    for (std::size_t k = 0; k < w.neighborhoods.size(); ++k) {
      Scenario& scen = w.neighborhoods[k];
      for (std::size_t i = 0; i < scen.householdCount(); ++i) {
        HouseholdState hh;
        hh.scenario = &scen;
        hh.index = i;
        hh.area = w.neighborhood_area[k].first;
        hh.area_slot = w.neighborhood_area[k].second;
        hh.rng = sim::Rng(mix(cfg_.seed, 0x4057u, gid++));
        w.households.push_back(std::move(hh));
      }
    }
  }

  window_cell_bytes_.resize(areas_.size());
  prev_cell_bytes_.resize(areas_.size());
  for (std::size_t a = 0; a < areas_.size(); ++a) {
    window_cell_bytes_[a].resize(areas_[a].size(), 0.0);
    prev_cell_bytes_[a].resize(areas_[a].size(), 0.0);
    has_split_area_ = has_split_area_ || areas_[a].size() > 1;
  }
}

MetroSimulation::~MetroSimulation() = default;

void MetroSimulation::startArrival(World& world, HouseholdState& hh) {
  const double think = hh.rng.exponential(1.0 / cfg_.mean_think_s);
  const double at = world.sim->now() + think;
  if (at >= cfg_.horizon_s) return;  // household retires
  world.sim->scheduleAt(at, [this, &world, &hh] {
    hh.sizes.resize(static_cast<std::size_t>(cfg_.items_per_txn));
    for (auto& sz : hh.sizes) {
      sz = std::max(512.0, hh.rng.exponential(1.0 / cfg_.mean_item_bytes));
    }
    Scenario::Household& house = hh.scenario->household(hh.index);
    if (hh.item_prefix.empty()) hh.item_prefix = house.name + "/i";
    TransactionEngine& engine =
        house.engine ? *house.engine : hh.scenario->rebuildEngine(hh.index);
    engine.run(
        makeTransaction(TransferDirection::kDownload, hh.sizes,
                        hh.item_prefix),
        [this, &world, &hh](TransactionResult r) {
          ++hh.transactions;
          const std::size_t total = r.per_item_attempts.size();
          hh.items_ok += static_cast<std::uint64_t>(total - r.failed_items);
          hh.items_failed += static_cast<std::uint64_t>(r.failed_items);
          hh.bytes += r.delivered_bytes;
          hh.busy_s += r.duration_s;
          for (const auto& [path, bytes] : r.per_path_bytes) {
            // Phone paths carry the device name; the ADSL path ends "adsl".
            if (path.size() < 4 || path.compare(path.size() - 4, 4, "adsl"))
              hh.cell_bytes += bytes;
          }
          // Defer (optional) teardown out of the engine's own completion
          // path, then draw the next arrival.
          world.sim->scheduleIn(0.0, [this, &world, &hh] {
            if (cfg_.release_engines) hh.scenario->releaseEngine(hh.index);
            startArrival(world, hh);
          });
        });
  });
}

void MetroSimulation::exchange(double /*window_end*/) {
  // Reconcile split areas: derate each replica by the cellular traffic its
  // foreign siblings moved during the window just ended (window-averaged —
  // instantaneous load at the barrier instant is almost always zero for
  // short transactions). Fixed (area, slot) iteration order keeps this
  // deterministic.
  // Area-aligned cuts have nothing to reconcile: skip the household sweep
  // entirely (the flagship 200-shard config lands here every window).
  if (!has_split_area_) return;
  for (auto& sums : window_cell_bytes_) {
    std::fill(sums.begin(), sums.end(), 0.0);
  }
  for (auto& wp : worlds_) {
    for (const auto& hh : wp->households) {
      if (areas_[hh.area].size() < 2) continue;
      window_cell_bytes_[hh.area][hh.area_slot] += hh.cell_bytes;
    }
  }
  const double capacity = cfg_.location.shared_dl_aggregate_bps +
                          cfg_.location.shared_ul_aggregate_bps;
  for (std::size_t a = 0; a < areas_.size(); ++a) {
    auto& replicas = areas_[a];
    auto& cur = window_cell_bytes_[a];
    auto& prev = prev_cell_bytes_[a];
    if (replicas.size() < 2) continue;
    double total_bps = 0;
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      total_bps += (cur[r] - prev[r]) * 8.0 / cfg_.window_s;
    }
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      const double foreign =
          total_bps - (cur[r] - prev[r]) * 8.0 / cfg_.window_s;
      const double avail = cfg_.base_available_fraction * capacity /
                           (capacity + foreign);
      replicas[r].second->setAvailableFraction(avail);
    }
  }
  for (std::size_t a = 0; a < areas_.size(); ++a) {
    prev_cell_bytes_[a] = window_cell_bytes_[a];
  }
}

MetroResult MetroSimulation::run(exec::ThreadPool& pool) {
  sharded_->setExchange([this](double edge) { exchange(edge); });

  // Seed every household's first arrival.
  for (auto& wp : worlds_) {
    for (auto& hh : wp->households) startArrival(*wp, hh);
  }

  const auto t0 = std::chrono::steady_clock::now();
  sharded_->run(pool, cfg_.horizon_s);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  MetroResult res;
  res.shard_count = cfg_.shards;
  res.sim_s = sharded_->now();
  res.windows = sharded_->windowsRun();
  res.events = sharded_->totalEvents();
  res.wall_s = wall;
  res.digest = 0xCBF29CE484222325ULL;
  for (const auto& st : sharded_->stats()) {
    res.shards.push_back({st.events, st.busy_s});
  }
  for (auto& wp : worlds_) {
    for (auto& hh : wp->households) {
      ++res.households;
      res.transactions += hh.transactions;
      res.items_ok += hh.items_ok;
      res.items_failed += hh.items_failed;
      res.bytes += hh.bytes;
      res.cell_bytes += hh.cell_bytes;
      fnv(res.digest, hh.transactions);
      fnv(res.digest, hh.items_ok);
      fnv(res.digest, static_cast<std::uint64_t>(std::llround(hh.bytes)));
      // Microsecond-folded durations make the digest sensitive to *rate*
      // perturbations (a derated sector shifts completion times long
      // before it changes any completion count).
      fnv(res.digest,
          static_cast<std::uint64_t>(std::llround(hh.busy_s * 1e6)));
    }
  }
  return res;
}

}  // namespace gol::core
