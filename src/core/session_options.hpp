// Options shared by every 3GOL session type (upload, VoD, ...). The
// concrete session option structs (UploadOptions, VodOptions) inherit from
// SessionOptions so path admission, scheduling and fault-injection knobs
// mean the same thing — and default the same way — across session kinds.
#pragma once

#include <string>

#include "core/engine.hpp"
#include "sim/fault_plan.hpp"

namespace gol::core {

struct SessionOptions {
  /// Multipath item-scheduling policy (SchedulerRegistry name).
  std::string scheduler = "greedy";
  /// Phone paths admitted alongside the ADSL line.
  int phones = 1;
  bool use_adsl = true;
  /// Start phones from connected mode ("H" runs) instead of idle ("3G").
  bool warm_start = false;
  /// Retry/watchdog/quarantine knobs for the session's transaction.
  EngineConfig engine;
  /// Optional fault schedule injected into the transaction's paths (times
  /// are relative to the transaction, i.e. start at ~0). Targeted events
  /// go by path name: "adsl", "phone0", "phone1", ...
  ///
  /// Ownership: NON-owning. The plan must outlive the session run; the
  /// session never copies or frees it. Benches typically keep the plan on
  /// the stack next to the session object.
  const sim::FaultPlan* faults = nullptr;
};

}  // namespace gol::core
