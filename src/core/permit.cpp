#include "core/permit.hpp"

#include <algorithm>
#include <utility>

namespace gol::core {

PermitServer::PermitServer(
    sim::Simulator& sim, PermitConfig cfg,
    std::function<double(const std::string&)> utilization_probe)
    : sim_(sim), cfg_(cfg), probe_(std::move(utilization_probe)) {}

bool PermitServer::hasValidPermit(const std::string& device) const {
  auto it = granted_at_.find(device);
  return it != granted_at_.end() && sim_.now() - it->second <= cfg_.ttl_s;
}

bool PermitServer::requestPermit(const std::string& device) {
  if (hasValidPermit(device)) return true;
  if (suspended()) {
    ++denials_;
    return false;
  }
  const double util = probe_ ? probe_(device) : 0.0;
  if (util < cfg_.acceptance_threshold) {
    granted_at_[device] = sim_.now();
    ++grants_;
    return true;
  }
  granted_at_.erase(device);
  ++denials_;
  return false;
}

void PermitServer::revokeAll() { granted_at_.clear(); }

void PermitServer::suspendGrants(double seconds) {
  suspended_until_ = std::max(suspended_until_, sim_.now() + seconds);
}

}  // namespace gol::core
