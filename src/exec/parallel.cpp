#include "exec/parallel.hpp"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

namespace gol::exec {

namespace {

struct Join {
  std::mutex m;
  std::condition_variable cv;
  std::size_t left;
  std::exception_ptr error;
};

}  // namespace

void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool.threadCount() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Tasks hold the join state by shared_ptr: the last finisher may still be
  // unlocking after the caller's wait returns and the frame unwinds.
  auto join = std::make_shared<Join>();
  join->left = n;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([join, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join->m);
        if (!join->error) join->error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join->m);
      if (--join->left == 0) join->cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(join->m);
  join->cv.wait(lock, [&] { return join->left == 0; });
  if (join->error) std::rethrow_exception(join->error);
}

}  // namespace gol::exec
