#include "exec/thread_pool.hpp"

#include <utility>

namespace gol::exec {

namespace {
std::atomic<unsigned> g_default_threads{0};
}  // namespace

unsigned ThreadPool::defaultThreads() {
  const unsigned override = g_default_threads.load(std::memory_order_relaxed);
  if (override != 0) return override;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

void ThreadPool::setDefaultThreads(unsigned n) {
  g_default_threads.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = defaultThreads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_m_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t w =
      next_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[w]->m);
    workers_[w]->q.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Taking the wake mutex orders the queued_ increment against a
    // worker's predicate check, closing the lost-wakeup window.
    std::lock_guard<std::mutex> lock(wake_m_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::tryPop(unsigned self, std::function<void()>& out) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.m);
    if (!own.q.empty()) {
      out = std::move(own.q.front());
      own.q.pop_front();
      return true;
    }
  }
  const unsigned n = threadCount();
  for (unsigned d = 1; d < n; ++d) {
    Worker& victim = *workers_[(self + d) % n];
    std::lock_guard<std::mutex> lock(victim.m);
    if (!victim.q.empty()) {
      out = std::move(victim.q.back());  // steal the cold end
      victim.q.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned self) {
  std::function<void()> task;
  for (;;) {
    if (tryPop(self, task)) {
      queued_.fetch_sub(1, std::memory_order_acquire);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_m_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace gol::exec
