// Deterministic fork-join helpers on top of ThreadPool.
//
// Determinism contract: `parallelMap`/`parallelMapIndexed` assign result i
// from input i, so the returned vector is identical to a serial loop as
// long as each per-item computation is self-contained (own Simulator, own
// Rng seeded from the item index — the repository-wide pattern). Thread
// count and scheduling affect wall-clock only, never values or order.
//
// Not reentrant: calling these from inside a pool task of the same pool
// would block a worker on its own pool's progress.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.hpp"

namespace gol::exec {

/// Runs fn(0), ..., fn(n-1) across the pool and returns once all have
/// completed. With a single-threaded pool (or n <= 1) it degenerates to an
/// inline serial loop. The first exception thrown by any item is rethrown
/// on the calling thread after the join.
void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Ordered map over indices: out[i] = fn(i). Results are written by index,
/// so ordering matches the serial loop exactly.
template <typename Fn>
auto parallelMapIndexed(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  static_assert(!std::is_same_v<R, bool>,
                "map to char/int instead: vector<bool> elements cannot be "
                "written concurrently");
  std::vector<R> out(n);
  parallelFor(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Ordered map over items: out[i] = fn(items[i]).
template <typename T, typename Fn>
auto parallelMap(ThreadPool& pool, const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  return parallelMapIndexed(pool, items.size(),
                            [&](std::size_t i) { return fn(items[i]); });
}

}  // namespace gol::exec
