// Work-stealing thread pool for the experiment harness.
//
// Each worker owns a deque: it pops its own work from the front (LIFO
// locality for the submitter's round-robin placement) and steals from the
// back of a peer's deque when its own runs dry. The pool executes tasks —
// it makes no ordering promises; deterministic output is the job of the
// parallelFor/parallelMap layer, which assigns results by index.
//
// Simulations stay single-threaded: a pool task typically builds its own
// Simulator/FlowNetwork, runs it to completion, and returns a value.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gol::exec {

class ThreadPool {
 public:
  /// `threads == 0` resolves to defaultThreads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `task` for execution on some worker. Thread-safe.
  void submit(std::function<void()> task);

  /// Process-wide default worker count: hardware_concurrency() unless
  /// overridden (the CLI's --jobs flag lands here).
  static unsigned defaultThreads();
  static void setDefaultThreads(unsigned n);

 private:
  struct Worker {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  void workerLoop(unsigned self);
  bool tryPop(unsigned self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_m_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> next_{0};
};

}  // namespace gol::exec
