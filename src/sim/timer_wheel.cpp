#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace gol::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TimerWheel::TimerWheel(Simulator& sim, double resolution_s)
    : sim_(sim),
      res_(resolution_s > 0 ? resolution_s : kDefaultResolutionS),
      inv_res_(1.0 / res_) {
  for (auto& b : buckets_) b = kNil;
  cursor_ = tickOf(sim_.now());
}

TimerWheel::~TimerWheel() {
  if (alarm_armed_) sim_.cancel(alarm_);
}

std::int32_t TimerWheel::bucketFor(std::uint64_t tick) const {
  const std::uint64_t clamped = tick > cursor_ ? tick : cursor_;
  const std::uint64_t delta = clamped - cursor_;
  // Level = floor(log64(delta)): delta in [64^l, 64^(l+1)) lands at level
  // l, delta < 64 at level 0. One bit-scan instead of a level loop — this
  // sits on the arm fast path.
  const int l = delta < kSlots ? 0 : (std::bit_width(delta) - 1) / kSlotBits;
  if (l >= kLevels) return kFarBucket;
  return l * static_cast<std::int32_t>(kSlots) +
         static_cast<std::int32_t>((clamped >> (kSlotBits * l)) &
                                   (kSlots - 1));
}

std::uint32_t TimerWheel::allocCell() {
  if (!free_cells_.empty()) {
    const std::uint32_t c = free_cells_.back();
    free_cells_.pop_back();
    return c;
  }
  if ((cell_count_ & (kChunkSize - 1)) == 0) {
    cells_.push_back(std::make_unique<Cell[]>(kChunkSize));
  }
  return cell_count_++;
}

void TimerWheel::freeCell(std::uint32_t c) {
  Cell& cell = cellAt(c);
  cell.fn.reset();  // release captures immediately
  ++cell.gen;       // now even: any outstanding TimerId is stale
  cell.bucket = kNil;
  cell.prev = cell.next = kNil;
  free_cells_.push_back(c);
}

void TimerWheel::linkCell(std::uint32_t c, std::int32_t bucket) {
  Cell& cell = cellAt(c);
  cell.bucket = bucket;
  cell.prev = kNil;
  cell.next = buckets_[bucket];
  if (cell.next != kNil) cellAt(static_cast<std::uint32_t>(cell.next)).prev =
      static_cast<std::int32_t>(c);
  buckets_[bucket] = static_cast<std::int32_t>(c);
  if (bucket == kFarBucket) {
    ++far_count_;
  } else {
    ++level_count_[bucket >> kSlotBits];
    slot_mask_[bucket >> kSlotBits] |=
        std::uint64_t{1} << (bucket & (kSlots - 1));
  }
}

void TimerWheel::unlinkCell(std::uint32_t c) {
  Cell& cell = cellAt(c);
  if (cell.prev != kNil) {
    cellAt(static_cast<std::uint32_t>(cell.prev)).next = cell.next;
  } else {
    buckets_[cell.bucket] = cell.next;
  }
  if (cell.next != kNil) {
    cellAt(static_cast<std::uint32_t>(cell.next)).prev = cell.prev;
  }
  if (cell.bucket == kFarBucket) {
    --far_count_;
  } else {
    --level_count_[cell.bucket >> kSlotBits];
    if (buckets_[cell.bucket] == kNil)
      slot_mask_[cell.bucket >> kSlotBits] &=
          ~(std::uint64_t{1} << (cell.bucket & (kSlots - 1)));
  }
  cell.bucket = kNil;
  cell.prev = cell.next = kNil;
}

TimerWheel::TimerId TimerWheel::armAt(Time deadline, Task fn) {
  if (deadline < sim_.now()) deadline = sim_.now();
  const std::uint32_t c = allocCell();
  Cell& cell = cellAt(c);
  cell.fn = std::move(fn);
  cell.deadline = deadline;
  cell.seq = next_seq_++;
  cell.tick = tickOf(deadline);
  ++cell.gen;  // odd: armed
  linkCell(c, bucketFor(cell.tick));
  ++live_;
  if (!alarm_armed_ || deadline < alarm_at_) rearmAlarm(deadline);
  return (static_cast<TimerId>(c) + 1) << 32 | cell.gen;
}

TimerWheel::TimerId TimerWheel::armIn(Time delay, Task fn) {
  return armAt(sim_.now() + (delay > 0 ? delay : 0.0), std::move(fn));
}

void TimerWheel::cancel(TimerId id) noexcept {
  if (id == 0) return;
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > cell_count_) return;
  const std::uint32_t c = static_cast<std::uint32_t>(hi - 1);
  Cell& cell = cellAt(c);
  if (cell.gen != static_cast<std::uint32_t>(id) || (cell.gen & 1) == 0)
    return;  // already fired, cancelled, or recycled
  unlinkCell(c);
  freeCell(c);
  --live_;
  // The alarm is left alone (lazy): if this was the minimum it fires
  // spuriously once and re-targets.
}

void TimerWheel::rearmAlarm(double at) {
  if (alarm_armed_) sim_.cancel(alarm_);
  alarm_at_ = at;
  alarm_armed_ = true;
  alarm_ = sim_.scheduleAt(std::max(at, sim_.now()), [this] { onAlarm(); });
}

void TimerWheel::drainLevel0Slot(std::uint32_t slot, double now) {
  std::int32_t c = buckets_[slot];
  while (c != kNil) {
    Cell& cell = cellAt(static_cast<std::uint32_t>(c));
    const std::int32_t next = cell.next;
    if (cell.deadline <= now) {
      unlinkCell(static_cast<std::uint32_t>(c));
      due_.push_back({cell.deadline, cell.seq, std::move(cell.fn)});
      freeCell(static_cast<std::uint32_t>(c));
      --live_;
    }
    c = next;
  }
}

void TimerWheel::cascade(std::uint64_t at_tick) {
  std::uint64_t period = kSlots;
  for (int l = 1; l < kLevels; ++l, period <<= kSlotBits) {
    if (at_tick % period != 0) break;
    const std::int32_t b =
        l * static_cast<std::int32_t>(kSlots) +
        static_cast<std::int32_t>((at_tick >> (kSlotBits * l)) & (kSlots - 1));
    std::int32_t c = buckets_[b];
    buckets_[b] = kNil;
    slot_mask_[l] &= ~(std::uint64_t{1} << (b & (kSlots - 1)));
    while (c != kNil) {
      Cell& cell = cellAt(static_cast<std::uint32_t>(c));
      const std::int32_t next = cell.next;
      --level_count_[l];
      cell.bucket = kNil;
      cell.prev = cell.next = kNil;
      linkCell(static_cast<std::uint32_t>(c), bucketFor(cell.tick));
      ++cascaded_;
      c = next;
    }
  }
}

void TimerWheel::advanceTo(std::uint64_t target, double now) {
  for (;;) {
    drainLevel0Slot(cursor_ & (kSlots - 1), now);
    if (cursor_ >= target) return;
    std::uint64_t next = cursor_ + 1;
    if (level_count_[0] == 0) {
      // Nothing below the next cascade boundary: jump straight to the
      // first boundary that could repopulate level 0 (or to the target).
      std::uint64_t span = kSlots;
      int l = 1;
      while (l < kLevels && level_count_[l] == 0) {
        span <<= kSlotBits;
        ++l;
      }
      if (l == kLevels) {
        next = target;  // only far timers remain; collectFar handles them
      } else {
        const std::uint64_t boundary = (cursor_ / span + 1) * span;
        next = std::max(next, std::min(boundary, target));
      }
    }
    cursor_ = next;
    cascade(cursor_);
  }
}

void TimerWheel::collectFar(double now) {
  const std::uint64_t span = static_cast<std::uint64_t>(kSlots) *
                             kSlots * kSlots * kSlots * kSlots;
  std::int32_t c = buckets_[kFarBucket];
  while (c != kNil) {
    Cell& cell = cellAt(static_cast<std::uint32_t>(c));
    const std::int32_t next = cell.next;
    if (cell.deadline <= now) {
      unlinkCell(static_cast<std::uint32_t>(c));
      due_.push_back({cell.deadline, cell.seq, std::move(cell.fn)});
      freeCell(static_cast<std::uint32_t>(c));
      --live_;
    } else if (cell.tick < cursor_ + span) {
      unlinkCell(static_cast<std::uint32_t>(c));
      linkCell(static_cast<std::uint32_t>(c), bucketFor(cell.tick));
      ++cascaded_;
    }
    c = next;
  }
}

double TimerWheel::minLiveDeadline() const {
  // Exact minimum over live cells. Slot indices alias one ring out: a cell
  // a full span ahead at level l ((tick >> 6l) == (cursor >> 6l) + 64,
  // still delta < 64^(l+1)) shares a slot index with cells due in the
  // current ring, so "first non-empty slot from the cursor" is NOT the
  // level's minimum — an aliased far-future cell in an early slot would
  // shadow a near deadline in a later one. Every occupied slot must be
  // consulted; the occupancy masks keep that O(occupied slots + live),
  // and this only runs once per alarm, not per arm/cancel.
  double best = kInf;
  for (int l = 0; l < kLevels; ++l) {
    std::uint64_t m = slot_mask_[l];
    while (m != 0) {
      const int s = std::countr_zero(m);
      m &= m - 1;
      for (std::int32_t c = buckets_[l * static_cast<int>(kSlots) + s];
           c != kNil;) {
        const Cell& cell = cellAt(static_cast<std::uint32_t>(c));
        best = std::min(best, cell.deadline);
        c = cell.next;
      }
    }
  }
  for (std::int32_t c = buckets_[kFarBucket]; c != kNil;) {
    const Cell& cell = cellAt(static_cast<std::uint32_t>(c));
    best = std::min(best, cell.deadline);
    c = cell.next;
  }
  return best;
}

void TimerWheel::onAlarm() {
  alarm_armed_ = false;
  alarm_ = 0;
  const double now = sim_.now();
  advanceTo(tickOf(now), now);
  if (far_count_ > 0) collectFar(now);

  if (due_.empty()) {
    ++spurious_;
  } else {
    // Equal-deadline timers fire in arm order, matching the simulator's
    // (time, insertion-sequence) contract.
    std::sort(due_.begin(), due_.end(), [](const Due& a, const Due& b) {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.seq < b.seq;
    });
    // Move the batch out: callbacks may arm/cancel timers reentrantly
    // (including re-entering onAlarm via a nested sim step — not today,
    // but keep the scratch state clean).
    std::vector<Due> batch;
    batch.swap(due_);
    for (Due& d : batch) {
      ++fired_;
      d.fn();
    }
  }


  const double m = minLiveDeadline();
  if (m != kInf && (!alarm_armed_ || m < alarm_at_)) rearmAlarm(m);
}

}  // namespace gol::sim
