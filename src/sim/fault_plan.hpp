// Deterministic fault schedules for robustness testing (the conditions the
// paper's in-the-wild pilot hit: phones leaving Wi-Fi range, revoked
// permits, exhausted allowances, transfers that stall without an error).
//
// A FaultPlan is pure data — a time-ordered list of FaultEvents — built
// either from an explicit script or from a seeded random generator, so any
// failing run replays bit-for-bit from its seed. Binding a plan to live
// objects (paths, the onload controller) is core::FaultInjector's job; this
// layer has no dependency on them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gol::sim {

enum class FaultKind {
  kPathKill,      ///< Path goes dead and stays dead (phone powered off).
  kPathFlap,      ///< Path goes dead, recovers after `duration_s`.
  kStall,         ///< In-flight transfer freezes silently; no error event.
  kPermitRevoke,  ///< MNO revokes all permits and refuses new ones for
                  ///< `duration_s` (network-integrated mode).
  kCapExhaust,    ///< Target phone's daily allowance is spent (OTT mode).
  kCorrupt,       ///< In-flight payload is silently mangled (the cellular
                  ///< middlebox rewriting bodies); caught only by the
                  ///< engine's checksum verification.
};

const char* toString(FaultKind kind);

struct FaultEvent {
  double at_s = 0;        ///< Absolute sim time.
  FaultKind kind = FaultKind::kPathKill;
  std::string target;     ///< Path/phone name; empty = plan-wide (revoke).
  double duration_s = 0;  ///< Flap downtime / revoke suspension length.
};

/// Parameters for randomized plan generation.
struct RandomFaultSpec {
  double horizon_s = 120.0;     ///< Faults are drawn in [0, horizon_s).
  std::size_t event_count = 6;  ///< Number of faults to draw.
  /// Kinds to draw from (uniformly); empty = all kinds.
  std::vector<FaultKind> kinds;
  /// Targets to draw from (uniformly); must be non-empty for targeted
  /// kinds to be generated.
  std::vector<std::string> targets;
  double min_duration_s = 2.0;   ///< Flap/revoke duration lower bound.
  double max_duration_s = 20.0;  ///< ... and upper bound.
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Explicit schedule; events are sorted by time.
  static FaultPlan scripted(std::vector<FaultEvent> events);
  /// Seeded-random schedule: identical (seed, spec) -> identical plan.
  static FaultPlan randomized(std::uint64_t seed, const RandomFaultSpec& spec);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// The same plan with every event `dt` seconds later — rebases a plan
  /// written in transaction-relative time onto the current sim clock.
  FaultPlan shiftedBy(double dt) const;

  /// One-line human description ("kill:phone0@10 flap:phone1@20+5 ...").
  std::string describe() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Parses the CLI grammar: a comma-separated list of
///   <kind>:<target>@<time>[+<duration>]
/// with kinds kill|flap|stall|revoke|cap|corrupt (revoke takes no target:
/// "revoke@30" or "revoke@30+60"), or a randomized spec
///   "rand:seed=7[,n=6][,horizon=120][,targets=a;b]".
/// Throws std::invalid_argument with a usage hint on malformed input.
FaultPlan parseFaultPlan(const std::string& spec);

}  // namespace gol::sim
