// Seeded random-number façade. All stochastic behaviour in the repository
// draws through this class so experiments are reproducible from one seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace gol::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Derives an independent child stream; used to give each device/user its
  /// own stream so adding one does not perturb the others' draws.
  Rng fork();

  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);
  bool bernoulli(double p);
  double normal(double mean, double sd);
  /// Normal truncated to [lo, hi] by resampling (max 64 tries, then clamp).
  double truncNormal(double mean, double sd, double lo, double hi);
  double lognormal(double mu, double sigma);
  double exponential(double rate);
  /// Pareto with scale xm > 0 and shape a > 0 (heavy-tailed sizes).
  double pareto(double xm, double a);

  /// Lognormal parameterized by its *linear-space* mean and standard
  /// deviation — convenient when the paper reports mean/sd directly.
  double lognormalMeanSd(double mean, double sd);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  std::size_t weightedIndex(std::span<const double> weights);

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Converts a linear-space (mean, sd) pair into lognormal (mu, sigma).
struct LognormalParams {
  double mu;
  double sigma;
};
LognormalParams lognormalFromMeanSd(double mean, double sd);

}  // namespace gol::sim
