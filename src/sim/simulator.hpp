// Deterministic discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant fire in the order they were scheduled — this makes
// every run bit-reproducible for a given seed and call sequence.
//
// Hot-path design: each pending event's callable lives in a slot of a
// recycled slab (a `Task` with 64-byte inline storage, so typical lambdas
// never touch the heap), and the priority queue holds 24-byte POD entries
// (time, sequence, slot, generation). Cancellation bumps the slot's
// generation — O(1), no hashing, and the callable's captures are released
// immediately; the stale heap entry is skipped at pop time and compacted
// away once stale entries outnumber live ones. Memory is therefore bounded
// by the peak number of *live* events, not by the schedule/cancel volume.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/task.hpp"
#include "sim/units.hpp"
#include "telemetry/metrics.hpp"

namespace gol::sim {

/// Handle identifying a scheduled event; usable with Simulator::cancel.
/// Encodes (slot, generation); 0 is never a valid id.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId scheduleAt(Time at, Task fn);
  /// Schedules `fn` `delay` seconds from now (negative delays clamp to now).
  EventId scheduleIn(Time delay, Task fn);
  /// Cancels a pending event in O(1). Cancelling an already-fired or
  /// unknown id is a harmless no-op (the duplicate-abort path in the
  /// scheduler relies on it).
  void cancel(EventId id);

  /// Runs a single event. Returns false when the queue is exhausted.
  bool step();
  /// Runs until the queue is empty.
  void run();
  /// Runs all events with time <= t, then advances the clock to exactly t.
  void runUntil(Time t);

  std::size_t pendingEvents() const { return live_; }
  std::uint64_t processedEvents() const { return processed_; }
  /// Number of callable slots ever allocated — bounded by the peak count of
  /// concurrently pending events, regardless of schedule/cancel volume
  /// (regression hook for the tombstone-growth bug).
  std::size_t slotCapacity() const { return slot_count_; }

  /// Publishes `gol.sim.events_fired` and the `gol.sim.queue_depth` gauge
  /// into `registry` (nullptr detaches). Off by default: simulators are
  /// created per-test and most of them don't want shared-registry traffic.
  void instrument(telemetry::Registry* registry);

 private:
  struct Slot {
    Task fn;
    std::uint32_t gen = 0;  // odd while occupied, even while free
  };
  struct HeapEntry {
    Time at;
    std::uint64_t seq;   // insertion order: ties at equal time keep it
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Slots live in fixed 256-entry chunks so growth never relocates a
  // pending Task (stable addresses; no move-relocate storm on expansion).
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Slot& slotAt(std::uint32_t s) {
    return slots_[s >> kChunkShift][s & (kChunkSize - 1)];
  }
  const Slot& slotAt(std::uint32_t s) const {
    return slots_[s >> kChunkShift][s & (kChunkSize - 1)];
  }
  bool entryLive(const HeapEntry& e) const {
    return slotAt(e.slot).gen == e.gen;
  }
  void pushEntry(HeapEntry e);
  void popEntry();
  void compactIfStale();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  telemetry::Counter* events_fired_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  std::vector<HeapEntry> heap_;  // binary heap ordered by Later
  std::vector<std::unique_ptr<Slot[]>> slots_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace gol::sim
