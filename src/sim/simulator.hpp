// Deterministic discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant fire in the order they were scheduled — this makes
// every run bit-reproducible for a given seed and call sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/units.hpp"
#include "telemetry/metrics.hpp"

namespace gol::sim {

/// Handle identifying a scheduled event; usable with Simulator::cancel.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId scheduleAt(Time at, std::function<void()> fn);
  /// Schedules `fn` `delay` seconds from now (negative delays clamp to now).
  EventId scheduleIn(Time delay, std::function<void()> fn);
  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (the duplicate-abort path in the scheduler relies on it).
  void cancel(EventId id);

  /// Runs a single event. Returns false when the queue is exhausted.
  bool step();
  /// Runs until the queue is empty.
  void run();
  /// Runs all events with time <= t, then advances the clock to exactly t.
  void runUntil(Time t);

  std::size_t pendingEvents() const;
  std::uint64_t processedEvents() const { return processed_; }

  /// Publishes `gol.sim.events_fired` and the `gol.sim.queue_depth` gauge
  /// into `registry` (nullptr detaches). Off by default: simulators are
  /// created per-test and most of them don't want shared-registry traffic.
  void instrument(telemetry::Registry* registry);

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  telemetry::Counter* events_fired_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace gol::sim
