// Component-sharded simulation with conservative time-window sync.
//
// One metro-scale scenario does not fit a single event loop: the fluid
// network partitions into components (households x DSLAMs x cell sectors)
// that only interact at a few shared couplings, so each component group —
// a *shard* — gets its own deterministic Simulator and runs freely on a
// worker thread up to the next window edge. At every edge all shards
// rendezvous (a barrier), a serial exchange callback reconciles the
// cross-shard couplings (shared sector load, in the metro scenario), and
// the next window starts. This is classic conservative parallel
// discrete-event simulation with a fixed lookahead equal to the window:
// no shard ever observes another shard's state mid-window, so the
// execution is independent of thread scheduling.
//
// Determinism contract (the metro bench's byte-exactness rides on it):
//  - each shard's Simulator is bit-reproducible on its own;
//  - shards never touch each other's state inside a window (enforced by
//    construction: a shard's scenario objects reference only its own
//    Simulator/FlowNetwork);
//  - the exchange callback runs on the calling thread, between windows,
//    and iterates couplings in a fixed order.
// Under those rules the run is bit-exact across repetitions and across
// worker-pool sizes for a FIXED shard count. Changing the shard count
// moves couplings between the continuous (intra-shard) and windowed
// (cross-shard) regimes, so results across shard counts are only
// statistically equivalent — the tests/metro suite checks both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"
#include "sim/simulator.hpp"

namespace gol::sim {

class ShardedSimulator {
 public:
  struct Config {
    std::size_t shards = 1;
    /// Conservative sync window: cross-shard effects propagate with at
    /// most this much sim-time delay. Smaller = tighter coupling, more
    /// barriers; larger = cheaper, staler cross-shard state.
    double window_s = 1.0;
  };

  struct ShardStats {
    std::uint64_t events = 0;  ///< processedEvents() at the last barrier.
    double busy_s = 0;         ///< Wall seconds spent inside runUntil().
  };

  explicit ShardedSimulator(const Config& cfg);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::size_t shardCount() const { return shards_.size(); }
  Simulator& shard(std::size_t i) { return *shards_.at(i); }
  const Simulator& shard(std::size_t i) const { return *shards_.at(i); }
  double windowSeconds() const { return cfg_.window_s; }
  /// The last synchronized window edge (all shards are exactly here
  /// between windows; 0 before the first run()).
  double now() const { return now_; }
  std::size_t windowsRun() const { return windows_; }

  /// Serial cross-shard reconciliation, called at every window edge with
  /// all shards parked exactly at `window_end`. May freely mutate any
  /// shard's state (rate caps, background load, new events).
  void setExchange(std::function<void(double window_end)> fn) {
    exchange_ = std::move(fn);
  }
  /// Early-stop predicate evaluated after each exchange; return true to
  /// end the run before the horizon (e.g. "all transactions landed").
  void setDone(std::function<bool()> fn) { done_ = std::move(fn); }

  /// Runs windows until `horizon_s`: each window executes every shard's
  /// runUntil(edge) across `pool` (one task per shard), then the exchange.
  /// Window edges are computed as start + k*window so repeated runs take
  /// bit-identical edge sequences. May be called repeatedly to extend the
  /// horizon.
  void run(exec::ThreadPool& pool, double horizon_s);

  /// Aggregate events processed across all shards.
  std::uint64_t totalEvents() const;
  const std::vector<ShardStats>& stats() const { return stats_; }

 private:
  Config cfg_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<ShardStats> stats_;
  std::function<void(double)> exchange_;
  std::function<bool()> done_;
  double now_ = 0;
  std::size_t windows_ = 0;
};

}  // namespace gol::sim
