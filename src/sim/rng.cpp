#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gol::sim {

Rng Rng::fork() {
  const std::uint64_t child_seed = gen_();
  return Rng(child_seed ^ 0x9e3779b97f4a7c15ULL);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(gen_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(std::clamp(p, 0.0, 1.0));
  return d(gen_);
}

double Rng::normal(double mean, double sd) {
  std::normal_distribution<double> d(mean, sd);
  return d(gen_);
}

double Rng::truncNormal(double mean, double sd, double lo, double hi) {
  for (int i = 0; i < 64; ++i) {
    const double x = normal(mean, sd);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(gen_);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> d(rate);
  return d(gen_);
}

double Rng::pareto(double xm, double a) {
  if (xm <= 0 || a <= 0) throw std::invalid_argument("pareto params");
  const double u = uniform(0.0, 1.0);
  return xm / std::pow(1.0 - u, 1.0 / a);
}

double Rng::lognormalMeanSd(double mean, double sd) {
  const auto p = lognormalFromMeanSd(mean, sd);
  return lognormal(p.mu, p.sigma);
}

std::size_t Rng::weightedIndex(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw std::invalid_argument("weightedIndex: no mass");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

LognormalParams lognormalFromMeanSd(double mean, double sd) {
  if (mean <= 0) throw std::invalid_argument("lognormal mean must be > 0");
  const double cv2 = (sd / mean) * (sd / mean);
  const double sigma2 = std::log(1.0 + cv2);
  return LognormalParams{std::log(mean) - 0.5 * sigma2, std::sqrt(sigma2)};
}

}  // namespace gol::sim
