// Hierarchical timer wheel over the discrete-event simulator.
//
// The engine arms one watchdog per attempt, one backoff per failed item and
// one probe per quarantined path — and cancels almost all of them before
// they fire. Scheduling those straight into the simulator heap costs
// O(log n) per arm and leaves a tombstone per cancel, so the event heap
// scales with in-flight items. The wheel absorbs that churn: arm, disarm
// and re-arm are O(1) slot-list operations (the same generation trick the
// simulator uses for cancel), and the simulator only ever sees ONE event
// per wheel — an alarm kept at the earliest live deadline.
//
// Hierarchy: kLevels levels of 64 slots; level l slots span 64^l ticks
// (tick = resolution, default ~1 ms). A timer lands in the coarsest level
// that still resolves its distance from the cursor and cascades toward
// level 0 as the cursor crosses slot boundaries — the classic
// hashed/hierarchical timing-wheel design. Deadlines past the whole span
// go to an overflow list that re-buckets lazily.
//
// Determinism contract (what the engine's bit-exactness rides on):
//  - timers fire at their EXACT armed deadline (the alarm is scheduled at
//    the minimum live deadline; ticks only bucket, they never quantize
//    firing times);
//  - timers due at the same instant fire in arm order;
//  - cancel is O(1) and releases the callable's captures immediately.
// One semantic difference from per-timer heap events: timers due at the
// same instant are extracted as a batch before the first callback runs, so
// a callback cancelling a sibling due at that same instant does not stop
// it firing. Callers that care (the engine does) guard callbacks with
// their own generation counters.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

namespace gol::sim {

class TimerWheel {
 public:
  /// Handle identifying an armed timer; 0 is never valid.
  using TimerId = std::uint64_t;

  static constexpr double kDefaultResolutionS = 1.0 / 1024.0;

  explicit TimerWheel(Simulator& sim,
                      double resolution_s = kDefaultResolutionS);
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms `fn` to run at absolute sim time `deadline` (clamped to now()).
  TimerId armAt(Time deadline, Task fn);
  /// Arms `fn` to run `delay` seconds from now (negative clamps to now).
  TimerId armIn(Time delay, Task fn);
  /// O(1). Cancelling a fired or unknown id is a harmless no-op.
  void cancel(TimerId id) noexcept;

  std::size_t armed() const { return live_; }
  double resolution() const { return res_; }

  // Introspection / regression hooks.
  std::uint64_t firedCount() const { return fired_; }
  std::uint64_t cascadedCount() const { return cascaded_; }
  /// Alarms that fired with nothing due (a cancelled minimum) — pure
  /// overhead, should stay rare relative to firedCount().
  std::uint64_t spuriousAlarms() const { return spurious_; }
  /// Timer cells ever allocated — bounded by the peak number of
  /// concurrently armed timers, regardless of arm/cancel volume.
  std::size_t cellCapacity() const { return cell_count_; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;  // 64
  static constexpr int kLevels = 5;  // span = 64^5 ticks (~12 days @ 1ms)
  static constexpr std::int32_t kNil = -1;
  static constexpr std::int32_t kFarBucket = kLevels * kSlots;

  struct Cell {
    Task fn;
    double deadline = 0;
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    std::uint32_t gen = 0;  // odd while armed, even while free
    std::int32_t bucket = kNil;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
  };

  struct Due {
    double deadline;
    std::uint64_t seq;
    Task fn;
  };

  // Cells live in fixed chunks so growth never relocates a pending Task.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Cell& cellAt(std::uint32_t c) {
    return cells_[c >> kChunkShift][c & (kChunkSize - 1)];
  }
  const Cell& cellAt(std::uint32_t c) const {
    return cells_[c >> kChunkShift][c & (kChunkSize - 1)];
  }

  std::uint64_t tickOf(double t) const {
    return t <= 0 ? 0 : static_cast<std::uint64_t>(t * inv_res_);
  }
  std::int32_t bucketFor(std::uint64_t tick) const;
  std::uint32_t allocCell();
  void freeCell(std::uint32_t c);
  void linkCell(std::uint32_t c, std::int32_t bucket);
  void unlinkCell(std::uint32_t c);
  void rearmAlarm(double at);
  void onAlarm();
  void advanceTo(std::uint64_t target, double now);
  void drainLevel0Slot(std::uint32_t slot, double now);
  void cascade(std::uint64_t at_tick);
  void collectFar(double now);
  double minLiveDeadline() const;

  Simulator& sim_;
  double res_;
  double inv_res_;
  std::uint64_t cursor_ = 0;     // wheel time, in ticks
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cascaded_ = 0;
  std::uint64_t spurious_ = 0;

  std::int32_t buckets_[kLevels * kSlots + 1];  // heads; +1 = far list
  /// Per-level occupancy bitmasks (bit s = slot s non-empty), so the
  /// alarm's min-deadline scan touches only occupied slots.
  std::uint64_t slot_mask_[kLevels] = {};
  std::size_t level_count_[kLevels] = {};
  std::size_t far_count_ = 0;

  std::vector<std::unique_ptr<Cell[]>> cells_;
  std::uint32_t cell_count_ = 0;
  std::vector<std::uint32_t> free_cells_;
  std::vector<Due> due_;  // scratch for one alarm batch

  EventId alarm_ = 0;
  double alarm_at_ = 0;
  bool alarm_armed_ = false;
};

}  // namespace gol::sim
