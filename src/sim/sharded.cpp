#include "sim/sharded.hpp"

#include <chrono>
#include <stdexcept>

#include "exec/parallel.hpp"

namespace gol::sim {

ShardedSimulator::ShardedSimulator(const Config& cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) throw std::invalid_argument("shards must be >= 1");
  if (cfg_.window_s <= 0) throw std::invalid_argument("window_s must be > 0");
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  stats_.resize(cfg_.shards);
}

void ShardedSimulator::run(exec::ThreadPool& pool, double horizon_s) {
  // Edges are start + k*window (not repeated addition), so a re-run and a
  // resumed run walk bit-identical edge sequences.
  const double start = now_;
  for (std::size_t k = 1; now_ < horizon_s; ++k) {
    double edge = start + static_cast<double>(k) * cfg_.window_s;
    if (edge > horizon_s) edge = horizon_s;
    exec::parallelFor(pool, shards_.size(), [&](std::size_t i) {
      const auto t0 = std::chrono::steady_clock::now();
      shards_[i]->runUntil(edge);
      stats_[i].busy_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    });
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      stats_[i].events = shards_[i]->processedEvents();
    }
    now_ = edge;
    ++windows_;
    if (exchange_) exchange_(edge);
    if (done_ && done_()) break;
  }
}

std::uint64_t ShardedSimulator::totalEvents() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->processedEvents();
  return total;
}

}  // namespace gol::sim
