#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sim/rng.hpp"

namespace gol::sim {

const char* toString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPathKill: return "kill";
    case FaultKind::kPathFlap: return "flap";
    case FaultKind::kStall: return "stall";
    case FaultKind::kPermitRevoke: return "revoke";
    case FaultKind::kCapExhaust: return "cap";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "unknown";
}

FaultPlan FaultPlan::scripted(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events_ = std::move(events);
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_s < b.at_s;
                   });
  return plan;
}

FaultPlan FaultPlan::randomized(std::uint64_t seed,
                                const RandomFaultSpec& spec) {
  static const FaultKind kAll[] = {FaultKind::kPathKill, FaultKind::kPathFlap,
                                   FaultKind::kStall, FaultKind::kPermitRevoke,
                                   FaultKind::kCapExhaust,
                                   FaultKind::kCorrupt};
  std::vector<FaultKind> kinds = spec.kinds;
  if (kinds.empty()) kinds.assign(std::begin(kAll), std::end(kAll));

  Rng rng(seed);
  std::vector<FaultEvent> events;
  events.reserve(spec.event_count);
  for (std::size_t i = 0; i < spec.event_count; ++i) {
    FaultEvent ev;
    ev.at_s = rng.uniform(0.0, spec.horizon_s);
    ev.kind = kinds[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(kinds.size()) - 1))];
    // Targeted kinds need a target to aim at; fall back to revoke (the one
    // plan-wide fault) when none were supplied.
    if (ev.kind != FaultKind::kPermitRevoke) {
      if (spec.targets.empty()) {
        ev.kind = FaultKind::kPermitRevoke;
      } else {
        ev.target = spec.targets[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(spec.targets.size()) - 1))];
      }
    }
    if (ev.kind == FaultKind::kPathFlap || ev.kind == FaultKind::kPermitRevoke)
      ev.duration_s = rng.uniform(spec.min_duration_s, spec.max_duration_s);
    events.push_back(std::move(ev));
  }
  return scripted(std::move(events));
}

FaultPlan FaultPlan::shiftedBy(double dt) const {
  FaultPlan shifted = *this;
  for (FaultEvent& ev : shifted.events_) ev.at_s += dt;
  return shifted;
}

std::string FaultPlan::describe() const {
  std::string out;
  char buf[64];
  for (const FaultEvent& ev : events_) {
    if (!out.empty()) out += ' ';
    out += toString(ev.kind);
    if (!ev.target.empty()) {
      out += ':';
      out += ev.target;
    }
    std::snprintf(buf, sizeof(buf), "@%g", ev.at_s);
    out += buf;
    if (ev.duration_s > 0) {
      std::snprintf(buf, sizeof(buf), "+%g", ev.duration_s);
      out += buf;
    }
  }
  return out;
}

namespace {

[[noreturn]] void badSpec(const std::string& token, const char* why) {
  throw std::invalid_argument(
      "bad fault spec '" + token + "': " + why +
      " (expected kind:target@time[+duration] with kind in "
      "kill|flap|stall|revoke|cap|corrupt, or rand:seed=N[,n=N]"
      "[,horizon=S][,targets=a;b])");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

double parseNumber(const std::string& token, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) badSpec(token, "trailing junk after number");
    return v;
  } catch (const std::invalid_argument&) {
    badSpec(token, "not a number");
  } catch (const std::out_of_range&) {
    badSpec(token, "number out of range");
  }
}

FaultPlan parseRandomSpec(const std::string& token) {
  RandomFaultSpec spec;
  std::uint64_t seed = 1;
  bool have_seed = false;
  for (const std::string& kv : split(token.substr(5), ',')) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) badSpec(token, "rand options need key=value");
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "seed") {
      seed = static_cast<std::uint64_t>(parseNumber(token, val));
      have_seed = true;
    } else if (key == "n") {
      spec.event_count = static_cast<std::size_t>(parseNumber(token, val));
    } else if (key == "horizon") {
      spec.horizon_s = parseNumber(token, val);
    } else if (key == "targets") {
      spec.targets = split(val, ';');
    } else {
      badSpec(token, "unknown rand option");
    }
  }
  if (!have_seed) badSpec(token, "rand needs seed=N");
  return FaultPlan::randomized(seed, spec);
}

}  // namespace

FaultPlan parseFaultPlan(const std::string& spec) {
  if (spec.rfind("rand:", 0) == 0) return parseRandomSpec(spec);

  std::vector<FaultEvent> events;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) continue;
    FaultEvent ev;
    const std::size_t at = token.find('@');
    if (at == std::string::npos) badSpec(token, "missing @time");
    std::string head = token.substr(0, at);
    std::string tail = token.substr(at + 1);
    const std::size_t plus = tail.find('+');
    if (plus != std::string::npos) {
      ev.duration_s = parseNumber(token, tail.substr(plus + 1));
      tail = tail.substr(0, plus);
    }
    ev.at_s = parseNumber(token, tail);

    const std::size_t colon = head.find(':');
    const std::string kind = colon == std::string::npos
                                 ? head
                                 : head.substr(0, colon);
    if (colon != std::string::npos) ev.target = head.substr(colon + 1);
    if (kind == "kill") {
      ev.kind = FaultKind::kPathKill;
    } else if (kind == "flap") {
      ev.kind = FaultKind::kPathFlap;
    } else if (kind == "stall") {
      ev.kind = FaultKind::kStall;
    } else if (kind == "revoke") {
      ev.kind = FaultKind::kPermitRevoke;
    } else if (kind == "cap") {
      ev.kind = FaultKind::kCapExhaust;
    } else if (kind == "corrupt") {
      ev.kind = FaultKind::kCorrupt;
    } else {
      badSpec(token, "unknown fault kind");
    }
    if (ev.kind != FaultKind::kPermitRevoke && ev.target.empty())
      badSpec(token, "this fault kind needs a :target");
    if (ev.kind == FaultKind::kPathFlap && ev.duration_s <= 0)
      badSpec(token, "flap needs +duration");
    events.push_back(std::move(ev));
  }
  return FaultPlan::scripted(std::move(events));
}

}  // namespace gol::sim
