// Unit helpers. Internally the simulator works in seconds, bytes, and
// bits-per-second; these conversions keep call sites readable and auditable.
#pragma once

namespace gol::sim {

/// Simulation time, in seconds.
using Time = double;

constexpr double kBitsPerByte = 8.0;

constexpr double kbps(double v) { return v * 1e3; }
constexpr double mbps(double v) { return v * 1e6; }
constexpr double gbps(double v) { return v * 1e9; }

constexpr double kilobytes(double v) { return v * 1e3; }
constexpr double megabytes(double v) { return v * 1e6; }
constexpr double gigabytes(double v) { return v * 1e9; }

constexpr double toMbps(double bps) { return bps / 1e6; }
constexpr double toMegabytes(double bytes) { return bytes / 1e6; }

constexpr double seconds(double v) { return v; }
constexpr double minutes(double v) { return v * 60.0; }
constexpr double hours(double v) { return v * 3600.0; }
constexpr double days(double v) { return v * 86400.0; }

/// Time to move `bytes` at `bps` (bits per second).
constexpr double transferTime(double bytes, double bps) {
  return bytes * kBitsPerByte / bps;
}

}  // namespace gol::sim
