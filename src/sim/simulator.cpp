#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gol::sim {

namespace {

EventId makeId(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(slot) << 32) | gen;
}

}  // namespace

EventId Simulator::scheduleAt(Time at, Task fn) {
  if (at < now_) at = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if ((slot_count_ & (kChunkSize - 1)) == 0) {
      slots_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    slot = slot_count_++;
  }
  Slot& s = slotAt(slot);
  s.fn = std::move(fn);
  ++s.gen;  // even -> odd: occupied. (Wraps after 2^32 reuses of one slot;
            // a stale id matching a wrapped generation is not a realistic
            // concern at simulation scales.)
  pushEntry(HeapEntry{at, next_seq_++, slot, s.gen});
  ++live_;
  return makeId(slot, s.gen);
}

EventId Simulator::scheduleIn(Time delay, Task fn) {
  if (delay < 0) delay = 0;
  return scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if ((gen & 1u) == 0 || slot >= slot_count_) return;
  Slot& s = slotAt(slot);
  if (s.gen != gen) return;  // already fired, cancelled, or recycled
  s.fn.reset();              // release captures now, not at pop time
  ++s.gen;                   // odd -> even: free
  free_slots_.push_back(slot);
  --live_;
  compactIfStale();
}

void Simulator::pushEntry(HeapEntry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::popEntry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

void Simulator::compactIfStale() {
  // Cancelled events leave 24-byte stale entries behind; sweep them once
  // they outnumber live ones so heap memory tracks the live event count.
  if (heap_.size() < 64 || heap_.size() < 2 * live_) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return !entryLive(e);
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    popEntry();
    Slot& s = slotAt(top.slot);
    if (s.gen != top.gen) continue;  // cancelled: skip the stale entry
    Task fn = std::move(s.fn);
    ++s.gen;
    free_slots_.push_back(top.slot);
    --live_;
    now_ = top.at;
    ++processed_;
    if (events_fired_) {
      events_fired_->inc();
      queue_depth_->set(static_cast<double>(pendingEvents()));
    }
    fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::runUntil(Time t) {
  if (t < now_) throw std::invalid_argument("runUntil into the past");
  while (!heap_.empty()) {
    if (!entryLive(heap_.front())) {
      popEntry();
      continue;
    }
    if (heap_.front().at > t) break;
    step();
  }
  now_ = t;
}

void Simulator::instrument(telemetry::Registry* registry) {
  if (registry == nullptr) {
    events_fired_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  events_fired_ = &registry->counter("gol.sim.events_fired");
  queue_depth_ = &registry->gauge("gol.sim.queue_depth");
}

}  // namespace gol::sim
