#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace gol::sim {

EventId Simulator::scheduleAt(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(fn)});
  return id;
}

EventId Simulator::scheduleIn(Time delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = top.at;
    ++processed_;
    if (events_fired_) {
      events_fired_->inc();
      queue_depth_->set(static_cast<double>(pendingEvents()));
    }
    top.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::runUntil(Time t) {
  if (t < now_) throw std::invalid_argument("runUntil into the past");
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > t) break;
    step();
  }
  now_ = t;
}

std::size_t Simulator::pendingEvents() const {
  return queue_.size() - cancelled_.size();
}

void Simulator::instrument(telemetry::Registry* registry) {
  if (registry == nullptr) {
    events_fired_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  events_fired_ = &registry->counter("gol.sim.events_fired");
  queue_depth_ = &registry->gauge("gol.sim.queue_depth");
}

}  // namespace gol::sim
