// Move-only callable with small-buffer optimization, tuned for the event
// queue: a typical simulator lambda (a `this` pointer plus a few captured
// values) lands in the 64-byte inline buffer, so scheduling an event does
// not allocate. Larger callables fall back to a single heap allocation.
#pragma once

#include <cstddef>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace gol::sim {

class Task {
 public:
  /// Inline storage size. Callables up to this size (and max_align_t
  /// alignment) that are nothrow-move-constructible are stored in place.
  static constexpr std::size_t kInlineSize = 64;

  Task() noexcept = default;
  Task(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Task> &&
                                        std::is_invocable_r_v<void, D&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVTable<D>;
    }
  }

  Task(Task&& other) noexcept { moveFrom(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() {
    if (vt_ == nullptr) throw std::bad_function_call();
    vt_->invoke(buf_);
  }

  /// Destroys the held callable (releasing its captures) and becomes empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  /// True when the held callable lives in the inline buffer (test hook).
  bool storedInline() const noexcept { return vt_ != nullptr && vt_->inline_stored; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-constructs the callable into `dst` and destroys the `src` copy.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_stored;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static void inlineInvoke(void* p) {
    (*std::launder(reinterpret_cast<D*>(p)))();
  }
  template <typename D>
  static void inlineRelocate(void* src, void* dst) noexcept {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }
  template <typename D>
  static void inlineDestroy(void* p) noexcept {
    std::launder(reinterpret_cast<D*>(p))->~D();
  }

  template <typename D>
  static D*& heapSlot(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }
  template <typename D>
  static void heapInvoke(void* p) {
    (*heapSlot<D>(p))();
  }
  template <typename D>
  static void heapRelocate(void* src, void* dst) noexcept {
    ::new (dst) D*(heapSlot<D>(src));
  }
  template <typename D>
  static void heapDestroy(void* p) noexcept {
    delete heapSlot<D>(p);
  }

  template <typename D>
  static constexpr VTable kInlineVTable{&inlineInvoke<D>, &inlineRelocate<D>,
                                        &inlineDestroy<D>, true};
  template <typename D>
  static constexpr VTable kHeapVTable{&heapInvoke<D>, &heapRelocate<D>,
                                      &heapDestroy<D>, false};

  void moveFrom(Task& other) noexcept {
    if (other.vt_ != nullptr) {
      vt_ = other.vt_;
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace gol::sim
