#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/greedy_scheduler.hpp"
#include "core/min_time_scheduler.hpp"
#include "core/round_robin_scheduler.hpp"
#include "core/scheduler.hpp"

namespace gol::core {
namespace {

Transaction twoMbItems(int n) {
  std::vector<double> sizes(static_cast<std::size_t>(n), 2e6);
  return makeTransaction(TransferDirection::kDownload, sizes);
}

struct ViewFixture {
  explicit ViewFixture(const Transaction& txn, std::size_t paths) {
    items.reset(txn.items);
    items.ensurePaths(paths);
    view.items = &items;
    view.path_count = paths;
  }

  void markInFlight(std::size_t idx, std::size_t path, double at) {
    items.setStatus(idx, ItemStatus::kInFlight);
    items.addCarrier(idx, path);
    items.setFirstAssignedAt(idx, at);
  }
  void markDone(std::size_t idx) {
    items.setStatus(idx, ItemStatus::kDone);
    items.clearCarriers(idx);
  }

  ItemTable items;
  EngineView view;
};

TEST(Factory, KnownPoliciesAndErrors) {
  EXPECT_EQ(makeScheduler("greedy")->name(), "greedy");
  EXPECT_EQ(makeScheduler("grd")->name(), "greedy");
  EXPECT_EQ(makeScheduler("greedy-noresched")->name(), "greedy-noresched");
  EXPECT_EQ(makeScheduler("rr")->name(), "rr");
  EXPECT_EQ(makeScheduler("min")->name(), "min");
  EXPECT_THROW(makeScheduler("bogus"), std::invalid_argument);
}

TEST(Greedy, TakesPendingInOrder) {
  const auto txn = twoMbItems(3);
  ViewFixture f(txn, 2);
  GreedyScheduler g;
  EXPECT_EQ(*g.nextItem(f.view, 0), 0u);
  f.markInFlight(0, 0, 0.0);
  EXPECT_EQ(*g.nextItem(f.view, 1), 1u);
}

TEST(Greedy, DuplicatesOldestInFlightWhenNonePending) {
  const auto txn = twoMbItems(3);
  ViewFixture f(txn, 3);
  GreedyScheduler g;
  f.markInFlight(0, 0, 1.0);
  f.markInFlight(1, 1, 5.0);
  f.markDone(2);
  // Path 2 idles with nothing pending: duplicate item 0 (oldest).
  EXPECT_EQ(*g.nextItem(f.view, 2), 0u);
}

TEST(Greedy, DuplicateTieBreaksToLowestIndex) {
  // Tie-break audit: two in-flight items first-assigned at the same
  // instant must resolve by the explicit (first_assigned_at, index) key,
  // not scan order.
  const auto txn = twoMbItems(3);
  ViewFixture f(txn, 3);
  GreedyScheduler g;
  f.markInFlight(0, 0, 2.0);
  f.markInFlight(1, 1, 2.0);
  f.markDone(2);
  EXPECT_EQ(*g.nextItem(f.view, 2), 0u);
  // And the lowest-index item is skipped when this path already has it.
  EXPECT_EQ(*g.nextItem(f.view, 0), 1u);
}

TEST(Greedy, NeverDuplicatesOntoOwnCarrier) {
  const auto txn = twoMbItems(2);
  ViewFixture f(txn, 2);
  GreedyScheduler g;
  f.markInFlight(0, 0, 1.0);
  f.markDone(1);
  // Path 0 already carries item 0; nothing else available -> idle.
  EXPECT_FALSE(g.nextItem(f.view, 0).has_value());
  // Path 1 may duplicate it.
  EXPECT_EQ(*g.nextItem(f.view, 1), 0u);
}

TEST(Greedy, NoReschedulingVariantIdlesInsteadOfDuplicating) {
  const auto txn = twoMbItems(2);
  ViewFixture f(txn, 2);
  GreedyScheduler g(false);
  f.markInFlight(0, 0, 1.0);
  f.markInFlight(1, 1, 2.0);
  EXPECT_FALSE(g.nextItem(f.view, 0).has_value());
  EXPECT_FALSE(g.nextItem(f.view, 1).has_value());
}

TEST(Greedy, AllDoneYieldsNothing) {
  const auto txn = twoMbItems(2);
  ViewFixture f(txn, 1);
  GreedyScheduler g;
  f.markDone(0);
  f.markDone(1);
  EXPECT_FALSE(g.nextItem(f.view, 0).has_value());
}

TEST(RoundRobin, DealsCyclically) {
  const auto txn = twoMbItems(5);
  ViewFixture f(txn, 2);
  RoundRobinScheduler rr;
  rr.onTransactionStart(txn, {1e6, 1e6});
  // Path 0 gets items 0, 2, 4; path 1 gets 1, 3.
  EXPECT_EQ(*rr.nextItem(f.view, 0), 0u);
  EXPECT_EQ(*rr.nextItem(f.view, 1), 1u);
  EXPECT_EQ(*rr.nextItem(f.view, 0), 2u);
  EXPECT_EQ(*rr.nextItem(f.view, 1), 3u);
  EXPECT_EQ(*rr.nextItem(f.view, 0), 4u);
  EXPECT_FALSE(rr.nextItem(f.view, 0).has_value());
  EXPECT_FALSE(rr.nextItem(f.view, 1).has_value());
}

TEST(RoundRobin, NeverStealsAcrossQueues) {
  const auto txn = twoMbItems(4);
  ViewFixture f(txn, 2);
  RoundRobinScheduler rr;
  rr.onTransactionStart(txn, {1e6, 1e6});
  EXPECT_EQ(*rr.nextItem(f.view, 0), 0u);
  EXPECT_EQ(*rr.nextItem(f.view, 0), 2u);
  // Path 0's queue is drained; path 1's items stay with path 1.
  EXPECT_FALSE(rr.nextItem(f.view, 0).has_value());
  EXPECT_EQ(*rr.nextItem(f.view, 1), 1u);
}

TEST(MinTime, BootstrapsRoundRobinThenUsesEstimates) {
  const auto txn = twoMbItems(6);
  ViewFixture f(txn, 2);
  MinTimeScheduler min;
  min.onTransactionStart(txn, {8e6, 1e6});  // path0 8x faster nominally
  // Bootstrap: one item to each path regardless of estimates.
  EXPECT_EQ(*min.nextItem(f.view, 0), 0u);
  f.markInFlight(0, 0, 0);
  EXPECT_EQ(*min.nextItem(f.view, 1), 1u);
  f.markInFlight(1, 1, 0);
  // After bootstrap, the fast path should receive the bulk.
  f.markDone(0);
  min.onItemComplete(0, f.items.item(0), 2.0);  // 2 MB in 2 s = 8 Mbps
  int to_fast = 0;
  for (int i = 0; i < 4; ++i) {
    const auto pick0 = min.nextItem(f.view, 0);
    if (pick0) {
      f.markInFlight(*pick0, 0, 1.0 * i);
      ++to_fast;
    }
  }
  EXPECT_GE(to_fast, 3);  // most of the remainder lands on the fast path
}

TEST(MinTime, EstimateTracksObservedGoodput) {
  const auto txn = twoMbItems(2);
  MinTimeScheduler min(0.75);
  min.onTransactionStart(txn, {1e6, 1e6});
  Item it;
  it.index = 0;
  it.bytes = 1e6;  // 8 Mbit
  min.onItemComplete(0, it, 1.0);  // observed 8 Mbps
  // est = 0.75*8e6 + 0.25*1e6 = 6.25e6
  EXPECT_NEAR(min.estimatedRateBps(0), 6.25e6, 1);
  EXPECT_NEAR(min.estimatedRateBps(1), 1e6, 1);
}

TEST(MinTime, EqualEstimatesTieBreakToLowestPath) {
  // Tie-break audit: symmetric nominal rates give identical estimates;
  // the explicit (estimate, path-id) key must send post-bootstrap items to
  // the lowest path index deterministically.
  const auto txn = twoMbItems(4);
  ViewFixture f(txn, 2);
  MinTimeScheduler min;
  min.onTransactionStart(txn, {2e6, 2e6});
  EXPECT_EQ(*min.nextItem(f.view, 0), 0u);  // bootstrap deal
  f.markInFlight(0, 0, 0);
  EXPECT_EQ(*min.nextItem(f.view, 1), 1u);
  f.markInFlight(1, 1, 0);
  // Post-bootstrap with tied estimates: items 2 and 3 both commit to
  // path 0; path 1 idles (MIN never steals).
  EXPECT_EQ(*min.nextItem(f.view, 0), 2u);
  f.markInFlight(2, 0, 1);
  EXPECT_FALSE(min.nextItem(f.view, 1).has_value());
  EXPECT_EQ(*min.nextItem(f.view, 0), 3u);
}

TEST(MinTime, SkipsStaleQueueEntries) {
  const auto txn = twoMbItems(3);
  ViewFixture f(txn, 2);
  MinTimeScheduler min;
  min.onTransactionStart(txn, {1e6, 1e6});
  f.markDone(0);  // completed elsewhere before path 0 ever asked
  const auto pick = min.nextItem(f.view, 0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_NE(*pick, 0u);
}

TEST(SchedulerRegistryTest, ListsCanonicalBuiltinsWithoutAliases) {
  const auto names = SchedulerRegistry::instance().list();
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("greedy"));
  EXPECT_TRUE(has("greedy-noresched"));
  EXPECT_TRUE(has("rr"));
  EXPECT_TRUE(has("min"));
  EXPECT_TRUE(has("opt"));
  EXPECT_FALSE(has("grd"));  // alias: constructible but not listed
  EXPECT_TRUE(SchedulerRegistry::instance().known("grd"));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SchedulerRegistryTest, UnknownNameErrorNamesTheAlternatives) {
  try {
    SchedulerRegistry::instance().make("bogus-policy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus-policy"), std::string::npos);
    EXPECT_NE(msg.find("greedy"), std::string::npos);  // lists what exists
  }
}

TEST(SchedulerRegistryTest, SelfRegistrationFromUserCode) {
  // Out-of-tree policies register the same way the builtins do.
  struct EchoScheduler : GreedyScheduler {
    std::string name() const override { return "test-echo"; }
  };
  const bool added = SchedulerRegistry::instance().add(
      "test-echo", [] { return std::make_unique<EchoScheduler>(); });
  // The suite may run this test body more than once (e.g. --gtest_repeat);
  // only the first add wins, and a duplicate is reported, not fatal.
  if (added) {
    EXPECT_EQ(SchedulerRegistry::instance().make("test-echo")->name(),
              "test-echo");
  }
  EXPECT_FALSE(SchedulerRegistry::instance().add(
      "test-echo", [] { return std::make_unique<EchoScheduler>(); }));
  EXPECT_TRUE(SchedulerRegistry::instance().known("test-echo"));
  const std::string joined = SchedulerRegistry::instance().namesJoined();
  EXPECT_NE(joined.find("test-echo"), std::string::npos);
  EXPECT_NE(joined.find('|'), std::string::npos);
}

}  // namespace
}  // namespace gol::core
