#include <gtest/gtest.h>

#include "cellular/base_station.hpp"
#include "cellular/sector.hpp"
#include "net/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gol::cell {
namespace {

using sim::mbps;

TEST(ClusterEfficiency, Table3Anchors) {
  // Downlink per-device means 1.61/1.33/1.16 normalized to 1/0.826/0.720.
  EXPECT_DOUBLE_EQ(clusterEfficiency(Direction::kDownlink, 1), 1.0);
  EXPECT_NEAR(clusterEfficiency(Direction::kDownlink, 3), 0.826, 1e-9);
  EXPECT_NEAR(clusterEfficiency(Direction::kDownlink, 5), 0.720, 1e-9);
  EXPECT_DOUBLE_EQ(clusterEfficiency(Direction::kUplink, 1), 1.0);
  EXPECT_NEAR(clusterEfficiency(Direction::kUplink, 3), 0.826, 1e-9);
  EXPECT_NEAR(clusterEfficiency(Direction::kUplink, 5), 0.596, 1e-9);
}

TEST(ClusterEfficiency, InterpolatesAndExtrapolates) {
  const double n2 = clusterEfficiency(Direction::kDownlink, 2);
  EXPECT_GT(n2, 0.826);
  EXPECT_LT(n2, 1.0);
  // Extrapolation continues the 3->5 slope but floors.
  EXPECT_LT(clusterEfficiency(Direction::kDownlink, 8),
            clusterEfficiency(Direction::kDownlink, 5));
  EXPECT_GE(clusterEfficiency(Direction::kDownlink, 100), 0.35);
  EXPECT_GE(clusterEfficiency(Direction::kUplink, 100), 0.25);
}

TEST(ClusterEfficiency, RejectsZero) {
  EXPECT_THROW(clusterEfficiency(Direction::kDownlink, 0),
               std::invalid_argument);
}

class SectorTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  net::FlowNetwork net_{sim_};
  SectorConfig cfg_;
};

TEST_F(SectorTest, SharedChannelCapacities) {
  Sector sec(net_, "s", cfg_);
  EXPECT_DOUBLE_EQ(sec.sharedLink(Direction::kDownlink)->capacityBps(),
                   cfg_.hsdpa_aggregate_bps);
  EXPECT_DOUBLE_EQ(sec.sharedLink(Direction::kUplink)->capacityBps(),
                   cfg_.hsupa_aggregate_bps);
}

TEST_F(SectorTest, RegisterPushesCapImmediately) {
  Sector sec(net_, "s", cfg_);
  double cap = 0;
  sec.registerTransfer(Direction::kDownlink, 1.0,
                       [&](double c) { cap = c; });
  EXPECT_NEAR(cap, cfg_.per_device_dl_base_bps, 1);
  EXPECT_EQ(sec.activeCount(Direction::kDownlink), 1);
}

TEST_F(SectorTest, SecondDeviceDegradesBoth) {
  Sector sec(net_, "s", cfg_);
  double cap1 = 0, cap2 = 0;
  sec.registerTransfer(Direction::kDownlink, 1.0, [&](double c) { cap1 = c; });
  const double solo = cap1;
  sec.registerTransfer(Direction::kDownlink, 1.0, [&](double c) { cap2 = c; });
  EXPECT_LT(cap1, solo);
  EXPECT_DOUBLE_EQ(cap1, cap2);
  EXPECT_DOUBLE_EQ(cap1, cfg_.per_device_dl_base_bps *
                             clusterEfficiency(Direction::kDownlink, 2));
}

TEST_F(SectorTest, UnregisterRestoresCap) {
  Sector sec(net_, "s", cfg_);
  double cap1 = 0;
  sec.registerTransfer(Direction::kDownlink, 1.0, [&](double c) { cap1 = c; });
  const auto h2 = sec.registerTransfer(Direction::kDownlink, 1.0, nullptr);
  EXPECT_LT(cap1, cfg_.per_device_dl_base_bps);
  sec.unregisterTransfer(Direction::kDownlink, h2);
  EXPECT_DOUBLE_EQ(cap1, cfg_.per_device_dl_base_bps);
  EXPECT_EQ(sec.activeCount(Direction::kDownlink), 1);
}

TEST_F(SectorTest, DirectionsAreIndependent) {
  Sector sec(net_, "s", cfg_);
  double dl_cap = 0;
  sec.registerTransfer(Direction::kDownlink, 1.0,
                       [&](double c) { dl_cap = c; });
  const double before = dl_cap;
  sec.registerTransfer(Direction::kUplink, 1.0, nullptr);
  EXPECT_DOUBLE_EQ(dl_cap, before);  // uplink arrival didn't touch downlink
}

TEST_F(SectorTest, QualityScalesCap) {
  Sector sec(net_, "s", cfg_);
  double good = 0, poor = 0;
  const auto h = sec.registerTransfer(Direction::kDownlink, 1.0,
                                      [&](double c) { good = c; });
  sec.unregisterTransfer(Direction::kDownlink, h);
  sec.registerTransfer(Direction::kDownlink, 0.5, [&](double c) { poor = c; });
  EXPECT_NEAR(poor / good, 0.5, 1e-9);
}

TEST_F(SectorTest, AvailableFractionScalesChannelAndCaps) {
  Sector sec(net_, "s", cfg_);
  double cap = 0;
  sec.registerTransfer(Direction::kUplink, 1.0, [&](double c) { cap = c; });
  const double full = cap;
  sec.setAvailableFraction(0.5);
  EXPECT_NEAR(cap, full * 0.5, 1);
  EXPECT_NEAR(sec.sharedLink(Direction::kUplink)->capacityBps(),
              cfg_.hsupa_aggregate_bps * 0.5, 1);
  EXPECT_DOUBLE_EQ(sec.availableFraction(), 0.5);
}

TEST_F(SectorTest, UtilizationReflectsBackgroundPlusOnload) {
  Sector sec(net_, "s", cfg_);
  sec.setAvailableFraction(0.6);  // 40% background
  EXPECT_NEAR(sec.utilization(Direction::kDownlink), 0.4, 1e-6);
  // Push a flow over the shared channel: utilization grows.
  net_.startFlow({{sec.sharedLink(Direction::kDownlink)},
                  sim::megabytes(100), mbps(2), nullptr});
  EXPECT_NEAR(sec.utilization(Direction::kDownlink),
              0.4 + 2.0 / 14.4, 1e-3);
}

TEST_F(SectorTest, ProspectiveCapSeesWouldBeCrowd) {
  Sector sec(net_, "s", cfg_);
  const double alone = sec.prospectiveCapBps(Direction::kDownlink, 1.0);
  sec.registerTransfer(Direction::kDownlink, 1.0, nullptr);
  const double second = sec.prospectiveCapBps(Direction::kDownlink, 1.0);
  EXPECT_LT(second, alone);
}

TEST(BaseStation, SectorsAndBackhaul) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  BaseStationConfig cfg;
  cfg.sectors = 3;
  cfg.backhaul_bps = mbps(40);
  BaseStation bs(net, "bs", cfg);
  EXPECT_EQ(bs.sectorCount(), 3u);
  EXPECT_DOUBLE_EQ(bs.backhaul(Direction::kDownlink)->capacityBps(), mbps(40));
  EXPECT_NE(bs.backhaul(Direction::kDownlink), bs.backhaul(Direction::kUplink));
  bs.setAvailableFraction(0.7);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(bs.sector(i).availableFraction(), 0.7);
}

TEST(BaseStation, RejectsZeroSectors) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  BaseStationConfig cfg;
  cfg.sectors = 0;
  EXPECT_THROW(BaseStation(net, "bs", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace gol::cell
