#include <gtest/gtest.h>

#include "core/home.hpp"
#include "core/upload_session.hpp"
#include "core/vod_session.hpp"
#include "sim/units.hpp"

namespace gol::core {
namespace {

using sim::mbps;

HomeConfig testHome(int phones = 2) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[3];  // loc4, slow ADSL
  cfg.phones = phones;
  cfg.seed = 7;
  cfg.device.quality_sigma = 0.1;
  cfg.device.jitter_sigma = 0.05;
  return cfg;
}

TEST(Home, BuildsEnvironment) {
  HomeEnvironment home(testHome());
  EXPECT_EQ(home.phoneCount(), 2u);
  EXPECT_NEAR(home.adsl().config().sync_down_bps, 6.2e6, 1);
  EXPECT_GT(home.wifi().goodputBps(), mbps(100));  // 802.11n default
}

TEST(Home, MakePathsComposition) {
  HomeEnvironment home(testHome());
  auto down = home.makePaths(TransferDirection::kDownload, 2);
  ASSERT_EQ(down.size(), 3u);  // ADSL + 2 phones
  EXPECT_EQ(down[0]->name(), "adsl");
  auto up_no_adsl = home.makePaths(TransferDirection::kUpload, 1, false);
  ASSERT_EQ(up_no_adsl.size(), 1u);
  EXPECT_THROW(home.makePaths(TransferDirection::kDownload, 5),
               std::invalid_argument);
}

TEST(Home, WarmPhonesForcesDch) {
  HomeEnvironment home(testHome());
  home.warmPhones();
  EXPECT_EQ(home.phone(0).rrc().state(), cell::RrcState::kDch);
  EXPECT_EQ(home.phone(1).rrc().state(), cell::RrcState::kDch);
}

TEST(VodSession, AdslOnlyBaselineMatchesLineRateBallpark) {
  HomeEnvironment home(testHome());
  VodSession session(home);
  VodOptions opts;
  opts.video.bitrate_bps = 484e3;  // Q3
  opts.phones = 0;
  const auto out = session.run(opts);
  // 12.1 MB over a 6.2 Mbps * 0.85 line plus per-segment overheads:
  // ideal ~18.4 s, with overheads 20-40 s.
  EXPECT_GT(out.total_download_s, 18.0);
  EXPECT_LT(out.total_download_s, 45.0);
  EXPECT_EQ(out.txn.item_completion_s.size(), 20u);
}

TEST(VodSession, OnloadingSpeedsUpDownload) {
  HomeEnvironment home(testHome());
  VodSession session(home);
  VodOptions adsl_only;
  adsl_only.phones = 0;
  VodOptions onloaded;
  onloaded.phones = 2;
  const double t_adsl = session.run(adsl_only).total_download_s;
  const double t_3gol = session.run(onloaded).total_download_s;
  EXPECT_LT(t_3gol, t_adsl);
}

TEST(VodSession, PrebufferTimeGrowsWithFraction) {
  HomeEnvironment home(testHome());
  VodSession session(home);
  VodOptions small;
  small.prebuffer_fraction = 0.2;
  small.phones = 1;
  VodOptions large;
  large.prebuffer_fraction = 1.0;
  large.phones = 1;
  const auto s = session.run(small);
  const auto l = session.run(large);
  EXPECT_EQ(s.prebuffer_segments, 4u);
  EXPECT_EQ(l.prebuffer_segments, 20u);
  EXPECT_LT(s.prebuffer_time_s, l.prebuffer_time_s);
}

TEST(VodSession, WarmStartNoSlowerThanIdle) {
  HomeEnvironment home(testHome());
  VodSession session(home);
  VodOptions idle;
  idle.phones = 1;
  idle.prebuffer_fraction = 0.2;
  VodOptions warm = idle;
  warm.warm_start = true;
  const double t_idle = session.run(idle).prebuffer_time_s;
  const double t_warm = session.run(warm).prebuffer_time_s;
  EXPECT_LE(t_warm, t_idle + 0.5);
}

TEST(UploadSession, PhotoSizesMatchMoments) {
  sim::Rng rng(3);
  const auto sizes = UploadSession::drawPhotoSizes(rng, 5000, 2.5e6, 0.74e6);
  double sum = 0;
  for (double s : sizes) sum += s;
  EXPECT_NEAR(sum / 5000 / 2.5e6, 1.0, 0.05);
}

TEST(UploadSession, OnloadingSpeedsUpUpload) {
  HomeEnvironment home(testHome());
  UploadSession session(home);
  UploadOptions adsl_only;
  adsl_only.photos = 10;
  adsl_only.phones = 0;
  UploadOptions onloaded;
  onloaded.photos = 10;
  onloaded.phones = 2;
  const double t_adsl = session.run(adsl_only).txn.duration_s;
  const double t_3gol = session.run(onloaded).txn.duration_s;
  // Uplink is where 3GOL shines (x1.5 .. x6 in the paper).
  EXPECT_LT(t_3gol, t_adsl / 1.3);
}

TEST(UploadSession, FramingAccounted) {
  HomeEnvironment home(testHome());
  UploadSession session(home);
  UploadOptions opts;
  opts.photos = 5;
  opts.phones = 1;
  const auto out = session.run(opts);
  EXPECT_GT(out.framing_bytes, 0.0);
  EXPECT_LT(out.framing_bytes, out.payload_bytes * 0.01);
  EXPECT_NEAR(out.txn.total_bytes, out.payload_bytes + out.framing_bytes, 1.0);
}

}  // namespace
}  // namespace gol::core
