#include <gtest/gtest.h>

#include <set>

#include "trace/onload_replay.hpp"

namespace gol::trace {
namespace {

DslamTrace tinyTrace(std::size_t subscribers, std::uint64_t seed = 5) {
  DslamTraceConfig cfg;
  cfg.subscribers = subscribers;
  sim::Rng rng(seed);
  return generateDslamTrace(cfg, rng);
}

TEST(OnloadReplay, BudgetsRespectedPerUser) {
  const auto trace = tinyTrace(300);
  ReplayConfig cfg;
  const auto res = replayOnload(trace, cfg);
  // Nobody can onload more than the daily budget; the total is bounded by
  // users * budget.
  std::set<std::uint32_t> users;
  for (const auto& r : trace.requests) users.insert(r.user);
  EXPECT_LE(res.onloaded_bytes,
            static_cast<double>(users.size()) * cfg.daily_budget_bytes + 1);
  EXPECT_GT(res.onloaded_bytes, 0.0);
  EXPECT_EQ(res.boosted_videos + res.skipped_videos, trace.requests.size());
}

TEST(OnloadReplay, LoadApproximatelyConservesOnloadedBytes) {
  // The load series is built from periodic rate samples, so conservation
  // holds to sampling accuracy.
  const auto trace = tinyTrace(200);
  const auto res = replayOnload(trace);
  EXPECT_NEAR(res.load_bytes.total(), res.onloaded_bytes,
              res.onloaded_bytes * 0.08 + 1);
}

TEST(OnloadReplay, UncontendedStretchIsUnity) {
  // A handful of users on fat towers: no queueing, stretch ~ 1.
  const auto trace = tinyTrace(20);
  ReplayConfig cfg;
  cfg.backhaul_bps = 1e9;
  const auto res = replayOnload(trace, cfg);
  ASSERT_GT(res.stretch.count(), 0u);
  EXPECT_NEAR(res.stretch.mean(), 1.0, 0.01);
  EXPECT_LT(res.peak_utilization, 0.2);
}

TEST(OnloadReplay, ContentionStretchesTransfers) {
  // Thousands of users on skinny towers: flows queue behind each other.
  const auto trace = tinyTrace(4000);
  ReplayConfig skinny;
  skinny.backhaul_bps = 10e6;
  const auto res = replayOnload(trace, skinny);
  EXPECT_GT(res.stretch.mean(), 1.2);
  EXPECT_GT(res.peak_utilization, 0.8);

  ReplayConfig fat;
  fat.backhaul_bps = 400e6;
  const auto relaxed = replayOnload(trace, fat);
  EXPECT_LT(relaxed.stretch.mean(), res.stretch.mean());
}

TEST(OnloadReplay, PeakUtilizationNeverExceedsOne) {
  // Fluid flows cannot exceed link capacity, so per-bin load is bounded by
  // what the towers can physically carry.
  const auto res = replayOnload(tinyTrace(3000));
  EXPECT_LE(res.peak_utilization, 1.0 + 1e-6);
}

TEST(OnloadReplay, SmallVideosAreIneligible) {
  DslamTrace trace;
  VideoRequest small;
  small.user = 1;
  small.time_s = 100;
  small.bytes = 100e3;  // below the 750 KB threshold
  trace.requests.push_back(small);
  trace.video_users = 1;
  const auto res = replayOnload(trace);
  EXPECT_EQ(res.boosted_videos, 0u);
  EXPECT_EQ(res.skipped_videos, 1u);
  EXPECT_DOUBLE_EQ(res.onloaded_bytes, 0.0);
}

}  // namespace
}  // namespace gol::trace
