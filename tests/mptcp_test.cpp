#include <gtest/gtest.h>

#include "core/mptcp.hpp"
#include "sim/units.hpp"

namespace gol::core {
namespace {

using sim::mbps;

TEST(MptcpModel, EqualSubflowsFullyUtilizedWhenStable) {
  MptcpSubflow a{mbps(5), 0.05, 0.0};
  MptcpSubflow b{mbps(5), 0.05, 0.0};
  const std::vector<MptcpSubflow> flows = {a, b};
  EXPECT_NEAR(mptcpAggregateRateBps(flows), mbps(10), 1);
}

TEST(MptcpModel, HighRttSubflowGetsQuadraticallyLess) {
  MptcpSubflow wired{mbps(5), 0.05, 0.0};
  MptcpSubflow wireless{mbps(5), 0.15, 0.0};
  const double r = mptcpSubflowRateBps(wireless, 0.05);
  EXPECT_NEAR(r, mbps(5) * (0.05 / 0.15) * (0.05 / 0.15), 1e3);
  (void)wired;
}

TEST(MptcpModel, VariabilitySuppressesWirelessSubflow) {
  MptcpSubflow stable{mbps(5), 0.05, 0.0};
  MptcpSubflow jittery{mbps(5), 0.05, 0.5};
  EXPECT_GT(mptcpSubflowRateBps(stable, 0.05),
            mptcpSubflowRateBps(jittery, 0.05) * 3);
}

TEST(MptcpModel, NeverWorseThanBestSinglePath) {
  // Even with pathological coupling, MPTCP falls back to its best subflow.
  MptcpSubflow good{mbps(8), 0.05, 0.0};
  MptcpSubflow awful{mbps(5), 0.4, 1.5};
  const std::vector<MptcpSubflow> flows = {good, awful};
  EXPECT_GE(mptcpAggregateRateBps(flows), mbps(8) - 1);
}

TEST(MptcpModel, UncoupledRecoversFullAggregation) {
  MptcpSubflow wired{mbps(2), 0.05, 0.0};
  MptcpSubflow wireless{mbps(3), 0.15, 0.5};
  const std::vector<MptcpSubflow> flows = {wired, wireless};
  MptcpParams uncoupled;
  uncoupled.coupling = 0.0;
  EXPECT_NEAR(mptcpAggregateRateBps(flows, uncoupled), mbps(5), 1e3);
  MptcpParams stock;  // coupling = 1
  EXPECT_LT(mptcpAggregateRateBps(flows, stock), mbps(3.5));
}

TEST(MptcpModel, RejectsBadRtt) {
  MptcpSubflow s{mbps(1), 0.0, 0.0};
  EXPECT_THROW(mptcpSubflowRateBps(s, 0.05), std::invalid_argument);
}

TEST(MptcpDownload, PaperOutcomeNoBenefitOverAdsl) {
  // The Sec. 5.2 observation: stock MPTCP over ADSL + volatile 3G gains
  // almost nothing, while 3GOL-style uncoupled use of the same paths does.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[3];
  cfg.phones = 1;
  cfg.device.quality_sigma = 0.45;
  cfg.device.jitter_sigma = 0.40;
  HomeEnvironment home(cfg);

  const double bytes = 10e6;
  const auto stock = mptcpDownload(home, bytes, 1);
  MptcpParams uncoupled;
  uncoupled.coupling = 0.0;
  const auto ideal = mptcpDownload(home, bytes, 1, uncoupled);
  const double adsl_only =
      bytes * 8 / home.adsl().goodputDownBps();

  // Stock CCC: within ~15% of ADSL alone ("no benefit").
  EXPECT_LT(stock.duration_s, adsl_only * 1.15);
  EXPECT_GT(stock.duration_s, adsl_only * 0.80);
  // Uncoupled bonding is clearly faster.
  EXPECT_LT(ideal.duration_s, stock.duration_s * 0.75);
}

TEST(MptcpDownload, RejectsTooManyPhones) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 1;
  HomeEnvironment home(cfg);
  EXPECT_THROW(mptcpDownload(home, 1e6, 3), std::invalid_argument);
}

}  // namespace
}  // namespace gol::core
