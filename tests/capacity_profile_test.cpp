#include <gtest/gtest.h>

#include <array>

#include "net/capacity_profile.hpp"
#include "sim/units.hpp"

namespace gol::net {
namespace {

DiurnalShape rampShape() {
  std::array<double, 24> h{};
  for (int i = 0; i < 24; ++i) h[static_cast<std::size_t>(i)] = i;
  return DiurnalShape(h);
}

TEST(DiurnalShape, AnchorsExact) {
  const auto s = rampShape();
  EXPECT_DOUBLE_EQ(s.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.at(sim::hours(5)), 5.0);
  EXPECT_DOUBLE_EQ(s.at(sim::hours(23)), 23.0);
}

TEST(DiurnalShape, InterpolatesBetweenHours) {
  const auto s = rampShape();
  EXPECT_DOUBLE_EQ(s.at(sim::hours(5.5)), 5.5);
  EXPECT_DOUBLE_EQ(s.at(sim::hours(2.25)), 2.25);
}

TEST(DiurnalShape, WrapsPastMidnight) {
  const auto s = rampShape();
  // 23:30 interpolates between hour 23 (23) and hour 0 (0).
  EXPECT_DOUBLE_EQ(s.at(sim::hours(23.5)), 11.5);
  EXPECT_DOUBLE_EQ(s.at(sim::hours(24)), 0.0);
  EXPECT_DOUBLE_EQ(s.at(sim::hours(29)), 5.0);   // next day
  EXPECT_DOUBLE_EQ(s.at(sim::hours(-1)), 23.0);  // negative wraps back
}

TEST(DiurnalShape, MaxValue) {
  EXPECT_DOUBLE_EQ(rampShape().maxValue(), 23.0);
}

TEST(CapacityDriver, AppliesDiurnalToLink) {
  sim::Simulator s;
  FlowNetwork net(s);
  Link* l = net.createLink("l", sim::mbps(10));
  const auto shape = rampShape();

  CapacityDriver::Options opts;
  opts.base_bps = sim::mbps(1);
  opts.update_interval_s = sim::hours(1);
  opts.noise_sd = 0.0;  // pure diurnal
  opts.diurnal = &shape;
  opts.day_offset_s = sim::hours(10);
  CapacityDriver driver(net, l, opts, sim::Rng(1));
  driver.start();
  // First tick happens immediately at t=0 -> hour 10.
  EXPECT_NEAR(l->capacityBps(), sim::mbps(10), 1);
  s.runUntil(sim::hours(2) + 1);
  EXPECT_NEAR(l->capacityBps(), sim::mbps(12), 1);
}

TEST(CapacityDriver, NoiseStaysAboveFloor) {
  sim::Simulator s;
  FlowNetwork net(s);
  Link* l = net.createLink("l", sim::mbps(10));
  CapacityDriver::Options opts;
  opts.base_bps = sim::mbps(10);
  opts.update_interval_s = 1.0;
  opts.noise_sd = 2.0;  // wild noise to hit the floor often
  opts.floor_fraction = 0.05;
  CapacityDriver driver(net, l, opts, sim::Rng(7));
  driver.start();
  for (int i = 0; i < 200; ++i) {
    s.runUntil(i + 0.5);
    EXPECT_GE(l->capacityBps(), sim::mbps(10) * 0.05 - 1e-6);
  }
}

TEST(CapacityDriver, StopHaltsUpdates) {
  sim::Simulator s;
  FlowNetwork net(s);
  Link* l = net.createLink("l", sim::mbps(10));
  CapacityDriver::Options opts;
  opts.base_bps = sim::mbps(5);
  opts.update_interval_s = 1.0;
  CapacityDriver driver(net, l, opts, sim::Rng(3));
  driver.start();
  s.runUntil(0.5);
  driver.stop();
  const double frozen = l->capacityBps();
  s.runUntil(20.0);
  EXPECT_DOUBLE_EQ(l->capacityBps(), frozen);
}

TEST(CapacityDriver, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    FlowNetwork net(s);
    Link* l = net.createLink("l", sim::mbps(10));
    CapacityDriver::Options opts;
    opts.base_bps = sim::mbps(10);
    opts.update_interval_s = 1.0;
    opts.noise_sd = 0.3;
    CapacityDriver d(net, l, opts, sim::Rng(seed));
    d.start();
    s.runUntil(50.0);
    return l->capacityBps();
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace gol::net
