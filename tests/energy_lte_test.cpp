#include <gtest/gtest.h>

#include "cellular/energy.hpp"
#include "cellular/location.hpp"
#include "core/vod_session.hpp"
#include "sim/units.hpp"

namespace gol::cell {
namespace {

TEST(EnergyMeter, IdleRadioDrawsAlmostNothing) {
  sim::Simulator sim;
  RrcMachine rrc(sim, RrcConfig{});
  EnergyMeter meter(sim, rrc);
  sim.scheduleAt(100.0, [] {});
  sim.run();
  EXPECT_NEAR(meter.joules(), 100.0 * 0.02, 1e-9);
  EXPECT_NEAR(meter.residencyS(RrcState::kIdle), 100.0, 1e-9);
}

TEST(EnergyMeter, DchResidencyDominates) {
  sim::Simulator sim;
  RrcMachine rrc(sim, RrcConfig{});
  EnergyMeter meter(sim, rrc);
  rrc.forceDch();
  // Hold DCH for 10 s with activity, then let it demote and idle out.
  for (int i = 1; i <= 10; ++i) {
    sim.scheduleAt(i, [&rrc] { rrc.notifyActivity(); });
  }
  sim.run();  // demotions fire after the last activity
  const RrcConfig cfg;
  EXPECT_NEAR(meter.residencyS(RrcState::kDch), 10.0 + cfg.dch_inactivity_s,
              1e-6);
  EXPECT_NEAR(meter.residencyS(RrcState::kFach), cfg.fach_inactivity_s, 1e-6);
  // Energy = 0.8 W * 15 s + 0.45 W * 12 s + idle remainder.
  EXPECT_NEAR(meter.joules(), 0.8 * 15 + 0.45 * 12, 0.05);
}

TEST(EnergyMeter, TailEnergyIsChargedAfterShortTransfer) {
  // The classic tail problem: a 1 s transfer pays 5 s DCH + 12 s FACH tail.
  sim::Simulator sim;
  RrcMachine rrc(sim, RrcConfig{});
  EnergyMeter meter(sim, rrc);
  rrc.requestDch(nullptr);
  sim.run();
  const double active = meter.residencyS(RrcState::kDch);
  EXPECT_NEAR(active, RrcConfig{}.dch_inactivity_s, 1e-6);
  EXPECT_GT(meter.joules(), 0.8 * 4.9);  // tail dominates
}

TEST(EnergyMeter, ResetClearsAccumulators) {
  sim::Simulator sim;
  RrcMachine rrc(sim, RrcConfig{});
  EnergyMeter meter(sim, rrc);
  rrc.forceDch();
  sim.runUntil(2.0);
  EXPECT_GT(meter.joules(), 1.0);
  meter.reset();
  EXPECT_NEAR(meter.joules(), 0.0, 1e-9);
}

TEST(Lte, UpgradeRaisesChannelsAndScales) {
  const auto base = evaluationLocations()[3];
  const auto lte = lteUpgrade(base);
  EXPECT_EQ(lte.name, base.name + "-lte");
  EXPECT_GT(lte.shared_dl_aggregate_bps, base.shared_dl_aggregate_bps * 4);
  EXPECT_GT(lte.dl_scale, base.dl_scale * 5);
  EXPECT_GT(lte.backhaul_bps, base.backhaul_bps);
}

TEST(Lte, DeviceConfigHasFastRrcAndLowRtt) {
  const auto cfg = lteDeviceConfig();
  EXPECT_LT(cfg.rrc.idle_to_dch_s, 0.5);
  EXPECT_LT(cfg.rtt_s, DeviceConfig{}.rtt_s);
  EXPECT_GT(cfg.max_dl_bps, 100e6);
}

TEST(Lte, PowerboostFarShorterThan3G) {
  // Sec. 2.3: with 4G "the period of powerboosting time might be extremely
  // short". Same home, same video, 3G vs LTE phones.
  core::HomeConfig cfg3g;
  cfg3g.location = evaluationLocations()[3];
  cfg3g.phones = 2;
  cfg3g.seed = 5;
  core::HomeEnvironment home3g(cfg3g);
  core::VodSession vod3g(home3g);

  core::HomeConfig cfg4g = cfg3g;
  cfg4g.location = lteUpgrade(cfg3g.location);
  cfg4g.device = lteDeviceConfig(cfg3g.device);
  core::HomeEnvironment home4g(cfg4g);
  core::VodSession vod4g(home4g);

  core::VodOptions opts;
  opts.video.bitrate_bps = 738e3;
  opts.prebuffer_fraction = 0.4;
  opts.phones = 2;
  const double t3g = vod3g.run(opts).prebuffer_time_s;
  const double t4g = vod4g.run(opts).prebuffer_time_s;
  EXPECT_LT(t4g, t3g * 0.55);
}

TEST(Lte, SharedChannelStillBindsAggregate) {
  // Ten LTE devices cannot exceed the 75 Mbps sector aggregate.
  sim::Simulator sim;
  net::FlowNetwork net(sim);
  auto spec = lteUpgrade(measurementLocations()[0]);
  spec.base_stations = 1;
  spec.sectors_per_bs = 1;
  Location loc(net, spec, sim::Rng(1));
  EXPECT_DOUBLE_EQ(
      loc.baseStation(0).sector(0).sharedLink(Direction::kDownlink)->capacityBps(),
      75e6);
}

}  // namespace
}  // namespace gol::cell
