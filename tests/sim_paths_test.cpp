// Direct tests of the simulator-backed TransferPath implementations (the
// glue between the scheduler layer and the network/cellular models).
#include <gtest/gtest.h>

#include <optional>

#include "core/home.hpp"
#include "core/sim_paths.hpp"
#include "sim/units.hpp"

namespace gol::core {
namespace {

using sim::mbps;
using sim::megabytes;

class SimPathsTest : public ::testing::Test {
 protected:
  SimPathsTest() {
    HomeConfig cfg;
    cfg.location = cell::evaluationLocations()[0];
    cfg.phones = 1;
    cfg.seed = 71;
    home_ = std::make_unique<HomeEnvironment>(cfg);
  }

  Item item(double bytes, std::uint32_t index = 0) {
    Item it;
    it.index = index;
    it.name = "it" + std::to_string(index);
    it.bytes = bytes;
    return it;
  }

  std::unique_ptr<HomeEnvironment> home_;
};

TEST_F(SimPathsTest, AdslPathLifecycle) {
  auto paths = home_->makePaths(TransferDirection::kDownload, 0);
  TransferPath& adsl = *paths[0];
  EXPECT_FALSE(adsl.busy());
  EXPECT_EQ(adsl.currentItem(), nullptr);
  EXPECT_GT(adsl.nominalRateBps(), 0.0);

  std::optional<Item> done;
  adsl.start(item(megabytes(1)),
             [&](const Item& it, const ItemResult&) {
               done = it;
             });
  EXPECT_TRUE(adsl.busy());
  ASSERT_NE(adsl.currentItem(), nullptr);
  EXPECT_EQ(adsl.currentItem()->bytes, megabytes(1));
  home_->simulator().run();
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(adsl.busy());
  EXPECT_EQ(done->index, 0u);
}

TEST_F(SimPathsTest, AdslWarmSecondTransferFaster) {
  auto paths = home_->makePaths(TransferDirection::kDownload, 0);
  TransferPath& adsl = *paths[0];
  auto& sim = home_->simulator();

  std::optional<double> first, second;
  const double t0 = sim.now();
  adsl.start(item(megabytes(0.5), 0),
             [&](const Item&, const ItemResult&) {
               first = sim.now() - t0;
               const double t1 = sim.now();
               adsl.start(item(megabytes(0.5), 1),
                          [&, t1](const Item&,
                                  const ItemResult&) {
                            second = sim.now() - t1;
                          });
             });
  sim.run();
  ASSERT_TRUE(first && second);
  EXPECT_LT(*second, *first);  // keep-alive skips the handshake
}

TEST_F(SimPathsTest, AdslAbortStopsCallbackAndReturnsBytes) {
  auto paths = home_->makePaths(TransferDirection::kDownload, 0);
  TransferPath& adsl = *paths[0];
  bool fired = false;
  adsl.start(item(megabytes(50)),
             [&](const Item&, const ItemResult&) {
               fired = true;
             });
  home_->simulator().runUntil(10.0);
  const double moved = adsl.abortCurrent();
  EXPECT_GT(moved, 0.0);
  EXPECT_FALSE(adsl.busy());
  home_->simulator().run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(adsl.abortCurrent(), 0.0);  // idempotent when idle
}

TEST_F(SimPathsTest, CellularPathPaysRrcFromIdle) {
  auto paths = home_->makePaths(TransferDirection::kDownload, 1);
  TransferPath& phone = *paths[1];
  auto& sim = home_->simulator();
  std::optional<double> cold;
  phone.start(item(megabytes(0.5)),
              [&](const Item&, const ItemResult&) {
                cold = sim.now();
              });
  sim.run();
  ASSERT_TRUE(cold.has_value());
  EXPECT_GT(*cold, home_->phone(0).config().rrc.idle_to_dch_s);
}

TEST_F(SimPathsTest, CellularAbortDuringPromotionIsClean) {
  auto paths = home_->makePaths(TransferDirection::kDownload, 1);
  TransferPath& phone = *paths[1];
  bool fired = false;
  phone.start(item(megabytes(1)),
              [&](const Item&, const ItemResult&) {
                fired = true;
              });
  // Abort before the RRC promotion delay elapses: nothing has moved.
  EXPECT_DOUBLE_EQ(phone.abortCurrent(), 0.0);
  home_->simulator().run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(phone.busy());
  EXPECT_EQ(home_->phone(0).activeTransferCount(), 0u);
}

TEST_F(SimPathsTest, CellularMeteredBytesTrackPayloadPlusOverhead) {
  auto paths = home_->makePaths(TransferDirection::kDownload, 1);
  TransferPath& phone = *paths[1];
  phone.start(item(megabytes(2)),
              [](const Item&, const ItemResult&) {});
  home_->simulator().run();
  // Metering sees wire bytes (payload / tcp efficiency).
  EXPECT_GE(home_->phone(0).meteredBytes(), megabytes(2));
  EXPECT_LT(home_->phone(0).meteredBytes(), megabytes(2) * 1.15);
}

TEST_F(SimPathsTest, UploadPathsUseUplinkResources) {
  auto paths = home_->makePaths(TransferDirection::kUpload, 1);
  auto& sim = home_->simulator();
  std::optional<double> adsl_t, phone_t;
  const double t0 = sim.now();
  paths[0]->start(item(megabytes(1), 0),
                  [&](const Item&, const ItemResult&) {
                    adsl_t = sim.now() - t0;
                  });
  paths[1]->start(item(megabytes(1), 1),
                  [&](const Item&, const ItemResult&) {
                    phone_t = sim.now() - t0;
                  });
  sim.run();
  ASSERT_TRUE(adsl_t && phone_t);
  // loc1 uplink is 0.83 Mbps: ~10 s for 1 MB; the phone should differ.
  EXPECT_GT(*adsl_t, 8.0);
  EXPECT_NE(*adsl_t, *phone_t);
}

}  // namespace
}  // namespace gol::core
