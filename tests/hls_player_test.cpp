#include <gtest/gtest.h>

#include "hls/player.hpp"

namespace gol::hls {
namespace {

TEST(Player, StartupIsMaxOfPrebufferArrivals) {
  const std::vector<double> arrivals = {1.0, 3.0, 2.0, 9.0};
  const std::vector<double> durs = {10, 10, 10, 10};
  const auto r = analyzePlayout(arrivals, durs, 3);
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 3.0);
}

TEST(Player, NoStallWhenDownloadOutpacesPlayback) {
  // All segments arrive within the first 4 s; playback consumes 10 s each.
  const std::vector<double> arrivals = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> durs = {10, 10, 10, 10};
  const auto r = analyzePlayout(arrivals, durs, 1);
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 1.0);
  EXPECT_DOUBLE_EQ(r.total_stall_s, 0.0);
  EXPECT_EQ(r.stall_events, 0u);
  EXPECT_DOUBLE_EQ(r.playback_end_s, 41.0);
}

TEST(Player, StallWhenSegmentLate) {
  // Segment 1 arrives at t=25 but is needed at t=11 (start 1 + 10 s).
  const std::vector<double> arrivals = {1.0, 25.0};
  const std::vector<double> durs = {10, 10};
  const auto r = analyzePlayout(arrivals, durs, 1);
  EXPECT_DOUBLE_EQ(r.total_stall_s, 14.0);
  EXPECT_EQ(r.stall_events, 1u);
  EXPECT_DOUBLE_EQ(r.playback_end_s, 35.0);
}

TEST(Player, FullPrebufferNeverStalls) {
  const std::vector<double> arrivals = {5.0, 50.0, 20.0, 90.0};
  const std::vector<double> durs = {10, 10, 10, 10};
  const auto r = analyzePlayout(arrivals, durs, 4);
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 90.0);
  EXPECT_DOUBLE_EQ(r.total_stall_s, 0.0);
}

TEST(Player, OutOfOrderArrivalsHandled) {
  // Multipath delivery completes segment 2 before segment 1.
  const std::vector<double> arrivals = {1.0, 8.0, 4.0};
  const std::vector<double> durs = {10, 10, 10};
  const auto r = analyzePlayout(arrivals, durs, 1);
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 1.0);
  EXPECT_DOUBLE_EQ(r.total_stall_s, 0.0);  // both ready before needed
}

TEST(Player, PrebufferClampedToSegmentCount) {
  const std::vector<double> arrivals = {1.0, 2.0};
  const std::vector<double> durs = {10, 10};
  const auto r = analyzePlayout(arrivals, durs, 99);
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 2.0);
}

TEST(Player, EmptyInputsYieldZeroes) {
  const auto r = analyzePlayout({}, {}, 3);
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(r.playback_end_s, 0.0);
}

TEST(Player, SizeMismatchThrows) {
  EXPECT_THROW(analyzePlayout({1.0}, {10, 10}, 1), std::invalid_argument);
}

TEST(PrebufferFraction, WholeSegmentsCoveringFraction) {
  const std::vector<double> durs(20, 10.0);  // 200 s total
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 0.20), 4u);
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 0.50), 10u);
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 1.00), 20u);
  // Fractions round up to whole segments.
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 0.21), 5u);
}

TEST(PrebufferFraction, AtLeastOneSegment) {
  const std::vector<double> durs(10, 10.0);
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 0.0), 1u);
  EXPECT_EQ(prebufferSegmentsForFraction({}, 0.5), 1u);
}

TEST(PrebufferFraction, UnevenDurations) {
  const std::vector<double> durs = {10, 10, 5};  // 25 s total
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 0.4), 1u);   // 10 >= 10
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 0.6), 2u);   // 20 >= 15
  EXPECT_EQ(prebufferSegmentsForFraction(durs, 0.9), 3u);
}

}  // namespace
}  // namespace gol::hls
