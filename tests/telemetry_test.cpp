// Telemetry subsystem: registry semantics, histogram bucketing, span
// recording under both clock domains, exporter shapes, and the engine-level
// contract that counters match TransactionResult fields.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/greedy_scheduler.hpp"
#include "fake_path.hpp"
#include "hls/player.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace gol;
using core::testing::FakePath;

TEST(Registry, CounterIdentityAndAccumulation) {
  telemetry::Registry reg;
  telemetry::Counter& a = reg.counter("gol.test.counter");
  a.inc();
  a.inc(2.5);
  EXPECT_DOUBLE_EQ(a.value(), 3.5);
  // Same (name, labels) resolves to the same instrument.
  EXPECT_EQ(&reg.counter("gol.test.counter"), &a);
  // Different labels are a different instrument.
  telemetry::Counter& b = reg.counter("gol.test.counter", {{"path", "3g0"}});
  EXPECT_NE(&b, &a);
  b.inc(7);
  EXPECT_DOUBLE_EQ(a.value(), 3.5);
  EXPECT_DOUBLE_EQ(b.value(), 7.0);
  // Label order does not matter for identity (Labels is an ordered map).
  telemetry::Counter& c1 =
      reg.counter("gol.test.multi", {{"a", "1"}, {"b", "2"}});
  telemetry::Counter& c2 =
      reg.counter("gol.test.multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&c1, &c2);
}

TEST(Registry, GaugeLastValue) {
  telemetry::Registry reg;
  telemetry::Gauge& g = reg.gauge("gol.test.gauge");
  g.set(10);
  g.set(4);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.5);
}

TEST(Registry, KindMismatchThrows) {
  telemetry::Registry reg;
  reg.counter("gol.test.instrument");
  EXPECT_THROW(reg.gauge("gol.test.instrument"), std::logic_error);
}

TEST(Registry, HistogramBucketing) {
  telemetry::Registry reg;
  telemetry::Histogram& h = reg.histogram("gol.test.hist", {1, 2, 4});
  // First bucket whose upper bound >= v; beyond the last bound -> overflow.
  h.observe(0.5);  // bucket 0 (le 1)
  h.observe(1.0);  // bucket 0 (le 1, inclusive)
  h.observe(1.5);  // bucket 1 (le 2)
  h.observe(4.0);  // bucket 2 (le 4)
  h.observe(99);   // overflow
  EXPECT_EQ(h.bucketCount(0), 2u);
  EXPECT_EQ(h.bucketCount(1), 1u);
  EXPECT_EQ(h.bucketCount(2), 1u);
  EXPECT_EQ(h.bucketCount(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99);
  // Re-registration returns the same histogram; new bounds are ignored.
  EXPECT_EQ(&reg.histogram("gol.test.hist", {7, 8, 9}), &h);
  EXPECT_THROW(reg.histogram("gol.test.unsorted", {3, 1}),
               std::invalid_argument);
}

TEST(Registry, CountersAreThreadSafe) {
  telemetry::Registry reg;
  telemetry::Counter& c = reg.counter("gol.test.mt");
  telemetry::Histogram& h = reg.histogram("gol.test.mt_hist", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.bucketCount(1), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Snapshot, ExportersCoverAllKinds) {
  telemetry::Registry reg;
  reg.counter("gol.test.bytes", {{"path", "3g0"}}).inc(1234);
  reg.gauge("gol.test.depth").set(7);
  reg.histogram("gol.test.lat", {0.001, 0.01}).observe(0.002);

  const telemetry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  const auto* bytes = snap.find("gol.test.bytes", {{"path", "3g0"}});
  ASSERT_NE(bytes, nullptr);
  EXPECT_DOUBLE_EQ(bytes->value, 1234);

  const std::string json = telemetry::toJson(snap);
  EXPECT_NE(json.find("\"schema\":\"gol.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gol.test.bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"3g0\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);

  const std::string lines = telemetry::toLineProtocol(snap);
  EXPECT_NE(lines.find("gol.test.bytes,path=3g0 value=1234"),
            std::string::npos);
  EXPECT_NE(lines.find("gol.test.depth value=7"), std::string::npos);
}

TEST(TraceRecorder, SpanNestingUnderManualClock) {
  double now = 0;
  telemetry::TraceRecorder rec(telemetry::Clock::manual(&now));
  const auto outer = rec.begin("outer", "test", 0);
  now = 1.0;
  const auto inner = rec.begin("inner", "test", 0);
  now = 2.0;
  rec.end(inner);
  now = 3.5;
  rec.end(outer, {{"k", "v"}});

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);  // end order: inner first
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 1e6);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_DOUBLE_EQ(events[1].ts_us, 0);
  EXPECT_DOUBLE_EQ(events[1].dur_us, 3.5e6);
  EXPECT_EQ(events[1].args.at("k"), "v");
  // The inner span nests strictly inside the outer one.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  // Ending twice or ending garbage is harmless.
  rec.end(inner);
  rec.end(12345);
  EXPECT_EQ(rec.completedSpans(), 2u);
}

TEST(TraceRecorder, RaiiSpanAndNullRecorderNoop) {
  double now = 0;
  telemetry::TraceRecorder rec(telemetry::Clock::manual(&now));
  {
    telemetry::Span s(&rec, "scoped", "test", 1);
    s.setArg("outcome", "ok");
    now = 0.25;
  }
  ASSERT_EQ(rec.completedSpans(), 1u);
  EXPECT_DOUBLE_EQ(rec.events()[0].dur_us, 0.25e6);
  EXPECT_EQ(rec.events()[0].args.at("outcome"), "ok");
  // A null recorder must be safe — instrumentation is optional.
  telemetry::Span noop(nullptr, "x", "y", 0);
  noop.setArg("a", "b");
}

TEST(TraceRecorder, WallClockTimestampsAreMonotone) {
  telemetry::TraceRecorder rec;  // wall clock
  const auto a = rec.begin("a", "test", 0);
  rec.end(a);
  const auto b = rec.begin("b", "test", 0);
  rec.end(b);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(TraceRecorder, SimClockSpansCarrySimTime) {
  sim::Simulator sim;
  telemetry::TraceRecorder rec(
      telemetry::Clock{[&sim] { return sim.now(); }});
  const auto span = rec.begin("transfer", "sim", 0);
  sim.scheduleAt(42.0, [&] { rec.end(span); });
  sim.run();
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 42e6);  // exactly, not wall time
}

TEST(TraceRecorder, ChromeJsonShape) {
  double now = 0;
  telemetry::TraceRecorder rec(telemetry::Clock::manual(&now));
  rec.setTrackName(0, "engine");
  rec.setTrackName(1, "adsl");
  const auto s = rec.begin("seg0", "engine", 1);
  now = 2.0;
  rec.end(s);
  const auto open = rec.begin("dangling", "engine", 0);
  (void)open;
  now = 3.0;

  const std::string json = rec.toChromeJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(json.find("\"name\":\"adsl\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"seg0\""), std::string::npos);
  // Open spans are flushed, flagged, and valid.
  EXPECT_NE(json.find("\"open\":\"true\""), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
}

TEST(PlayerTelemetry, StallCountersMatchPlayoutResult) {
  telemetry::Registry reg;
  // Segment 2 arrives late: exactly one stall of 3 s.
  const std::vector<double> arrivals{1.0, 2.0, 15.0, 16.0};
  const std::vector<double> durations{4.0, 4.0, 4.0, 4.0};
  const auto res = hls::analyzePlayout(arrivals, durations, 2, &reg);
  EXPECT_EQ(res.stall_events, 1u);
  EXPECT_DOUBLE_EQ(
      reg.counter("gol.hls.stall_events").value(),
      static_cast<double>(res.stall_events));
  EXPECT_DOUBLE_EQ(reg.counter("gol.hls.stall_seconds").value(),
                   res.total_stall_s);
  EXPECT_DOUBLE_EQ(reg.counter("gol.hls.playbacks").value(), 1.0);
  // Buffer-level histogram saw one sample per segment boundary.
  const auto snap = reg.snapshot();
  const auto* hist = snap.find("gol.hls.buffer_level");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, arrivals.size());
}

TEST(SimulatorTelemetry, EventsFiredAndQueueDepth) {
  telemetry::Registry reg;
  sim::Simulator sim;
  sim.instrument(&reg);
  for (int i = 0; i < 5; ++i) sim.scheduleAt(i, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(reg.counter("gol.sim.events_fired").value(), 5.0);
  EXPECT_DOUBLE_EQ(reg.gauge("gol.sim.queue_depth").value(), 0.0);
}

// --- Engine-level contract: counters must match TransactionResult. ------

struct EngineRun {
  core::TransactionResult result;
  telemetry::Registry registry;
  std::string policy;

  double counter(const std::string& name, const telemetry::Labels& l = {}) {
    return registry.counter(name, l).value();
  }
};

void runEngineTransaction(EngineRun& run, telemetry::TraceRecorder* trace,
                          std::size_t items) {
  sim::Simulator sim;
  FakePath fast(sim, "adsl", 8e6);
  FakePath slow(sim, "3g0", 1e6);
  core::GreedyScheduler scheduler;
  run.policy = scheduler.name();
  core::TransactionEngine engine(sim, {&fast, &slow}, scheduler);
  engine.instrument(&run.registry, trace);
  core::Transaction txn = core::makeTransaction(
      core::TransferDirection::kDownload,
      std::vector<double>(items, 1e6), "seg");
  std::optional<core::TransactionResult> result;
  engine.run(std::move(txn),
             [&result](core::TransactionResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  run.result = std::move(*result);
}

TEST(EngineTelemetry, CountersMatchTransactionResult) {
  EngineRun run;
  runEngineTransaction(run, nullptr, 7);
  const auto& res = run.result;

  // With a fast and a slow path, greedy duplicates at the tail.
  EXPECT_GT(res.duplicated_items, 0u);
  EXPECT_GT(res.wasted_bytes, 0.0);

  EXPECT_DOUBLE_EQ(run.counter("gol.engine.transactions"), 1.0);
  EXPECT_DOUBLE_EQ(run.counter("gol.engine.items_completed"), 7.0);
  EXPECT_DOUBLE_EQ(run.counter("gol.engine.items_duplicated"),
                   static_cast<double>(res.duplicated_items));
  EXPECT_DOUBLE_EQ(run.counter("gol.engine.wasted_bytes"), res.wasted_bytes);
  // Every dispatch ends as a win or an abort.
  EXPECT_DOUBLE_EQ(run.counter("gol.engine.items_dispatched"),
                   run.counter("gol.engine.items_completed") +
                       run.counter("gol.engine.items_aborted"));
  // Per-path byte counters mirror the result maps exactly.
  for (const auto& [path, bytes] : res.per_path_bytes) {
    EXPECT_DOUBLE_EQ(
        run.counter("gol.engine.path_bytes", {{"path", path}}), bytes)
        << path;
  }
  for (const auto& [path, bytes] : res.per_path_wasted_bytes) {
    EXPECT_DOUBLE_EQ(
        run.counter("gol.engine.path_wasted_bytes", {{"path", path}}), bytes)
        << path;
  }
  // Scheduler decision counters, labeled by policy.
  EXPECT_DOUBLE_EQ(
      run.counter("gol.scheduler.decisions", {{"policy", run.policy}}),
      run.counter("gol.engine.items_dispatched"));
  EXPECT_DOUBLE_EQ(
      run.counter("gol.scheduler.reschedules", {{"policy", run.policy}}),
      static_cast<double>(res.duplicated_items));
}

TEST(EngineTelemetry, AccountingInvariantAndWastedFraction) {
  EngineRun run;
  runEngineTransaction(run, nullptr, 5);
  const auto& res = run.result;

  double delivered = 0;
  for (const auto& [path, b] : res.per_path_bytes) delivered += b;
  double wasted = 0;
  for (const auto& [path, b] : res.per_path_wasted_bytes) wasted += b;
  // The engine enforces this at finish(); re-check the exposed fields.
  EXPECT_NEAR(delivered, res.total_bytes, 1e-6 * res.total_bytes);
  EXPECT_NEAR(wasted, res.wasted_bytes, 1e-6 * std::max(1.0, res.wasted_bytes));
  EXPECT_DOUBLE_EQ(
      res.wastedFraction(),
      res.wasted_bytes / (res.total_bytes + res.wasted_bytes));
  EXPECT_GT(res.wastedFraction(), 0.0);
  EXPECT_LT(res.wastedFraction(), 1.0);
}

TEST(EngineTelemetry, TraceSpansPerDispatchInSimTime) {
  sim::Simulator sim;
  telemetry::TraceRecorder rec(
      telemetry::Clock{[&sim] { return sim.now(); }});
  telemetry::Registry reg;
  FakePath fast(sim, "adsl", 8e6);
  FakePath slow(sim, "3g0", 1e6);
  core::GreedyScheduler scheduler;
  core::TransactionEngine engine(sim, {&fast, &slow}, scheduler);
  engine.instrument(&reg, &rec);
  std::optional<core::TransactionResult> result;
  engine.run(core::makeTransaction(core::TransferDirection::kDownload,
                                   std::vector<double>(6, 1e6), "seg"),
             [&result](core::TransactionResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());

  // One transaction span plus one span per dispatch, all closed.
  EXPECT_EQ(rec.openSpans(), 0u);
  EXPECT_DOUBLE_EQ(static_cast<double>(rec.completedSpans()),
                   reg.counter("gol.engine.items_dispatched").value() + 1);

  // Per track, spans are sequential in sim time (a path carries one item
  // at a time), and the transaction span covers the full run.
  std::map<int, double> last_end_us;
  double txn_dur_us = 0;
  for (const auto& e : rec.events()) {
    if (e.name == "transaction") {
      txn_dur_us = e.dur_us;
      continue;
    }
    auto it = last_end_us.find(e.track);
    if (it != last_end_us.end()) EXPECT_GE(e.ts_us, it->second - 1e-9);
    last_end_us[e.track] = std::max(
        it == last_end_us.end() ? 0.0 : it->second, e.ts_us + e.dur_us);
  }
  EXPECT_DOUBLE_EQ(txn_dur_us, result->duration_s * 1e6);

  const std::string json = rec.toChromeJson();
  EXPECT_NE(json.find("\"name\":\"transaction\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"seg0\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  // Track metadata for engine + both paths.
  EXPECT_NE(json.find("\"name\":\"adsl\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"3g0\""), std::string::npos);
}

}  // namespace
