#include <gtest/gtest.h>

#include <optional>

#include "net/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gol::net {
namespace {

using sim::mbps;
using sim::megabytes;

class FlowNetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  FlowNetwork net_{sim_};
};

TEST_F(FlowNetworkTest, SingleFlowCompletesAtLineRate) {
  Link* l = net_.createLink("l", mbps(8));
  std::optional<double> done_at;
  net_.startFlow({{l}, megabytes(1), 1e18,
                  [&](FlowId) { done_at = sim_.now(); }});
  sim_.run();
  ASSERT_TRUE(done_at.has_value());
  EXPECT_NEAR(*done_at, 1.0, 1e-9);  // 8 Mbit over 8 Mbps
}

TEST_F(FlowNetworkTest, TwoFlowsShareFairly) {
  Link* l = net_.createLink("l", mbps(8));
  std::optional<double> t1, t2;
  net_.startFlow({{l}, megabytes(1), 1e18, [&](FlowId) { t1 = sim_.now(); }});
  net_.startFlow({{l}, megabytes(1), 1e18, [&](FlowId) { t2 = sim_.now(); }});
  sim_.run();
  // Equal shares of 4 Mbps each until the first finishes... both equal size,
  // so both finish together at t = 2 s.
  EXPECT_NEAR(*t1, 2.0, 1e-9);
  EXPECT_NEAR(*t2, 2.0, 1e-9);
}

TEST_F(FlowNetworkTest, ShortFlowReleasesCapacityToLongFlow) {
  Link* l = net_.createLink("l", mbps(8));
  std::optional<double> t_small, t_big;
  net_.startFlow(
      {{l}, megabytes(0.5), 1e18, [&](FlowId) { t_small = sim_.now(); }});
  net_.startFlow(
      {{l}, megabytes(1.5), 1e18, [&](FlowId) { t_big = sim_.now(); }});
  sim_.run();
  // Phase 1: both at 4 Mbps; small (4 Mbit) done at t=1. Big has 8 Mbit
  // left, then runs at 8 Mbps -> one more second.
  EXPECT_NEAR(*t_small, 1.0, 1e-9);
  EXPECT_NEAR(*t_big, 2.0, 1e-9);
}

TEST_F(FlowNetworkTest, PerFlowCapLimitsBelowFairShare) {
  Link* l = net_.createLink("l", mbps(10));
  std::optional<double> t_capped, t_free;
  net_.startFlow(
      {{l}, megabytes(1), mbps(2), [&](FlowId) { t_capped = sim_.now(); }});
  net_.startFlow(
      {{l}, megabytes(1), 1e18, [&](FlowId) { t_free = sim_.now(); }});
  sim_.run();
  // Capped flow: 8 Mbit at 2 Mbps = 4 s. Free flow gets the rest (8 Mbps):
  // 1 s.
  EXPECT_NEAR(*t_free, 1.0, 1e-9);
  EXPECT_NEAR(*t_capped, 4.0, 1e-9);
}

TEST_F(FlowNetworkTest, MultiLinkPathBoundByTightestLink) {
  Link* a = net_.createLink("a", mbps(100));
  Link* b = net_.createLink("b", mbps(4));
  std::optional<double> done;
  net_.startFlow({{a, b}, megabytes(1), 1e18,
                  [&](FlowId) { done = sim_.now(); }});
  sim_.run();
  EXPECT_NEAR(*done, 2.0, 1e-9);
}

TEST_F(FlowNetworkTest, MaxMinAllocationAcrossTwoLinks) {
  // Classic max-min example: flows A (link1), B (link1+link2), C (link2).
  // link1 = 10, link2 = 4. B and C share link2 at 2 each; A gets 8.
  Link* l1 = net_.createLink("l1", mbps(10));
  Link* l2 = net_.createLink("l2", mbps(4));
  const FlowId a = net_.startFlow({{l1}, megabytes(100), 1e18, nullptr});
  const FlowId b = net_.startFlow({{l1, l2}, megabytes(100), 1e18, nullptr});
  const FlowId c = net_.startFlow({{l2}, megabytes(100), 1e18, nullptr});
  EXPECT_NEAR(net_.flowRateBps(a), mbps(8), 1);
  EXPECT_NEAR(net_.flowRateBps(b), mbps(2), 1);
  EXPECT_NEAR(net_.flowRateBps(c), mbps(2), 1);
}

TEST_F(FlowNetworkTest, AbortReturnsTransferredBytes) {
  Link* l = net_.createLink("l", mbps(8));
  const FlowId f = net_.startFlow({{l}, megabytes(10), 1e18, nullptr});
  sim_.runUntil(2.0);  // 2 s at 8 Mbps = 2 MB
  const double moved = net_.abortFlow(f);
  EXPECT_NEAR(moved, megabytes(2), 1.0);
  EXPECT_FALSE(net_.active(f));
  EXPECT_EQ(net_.abortFlow(f), 0.0);  // double-abort is a no-op
}

TEST_F(FlowNetworkTest, AbortFreesBandwidthForOthers) {
  Link* l = net_.createLink("l", mbps(8));
  const FlowId f1 = net_.startFlow({{l}, megabytes(100), 1e18, nullptr});
  std::optional<double> done;
  net_.startFlow({{l}, megabytes(1), 1e18, [&](FlowId) { done = sim_.now(); }});
  sim_.runUntil(1.0);  // flow2 moved 0.5 MB so far
  net_.abortFlow(f1);
  sim_.run();
  // Remaining 0.5 MB at full 8 Mbps: 0.5 s more.
  EXPECT_NEAR(*done, 1.5, 1e-9);
}

TEST_F(FlowNetworkTest, CapacityChangeRescalesRates) {
  Link* l = net_.createLink("l", mbps(8));
  std::optional<double> done;
  net_.startFlow({{l}, megabytes(2), 1e18, [&](FlowId) { done = sim_.now(); }});
  sim_.runUntil(1.0);  // 1 MB moved, 1 MB left
  net_.setLinkCapacity(l, mbps(4));
  sim_.run();
  EXPECT_NEAR(*done, 3.0, 1e-9);  // 8 Mbit left at 4 Mbps = 2 s more
}

TEST_F(FlowNetworkTest, ZeroCapacityStallsUntilRestored) {
  Link* l = net_.createLink("l", mbps(8));
  std::optional<double> done;
  net_.startFlow({{l}, megabytes(1), 1e18, [&](FlowId) { done = sim_.now(); }});
  sim_.runUntil(0.5);
  net_.setLinkCapacity(l, 0.0);
  sim_.runUntil(10.0);
  EXPECT_FALSE(done.has_value());
  net_.setLinkCapacity(l, mbps(8));
  sim_.run();
  EXPECT_NEAR(*done, 10.5, 1e-9);
}

TEST_F(FlowNetworkTest, SetFlowRateCapMidFlight) {
  Link* l = net_.createLink("l", mbps(8));
  std::optional<double> done;
  const FlowId f = net_.startFlow(
      {{l}, megabytes(2), 1e18, [&](FlowId) { done = sim_.now(); }});
  sim_.runUntil(1.0);
  net_.setFlowRateCap(f, mbps(2));
  sim_.run();
  EXPECT_NEAR(*done, 5.0, 1e-9);  // 8 Mbit left at 2 Mbps
}

TEST_F(FlowNetworkTest, ZeroByteFlowCompletesImmediately) {
  Link* l = net_.createLink("l", mbps(8));
  bool done = false;
  net_.startFlow({{l}, 0.0, 1e18, [&](FlowId) { done = true; }});
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim_.now(), 0.0);
}

TEST_F(FlowNetworkTest, EmptyPathUncappedFlowIsInstant) {
  bool done = false;
  net_.startFlow({{}, megabytes(5), 1e18, [&](FlowId) { done = true; }});
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(FlowNetworkTest, CompletionCallbackCanStartNewFlow) {
  Link* l = net_.createLink("l", mbps(8));
  std::optional<double> second_done;
  net_.startFlow({{l}, megabytes(1), 1e18, [&](FlowId) {
                    net_.startFlow({{l}, megabytes(1), 1e18, [&](FlowId) {
                                      second_done = sim_.now();
                                    }});
                  }});
  sim_.run();
  EXPECT_NEAR(*second_done, 2.0, 1e-9);
}

TEST_F(FlowNetworkTest, UtilizationAndLoadAccounting) {
  Link* l = net_.createLink("l", mbps(10));
  net_.startFlow({{l}, megabytes(100), mbps(4), nullptr});
  EXPECT_NEAR(net_.linkLoadBps(l), mbps(4), 1);
  EXPECT_NEAR(net_.linkUtilization(l), 0.4, 1e-6);
}

TEST_F(FlowNetworkTest, RejectsNegativeInputs) {
  Link* l = net_.createLink("l", mbps(1));
  EXPECT_THROW(net_.createLink("bad", -1.0), std::invalid_argument);
  EXPECT_THROW(net_.startFlow({{l}, -5.0, 1e18, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(net_.setLinkCapacity(l, -2.0), std::invalid_argument);
  EXPECT_THROW(net_.setLinkCapacity(nullptr, 2.0), std::invalid_argument);
}

TEST_F(FlowNetworkTest, ManyFlowsConservation) {
  Link* l = net_.createLink("l", mbps(12));
  for (int i = 0; i < 6; ++i)
    net_.startFlow({{l}, megabytes(100), 1e18, nullptr});
  double total = net_.linkLoadBps(l);
  EXPECT_NEAR(total, mbps(12), 10);
  EXPECT_EQ(net_.activeFlowCount(), 6u);
}

}  // namespace
}  // namespace gol::net
