// TimerWheel contract tests: exact-deadline firing (ticks bucket, never
// quantize), arm-order ties, O(1) lazy cancel, cascade correctness across
// level boundaries, the far-overflow list, and bounded cell growth. The
// fuzz at the bottom replays one random arm/cancel script through the
// wheel AND through plain per-timer Simulator events and requires the two
// firing logs to match entry-for-entry — the wheel must be observationally
// identical to the event queue it replaces, minus the heap churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"

namespace gol::sim {
namespace {

constexpr double kRes = TimerWheel::kDefaultResolutionS;

TEST(TimerWheelTest, FiresAtExactDeadlineNotTickQuantized) {
  Simulator sim;
  TimerWheel wheel(sim);
  double fired_at = -1.0;
  wheel.armAt(1.23456789, [&] { fired_at = sim.now(); });
  sim.run();
  // Bitwise equality on purpose: the alarm is scheduled at the deadline
  // itself; the tick grid only buckets.
  EXPECT_EQ(fired_at, 1.23456789);
  EXPECT_EQ(wheel.firedCount(), 1u);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, ZeroAndNegativeDelaysClampToNow) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, double>> log;
  sim.scheduleAt(2.0, [&] {
    wheel.armIn(-5.0, [&] { log.push_back({0, sim.now()}); });
    wheel.armIn(0.0, [&] { log.push_back({1, sim.now()}); });
    wheel.armAt(1.0, [&] { log.push_back({2, sim.now()}); });  // in the past
  });
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)].first, i);  // arm order
    EXPECT_EQ(log[static_cast<std::size_t>(i)].second, 2.0);
  }
}

TEST(TimerWheelTest, EqualDeadlinesFireInArmOrder) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<int> order;
  // Armed out of any natural index order; only arm sequence may decide.
  wheel.armAt(3.0, [&] { order.push_back(0); });
  wheel.armAt(3.0, [&] { order.push_back(1); });
  wheel.armAt(1.0, [&] { order.push_back(2); });
  wheel.armAt(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 3}));
}

TEST(TimerWheelTest, EarlierArmRetargetsTheAlarm) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<double> fires;
  wheel.armAt(20.0, [&] { fires.push_back(sim.now()); });
  wheel.armAt(5.0, [&] { fires.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[0], 5.0);
  EXPECT_EQ(fires[1], 20.0);
}

TEST(TimerWheelTest, CancelPreventsFiringAndIsIdempotent) {
  Simulator sim;
  TimerWheel wheel(sim);
  int fired = 0;
  const auto a = wheel.armAt(1.0, [&] { ++fired; });
  const auto b = wheel.armAt(2.0, [&] { fired += 10; });
  wheel.cancel(a);
  wheel.cancel(a);               // double cancel: no-op
  wheel.cancel(0);               // null id: no-op
  wheel.cancel(0xdeadbeefULL);   // garbage id: no-op
  EXPECT_EQ(wheel.armed(), 1u);
  sim.run();
  EXPECT_EQ(fired, 10);
  wheel.cancel(b);  // already fired: no-op, wheel still usable
  wheel.armAt(3.0, [&] { fired += 100; });
  sim.run();
  EXPECT_EQ(fired, 110);
}

TEST(TimerWheelTest, CancelReleasesCallableCapturesImmediately) {
  Simulator sim;
  TimerWheel wheel(sim);
  auto token = std::make_shared<int>(7);
  const auto id = wheel.armAt(5.0, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  wheel.cancel(id);
  // Released at cancel time, not lazily when the slot is reused.
  EXPECT_EQ(token.use_count(), 1);
  sim.run();
}

TEST(TimerWheelTest, CancelledMinimumCostsOneSpuriousAlarm) {
  Simulator sim;
  TimerWheel wheel(sim);
  double fired_at = -1.0;
  const auto a = wheel.armAt(10.0, [] {});
  wheel.armAt(20.0, [&] { fired_at = sim.now(); });
  wheel.cancel(a);  // the alarm stays targeted at 10 (lazy cancel)
  sim.run();
  EXPECT_EQ(fired_at, 20.0);
  EXPECT_EQ(wheel.spuriousAlarms(), 1u);
  EXPECT_EQ(wheel.firedCount(), 1u);
}

TEST(TimerWheelTest, SameInstantBatchSurvivesSiblingCancel) {
  // Documented semantic difference from per-timer heap events: timers due
  // at the same instant are extracted as a batch before the first callback
  // runs, so cancelling a same-instant sibling from a callback does not
  // stop it. Callers guard with their own generations (the engine does).
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<int> order;
  TimerWheel::TimerId sibling = 0;
  wheel.armAt(1.0, [&] {
    order.push_back(0);
    wheel.cancel(sibling);
  });
  sibling = wheel.armAt(1.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(TimerWheelTest, CallbackCancelsLaterTimer) {
  Simulator sim;
  TimerWheel wheel(sim);
  bool late_fired = false;
  TimerWheel::TimerId late = 0;
  wheel.armAt(1.0, [&] { wheel.cancel(late); });
  late = wheel.armAt(2.0, [&] { late_fired = true; });
  sim.run();
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, CallbackReArmsPeriodically) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<double> ticks;
  std::function<void()> beat = [&] {
    ticks.push_back(sim.now());
    if (ticks.size() < 5) wheel.armIn(1.5, [&] { beat(); });
  };
  wheel.armIn(1.5, [&] { beat(); });
  sim.run();
  ASSERT_EQ(ticks.size(), 5u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i], 1.5 * static_cast<double>(i + 1));
  }
}

TEST(TimerWheelTest, CascadeBoundariesFireExactly) {
  // Deadlines straddling every level boundary (64, 64^2, 64^3, 64^4 ticks)
  // plus off-grid fractions; each must fire at its exact deadline, in
  // deadline order, with cascades actually happening.
  Simulator sim;
  TimerWheel wheel(sim);
  const std::uint64_t ticks[] = {1,      63,     64,     65,     4095,
                                 4096,   4097,   262143, 262144, 262145,
                                 16777215, 16777216, 16777217};
  std::vector<double> deadlines;
  for (const std::uint64_t t : ticks) {
    deadlines.push_back(static_cast<double>(t) * kRes);
    deadlines.push_back(static_cast<double>(t) * kRes + 0.3 * kRes);
  }
  std::vector<double> fires;
  for (const double d : deadlines) {
    wheel.armAt(d, [&fires, &sim] { fires.push_back(sim.now()); });
  }
  sim.run();
  std::vector<double> expected = deadlines;
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(fires.size(), expected.size());
  for (std::size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i], expected[i]) << "fire " << i;
  }
  EXPECT_GT(wheel.cascadedCount(), 0u);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, LongIdleGapCostsOneAlarmEvent) {
  // A single far-ish timer: the cursor level-jumps across the idle span
  // instead of stepping tick by tick, and the simulator sees exactly one
  // alarm event (the one-event-per-wheel contract).
  Simulator sim;
  TimerWheel wheel(sim);
  double fired_at = -1.0;
  wheel.armAt(16000.0, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 16000.0);
  EXPECT_EQ(sim.processedEvents(), 1u);
}

TEST(TimerWheelTest, FarOverflowTimersFireAndCancel) {
  // Beyond the wheel span (64^5 ticks ~ 1.05e6 s at the default
  // resolution) timers live on the far list and re-bucket lazily.
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, double>> log;
  wheel.armAt(2.4e6, [&] { log.push_back({0, sim.now()}); });
  wheel.armAt(1.2e6, [&] { log.push_back({1, sim.now()}); });
  const auto dropped = wheel.armAt(1.8e6, [&] { log.push_back({2, sim.now()}); });
  wheel.armAt(50.0, [&] { log.push_back({3, sim.now()}); });
  wheel.cancel(dropped);
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<int, double>{3, 50.0}));
  EXPECT_EQ(log[1], (std::pair<int, double>{1, 1.2e6}));
  EXPECT_EQ(log[2], (std::pair<int, double>{0, 2.4e6}));
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, CellCapacityBoundedByPeakConcurrency) {
  // 500 rounds x 32 armed, half cancelled before firing: 16k arms total,
  // but cell storage must stay at the peak concurrent count (32), and
  // every lazily-cancelled minimum costs exactly one spurious alarm.
  Simulator sim;
  TimerWheel wheel(sim);
  int fired = 0;
  for (int r = 0; r < 500; ++r) {
    sim.scheduleAt(static_cast<double>(r), [&] {
      std::vector<TimerWheel::TimerId> doomed;
      for (int i = 0; i < 16; ++i) {
        doomed.push_back(wheel.armIn(0.25, [&] { ++fired; }));
      }
      for (int i = 0; i < 16; ++i) wheel.armIn(0.5, [&] { ++fired; });
      for (const auto id : doomed) wheel.cancel(id);
    });
  }
  sim.run();
  EXPECT_EQ(fired, 500 * 16);
  EXPECT_EQ(wheel.firedCount(), 500u * 16u);
  EXPECT_LE(wheel.cellCapacity(), 32u);
  EXPECT_EQ(wheel.spuriousAlarms(), 500u);
}

// ---------------------------------------------------------------------------
// Fuzz: wheel vs plain Simulator events.

struct Op {
  double t = 0;        ///< Absolute sim time the op executes at.
  int kind = 0;        ///< 0 = arm, 1 = cancel, 2 = arm same-deadline twins.
  double delay = 0;
  std::size_t target = 0;  ///< For cancel: arm-index to cancel.
};

struct Fire {
  double at;
  std::size_t idx;  ///< Arm index (global, in arm order).
  bool operator==(const Fire& o) const { return at == o.at && idx == o.idx; }
};

std::vector<Op> makeScript(std::uint64_t seed, int ops) {
  Rng rng(seed);
  std::vector<Op> script;
  double t = 0;
  std::size_t arms = 0;
  for (int i = 0; i < ops; ++i) {
    t += rng.uniform(1e-4, 2.0);
    Op op;
    op.t = t;
    const double roll = rng.uniform(0.0, 1.0);
    if (arms > 0 && roll < 0.3) {
      op.kind = 1;
      op.target = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(arms) - 1));
    } else {
      // Delay scales spanning sub-tick, level 0..4 and the far list.
      static const double kHi[] = {0.01, 5.0, 500.0, 5e5, 3e6};
      op.delay = rng.uniform(0.0, kHi[rng.uniformInt(0, 4)]);
      if (roll > 0.9) {
        op.kind = 2;  // twins: same deadline, distinct arm order
        arms += 2;
      } else {
        op.kind = 0;
        arms += 1;
      }
    }
    script.push_back(op);
  }
  return script;
}

/// Replays `script` against the wheel; fires logged as (time, arm index).
std::vector<Fire> runWheel(const std::vector<Op>& script) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<TimerWheel::TimerId> ids;
  std::vector<Fire> log;
  for (const Op& op : script) {
    sim.scheduleAt(op.t, [&, op] {
      if (op.kind == 1) {
        wheel.cancel(ids[op.target]);
        return;
      }
      const int n = op.kind == 2 ? 2 : 1;
      for (int k = 0; k < n; ++k) {
        const std::size_t idx = ids.size();
        ids.push_back(
            wheel.armIn(op.delay, [&, idx] { log.push_back({sim.now(), idx}); }));
      }
    });
  }
  sim.run();
  EXPECT_EQ(wheel.armed(), 0u);
  EXPECT_EQ(wheel.firedCount(), log.size());
  return log;
}

/// Replays `script` with one plain simulator event per timer — the
/// reference semantics the wheel must reproduce.
std::vector<Fire> runReference(const std::vector<Op>& script) {
  Simulator sim;
  std::vector<EventId> ids;
  std::vector<Fire> log;
  for (const Op& op : script) {
    sim.scheduleAt(op.t, [&, op] {
      if (op.kind == 1) {
        sim.cancel(ids[op.target]);
        return;
      }
      const int n = op.kind == 2 ? 2 : 1;
      for (int k = 0; k < n; ++k) {
        const std::size_t idx = ids.size();
        ids.push_back(
            sim.scheduleIn(op.delay, [&, idx] { log.push_back({sim.now(), idx}); }));
      }
    });
  }
  sim.run();
  return log;
}

TEST(TimerWheelFuzz, MatchesPerTimerSimulatorEvents) {
  for (const std::uint64_t seed : {11u, 4242u, 987654u}) {
    const auto script = makeScript(seed, 1500);
    const auto wheel_log = runWheel(script);
    const auto ref_log = runReference(script);
    ASSERT_EQ(wheel_log.size(), ref_log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < wheel_log.size(); ++i) {
      ASSERT_TRUE(wheel_log[i] == ref_log[i])
          << "seed " << seed << " fire " << i << ": wheel ("
          << wheel_log[i].at << ", " << wheel_log[i].idx << ") vs ref ("
          << ref_log[i].at << ", " << ref_log[i].idx << ")";
    }
  }
}

}  // namespace
}  // namespace gol::sim
