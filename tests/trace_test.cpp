#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "trace/dslam_trace.hpp"
#include "cellular/location.hpp"
#include "trace/mno.hpp"

namespace gol::trace {
namespace {

TEST(Mno, GeneratesRequestedShape) {
  MnoConfig cfg;
  cfg.users = 500;
  cfg.months = 6;
  sim::Rng rng(1);
  const auto ds = generateMnoDataset(cfg, rng);
  ASSERT_EQ(ds.users.size(), 500u);
  for (const auto& u : ds.users) {
    EXPECT_GT(u.cap_bytes, 0.0);
    ASSERT_EQ(u.monthly_usage_bytes.size(), 6u);
    for (double m : u.monthly_usage_bytes) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, u.cap_bytes + 1.0);  // usage clamped at the cap
    }
  }
}

TEST(Mno, Figure10AnchorsReproduced) {
  // The headline spare-capacity result: 40% of users below 10% of cap,
  // 75% below 50% (tolerances for sampling noise).
  MnoConfig cfg;
  cfg.users = 30000;
  cfg.months = 1;
  sim::Rng rng(42);
  const auto ds = generateMnoDataset(cfg, rng);
  stats::Cdf cdf(ds.usedFractions(0));
  EXPECT_NEAR(cdf.fractionBelow(0.10), 0.40, 0.03);
  EXPECT_NEAR(cdf.fractionBelow(0.50), 0.75, 0.03);
}

TEST(Mno, MeanFreeCapacityNearPaperValue) {
  // Paper: ~20 MB/day = 600 MB/month of already-paid-for spare volume.
  MnoConfig cfg;
  cfg.users = 30000;
  cfg.months = 1;
  sim::Rng rng(7);
  const auto ds = generateMnoDataset(cfg, rng);
  const double free_mb = ds.meanFreeBytes(0) / 1e6;
  EXPECT_GT(free_mb, 450.0);
  EXPECT_LT(free_mb, 900.0);
}

TEST(Mno, CapMixRespectsWeights) {
  MnoConfig cfg;
  cfg.users = 20000;
  cfg.cap_choices_bytes = {1e9, 2e9};
  cfg.cap_weights = {0.8, 0.2};
  sim::Rng rng(3);
  const auto ds = generateMnoDataset(cfg, rng);
  int small = 0;
  for (const auto& u : ds.users) small += u.cap_bytes == 1e9;
  EXPECT_NEAR(static_cast<double>(small) / 20000, 0.8, 0.02);
}

TEST(Mno, MismatchedWeightsThrow) {
  MnoConfig cfg;
  cfg.cap_weights = {1.0};
  cfg.cap_choices_bytes = {1e9, 2e9};
  sim::Rng rng(1);
  EXPECT_THROW(generateMnoDataset(cfg, rng), std::invalid_argument);
}

TEST(Dslam, TraceMatchesConfiguredMoments) {
  DslamTraceConfig cfg;
  cfg.subscribers = 4000;
  sim::Rng rng(5);
  const auto trace = generateDslamTrace(cfg, rng);

  // ~68% of subscribers see at least one video.
  EXPECT_NEAR(static_cast<double>(trace.video_users) / cfg.subscribers, 0.68,
              0.03);

  // Views per video-user: mean ~14, median ~6 (heavy tail).
  std::map<std::uint32_t, int> views;
  for (const auto& r : trace.requests) ++views[r.user];
  std::vector<double> counts;
  for (const auto& [u, c] : views) counts.push_back(c);
  stats::Summary s;
  for (double c : counts) s.add(c);
  EXPECT_NEAR(s.mean(), 14.12, 3.0);
  std::sort(counts.begin(), counts.end());
  EXPECT_NEAR(counts[counts.size() / 2], 6.0, 2.0);

  // Sizes average ~50 MB.
  stats::Summary sizes;
  for (const auto& r : trace.requests) sizes.add(r.bytes);
  EXPECT_NEAR(sizes.mean() / 50e6, 1.0, 0.15);
}

TEST(Dslam, RequestsSortedAndWithinDay) {
  DslamTraceConfig cfg;
  cfg.subscribers = 1000;
  sim::Rng rng(9);
  const auto trace = generateDslamTrace(cfg, rng);
  ASSERT_FALSE(trace.requests.empty());
  for (std::size_t i = 1; i < trace.requests.size(); ++i)
    EXPECT_LE(trace.requests[i - 1].time_s, trace.requests[i].time_s);
  for (const auto& r : trace.requests) {
    EXPECT_GE(r.time_s, 0.0);
    EXPECT_LT(r.time_s, 86400.0);
    EXPECT_GT(r.bytes, 0.0);
  }
}

TEST(Dslam, RequestsFollowWiredDiurnal) {
  DslamTraceConfig cfg;
  cfg.subscribers = 5000;
  sim::Rng rng(13);
  const auto trace = generateDslamTrace(cfg, rng);
  int evening = 0, night = 0;
  for (const auto& r : trace.requests) {
    const double h = r.time_s / 3600.0;
    if (h >= 20 && h < 23) ++evening;
    if (h >= 3 && h < 6) ++night;
  }
  // The wired evening peak is ~4x the pre-dawn trough.
  EXPECT_GT(evening, night * 2);
}

TEST(Dslam, DeterministicForSeed) {
  DslamTraceConfig cfg;
  cfg.subscribers = 300;
  sim::Rng r1(21), r2(21);
  const auto t1 = generateDslamTrace(cfg, r1);
  const auto t2 = generateDslamTrace(cfg, r2);
  ASSERT_EQ(t1.requests.size(), t2.requests.size());
  for (std::size_t i = 0; i < t1.requests.size(); ++i) {
    EXPECT_EQ(t1.requests[i].user, t2.requests[i].user);
    EXPECT_DOUBLE_EQ(t1.requests[i].bytes, t2.requests[i].bytes);
  }
}

TEST(SampleTimeOfDay, StaysWithinDay) {
  sim::Rng rng(1);
  const auto& shape = gol::cell::wiredDiurnalShape();
  for (int i = 0; i < 1000; ++i) {
    const double t = sampleTimeOfDay(shape, rng);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 86400.0);
  }
}

}  // namespace
}  // namespace gol::trace
