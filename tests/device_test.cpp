#include <gtest/gtest.h>

#include <optional>

#include "cellular/device.hpp"
#include "cellular/location.hpp"
#include "net/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gol::cell {
namespace {

using sim::mbps;
using sim::megabytes;

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : net_(sim_) {
    BaseStationConfig cfg;
    cfg.sectors = 3;
    bs_ = std::make_unique<BaseStation>(net_, "bs", cfg);
  }

  std::unique_ptr<CellularDevice> makeDevice(DeviceConfig cfg = {},
                                             std::uint64_t seed = 1) {
    cfg.quality_sigma = 0.0;  // deterministic unless a test wants noise
    cfg.jitter_sigma = 0.0;
    return std::make_unique<CellularDevice>(
        net_, "dev", std::vector<BaseStation*>{bs_.get()}, cfg,
        sim::Rng(seed));
  }

  sim::Simulator sim_;
  net::FlowNetwork net_{sim_};
  std::unique_ptr<BaseStation> bs_;
};

TEST_F(DeviceTest, TransferWaitsForRrcPromotion) {
  auto dev = makeDevice();
  std::optional<double> done;
  CellularDevice::TransferOptions opts;
  opts.dir = Direction::kDownlink;
  opts.bytes = megabytes(1);
  opts.on_complete = [&] { done = sim_.now(); };
  dev->startTransfer(std::move(opts));
  sim_.run();
  ASSERT_TRUE(done.has_value());
  // Promotion (2 s) plus 8 Mbit at the per-device cap.
  const double rate = dev->nominalRateBps(Direction::kDownlink);
  EXPECT_NEAR(*done, 2.0 + megabytes(1) * 8 / rate, 0.05);
}

TEST_F(DeviceTest, WarmRadioSkipsPromotion) {
  auto dev = makeDevice();
  dev->rrc().forceDch();
  std::optional<double> done;
  CellularDevice::TransferOptions opts;
  opts.bytes = megabytes(1);
  opts.on_complete = [&] { done = sim_.now(); };
  dev->startTransfer(std::move(opts));
  sim_.run();
  const double rate = dev->nominalRateBps(Direction::kDownlink);
  EXPECT_NEAR(*done, megabytes(1) * 8 / rate, 0.05);
}

TEST_F(DeviceTest, MeteredBytesAccumulate) {
  auto dev = makeDevice();
  dev->rrc().forceDch();
  CellularDevice::TransferOptions opts;
  opts.bytes = megabytes(2);
  dev->startTransfer(std::move(opts));
  sim_.run();
  EXPECT_NEAR(dev->meteredBytes(), megabytes(2), 1.0);
}

TEST_F(DeviceTest, AbortReturnsPartialAndMeters) {
  auto dev = makeDevice();
  dev->rrc().forceDch();
  CellularDevice::TransferOptions opts;
  opts.bytes = megabytes(100);
  bool completed = false;
  opts.on_complete = [&] { completed = true; };
  const auto id = dev->startTransfer(std::move(opts));
  sim_.runUntil(10.0);
  const double moved = dev->abortTransfer(id);
  EXPECT_GT(moved, 0.0);
  EXPECT_LT(moved, megabytes(100));
  EXPECT_NEAR(dev->meteredBytes(), moved, 1.0);
  sim_.run();
  EXPECT_FALSE(completed);  // callback never fires after abort
  EXPECT_FALSE(dev->transferActive(id));
}

TEST_F(DeviceTest, AbortDuringPromotionIsClean) {
  auto dev = makeDevice();
  CellularDevice::TransferOptions opts;
  opts.bytes = megabytes(1);
  bool completed = false;
  opts.on_complete = [&] { completed = true; };
  const auto id = dev->startTransfer(std::move(opts));
  EXPECT_DOUBLE_EQ(dev->abortTransfer(id), 0.0);
  sim_.run();
  EXPECT_FALSE(completed);
}

TEST_F(DeviceTest, RadioStaysDchDuringLongTransfer) {
  auto dev = makeDevice();
  dev->rrc().forceDch();
  CellularDevice::TransferOptions opts;
  opts.bytes = megabytes(50);
  dev->startTransfer(std::move(opts));
  sim_.runUntil(30.0);  // longer than the 5 s inactivity timer
  EXPECT_EQ(dev->rrc().state(), RrcState::kDch);
}

TEST_F(DeviceTest, DevicesSpreadOverSectorsUnderLoadPenalty) {
  DeviceConfig cfg;
  cfg.sector_diversity_db = 0.0;  // no per-device bias
  cfg.primary_bonus_db = 0.4;
  cfg.load_penalty_db = 1.0;      // spreading wins quickly
  auto d1 = makeDevice(cfg, 1);
  auto d2 = makeDevice(cfg, 2);
  d1->rrc().forceDch();
  d2->rrc().forceDch();
  CellularDevice::TransferOptions o1, o2;
  o1.bytes = o2.bytes = megabytes(50);
  d1->startTransfer(std::move(o1));
  d2->startTransfer(std::move(o2));
  int active_sectors = 0;
  for (std::size_t s = 0; s < bs_->sectorCount(); ++s)
    if (bs_->sector(s).activeCount(Direction::kDownlink) > 0) ++active_sectors;
  EXPECT_EQ(active_sectors, 2);
}

TEST_F(DeviceTest, DevicesClusterUnderStrongPrimaryBonus) {
  DeviceConfig cfg;
  cfg.sector_diversity_db = 0.0;
  cfg.primary_bonus_db = 10.0;  // everyone prefers the primary sector
  cfg.load_penalty_db = 0.5;
  auto d1 = makeDevice(cfg, 1);
  auto d2 = makeDevice(cfg, 2);
  d1->rrc().forceDch();
  d2->rrc().forceDch();
  CellularDevice::TransferOptions o1, o2;
  o1.bytes = o2.bytes = megabytes(50);
  d1->startTransfer(std::move(o1));
  d2->startTransfer(std::move(o2));
  EXPECT_EQ(bs_->sector(0).activeCount(Direction::kDownlink), 2);
}

TEST_F(DeviceTest, NominalRateScalesWithSignal) {
  DeviceConfig good;
  good.radio.signal_dbm = -75;
  DeviceConfig poor;
  poor.radio.signal_dbm = -105;
  auto dg = makeDevice(good, 1);
  auto dp = makeDevice(poor, 2);
  EXPECT_GT(dg->nominalRateBps(Direction::kDownlink),
            dp->nominalRateBps(Direction::kDownlink));
}

TEST(Location, BuildsStationsAndDevices) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  LocationSpec spec = measurementLocations()[0];
  Location loc(net, spec, sim::Rng(1));
  EXPECT_EQ(loc.baseStationCount(),
            static_cast<std::size_t>(spec.base_stations));
  auto dev = loc.makeDevice("d0");
  ASSERT_NE(dev, nullptr);
  EXPECT_GT(dev->nominalRateBps(Direction::kDownlink), 0);
}

TEST(Location, AvailableFractionFollowsDiurnal) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  LocationSpec spec = measurementLocations()[0];
  spec.background_peak_util = 0.4;
  Location loc(net, spec, sim::Rng(1));
  const auto& shape = mobileDiurnalShape();
  // Peak hour (14h, the mobile busy hour) -> lowest availability.
  const double at_peak = loc.availableFractionAt(shape, sim::hours(14));
  const double at_night = loc.availableFractionAt(shape, sim::hours(4));
  EXPECT_LT(at_peak, at_night);
  EXPECT_NEAR(at_peak, 0.6, 1e-6);
}

TEST(Location, DiurnalDriverUpdatesSectors) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  LocationSpec spec = measurementLocations()[0];
  spec.background_peak_util = 0.4;
  Location loc(net, spec, sim::Rng(1));
  loc.startDiurnalLoad(mobileDiurnalShape(), sim::hours(14));
  EXPECT_NEAR(loc.baseStation(0).sector(0).availableFraction(), 0.6, 0.02);
}

TEST(Location, PaperLocationTablesPresent) {
  EXPECT_EQ(measurementLocations().size(), 6u);
  EXPECT_EQ(evaluationLocations().size(), 5u);
  // Table 4 spot checks.
  const auto eval = evaluationLocations();
  EXPECT_DOUBLE_EQ(eval[1].adsl_down_bps, 21.64e6);
  EXPECT_DOUBLE_EQ(eval[4].adsl_up_bps, 0.58e6);
  EXPECT_DOUBLE_EQ(eval[0].signal_dbm, -81);
}

TEST(Location, DiurnalShapesPeakAtDifferentHours) {
  const auto& mobile = mobileDiurnalShape();
  const auto& wired = wiredDiurnalShape();
  int mobile_peak = 0, wired_peak = 0;
  for (int h = 1; h < 24; ++h) {
    if (mobile.at(sim::hours(h)) > mobile.at(sim::hours(mobile_peak)))
      mobile_peak = h;
    if (wired.at(sim::hours(h)) > wired.at(sim::hours(wired_peak)))
      wired_peak = h;
  }
  EXPECT_NE(mobile_peak, wired_peak);  // Fig 1's non-aligned peaks
}

}  // namespace
}  // namespace gol::cell
