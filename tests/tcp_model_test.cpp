#include <gtest/gtest.h>

#include <cmath>

#include "net/tcp_model.hpp"
#include "sim/units.hpp"

namespace gol::net {
namespace {

TEST(MathisCap, InfiniteWithoutLoss) {
  EXPECT_TRUE(std::isinf(mathisCapBps(0.1, 0.0)));
  EXPECT_TRUE(std::isinf(mathisCapBps(0.0, 0.01)));
}

TEST(MathisCap, MatchesFormula) {
  TcpParams p;
  const double rate = mathisCapBps(0.1, 0.01, p);
  // MSS/RTT * 1.22/sqrt(p) = 1460*8/0.1 * 12.2
  EXPECT_NEAR(rate, 1460 * 8 / 0.1 * 1.22 / 0.1, 1.0);
}

TEST(MathisCap, MoreLossMeansLessRate) {
  EXPECT_GT(mathisCapBps(0.05, 0.001), mathisCapBps(0.05, 0.01));
  EXPECT_GT(mathisCapBps(0.05, 0.01), mathisCapBps(0.05, 0.1));
}

TEST(MathisCap, LongerRttMeansLessRate) {
  EXPECT_GT(mathisCapBps(0.02, 0.01), mathisCapBps(0.2, 0.01));
}

TEST(TransferOverhead, ScalesWithRtt) {
  const double fast = transferOverheadS(sim::megabytes(1), 0.02, sim::mbps(10));
  const double slow = transferOverheadS(sim::megabytes(1), 0.2, sim::mbps(10));
  // Super-linear in RTT: a longer RTT also inflates the BDP the slow-start
  // ramp must cover.
  EXPECT_GT(slow / fast, 8.0);
  EXPECT_LT(slow / fast, 25.0);
}

TEST(TransferOverhead, TinyObjectPaysAtLeastSetupPlusOneRtt) {
  TcpParams p;
  const double o = transferOverheadS(1000, 0.1, sim::mbps(10), p);
  EXPECT_GE(o, p.setup_rtts * 0.1 + 0.1 - 1e-12);
}

TEST(TransferOverhead, LargerObjectsPayMoreSlowStart) {
  const double small = transferOverheadS(20e3, 0.1, sim::mbps(100));
  const double large = transferOverheadS(2e6, 0.1, sim::mbps(100));
  EXPECT_GT(large, small);
}

TEST(TransferOverhead, SlowStartBoundedByBdp) {
  // On a slow path the window needed is small, so the ramp is short even
  // for a big object.
  const double on_slow = transferOverheadS(10e6, 0.05, sim::kbps(500));
  const double on_fast = transferOverheadS(10e6, 0.05, sim::mbps(100));
  EXPECT_LT(on_slow, on_fast);
}

TEST(WarmTransfer, CheaperThanCold) {
  const double cold = transferOverheadS(0.5e6, 0.08, sim::mbps(10));
  const double warm = warmTransferOverheadS(0.5e6, 0.08, sim::mbps(10));
  EXPECT_LT(warm, cold);
  EXPECT_GT(warm, 0.0);
}

TEST(TransferOverhead, ZeroObjectStillPaysSetup) {
  TcpParams p;
  EXPECT_NEAR(transferOverheadS(0, 0.1, sim::mbps(10), p),
              p.setup_rtts * 0.1, 1e-12);
}

TEST(TransferOverhead, CalibrationForFig6Baseline) {
  // Sanity-check the Fig 6 ADSL baseline arithmetic: a Q1 segment
  // (0.25 MB) on a 60 ms ADSL path should pay roughly 0.3-0.7 s of
  // overhead, which over 20 segments explains the paper's 41 s download of
  // a nominally 20 s transfer (see DESIGN.md).
  const double o = transferOverheadS(0.25e6, 0.06 + 0.02, sim::mbps(1.7));
  EXPECT_GT(o, 0.2);
  EXPECT_LT(o, 0.8);
}

}  // namespace
}  // namespace gol::net
