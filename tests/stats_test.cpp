#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/ewma.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace gol::stats {
namespace {

TEST(Summary, EmptyDefaults) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  EXPECT_DOUBLE_EQ(s.min(), 3.25);
  EXPECT_DOUBLE_EQ(s.max(), 3.25);
}

TEST(Summary, MergeMatchesSequential) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Quantile, InterpolatesType7) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(quantile(xs, 0.25), 1.75, 1e-12);
}

TEST(Quantile, ThrowsOnEmpty) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Cdf, FractionBelowAndQuantile) {
  Cdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(Cdf, AddAfterQueryResorts) {
  Cdf cdf({2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(3.0), 0.5);
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.fractionBelow(3.0), 2.0 / 3.0);
}

TEST(Cdf, CurveIsMonotonic) {
  Cdf cdf({1, 5, 2, 8, 3, 9, 4});
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps into bin 0
  h.add(42.0);   // clamps into bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.countAt(0), 2u);
  EXPECT_EQ(h.countAt(5), 1u);
  EXPECT_EQ(h.countAt(9), 1u);
  EXPECT_DOUBLE_EQ(h.density(0), 0.5);
  EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
  EXPECT_DOUBLE_EQ(h.binHigh(5), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1, 1, 4), std::invalid_argument);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.75);
  EXPECT_FALSE(e.seeded());
  e.update(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 100.0);  // first sample seeds
  for (int i = 0; i < 50; ++i) e.update(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-3);
}

TEST(Ewma, AlphaControlsAgility) {
  Ewma fast(0.75), slow(0.1);
  fast.update(0);
  slow.update(0);
  fast.update(100);
  slow.update(100);
  EXPECT_GT(fast.value(), slow.value());
  EXPECT_DOUBLE_EQ(fast.value(), 75.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(BinnedSeries, AddAndNormalize) {
  BinnedSeries s(100.0, 10.0);
  EXPECT_EQ(s.bins(), 10u);
  s.add(5.0, 2.0);
  s.add(95.0, 4.0);
  s.add(150.0, 1.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(s.at(0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(9), 5.0);
  EXPECT_DOUBLE_EQ(s.total(), 7.0);
  EXPECT_DOUBLE_EQ(s.peak(), 5.0);
  EXPECT_EQ(s.peakBin(), 9u);
  const auto n = s.normalized();
  EXPECT_DOUBLE_EQ(n[9], 1.0);
  EXPECT_DOUBLE_EQ(n[0], 0.4);
}

TEST(BinnedSeries, SpreadConservesMass) {
  BinnedSeries s(100.0, 10.0);
  s.addSpread(5.0, 35.0, 30.0);
  EXPECT_NEAR(s.total(), 30.0, 1e-9);
  EXPECT_NEAR(s.at(0), 5.0, 1e-9);
  EXPECT_NEAR(s.at(1), 10.0, 1e-9);
  EXPECT_NEAR(s.at(2), 10.0, 1e-9);
  EXPECT_NEAR(s.at(3), 5.0, 1e-9);
}

TEST(BinnedSeries, SpreadDegenerateInterval) {
  BinnedSeries s(100.0, 10.0);
  s.addSpread(12.0, 12.0, 7.0);  // zero-length: all mass at t0
  EXPECT_DOUBLE_EQ(s.at(1), 7.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"alpha", Table::num(1.5)});
  t.addRow({"b", "x"});
  const std::string r = t.render();
  EXPECT_NE(r.find("| alpha | 1.50  |"), std::string::npos);
  EXPECT_NE(r.find("| name"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace gol::stats
