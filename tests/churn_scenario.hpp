// Deterministic engine-churn scenarios shared by the columnar-core
// regression tests and the golden generator. The scenarios are frozen: the
// golden JSON / digest constants in item_table_test.cpp were produced by
// running these exact scenarios against the pre-refactor (object-per-item,
// per-item-timer) engine, so any behavioural drift in the columnar core —
// timer ordering, accounting, salvage settlement — shows up as a diff.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/result_json.hpp"
#include "core/round_robin_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "fake_path.hpp"
#include "http/checksum.hpp"
#include "sim/simulator.hpp"

namespace gol::core::testing {

struct ChurnRun {
  TransactionResult result;
  std::string json;          ///< Full transactionResultJson (item arrays on).
  std::uint64_t json_hash;   ///< FNV-1a of `json`.
  std::size_t sim_slot_capacity;   ///< Simulator callable slots allocated.
  std::size_t sim_peak_pending;    ///< Upper bound proxy: slots ~ peak live.
  std::size_t wheel_cell_capacity;     ///< Timer cells = peak concurrent timers.
  std::uint64_t wheel_fired;           ///< Timers that ran to their callback.
  std::uint64_t wheel_spurious;        ///< Alarms that found nothing due.
  std::size_t salvage_arena_reserved;  ///< Arena bytes behind salvage ledgers.
  std::size_t column_bytes_reserved;   ///< Heap bytes of the item columns.
};

inline std::uint64_t fnv1a(const std::string& s) {
  return http::fnv1aStep(s);
}

/// Small, failure-heavy scenario: scripted attempt failures (salvage +
/// retry/backoff), a stall (watchdog), a payload corruption (checkpoint
/// discard), a path death + revival (grace/requeue) and tail hedging, over
/// four unequal paths. Exercises every row of the three-way accounting.
inline ChurnRun runFaultyChurnScenario(std::size_t items) {
  sim::Simulator sim;
  FakePath adsl(sim, "adsl", 2.0e6);
  FakePath ph0(sim, "ph0", 1.5e6);
  FakePath ph1(sim, "ph1", 1.1e6);
  FakePath ph2(sim, "ph2", 0.7e6);
  ph2.setResumeSupported(false);  // legacy path: restarts at 0, no salvage

  GreedyScheduler scheduler;
  EngineConfig cfg;
  cfg.retry.max_attempts = 4;
  cfg.retry.base_backoff_s = 0.3;
  cfg.watchdog.min_deadline_s = 4.0;
  cfg.hedge_tail_items = 3;
  TransactionEngine engine(sim, {&adsl, &ph0, &ph1, &ph2}, scheduler, cfg);
  engine.instrument(nullptr);

  std::vector<double> sizes;
  sizes.reserve(items);
  for (std::size_t i = 0; i < items; ++i)
    sizes.push_back(80e3 + static_cast<double>(i % 7) * 30e3);
  Transaction txn = makeTransaction(TransferDirection::kDownload, sizes);

  // Scripted churn. Every fault is keyed to absolute sim time so the run is
  // bit-reproducible; faults landing on an idle path are harmless no-ops.
  ph0.failNextStarts(25, 0.07);            // partial failures -> salvage
  sim.scheduleAt(6.0, [&] { ph1.stallCurrent(); });   // watchdog timeout
  sim.scheduleAt(9.0, [&] { adsl.corruptCurrent(); });  // integrity gate
  sim.scheduleAt(12.0, [&] { ph2.die("scripted-death"); });
  sim.scheduleAt(18.0, [&] { ph2.revive("scripted-revival"); });
  sim.scheduleAt(21.0, [&] { ph0.failNextStarts(8, 0.11); });
  sim.scheduleAt(26.0, [&] { ph1.stallCurrent(); });

  ChurnRun run{};
  bool done = false;
  engine.run(std::move(txn), [&](TransactionResult r) {
    run.result = std::move(r);
    done = true;
  });
  sim.run();
  if (!done) throw std::logic_error("faulty churn scenario never finished");
  run.json = transactionResultJson(run.result);
  run.json_hash = fnv1a(run.json);
  run.sim_slot_capacity = sim.slotCapacity();
  run.sim_peak_pending = sim.slotCapacity();
  run.wheel_cell_capacity = engine.timerWheel().cellCapacity();
  run.wheel_fired = engine.timerWheel().firedCount();
  run.wheel_spurious = engine.timerWheel().spuriousAlarms();
  run.salvage_arena_reserved = engine.itemTable().salvageArenaReserved();
  run.column_bytes_reserved = engine.itemTable().columnBytesReserved();
  return run;
}

/// Large clean-ish churn: round-robin over eight paths with one flaky path
/// (bounded scripted failures early on, so resume/salvage still runs) and
/// no O(M)-scan policies, sized for the million-item regression. Watchdogs
/// arm and disarm once per attempt — the timer-churn hot path.
inline ChurnRun runMillionChurnScenario(std::size_t items) {
  sim::Simulator sim;
  std::vector<std::unique_ptr<FakePath>> paths;
  std::vector<TransferPath*> raw;
  const double rates[] = {20e6, 16e6, 12e6, 11e6, 9e6, 8e6, 6e6, 5e6};
  for (int p = 0; p < 8; ++p) {
    paths.push_back(std::make_unique<FakePath>(
        sim, "p" + std::to_string(p), rates[p]));
    raw.push_back(paths.back().get());
  }
  paths[3]->failNextStarts(400, 0.02);  // early retry/salvage churn

  RoundRobinScheduler scheduler;
  EngineConfig cfg;
  cfg.retry.max_attempts = 5;
  cfg.retry.base_backoff_s = 0.2;
  TransactionEngine engine(sim, raw, scheduler, cfg);
  engine.instrument(nullptr);

  std::vector<double> sizes;
  sizes.reserve(items);
  for (std::size_t i = 0; i < items; ++i)
    sizes.push_back(30e3 + static_cast<double>(i % 11) * 8e3);
  Transaction txn = makeTransaction(TransferDirection::kDownload, sizes);

  ChurnRun run{};
  bool done = false;
  engine.run(std::move(txn), [&](TransactionResult r) {
    run.result = std::move(r);
    done = true;
  });
  sim.run();
  if (!done) throw std::logic_error("million churn scenario never finished");
  // Hash-only for the big run: the full JSON (with both per-item arrays)
  // would be tens of megabytes; the digest pins it just as hard.
  run.json = transactionResultJson(run.result);
  run.json_hash = fnv1a(run.json);
  run.sim_slot_capacity = sim.slotCapacity();
  run.sim_peak_pending = sim.slotCapacity();
  run.wheel_cell_capacity = engine.timerWheel().cellCapacity();
  run.wheel_fired = engine.timerWheel().firedCount();
  run.wheel_spurious = engine.timerWheel().spuriousAlarms();
  run.salvage_arena_reserved = engine.itemTable().salvageArenaReserved();
  run.column_bytes_reserved = engine.itemTable().columnBytesReserved();
  return run;
}

}  // namespace gol::core::testing
