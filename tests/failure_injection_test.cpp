// Failure-injection coverage: the unhappy paths the in-the-wild pilot
// would hit — radio collapse mid-transfer, permit revocation, congested
// admission, Wi-Fi becoming the bottleneck, and mid-transaction aborts —
// plus the FaultPlan/FaultInjector harness covering all five scripted
// fault classes (kill, flap, stall, revoke, cap) deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "core/fault_injector.hpp"
#include "core/onload_controller.hpp"
#include "core/vod_session.hpp"
#include "sim/fault_plan.hpp"
#include "sim/units.hpp"

namespace gol::core {
namespace {

using sim::mbps;

/// The byte-accounting invariant every faulted run must keep: bytes moved
/// by any path are delivered payload, salvaged checkpoint prefix that a
/// later attempt resumed past, or accounted waste.
void expectAccounting(const TransactionResult& res) {
  double delivered = 0, salvaged = 0, wasted = 0;
  for (const auto& [name, b] : res.per_path_bytes) delivered += b;
  for (const auto& [name, b] : res.per_path_salvaged_bytes) salvaged += b;
  for (const auto& [name, b] : res.per_path_wasted_bytes) wasted += b;
  EXPECT_NEAR(delivered + salvaged, res.delivered_bytes,
              1e-6 * std::max(1.0, res.delivered_bytes));
  EXPECT_NEAR(salvaged, res.salvaged_bytes,
              1e-6 * std::max(1.0, res.salvaged_bytes));
  EXPECT_NEAR(wasted, res.wasted_bytes,
              1e-6 * std::max(1.0, res.wasted_bytes));
}

TEST(FailureInjection, CellCollapseMidTransactionStillCompletes) {
  // Background load spikes to ~100% mid-download: phone paths crawl but the
  // transaction must still finish over ADSL.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[3];
  cfg.phones = 2;
  cfg.seed = 61;
  HomeEnvironment home(cfg);

  home.simulator().scheduleAt(
      5.0, [&home] { home.location().setAvailableFraction(0.02); });

  auto paths = home.makePaths(TransferDirection::kDownload, 2);
  std::vector<TransferPath*> raw;
  for (auto& p : paths) raw.push_back(p.get());
  auto sched = makeScheduler("greedy");
  TransactionEngine engine(home.simulator(), raw, *sched);
  const auto res = runTransaction(
      home.simulator(), engine,
      makeTransaction(TransferDirection::kDownload,
                      std::vector<double>(12, 1e6)));
  EXPECT_GT(res.duration_s, 0.0);
  // ADSL ends up carrying the bulk after the collapse.
  EXPECT_GT(res.per_path_bytes.at("adsl"), res.total_bytes * 0.4);
}

TEST(FailureInjection, WifiBottleneckCapsAggregation) {
  // An interference-degraded 802.11g LAN: the phones cannot add more than
  // the shared medium carries (Sec. 4.1's upper bound).
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[1];  // fast line, fast phones
  cfg.wifi.standard = access::WifiStandard::k80211g;
  cfg.wifi.interference_loss = 0.9;  // ~2.4 Mbps usable
  cfg.phones = 2;
  cfg.seed = 62;
  HomeEnvironment home(cfg);
  VodSession session(home);
  VodOptions opts;
  opts.video.bitrate_bps = 738e3;
  opts.prebuffer_fraction = 1.0;
  opts.phones = 2;
  const auto out = session.run(opts);
  // 18.45 MB can't beat the 2.4 Mbps LAN: > 55 s regardless of paths.
  EXPECT_GT(out.total_download_s, 55.0);
}

TEST(FailureInjection, AbortMidTransactionReleasesEverything) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 2;
  cfg.seed = 63;
  HomeEnvironment home(cfg);

  auto paths = home.makePaths(TransferDirection::kDownload, 2);
  // Start transfers manually on each path, then abort them all mid-flight.
  int completions = 0;
  Item item;
  item.index = 0;
  item.bytes = 50e6;
  for (auto& p : paths) {
    Item copy = item;
    copy.index = static_cast<std::uint32_t>(&p - paths.data());
    p->start(copy, [&](const Item&, const ItemResult&) {
      ++completions;
    });
  }
  home.simulator().runUntil(5.0);
  double moved = 0;
  for (auto& p : paths) moved += p->abortCurrent();
  EXPECT_GT(moved, 0.0);
  home.simulator().run();
  EXPECT_EQ(completions, 0);  // no callback after abort
  EXPECT_EQ(home.network().activeFlowCount(), 0u);
  for (auto& p : paths) EXPECT_FALSE(p->busy());
}

TEST(FailureInjection, PermitRevocationStopsNewAdvertisements) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 2;
  cfg.seed = 64;
  HomeEnvironment home(cfg);
  home.location().setAvailableFraction(0.9);
  ControllerConfig ctl_cfg;
  ctl_cfg.mode = DeploymentMode::kNetworkIntegrated;
  ctl_cfg.permit.acceptance_threshold = 0.5;
  ctl_cfg.permit.ttl_s = 4.0;  // short-lived permits
  OnloadController ctl(home, ctl_cfg);
  ctl.start();
  home.simulator().runUntil(1.0);
  ASSERT_EQ(ctl.admissibleCount(), 2u);

  // Congestion detected: permits revoked and the cell now looks loaded.
  home.location().setAvailableFraction(0.1);
  ctl.permits().revokeAll();
  home.simulator().runUntil(1.0 + ctl_cfg.discovery_ttl_s +
                            ctl_cfg.discovery_interval_s + 1.0);
  EXPECT_EQ(ctl.admissibleCount(), 0u);

  // Congestion clears: devices return on their own.
  home.location().setAvailableFraction(0.9);
  home.simulator().runUntil(home.simulator().now() + 10.0);
  EXPECT_EQ(ctl.admissibleCount(), 2u);
}

TEST(FailureInjection, TransactionOnZeroPhonePathsEqualsAdsl) {
  // Controller yields only ADSL when everything is denied; sessions must
  // degrade, not fail.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[2];
  cfg.phones = 2;
  cfg.seed = 65;
  HomeEnvironment home(cfg);
  ControllerConfig ctl_cfg;
  ctl_cfg.monthly_allowance_bytes = 0.0;  // no quota at all
  OnloadController ctl(home, ctl_cfg);
  ctl.start();
  home.simulator().runUntil(1.0);
  EXPECT_EQ(ctl.admissibleCount(), 0u);
  auto paths = ctl.buildPaths(TransferDirection::kDownload);
  ASSERT_EQ(paths.size(), 1u);
  std::vector<TransferPath*> raw = {paths[0].get()};
  auto sched = makeScheduler("greedy");
  TransactionEngine engine(home.simulator(), raw, *sched);
  const auto res = runTransaction(
      home.simulator(), engine,
      makeTransaction(TransferDirection::kDownload, {2e6, 2e6}));
  EXPECT_NEAR(res.per_path_bytes.at("adsl"), 4e6, 1.0);
}

TEST(FailureInjection, RrcThrashingUnderBurstyTraffic) {
  // Many small transfers separated by just-too-long gaps: every one pays a
  // promotion, and the machine must never wedge.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 1;
  cfg.seed = 66;
  HomeEnvironment home(cfg);
  auto& dev = home.phone(0);
  const double gap = dev.config().rrc.dch_inactivity_s +
                     dev.config().rrc.fach_inactivity_s + 1.0;
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    home.simulator().scheduleAt(i * (gap + 5.0), [&dev, &completed] {
      cell::CellularDevice::TransferOptions opts;
      opts.bytes = 100e3;
      opts.on_complete = [&completed] { ++completed; };
      dev.startTransfer(std::move(opts));
    });
  }
  home.simulator().run();
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(dev.rrc().state(), cell::RrcState::kIdle);  // aged out cleanly
}

// ---- FaultPlan-driven injection -----------------------------------------

struct FaultedRun {
  TransactionResult res;
  std::size_t injected = 0;
};

/// One download transaction over adsl + 2 phones with `plan` armed on the
/// paths; items sized so phone deaths actually strand in-flight work.
FaultedRun runFaultedTransaction(const sim::FaultPlan& plan,
                                 std::uint64_t seed,
                                 EngineConfig engine_cfg = {}) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[3];
  cfg.phones = 2;
  cfg.seed = seed;
  HomeEnvironment home(cfg);
  auto paths = home.makePaths(TransferDirection::kDownload, 2);
  std::vector<TransferPath*> raw;
  for (auto& p : paths) raw.push_back(p.get());
  auto sched = makeScheduler("greedy");
  engine_cfg.all_paths_down_grace_s = 10.0;  // keep the worst case short
  TransactionEngine engine(home.simulator(), raw, *sched, engine_cfg);
  FaultInjector injector(home.simulator());
  for (TransferPath* p : raw) injector.addPath(p);
  injector.arm(plan);
  FaultedRun out;
  out.res = runTransaction(
      home.simulator(), engine,
      makeTransaction(TransferDirection::kDownload,
                      std::vector<double>(10, 1.5e6)));
  injector.disarm();
  out.injected = injector.injectedCount();
  return out;
}

TEST(FaultPlanInjection, PathKillFailsOverAndTerminates) {
  const auto plan = sim::parseFaultPlan("kill:phone0@2,kill:phone1@3");
  const auto run = runFaultedTransaction(plan, 71);
  EXPECT_EQ(run.injected, 2u);
  EXPECT_EQ(run.res.failed_items, 0u);  // ADSL carries the remainder
  EXPECT_EQ(run.res.outcome, TransactionOutcome::kCompletedDegraded);
  EXPECT_EQ(run.res.failed_paths.size(), 2u);
  expectAccounting(run.res);
}

TEST(FaultPlanInjection, PathFlapRecoversAndCarriesBytesAgain) {
  const auto plan = sim::parseFaultPlan("flap:phone0@1+4");
  const auto run = runFaultedTransaction(plan, 72);
  EXPECT_EQ(run.res.failed_items, 0u);
  EXPECT_EQ(run.res.outcome, TransactionOutcome::kCompletedDegraded);
  ASSERT_EQ(run.res.failed_paths.size(), 1u);
  EXPECT_EQ(run.res.failed_paths[0], "phone0");
  // The flapped path rejoined and delivered payload after recovery.
  EXPECT_GT(run.res.per_path_bytes.at("phone0"), 0.0);
  expectAccounting(run.res);
}

TEST(FaultPlanInjection, StallIsCaughtByWatchdog) {
  EngineConfig cfg;
  cfg.watchdog.min_deadline_s = 3.0;  // tighten so the test stays fast
  cfg.retry.jitter = 0.0;
  const auto plan = sim::parseFaultPlan("stall:adsl@1");
  const auto run = runFaultedTransaction(plan, 73, cfg);
  EXPECT_EQ(run.res.failed_items, 0u);
  EXPECT_GE(run.res.timeouts, 1u);
  EXPECT_EQ(run.res.outcome, TransactionOutcome::kCompletedDegraded);
  expectAccounting(run.res);
}

TEST(FaultPlanInjection, RevokeSuspendsGrantsUntilExpiry) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 2;
  cfg.seed = 74;
  HomeEnvironment home(cfg);
  home.location().setAvailableFraction(0.9);
  ControllerConfig ctl_cfg;
  ctl_cfg.mode = DeploymentMode::kNetworkIntegrated;
  ctl_cfg.permit.acceptance_threshold = 0.5;
  ctl_cfg.permit.ttl_s = 4.0;
  OnloadController ctl(home, ctl_cfg);
  ctl.start();
  home.simulator().runUntil(1.0);
  ASSERT_EQ(ctl.admissibleCount(), 2u);

  FaultInjector injector(home.simulator());
  injector.setController(&ctl);
  injector.arm(sim::parseFaultPlan("revoke@2+15"));
  // While the suspension holds, re-grant attempts are denied, so no beacon
  // after t=2 refreshes the entries; the last successful beacon (t=0) ages
  // out at the discovery TTL. Probe safely past that boundary but before
  // the suspension lifts at t=17.
  home.simulator().runUntil(ctl_cfg.discovery_ttl_s + 2.0);
  EXPECT_EQ(ctl.admissibleCount(), 0u);
  // Past the suspension the beacons re-acquire permits on their own.
  home.simulator().runUntil(2.0 + 15.0 + 10.0);
  EXPECT_EQ(ctl.admissibleCount(), 2u);
}

TEST(FaultPlanInjection, CapExhaustEvictsOnePhone) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 2;
  cfg.seed = 75;
  HomeEnvironment home(cfg);
  OnloadController ctl(home, ControllerConfig{});
  ctl.start();
  home.simulator().runUntil(1.0);
  ASSERT_EQ(ctl.admissibleCount(), 2u);

  FaultInjector injector(home.simulator());
  injector.setController(&ctl);
  injector.arm(sim::parseFaultPlan("cap:phone0@2"));
  home.simulator().runUntil(2.0 + ControllerConfig{}.discovery_ttl_s +
                            ControllerConfig{}.discovery_interval_s + 1.0);
  EXPECT_EQ(ctl.admissibleCount(), 1u);
  EXPECT_TRUE(ctl.discovery().admissible("phone1"));
  EXPECT_FALSE(ctl.discovery().admissible("phone0"));
}

TEST(FaultPlanInjection, SeededRandomPlansAlwaysTerminate) {
  // The fuzz property in miniature: whatever a seeded plan throws at the
  // paths, the transaction terminates and the books balance.
  sim::RandomFaultSpec spec;
  spec.horizon_s = 30.0;
  spec.event_count = 5;
  spec.targets = {"adsl", "phone0", "phone1"};
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const auto plan = sim::FaultPlan::randomized(seed, spec);
    SCOPED_TRACE(plan.describe());
    const auto run = runFaultedTransaction(plan, 80 + seed);
    EXPECT_FALSE(run.res.item_completion_s.empty());
    EXPECT_EQ(run.res.item_completion_s.size(), 10u);
    expectAccounting(run.res);
  }
}

TEST(FaultPlanInjection, ControllerSupervisionPropagatesDiscoveryLoss) {
  // supervisePaths bridges discovery liveness to engine paths: when a
  // phone ages out of Phi (here: its permit is revoked and re-grants are
  // suspended), its TransferPath goes !alive so the engine fails over;
  // when the phone re-advertises, the path revives.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 1;
  cfg.seed = 76;
  HomeEnvironment home(cfg);
  home.location().setAvailableFraction(0.9);
  ControllerConfig ctl_cfg;
  ctl_cfg.mode = DeploymentMode::kNetworkIntegrated;
  ctl_cfg.permit.acceptance_threshold = 0.5;
  ctl_cfg.permit.ttl_s = 4.0;
  OnloadController ctl(home, ctl_cfg);
  ctl.start();
  home.simulator().runUntil(1.0);
  ASSERT_EQ(ctl.admissibleCount(), 1u);

  auto paths = ctl.buildPaths(TransferDirection::kDownload);
  ASSERT_EQ(paths.size(), 2u);  // adsl + phone0
  std::vector<TransferPath*> raw;
  for (auto& p : paths) raw.push_back(p.get());
  ctl.supervisePaths(raw);
  TransferPath* phone_path = raw[1];
  EXPECT_TRUE(phone_path->alive());

  const double suspend_s = 20.0;
  ctl.permits().revokeAll();
  ctl.permits().suspendGrants(suspend_s);
  home.simulator().runUntil(home.simulator().now() +
                            ctl_cfg.discovery_ttl_s +
                            ctl_cfg.discovery_interval_s + 1.0);
  EXPECT_FALSE(phone_path->alive());

  home.simulator().runUntil(1.0 + suspend_s + 10.0);
  EXPECT_TRUE(phone_path->alive());
  ctl.clearSupervision();
}

}  // namespace
}  // namespace gol::core
