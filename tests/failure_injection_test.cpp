// Failure-injection coverage: the unhappy paths the in-the-wild pilot
// would hit — radio collapse mid-transfer, permit revocation, congested
// admission, Wi-Fi becoming the bottleneck, and mid-transaction aborts.
#include <gtest/gtest.h>

#include <optional>

#include "core/onload_controller.hpp"
#include "core/vod_session.hpp"
#include "sim/units.hpp"

namespace gol::core {
namespace {

using sim::mbps;

TEST(FailureInjection, CellCollapseMidTransactionStillCompletes) {
  // Background load spikes to ~100% mid-download: phone paths crawl but the
  // transaction must still finish over ADSL.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[3];
  cfg.phones = 2;
  cfg.seed = 61;
  HomeEnvironment home(cfg);

  home.simulator().scheduleAt(
      5.0, [&home] { home.location().setAvailableFraction(0.02); });

  auto paths = home.makePaths(TransferDirection::kDownload, 2);
  std::vector<TransferPath*> raw;
  for (auto& p : paths) raw.push_back(p.get());
  auto sched = makeScheduler("greedy");
  TransactionEngine engine(home.simulator(), raw, *sched);
  const auto res = runTransaction(
      home.simulator(), engine,
      makeTransaction(TransferDirection::kDownload,
                      std::vector<double>(12, 1e6)));
  EXPECT_GT(res.duration_s, 0.0);
  // ADSL ends up carrying the bulk after the collapse.
  EXPECT_GT(res.per_path_bytes.at("adsl"), res.total_bytes * 0.4);
}

TEST(FailureInjection, WifiBottleneckCapsAggregation) {
  // An interference-degraded 802.11g LAN: the phones cannot add more than
  // the shared medium carries (Sec. 4.1's upper bound).
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[1];  // fast line, fast phones
  cfg.wifi.standard = access::WifiStandard::k80211g;
  cfg.wifi.interference_loss = 0.9;  // ~2.4 Mbps usable
  cfg.phones = 2;
  cfg.seed = 62;
  HomeEnvironment home(cfg);
  VodSession session(home);
  VodOptions opts;
  opts.video.bitrate_bps = 738e3;
  opts.prebuffer_fraction = 1.0;
  opts.phones = 2;
  const auto out = session.run(opts);
  // 18.45 MB can't beat the 2.4 Mbps LAN: > 55 s regardless of paths.
  EXPECT_GT(out.total_download_s, 55.0);
}

TEST(FailureInjection, AbortMidTransactionReleasesEverything) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 2;
  cfg.seed = 63;
  HomeEnvironment home(cfg);

  auto paths = home.makePaths(TransferDirection::kDownload, 2);
  // Start transfers manually on each path, then abort them all mid-flight.
  int completions = 0;
  Item item;
  item.index = 0;
  item.bytes = 50e6;
  for (auto& p : paths) {
    Item copy = item;
    copy.index = static_cast<std::uint32_t>(&p - paths.data());
    p->start(copy, [&](const Item&) { ++completions; });
  }
  home.simulator().runUntil(5.0);
  double moved = 0;
  for (auto& p : paths) moved += p->abortCurrent();
  EXPECT_GT(moved, 0.0);
  home.simulator().run();
  EXPECT_EQ(completions, 0);  // no callback after abort
  EXPECT_EQ(home.network().activeFlowCount(), 0u);
  for (auto& p : paths) EXPECT_FALSE(p->busy());
}

TEST(FailureInjection, PermitRevocationStopsNewAdvertisements) {
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 2;
  cfg.seed = 64;
  HomeEnvironment home(cfg);
  home.location().setAvailableFraction(0.9);
  ControllerConfig ctl_cfg;
  ctl_cfg.mode = DeploymentMode::kNetworkIntegrated;
  ctl_cfg.permit.acceptance_threshold = 0.5;
  ctl_cfg.permit.ttl_s = 4.0;  // short-lived permits
  OnloadController ctl(home, ctl_cfg);
  ctl.start();
  home.simulator().runUntil(1.0);
  ASSERT_EQ(ctl.admissibleCount(), 2u);

  // Congestion detected: permits revoked and the cell now looks loaded.
  home.location().setAvailableFraction(0.1);
  ctl.permits().revokeAll();
  home.simulator().runUntil(1.0 + ctl_cfg.discovery_ttl_s +
                            ctl_cfg.discovery_interval_s + 1.0);
  EXPECT_EQ(ctl.admissibleCount(), 0u);

  // Congestion clears: devices return on their own.
  home.location().setAvailableFraction(0.9);
  home.simulator().runUntil(home.simulator().now() + 10.0);
  EXPECT_EQ(ctl.admissibleCount(), 2u);
}

TEST(FailureInjection, TransactionOnZeroPhonePathsEqualsAdsl) {
  // Controller yields only ADSL when everything is denied; sessions must
  // degrade, not fail.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[2];
  cfg.phones = 2;
  cfg.seed = 65;
  HomeEnvironment home(cfg);
  ControllerConfig ctl_cfg;
  ctl_cfg.monthly_allowance_bytes = 0.0;  // no quota at all
  OnloadController ctl(home, ctl_cfg);
  ctl.start();
  home.simulator().runUntil(1.0);
  EXPECT_EQ(ctl.admissibleCount(), 0u);
  auto paths = ctl.buildPaths(TransferDirection::kDownload);
  ASSERT_EQ(paths.size(), 1u);
  std::vector<TransferPath*> raw = {paths[0].get()};
  auto sched = makeScheduler("greedy");
  TransactionEngine engine(home.simulator(), raw, *sched);
  const auto res = runTransaction(
      home.simulator(), engine,
      makeTransaction(TransferDirection::kDownload, {2e6, 2e6}));
  EXPECT_NEAR(res.per_path_bytes.at("adsl"), 4e6, 1.0);
}

TEST(FailureInjection, RrcThrashingUnderBurstyTraffic) {
  // Many small transfers separated by just-too-long gaps: every one pays a
  // promotion, and the machine must never wedge.
  HomeConfig cfg;
  cfg.location = cell::evaluationLocations()[0];
  cfg.phones = 1;
  cfg.seed = 66;
  HomeEnvironment home(cfg);
  auto& dev = home.phone(0);
  const double gap = dev.config().rrc.dch_inactivity_s +
                     dev.config().rrc.fach_inactivity_s + 1.0;
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    home.simulator().scheduleAt(i * (gap + 5.0), [&dev, &completed] {
      cell::CellularDevice::TransferOptions opts;
      opts.bytes = 100e3;
      opts.on_complete = [&completed] { ++completed; };
      dev.startTransfer(std::move(opts));
    });
  }
  home.simulator().run();
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(dev.rrc().state(), cell::RrcState::kIdle);  // aged out cleanly
}

}  // namespace
}  // namespace gol::core
