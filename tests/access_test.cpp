#include <gtest/gtest.h>

#include <optional>

#include "access/adsl.hpp"
#include "access/dslam.hpp"
#include "access/wifi.hpp"
#include "net/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gol::access {
namespace {

using sim::mbps;
using sim::megabytes;

TEST(AdslFromLoopLength, ShortLoopGetsFullRate) {
  const auto cfg = adslFromLoopLength(500);
  EXPECT_DOUBLE_EQ(cfg.sync_down_bps, mbps(24));
  EXPECT_NEAR(cfg.sync_up_bps, mbps(1.2), 1e4);
}

TEST(AdslFromLoopLength, RateFallsWithDistance) {
  const auto near = adslFromLoopLength(1000);
  const auto mid = adslFromLoopLength(3000);
  const auto far = adslFromLoopLength(5000);
  EXPECT_GT(near.sync_down_bps, mid.sync_down_bps);
  EXPECT_GT(mid.sync_down_bps, far.sync_down_bps);
  EXPECT_NEAR(far.sync_down_bps, mbps(1.5), 1);
  // Beyond 5 km the curve floors.
  EXPECT_DOUBLE_EQ(adslFromLoopLength(9000).sync_down_bps, mbps(1.5));
}

TEST(AdslFromLoopLength, RttGrowsWithDistance) {
  EXPECT_LT(adslFromLoopLength(500).rtt_s, adslFromLoopLength(4000).rtt_s);
}

TEST(AdslLine, AsymmetryAndGoodput) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  AdslConfig cfg;
  cfg.sync_down_bps = mbps(6.7);
  cfg.sync_up_bps = mbps(0.67);
  cfg.atm_efficiency = 0.85;
  AdslLine line(net, "adsl", cfg);
  EXPECT_NEAR(line.goodputDownBps(), mbps(6.7) * 0.85, 1);
  EXPECT_NEAR(line.goodputUpBps(), mbps(0.67) * 0.85, 1);
  // The installed links carry the goodput, not the sync rate.
  EXPECT_NEAR(line.downLink()->capacityBps(), line.goodputDownBps(), 1);
  // Down and up are independent resources.
  EXPECT_NE(line.downLink(), line.upLink());
}

TEST(AdslLine, PathsCarryRttAndLinks) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  AdslLine line(net, "adsl", AdslConfig{});
  const auto down = line.downPath();
  ASSERT_EQ(down.links.size(), 1u);
  EXPECT_EQ(down.links[0], line.downLink());
  EXPECT_GT(down.rtt_s, 0.0);
  const auto up = line.upPath();
  EXPECT_EQ(up.links[0], line.upLink());
}

TEST(AdslLine, DownloadTimeMatchesGoodput) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  AdslConfig cfg;
  cfg.sync_down_bps = mbps(2.0);
  cfg.atm_efficiency = 1.0;  // isolate the rate math
  AdslLine line(net, "adsl", cfg);
  std::optional<double> done;
  net.startFlow({{line.downLink()}, megabytes(1), 1e18,
                 [&](net::FlowId) { done = s.now(); }});
  s.run();
  EXPECT_NEAR(*done, 4.0, 1e-9);
}

TEST(Wifi, GoodputByStandard) {
  EXPECT_DOUBLE_EQ(wifiGoodputBps(WifiStandard::k80211g), mbps(24));
  EXPECT_DOUBLE_EQ(wifiGoodputBps(WifiStandard::k80211n), mbps(110));
}

TEST(Wifi, InterferenceShavesGoodput) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  WifiConfig cfg;
  cfg.standard = WifiStandard::k80211g;
  cfg.interference_loss = 0.25;
  WifiLan lan(net, "wifi", cfg);
  EXPECT_NEAR(lan.goodputBps(), mbps(18), 1);
}

TEST(Wifi, SharedMediumSplitsBetweenStations) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  WifiLan lan(net, "wifi", WifiConfig{WifiStandard::k80211g, 0.0, 0.003, 0.0});
  net.startFlow({{lan.medium()}, megabytes(100), 1e18, nullptr});
  const auto f2 =
      net.startFlow({{lan.medium()}, megabytes(100), 1e18, nullptr});
  EXPECT_NEAR(net.flowRateBps(f2), mbps(12), 10);
}

TEST(Dslam, BackhaulOversubscription) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  DslamConfig cfg;
  cfg.subscribers = 875;
  cfg.avg_sync_down_bps = mbps(6.7);
  cfg.oversubscription = 20.0;
  Dslam dslam(net, "dslam", cfg);
  // Sec. 2.1: 875 lines * 6.7 Mbps = 5.86 Gbps nominal.
  EXPECT_NEAR(dslam.nominalAggregateDownBps(), 5.8625e9, 1e6);
  EXPECT_NEAR(dslam.backhaulBps(), 5.8625e9 / 20.0, 1e3);
}

TEST(Dslam, LinesShareTheBackhaul) {
  sim::Simulator s;
  net::FlowNetwork net(s);
  DslamConfig cfg;
  cfg.subscribers = 4;
  cfg.avg_sync_down_bps = mbps(10);
  cfg.oversubscription = 10.0;  // backhaul = 4 Mbps
  Dslam dslam(net, "dslam", cfg);
  AdslConfig line_cfg;
  line_cfg.sync_down_bps = mbps(10);
  line_cfg.atm_efficiency = 1.0;
  auto& l1 = dslam.addLine(line_cfg);
  auto& l2 = dslam.addLine(line_cfg);
  EXPECT_EQ(dslam.lineCount(), 2u);
  // Both lines pull through the 4 Mbps backhaul: 2 Mbps each.
  const auto f1 = net.startFlow(
      {{dslam.backhaulDown(), l1.downLink()}, megabytes(100), 1e18, nullptr});
  const auto f2 = net.startFlow(
      {{dslam.backhaulDown(), l2.downLink()}, megabytes(100), 1e18, nullptr});
  EXPECT_NEAR(net.flowRateBps(f1), mbps(2), 10);
  EXPECT_NEAR(net.flowRateBps(f2), mbps(2), 10);
}

}  // namespace
}  // namespace gol::access
