#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gol::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pendingEvents(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.scheduleAt(3.0, [&] { order.push_back(3); });
  s.scheduleAt(1.0, [&] { order.push_back(1); });
  s.scheduleAt(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  s.scheduleAt(1.0, [&] { order.push_back(10); });
  s.scheduleAt(1.0, [&] { order.push_back(20); });
  s.scheduleAt(1.0, [&] { order.push_back(30); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(Simulator, ScheduleInUsesRelativeTime) {
  Simulator s;
  double fired_at = -1;
  s.scheduleAt(5.0, [&] {
    s.scheduleIn(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, PastSchedulesClampToNow) {
  Simulator s;
  double fired_at = -1;
  s.scheduleAt(5.0, [&] {
    s.scheduleAt(1.0, [&] { fired_at = s.now(); });  // in the past
    s.scheduleIn(-3.0, [] {});                       // negative delay
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.scheduleAt(1.0, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.processedEvents(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator s;
  s.cancel(0);
  s.cancel(9999);
  bool fired = false;
  s.scheduleAt(1.0, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledEventsExcludedFromPendingCount) {
  Simulator s;
  const EventId a = s.scheduleAt(1.0, [] {});
  s.scheduleAt(2.0, [] {});
  EXPECT_EQ(s.pendingEvents(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pendingEvents(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator s;
  int count = 0;
  s.scheduleAt(1.0, [&] { ++count; });
  s.scheduleAt(2.0, [&] { ++count; });
  s.scheduleAt(10.0, [&] { ++count; });
  s.runUntil(5.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilEventAtBoundaryFires) {
  Simulator s;
  bool fired = false;
  s.scheduleAt(5.0, [&] { fired = true; });
  s.runUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilRejectsPast) {
  Simulator s;
  s.scheduleAt(3.0, [] {});
  s.run();
  EXPECT_THROW(s.runUntil(1.0), std::invalid_argument);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.scheduleIn(1.0, recurse);
  };
  s.scheduleIn(1.0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, MillionScheduleCancelKeepsMemoryBounded) {
  // Regression for the tombstone-accumulation bug: a schedule/cancel churn
  // of 1M events must not grow the pending count or the slot slab — both
  // are bounded by the peak number of *live* events (here, 1).
  Simulator s;
  for (int i = 0; i < 1'000'000; ++i) {
    const EventId id = s.scheduleIn(1.0, [] {});
    s.cancel(id);
    ASSERT_EQ(s.pendingEvents(), 0u);
  }
  EXPECT_LE(s.slotCapacity(), 256u) << "slot slab must recycle, not grow";
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.processedEvents(), 0u);
}

TEST(Simulator, InterleavedChurnKeepsSlabNearPeakLive) {
  // 16 live events at any instant; 100k schedule/cancel cycles on top.
  Simulator s;
  std::vector<EventId> live;
  for (int i = 0; i < 16; ++i) {
    live.push_back(s.scheduleIn(1e9, [] {}));
  }
  for (int i = 0; i < 100'000; ++i) {
    s.cancel(live[static_cast<std::size_t>(i) % live.size()]);
    live[static_cast<std::size_t>(i) % live.size()] =
        s.scheduleIn(1e9, [] {});
    ASSERT_EQ(s.pendingEvents(), 16u);
  }
  EXPECT_LE(s.slotCapacity(), 512u);
}

TEST(Simulator, CancelledIdNotConfusedWithRecycledSlot) {
  // After a cancel, the slot is recycled for a new event; the stale id must
  // stay dead and must not cancel the new occupant.
  Simulator s;
  int fired = 0;
  const EventId a = s.scheduleIn(1.0, [] {});
  s.cancel(a);
  const EventId b = s.scheduleIn(2.0, [&fired] { ++fired; });
  s.cancel(a);  // stale: generation mismatch
  s.run();
  EXPECT_EQ(fired, 1);
  (void)b;
}

TEST(Simulator, DeterministicOrderSurvivesCancelChurn) {
  // Two simulators, one with extra schedule+cancel noise: the surviving
  // events must fire in exactly the same (time, insertion) order.
  auto run = [](bool noisy) {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 200; ++i) {
      if (noisy) s.cancel(s.scheduleIn(static_cast<double>(i % 7), [] {}));
      s.scheduleIn(static_cast<double>(i % 13),
                   [&order, i] { order.push_back(i); });
      if (noisy) s.cancel(s.scheduleIn(0.5, [] {}));
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mbps(2.0), 2e6);
  EXPECT_DOUBLE_EQ(kbps(200.0), 2e5);
  EXPECT_DOUBLE_EQ(megabytes(2.5), 2.5e6);
  EXPECT_DOUBLE_EQ(hours(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(days(1.0), 86400.0);
  // 1 MB at 8 Mbps = 1 second.
  EXPECT_DOUBLE_EQ(transferTime(megabytes(1), mbps(8)), 1.0);
}

}  // namespace
}  // namespace gol::sim
